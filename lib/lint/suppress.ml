(* Suppression comments.

   Grammar, one physical line: an OCaml comment whose body starts
   with "lint:", then a key, then a mandatory free-text reason — the
   full form is spelled out in DESIGN.md section 6f (spelling it here
   would make this very file carry a suppression).  The key names the
   checker being silenced; each checker also accepts the aliases it
   documents, e.g. domain-local for domain-safety.  An unexplained or
   unknown-key suppression is itself a finding.  A suppression on
   line L silences matching findings on L and L + 1, so the comment
   can sit at the end of the offending line or alone on the line
   above it. *)

type problem = { line : int; what : string }

type t = {
  (* (key, line) for every well-formed suppression. *)
  entries : (string * int, string) Hashtbl.t;
  problems : problem list;
}

(* Split so this file's own text does not contain the marker. *)
let marker = "(* " ^ "lint:"

let find_sub s from pat =
  let n = String.length s and m = String.length pat in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = pat then Some i
    else go (i + 1)
  in
  go from

let scan ~keys text =
  let entries = Hashtbl.create 8 in
  let problems = ref [] in
  let problem line what = problems := { line; what } :: !problems in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i line_text ->
      let line = i + 1 in
      let rec at from =
        match find_sub line_text from marker with
        | None -> ()
        | Some start -> (
            let body_start = start + String.length marker in
            match find_sub line_text body_start "*)" with
            | None ->
                problem line
                  "suppression comment does not close on the same line"
            | Some stop ->
                let body =
                  String.trim (String.sub line_text body_start (stop - body_start))
                in
                (match String.index_opt body ' ' with
                | None ->
                    if body = "" then
                      problem line "suppression comment has no key"
                    else
                      problem line
                        (Printf.sprintf
                           "suppression '%s' has no reason — every \
                            suppression must explain itself"
                           body)
                | Some sp ->
                    let key = String.sub body 0 sp in
                    let reason =
                      String.trim
                        (String.sub body (sp + 1) (String.length body - sp - 1))
                    in
                    if not (List.mem key keys) then
                      problem line
                        (Printf.sprintf
                           "unknown suppression key '%s' (known: %s)" key
                           (String.concat ", " keys))
                    else if reason = "" then
                      problem line
                        (Printf.sprintf "suppression '%s' has no reason" key)
                    else Hashtbl.replace entries (key, line) reason);
                at (stop + 2))
      in
      at 0)
    lines;
  { entries; problems = List.rev !problems }

let active t ~keys ~line =
  List.exists
    (fun k -> Hashtbl.mem t.entries (k, line) || Hashtbl.mem t.entries (k, line - 1))
    keys

let file_has t ~key =
  Hashtbl.fold (fun (k, _) _ acc -> acc || k = key) t.entries false

let problems t = List.map (fun p -> (p.line, p.what)) t.problems
