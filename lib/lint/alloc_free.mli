(** Alloc-free checker: every function listed in the manifest must
    contain no syntactic allocation site (tuples, records, arrays,
    payload constructors, closures, [lazy], partial application of a
    same-file function).  Entries naming unknown functions are errors
    reported against the manifest file.  Suppression key:
    [alloc-free]. *)

val id : string

(** Build the checker for one parsed manifest. *)
val checker : Manifest.t -> Checker.t
