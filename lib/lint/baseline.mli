(** Finding baseline: a checked-in list of acknowledged finding ids
    (stable across line shifts, see {!Finding.id}) that are filtered
    out of the lint result instead of failing the build. *)

(** Ids in the baseline file; a missing file is an empty baseline. *)
val load : string -> string list

(** Write [findings] as a baseline file (sorted, deduplicated, with a
    header comment and human-readable context per line). *)
val save : string -> Finding.t list -> unit

(** [filter ids findings] is [(kept, n_baselined)]. *)
val filter : string list -> Finding.t list -> Finding.t list * int
