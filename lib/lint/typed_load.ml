(* Typed-tree acquisition for the typed checkers.

   Two sources, in order of preference:

   - [.cmt] artifacts written by the build (`dune build @check`; dune
     passes -bin-annot unconditionally, so any full build produces
     them too).  These carry the real cross-module types — a closure
     capturing a [Sim.Stats.t] is seen with that type, not a guess.
   - an in-process typecheck of the parsed source, used for files the
     build does not know (test fixture trees, temp repos).  This only
     succeeds for self-contained files; a file that fails to
     typecheck standalone is silently skipped, and the driver reports
     how many files got a typed tree so a silent everything-skipped
     run is visible.

   Both paths share the compiler's global state (load path, env
   caches); the driver is single-domain, so plain initialization-once
   is enough. *)

let initialized = Atomic.make false

let ensure_init () =
  if not (Atomic.get initialized) then begin
    Atomic.set initialized true;
    (* Puts the stdlib on the load path so [Compmisc.initial_env]
       (and Envaux reconstruction) can resolve Stdlib's cmi. *)
    Compmisc.init_path ()
  end

let normalize_source src =
  Checker.normalize_path src

(* Directories holding .cmt files under [root] (preferring
   [root/_build/default] when present — the layout `make lint` sees;
   the self-lint rule already runs inside the build dir).  Dot
   directories are where dune keeps .objs, so unlike source discovery
   this walk must descend into them. *)
let cmt_base root =
  let b = Filename.concat (Filename.concat root "_build") "default" in
  if Sys.file_exists b && Sys.is_directory b then b else root

(* Index every compiled implementation: source path -> typed tree.
   The directories that contained cmts are appended to the load path
   so Envaux can reconstruct environments (cross-module record
   lookups in the capture checker). *)
let index ~root =
  ensure_init ();
  let tbl = Hashtbl.create 64 in
  let cmt_dirs = Hashtbl.create 16 in
  let rec walk dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> ()
    | names ->
        Array.iter
          (fun name ->
            let abs = Filename.concat dir name in
            if Sys.is_directory abs then begin
              if name <> "_build" && name <> ".git" then walk abs
            end
            else if Filename.check_suffix name ".cmt" then
              match Cmt_format.read_cmt abs with
              | {
                  Cmt_format.cmt_annots = Cmt_format.Implementation str;
                  cmt_sourcefile = Some src;
                  _;
                } ->
                  let src = normalize_source src in
                  if Filename.check_suffix src ".ml" then begin
                    Hashtbl.replace tbl src str;
                    Hashtbl.replace cmt_dirs dir ()
                  end
              | _ -> ()
              | exception _ ->
                  (* Different compiler version or truncated file —
                     never fail the lint run over a stale artifact. *)
                  ())
          names
  in
  let base = cmt_base root in
  if Sys.file_exists base && Sys.is_directory base then walk base;
  Hashtbl.iter (fun d () -> Load_path.add_dir d) cmt_dirs;
  tbl

(* In-process typecheck of an already-parsed structure.  Global
   compiler state means this must not run concurrently; the driver is
   sequential. *)
let type_structure ast =
  ensure_init ();
  match Typemod.type_structure (Compmisc.initial_env ()) ast with
  | tstr, _sig, _names, _shape, _env -> Ok tstr
  | exception e -> Error e

(* Render a typechecking exception as (line, col, message), for
   callers that want to surface it as a finding. *)
let describe_error e =
  match Location.error_of_exn e with
  | Some (`Ok report) ->
      let loc = report.Location.main.Location.loc in
      let buf = Buffer.create 64 in
      let ppf = Format.formatter_of_buffer buf in
      report.Location.main.Location.txt ppf;
      Format.pp_print_flush ppf ();
      (Checker.line_of loc, Checker.col_of loc, Buffer.contents buf)
  | Some `Already_displayed | None -> (1, 0, Printexc.to_string e)

(* Best-effort type-declaration lookup: the node's own env works for
   in-process trees; cmt-loaded envs are summaries and need Envaux
   (which in turn needs the load path populated by {!index}).  Any
   failure is [None] — the capture checker then falls back to its
   structural type-name list. *)
let find_type_decl env path =
  match Env.find_type path env with
  | decl -> Some decl
  | exception _ -> (
      match Env.find_type path (Envaux.env_of_only_summary env) with
      | decl -> Some decl
      | exception _ -> None)
