(* Domain-safety: no unsynchronized toplevel mutable state in library
   code.  A toplevel [ref]/[Hashtbl.create]/[Buffer.create]/... or a
   record literal with mutable fields is one heap object shared by
   every domain that touches the module — exactly the class of race a
   global online-controller counter table once introduced.  Wrapping
   the state in [Atomic.make] is accepted; anything else needs a
   [(* lint: domain-local <reason> *)] suppression. *)

open Parsetree

let id = "domain-safety"

(* Module.function applications that create mutable state. *)
let creator_paths =
  [
    ("Hashtbl", "create");
    ("Buffer", "create");
    ("Queue", "create");
    ("Stack", "create");
  ]

(* Mutable record fields declared by the file itself: a toplevel
   record literal writing one of these is shared mutable state.  Only
   same-file declarations are visible at parsetree level; cross-module
   mutable records are out of scope (and rare at toplevel). *)
let mutable_fields structure =
  let fields = Hashtbl.create 8 in
  let it =
    {
      Ast_iterator.default_iterator with
      type_declaration =
        (fun self td ->
          (match td.ptype_kind with
          | Ptype_record labels ->
              List.iter
                (fun l ->
                  if l.pld_mutable = Asttypes.Mutable then
                    Hashtbl.replace fields l.pld_name.Asttypes.txt ())
                labels
          | _ -> ());
          Ast_iterator.default_iterator.type_declaration self td);
    }
  in
  it.structure it structure;
  fields

let last_of = function
  | Longident.Lident s -> s
  | Longident.Ldot (_, s) -> s
  | Longident.Lapply _ -> ""

(* Scan the right-hand side of one toplevel binding.  Descent stops
   at function boundaries (state created per call is fine) and at
   [Atomic.make] (the blessed wrapper). *)
let scan_binding ~(emit : Checker.emit) ~mut_fields ~bind_line name expr =
  let flag loc what =
    emit ~suppress_at:[ bind_line ] ~line:(Checker.line_of loc)
      ~col:(Checker.col_of loc)
      (Printf.sprintf
         "toplevel mutable state in '%s': %s is shared by every domain; \
          wrap it in Atomic, make it per-instance, or suppress with (* \
          lint: domain-local <reason> *)"
         name what)
  in
  let rec scan e =
    match e.pexp_desc with
    | Pexp_fun _ | Pexp_function _ -> ()
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Ldot (Lident "Atomic", "make"); _ }; _ },
          _ ) ->
        ()
    | Pexp_apply
        ({ pexp_desc = Pexp_ident { txt = Lident "ref"; _ }; _ }, args) ->
        flag e.pexp_loc "a 'ref'";
        List.iter (fun (_, a) -> scan a) args
    | Pexp_apply
        ({ pexp_desc = Pexp_ident { txt = Ldot (Lident m, f); _ }; _ }, args)
      when List.mem (m, f) creator_paths ->
        flag e.pexp_loc (Printf.sprintf "'%s.%s'" m f);
        List.iter (fun (_, a) -> scan a) args
    | Pexp_record (fields, base) ->
        let mut =
          List.filter
            (fun ({ Asttypes.txt; _ }, _) -> Hashtbl.mem mut_fields (last_of txt))
            fields
        in
        (match mut with
        | ({ Asttypes.txt; _ }, _) :: _ ->
            flag e.pexp_loc
              (Printf.sprintf "a record literal with mutable field '%s'"
                 (last_of txt))
        | [] -> ());
        Option.iter scan base;
        List.iter (fun (_, fe) -> scan fe) fields
    | _ ->
        (* Generic descent over sub-expressions, still honouring the
           stops above. *)
        let it =
          {
            Ast_iterator.default_iterator with
            expr = (fun _ sub -> scan sub);
          }
        in
        Ast_iterator.default_iterator.expr it e
  in
  scan expr

let binding_name (vb : value_binding) =
  match vb.pvb_pat.ppat_desc with
  | Ppat_var { txt; _ } -> txt
  | _ -> "_"

let rec scan_structure ~(emit : Checker.emit) ~mut_fields items =
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              let bind_line = Checker.line_of vb.pvb_loc in
              scan_binding ~emit ~mut_fields ~bind_line (binding_name vb)
                vb.pvb_expr)
            vbs
      | Pstr_module mb -> scan_module ~emit ~mut_fields mb.pmb_expr
      | Pstr_recmodule mbs ->
          List.iter (fun mb -> scan_module ~emit ~mut_fields mb.pmb_expr) mbs
      | Pstr_include { pincl_mod; _ } -> scan_module ~emit ~mut_fields pincl_mod
      | _ -> ())
    items

and scan_module ~emit ~mut_fields me =
  match me.pmod_desc with
  | Pmod_structure items -> scan_structure ~emit ~mut_fields items
  | Pmod_constraint (me, _) -> scan_module ~emit ~mut_fields me
  | _ -> ()

let checker =
  {
    Checker.id;
    keys = [ id; "domain-local" ];
    describe =
      "no unsynchronized toplevel mutable state (ref/Hashtbl/Buffer/... or \
       mutable-field records) in library code";
    check =
      (fun ~emit source ->
        if source.Checker.in_lib then
          let mut_fields = mutable_fields source.Checker.ast in
          scan_structure ~emit ~mut_fields source.Checker.ast);
  }
