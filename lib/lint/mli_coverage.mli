(** Mli-coverage checker: every [lib/] module needs a sibling [.mli]
    unless it carries a file-scoped [(* lint: internal <reason> *)]
    marker. *)

val id : string
val checker : Checker.t
