(* The units-of-measure manifest: assigns vocabulary units to function
   parameters/returns, toplevel values and record fields.  Strict both
   ways, like the alloc-free manifest: a malformed line or unknown
   unit is an error here, and an entry naming a function, value, type
   or field the typed tree does not contain becomes a finding against
   the manifest (see Units).

     # comment
     fn lib/sim/machine.ml core_power frequency:hz -> watt
     val lib/thermal/niagara.ml fmax hz
     field lib/sim/machine.ml t.core_fmax hz

   Vocabulary: hz (absolute frequency), norm (dimensionless, [0,1]
   normalized), celsius, watt, second, joule.  An array-typed
   value declared with a unit carries that unit per element
   (indexing preserves it). *)

let vocabulary = [ "hz"; "norm"; "celsius"; "watt"; "second"; "joule" ]

type fn = {
  f_file : string;
  f_name : string;  (* dotted binding path, as for the alloc manifest *)
  f_params : (string * string) list;  (* parameter name -> unit *)
  f_ret : string option;
  f_line : int;
}

type vval = { v_file : string; v_name : string; v_unit : string; v_line : int }

type field = {
  fd_file : string;
  fd_type : string;
  fd_field : string;
  fd_unit : string;
  fd_line : int;
}

type t = {
  path : string;
  fns : fn list;
  vals : vval list;
  fields : field list;
}

let empty path = { path; fns = []; vals = []; fields = [] }

let unit_ok u = List.mem u vocabulary

let parse ~path text =
  let fns = ref [] and vals = ref [] and fields = ref [] in
  let errors = ref [] in
  let error line msg = errors := (line, msg) :: !errors in
  let bad_unit line u =
    error line
      (Printf.sprintf "unknown unit '%s' (vocabulary: %s)" u
         (String.concat ", " vocabulary))
  in
  List.iteri
    (fun i raw ->
      let line = i + 1 in
      let s = String.trim raw in
      if s = "" || s.[0] = '#' then ()
      else
        match
          String.split_on_char ' ' s |> List.filter (fun w -> w <> "")
        with
        | "fn" :: file :: name :: rest ->
            let rec params acc = function
              | [] -> Some (List.rev acc, None)
              | [ "->"; ret ] ->
                  if unit_ok ret then Some (List.rev acc, Some ret)
                  else (
                    bad_unit line ret;
                    None)
              | tok :: rest -> (
                  match String.index_opt tok ':' with
                  | Some i when i > 0 && i < String.length tok - 1 ->
                      let p = String.sub tok 0 i in
                      let u =
                        String.sub tok (i + 1) (String.length tok - i - 1)
                      in
                      if unit_ok u then params ((p, u) :: acc) rest
                      else (
                        bad_unit line u;
                        None)
                  | _ ->
                      error line
                        (Printf.sprintf
                           "malformed parameter '%s' (want: NAME:UNIT)" tok);
                      None)
            in
            (match params [] rest with
            | Some (([] : (string * string) list), None) ->
                error line
                  "fn entry declares no parameter units and no return unit"
            | Some (ps, ret) ->
                fns :=
                  {
                    f_file = file;
                    f_name = name;
                    f_params = ps;
                    f_ret = ret;
                    f_line = line;
                  }
                  :: !fns
            | None -> ())
        | [ "val"; file; name; u ] ->
            if unit_ok u then
              vals :=
                { v_file = file; v_name = name; v_unit = u; v_line = line }
                :: !vals
            else bad_unit line u
        | [ "field"; file; tyfield; u ] -> (
            if not (unit_ok u) then bad_unit line u
            else
              match String.split_on_char '.' tyfield with
              | [ ty; fd ] when ty <> "" && fd <> "" ->
                  fields :=
                    {
                      fd_file = file;
                      fd_type = ty;
                      fd_field = fd;
                      fd_unit = u;
                      fd_line = line;
                    }
                    :: !fields
              | _ ->
                  error line
                    (Printf.sprintf "malformed field '%s' (want: TYPE.FIELD)"
                       tyfield))
        | _ ->
            error line
              (Printf.sprintf
                 "malformed units line '%s' (want: fn FILE NAME P:UNIT ... \
                  [-> UNIT] | val FILE NAME UNIT | field FILE TYPE.FIELD \
                  UNIT)"
                 s))
    (String.split_on_char '\n' text);
  ( {
      path;
      fns = List.rev !fns;
      vals = List.rev !vals;
      fields = List.rev !fields;
    },
    List.rev !errors )

let load path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse ~path text

let files t =
  List.sort_uniq String.compare
    (List.map (fun f -> f.f_file) t.fns
    @ List.map (fun v -> v.v_file) t.vals
    @ List.map (fun f -> f.fd_file) t.fields)

(* Entries naming files outside [seen], as (line, message) pairs
   against the manifest itself. *)
let unknown_files t ~seen =
  let check file line what =
    if List.mem file seen then []
    else
      [
        ( line,
          Printf.sprintf
            "units manifest names unknown file '%s' (%s entry) — update the \
             entry when a file moves"
            file what );
      ]
  in
  List.concat_map (fun f -> check f.f_file f.f_line "fn") t.fns
  @ List.concat_map (fun v -> check v.v_file v.v_line "val") t.vals
  @ List.concat_map (fun f -> check f.fd_file f.fd_line "field") t.fields
