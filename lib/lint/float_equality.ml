(* Float equality: [=], [<>], [==], [!=] and [compare] applied to an
   operand the checker can see is a float invite rounding surprises
   (and polymorphic compare boxes besides).  "Visibly float" means a
   float literal, float arithmetic ([+.], [*.], [sqrt], ...), or a
   [Float]-module function that returns a float.  Sites where exact
   bit equality is intended carry a
   [(* lint: float-equality <reason> *)] suppression. *)

open Parsetree

let id = "float-equality"

let comparison_ops = [ "="; "<>"; "=="; "!="; "compare" ]

let float_arith =
  [
    "+."; "-."; "*."; "/."; "~-."; "**"; "sqrt"; "exp"; "log"; "log10";
    "expm1"; "log1p"; "cos"; "sin"; "tan"; "acos"; "asin"; "atan"; "atan2";
    "cosh"; "sinh"; "tanh"; "ceil"; "floor"; "abs_float"; "mod_float";
    "float_of_int"; "float_of_string"; "ldexp"; "copysign"; "hypot";
  ]

(* Float.* functions that return a float (predicates like [is_nan]
   excluded — comparing their [bool] result is fine). *)
let float_module_fns =
  [
    "add"; "sub"; "mul"; "div"; "rem"; "fma"; "neg"; "abs"; "succ"; "pred";
    "sqrt"; "cbrt"; "exp"; "log"; "pow"; "min"; "max"; "min_max"; "round";
    "trunc"; "of_int"; "of_string"; "ldexp"; "copy_sign"; "hypot";
  ]

let rec visibly_float (e : expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_constraint
      (_, { ptyp_desc = Ptyp_constr ({ txt = Lident "float"; _ }, []); _ }) ->
      true
  | Pexp_constraint (e, _) -> visibly_float e
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match txt with
      | Lident f -> List.mem f float_arith
      | Ldot (Lident "Float", f) | Ldot (Ldot (Lident "Stdlib", "Float"), f) ->
          List.mem f float_module_fns
      | Ldot (Lident "Stdlib", f) -> List.mem f float_arith
      | _ -> false)
  | _ -> false

let op_name (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt = Lident f; _ } when List.mem f comparison_ops -> Some f
  | Pexp_ident { txt = Ldot (Lident "Stdlib", f); _ }
    when List.mem f comparison_ops ->
      Some f
  | _ -> None

let checker =
  {
    Checker.id;
    keys = [ id ];
    describe =
      "no =, <>, ==, != or compare on expressions the checker can see are \
       floats";
    check =
      (fun ~emit source ->
        Checker.iter_expressions source.Checker.ast (fun e ->
            match e.pexp_desc with
            | Pexp_apply (op, ((_, a) :: (_, b) :: _ as args))
              when List.length args = 2 -> (
                match op_name op with
                | Some name when visibly_float a || visibly_float b ->
                    emit ~line:(Checker.line_of e.pexp_loc)
                      ~col:(Checker.col_of e.pexp_loc)
                      (Printf.sprintf
                         "float (%s) on a visibly-float operand; use \
                          Float.equal / an explicit tolerance, or suppress \
                          with (* lint: float-equality <reason> *)"
                         name)
                | _ -> ())
            | _ -> ()));
  }
