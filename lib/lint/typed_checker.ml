(* The typed-checker interface: a checker that sees a Typedtree (from
   a .cmt artifact or an in-process typecheck) instead of a Parsetree.
   Findings flow through the same driver [emit] as the syntactic
   checkers, so suppressions, JSON rendering and exit codes are
   identical. *)

type source = {
  path : string;  (* repo-relative, '/'-separated *)
  str : Typedtree.structure;
  in_lib : bool;  (* under lib/ — library code *)
}

type t = {
  id : string;
  keys : string list;  (* suppression keys this checker honours *)
  describe : string;
  check : emit:Checker.emit -> source -> unit;
}

(* Typed-tree paths render module aliases and wrapped-library prefixes
   in several spellings — "Parallel.Pool.map_rows",
   "Parallel__Pool.map_rows", "Stdlib!.Domain.spawn" — so comparisons
   work on normalized segments: strip trailing '!', and keep only the
   part of each segment after the last "__" (the dune wrapping
   separator).  The Path.t structure is walked directly rather than
   splitting [Path.name] on '.', because operator names ("+.", "/.")
   themselves contain dots. *)
let rec raw_segments p =
  match p with
  | Path.Pident id -> [ Ident.name id ]
  | Path.Pdot (q, s) -> raw_segments q @ [ s ]
  | Path.Papply (q, _) -> raw_segments q
  | Path.Pextra_ty (q, _) -> raw_segments q

let path_segments p =
  let strip s =
    (* Drop trailing '!' (module-alias marker). *)
    let n =
      let rec go i = if i > 0 && s.[i - 1] = '!' then go (i - 1) else i in
      go (String.length s)
    in
    let s = String.sub s 0 n in
    (* Keep only what follows the last "__". *)
    let start =
      let rec go i last =
        if i + 1 >= String.length s then last
        else if s.[i] = '_' && s.[i + 1] = '_' then go (i + 2) (i + 2)
        else go (i + 1) last
      in
      go 0 0
    in
    String.sub s start (String.length s - start)
  in
  raw_segments p
  |> List.filter_map (fun s ->
         let s = strip s in
         if s = "" then None else Some s)

(* Last two segments of a normalized path: the module and the name.
   [None] for the module on a bare identifier. *)
let last_two p =
  match List.rev (path_segments p) with
  | [] -> (None, "")
  | [ name ] -> (None, name)
  | name :: m :: _ -> (Some m, name)
