(* The alloc-free manifest: one line per hot function whose body must
   contain no syntactic allocation site.

     # comment
     lib/sim/stats.ml record_step_nodes
     lib/sim/engine.ml run.step_once

   The first field is the repo-relative file, the second a dotted
   binding path: toplevel [let]s, [module M = struct ... end] members,
   and (after a value segment) nested [let ... in] bindings. *)

type entry = { file : string; funcpath : string list; line : int }
type t = { path : string; entries : entry list }

let parse ~path text =
  let entries = ref [] and errors = ref [] in
  List.iteri
    (fun i raw ->
      let line = i + 1 in
      let s = String.trim raw in
      if s = "" || s.[0] = '#' then ()
      else
        match String.split_on_char ' ' s |> List.filter (fun w -> w <> "") with
        | [ file; func ] ->
            let funcpath = String.split_on_char '.' func in
            if List.exists (fun seg -> seg = "") funcpath then
              errors :=
                (line, Printf.sprintf "malformed function path '%s'" func)
                :: !errors
            else entries := { file; funcpath; line } :: !entries
        | _ ->
            errors :=
              ( line,
                Printf.sprintf
                  "malformed manifest line '%s' (want: FILE DOTTED.PATH)" s )
              :: !errors)
    (String.split_on_char '\n' text);
  ({ path; entries = List.rev !entries }, List.rev !errors)

let load path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse ~path text

let entries_for t file =
  List.filter (fun e -> e.file = file) t.entries

let files t =
  List.sort_uniq String.compare (List.map (fun e -> e.file) t.entries)
