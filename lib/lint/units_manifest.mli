(** The units-of-measure manifest (see [units.manifest]): units from a
    closed vocabulary assigned to function parameters/returns,
    toplevel values and record fields.  Strict both ways — unknown
    units or malformed lines are load errors, and entries the typed
    tree cannot account for become findings (see {!Units}). *)

(** [hz], [norm] (dimensionless, normalized), [celsius], [watt],
    [second], [joule]. *)
val vocabulary : string list

type fn = {
  f_file : string;
  f_name : string;  (** dotted binding path *)
  f_params : (string * string) list;  (** parameter name -> unit *)
  f_ret : string option;
  f_line : int;
}

type vval = { v_file : string; v_name : string; v_unit : string; v_line : int }

type field = {
  fd_file : string;
  fd_type : string;
  fd_field : string;
  fd_unit : string;
  fd_line : int;
}

type t = {
  path : string;
  fns : fn list;
  vals : vval list;
  fields : field list;
}

val empty : string -> t

(** [(manifest, errors)] where errors are [(line, message)]. *)
val parse : path:string -> string -> t * (int * string) list

val load : string -> t * (int * string) list

(** Every file the manifest names, sorted, deduplicated. *)
val files : t -> string list

(** Entries naming files outside [seen], as [(line, message)] pairs
    against the manifest itself. *)
val unknown_files : t -> seen:string list -> (int * string) list
