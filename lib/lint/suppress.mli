(** Suppression-comment index for one source file.

    Grammar, one physical line: [(* lint: KEY reason *)].  A
    suppression on line [L] silences matching findings on [L] and
    [L + 1].  The reason is mandatory, and [KEY] must be one of the
    keys passed to {!scan} — anything else is reported by
    {!problems}. *)

type t

(** Scan raw source text.  [keys] is the set of valid suppression
    keys; malformed comments and unknown keys are recorded as
    problems, not entries. *)
val scan : keys:string list -> string -> t

(** [active t ~keys ~line] is true when a suppression with one of
    [keys] sits on [line] or [line - 1]. *)
val active : t -> keys:string list -> line:int -> bool

(** True when any line of the file carries a suppression with this
    key (used for file-scoped keys such as [internal]). *)
val file_has : t -> key:string -> bool

(** Malformed suppression comments: [(line, description)]. *)
val problems : t -> (int * string) list
