(* Finding baseline: a checked-in set of stable finding ids (see
   Finding.id) that are acknowledged and do not fail the build.  The
   file format is one finding per line,

     <id> <file> [<checker>] <message...>

   where only the first whitespace-separated token (the id) is
   significant — the rest is context for the human reading the diff.
   '#' lines and blank lines are skipped.  A missing file is an empty
   baseline, so fresh checkouts and temp test trees just work. *)

let load path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    String.split_on_char '\n' text
    |> List.filter_map (fun raw ->
           let s = String.trim raw in
           if s = "" || s.[0] = '#' then None
           else
             match String.index_opt s ' ' with
             | Some i -> Some (String.sub s 0 i)
             | None -> Some s)
  end

let save path findings =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc
        "# Lint baseline: acknowledged findings, by stable id.\n\
         # Regenerate with `make lint-baseline`; only the first token per\n\
         # line (the id) is read back, the rest is for the reviewer.\n";
      List.iter
        (fun f ->
          Printf.fprintf oc "%s %s [%s] %s\n" (Finding.id f)
            f.Finding.file f.Finding.checker f.Finding.message)
        (List.sort_uniq Finding.compare findings))

(* Partition [findings] into (kept, n_baselined). *)
let filter ids findings =
  let baselined = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace baselined id ()) ids;
  let kept =
    List.filter (fun f -> not (Hashtbl.mem baselined (Finding.id f))) findings
  in
  (kept, List.length findings - List.length kept)
