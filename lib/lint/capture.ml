(* Cross-domain capture checker (typed).

   Closures handed to Parallel.Pool.map_rows / Parallel.Pool.map /
   Domain.spawn execute on other domains.  This checker walks the free
   variables of each shipped closure — transitively through same-file
   helper functions it calls — and flags any capture whose type is
   mutable shared state:

   - ref cells, bytes, Buffer.t, Hashtbl.t, Queue.t, Stack.t;
   - records with mutable fields, same-file (from the tree's own type
     declarations) or cross-module (resolved through the node
     environment when the build left us enough cmi context).

   Atomic.t, Mutex.t, Condition.t and Semaphore.* are the blessed
   sharing primitives and are exempt.  Arrays are deliberately NOT
   flagged: disjoint-index sharding of result arrays is this repo's
   core parallel idiom (see lib/parallel/pool.mli), and the syntactic
   domain-safety checker already polices the patterns around it.

   Boundary calls are recognised by their final two path segments, so
   the module must be spelled at the call site — pool.ml's own
   internal recursion into [map_rows] is not a boundary.  Free
   variables of other-module functions are not chased (shallow past
   the file edge); cross-file mutable state still gets caught when the
   closure touches it directly. *)

open Typedtree

let boundaries = [ ("Pool", "map_rows"); ("Pool", "map"); ("Domain", "spawn") ]

let is_arrow ty =
  match Types.get_desc ty with Types.Tarrow _ -> true | _ -> false

(* What a captured variable is, judged by its type; [None] = benign. *)
let mutability ~mutable_records env ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> (
      if Path.same p Predef.path_bytes then Some "bytes"
      else
        match Typed_checker.last_two p with
        | (Some "Stdlib" | None), "ref" -> Some "a ref cell"
        | Some "Bytes", "t" -> Some "bytes"
        | Some "Buffer", "t" -> Some "a Buffer.t"
        | Some "Hashtbl", "t" -> Some "a Hashtbl.t"
        | Some "Queue", "t" -> Some "a Queue.t"
        | Some "Stack", "t" -> Some "a Stack.t"
        | Some ("Atomic" | "Mutex" | "Condition" | "Semaphore"), _ -> None
        | _ -> (
            let mutable_record () =
              Some
                (Printf.sprintf "a mutable record (%s)"
                   (String.concat "." (Typed_checker.path_segments p)))
            in
            match p with
            | Path.Pident id
              when Hashtbl.mem mutable_records (Ident.unique_name id) ->
                mutable_record ()
            | _ -> (
                match Typed_load.find_type_decl env p with
                | Some { Types.type_kind = Types.Type_record (lds, _); _ }
                  when List.exists
                         (fun ld -> ld.Types.ld_mutable = Asttypes.Mutable)
                         lds ->
                    mutable_record ()
                | _ -> None)))
  | _ -> None

(* Free variables of [expr0]: idents used but not bound within it.
   Same-file function bindings among them are opened up in turn
   ([binding_tbl] maps ident unique-names to their defining
   expression), with a visited set against recursion; [via] remembers
   the first helper on the path for the message. *)
let free_vars ~binding_tbl expr0 =
  let used = Hashtbl.create 16 in
  let bound = Hashtbl.create 16 in
  let visited = Hashtbl.create 4 in
  let analyze ~via e =
    let it =
      {
        Tast_iterator.default_iterator with
        expr =
          (fun self ce ->
            (match ce.exp_desc with
            | Texp_ident (Path.Pident id, _, _) ->
                let key = Ident.unique_name id in
                if (not (Hashtbl.mem bound key)) && not (Hashtbl.mem used key)
                then
                  Hashtbl.replace used key (id, ce.exp_type, ce.exp_env, via)
            | Texp_for (id, _, _, _, _, _) ->
                Hashtbl.replace bound (Ident.unique_name id) ()
            | Texp_function { param; _ } ->
                Hashtbl.replace bound (Ident.unique_name param) ()
            | _ -> ());
            Tast_iterator.default_iterator.expr self ce);
        pat =
          (fun (type k) self (p : k Typedtree.general_pattern) ->
            (match p.pat_desc with
            | Tpat_var (id, _) ->
                Hashtbl.replace bound (Ident.unique_name id) ()
            | Tpat_alias (_, id, _) ->
                Hashtbl.replace bound (Ident.unique_name id) ()
            | _ -> ());
            Tast_iterator.default_iterator.pat self p);
      }
    in
    it.expr it e
  in
  analyze ~via:None expr0;
  let rec close () =
    let todo =
      Hashtbl.fold
        (fun key (id, ty, _env, via) acc ->
          if
            is_arrow ty
            && (not (Hashtbl.mem visited key))
            && Hashtbl.mem binding_tbl key
          then (key, id, via) :: acc
          else acc)
        used []
    in
    if todo <> [] then begin
      List.iter
        (fun (key, id, via) ->
          Hashtbl.replace visited key ();
          let via =
            Some (match via with None -> Ident.name id | Some v -> v)
          in
          analyze ~via (Hashtbl.find binding_tbl key))
        todo;
      close ()
    end
  in
  close ();
  Hashtbl.fold
    (fun key (id, ty, env, via) acc ->
      if is_arrow ty || Hashtbl.mem visited key then acc
      else (id, ty, env, via) :: acc)
    used []
  |> List.sort (fun (a, _, _, _) (b, _, _, _) ->
         String.compare (Ident.unique_name a) (Ident.unique_name b))

let check ~(emit : Checker.emit) (src : Typed_checker.source) =
  let str = src.Typed_checker.str in
  let binding_tbl = Hashtbl.create 64 in
  let mutable_records = Hashtbl.create 8 in
  let collect =
    {
      Tast_iterator.default_iterator with
      value_binding =
        (fun self vb ->
          (match vb.vb_pat.pat_desc with
          | Tpat_var (id, _) ->
              Hashtbl.replace binding_tbl (Ident.unique_name id) vb.vb_expr
          | _ -> ());
          Tast_iterator.default_iterator.value_binding self vb);
      type_declaration =
        (fun self d ->
          (match d.typ_kind with
          | Ttype_record lds
            when List.exists
                   (fun ld -> ld.ld_mutable = Asttypes.Mutable)
                   lds ->
              Hashtbl.replace mutable_records
                (Ident.unique_name d.typ_id) ()
          | _ -> ());
          Tast_iterator.default_iterator.type_declaration self d);
    }
  in
  collect.structure collect str;
  let reported = Hashtbl.create 8 in
  let boundary_call e =
    match e.exp_desc with
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
        match Typed_checker.last_two p with
        | Some m, name when List.mem (m, name) boundaries ->
            let closure =
              List.find_map
                (function
                  | Asttypes.Nolabel, Some a when is_arrow a.exp_type -> Some a
                  | _ -> None)
                args
            in
            Option.map
              (fun c -> (String.concat "." (Typed_checker.path_segments p), c))
              closure
        | _ -> None)
    | _ -> None
  in
  let scan =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match boundary_call e with
          | Some (callee, closure) ->
              let line = Checker.line_of e.exp_loc in
              let col = Checker.col_of e.exp_loc in
              List.iter
                (fun (id, ty, env, via) ->
                  match mutability ~mutable_records env ty with
                  | Some kind ->
                      let key = (line, Ident.unique_name id) in
                      if not (Hashtbl.mem reported key) then begin
                        Hashtbl.replace reported key ();
                        let via_s =
                          match via with
                          | None -> ""
                          | Some v -> Printf.sprintf " (reached through '%s')" v
                        in
                        emit ~line ~col
                          (Printf.sprintf
                             "closure crossing domains via %s captures %s \
                              '%s'%s; share it through Atomic or message \
                              passing, or keep it domain-local"
                             callee kind (Ident.name id) via_s)
                      end
                  | None -> ())
                (free_vars ~binding_tbl closure)
          | None -> ());
          Tast_iterator.default_iterator.expr self e);
    }
  in
  scan.structure scan str

let checker : Typed_checker.t =
  {
    Typed_checker.id = "capture";
    keys = [ "capture"; "cross-domain" ];
    describe =
      "cross-domain capture: mutable state (refs, mutable records, \
       Bytes/Buffer/Hashtbl/...) captured by closures shipped through \
       Parallel.Pool.map_rows/map or Domain.spawn";
    check = (fun ~emit src -> check ~emit src);
  }
