(** Units-of-measure checker over typed trees: propagates the units
    declared in [units.manifest] through float arithmetic and flags
    mixed-unit addition/comparison, absolute-for-normalized argument
    confusions, and declaration/definition mismatches.  Manifest
    entries the typed tree cannot account for are reported against the
    manifest file itself (suppression-exempt, like [lint.manifest]). *)

val checker : Units_manifest.t -> Typed_checker.t
