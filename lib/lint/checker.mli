(** The pluggable checker interface and shared parsetree helpers. *)

type source = {
  path : string;  (** repo-relative, ['/']-separated *)
  text : string;
  ast : Parsetree.structure;
  in_lib : bool;  (** under [lib/] — library code *)
  mli_exists : bool option;  (** [None] when unknown (string fixtures) *)
  internal : bool;  (** carries a [(* lint: internal ... *)] marker *)
}

(** [emit ?file ?suppress_at ~line ?col msg].  [file] overrides the
    source path (manifest-level findings; these bypass suppression);
    [suppress_at] adds extra lines at which a suppression comment
    also silences the finding. *)
type emit =
  ?file:string -> ?suppress_at:int list -> line:int -> ?col:int -> string -> unit

type t = {
  id : string;
  keys : string list;  (** suppression keys this checker honours *)
  describe : string;
  check : emit:emit -> source -> unit;
}

(** Collapse ['\\'] to ['/'] and drop empty and ["."] segments, so
    ["./lib/a.ml"] classifies like ["lib/a.ml"]. *)
val normalize_path : string -> string

(** First segment of the normalized path. *)
val top_dir : string -> string

(** [in_dir ~dir path] is true when the normalized [path] lives under
    the top-level directory [dir]. *)
val in_dir : dir:string -> string -> bool

val line_of : Location.t -> int
val col_of : Location.t -> int

(** [(n_params, has_optional, body)] of a function binding after
    peeling leading [fun]/[newtype]/constraint nodes. *)
val peel_params :
  ?n:int -> ?opt:bool -> Parsetree.expression ->
  int * bool * Parsetree.expression

(** Apply [f] to every expression of the structure, nested modules
    included. *)
val iter_expressions :
  Parsetree.structure -> (Parsetree.expression -> unit) -> unit
