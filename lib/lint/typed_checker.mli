(** The typed-checker interface: checkers over [Typedtree.structure]
    (loaded from [.cmt] artifacts or typechecked in-process) sharing
    the driver's [emit]/suppression machinery with the syntactic
    checkers. *)

type source = {
  path : string;  (** repo-relative, ['/']-separated *)
  str : Typedtree.structure;
  in_lib : bool;  (** under [lib/] — library code *)
}

type t = {
  id : string;
  keys : string list;  (** suppression keys this checker honours *)
  describe : string;
  check : emit:Checker.emit -> source -> unit;
}

(** Normalized segments of a typed-tree path: trailing ['!'] stripped,
    each segment reduced to what follows the last ["__"] (the dune
    library-wrapping separator), empty segments dropped.  So
    ["Parallel__Pool.map_rows"] and ["Parallel.Pool.map_rows"] both
    end in [["Pool"; "map_rows"]]. *)
val path_segments : Path.t -> string list

(** [(module, name)] from the last two normalized segments; the module
    is [None] for a bare identifier. *)
val last_two : Path.t -> string option * string
