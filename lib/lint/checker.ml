(* The pluggable checker interface.  A checker sees one parsed source
   file and emits findings through the driver-provided [emit]; the
   driver owns suppression filtering and sorting. *)

type source = {
  path : string;  (* repo-relative, '/'-separated *)
  text : string;
  ast : Parsetree.structure;
  in_lib : bool;  (* under lib/ — library code *)
  mli_exists : bool option;  (* None when unknown (string fixtures) *)
  internal : bool;  (* carries a (* lint: internal ... *) marker *)
}

(* [emit ?file ?suppress_at ~line ?col msg]: [file] overrides the
   source path (manifest-level findings; these bypass suppression);
   [suppress_at] adds extra lines at which a suppression comment also
   silences this finding (e.g. the head of a multi-line binding). *)
type emit =
  ?file:string -> ?suppress_at:int list -> line:int -> ?col:int -> string -> unit

type t = {
  id : string;
  keys : string list;  (* suppression keys this checker honours *)
  describe : string;
  check : emit:emit -> source -> unit;
}

(* Repo-relative path normalization: collapse '\' to '/', drop empty
   and '.' segments, so "./lib/a.ml" and "lib//a.ml" classify like
   "lib/a.ml".  ".." is kept — a path escaping the root should never
   classify as library code. *)
let normalize_path p =
  String.map (fun c -> if c = '\\' then '/' else c) p
  |> String.split_on_char '/'
  |> List.filter (fun s -> s <> "" && s <> ".")
  |> String.concat "/"

(* First segment of the normalized path: "lib/sim/engine.ml" -> "lib". *)
let top_dir p =
  let p = normalize_path p in
  match String.index_opt p '/' with
  | Some i -> String.sub p 0 i
  | None -> p

let in_dir ~dir path = String.equal (top_dir path) dir

let line_of (loc : Location.t) = loc.loc_start.Lexing.pos_lnum

let col_of (loc : Location.t) =
  loc.loc_start.Lexing.pos_cnum - loc.loc_start.Lexing.pos_bol

(* Leading parameters of a function binding: count of syntactic
   parameters and whether any is optional, plus the body behind them.
   Peels [fun], [fun (type a)], and constraint/coercion wrappers. *)
let rec peel_params ?(n = 0) ?(opt = false) (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun (label, _, _, body) ->
      let opt =
        opt || match label with Asttypes.Optional _ -> true | _ -> false
      in
      peel_params ~n:(n + 1) ~opt body
  | Pexp_newtype (_, body) -> peel_params ~n ~opt body
  | Pexp_constraint (body, _) | Pexp_coerce (body, _, _) ->
      peel_params ~n ~opt body
  | _ -> (n, opt, e)

(* Walk every expression of a structure, including nested modules. *)
let iter_expressions structure f =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          f e;
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it structure
