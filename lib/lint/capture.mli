(** Cross-domain capture checker over typed trees: flags mutable state
    (ref cells, mutable records, bytes, Buffer/Hashtbl/Queue/Stack)
    captured — directly or through same-file helpers — by closures
    shipped across domains via [Parallel.Pool.map_rows],
    [Parallel.Pool.map] or [Domain.spawn].  [Atomic.t]/[Mutex.t] and
    friends are exempt, as are arrays (disjoint-index sharding is the
    repo's parallel idiom). *)

val checker : Typed_checker.t
