(** The lint driver: file discovery, parsing, syntactic and typed
    checker dispatch, suppression filtering. *)

(** Every valid suppression key. *)
val all_keys : string list

(** The syntactic checker set: domain-safety, float-equality,
    mli-coverage, plus alloc-free when a manifest is supplied. *)
val checkers : ?manifest:Manifest.t -> unit -> Checker.t list

(** The typed checker set: cross-domain capture, plus units-of-measure
    when a units manifest is supplied. *)
val typed_checkers : ?units:Units_manifest.t -> unit -> Typed_checker.t list

(** Lint one source text.  [path] decides which checkers apply (the
    [lib/] prefix marks library code); [mli_exists] feeds the
    mli-coverage checker (omit it for fixture strings).  [typed]
    selects the typed pass: [`Off] (default — fixture strings),
    [`Tree t] (a tree the caller loaded), or [`Infer] (in-process
    typecheck; silently skipped when the file is not self-contained).
    Findings are sorted and already suppression-filtered. *)
val lint_source :
  ?manifest:Manifest.t ->
  ?units:Units_manifest.t ->
  ?typed:[ `Off | `Tree of Typedtree.structure | `Infer ] ->
  ?mli_exists:bool ->
  path:string ->
  string ->
  Finding.t list

(** Manifest entries whose file is not in [seen], as findings against
    the manifest itself. *)
val manifest_unknown_files :
  Manifest.t -> seen:string list -> Finding.t list

(** The directories {!run_repo} walks by default:
    [lib], [bin], [bench]. *)
val default_dirs : string list

type result = {
  findings : Finding.t list;
  files : string list;  (** files linted, repo-relative, sorted *)
  typed : int;  (** how many of them got a typed pass *)
}

(** Lint the repository: walk [dirs] under [root], lint every [.ml],
    check both manifests round-trip.  When [typed] (default), index
    the build's [.cmt] artifacts and run the typed checkers on every
    file with a tree (falling back to an in-process typecheck for
    self-contained files); a run where no file at all could be typed
    gets a [typed-load] finding pointing at [dune build @check]. *)
val run_repo :
  ?dirs:string list ->
  root:string ->
  ?manifest_path:string ->
  ?units_path:string ->
  ?typed:bool ->
  unit ->
  result
