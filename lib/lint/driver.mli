(** The lint driver: file discovery, parsing, checker dispatch,
    suppression filtering. *)

(** Every valid suppression key. *)
val all_keys : string list

(** The checker set: domain-safety, float-equality, mli-coverage,
    plus alloc-free when a manifest is supplied. *)
val checkers : ?manifest:Manifest.t -> unit -> Checker.t list

(** Lint one source text.  [path] decides which checkers apply (the
    [lib/] prefix marks library code); [mli_exists] feeds the
    mli-coverage checker (omit it for fixture strings).  Findings are
    sorted and already suppression-filtered. *)
val lint_source :
  ?manifest:Manifest.t ->
  ?mli_exists:bool ->
  path:string ->
  string ->
  Finding.t list

(** Manifest entries whose file is not in [seen], as findings against
    the manifest itself. *)
val manifest_unknown_files :
  Manifest.t -> seen:string list -> Finding.t list

(** The directories {!run_repo} walks by default:
    [lib], [bin], [bench]. *)
val default_dirs : string list

(** Lint the repository: walk [dirs] under [root], lint every [.ml],
    check the manifest round-trip.  Returns the sorted findings and
    the list of files linted. *)
val run_repo :
  ?dirs:string list ->
  root:string ->
  ?manifest_path:string ->
  unit ->
  Finding.t list * string list
