(** One static-analysis finding: a location, the checker that produced
    it, and a human-readable message. *)

type t = {
  file : string;  (** repo-relative path, ['/']-separated *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based column of the offending construct *)
  checker : string;  (** checker id, e.g. ["float-equality"] *)
  message : string;
}

val v : file:string -> line:int -> ?col:int -> checker:string -> string -> t

(** Stable 12-hex-char identity over (checker, file, message) — line-
    independent, so baselined findings survive unrelated edits. *)
val id : t -> string

(** Total order: file, then line, then column, then checker. *)
val compare : t -> t -> int

(** [file:line:col: [checker] message] — one line, grep-friendly. *)
val to_string : t -> string

val to_json : t -> string

(** JSON array of {!to_json} objects. *)
val list_to_json : t list -> string
