(* Units-of-measure checker (typed).

   The manifest assigns vocabulary units (hz, norm, celsius, watt,
   second, joule) to function parameters/returns, toplevel values and
   record fields.  This checker propagates those units through float
   arithmetic inside each compilation unit and flags:

   - mixed-unit addition/subtraction/min/max (hz +. celsius);
   - mixed-unit comparisons (a 'norm' frequency against a raw hz cap
     is the classic one in this code base);
   - an argument whose inferred unit contradicts the declared
     parameter unit — in particular an absolute value passed where a
     normalized ('norm') parameter is declared;
   - a store into a record field, or a function return, whose unit
     contradicts the declaration;
   - manifest entries the typed tree cannot account for (renamed
     parameter, deleted binding) — reported against the manifest
     itself, bypassing suppressions, exactly like lint.manifest.

   The inference is deliberately intra-procedural and conservative:
   anything it cannot prove has unit Unknown and is never flagged.
   Float literals are a third state, neutral under scaling, so
   [0.5 *. f] keeps f's unit and [f +. 0.001] stays comparable.
   A handful of dimensional identities are encoded — u /. u = norm,
   norm *. u = u, watt *. second = joule and its two quotients —
   because the thermal pipeline leans on them.

   Array values carry their element unit: [m.core_fmax] is hz per
   element, and [Array.get]/[.(i)] preserves it.  Optional parameters
   with defaults lose their unit at the desugaring boundary (the
   inner rebinding is a fresh ident); declare such units on the
   callee they feed instead. *)

open Typedtree

type u = Lit | Known of string | Unknown

let modname_of_file path =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename path))

let index_where f l =
  let rec go i = function
    | [] -> None
    | x :: tl -> if f x then Some i else go (i + 1) tl
  in
  go 0 l

let rec arrow_params ty =
  match Types.get_desc ty with
  | Types.Tarrow (l, a, b, _) -> (l, a) :: arrow_params b
  | _ -> []

let is_arrow ty =
  match Types.get_desc ty with Types.Tarrow _ -> true | _ -> false

let is_float ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, [], _) -> Path.same p Predef.path_float
  | _ -> false

(* Operator classification on normalized (module, name) of the applied
   identifier.  [None] for the module means a bare ident. *)
type op = Same | Mul | Div | Cmp | Preserve | Aget | Aset

let op_kind m name =
  match (m, name) with
  | (Some "Stdlib" | None), ("+." | "-.") -> Some Same
  | (Some "Stdlib" | None | Some "Float"), ("min" | "max") -> Some Same
  | Some "Float", ("add" | "sub") -> Some Same
  | (Some "Stdlib" | None), "*." | Some "Float", "mul" -> Some Mul
  | (Some "Stdlib" | None), "/." | Some "Float", "div" -> Some Div
  | (Some "Stdlib" | None), ("=" | "<>" | "<" | "<=" | ">" | ">=" | "compare")
  | Some "Float", ("compare" | "equal") ->
      Some Cmp
  | (Some "Stdlib" | None), ("abs_float" | "~-." | "~+.")
  | Some "Float", ("abs" | "neg") ->
      Some Preserve
  | Some "Array", ("get" | "unsafe_get") -> Some Aget
  | Some "Array", ("set" | "unsafe_set") -> Some Aset
  | _ -> None

let join us =
  if List.exists (fun x -> x = Unknown) us then Unknown
  else
    match
      List.sort_uniq compare
        (List.filter_map (function Known u -> Some u | _ -> None) us)
    with
    | [] -> Lit
    | [ u ] -> Known u
    | _ -> Unknown

(* Call-site lookup tables, built once from the manifest.  fn/val keys
   are (module, name) where the module is the last dotted component of
   the manifest name, or the file's own module for a plain name; field
   keys add the record type name. *)
type tables = {
  manifest : Units_manifest.t;
  fn_by_call : (string * string, Units_manifest.fn) Hashtbl.t;
  val_by_call : (string * string, Units_manifest.vval) Hashtbl.t;
  field_unit : (string * string * string, string) Hashtbl.t;
}

let call_key file dotted =
  match List.rev (String.split_on_char '.' dotted) with
  | name :: m :: _ -> (m, name)
  | [ name ] -> (modname_of_file file, name)
  | [] -> (modname_of_file file, dotted)

let build_tables manifest =
  let fn_by_call = Hashtbl.create 16 in
  let val_by_call = Hashtbl.create 16 in
  let field_unit = Hashtbl.create 16 in
  List.iter
    (fun (f : Units_manifest.fn) ->
      Hashtbl.replace fn_by_call (call_key f.f_file f.f_name) f)
    manifest.Units_manifest.fns;
  List.iter
    (fun (v : Units_manifest.vval) ->
      Hashtbl.replace val_by_call (call_key v.v_file v.v_name) v)
    manifest.Units_manifest.vals;
  List.iter
    (fun (f : Units_manifest.field) ->
      Hashtbl.replace field_unit
        (modname_of_file f.fd_file, f.fd_type, f.fd_field)
        f.fd_unit)
    manifest.Units_manifest.fields;
  { manifest; fn_by_call; val_by_call; field_unit }

(* Map each declared (name, unit) parameter to an index in the callee's
   arrow chain: labelled parameters by label, the rest in manifest
   order against the unclaimed unlabelled float slots.  Typedtree
   application arguments are already in arrow order, so the index maps
   straight onto the argument list. *)
let resolve_param_slots params arrows =
  let n = List.length arrows in
  let arr = Array.of_list arrows in
  let used = Array.make (max n 1) false in
  let by_label =
    List.map
      (fun (pname, punit) ->
        let idx =
          index_where
            (fun (l, _) ->
              match l with
              | Asttypes.Labelled s | Asttypes.Optional s -> String.equal s pname
              | Asttypes.Nolabel -> false)
            arrows
        in
        (match idx with Some i -> used.(i) <- true | None -> ());
        ((pname, punit), idx))
      params
  in
  let cursor = ref 0 in
  List.map
    (fun (p, idx) ->
      match idx with
      | Some _ -> (p, idx)
      | None ->
          let rec grab i =
            if i >= n then None
            else
              let l, ty = arr.(i) in
              if (not used.(i)) && l = Asttypes.Nolabel && is_float ty then (
                used.(i) <- true;
                cursor := i + 1;
                Some i)
              else grab (i + 1)
          in
          (p, grab !cursor))
    by_label

(* Peel the leading single-case fun chain of a binding, collecting
   (label, (ident, var-name) option) per parameter. *)
let rec peel_fn acc e =
  match e.exp_desc with
  | Texp_function { arg_label; cases = [ { c_lhs; c_guard = None; c_rhs } ]; _ }
    ->
      let var =
        match c_lhs.pat_desc with
        | Tpat_var (id, nm) -> Some (id, nm.Location.txt)
        | Tpat_alias (_, id, nm) -> Some (id, nm.Location.txt)
        | _ -> None
      in
      peel_fn ((arg_label, var) :: acc) c_rhs
  | _ -> (List.rev acc, e)

let check tables ~(emit : Checker.emit) (src : Typed_checker.source) =
  let manifest = tables.manifest in
  let cur_mod = modname_of_file src.Typed_checker.path in
  let env : (string, u) Hashtbl.t = Hashtbl.create 64 in
  let bind id u = Hashtbl.replace env (Ident.unique_name id) u in
  let at e = (Checker.line_of e.exp_loc, Checker.col_of e.exp_loc) in
  let flag e msg =
    let line, col = at e in
    emit ~line ~col msg
  in
  let field_key (lbl : Types.label_description) =
    match Types.get_desc lbl.Types.lbl_res with
    | Types.Tconstr (p, _, _) ->
        let m, ty = Typed_checker.last_two p in
        Some (Option.value m ~default:cur_mod, ty, lbl.Types.lbl_name)
    | _ -> None
  in
  let field_decl lbl =
    Option.bind (field_key lbl) (Hashtbl.find_opt tables.field_unit)
  in
  let display p = String.concat "." (Typed_checker.path_segments p) in
  let rec infer e =
    match e.exp_desc with
    | Texp_ident (p, _, _) -> (
        match p with
        | Path.Pident id -> (
            match Hashtbl.find_opt env (Ident.unique_name id) with
            | Some u -> u
            | None -> lookup_val p)
        | _ -> lookup_val p)
    | Texp_constant (Asttypes.Const_float _) -> Lit
    | Texp_constant _ -> Unknown
    | Texp_apply (({ exp_desc = Texp_ident (p, _, _); _ } as fexpr), args) ->
        apply fexpr p args e
    | Texp_apply (f, args) ->
        ignore (infer f);
        List.iter (fun (_, eo) -> Option.iter (fun a -> ignore (infer a)) eo) args;
        Unknown
    | Texp_field (e0, _, lbl) -> (
        ignore (infer e0);
        match field_decl lbl with Some u -> Known u | None -> Unknown)
    | Texp_setfield (e0, _, lbl, v) ->
        ignore (infer e0);
        let vu = infer v in
        (match (field_decl lbl, vu) with
        | Some d, Known w when w <> d ->
            flag e
              (Printf.sprintf
                 "field '%s' holds '%s' but the stored value has unit '%s'"
                 lbl.Types.lbl_name d w)
        | _ -> ());
        Unknown
    | Texp_record { fields; extended_expression; _ } ->
        Option.iter (fun e0 -> ignore (infer e0)) extended_expression;
        Array.iter
          (fun (lbl, def) ->
            match def with
            | Overridden (_, v) -> (
                let vu = infer v in
                match (field_decl lbl, vu) with
                | Some d, Known w when w <> d ->
                    flag v
                      (Printf.sprintf
                         "field '%s' holds '%s' but the initializer has unit \
                          '%s'"
                         lbl.Types.lbl_name d w)
                | _ -> ())
            | _ -> ())
          fields;
        Unknown
    | Texp_let (_, vbs, body) ->
        List.iter
          (fun vb ->
            let u = infer vb.vb_expr in
            match vb.vb_pat.pat_desc with
            | Tpat_var (id, _) | Tpat_alias (_, id, _) -> bind id u
            | _ -> ())
          vbs;
        infer body
    | Texp_sequence (a, b) ->
        ignore (infer a);
        infer b
    | Texp_ifthenelse (c, t, eo) -> (
        ignore (infer c);
        let tu = infer t in
        match eo with
        | Some el -> join [ tu; infer el ]
        | None -> Unknown)
    | Texp_match (scrut, cases, _) ->
        ignore (infer scrut);
        join
          (List.map
             (fun c ->
               Option.iter (fun g -> ignore (infer g)) c.c_guard;
               infer c.c_rhs)
             cases)
    | Texp_try (body, cases) ->
        join
          (infer body
          :: List.map
               (fun c ->
                 Option.iter (fun g -> ignore (infer g)) c.c_guard;
                 infer c.c_rhs)
               cases)
    | Texp_array els -> join (List.map infer els)
    | _ ->
        descend e;
        Unknown
  and descend e =
    let it =
      {
        Tast_iterator.default_iterator with
        expr = (fun _ ce -> ignore (infer ce));
      }
    in
    Tast_iterator.default_iterator.expr it e
  and lookup_val p =
    let m, name = Typed_checker.last_two p in
    match
      Hashtbl.find_opt tables.val_by_call
        (Option.value m ~default:cur_mod, name)
    with
    | Some v -> Known v.Units_manifest.v_unit
    | None -> Unknown
  and apply fexpr p args whole =
    let m, name = Typed_checker.last_two p in
    let two_nolabel () =
      match
        List.filter_map
          (function Asttypes.Nolabel, Some a -> Some a | _ -> None)
          args
      with
      | [ a; b ] -> Some (a, b)
      | _ -> None
    in
    let infer_rest () =
      List.iter (fun (_, eo) -> Option.iter (fun a -> ignore (infer a)) eo) args
    in
    match op_kind m name with
    | Some Same -> (
        match two_nolabel () with
        | Some (a, b) -> (
            let ua = infer a and ub = infer b in
            match (ua, ub) with
            | Known x, Known y when x <> y ->
                flag whole
                  (Printf.sprintf "mixed units: '%s' combines '%s' and '%s'"
                     name x y);
                Unknown
            | Known x, _ | _, Known x -> Known x
            | Lit, Lit -> Lit
            | _ -> Unknown)
        | None ->
            infer_rest ();
            Unknown)
    | Some Mul -> (
        match two_nolabel () with
        | Some (a, b) -> (
            let ua = infer a and ub = infer b in
            match (ua, ub) with
            | Lit, Lit -> Lit
            | Lit, x | x, Lit -> x
            | Known "norm", x | x, Known "norm" -> x
            | Known "watt", Known "second" | Known "second", Known "watt" ->
                Known "joule"
            | _ -> Unknown)
        | None ->
            infer_rest ();
            Unknown)
    | Some Div -> (
        match two_nolabel () with
        | Some (a, b) -> (
            let ua = infer a and ub = infer b in
            match (ua, ub) with
            | Known x, Known y when x = y -> Known "norm"
            | Known "joule", Known "second" -> Known "watt"
            | Known "joule", Known "watt" -> Known "second"
            | x, Known "norm" -> x
            | x, Lit -> x
            | _ -> Unknown)
        | None ->
            infer_rest ();
            Unknown)
    | Some Cmp ->
        (match two_nolabel () with
        | Some (a, b) -> (
            match (infer a, infer b) with
            | Known x, Known y when x <> y ->
                flag whole
                  (Printf.sprintf
                     "mixed units: comparison ('%s') between '%s' and '%s'"
                     name x y)
            | _ -> ())
        | None -> infer_rest ());
        Unknown
    | Some Preserve -> (
        match
          List.filter_map
            (function Asttypes.Nolabel, Some a -> Some a | _ -> None)
            args
        with
        | [ a ] -> infer a
        | _ ->
            infer_rest ();
            Unknown)
    | Some Aget -> (
        match args with
        | (_, Some arr) :: rest ->
            let u = infer arr in
            List.iter
              (fun (_, eo) -> Option.iter (fun a -> ignore (infer a)) eo)
              rest;
            u
        | _ -> Unknown)
    | Some Aset ->
        (match
           List.filter_map
             (function Asttypes.Nolabel, Some a -> Some a | _ -> None)
             args
         with
        | [ arr; _idx; v ] -> (
            let tu = infer arr and vu = infer v in
            match (tu, vu) with
            | Known d, Known w when d <> w ->
                flag whole
                  (Printf.sprintf
                     "array holds '%s' but the stored value has unit '%s'" d w)
            | _ -> ())
        | other -> List.iter (fun a -> ignore (infer a)) other);
        Unknown
    | None -> (
        match
          Hashtbl.find_opt tables.fn_by_call
            (Option.value m ~default:cur_mod, name)
        with
        | Some fentry ->
            let arrows = arrow_params fexpr.exp_type in
            let arg_units =
              List.map (fun (_, eo) -> Option.map (fun a -> (a, infer a)) eo) args
            in
            let slots =
              resolve_param_slots fentry.Units_manifest.f_params arrows
            in
            List.iter
              (fun ((pname, punit), idx) ->
                match Option.bind idx (List.nth_opt arg_units) with
                | Some (Some (a, Known w)) when w <> punit ->
                    if punit = "norm" then
                      flag a
                        (Printf.sprintf
                           "absolute '%s' value passed where parameter '%s' \
                            of %s is declared normalized ('norm')"
                           w pname (display p))
                    else
                      flag a
                        (Printf.sprintf
                           "argument '%s' of %s has unit '%s' but '%s' is \
                            declared"
                           pname (display p) w punit)
                | _ -> ())
              slots;
            if is_arrow whole.exp_type then Unknown
            else (
              match fentry.Units_manifest.f_ret with
              | Some r -> Known r
              | None -> Unknown)
        | None ->
            infer_rest ();
            Unknown)
  in
  (* Definition walk: match manifest entries for this file against the
     bindings (and record declarations) the typed tree actually has;
     seed the environment from declared parameter/value units; verify
     declared returns against the inferred body unit. *)
  let my_fns =
    List.filter
      (fun (f : Units_manifest.fn) -> f.f_file = src.Typed_checker.path)
      manifest.Units_manifest.fns
  and my_vals =
    List.filter
      (fun (v : Units_manifest.vval) -> v.v_file = src.Typed_checker.path)
      manifest.Units_manifest.vals
  and my_fields =
    List.filter
      (fun (f : Units_manifest.field) -> f.fd_file = src.Typed_checker.path)
      manifest.Units_manifest.fields
  in
  let matched : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let mark line = Hashtbl.replace matched line () in
  let check_fn_def (fentry : Units_manifest.fn) vb_expr =
    let params, body = peel_fn [] vb_expr in
    List.iter
      (fun (pname, punit) ->
        let found =
          List.find_opt
            (fun (l, var) ->
              match l with
              | Asttypes.Labelled s | Asttypes.Optional s -> String.equal s pname
              | Asttypes.Nolabel -> (
                  match var with
                  | Some (_, nm) -> String.equal nm pname
                  | None -> false))
            params
        in
        match found with
        | Some (_, Some (id, _)) -> bind id (Known punit)
        | Some (_, None) -> ()
        | None ->
            emit ~file:manifest.Units_manifest.path ~line:fentry.f_line
              (Printf.sprintf
                 "units manifest: fn '%s' in %s has no parameter '%s' — \
                  update the entry"
                 fentry.f_name fentry.f_file pname))
      fentry.f_params;
    let bu = infer body in
    match (fentry.f_ret, bu) with
    | Some r, Known w when w <> r ->
        flag body
          (Printf.sprintf
             "body of '%s' has unit '%s' but return unit '%s' is declared"
             fentry.f_name w r)
    | _ -> ()
  in
  let rec walk_items prefix items =
    List.iter
      (fun item ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                match vb.vb_pat.pat_desc with
                | Tpat_var (id, nm) | Tpat_alias (_, id, nm) -> (
                    let dotted =
                      String.concat "." (prefix @ [ nm.Location.txt ])
                    in
                    match
                      List.find_opt
                        (fun (f : Units_manifest.fn) -> f.f_name = dotted)
                        my_fns
                    with
                    | Some fentry ->
                        mark fentry.f_line;
                        check_fn_def fentry vb.vb_expr
                    | None -> (
                        match
                          List.find_opt
                            (fun (v : Units_manifest.vval) -> v.v_name = dotted)
                            my_vals
                        with
                        | Some ventry ->
                            mark ventry.v_line;
                            (match infer vb.vb_expr with
                            | Known w when w <> ventry.v_unit ->
                                flag vb.vb_expr
                                  (Printf.sprintf
                                     "value '%s' declared '%s' but its \
                                      definition has unit '%s'"
                                     ventry.v_name ventry.v_unit w)
                            | _ -> ());
                            bind id (Known ventry.v_unit)
                        | None -> bind id (infer vb.vb_expr)))
                | _ -> ignore (infer vb.vb_expr))
              vbs
        | Tstr_eval (e, _) -> ignore (infer e)
        | Tstr_type (_, decls) ->
            List.iter
              (fun d ->
                match d.typ_kind with
                | Ttype_record lds ->
                    List.iter
                      (fun (fd : Units_manifest.field) ->
                        if
                          fd.fd_type = d.typ_name.Location.txt
                          && List.exists
                               (fun ld ->
                                 ld.ld_name.Location.txt = fd.fd_field)
                               lds
                        then mark fd.fd_line)
                      my_fields
                | _ -> ())
              decls
        | Tstr_module mb -> (
            let sub =
              match mb.mb_expr.mod_desc with
              | Tmod_structure s -> Some s
              | Tmod_constraint ({ mod_desc = Tmod_structure s; _ }, _, _, _)
                ->
                  Some s
              | _ -> None
            in
            match (mb.mb_id, sub) with
            | Some id, Some s ->
                walk_items (prefix @ [ Ident.name id ]) s.str_items
            | _ -> ())
        | _ -> ())
      items
  in
  walk_items [] src.Typed_checker.str.str_items;
  let complain line what name =
    if not (Hashtbl.mem matched line) then
      emit ~file:manifest.Units_manifest.path ~line
        (Printf.sprintf
           "units manifest: %s '%s' not found in %s — update the entry" what
           name src.Typed_checker.path)
  in
  List.iter
    (fun (f : Units_manifest.fn) -> complain f.f_line "fn" f.f_name)
    my_fns;
  List.iter
    (fun (v : Units_manifest.vval) -> complain v.v_line "val" v.v_name)
    my_vals;
  List.iter
    (fun (f : Units_manifest.field) ->
      complain f.fd_line "record field"
        (f.fd_type ^ "." ^ f.fd_field))
    my_fields

let checker manifest : Typed_checker.t =
  let tables = build_tables manifest in
  {
    Typed_checker.id = "units";
    keys = [ "units" ];
    describe =
      "units-of-measure: mixed-unit arithmetic/comparisons and \
       absolute-vs-normalized argument confusions, per units.manifest";
    check = (fun ~emit src -> check tables ~emit src);
  }
