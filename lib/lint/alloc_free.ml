(* Alloc-free manifest: the bodies of the listed hot-path functions
   must contain no syntactic allocation site — tuple/record/array
   construction, non-constant constructors ([Some], [::], ...),
   closures, [lazy], or partial application of a same-file function.
   This statically complements the runtime [Gc.minor_words] test: the
   test proves one trace allocates nothing, the manifest proves no
   allocating *syntax* sneaks back into any covered body.

   Deliberate blind spots (documented in DESIGN.md):
   - [ref] is not flagged: local refs that do not escape compile to
     mutable variables, and escaping ones are almost always a design
     choice the surrounding code comments on.
   - Calls are opaque: a call to an allocating function is not a
     syntactic allocation.  The manifest must list callees too.
   - Boxing the compiler inserts (optional-argument [Some] wrapping,
     float boxing at closure boundaries) is invisible at parse level;
     that is what the runtime test is for.

   The manifest is strict: an entry whose function cannot be found is
   an error, so a renamed hot function cannot silently drop out of
   coverage. *)

open Parsetree

let id = "alloc-free"

let binding_of_name vbs seg =
  List.find_opt
    (fun vb ->
      match vb.pvb_pat.ppat_desc with
      | Ppat_var { txt; _ } -> txt = seg
      | _ -> false)
    vbs

(* First [let seg = ...] binding anywhere inside [e] (depth-first). *)
let find_nested_let seg e =
  let found = ref None in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self sub ->
          (match sub.pexp_desc with
          | Pexp_let (_, vbs, _) when !found = None -> (
              match binding_of_name vbs seg with
              | Some vb -> found := Some vb.pvb_expr
              | None -> ())
          | _ -> ());
          if !found = None then Ast_iterator.default_iterator.expr self sub);
    }
  in
  it.expr it e;
  !found

(* Resolve a dotted path: module segments, then a toplevel value, then
   nested [let ... in] bindings inside that value. *)
let rec resolve_in_structure items = function
  | [] -> None
  | seg :: rest ->
      let rec try_items = function
        | [] -> None
        | item :: tl -> (
            match item.pstr_desc with
            | Pstr_value (_, vbs) -> (
                match binding_of_name vbs seg with
                | Some vb -> resolve_in_expr vb.pvb_expr rest
                | None -> try_items tl)
            | Pstr_module mb when mb.pmb_name.Asttypes.txt = Some seg ->
                resolve_in_module mb.pmb_expr rest
            | _ -> try_items tl)
      in
      try_items items

and resolve_in_module me rest =
  match me.pmod_desc with
  | Pmod_structure items -> resolve_in_structure items rest
  | Pmod_constraint (me, _) -> resolve_in_module me rest
  | _ -> None

and resolve_in_expr e = function
  | [] -> Some e
  | seg :: rest -> (
      match find_nested_let seg e with
      | Some inner -> resolve_in_expr inner rest
      | None -> None)

(* Syntactic arity of every toplevel value in the file, for the
   partial-application heuristic.  Only same-file, unlabelled-only
   functions participate: cross-module arities and optional-argument
   defaulting are invisible at parse level. *)
let toplevel_arities structure =
  let arities = Hashtbl.create 16 in
  let add_items items =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                match vb.pvb_pat.ppat_desc with
                | Ppat_var { txt; _ } ->
                    let n, opt, _ = Checker.peel_params vb.pvb_expr in
                    if n > 0 && not opt then Hashtbl.replace arities txt n
                | _ -> ())
              vbs
        | _ -> ())
      items
  in
  add_items structure;
  arities

let scan_body ~(emit : Checker.emit) ~arities ~entry_desc body =
  let flag loc what =
    emit ~line:(Checker.line_of loc) ~col:(Checker.col_of loc)
      (Printf.sprintf "allocation in alloc-free function %s: %s" entry_desc
         what)
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_tuple _ -> flag e.pexp_loc "tuple construction"
          | Pexp_record _ -> flag e.pexp_loc "record construction"
          | Pexp_array _ -> flag e.pexp_loc "array literal"
          | Pexp_construct ({ txt; _ }, Some _) ->
              flag e.pexp_loc
                (Printf.sprintf "constructor '%s' with payload"
                   (String.concat "." (Longident.flatten txt)))
          | Pexp_variant (tag, Some _) ->
              flag e.pexp_loc
                (Printf.sprintf "polymorphic variant `%s with payload" tag)
          | Pexp_fun _ | Pexp_function _ -> flag e.pexp_loc "closure"
          | Pexp_lazy _ -> flag e.pexp_loc "lazy block"
          | Pexp_object _ -> flag e.pexp_loc "object literal"
          | Pexp_pack _ -> flag e.pexp_loc "first-class module"
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Lident f; _ }; _ }, args)
            when Hashtbl.mem arities f ->
              let arity = Hashtbl.find arities f in
              if List.length args < arity then
                flag e.pexp_loc
                  (Printf.sprintf
                     "partial application of '%s' (%d of %d arguments)" f
                     (List.length args) arity)
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it body

let checker manifest =
  {
    Checker.id;
    keys = [ id ];
    describe =
      "manifest-listed hot functions contain no syntactic allocation site";
    check =
      (fun ~emit source ->
        match Manifest.entries_for manifest source.Checker.path with
        | [] -> ()
        | entries ->
            let arities = toplevel_arities source.Checker.ast in
            List.iter
              (fun { Manifest.funcpath; line; _ } ->
                let name = String.concat "." funcpath in
                match resolve_in_structure source.Checker.ast funcpath with
                | None ->
                    (* Strict manifest: a stale entry is an error in
                       the manifest itself, never silently dropped
                       coverage. *)
                    emit ~file:manifest.Manifest.path ~line
                      (Printf.sprintf
                         "manifest names unknown function '%s' in %s — \
                          renamed or removed hot functions must be updated \
                          here, not dropped"
                         name source.Checker.path)
                | Some expr ->
                    let _, _, body = Checker.peel_params expr in
                    scan_body ~emit ~arities
                      ~entry_desc:(Printf.sprintf "'%s'" name)
                      body)
              entries);
  }
