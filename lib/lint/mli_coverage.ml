(* Mli coverage: every module under lib/ must publish an interface.
   A missing .mli exposes every helper and invites dependencies on
   internals; modules that are genuinely internal declare it with a
   file-scoped [(* lint: internal <reason> *)] marker. *)

let id = "mli-coverage"

let checker =
  {
    Checker.id;
    keys = [ id ];
    describe = "every lib/ module except declared internals has an .mli";
    check =
      (fun ~emit source ->
        match source.Checker.mli_exists with
        | Some false when source.Checker.in_lib && not source.Checker.internal
          ->
            emit ~line:1
              (Printf.sprintf
                 "library module '%s' has no .mli — add one, or declare the \
                  module internal with (* lint: internal <reason> *)"
                 source.Checker.path)
        | _ -> ());
  }
