type t = {
  file : string;
  line : int;
  col : int;
  checker : string;
  message : string;
}

let v ~file ~line ?(col = 0) ~checker message =
  { file; line; col; checker; message }

(* Stable identity: checker + file + message, deliberately NOT the
   line, so a finding keeps its id when unrelated edits shift code
   around.  Two findings with identical messages in one file collapse
   to one id; baselining one baselines both — acceptable for a
   baseline, noted in DESIGN.md. *)
let id f =
  let digest =
    Digest.to_hex
      (Digest.string (f.checker ^ "\x00" ^ f.file ^ "\x00" ^ f.message))
  in
  String.sub digest 0 12

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.checker b.checker in
        if c <> 0 then c else String.compare a.message b.message

let to_string f =
  Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col f.checker f.message

(* Minimal JSON string escaping: backslash, quote, and control
   characters.  Finding fields are ASCII paths and messages, so no
   UTF-8 handling is needed. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json f =
  Printf.sprintf
    {|{"id":"%s","file":"%s","line":%d,"col":%d,"checker":"%s","message":"%s"}|}
    (id f) (json_escape f.file) f.line f.col (json_escape f.checker)
    (json_escape f.message)

let list_to_json fs =
  let b = Buffer.create 256 in
  Buffer.add_string b "[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b "\n  ";
      Buffer.add_string b (to_json f))
    fs;
  if fs <> [] then Buffer.add_string b "\n";
  Buffer.add_string b "]";
  Buffer.contents b
