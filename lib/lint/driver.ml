(* The lint driver: discover sources, parse them with compiler-libs,
   run the syntactic checker set, then the typed checker set on
   whatever typed trees are available (.cmt artifacts from the build,
   or an in-process typecheck for self-contained files), filter
   suppressions, apply the baseline, sort. *)

let all_keys =
  [
    "domain-safety";
    "domain-local";
    "float-equality";
    "alloc-free";
    "internal";
    "units";
    "capture";
    "cross-domain";
  ]

let base_checkers =
  [ Domain_safety.checker; Float_equality.checker; Mli_coverage.checker ]

let checkers ?manifest () =
  base_checkers
  @ match manifest with None -> [] | Some m -> [ Alloc_free.checker m ]

let typed_checkers ?units () =
  Capture.checker
  :: (match units with None -> [] | Some u -> [ Units.checker u ])

let parse_structure ~path text =
  let lexbuf = Lexing.from_string text in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | ast -> Ok ast
  | exception Syntaxerr.Error err ->
      let loc = Syntaxerr.location_of_error err in
      Error (Checker.line_of loc, Checker.col_of loc, "syntax error")
  | exception Lexer.Error (_, loc) ->
      Error (Checker.line_of loc, Checker.col_of loc, "lexical error")
  | exception e -> Error (1, 0, "cannot parse: " ^ Printexc.to_string e)

(* Lint one already-read source file.  [typed] selects the typed pass:
   [`Off] (fixture-string default), [`Tree t] (a .cmt tree from the
   build), or [`Infer] (typecheck in-process; files that only make
   sense inside the build are silently skipped, and the boolean in the
   result says whether the typed pass ran). *)
let lint_one ?manifest ?units ?(typed = `Off) ?mli_exists ~path text =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let sup = Suppress.scan ~keys:all_keys text in
  List.iter
    (fun (line, what) ->
      add (Finding.v ~file:path ~line ~checker:"suppression" what))
    (Suppress.problems sup);
  let in_lib = Checker.in_dir ~dir:"lib" path in
  let emit_for id keys =
    fun ?file ?(suppress_at = []) ~line ?(col = 0) message ->
      match file with
      | Some file ->
          (* Findings re-homed to another file (manifest errors)
             bypass the source file's suppression index. *)
          add (Finding.v ~file ~line ~col ~checker:id message)
      | None ->
          let suppressed =
            List.exists
              (fun l -> Suppress.active sup ~keys ~line:l)
              (line :: suppress_at)
          in
          if not suppressed then
            add (Finding.v ~file:path ~line ~col ~checker:id message)
  in
  let typed_ran = ref false in
  (match parse_structure ~path text with
  | Error (line, col, msg) ->
      add (Finding.v ~file:path ~line ~col ~checker:"parse-error" msg)
  | Ok ast ->
      let source =
        {
          Checker.path;
          text;
          ast;
          in_lib;
          mli_exists;
          internal = Suppress.file_has sup ~key:"internal";
        }
      in
      List.iter
        (fun (c : Checker.t) ->
          c.Checker.check ~emit:(emit_for c.Checker.id c.Checker.keys) source)
        (checkers ?manifest ());
      let tree =
        match typed with
        | `Off -> None
        | `Tree t -> Some t
        | `Infer -> (
            match Typed_load.type_structure ast with
            | Ok t -> Some t
            | Error _ -> None)
      in
      Option.iter
        (fun str ->
          typed_ran := true;
          let tsource = { Typed_checker.path; str; in_lib } in
          List.iter
            (fun (c : Typed_checker.t) ->
              c.Typed_checker.check
                ~emit:(emit_for c.Typed_checker.id c.Typed_checker.keys)
                tsource)
            (typed_checkers ?units ()))
        tree);
  (List.sort Finding.compare !findings, !typed_ran)

let lint_source ?manifest ?units ?typed ?mli_exists ~path text =
  fst (lint_one ?manifest ?units ?typed ?mli_exists ~path text)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Every .ml under [dir] (recursively), repo-relative with '/'
   separators, sorted for deterministic output.  [_build] and dotted
   directories are skipped. *)
let discover ~root dirs =
  let acc = ref [] in
  let rec walk rel =
    let abs = Filename.concat root rel in
    if Sys.file_exists abs && Sys.is_directory abs then
      Array.iter
        (fun name ->
          if String.length name > 0 && name.[0] <> '.' && name <> "_build"
          then begin
            let rel' = rel ^ "/" ^ name in
            let abs' = Filename.concat root rel' in
            if Sys.is_directory abs' then walk rel'
            else if Filename.check_suffix name ".ml" then acc := rel' :: !acc
          end)
        (Sys.readdir abs)
  in
  List.iter
    (fun d -> if Sys.file_exists (Filename.concat root d) then walk d)
    dirs;
  List.sort String.compare !acc

let manifest_unknown_files manifest ~seen =
  List.concat_map
    (fun { Manifest.file; line; _ } ->
      if List.mem file seen then []
      else
        [
          Finding.v ~file:manifest.Manifest.path ~line ~checker:Alloc_free.id
            (Printf.sprintf
               "manifest names unknown file '%s' — update the entry when a \
                hot file moves"
               file);
        ])
    manifest.Manifest.entries

let default_dirs = [ "lib"; "bin"; "bench" ]

(* cmt source keys may be repo-relative (dune's layout) or longer
   paths; accept an exact match or a unique "/"-suffix match. *)
let lookup_tree tbl path =
  match Hashtbl.find_opt tbl path with
  | Some t -> Some t
  | None ->
      let suffix = "/" ^ path in
      Hashtbl.fold
        (fun key t acc ->
          match acc with
          | Some _ -> acc
          | None ->
              if
                String.length key > String.length suffix
                && String.sub key
                     (String.length key - String.length suffix)
                     (String.length suffix)
                   = suffix
              then Some t
              else None)
        tbl None

type result = { findings : Finding.t list; files : string list; typed : int }

let run_repo ?(dirs = default_dirs) ~root ?manifest_path ?units_path
    ?(typed = true) () =
  let load_with_errors ~checker ~what path load =
    let abs = if Filename.is_relative path then Filename.concat root path else path in
    if not (Sys.file_exists abs) then
      (None, [ Finding.v ~file:path ~line:1 ~checker (what ^ " not found") ])
    else
      let m, errors = load abs in
      ( Some m,
        List.map
          (fun (line, msg) -> Finding.v ~file:path ~line ~checker msg)
          errors )
  in
  let manifest, manifest_findings =
    match manifest_path with
    | None -> (None, [])
    | Some p ->
        let m, errs =
          load_with_errors ~checker:Alloc_free.id ~what:"manifest file" p
            (fun abs ->
              let m, errors = Manifest.load abs in
              ({ m with Manifest.path = p }, errors))
        in
        (m, errs)
  in
  let units, units_findings =
    match units_path with
    | None -> (None, [])
    | Some p ->
        load_with_errors ~checker:"units" ~what:"units manifest file" p
          (fun abs ->
            let m, errors = Units_manifest.load abs in
            ({ m with Units_manifest.path = p }, errors))
  in
  let files = discover ~root dirs in
  let trees = if typed then Typed_load.index ~root else Hashtbl.create 1 in
  let typed_count = ref 0 in
  let per_file =
    List.concat_map
      (fun path ->
        let abs = Filename.concat root path in
        let mli = Filename.chop_suffix abs ".ml" ^ ".mli" in
        let typed_mode =
          if not typed then `Off
          else
            match lookup_tree trees path with
            | Some t -> `Tree t
            | None -> `Infer
        in
        let fs, ran =
          lint_one ?manifest ?units ~typed:typed_mode
            ~mli_exists:(Sys.file_exists mli) ~path (read_file abs)
        in
        if ran then incr typed_count;
        fs)
      files
  in
  let unknown =
    (match manifest with
    | None -> []
    | Some m -> manifest_unknown_files m ~seen:files)
    @
    match units with
    | None -> []
    | Some u ->
        List.map
          (fun (line, msg) ->
            Finding.v ~file:u.Units_manifest.path ~line ~checker:"units" msg)
          (Units_manifest.unknown_files u ~seen:files)
  in
  let typed_warn =
    if typed && files <> [] && !typed_count = 0 then
      [
        Finding.v ~file:"(typed)" ~line:1 ~checker:"typed-load"
          "no typed trees available — run `dune build @check` so the typed \
           checkers (units, capture) can see real cross-module types";
      ]
    else []
  in
  {
    findings =
      List.sort Finding.compare
        (manifest_findings @ units_findings @ per_file @ unknown @ typed_warn);
    files;
    typed = !typed_count;
  }
