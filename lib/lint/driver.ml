(* The lint driver: discover sources, parse them with
   compiler-libs, run the checker set, filter suppressions, sort. *)

let all_keys =
  [ "domain-safety"; "domain-local"; "float-equality"; "alloc-free"; "internal" ]

let base_checkers = [ Domain_safety.checker; Float_equality.checker; Mli_coverage.checker ]

let checkers ?manifest () =
  base_checkers
  @ match manifest with None -> [] | Some m -> [ Alloc_free.checker m ]

let parse_structure ~path text =
  let lexbuf = Lexing.from_string text in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | ast -> Ok ast
  | exception Syntaxerr.Error err ->
      let loc = Syntaxerr.location_of_error err in
      Error (Checker.line_of loc, Checker.col_of loc, "syntax error")
  | exception Lexer.Error (_, loc) ->
      Error (Checker.line_of loc, Checker.col_of loc, "lexical error")
  | exception e -> Error (1, 0, "cannot parse: " ^ Printexc.to_string e)

(* Lint one already-read source file (the unit the tests drive
   directly with fixture strings). *)
let lint_source ?manifest ?mli_exists ~path text =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let sup = Suppress.scan ~keys:all_keys text in
  List.iter
    (fun (line, what) ->
      add (Finding.v ~file:path ~line ~checker:"suppression" what))
    (Suppress.problems sup);
  let in_lib =
    String.length path >= 4 && String.sub path 0 4 = "lib/"
  in
  (match parse_structure ~path text with
  | Error (line, col, msg) ->
      add (Finding.v ~file:path ~line ~col ~checker:"parse-error" msg)
  | Ok ast ->
      let source =
        {
          Checker.path;
          text;
          ast;
          in_lib;
          mli_exists;
          internal = Suppress.file_has sup ~key:"internal";
        }
      in
      List.iter
        (fun (c : Checker.t) ->
          let emit ?file ?(suppress_at = []) ~line ?(col = 0) message =
            match file with
            | Some file ->
                (* Findings re-homed to another file (manifest errors)
                   bypass the source file's suppression index. *)
                add (Finding.v ~file ~line ~col ~checker:c.Checker.id message)
            | None ->
                let suppressed =
                  List.exists
                    (fun l -> Suppress.active sup ~keys:c.Checker.keys ~line:l)
                    (line :: suppress_at)
                in
                if not suppressed then
                  add (Finding.v ~file:path ~line ~col ~checker:c.Checker.id message)
          in
          c.Checker.check ~emit source)
        (checkers ?manifest ()));
  List.sort Finding.compare !findings

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Every .ml under [dir] (recursively), repo-relative with '/'
   separators, sorted for deterministic output.  [_build] and dotted
   directories are skipped. *)
let discover ~root dirs =
  let acc = ref [] in
  let rec walk rel =
    let abs = Filename.concat root rel in
    if Sys.file_exists abs && Sys.is_directory abs then
      Array.iter
        (fun name ->
          if String.length name > 0 && name.[0] <> '.' && name <> "_build"
          then begin
            let rel' = rel ^ "/" ^ name in
            let abs' = Filename.concat root rel' in
            if Sys.is_directory abs' then walk rel'
            else if Filename.check_suffix name ".ml" then acc := rel' :: !acc
          end)
        (Sys.readdir abs)
  in
  List.iter
    (fun d -> if Sys.file_exists (Filename.concat root d) then walk d)
    dirs;
  List.sort String.compare !acc

let manifest_unknown_files manifest ~seen =
  List.concat_map
    (fun { Manifest.file; line; _ } ->
      if List.mem file seen then []
      else
        [
          Finding.v ~file:manifest.Manifest.path ~line ~checker:Alloc_free.id
            (Printf.sprintf
               "manifest names unknown file '%s' — update the entry when a \
                hot file moves"
               file);
        ])
    manifest.Manifest.entries

let default_dirs = [ "lib"; "bin"; "bench" ]

let run_repo ?(dirs = default_dirs) ~root ?manifest_path () =
  let manifest, manifest_findings =
    match manifest_path with
    | None -> (None, [])
    | Some p ->
        let abs = if Filename.is_relative p then Filename.concat root p else p in
        if not (Sys.file_exists abs) then
          ( None,
            [
              Finding.v ~file:p ~line:1 ~checker:Alloc_free.id
                "manifest file not found";
            ] )
        else
          let m, errors = Manifest.load abs in
          let m = { m with Manifest.path = p } in
          ( Some m,
            List.map
              (fun (line, msg) ->
                Finding.v ~file:p ~line ~checker:Alloc_free.id msg)
              errors )
  in
  let files = discover ~root dirs in
  let per_file =
    List.concat_map
      (fun path ->
        let abs = Filename.concat root path in
        let mli = Filename.chop_suffix abs ".ml" ^ ".mli" in
        lint_source ?manifest ~mli_exists:(Sys.file_exists mli) ~path
          (read_file abs))
      files
  in
  let unknown =
    match manifest with
    | None -> []
    | Some m -> manifest_unknown_files m ~seen:files
  in
  (List.sort Finding.compare (manifest_findings @ per_file @ unknown), files)
