(** Typed-tree acquisition: [.cmt] artifacts from the build, or an
    in-process typecheck for self-contained files the build does not
    know.  Shares global compiler state — single-domain only. *)

(** Index every compiled implementation under [root] (preferring
    [root/_build/default] when present): normalized source path ->
    typed tree.  Directories that contained cmts are added to the
    compiler load path so environment reconstruction works. *)
val index : root:string -> (string, Typedtree.structure) Hashtbl.t

(** Typecheck a parsed structure against the initial (stdlib)
    environment.  Only self-contained sources succeed. *)
val type_structure :
  Parsetree.structure -> (Typedtree.structure, exn) result

(** [(line, col, message)] of a typechecking exception. *)
val describe_error : exn -> int * int * string

(** Best-effort type-declaration lookup through the node's
    environment, reconstructing cmt summary envs when needed; [None]
    when the declaration cannot be resolved. *)
val find_type_decl : Env.t -> Path.t -> Types.type_declaration option
