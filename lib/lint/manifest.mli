(** The alloc-free manifest: the checked-in list of hot functions
    whose bodies must contain no syntactic allocation site.

    Line format: [FILE DOTTED.PATH], e.g.
    [lib/sim/engine.ml run.step_once].  ['#'] starts a comment.  Path
    segments name toplevel [let]s, members of literal
    [module M = struct ... end], and — after the first value segment —
    nested [let ... in] bindings. *)

type entry = { file : string; funcpath : string list; line : int }
type t = { path : string; entries : entry list }

(** Parse manifest text; malformed lines come back as
    [(line, message)] errors alongside the surviving entries. *)
val parse : path:string -> string -> t * (int * string) list

(** Read and {!parse} a manifest file. *)
val load : string -> t * (int * string) list

val entries_for : t -> string -> entry list

(** The distinct files the manifest mentions, sorted. *)
val files : t -> string list
