(** Domain-safety checker: flags unsynchronized toplevel mutable
    state ([ref], [Hashtbl.create], [Buffer.create], [Queue.create],
    [Stack.create], or record literals with same-file mutable fields)
    in library code.  [Atomic.make] is the blessed wrapper; the
    suppression keys are [domain-safety] and [domain-local]. *)

val id : string
val checker : Checker.t
