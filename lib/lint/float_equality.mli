(** Float-equality checker: flags [=], [<>], [==], [!=] and [compare]
    whose operands are visibly floats (literals, float arithmetic, or
    [Float]-module results).  Suppression key: [float-equality]. *)

val id : string
val checker : Checker.t
