open Linalg

type cell = Frequencies of Vec.t | Infeasible

type t = {
  tstarts : float array;
  ftargets : float array;
  cells : cell array array;
}

let strictly_increasing a =
  let ok = ref true in
  for i = 1 to Array.length a - 1 do
    if a.(i) <= a.(i - 1) then ok := false
  done;
  !ok

let make ~tstarts ~ftargets cells =
  if Array.length tstarts = 0 || Array.length ftargets = 0 then
    invalid_arg "Table.make: empty axis";
  if not (strictly_increasing tstarts) then
    invalid_arg "Table.make: tstarts not strictly increasing";
  if not (strictly_increasing ftargets) then
    invalid_arg "Table.make: ftargets not strictly increasing";
  if Array.length cells <> Array.length tstarts then
    invalid_arg "Table.make: row count mismatch";
  Array.iter
    (fun row ->
      if Array.length row <> Array.length ftargets then
        invalid_arg "Table.make: column count mismatch")
    cells;
  (* Every feasible cell must carry one frequency per core — the same
     core count across the whole table, or a controller driving an
     n-core machine could hand the engine a short vector. *)
  let n_cores = ref (-1) in
  Array.iter
    (Array.iter (function
      | Infeasible -> ()
      | Frequencies f ->
          let d = Vec.dim f in
          if d = 0 then invalid_arg "Table.make: empty frequency vector";
          if !n_cores < 0 then n_cores := d
          else if d <> !n_cores then
            invalid_arg "Table.make: cell dimension mismatch"))
    cells;
  { tstarts; ftargets; cells }

let tstarts t = Array.copy t.tstarts
let ftargets t = Array.copy t.ftargets

let cell t i j =
  if i < 0 || i >= Array.length t.tstarts then
    invalid_arg "Table.cell: row out of range";
  if j < 0 || j >= Array.length t.ftargets then
    invalid_arg "Table.cell: column out of range";
  t.cells.(i).(j)

(* Both axis searches are binary: the axes are strictly increasing, a
   control epoch does one row search and every interpolation corner
   does a column search, and on a 100x100 production grid the old
   linear scans were O(rows + cols) per lookup. *)

(* Smallest [i] with [tstarts.(i) >= temperature]; [-1] when the
   observation exceeds the hottest row.  Int-returning (no option) so
   the alloc-free [lookup_into] path can use it directly. *)
let row_index t temperature =
  let ts = t.tstarts in
  let n = Array.length ts in
  if ts.(n - 1) < temperature then -1
  else begin
    (* Invariant: ts.(hi) >= temperature, every index < lo is
       < temperature; the answer is in [lo, hi]. *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if ts.(mid) >= temperature then hi := mid else lo := mid + 1
    done;
    !lo
  end

(* Smallest column with [ftargets.(j) >= required], clamped to the top
   column when the requirement exceeds the grid — the paper's
   round-up-then-fall-back starting point. *)
let col_start t required =
  let fa = t.ftargets in
  let n = Array.length fa in
  if fa.(n - 1) < required then n - 1
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fa.(mid) >= required then hi := mid else lo := mid + 1
    done;
    !lo
  end

let row_for_temperature t temperature =
  match row_index t temperature with -1 -> None | i -> Some i

let lookup t ~temperature ~required =
  match row_index t temperature with
  | -1 -> None
  | row ->
      (* Start from the smallest column satisfying the requirement,
         then walk down to the first feasible one. *)
      let start = col_start t required in
      let rec down j =
        if j < 0 then None
        else
          match t.cells.(row).(j) with
          | Frequencies f -> Some (Vec.copy f)
          | Infeasible -> down (j - 1)
      in
      down start

(* Allocation-free variant for the online-controller hot path: the
   same rule as [lookup], but the result is blitted into a
   caller-owned vector instead of copied into a fresh one. *)
let lookup_into t ~temperature ~required ~into =
  let row = row_index t temperature in
  if row < 0 then false
  else begin
    let j = ref (col_start t required) in
    let found = ref false in
    while (not !found) && !j >= 0 do
      (match t.cells.(row).(!j) with
      | Frequencies f ->
          Vec.blit ~src:f ~dst:into;
          found := true
      | Infeasible -> ());
      if not !found then decr j
    done;
    !found
  end

let core_count t =
  let n = ref None in
  Array.iter
    (Array.iter (function
      | Infeasible -> ()
      | Frequencies f -> if !n = None then n := Some (Vec.dim f)))
    t.cells;
  !n

let feasible_frontier t =
  Array.mapi
    (fun i tstart ->
      let best = ref None in
      Array.iteri
        (fun j c ->
          match c with
          | Frequencies _ -> best := Some t.ftargets.(j)
          | Infeasible -> ())
        t.cells.(i);
      (tstart, !best))
    t.tstarts

(* %.17g round-trips every finite double exactly through
   float_of_string, so of_csv can use exact axis matching: %.6g used
   to round nearby tstarts/ftargets onto the same printed value and
   silently merge their rows/columns on re-read. *)
let to_csv t =
  let buf = Buffer.create 4096 in
  Array.iteri
    (fun i tstart ->
      Array.iteri
        (fun j ftarget ->
          Buffer.add_string buf (Printf.sprintf "%.17g,%.17g" tstart ftarget);
          (match t.cells.(i).(j) with
          | Infeasible -> Buffer.add_string buf ",infeasible"
          | Frequencies f ->
              Array.iter
                (fun x -> Buffer.add_string buf (Printf.sprintf ",%.17g" x))
                f);
          Buffer.add_char buf '\n')
        t.ftargets)
    t.tstarts;
  Buffer.contents buf

let of_csv text =
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
  in
  let parsed =
    List.map
      (fun line ->
        match String.split_on_char ',' line with
        | tstart :: ftarget :: rest -> (
            let fs x =
              try float_of_string x
              with Failure _ -> failwith ("Table.of_csv: bad number " ^ x)
            in
            match rest with
            | [ "infeasible" ] -> (fs tstart, fs ftarget, Infeasible)
            | [] -> failwith "Table.of_csv: missing cell payload"
            | freqs ->
                ( fs tstart,
                  fs ftarget,
                  Frequencies (Array.of_list (List.map fs freqs)) ))
        | _ -> failwith "Table.of_csv: malformed line")
      lines
  in
  let uniq_sorted xs =
    List.sort_uniq compare xs |> Array.of_list
  in
  let tstarts = uniq_sorted (List.map (fun (t, _, _) -> t) parsed) in
  let ftargets = uniq_sorted (List.map (fun (_, f, _) -> f) parsed) in
  let find a x =
    let rec go i = if a.(i) = x then i else go (i + 1) in
    go 0
  in
  let cells =
    Array.make_matrix (Array.length tstarts) (Array.length ftargets) Infeasible
  in
  let seen =
    Array.make_matrix (Array.length tstarts) (Array.length ftargets) false
  in
  List.iter
    (fun (t, f, c) ->
      let i = find tstarts t and j = find ftargets f in
      if seen.(i).(j) then
        failwith
          (Printf.sprintf "Table.of_csv: duplicate cell (%.17g, %.17g)" t f);
      seen.(i).(j) <- true;
      cells.(i).(j) <- c)
    parsed;
  make ~tstarts ~ftargets cells

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "tstart \\ ftarget(MHz):";
  Array.iter (fun f -> Format.fprintf ppf " %8.0f" (f /. 1e6)) t.ftargets;
  Array.iteri
    (fun i tstart ->
      Format.fprintf ppf "@,%6.1f C:             " tstart;
      Array.iter
        (fun c ->
          match c with
          | Infeasible -> Format.fprintf ppf " %8s" "--"
          | Frequencies f ->
              Format.fprintf ppf " %8.0f" (Vec.mean f /. 1e6))
        t.cells.(i))
    t.tstarts;
  Format.fprintf ppf "@]"
