(** Phase 1 (design time): sweep the design space and build the table.

    For every grid point [(tstart, ftarget)] the convex model is
    solved and the optimal frequency vector stored.  Infeasibility is
    monotone (hotter starts and higher targets are both harder), which
    prunes the sweep: once a column is infeasible for a row, all
    higher columns are too, and the check is skipped.

    The sweep is parallel across [tstart] rows (each row is an
    independent {!Model.prepare} context) and warm-started along the
    [ftarget] columns within a row (each solve is seeded from the
    previous feasible cell's interior optimum).  Rows are assembled by
    index, and each row is a pure sequential function of its inputs,
    so the table contents do not depend on the domain count. *)


val default_tstarts : float array
(** 30..100 in steps of 10 (plus the 27 ambient row). *)

val default_ftargets : float array
(** 100 MHz..1 GHz in steps of 100 MHz. *)

type progress = {
  tstart : float;
  ftarget : float;
  outcome : [ `Feasible | `Infeasible | `Pruned ];
  seconds : float;
}

type sweep_stats = {
  solves : int;  (** Cells actually solved (pruned cells excluded). *)
  barrier : Convex.Barrier.stats;
      (** Barrier-path work — frontier climbs, phase-I runs and conic
          fallbacks included. *)
  conic : Convex.Conic.stats;
      (** Conic-path work, with per-solve certificate outcomes. *)
}
(** Aggregated solver work counters for a whole sweep, split by
    solver.  Deterministic for fixed inputs (independent of the
    domain count). *)

val sweep_stats_zero : sweep_stats
val sweep_stats_add : sweep_stats -> sweep_stats -> sweep_stats

val sweep :
  ?solver:[ `Conic | `Barrier ] ->
  ?options:Convex.Barrier.options ->
  ?backend:Convex.Barrier.backend ->
  ?domains:int ->
  ?warm_starts:bool ->
  ?tstarts:float array ->
  ?ftargets:float array ->
  ?on_progress:(progress -> unit) ->
  machine:Sim.Machine.t ->
  spec:Spec.t ->
  unit ->
  Table.t
(** [solver] is passed to every {!Model.solve} (default [`Conic]).
    [domains] is the worker-pool size (default
    {!Parallel.Pool.default_domains}, i.e. the [PROTEMP_DOMAINS]
    environment variable or the hardware count); [1] runs the classic
    sequential loop on the calling domain.  [warm_starts] (default
    [true]) seeds each solve from the previous column's optimum — a
    measured win for the conic solver, which restarts the homogeneous
    embedding from the seed at a reduced initial mu (BENCH_sweep's
    [warm_vs_cold] ratio); on the barrier path it stays within noise
    of cold and exists for measurement.  [backend] selects the barrier
    oracle (default [`Compiled]); the [`Reference] path exists for
    differential testing.  With [domains > 1], [on_progress] is
    invoked from worker domains — calls are serialized under a mutex,
    but rows interleave, so expect out-of-order cells. *)

val sweep_with_stats :
  ?solver:[ `Conic | `Barrier ] ->
  ?options:Convex.Barrier.options ->
  ?backend:Convex.Barrier.backend ->
  ?domains:int ->
  ?warm_starts:bool ->
  ?tstarts:float array ->
  ?ftargets:float array ->
  ?on_progress:(progress -> unit) ->
  machine:Sim.Machine.t ->
  spec:Spec.t ->
  unit ->
  Table.t * sweep_stats
(** {!sweep} plus the aggregated solver work counters. *)

val frontier_point :
  ?options:Convex.Barrier.options ->
  ?backend:Convex.Barrier.backend ->
  machine:Sim.Machine.t ->
  spec:Spec.t ->
  tstart:float ->
  unit ->
  Model.outcome
(** Solve the max-throughput problem at one starting temperature; the
    solution's per-core frequencies are the Fig. 10 data. *)

val max_feasible_ftarget :
  ?options:Convex.Barrier.options ->
  ?backend:Convex.Barrier.backend ->
  machine:Sim.Machine.t ->
  spec:Spec.t ->
  tstart:float ->
  unit ->
  float option
(** The feasibility frontier at one starting temperature — the average
    of {!frontier_point}'s frequencies (the Fig. 9 series); [None]
    when even idling is infeasible. *)

val solve_point :
  ?solver:[ `Conic | `Barrier ] ->
  ?options:Convex.Barrier.options ->
  ?backend:Convex.Barrier.backend ->
  machine:Sim.Machine.t ->
  spec:Spec.t ->
  tstart:float ->
  ftarget:float ->
  unit ->
  Model.outcome
(** One design point (convenience wrapper over {!Model}). *)
