(** Discrete DVFS operating points.

    Real platforms expose a ladder of frequency levels rather than a
    continuum (the paper's Fig. 4 table stores values like 80 and
    120 MHz).  Quantizing a Pro-Temp table {e downward} onto a ladder
    preserves the thermal guarantee — lower frequencies mean lower
    power, and temperatures are monotone in power — at the cost of up
    to one ladder step of delivered throughput below the column's
    nominal target. *)

open Linalg

type t

val make : float list -> t
(** Build a ladder from the available frequencies (Hz).  Duplicates
    are merged; raises [Invalid_argument] on an empty list or
    non-positive levels.  A stopped core (0 Hz) is always available
    and need not be listed. *)

val uniform : fmax:float -> levels:int -> t
(** [levels] evenly spaced points [fmax/levels, ..., fmax]. *)

val levels : t -> float array
(** Ascending. *)

val floor : t -> float -> float
(** The largest level at or below the given frequency; [0.0] (core
    off) when even the lowest level is above it. *)

val quantize_down : t -> Vec.t -> Vec.t
(** Per-core {!floor}. *)

val uniform_per_core : core_fmax:float array -> levels:int -> t array
(** One {!uniform} ladder per core, each topping out at that core's
    ceiling — the natural discrete points of an asymmetric platform
    (a 600 MHz little core quantizes onto its own scale, not the big
    cores').  Pass [Sim.Machine.core_fmax]. *)

val quantize_table : t -> Table.t -> Table.t
(** Round every feasible cell's frequencies down onto the ladder,
    then re-label each quantized vector to the highest [ftarget]
    column whose throughput ([n * ftarget], to a [1e-6] relative
    tolerance) it still delivers.  Flooring can pull a cell's total
    below its original column's promise; leaving it there would make
    {!Table.lookup} over-promise the achievable average frequency, so
    such cells are demoted (and dropped to [Infeasible] when they
    cannot honour even the lowest column).  When several source cells
    land on one column the highest-throughput one is kept.  Every
    stored vector is elementwise at most some source cell of the same
    row, so the thermal guarantee carries over unchanged; the result
    drives {!Controller.create} as before. *)

val quantize_table_per_core : t array -> Table.t -> Table.t
(** {!quantize_table} with a distinct ladder per core (index order =
    table core order); the re-labelling rule is identical and works
    in absolute Hz.  Raises [Invalid_argument] when the table's core
    count does not match the ladder count. *)
