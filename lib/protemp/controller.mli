(** Phase 2 (run time): the Pro-Temp DFS controller.

    Each DFS period it reads the maximum core temperature and the
    required average frequency from the engine's observation, and
    answers the precomputed frequency vector from the table.  When no
    table entry supports the situation (hotter than every row, or no
    feasible column) it stops the cores for one window — the
    conservative action the guarantee needs. *)

val create : table:Table.t -> Sim.Policy.controller
(** The controller is stateless; one table can drive many runs. *)

val of_store : store:Table_store.t -> Sim.Policy.controller
(** Same decision rule as {!create}, but served allocation-free from a
    read-only mapped {!Table_store} image.  The store is safe to share:
    a fleet of chips opens one image and every controller instance
    keeps only its private lookup buffer. *)

val name : string
(** "pro-temp". *)
