open Linalg

type t = { levels : float array (* ascending, positive *) }

let make = function
  | [] -> invalid_arg "Ladder.make: empty ladder"
  | levels ->
      List.iter
        (fun f ->
          if f <= 0.0 then invalid_arg "Ladder.make: non-positive level")
        levels;
      { levels = Array.of_list (List.sort_uniq Float.compare levels) }

let uniform ~fmax ~levels =
  if levels < 1 then invalid_arg "Ladder.uniform: need at least one level";
  if fmax <= 0.0 then invalid_arg "Ladder.uniform: non-positive fmax";
  make
    (List.init levels (fun i ->
         fmax *. float_of_int (i + 1) /. float_of_int levels))

let levels t = Array.copy t.levels

let floor t f =
  (* Largest level <= f, by binary search. *)
  let n = Array.length t.levels in
  if n = 0 || f < t.levels.(0) then 0.0
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if t.levels.(mid) <= f then lo := mid else hi := mid - 1
    done;
    t.levels.(!lo)
  end

let quantize_down t v = Vec.map (floor t) v

(* Shared by the uniform and per-core quantizers: [floor_of c f] is
   the ladder floor for core [c].  The re-labelling rule below works
   in absolute Hz, so it is independent of which ladder produced each
   entry. *)
let requantize ~floor_of table =
  let tstarts = Table.tstarts table in
  let ftargets = Table.ftargets table in
  let n_cols = Array.length ftargets in
  let cells =
    Array.make_matrix (Array.length tstarts) n_cols Table.Infeasible
  in
  Array.iteri
    (fun i _ ->
      for j = 0 to n_cols - 1 do
        match Table.cell table i j with
        | Table.Infeasible -> ()
        | Table.Frequencies f ->
            let q = Vec.init (Vec.dim f) (fun c -> floor_of c f.(c)) in
            let sum = Vec.sum q in
            let n = float_of_int (Vec.dim q) in
            (* The highest column whose throughput promise the
               quantized vector still honours.  Flooring onto the
               ladder can pull the total below [n * ftargets.(j)], and
               a cell left in column [j] would then over-promise
               through [Table.lookup]; re-labelling keeps every stored
               cell's promise true.  Thermal safety is unaffected: [q]
               is elementwise at most a vector certified for this very
               row. *)
            let k = ref (-1) in
            for c = 0 to n_cols - 1 do
              let target = n *. ftargets.(c) in
              if sum >= target -. (1e-6 *. Float.max 1.0 target) then k := c
            done;
            if !k >= 0 then begin
              (* Several source cells can land on the same column;
                 keep the one delivering the most throughput (all are
                 certified for row [i]). *)
              match cells.(i).(!k) with
              | Table.Infeasible -> cells.(i).(!k) <- Table.Frequencies q
              | Table.Frequencies existing ->
                  if sum > Vec.sum existing then
                    cells.(i).(!k) <- Table.Frequencies q
            end
      done)
    tstarts;
  Table.make ~tstarts ~ftargets cells

let quantize_table t table = requantize ~floor_of:(fun _ f -> floor t f) table

let uniform_per_core ~core_fmax ~levels =
  if Array.length core_fmax = 0 then
    invalid_arg "Ladder.uniform_per_core: no cores";
  Array.map (fun fm -> uniform ~fmax:fm ~levels) core_fmax

let quantize_table_per_core ladders table =
  (match Table.core_count table with
  | Some n when n <> Array.length ladders ->
      invalid_arg "Ladder.quantize_table_per_core: one ladder per core"
  | Some _ | None -> ());
  requantize ~floor_of:(fun c f -> floor ladders.(c) f) table
