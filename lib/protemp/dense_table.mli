(** Dense Phase-1 grids as a product: demand-driven cell solving,
    certified interpolation between grid points, and export to the
    mmap-able serving format.

    The paper's table is 6x10; a production deployment wants 100x100+
    grids per floorplan per power-law revision.  A {!t} is a memoized
    grid over [(tstart, ftarget)]: {!cell} solves lazily through the
    conic solver with a neighbour warm start, a certified-infeasible
    cell prunes everything hotter {e and} faster through the monotone
    feasibility frontier, and {!fill} fans the remaining cells across
    {!Parallel.Pool} with domain-count-invariant results.  {!lookup}
    serves points {e between} grid cells by bilinear interpolation,
    with a monotonicity-repair pass that clamps any blend whose
    {!Guarantee.window_peak} certificate would exceed the envelope
    back to the paper's discrete rule — so interpolated lookups are
    never less safe than discrete ones.  (DESIGN.md section 6h.) *)

open Linalg

type t

val create :
  ?solver:[ `Conic | `Barrier ] ->
  ?options:Convex.Barrier.options ->
  ?margin:float ->
  machine:Sim.Machine.t ->
  spec:Spec.t ->
  tstarts:float array ->
  ftargets:float array ->
  unit ->
  t
(** An empty memoized grid.  [margin] (default [0.0]) tightens the
    spec's [tmax] once, so solved cells and the interpolation repair
    pass certify against the same guard-banded envelope; raises
    [Invalid_argument] when negative, at least [tmax], or when an axis
    is empty or not strictly increasing.  [solver] defaults to
    {!Model.solve}'s default ([`Conic]).

    A [t] memoizes in place and is {e not} safe for concurrent
    mutation from several domains — {!fill} parallelizes internally
    (one row per task); on-demand {!cell}/{!lookup} calls belong on
    one domain.  Export with {!to_table}/{!Table_store.write} and
    share the image instead. *)

val tstarts : t -> float array
val ftargets : t -> float array

val cell : t -> int -> int -> Table.cell
(** Solve (or recall) cell [(i, j)].  A fresh solve is seeded from the
    already-solved adjacent cell with the closest [ftarget] (so a
    same-column vertical neighbour beats a horizontal one), falling
    back to a cold start; one {!Convex.Conic.workspace} and one
    {!Model.prepared} context are reused per row.  If any known
    infeasible cell sits at or below [(i, j)] on the monotone frontier
    (cooler row, same-or-slower column), the cell is certified
    infeasible without a solve and counted as pruned.  Raises
    [Invalid_argument] out of range. *)

val computed : t -> int
(** Memoized cells so far (solved + pruned). *)

type fill_stats = {
  cells : int;  (** Cells this {!fill} materialized (not yet memoized). *)
  solves : int;  (** Solver invocations among them. *)
  warm_hits : int;  (** Solves seeded from a neighbour's optimum. *)
  pruned : int;  (** Cells certified infeasible via the frontier, no solve. *)
  feasible : int;  (** Feasible cells among [cells]. *)
}

val fill : ?domains:int -> t -> fill_stats
(** Materialize every remaining cell.  Rows are fanned across a
    {!Parallel.Pool} ([domains] defaults to
    {!Parallel.Pool.default_domains}); within a row, columns run left
    to right, each solve seeded from the previous feasible column, and
    the cross-row frontier is snapshotted before the fan-out — so the
    resulting grid is a pure function of the pre-fill memo state,
    bit-identical at any domain count. *)

val stats : t -> fill_stats
(** Cumulative counters over the whole life of [t] (on-demand calls
    included); [cells] equals {!computed}. *)

val lookup :
  t ->
  temperature:float ->
  required:float ->
  [ `Interpolated of Vec.t | `Clamped of Vec.t | `None ]
(** Serve a point between grid cells, solving the (up to four)
    surrounding corners on demand.

    [`Interpolated v] is the bilinear blend of the four corner
    vectors, returned only when its {!Guarantee.window_peak} from the
    conservative covering row's [tstart] stays inside the (possibly
    guard-banded) envelope — the repair-pass certificate.  Otherwise
    the result falls back to the paper's discrete rule on the same
    grid and is reported as [`Clamped] (also used when a corner is
    infeasible or the requirement exceeds the grid).  [`None] mirrors
    {!Table.lookup}'s [None]: observation hotter than every row, or no
    feasible column.  Never less safe than the discrete rule: every
    interpolated vector carries the same simulate-and-check
    certificate the {!Guarantee} audits use. *)

val discrete : t -> temperature:float -> required:float -> Vec.t option
(** The paper's discrete rule served from the memoized grid (corners
    solved on demand): covering row, round the requirement up, walk
    down to the first feasible column. *)

val to_table : ?domains:int -> t -> Table.t
(** {!fill} (if needed) then snapshot the grid as an immutable
    {!Table.t} — the hand-off point to {!Table_store.write}. *)

val audit : t -> Guarantee.audit
(** {!fill} (if needed) then {!Guarantee.audit_table} against the
    grid's (guard-banded) envelope — the whole-grid certification
    pass. *)
