(** Construction of the paper's convex models (Eqs. 3-5).

    For a starting temperature [tstart] and a target average frequency
    [ftarget], builds the program

    {v
      minimize    sum_i p_i            (+ weight * tgrad, Eq. 5)
      subject to  t_{0,i}   = tstart
                  t_{k+1,i} = t_{k,i} + sum_j a_ij (t_kj - t_ki) + b_i p_i
                  t_{k,i}  <= tmax                  for all steps k, nodes i
                  pmax f_i^2 / fmax^2 <= p_i        (Eq. 2)
                  sum_i f_i >= n ftarget
                  0 <= f_i <= fmax
                  (gradient variant: t_{k,i} - t_{k,j} <= tgrad)
    v}

    Because the frequencies are held for the whole window, the
    temperature at step [k] is an {e affine} function of the power
    vector; the recurrence is eliminated up front, leaving one linear
    constraint per (step, node) pair, quadratic power-law constraints
    and a linear objective — a convex QCQP solved by {!Convex.Solve}.
    The gradient term is encoded with two auxiliary variables
    [u >= t_{k,i}/tmax >= l] ranging over all steps and cores, so
    [u - l] bounds the spread across the whole window; this dominates
    the paper's per-instant pairwise spread (Eq. 4) — a conservative
    over-approximation — while needing O(mn) instead of O(mn^2)
    constraints.

    Variables are normalized ([f/fmax], [p/pmax], [t/tmax]) so the
    barrier solver operates on a well-conditioned unit box. *)

open Linalg

type layout = {
  dim : int;
  n_cores : int;
  f_offset : int;  (** Index of the first frequency variable. *)
  n_f : int;  (** 1 for the uniform variant, [n_cores] otherwise. *)
  p_offset : int;
  n_p : int;
  bounds_offset : int option;
      (** Index of [(u, l)] when the gradient term is enabled. *)
}

type built = {
  problem : Convex.Barrier.problem;
  layout : layout;
  spec : Spec.t;
  initial_temperatures : Vec.t;
      (** Per-node start temperatures (uniform [tstart] for table
          cells; a measured profile for the online controller). *)
  ftarget : float;  (** Hz. *)
  steps : int;  (** Thermal steps in the window ([m] in the paper). *)
  machine : Sim.Machine.t;
  frontier_problem : Convex.Barrier.problem Lazy.t;
      (** The floor-free companion problem over the same envelope,
          used as a structural phase I by {!solve}.  Shared — and
          forced at most once — by every instance made from the same
          {!prepared} context. *)
  compiled : Convex.Compiled.t Lazy.t;
      (** Packed-Jacobian form of [problem].  Instances made from one
          {!prepared} context share the packed matrix — only the
          throughput-floor offset differs — so a sweep row compiles
          once. *)
  frontier_compiled : Convex.Compiled.t Lazy.t;
      (** Packed form of the frontier problem, shared like
          [frontier_problem]. *)
  conic : Convex.Conic.t Lazy.t;
      (** Conic (orthant + epigraph) form of [problem].  Instances
          made from one {!prepared} context share the packed cone
          matrix — only the throughput-floor offset differs — so a
          sweep row converts once. *)
}

val conic_blocks : layout -> int array
(** The variable partition under which the conic normal equations are
    block-tridiagonal: [(n_f, n_p)] plus the two gradient bounds when
    present.  Pass as [`Blocks] to {!Convex.Conic}. *)

type prepared
(** The [(machine, spec, t0)]-dependent part of a model: the
    matrix-power products, base trajectory and every constraint except
    the throughput floor.  Building it costs as much as one {!build};
    each further {!instantiate} at a new [ftarget] is then almost
    free.  The offline sweep prepares once per table row and
    instantiates once per column. *)

val prepare :
  machine:Sim.Machine.t -> spec:Spec.t -> tstart:float -> prepared
(** Raises [Invalid_argument] for an invalid spec or a window shorter
    than one thermal step. *)

val prepare_with_profile :
  machine:Sim.Machine.t -> spec:Spec.t -> t0:Vec.t -> prepared

val instantiate : prepared -> ftarget:float -> built
(** Splice the throughput floor for [ftarget] into the prepared
    context.  The result is identical, constraint for constraint, to
    the corresponding {!build}.  Raises [Invalid_argument] for
    [ftarget] outside [[0, fmax]]. *)

val frontier_of_prepared : prepared -> built
(** The {!build_frontier} instance of a prepared context. *)

val build :
  machine:Sim.Machine.t -> spec:Spec.t -> tstart:float -> ftarget:float ->
  built
(** Raises [Invalid_argument] for [ftarget] outside [[0, fmax]] or a
    window shorter than one thermal step. *)

val build_frontier :
  machine:Sim.Machine.t -> spec:Spec.t -> tstart:float -> built
(** The companion problem: maximize the total frequency under the same
    thermal envelope (no throughput floor).  Its optimum is the
    feasibility frontier of {!build} over [ftarget] — the Fig. 9
    curve — and its per-core split is the Fig. 10 data. *)

val build_with_profile :
  machine:Sim.Machine.t -> spec:Spec.t -> t0:Vec.t -> ftarget:float -> built
(** Like {!build} but from a full per-node temperature profile, for
    controllers that re-solve online with measured temperatures. *)

val build_frontier_with_profile :
  machine:Sim.Machine.t -> spec:Spec.t -> t0:Vec.t -> built

val start_hint : built -> Vec.t
(** A point that satisfies the power-law, box and throughput
    constraints (thermal feasibility still depends on [tstart]); lets
    the solver skip phase I whenever the instance is thermally
    easy. *)

val trivial_start : built -> Vec.t
(** Near-zero frequencies: strictly feasible for {!build_frontier}
    whenever the start temperature is inside the envelope at all. *)

type solution = {
  frequencies : Vec.t;  (** Per-core, Hz (expanded for uniform). *)
  core_powers : Vec.t;  (** Per-core, W. *)
  total_power : float;  (** W. *)
  gradient_spread : float option;
      (** [u - l] in degrees, when the gradient term is on. *)
  raw : Convex.Solve.solution;
}

type outcome = Feasible of solution | Infeasible

val solve :
  ?solver:[ `Conic | `Barrier ] ->
  ?options:Convex.Barrier.options ->
  ?conic_options:Convex.Conic.options ->
  ?backend:Convex.Barrier.backend ->
  ?stats_into:Convex.Barrier.stats ref ->
  ?conic_stats_into:Convex.Conic.stats ref ->
  ?conic_ws:Convex.Conic.workspace ->
  ?start:Vec.t ->
  ?start_dual:Vec.t ->
  built ->
  outcome
(** Solve an Eq. 3/5 instance.

    [solver] picks the algorithm (default [`Conic]): the primal-dual
    predictor-corrector method of {!Convex.Conic} on the homogeneous
    self-dual embedding, with the block-tridiagonal factorization from
    {!conic_blocks}, [start] as a primal warm seed, and [start_dual]
    (a neighbouring solution's [raw.dual], used only together with
    [start]) seeding the cone dual as well.  No feasible
    point is needed — an infeasible cell ends with a
    primal-infeasibility certificate, so the frontier climb never
    runs.  In the two residual conic outcomes (dual-infeasibility
    certificate, which a well-posed cell cannot produce, and a stalled
    [Unknown]) the call falls back to the [`Barrier] path below, so
    the result is always grounded in one of the two solvers.
    [conic_options] overrides the conic defaults ({b including} the
    [`Blocks] factorization — pass [kkt] explicitly when setting it);
    [conic_stats_into] accumulates conic work counters, whose
    certificate-outcome fields also count the fallbacks; [conic_ws]
    reuses a preallocated solver workspace across the solves of a
    sweep row (see {!Convex.Conic.make_workspace}).

    With [~solver:`Barrier] (the reference path): feasibility is
    established structurally — if the start point is not strictly
    feasible, the frontier problem is driven until the throughput
    floor is cleared (or shown unreachable), side-stepping the generic
    phase I.

    [start] is a warm-start point, typically the previous column's
    [raw.x] when sweeping [ftarget] upward.  It is used directly when
    strictly feasible; otherwise it seeds the frontier climb after
    being blended toward {!trivial_start} to restore interior margin
    (barrier iterates are strictly interior, so a neighbouring cell's
    optimum is always strictly feasible for the floor-free frontier
    problem).  Points of the wrong dimension are ignored.  Warm starts
    change only the path taken, not the model: every returned solution
    satisfies the same constraints to the same duality gap.

    [backend] selects the barrier oracle (default [`Compiled], which
    reuses the row's packed Jacobian); [stats_into] accumulates solver
    work counters across calls, frontier climbs included. *)

val solve_frontier :
  ?options:Convex.Barrier.options ->
  ?backend:Convex.Barrier.backend ->
  ?stats_into:Convex.Barrier.stats ref ->
  built ->
  outcome
(** Solve a {!build_frontier} instance; the returned solution's
    [frequencies] sum to the maximal supportable total. *)

val predicted_peak : built -> Vec.t -> float
(** Peak temperature over the window (any node, any step) when the
    cores run busy at the given per-core frequencies from [tstart] —
    i.e. what the model believes; used to verify solutions against the
    simulator. *)
