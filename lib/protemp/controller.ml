open Linalg

let name = "pro-temp"

let create ~table =
  (* One lookup buffer per controller instance: the engine consumes
     the decision vector element-by-element at the epoch boundary, so
     reusing the buffer across epochs keeps the per-epoch table lookup
     allocation-free (Table.lookup used to [Vec.copy] every hit). *)
  let buf =
    match Table.core_count table with
    | Some n -> Vec.zeros n
    | None -> Vec.zeros 0
  in
  {
    Sim.Policy.controller_name = name;
    decide =
      (fun obs ->
        let n = Vec.dim obs.Sim.Policy.core_temperatures in
        if Vec.dim buf = 0 then
          (* Every cell infeasible: lookups can never hit; stop. *)
          Vec.zeros n
        else if Vec.dim buf <> n then
          invalid_arg "Protemp.Controller: table core count mismatch"
        else if
          Table.lookup_into table
            ~temperature:obs.Sim.Policy.max_core_temperature
            ~required:obs.Sim.Policy.required_frequency ~into:buf
        then buf
        else begin
          (* No feasible entry: stop the cores for a window. *)
          Vec.fill buf 0.0;
          buf
        end);
  }

let of_store ~store =
  (* Same decision rule as [create], served from the read-only mapped
     image: the store is shared (one mmap, page-cache-backed pages),
     the lookup buffer is per-controller, so a fleet of chips can all
     poll one image concurrently with no shared mutable state. *)
  let buf = Vec.zeros (Table_store.n_cores store) in
  {
    Sim.Policy.controller_name = name;
    decide =
      (fun obs ->
        let n = Vec.dim obs.Sim.Policy.core_temperatures in
        if Vec.dim buf = 0 then Vec.zeros n
        else if Vec.dim buf <> n then
          invalid_arg "Protemp.Controller: table-store core count mismatch"
        else if
          Table_store.lookup_into store
            ~temperature:obs.Sim.Policy.max_core_temperature
            ~required:obs.Sim.Policy.required_frequency ~into:buf
        then buf
        else begin
          Vec.fill buf 0.0;
          buf
        end);
  }
