(** Online (MPC-style) Pro-Temp: re-solve the convex program at every
    DFS epoch from the measured temperatures, hardened for imperfect
    sensing.

    The paper precomputes a table precisely to avoid online solving,
    at the cost of two conservatisms: the measured per-core profile is
    collapsed to its maximum (the table row key), and the demand is
    rounded to the column grid.  This controller removes both by
    solving the Eq. 3/5 instance for the actual situation each window.
    It keeps the never-exceeds-tmax guarantee: core temperatures are
    measured, and the unsensed non-core nodes are set to the hottest
    core reading, an upper bound under the monotone thermal dynamics
    (caches and buffers run cooler than cores on this platform).

    Two hardening mechanisms close the gap to real TMUs:

    {b Guard band.}  With [~margin:m] every instance is solved against
    [tmax - m] instead of [tmax].  Sensors that under-read by at most
    [m] degrees (bounded noise, staleness over windows that heat less
    than [m]) then cannot break the cap: the step matrix is
    sub-stochastic, so a start profile [m] degrees hotter than assumed
    lifts the certified trajectory by at most [m].

    {b Degradation chain.}  Every decision walks a fixed chain and
    counts where it landed: (1) a fresh solve at the observed profile;
    (2) on infeasibility, the [fallback] table's run-time rule — the
    next lower feasible column of the covering row; (3) with no
    fallback entry either, a safe stop (all cores off for the
    window).  {!counts} exposes the per-outcome totals, and
    {!outcome_probe} turns them into a {!Sim.Probe} for a single run.

    All counters are {!Atomic} and instance names draw from an atomic
    sequence, so controllers built concurrently inside
    [Sim.Campaign.run] worker domains never race or collide.

    Cost: one interior-point solve (hundreds of milliseconds of host
    time at full constraint resolution) per 100 ms control window, so
    this variant is a research upper bound for what the table
    approximates — see the [abl_online_vs_table] bench. *)

type counts = {
  solved : int;  (** Fresh solves that came back feasible. *)
  fallbacks : int;  (** Decisions served from the fallback table. *)
  stops : int;  (** Safe stops (no solve, no table entry). *)
}

val zero_counts : counts
val add_counts : counts -> counts -> counts

type t
(** One controller instance with its decision counters. *)

val create :
  ?solver:[ `Conic | `Barrier ] ->
  ?options:Convex.Barrier.options ->
  ?fallback:Table.t ->
  ?margin:float ->
  machine:Sim.Machine.t ->
  spec:Spec.t ->
  unit ->
  t
(** [solver] is passed to every per-period {!Model.solve} (default
    [`Conic]).  [margin] (degrees, default [0.0] — the unguarded controller of
    the paper's idealized sensing) is subtracted from [spec]'s [tmax]
    before solving; raises [Invalid_argument] when negative or at
    least [tmax].  At [margin = 0.0] the controller's decisions are
    bit-identical to the historical unguarded implementation. *)

val controller : t -> Sim.Policy.controller
(** The engine-facing view.  Decisions mutate the instance's
    counters. *)

val solves : t -> int
(** Decisions taken so far — every decision attempts one fresh
    solve, so this also counts solver invocations. *)

val counts : t -> counts
(** Per-outcome decision totals; fields sum to {!solves}. *)

val outcome_probe : t -> Sim.Probe.t * (unit -> counts)
(** A probe isolating one run: the accessor reports the counts
    accumulated since the probe was created (finalized when the run
    finishes, live before that).  Attach to [Sim.Engine.run] alongside
    the instance's {!controller}. *)
