let default_tstarts = [| 27.0; 30.0; 40.0; 50.0; 60.0; 70.0; 80.0; 90.0; 100.0 |]

let default_ftargets =
  Array.init 10 (fun i -> float_of_int (i + 1) *. 100.0 *. 1e6)

type progress = {
  tstart : float;
  ftarget : float;
  outcome : [ `Feasible | `Infeasible | `Pruned ];
  seconds : float;
}

type sweep_stats = {
  solves : int;
  barrier : Convex.Barrier.stats;
  conic : Convex.Conic.stats;
}

let sweep_stats_zero =
  {
    solves = 0;
    barrier = Convex.Barrier.stats_zero;
    conic = Convex.Conic.stats_zero;
  }

let sweep_stats_add a b =
  {
    solves = a.solves + b.solves;
    barrier = Convex.Barrier.stats_add a.barrier b.barrier;
    conic = Convex.Conic.stats_add a.conic b.conic;
  }

let solve_point ?solver ?options ?backend ~machine ~spec ~tstart ~ftarget () =
  Model.solve ?solver ?options ?backend
    (Model.build ~machine ~spec ~tstart ~ftarget)

(* One table row: prepare the [(machine, spec, tstart)] context once,
   then walk the [ftarget] columns upward, seeding each solve from the
   previous feasible cell's interior optimum and pruning everything
   above the first infeasible target (infeasibility is monotone in
   [ftarget]).  The row is a pure function of its inputs — column
   order is sequential within the row — so the table is the same
   whichever domain runs it, and however many domains run at once. *)
let sweep_row ?solver ?options ?backend ~machine ~spec ~ftargets ~warm_starts
    ~report tstart =
  let prepared = Model.prepare ~machine ~spec ~tstart in
  let infeasible_from = ref None in
  let warm = ref None in
  (* One conic workspace serves the whole row: the per-column
     instances share their structure (only the floor constant moves),
     and reallocating the megabyte of solver state per cell is
     measurable against millisecond solves.  Only materialized when
     the conic solver actually runs. *)
  let conic_ws = ref None in
  let bstats = ref Convex.Barrier.stats_zero in
  let cstats = ref Convex.Conic.stats_zero in
  let solves = ref 0 in
  let cells =
    Array.map
      (fun ftarget ->
        match !infeasible_from with
        | Some f0 when ftarget >= f0 ->
            report { tstart; ftarget; outcome = `Pruned; seconds = 0.0 };
            Table.Infeasible
        | Some _ | None -> (
            let t0 = Unix.gettimeofday () in
            let built = Model.instantiate prepared ~ftarget in
            incr solves;
            let ws =
              match (solver, !conic_ws) with
              | Some `Barrier, _ -> None
              | _, (Some _ as w) -> w
              | _, None ->
                  let w =
                    Convex.Conic.make_workspace
                      ~kkt:(`Blocks (Model.conic_blocks built.Model.layout))
                      (Lazy.force built.Model.conic)
                  in
                  conic_ws := Some w;
                  !conic_ws
            in
            match
              Model.solve ?solver ?options ?backend ~stats_into:bstats
                ~conic_stats_into:cstats ?conic_ws:ws ?start:!warm built
            with
            | Model.Feasible s ->
                (* Primal-only seeding: the floor shift between columns
                   moves the active set enough that re-seeding the cone
                   dual from the neighbour's multipliers (start_dual)
                   measures slightly worse than the central-path dual
                   at warm_mu. *)
                if warm_starts then warm := Some s.Model.raw.Convex.Solve.x;
                report
                  { tstart; ftarget; outcome = `Feasible;
                    seconds = Unix.gettimeofday () -. t0 };
                Table.Frequencies s.Model.frequencies
            | Model.Infeasible ->
                infeasible_from := Some ftarget;
                report
                  { tstart; ftarget; outcome = `Infeasible;
                    seconds = Unix.gettimeofday () -. t0 };
                Table.Infeasible))
      ftargets
  in
  (cells, { solves = !solves; barrier = !bstats; conic = !cstats })

(* Warm starts default on: the conic solver seeds the homogeneous
   embedding from the neighbouring column's primal optimum at a
   reduced initial mu, which BENCH_sweep measures as a solid win over
   cold starts (warm_vs_cold well under 0.8).  (On the reference
   barrier path the effect stays within noise — the start hint already
   skips phase I on almost every cell.) *)
let sweep_with_stats ?solver ?options ?backend ?domains ?(warm_starts = true)
    ?(tstarts = default_tstarts) ?(ftargets = default_ftargets) ?on_progress
    ~machine ~spec () =
  let domains =
    match domains with Some d -> d | None -> Parallel.Pool.default_domains ()
  in
  let report =
    match on_progress with
    | None -> fun _ -> ()
    | Some f ->
        if domains <= 1 then f
        else
          (* Rows complete out of order; serialize the callback so
             user code (typically terminal logging) never runs
             concurrently with itself. *)
          let m = Mutex.create () in
          fun p ->
            Mutex.lock m;
            Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () -> f p)
  in
  let rows =
    Parallel.Pool.map ~domains
      (fun i ->
        sweep_row ?solver ?options ?backend ~machine ~spec ~ftargets
          ~warm_starts ~report tstarts.(i))
      (Array.length tstarts)
  in
  let stats =
    Array.fold_left
      (fun acc (_, s) -> sweep_stats_add acc s)
      sweep_stats_zero rows
  in
  (Table.make ~tstarts ~ftargets (Array.map fst rows), stats)

let sweep ?solver ?options ?backend ?domains ?warm_starts ?tstarts ?ftargets
    ?on_progress ~machine ~spec () =
  fst
    (sweep_with_stats ?solver ?options ?backend ?domains ?warm_starts ?tstarts
       ?ftargets ?on_progress ~machine ~spec ())

let frontier_point ?options ?backend ~machine ~spec ~tstart () =
  Model.solve_frontier ?options ?backend
    (Model.build_frontier ~machine ~spec ~tstart)

let max_feasible_ftarget ?options ?backend ~machine ~spec ~tstart () =
  match frontier_point ?options ?backend ~machine ~spec ~tstart () with
  | Model.Feasible s ->
      Some (Linalg.Vec.mean s.Model.frequencies)
  | Model.Infeasible -> None
