let default_tstarts = [| 27.0; 30.0; 40.0; 50.0; 60.0; 70.0; 80.0; 90.0; 100.0 |]

let default_ftargets =
  Array.init 10 (fun i -> float_of_int (i + 1) *. 100.0 *. 1e6)

type progress = {
  tstart : float;
  ftarget : float;
  outcome : [ `Feasible | `Infeasible | `Pruned ];
  seconds : float;
}

let solve_point ?options ~machine ~spec ~tstart ~ftarget () =
  Model.solve ?options (Model.build ~machine ~spec ~tstart ~ftarget)

(* One table row: prepare the [(machine, spec, tstart)] context once,
   then walk the [ftarget] columns upward, seeding each solve from the
   previous feasible cell's interior optimum and pruning everything
   above the first infeasible target (infeasibility is monotone in
   [ftarget]).  The row is a pure function of its inputs — column
   order is sequential within the row — so the table is the same
   whichever domain runs it, and however many domains run at once. *)
let sweep_row ?options ~machine ~spec ~ftargets ~warm_starts ~report tstart =
  let prepared = Model.prepare ~machine ~spec ~tstart in
  let infeasible_from = ref None in
  let warm = ref None in
  Array.map
    (fun ftarget ->
      match !infeasible_from with
      | Some f0 when ftarget >= f0 ->
          report { tstart; ftarget; outcome = `Pruned; seconds = 0.0 };
          Table.Infeasible
      | Some _ | None -> (
          let t0 = Unix.gettimeofday () in
          let built = Model.instantiate prepared ~ftarget in
          match Model.solve ?options ?start:!warm built with
          | Model.Feasible s ->
              if warm_starts then warm := Some s.Model.raw.Convex.Solve.x;
              report
                { tstart; ftarget; outcome = `Feasible;
                  seconds = Unix.gettimeofday () -. t0 };
              Table.Frequencies s.Model.frequencies
          | Model.Infeasible ->
              infeasible_from := Some ftarget;
              report
                { tstart; ftarget; outcome = `Infeasible;
                  seconds = Unix.gettimeofday () -. t0 };
              Table.Infeasible))
    ftargets

let sweep ?options ?domains ?(warm_starts = true) ?(tstarts = default_tstarts)
    ?(ftargets = default_ftargets) ?on_progress ~machine ~spec () =
  let domains =
    match domains with Some d -> d | None -> Parallel.Pool.default_domains ()
  in
  let report =
    match on_progress with
    | None -> fun _ -> ()
    | Some f ->
        if domains <= 1 then f
        else
          (* Rows complete out of order; serialize the callback so
             user code (typically terminal logging) never runs
             concurrently with itself. *)
          let m = Mutex.create () in
          fun p ->
            Mutex.lock m;
            Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () -> f p)
  in
  let cells =
    Parallel.Pool.map ~domains
      (fun i ->
        sweep_row ?options ~machine ~spec ~ftargets ~warm_starts ~report
          tstarts.(i))
      (Array.length tstarts)
  in
  Table.make ~tstarts ~ftargets cells

let frontier_point ?options ~machine ~spec ~tstart () =
  Model.solve_frontier ?options (Model.build_frontier ~machine ~spec ~tstart)

let max_feasible_ftarget ?options ~machine ~spec ~tstart () =
  match frontier_point ?options ~machine ~spec ~tstart () with
  | Model.Feasible s ->
      Some (Linalg.Vec.mean s.Model.frequencies)
  | Model.Infeasible -> None
