let default_tstarts = [| 27.0; 30.0; 40.0; 50.0; 60.0; 70.0; 80.0; 90.0; 100.0 |]

let default_ftargets =
  Array.init 10 (fun i -> float_of_int (i + 1) *. 100.0 *. 1e6)

type progress = {
  tstart : float;
  ftarget : float;
  outcome : [ `Feasible | `Infeasible | `Pruned ];
  seconds : float;
}

type sweep_stats = {
  solves : int;
  centering_steps : int;
  newton_iterations : int;
  backtracks : int;
  factorizations : int;
}

let sweep_stats_zero =
  { solves = 0; centering_steps = 0; newton_iterations = 0; backtracks = 0;
    factorizations = 0 }

let sweep_stats_add a b =
  {
    solves = a.solves + b.solves;
    centering_steps = a.centering_steps + b.centering_steps;
    newton_iterations = a.newton_iterations + b.newton_iterations;
    backtracks = a.backtracks + b.backtracks;
    factorizations = a.factorizations + b.factorizations;
  }

let sweep_stats_of_barrier ~solves (s : Convex.Barrier.stats) =
  {
    solves;
    centering_steps = s.Convex.Barrier.centering_steps;
    newton_iterations = s.Convex.Barrier.newton_iterations;
    backtracks = s.Convex.Barrier.backtracks;
    factorizations = s.Convex.Barrier.factorizations;
  }

let solve_point ?options ?backend ~machine ~spec ~tstart ~ftarget () =
  Model.solve ?options ?backend (Model.build ~machine ~spec ~tstart ~ftarget)

(* One table row: prepare the [(machine, spec, tstart)] context once,
   then walk the [ftarget] columns upward, seeding each solve from the
   previous feasible cell's interior optimum and pruning everything
   above the first infeasible target (infeasibility is monotone in
   [ftarget]).  The row is a pure function of its inputs — column
   order is sequential within the row — so the table is the same
   whichever domain runs it, and however many domains run at once. *)
let sweep_row ?options ?backend ~machine ~spec ~ftargets ~warm_starts ~report
    tstart =
  let prepared = Model.prepare ~machine ~spec ~tstart in
  let infeasible_from = ref None in
  let warm = ref None in
  let stats = ref Convex.Barrier.stats_zero in
  let solves = ref 0 in
  let cells =
    Array.map
      (fun ftarget ->
        match !infeasible_from with
        | Some f0 when ftarget >= f0 ->
            report { tstart; ftarget; outcome = `Pruned; seconds = 0.0 };
            Table.Infeasible
        | Some _ | None -> (
            let t0 = Unix.gettimeofday () in
            let built = Model.instantiate prepared ~ftarget in
            incr solves;
            match
              Model.solve ?options ?backend ~stats_into:stats ?start:!warm
                built
            with
            | Model.Feasible s ->
                if warm_starts then warm := Some s.Model.raw.Convex.Solve.x;
                report
                  { tstart; ftarget; outcome = `Feasible;
                    seconds = Unix.gettimeofday () -. t0 };
                Table.Frequencies s.Model.frequencies
            | Model.Infeasible ->
                infeasible_from := Some ftarget;
                report
                  { tstart; ftarget; outcome = `Infeasible;
                    seconds = Unix.gettimeofday () -. t0 };
                Table.Infeasible))
      ftargets
  in
  (cells, sweep_stats_of_barrier ~solves:!solves !stats)

(* Warm starts default off: with the boundary-aware line search and
   the blended frontier-climb seeding, a BENCH_sweep comparison shows
   the warm and cold paths within measurement noise of each other
   (the start hint already skips phase I on almost every cell), and
   the cold path does marginally fewer Newton iterations. *)
let sweep_with_stats ?options ?backend ?domains ?(warm_starts = false)
    ?(tstarts = default_tstarts) ?(ftargets = default_ftargets) ?on_progress
    ~machine ~spec () =
  let domains =
    match domains with Some d -> d | None -> Parallel.Pool.default_domains ()
  in
  let report =
    match on_progress with
    | None -> fun _ -> ()
    | Some f ->
        if domains <= 1 then f
        else
          (* Rows complete out of order; serialize the callback so
             user code (typically terminal logging) never runs
             concurrently with itself. *)
          let m = Mutex.create () in
          fun p ->
            Mutex.lock m;
            Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () -> f p)
  in
  let rows =
    Parallel.Pool.map ~domains
      (fun i ->
        sweep_row ?options ?backend ~machine ~spec ~ftargets ~warm_starts
          ~report tstarts.(i))
      (Array.length tstarts)
  in
  let stats =
    Array.fold_left
      (fun acc (_, s) -> sweep_stats_add acc s)
      sweep_stats_zero rows
  in
  (Table.make ~tstarts ~ftargets (Array.map fst rows), stats)

let sweep ?options ?backend ?domains ?warm_starts ?tstarts ?ftargets
    ?on_progress ~machine ~spec () =
  fst
    (sweep_with_stats ?options ?backend ?domains ?warm_starts ?tstarts
       ?ftargets ?on_progress ~machine ~spec ())

let frontier_point ?options ?backend ~machine ~spec ~tstart () =
  Model.solve_frontier ?options ?backend
    (Model.build_frontier ~machine ~spec ~tstart)

let max_feasible_ftarget ?options ?backend ~machine ~spec ~tstart () =
  match frontier_point ?options ?backend ~machine ~spec ~tstart () with
  | Model.Feasible s ->
      Some (Linalg.Vec.mean s.Model.frequencies)
  | Model.Infeasible -> None
