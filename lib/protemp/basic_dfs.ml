open Linalg

let create ?(threshold = 90.0) ?(lag_periods = 1) ~fmax () =
  if lag_periods < 0 then invalid_arg "Basic_dfs.create: negative lag";
  (* The reactive loop acts on the reading it sampled [lag_periods]
     management intervals ago — the sensing/actuation delay the paper
     blames for Fig. 1's overshoot ("the cores operate for a long
     period above the maximum allowable temperature, before the
     frequency scaling takes place").  [history] is a FIFO of past
     readings. *)
  let history = Queue.create () in
  {
    Sim.Policy.controller_name =
      Printf.sprintf "basic-dfs@%.0fC(lag %d)" threshold lag_periods;
    decide =
      (fun obs ->
        let current = Vec.copy obs.Sim.Policy.core_temperatures in
        Queue.push current history;
        let effective =
          if Queue.length history > lag_periods then Queue.pop history
          else Queue.peek history
        in
        let wanted =
          Float.min fmax (Float.max 0.0 obs.Sim.Policy.required_frequency)
        in
        (* Per-core ceiling: [Float.min core_fmax.(c) wanted] is
           [wanted] exactly on a homogeneous platform (wanted <= fmax
           = every ceiling), so the old behavior is reproduced bit
           for bit. *)
        let core_fmax = obs.Sim.Policy.core_fmax in
        Vec.init (Vec.dim effective) (fun c ->
            if effective.(c) >= threshold then 0.0
            else Float.min core_fmax.(c) wanted));
  }
