(** The Pro-Temp temperature guarantee, made checkable.

    The argument: (1) the discrete step matrix is elementwise
    nonnegative, so temperatures are monotone in initial temperatures
    and powers; (2) the table entry for row [tstart] keeps every node
    below [tmax] for a whole window when all nodes start at [tstart]
    and every core burns the full modeled power; (3) the controller
    picks a row with [tstart >=] the observed maximum temperature and
    real powers never exceed the modeled ones.  Hence real
    temperatures are dominated by the certified trajectory.

    This module provides the window simulation used by (2) and a
    whole-table audit. *)

open Linalg

val window_peak :
  machine:Sim.Machine.t ->
  dfs_period:float ->
  tstart:float ->
  frequencies:Vec.t ->
  float
(** Worst node temperature over one DFS window when every node starts
    at [tstart] and every core runs busy at its assigned frequency —
    the certified upper envelope. *)

val uniform_table :
  machine:Sim.Machine.t ->
  spec:Spec.t ->
  ?margin:float ->
  tstarts:float array ->
  ftargets:float array ->
  unit ->
  Table.t
(** A certified table without the optimizer: cell [(tstart, ftarget)]
    holds the uniform per-core vector at [ftarget] when its
    {!window_peak} from [tstart] stays at or below
    [spec.tmax - margin], and is [Infeasible] otherwise.  Uniform
    cells forgo the paper's variable-assignment headroom, but every
    stored entry carries the same simulate-and-check certificate the
    audit uses — which makes this the cheap way to build guard-banded
    ([margin > 0]) reference tables for fault experiments.  [margin]
    defaults to [0.0]; raises [Invalid_argument] when negative or at
    least [tmax]. *)

type audit = {
  cells_checked : int;
  worst_margin : float;
      (** [tmax - peak] over all feasible cells; positive means every
          entry honours the cap. *)
  worst_cell : (float * float) option;  (** [(tstart, ftarget)]. *)
}

val audit_table :
  machine:Sim.Machine.t -> spec:Spec.t -> Table.t -> audit
(** Re-simulate every feasible cell and report the tightest margin. *)

type severity_point = {
  severity : float;  (** The value handed to [faults_of]. *)
  thermal : Sim.Probe.audit;
      (** Step-level [tmax] audit of the faulty run. *)
  unfinished : int;  (** Tasks left over — the throughput cost. *)
  mean_waiting : float;
      (** Mean task waiting time (s) — the responsiveness cost a
          guard band pays for its safety. *)
}

val violations_under_faults :
  ?config:Sim.Engine.config ->
  ?assignment:Sim.Policy.assignment ->
  machine:Sim.Machine.t ->
  controller:(unit -> Sim.Policy.controller) ->
  trace:Workload.Trace.t ->
  faults_of:(float -> Sim.Fault.t list) ->
  severities:float array ->
  unit ->
  severity_point array
(** The guarantee as a function of fault severity: for each severity
    the controller (a fresh instance per point) is wrapped in
    [faults_of severity] and driven through [trace] with a
    {!Sim.Probe.thermal_audit} at [config]'s [tmax]
    ({!Sim.Engine.default_config} by default; [assignment] defaults
    to [first_idle]).  A guarantee-carrying controller should show
    [violating_steps = 0] at severity [0.0] always, and — once guard
    banded — for every severity its margin dominates. *)
