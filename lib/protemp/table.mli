(** The Phase-1 output table (the paper's Fig. 4).

    Rows are starting temperatures, columns target average
    frequencies; each cell holds the optimal per-core frequency vector
    or marks infeasibility.  {!lookup} implements the paper's run-time
    rule: take the row covering the observed maximum temperature, then
    the column for the required frequency, falling back to "the next
    lower frequency point that can support the temperature
    constraints". *)

open Linalg

type cell =
  | Frequencies of Vec.t  (** Per-core frequencies, Hz. *)
  | Infeasible

type t

val make :
  tstarts:float array -> ftargets:float array -> cell array array -> t
(** [tstarts] and [ftargets] must be strictly increasing;
    [cells.(i).(j)] corresponds to [tstarts.(i)], [ftargets.(j)].
    Every [Frequencies] cell must hold the same (non-zero) number of
    cores.  Raises [Invalid_argument] on shape, dimension or ordering
    errors. *)

val tstarts : t -> float array
val ftargets : t -> float array
val cell : t -> int -> int -> cell

val row_for_temperature : t -> float -> int option
(** Smallest row whose [tstart] is >= the observed temperature —
    the conservative covering row; [None] when the observation
    exceeds the hottest row.  Binary search (the axes are strictly
    increasing). *)

val row_index : t -> float -> int
(** {!row_for_temperature} without the option: [-1] when the
    observation exceeds the hottest row.  The allocation-free form
    used on the controller hot path. *)

val col_start : t -> float -> int
(** Smallest column whose [ftarget] is >= the requirement, clamped to
    the top column when the requirement exceeds the grid — the
    starting point of the paper's round-up-then-fall-back column rule.
    Binary search. *)

val lookup : t -> temperature:float -> required:float -> Vec.t option
(** The paper's run-time rule.  Returns [None] when the temperature
    exceeds every row or no column in the row is feasible (the caller
    should then stop the cores for a window). *)

val lookup_into :
  t -> temperature:float -> required:float -> into:Vec.t -> bool
(** Allocation-free {!lookup}: on success the entry is blitted into
    [into] and the call returns [true]; [false] is {!lookup}'s [None]
    and leaves [into] untouched.  Raises [Invalid_argument] when
    [into]'s length differs from the table's core count.  Listed in
    [lint.manifest] — the body must stay free of allocation sites. *)

val core_count : t -> int option
(** Number of cores per feasible cell ([Table.make] enforces it is
    uniform); [None] when every cell is infeasible. *)

val feasible_frontier : t -> (float * float option) array
(** Per row: the largest feasible [ftarget] ([None] if none) — the
    data behind Fig. 9. *)

val to_csv : t -> string
(** One line per cell: [tstart,ftarget,f1,...,fn] or
    [tstart,ftarget,infeasible].  Values are printed with [%.17g], so
    {!of_csv} reconstructs every float bit-for-bit and nearby axis
    values never collide. *)

val of_csv : string -> t
(** Inverse of {!to_csv} (axes are matched exactly — no rounding
    tolerance).  Raises [Failure] on malformed input or a duplicated
    [(tstart, ftarget)] cell, [Invalid_argument] when the parsed cells
    disagree on the core count. *)

val pp : Format.formatter -> t -> unit
