open Linalg

let window_peak ~machine ~dfs_period ~tstart ~frequencies =
  let thermal = machine.Sim.Machine.thermal in
  let dt = thermal.Thermal.Rc_model.dt in
  let steps = int_of_float (Float.round (dfs_period /. dt)) in
  if steps < 1 then invalid_arg "Guarantee.window_peak: window too short";
  if Vec.dim frequencies <> machine.Sim.Machine.n_cores then
    invalid_arg "Guarantee.window_peak: need one frequency per core";
  let power =
    Sim.Machine.power_vector machine ~frequencies
      ~busy:(Array.make machine.Sim.Machine.n_cores true)
  in
  let t0 = Vec.create machine.Sim.Machine.n_nodes tstart in
  let traj =
    Thermal.Transient.simulate thermal ~t0 ~steps ~power:(fun _ -> power)
  in
  Thermal.Transient.peak traj

let uniform_table ~machine ~(spec : Spec.t) ?(margin = 0.0) ~tstarts ~ftargets
    () =
  if margin < 0.0 then invalid_arg "Guarantee.uniform_table: negative margin";
  if margin >= spec.Spec.tmax then
    invalid_arg "Guarantee.uniform_table: margin leaves no envelope";
  let cap = spec.Spec.tmax -. margin in
  let n_cores = machine.Sim.Machine.n_cores in
  let cells =
    Array.map
      (fun tstart ->
        Array.map
          (fun ftarget ->
            let frequencies = Vec.create n_cores ftarget in
            let peak =
              window_peak ~machine ~dfs_period:spec.Spec.dfs_period ~tstart
                ~frequencies
            in
            if peak <= cap then Table.Frequencies frequencies
            else Table.Infeasible)
          ftargets)
      tstarts
  in
  Table.make ~tstarts ~ftargets cells

type audit = {
  cells_checked : int;
  worst_margin : float;
  worst_cell : (float * float) option;
}

let audit_table ~machine ~(spec : Spec.t) table =
  let tstarts = Table.tstarts table in
  let ftargets = Table.ftargets table in
  let checked = ref 0 in
  let worst = ref infinity in
  let worst_cell = ref None in
  Array.iteri
    (fun i tstart ->
      Array.iteri
        (fun j ftarget ->
          match Table.cell table i j with
          | Table.Infeasible -> ()
          | Table.Frequencies frequencies ->
              incr checked;
              let peak =
                window_peak ~machine ~dfs_period:spec.Spec.dfs_period
                  ~tstart ~frequencies
              in
              let margin = spec.Spec.tmax -. peak in
              if margin < !worst then begin
                worst := margin;
                worst_cell := Some (tstart, ftarget)
              end)
        ftargets)
    tstarts;
  { cells_checked = !checked; worst_margin = !worst; worst_cell = !worst_cell }

type severity_point = {
  severity : float;
  thermal : Sim.Probe.audit;
  unfinished : int;
  mean_waiting : float;
}

let violations_under_faults ?(config = Sim.Engine.default_config)
    ?(assignment = Sim.Policy.first_idle) ~machine ~controller ~trace
    ~faults_of ~severities () =
  Array.map
    (fun severity ->
      let ctrl = Sim.Fault.wrap ~faults:(faults_of severity) (controller ()) in
      let probe, audit = Sim.Probe.thermal_audit ~tmax:config.Sim.Engine.tmax () in
      let r = Sim.Engine.run ~config ~probes:[ probe ] machine ctrl assignment trace in
      {
        severity;
        thermal = audit ();
        unfinished = r.Sim.Engine.unfinished;
        mean_waiting = Sim.Stats.mean_waiting r.Sim.Engine.stats;
      })
    severities
