open Linalg

type counts = { solved : int; fallbacks : int; stops : int }

let zero_counts = { solved = 0; fallbacks = 0; stops = 0 }

let add_counts a b =
  {
    solved = a.solved + b.solved;
    fallbacks = a.fallbacks + b.fallbacks;
    stops = a.stops + b.stops;
  }

let sub_counts a b =
  {
    solved = a.solved - b.solved;
    fallbacks = a.fallbacks - b.fallbacks;
    stops = a.stops - b.stops;
  }

(* Counters live in the instance itself (not a global table keyed by
   name): campaign cells build controllers inside worker domains, and
   a shared Hashtbl there is a data race and a leak.  Atomics make the
   counts safely readable from the spawning domain after a cell
   returns. *)
type t = {
  ctrl : Sim.Policy.controller;
  n_solved : int Atomic.t;
  n_fallbacks : int Atomic.t;
  n_stops : int Atomic.t;
}

let next_id = Atomic.make 0

let create ?solver ?options ?fallback ?(margin = 0.0) ~machine ~spec () =
  if margin < 0.0 then invalid_arg "Online.create: negative margin";
  if margin >= spec.Spec.tmax then
    invalid_arg "Online.create: margin leaves no thermal envelope";
  let spec = { spec with Spec.tmax = spec.Spec.tmax -. margin } in
  let name =
    Printf.sprintf "pro-temp-online-%d" (Atomic.fetch_and_add next_id 1 + 1)
  in
  let n_solved = Atomic.make 0 in
  let n_fallbacks = Atomic.make 0 in
  let n_stops = Atomic.make 0 in
  let n_cores = machine.Sim.Machine.n_cores in
  let stop = Vec.zeros n_cores in
  (* Per-instance lookup buffer: the engine consumes the decision
     vector at the epoch boundary, so the allocation-free
     [Table.lookup_into] can reuse it across fallback epochs. *)
  let fallback_buf = Vec.zeros n_cores in
  let fallback_frequencies obs =
    match fallback with
    | None -> None
    | Some table ->
        if
          Table.lookup_into table
            ~temperature:obs.Sim.Policy.max_core_temperature
            ~required:obs.Sim.Policy.required_frequency ~into:fallback_buf
        then Some fallback_buf
        else None
  in
  let profile_of obs =
    (* Sensors exist per core; unsensed nodes are bounded above by the
       hottest core (conservative under monotone dynamics). *)
    let worst = obs.Sim.Policy.max_core_temperature in
    let ambient = machine.Sim.Machine.thermal.Thermal.Rc_model.ambient in
    let t0 = Vec.create machine.Sim.Machine.n_nodes (Float.max worst ambient) in
    Array.iteri
      (fun c node -> t0.(node) <- obs.Sim.Policy.core_temperatures.(c))
      machine.Sim.Machine.core_nodes;
    t0
  in
  let decide obs =
    (* The degradation chain, in order: fresh solve, then the table's
       next-lower-feasible-column rule, then a safe stop. *)
    let built =
      Model.build_with_profile ~machine ~spec ~t0:(profile_of obs)
        ~ftarget:obs.Sim.Policy.required_frequency
    in
    match Model.solve ?solver ?options built with
    | Model.Feasible s ->
        Atomic.incr n_solved;
        s.Model.frequencies
    | Model.Infeasible -> (
        match fallback_frequencies obs with
        | Some f ->
            Atomic.incr n_fallbacks;
            f
        | None ->
            Atomic.incr n_stops;
            stop)
  in
  {
    ctrl = { Sim.Policy.controller_name = name; decide };
    n_solved;
    n_fallbacks;
    n_stops;
  }

let controller t = t.ctrl

let counts t =
  {
    solved = Atomic.get t.n_solved;
    fallbacks = Atomic.get t.n_fallbacks;
    stops = Atomic.get t.n_stops;
  }

let solves t =
  let c = counts t in
  c.solved + c.fallbacks + c.stops

let outcome_probe t =
  let base = counts t in
  let final = ref None in
  let probe =
    Sim.Probe.make "online-outcomes"
      ~on_finish:(fun () -> final := Some (sub_counts (counts t) base))
  in
  ( probe,
    fun () ->
      match !final with
      | Some c -> c
      | None -> sub_counts (counts t) base )
