(** Compact binary serving format for Phase-1 tables.

    A table is written once as a versioned little-endian image and
    then opened read-only by any number of controllers via
    [Unix.map_file]: every open shares the same page-cache-backed
    pages, costs no per-instance load or parse beyond the 32-byte
    header, and serves allocation-free lookups straight out of the
    mapping.  This is the serving half of the dense-table pipeline
    (DESIGN.md section 6h): {!Dense_table} fills grids, this module
    ships them to fleets of simulated controllers.

    {2 Layout (version 2, all fields little-endian)}

    {v
      offset  size  field
      0       4     magic "PTBL"
      4       4     version (u32) = 2
      8       4     n_rows (u32)
      12      4     n_cols (u32)
      16      4     n_cores (u32)
      20      4     flags (u32, reserved, 0)
      24      8     sentinel (f64) = 1.0 — endianness canary read
                    through the mapped float view
      32      8R    tstarts (f64 x n_rows, strictly increasing)
      ..      8C    ftargets (f64 x n_cols, strictly increasing)
      ..      8K    core_fmax (f64 x n_cores, per-core frequency
                    ceilings; all zeros when the writing platform was
                    unknown)
      ..      8RCK  cells (f64, row-major [i][j][core]; infeasible
                    cells hold zeros)
      ..      B     infeasibility bitmap: ceil(RC/8) bytes padded to a
                    multiple of 8; bit [k land 7] of byte [k lsr 3] is
                    set iff cell [k = i*n_cols + j] is infeasible
    v}

    Version 2 added the per-core fmax block (the platform refactor:
    tables built for an asymmetric machine record which ceilings the
    cells were certified against).  Version-1 images are rejected
    with a message naming the version so stale fleets fail loudly.

    Every numeric region is 8-byte aligned (the header is 32 bytes),
    so the sentinel-through-cells span maps directly as a float64
    {!Bigarray.Array1}. *)

open Linalg

val serialize : ?core_fmax:float array -> Table.t -> string
(** The version-2 image of a table.  Feasible cells must exist for the
    core count to be recorded; an all-infeasible table serializes with
    [n_cores = 0].  [core_fmax] (one ceiling per core, e.g.
    [Sim.Machine.core_fmax]) defaults to all zeros, meaning the
    writing platform was unknown; raises [Invalid_argument] on a
    length mismatch or a negative/NaN entry. *)

val write : ?core_fmax:float array -> Table.t -> string -> unit
(** [write table path] writes {!serialize}'s image atomically enough
    for the tests (truncate + write). *)

type t
(** A read-only mapped image.  Safe to share across domains: all
    state is immutable after {!open_file}. *)

val open_file : string -> t
(** Map [path] read-only and validate it: magic, version, declared
    dimensions vs file size, the float-view sentinel, and strictly
    increasing axes.  Raises [Failure] with a descriptive message on
    truncated, corrupt, wrong-version or wrong-endianness images.
    The file descriptor is closed before returning (the mapping keeps
    the pages alive). *)

val n_rows : t -> int
val n_cols : t -> int

val n_cores : t -> int
(** Frequencies per cell; [0] for an all-infeasible image (every
    lookup misses). *)

val tstarts : t -> float array
val ftargets : t -> float array

val core_fmax : t -> float array
(** Per-core frequency ceilings recorded at write time; all zeros
    when the writer did not know the platform.  Fresh copy. *)

val row_index : t -> float -> int
(** As {!Table.row_index}: conservative covering row, [-1] when the
    temperature exceeds the hottest row.  Binary search, no
    allocation. *)

val col_start : t -> float -> int
(** As {!Table.col_start}. *)

val infeasible_bit : t -> int -> int -> bool
(** Bitmap test for cell [(i, j)] (unchecked indices: callers
    validate).  No allocation. *)

val cell_into : t -> int -> int -> into:Vec.t -> bool
(** Copy cell [(i, j)] into [into] ([false] = infeasible, [into]
    untouched).  Raises [Invalid_argument] on an out-of-range index or
    a core-count mismatch.  No allocation. *)

val lookup_into : t -> temperature:float -> required:float -> into:Vec.t -> bool
(** Exactly {!Table.lookup_into}, served from the mapping: covering
    row by binary search, round the requirement up to the starting
    column, walk down to the first feasible cell.  [false] when the
    temperature exceeds every row or the row has no feasible column.
    Allocation-free (listed in [lint.manifest] and Gc-asserted by the
    tests), so thousands of controllers can poll one shared image. *)

val to_table : t -> Table.t
(** Materialize the image back into a heap table (tests and
    offline tooling; allocates freely). *)
