
(* Format constants (see the .mli for the full layout).  The magic is
   the four bytes 'P' 'T' 'B' 'L' in file order; the sentinel is a
   float64 1.0 that open_file re-reads through the mapped float view,
   so a wrong-endianness or misaligned mapping is rejected before any
   cell is served. *)
let magic = "PTBL"
let version = 2
let header_bytes = 32
let sentinel = 1.0

let pad8 n = (n + 7) land lnot 7

let bitmap_bytes ~rows ~cols = pad8 ((rows * cols + 7) / 8)

(* v2 payload: sentinel, the two axes, the per-core fmax block (one
   float per core; zeros when the writer did not know the platform),
   then the cells. *)
let payload_floats ~rows ~cols ~cores =
  1 + rows + cols + cores + (rows * cols * cores)

let file_bytes ~rows ~cols ~cores =
  header_bytes - 8
  + (8 * payload_floats ~rows ~cols ~cores)
  + bitmap_bytes ~rows ~cols

(* ------------------------------------------------------------------ *)
(* Writing *)

let add_u32 buf v = Buffer.add_int32_le buf (Int32.of_int v)
let add_f64 buf x = Buffer.add_int64_le buf (Int64.bits_of_float x)

let serialize ?core_fmax table =
  let tstarts = Table.tstarts table in
  let ftargets = Table.ftargets table in
  let rows = Array.length tstarts and cols = Array.length ftargets in
  let cores = match Table.core_count table with Some n -> n | None -> 0 in
  let core_fmax =
    match core_fmax with
    | None -> Array.make cores 0.0 (* "platform unknown" sentinel *)
    | Some a ->
        if Array.length a <> cores then
          invalid_arg "Table_store.serialize: core_fmax length mismatch";
        Array.iter
          (fun f ->
            if not (f >= 0.0) then
              invalid_arg "Table_store.serialize: negative or NaN core fmax")
          a;
        a
  in
  let buf = Buffer.create (file_bytes ~rows ~cols ~cores) in
  Buffer.add_string buf magic;
  add_u32 buf version;
  add_u32 buf rows;
  add_u32 buf cols;
  add_u32 buf cores;
  add_u32 buf 0;
  add_f64 buf sentinel;
  Array.iter (add_f64 buf) tstarts;
  Array.iter (add_f64 buf) ftargets;
  Array.iter (add_f64 buf) core_fmax;
  let bitmap = Bytes.make (bitmap_bytes ~rows ~cols) '\000' in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      match Table.cell table i j with
      | Table.Frequencies f -> Array.iter (add_f64 buf) f
      | Table.Infeasible ->
          for _ = 1 to cores do
            add_f64 buf 0.0
          done;
          let k = (i * cols) + j in
          Bytes.set bitmap (k lsr 3)
            (Char.chr
               (Char.code (Bytes.get bitmap (k lsr 3)) lor (1 lsl (k land 7))))
    done
  done;
  Buffer.add_bytes buf bitmap;
  Buffer.contents buf

let write ?core_fmax table path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (serialize ?core_fmax table))

(* ------------------------------------------------------------------ *)
(* Reading *)

type t = {
  n_rows : int;
  n_cols : int;
  n_cores : int;
  tstarts : float array;  (* copied out of the image at open time *)
  ftargets : float array;
  core_fmax : float array;  (* per-core ceilings; zeros = unknown *)
  view : (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t;
      (* sentinel + axes + cells, mapped from byte 24 *)
  cells_base : int;  (* view index of cell (0, 0, core 0) *)
  bytes_view : (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout)
               Bigarray.Array1.t;  (* the whole file *)
  bitmap_off : int;  (* byte offset of the bitmap *)
}

let corrupt path what =
  failwith (Printf.sprintf "Table_store.open_file: %s: %s" path what)

let u32_le bytes off =
  Char.code (Bigarray.Array1.get bytes off)
  lor (Char.code (Bigarray.Array1.get bytes (off + 1)) lsl 8)
  lor (Char.code (Bigarray.Array1.get bytes (off + 2)) lsl 16)
  lor (Char.code (Bigarray.Array1.get bytes (off + 3)) lsl 24)

let strictly_increasing a =
  let ok = ref true in
  for i = 1 to Array.length a - 1 do
    if a.(i) <= a.(i - 1) then ok := false
  done;
  !ok

let open_file path =
  if Sys.big_endian then
    corrupt path "big-endian host: the little-endian float view cannot be \
                  mapped directly";
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let size = (Unix.fstat fd).Unix.st_size in
      if size < header_bytes then corrupt path "truncated header";
      let bytes_view =
        Bigarray.array1_of_genarray
          (Unix.map_file fd Bigarray.char Bigarray.c_layout false [| size |])
      in
      for i = 0 to 3 do
        if Bigarray.Array1.get bytes_view i <> magic.[i] then
          corrupt path "bad magic (not a PTBL image)"
      done;
      let v = u32_le bytes_view 4 in
      (* Version before size: a version mismatch must be reported as
         such, not as the size error the new layout would imply. *)
      if v = 1 then
        corrupt path
          "format version 1 image (pre-platform, no per-core fmax block); \
           rebuild it with this writer's version 2 format"
      else if v <> version then
        corrupt path (Printf.sprintf "unsupported version %d (expected %d)" v version);
      let n_rows = u32_le bytes_view 8 in
      let n_cols = u32_le bytes_view 12 in
      let n_cores = u32_le bytes_view 16 in
      if n_rows < 1 || n_cols < 1 || n_cores < 0 then
        corrupt path "implausible dimensions";
      if size <> file_bytes ~rows:n_rows ~cols:n_cols ~cores:n_cores then
        corrupt path
          (Printf.sprintf "size %d does not match declared %dx%dx%d layout"
             size n_rows n_cols n_cores);
      let n_payload = payload_floats ~rows:n_rows ~cols:n_cols ~cores:n_cores in
      let view =
        Bigarray.array1_of_genarray
          (Unix.map_file fd ~pos:(Int64.of_int (header_bytes - 8))
             Bigarray.float64 Bigarray.c_layout false [| n_payload |])
      in
      (* Exact sentinel check, through the float view: catches a
         mapping that decodes the payload differently from the header
         parser above. *)
      if not (Float.equal (Bigarray.Array1.get view 0) sentinel) then
        corrupt path "float-view sentinel mismatch";
      let tstarts = Array.init n_rows (fun i -> Bigarray.Array1.get view (1 + i)) in
      let ftargets =
        Array.init n_cols (fun j -> Bigarray.Array1.get view (1 + n_rows + j))
      in
      let core_fmax =
        Array.init n_cores (fun c ->
            Bigarray.Array1.get view (1 + n_rows + n_cols + c))
      in
      if not (strictly_increasing tstarts) then
        corrupt path "tstart axis not strictly increasing";
      if not (strictly_increasing ftargets) then
        corrupt path "ftarget axis not strictly increasing";
      Array.iter
        (fun f ->
          if not (f >= 0.0) then
            corrupt path "negative or NaN per-core fmax")
        core_fmax;
      {
        n_rows;
        n_cols;
        n_cores;
        tstarts;
        ftargets;
        core_fmax;
        view;
        cells_base = 1 + n_rows + n_cols + n_cores;
        bytes_view;
        bitmap_off = size - bitmap_bytes ~rows:n_rows ~cols:n_cols;
      })

let n_rows t = t.n_rows
let n_cols t = t.n_cols
let n_cores t = t.n_cores
let tstarts t = Array.copy t.tstarts
let ftargets t = Array.copy t.ftargets
let core_fmax t = Array.copy t.core_fmax

(* ------------------------------------------------------------------ *)
(* Lookups — the serving hot path, allocation-free (lint.manifest) *)

let row_index t temperature =
  let ts = t.tstarts in
  let n = Array.length ts in
  if ts.(n - 1) < temperature then -1
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if ts.(mid) >= temperature then hi := mid else lo := mid + 1
    done;
    !lo
  end

let col_start t required =
  let fa = t.ftargets in
  let n = Array.length fa in
  if fa.(n - 1) < required then n - 1
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fa.(mid) >= required then hi := mid else lo := mid + 1
    done;
    !lo
  end

let infeasible_bit t i j =
  let k = (i * t.n_cols) + j in
  let byte =
    Char.code (Bigarray.Array1.get t.bytes_view (t.bitmap_off + (k lsr 3)))
  in
  byte land (1 lsl (k land 7)) <> 0

let cell_into t i j ~into =
  if i < 0 || i >= t.n_rows || j < 0 || j >= t.n_cols then
    invalid_arg "Table_store.cell_into: cell out of range";
  if Array.length into <> t.n_cores then
    invalid_arg "Table_store.cell_into: core count mismatch";
  if infeasible_bit t i j then false
  else begin
    let base = t.cells_base + ((((i * t.n_cols) + j) * t.n_cores)) in
    for c = 0 to t.n_cores - 1 do
      into.(c) <- Bigarray.Array1.get t.view (base + c)
    done;
    true
  end

let lookup_into t ~temperature ~required ~into =
  if Array.length into <> t.n_cores then
    invalid_arg "Table_store.lookup_into: core count mismatch";
  let row = row_index t temperature in
  if row < 0 then false
  else begin
    let j = ref (col_start t required) in
    let found = ref false in
    while (not !found) && !j >= 0 do
      if infeasible_bit t row !j then decr j
      else begin
        let base = t.cells_base + ((((row * t.n_cols) + !j) * t.n_cores)) in
        for c = 0 to t.n_cores - 1 do
          into.(c) <- Bigarray.Array1.get t.view (base + c)
        done;
        found := true
      end
    done;
    !found
  end

(* ------------------------------------------------------------------ *)

let to_table t =
  let cells =
    Array.init t.n_rows (fun i ->
        Array.init t.n_cols (fun j ->
            if infeasible_bit t i j then Table.Infeasible
            else
              let base = t.cells_base + (((i * t.n_cols) + j) * t.n_cores) in
              Table.Frequencies
                (Array.init t.n_cores (fun c ->
                     Bigarray.Array1.get t.view (base + c)))))
  in
  Table.make ~tstarts:(Array.copy t.tstarts) ~ftargets:(Array.copy t.ftargets)
    cells
