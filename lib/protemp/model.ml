open Linalg
open Convex

type layout = {
  dim : int;
  n_cores : int;
  f_offset : int;
  n_f : int;
  p_offset : int;
  n_p : int;
  bounds_offset : int option;
}

type built = {
  problem : Convex.Barrier.problem;
  layout : layout;
  spec : Spec.t;
  initial_temperatures : Vec.t;
  ftarget : float;
  steps : int;
  machine : Sim.Machine.t;
  frontier_problem : Convex.Barrier.problem Lazy.t;
  compiled : Convex.Compiled.t Lazy.t;
  frontier_compiled : Convex.Compiled.t Lazy.t;
  conic : Convex.Conic.t Lazy.t;
}

(* The normal-equations matrix G' W^-2 G of the conic form couples
   variables only through shared constraint rows; in the models'
   (frequency, power, gradient-bound) variable order that coupling is
   block-tridiagonal, which is what the conic solver's `Blocks
   factorization exploits. *)
let conic_blocks layout =
  match layout.bounds_offset with
  | Some _ -> [| layout.n_f; layout.n_p; 2 |]
  | None -> [| layout.n_f; layout.n_p |]

let make_layout (spec : Spec.t) ~n_cores =
  let n_f = match spec.Spec.variant with Spec.Uniform -> 1 | Spec.Variable -> n_cores in
  let n_p = n_f in
  let base = 2 * n_f in
  let with_grad = spec.Spec.gradient <> None in
  {
    dim = (if with_grad then base + 2 else base);
    n_cores;
    f_offset = 0;
    n_f;
    p_offset = n_f;
    n_p;
    bounds_offset = (if with_grad then Some base else None);
  }

(* Affine coefficient of normalized core power j on the temperature of
   node [node] at step [k] is  S_k[node, core_j] * b[core_j] * pmax,
   where S_k = sum_{l<k} A^l.  We accumulate S_k step by step and emit
   constraints at the stride points. *)

let stride_steps ~steps ~stride =
  let rec go k acc =
    if k > steps then acc else go (k + stride) (k :: acc)
  in
  let ks = go stride [] in
  (* Always constrain the end of the window. *)
  if List.mem steps ks then ks else steps :: ks

(* Everything in the models of Eqs. 3-5 except the throughput floor
   (and the choice of objective) depends only on [(machine, spec, t0)]
   — the matrix-power products S_k, the base trajectory and every
   thermal, power-law, box and gradient row are shared by all
   [ftarget] columns of a table row.  [prepared] is that shared
   context, computed once; {!instantiate} then builds one [ftarget]
   instance by splicing in the single floor constraint.

   - [pre_floor]: power-law and box rows (the constraints the original
     single-shot construction emits before the floor);
   - [post_floor]: thermal and gradient rows (emitted after it).

   Keeping the original emission order means an instantiated problem
   is identical, constraint for constraint, to what a from-scratch
   build produces.  The shared [Quad.t] rows are never mutated by the
   solver, so cells — and domains — may share them freely. *)
type prepared = {
  pre_floor : Quad.t array;
  post_floor : Quad.t array;
  total_f_coeffs : Vec.t;
  power_objective : Quad.t;
  p_layout : layout;
  p_spec : Spec.t;
  p_machine : Sim.Machine.t;
  p_t0 : Vec.t;
  p_steps : int;
  p_frontier : Convex.Barrier.problem Lazy.t;
  (* Compiled (packed-Jacobian) forms, shared by every cell of the
     row.  [p_compiled] is the power problem with a floor constant of
     0; {!instantiate} re-offsets it per [ftarget] without repacking
     the Jacobian. *)
  p_compiled : Convex.Compiled.t Lazy.t;
  p_frontier_compiled : Convex.Compiled.t Lazy.t;
  (* Conic form with a floor constant of 0; {!instantiate} re-offsets
     the floor row per [ftarget] without re-packing G. *)
  p_conic : Convex.Conic.t Lazy.t;
}

let prepare_internal ~machine ~(spec : Spec.t) ~t0 =
  Spec.validate spec;
  (* Per-core normalization: variable j is stated in units of its own
     core's ceiling, [fhat_j = f_j / core_fmax.(j)] and
     [phat_j = p_j / core_pmax.(j)], so the box and power-law rows
     keep O(1) coefficients on any platform.  The quadratic surrogate
     [fhat^2 <= phat] over-states the true power [fhat^e] on [0, 1]
     only when [e >= 2]; a smaller exponent would silently void the
     thermal guarantee, so it is rejected here. *)
  Array.iter
    (fun e ->
      if e < 2.0 then
        invalid_arg
          "Model: power exponent below 2 (the quadratic surrogate would \
           under-estimate power)")
    machine.Sim.Machine.core_exponent;
  (match spec.Spec.variant with
  | Spec.Uniform
    when not (Sim.Platform.single_class machine.Sim.Machine.platform) ->
      invalid_arg "Model: the uniform variant needs a single-class platform"
  | Spec.Uniform | Spec.Variable -> ());
  let pmax = machine.Sim.Machine.core_pmax in
  let core_fmax = machine.Sim.Machine.core_fmax in
  let fref = machine.Sim.Machine.fmax in
  let thermal = machine.Sim.Machine.thermal in
  let dt = thermal.Thermal.Rc_model.dt in
  let steps = int_of_float (Float.round (spec.Spec.dfs_period /. dt)) in
  if steps < 1 then invalid_arg "Model.build: window below one thermal step";
  let n_nodes = machine.Sim.Machine.n_nodes in
  let n_cores = machine.Sim.Machine.n_cores in
  let core_nodes = machine.Sim.Machine.core_nodes in
  let layout = make_layout spec ~n_cores in
  let dim = layout.dim in
  let pre = ref [] in
  let add_pre c = pre := c :: !pre in
  (* Power law and box constraints. *)
  for j = 0 to layout.n_f - 1 do
    let f_var = Quad.linear_coord dim (layout.f_offset + j) 1.0 in
    let p_var = Quad.linear_coord dim (layout.p_offset + j) 1.0 in
    (* f^2 - p <= 0 *)
    add_pre
      (Quad.add
         (Quad.square_of_affine (Quad.linear_part f_var) 0.0)
         (Quad.scale (-1.0) p_var));
    (* 0 <= f <= 1.002 and 0 <= p <= 1.005: the upper boxes are
       relaxed a fraction of a percent so that a demand of exactly
       fmax keeps a strict interior for the barrier; extraction clamps
       back to fmax, which only lowers power, so the thermal guarantee
       (computed at the relaxed powers) still holds. *)
    add_pre (Quad.scale (-1.0) f_var);
    add_pre (Quad.add_constant f_var (-1.002));
    (* 0 <= p <= 1.005 *)
    add_pre (Quad.scale (-1.0) p_var);
    add_pre (Quad.add_constant p_var (-1.005))
  done;
  (* Throughput direction: sum over cores of f, in units of the chip
     reference frequency — coefficient [core_fmax.(j) / fref] per
     normalized variable, which is exactly -1.0 on a single-class
     platform ([x /. x = 1.0] for finite positive x).  In the uniform
     variant the single f counts n_cores times.  The floor constraint
     itself is per-[ftarget] and built in {!instantiate}. *)
  let total_f_coeffs =
    let q = Vec.zeros dim in
    (match spec.Spec.variant with
    | Spec.Variable ->
        for j = 0 to layout.n_f - 1 do
          q.(layout.f_offset + j) <- -.(core_fmax.(j) /. fref)
        done
    | Spec.Uniform -> q.(layout.f_offset) <- -.float_of_int n_cores);
    q
  in
  (* Base trajectory: the window with zero core power (fixed non-core
     power only), from the start temperature profile. *)
  if Vec.dim t0 <> n_nodes then
    invalid_arg "Model.build: initial temperature profile length mismatch";
  let base_traj =
    let traj =
      Thermal.Transient.simulate thermal ~t0 ~steps ~power:(fun _ ->
          machine.Sim.Machine.fixed_power)
    in
    traj.Thermal.Transient.temperatures
  in
  (* Thermal constraints: accumulate S_k and A^k. *)
  let post = ref [] in
  let add c = post := c :: !post in
  let ks = stride_steps ~steps ~stride:spec.Spec.constraint_stride in
  let ks = List.sort_uniq compare ks in
  let tmax = spec.Spec.tmax in
  let b = thermal.Thermal.Rc_model.injection in
  let grad_rows = ref [] in
  let s_k = ref (Mat.zeros n_nodes n_nodes) in
  let a_pow = ref (Mat.identity n_nodes) in
  let next_ks = ref ks in
  for k = 1 to steps do
    (* S_k = S_{k-1} + A^{k-1} *)
    Mat.add_into ~dst:!s_k !a_pow;
    a_pow := Mat.matmul thermal.Thermal.Rc_model.step !a_pow;
    match !next_ks with
    | k' :: rest when k' = k ->
        next_ks := rest;
        for node = 0 to n_nodes - 1 do
          (* Coefficients of normalized core powers on this node. *)
          let q = Vec.zeros dim in
          (match spec.Spec.variant with
          | Spec.Variable ->
              Array.iteri
                (fun j cn ->
                  q.(layout.p_offset + j) <-
                    Mat.get !s_k node cn *. b.(cn) *. pmax.(j))
                core_nodes
          | Spec.Uniform ->
              let acc = ref 0.0 in
              Array.iter
                (fun cn -> acc := !acc +. (Mat.get !s_k node cn *. b.(cn)))
                core_nodes;
              q.(layout.p_offset) <- !acc *. pmax.(0));
          let base = Mat.get base_traj k node in
          (* base + q.p <= tmax, stated in units of tmax so every
             constraint family has O(1) coefficients (the barrier's
             Newton systems are ill-conditioned otherwise). *)
          add
            (Quad.affine
               (Vec.scale (1.0 /. tmax) q)
               ((base -. tmax) /. tmax));
          (* Gradient bookkeeping (core nodes only). *)
          if
            layout.bounds_offset <> None
            && Array.exists (fun cn -> cn = node) core_nodes
          then grad_rows := (q, base) :: !grad_rows
        done
    | _ :: _ | [] -> ()
  done;
  (* Gradient variant: t_{k,i}/tmax in [l, u] for all core rows, plus
     bounds keeping phase I bounded and the optional hard cap. *)
  (match (layout.bounds_offset, spec.Spec.gradient) with
  | Some off, Some g ->
      let u = off and l = off + 1 in
      List.iter
        (fun (q, base) ->
          (* q.p/tmax + base/tmax - u <= 0 *)
          let qu = Vec.scale (1.0 /. tmax) q in
          qu.(u) <- -1.0;
          add (Quad.affine qu (base /. tmax));
          (* l - q.p/tmax - base/tmax <= 0 *)
          let ql = Vec.scale (-1.0 /. tmax) q in
          ql.(l) <- 1.0;
          add (Quad.affine ql (-.base /. tmax)))
        !grad_rows;
      (* 0 <= l, u <= 2, l <= u *)
      add (Quad.linear_coord dim l (-1.0));
      add (Quad.add_constant (Quad.linear_coord dim u 1.0) (-2.0));
      let l_le_u = Vec.zeros dim in
      l_le_u.(l) <- 1.0;
      l_le_u.(u) <- -1.0;
      add (Quad.affine l_le_u 0.0);
      (match g.Spec.cap with
      | Some cap ->
          let spread = Vec.zeros dim in
          spread.(u) <- 1.0;
          spread.(l) <- -1.0;
          add (Quad.affine spread (-.cap /. tmax))
      | None -> ())
  | None, None -> ()
  | Some _, None | None, Some _ -> assert false);
  (* Objective of the power problem: total power in units of the
     largest per-core pmax — coefficient [pmax.(j) / pref] per
     normalized power, exactly 1.0 on a single-class platform — plus
     the weighted spread (Eq. 3/5). *)
  let pref = Array.fold_left Float.max 0.0 pmax in
  let power_objective =
    let q = Vec.zeros dim in
    for j = 0 to layout.n_p - 1 do
      q.(layout.p_offset + j) <-
        (match spec.Spec.variant with
        | Spec.Variable -> pmax.(j) /. pref
        | Spec.Uniform -> float_of_int n_cores)
    done;
    (match (layout.bounds_offset, spec.Spec.gradient) with
    | Some off, Some g ->
        q.(off) <- g.Spec.weight;
        q.(off + 1) <- -.g.Spec.weight
    | None, _ | _, None -> ());
    Quad.affine q 0.0
  in
  let pre_floor = Array.of_list (List.rev !pre) in
  let post_floor = Array.of_list (List.rev !post) in
  {
    pre_floor;
    post_floor;
    total_f_coeffs;
    power_objective;
    p_layout = layout;
    p_spec = spec;
    p_machine = machine;
    p_t0 = Vec.copy t0;
    p_steps = steps;
    (* The frontier problem — maximize the total frequency under the
       same envelope, no floor — is shared by every cell of the row
       and forced at most once. *)
    p_frontier =
      lazy
        {
          Convex.Barrier.objective = Quad.affine total_f_coeffs 0.0;
          constraints = Array.append pre_floor post_floor;
        };
    p_compiled =
      lazy
        (Convex.Compiled.make ~objective:power_objective
           ~constraints:
             (Array.concat
                [ pre_floor; [| Quad.affine total_f_coeffs 0.0 |]; post_floor ]));
    p_frontier_compiled =
      lazy
        (Convex.Compiled.make
           ~objective:(Quad.affine total_f_coeffs 0.0)
           ~constraints:(Array.append pre_floor post_floor));
    p_conic =
      lazy
        (Convex.Conic.of_barrier
           {
             Convex.Barrier.objective = power_objective;
             constraints =
               Array.concat
                 [ pre_floor; [| Quad.affine total_f_coeffs 0.0 |]; post_floor ];
           });
  }

let uniform_t0 machine tstart =
  Vec.create machine.Sim.Machine.n_nodes tstart

let prepare ~machine ~spec ~tstart =
  prepare_internal ~machine ~spec ~t0:(uniform_t0 machine tstart)

let prepare_with_profile ~machine ~spec ~t0 =
  prepare_internal ~machine ~spec ~t0

let instantiate p ~ftarget =
  let fmax = p.p_machine.Sim.Machine.fmax in
  if ftarget < 0.0 || ftarget > fmax then
    invalid_arg "Model.build: ftarget outside [0, fmax]";
  let floor_const = float_of_int p.p_layout.n_cores *. (ftarget /. fmax) in
  let floor = Quad.affine p.total_f_coeffs floor_const in
  {
    problem =
      {
        Convex.Barrier.objective = p.power_objective;
        constraints =
          Array.concat [ p.pre_floor; [| floor |]; p.post_floor ];
      };
    layout = p.p_layout;
    spec = p.p_spec;
    initial_temperatures = p.p_t0;
    ftarget;
    steps = p.p_steps;
    machine = p.p_machine;
    frontier_problem = p.p_frontier;
    compiled =
      lazy
        (Convex.Compiled.with_constant
           (Lazy.force p.p_compiled)
           ~index:(Array.length p.pre_floor) floor_const);
    frontier_compiled = p.p_frontier_compiled;
    conic =
      lazy
        (Convex.Conic.with_constraint_constant
           (Lazy.force p.p_conic)
           ~index:(Array.length p.pre_floor) floor_const);
  }

let frontier_of_prepared p =
  {
    problem = Lazy.force p.p_frontier;
    layout = p.p_layout;
    spec = p.p_spec;
    initial_temperatures = p.p_t0;
    ftarget = 0.0;
    steps = p.p_steps;
    machine = p.p_machine;
    frontier_problem = p.p_frontier;
    compiled = p.p_frontier_compiled;
    frontier_compiled = p.p_frontier_compiled;
    conic = lazy (Convex.Conic.of_barrier (Lazy.force p.p_frontier));
  }

let build ~machine ~spec ~tstart ~ftarget =
  instantiate (prepare ~machine ~spec ~tstart) ~ftarget

let build_frontier ~machine ~spec ~tstart =
  frontier_of_prepared (prepare ~machine ~spec ~tstart)

let build_with_profile ~machine ~spec ~t0 ~ftarget =
  instantiate (prepare_with_profile ~machine ~spec ~t0) ~ftarget

let build_frontier_with_profile ~machine ~spec ~t0 =
  frontier_of_prepared (prepare_with_profile ~machine ~spec ~t0)

let with_gradient_bounds layout x =
  (match layout.bounds_offset with
  | Some off ->
      x.(off) <- 1.5;
      x.(off + 1) <- 0.01
  | None -> ());
  x

let start_hint built =
  let layout = built.layout in
  let machine = built.machine in
  let core_fmax = machine.Sim.Machine.core_fmax in
  let x = Vec.zeros layout.dim in
  for j = 0 to layout.n_f - 1 do
    (* Per-core normalization: the same demand sits higher on a
       little core's [0, 1] scale (and may overflow its box, in which
       case the frontier fallback takes over).  On a single-class
       platform [core_fmax.(j) = fmax], reproducing the old shared
       hint bit for bit. *)
    let fm =
      match built.spec.Spec.variant with
      | Spec.Variable -> core_fmax.(j)
      | Spec.Uniform -> machine.Sim.Machine.fmax
    in
    let fhat = Float.min 1.0015 (built.ftarget /. fm +. 0.001) in
    x.(layout.f_offset + j) <- fhat;
    x.(layout.p_offset + j) <- Float.min 1.0045 ((fhat *. fhat) +. 0.001)
  done;
  with_gradient_bounds layout x

let trivial_start built =
  let layout = built.layout in
  let x = Vec.zeros layout.dim in
  for j = 0 to layout.n_f - 1 do
    x.(layout.f_offset + j) <- 1e-3;
    x.(layout.p_offset + j) <- 1e-3
  done;
  with_gradient_bounds layout x

type solution = {
  frequencies : Vec.t;
  core_powers : Vec.t;
  total_power : float;
  gradient_spread : float option;
  raw : Convex.Solve.solution;
}

type outcome = Feasible of solution | Infeasible

let expand built per_var =
  (* Uniform solutions carry one value for all cores. *)
  match built.spec.Spec.variant with
  | Spec.Variable -> Vec.copy per_var
  | Spec.Uniform -> Vec.create built.layout.n_cores per_var.(0)

let solution_of_x built (raw : Convex.Solve.solution) =
  let layout = built.layout in
  let x = raw.Convex.Solve.x in
  let core_fmax = built.machine.Sim.Machine.core_fmax in
  let core_pmax = built.machine.Sim.Machine.core_pmax in
  let clamp1 v = Vec.map (fun a -> Float.min 1.0 (Float.max 0.0 a)) v in
  let fhat = expand built (clamp1 (Vec.slice x layout.f_offset layout.n_f)) in
  let phat = expand built (clamp1 (Vec.slice x layout.p_offset layout.n_p)) in
  (* Per-core denormalization, multiply order as [Vec.scale]'s
     [a *. x_i] so a single-class platform is bit-identical.  The
     reported powers are the certified (model) powers: for an
     exponent above 2 the true power is lower, so they remain a safe
     over-estimate. *)
  let frequencies =
    Vec.init layout.n_cores (fun j -> core_fmax.(j) *. fhat.(j))
  in
  let core_powers =
    Vec.init layout.n_cores (fun j -> core_pmax.(j) *. phat.(j))
  in
  let gradient_spread =
    Option.map
      (fun off -> (x.(off) -. x.(off + 1)) *. built.spec.Spec.tmax)
      layout.bounds_offset
  in
  {
    frequencies;
    core_powers;
    total_power = Vec.sum core_powers;
    gradient_spread;
    raw;
  }

(* Total frequency in units of the chip reference [fref], matching
   [total_f_coeffs]: weight [core_fmax.(j) /. fref] per normalized
   variable.  On a single-class platform the weight is exactly 1.0 and
   [1.0 *. x] is bitwise [x], so the accumulated sum is unchanged. *)
let total_fhat built x =
  let layout = built.layout in
  match built.spec.Spec.variant with
  | Spec.Variable ->
      let core_fmax = built.machine.Sim.Machine.core_fmax in
      let fref = built.machine.Sim.Machine.fmax in
      let acc = ref 0.0 in
      for j = 0 to layout.n_f - 1 do
        acc := !acc +. (core_fmax.(j) /. fref *. x.(layout.f_offset + j))
      done;
      !acc
  | Spec.Uniform ->
      float_of_int layout.n_cores *. x.(layout.f_offset)

let add_stats stats_into s =
  match stats_into with
  | Some acc -> acc := Convex.Barrier.stats_add !acc s
  | None -> ()

(* Solve [built.problem] directly (no phase I) with the selected
   backend; the compiled form is forced on first use and shared by
   every solve of the same instance. *)
let barrier_solve ?options ?stop_early ~backend built x0 =
  match backend with
  | `Compiled ->
      Convex.Barrier.solve_compiled ?options ?stop_early
        (Lazy.force built.compiled) x0
  | `Reference ->
      Convex.Barrier.solve ?options ~backend:`Reference ?stop_early
        built.problem x0

let solve_frontier ?options ?(backend = `Compiled) ?stats_into built =
  let start = trivial_start built in
  if not (Convex.Barrier.is_strictly_feasible built.problem start) then
    (* Even (near-)zero frequencies overheat: the start temperature is
       already out of the envelope. *)
    Infeasible
  else
    let r = barrier_solve ?options ~backend built start in
    add_stats stats_into r.Convex.Barrier.stats;
    let raw =
      {
        Convex.Solve.x = r.Convex.Barrier.x;
        objective_value = r.Convex.Barrier.objective_value;
        dual = r.Convex.Barrier.dual;
        gap = r.Convex.Barrier.gap;
        kkt =
          lazy
            (Convex.Kkt.residuals built.problem r.Convex.Barrier.x
               r.Convex.Barrier.dual);
        outer_iterations = r.Convex.Barrier.outer_iterations;
        newton_iterations = r.Convex.Barrier.newton_iterations;
        stats = r.Convex.Barrier.stats;
      }
    in
    Feasible (solution_of_x built raw)

(* Structural phase I: instead of the generic auxiliary problem (whose
   centering is fragile on thousands of near-parallel rows), maximize
   the total frequency under the same envelope, stopping as soon as
   the throughput floor is strictly cleared.  A frontier iterate that
   clears the floor is strictly feasible for the power problem.

   [start] warm-starts the climb: barrier iterates are strictly
   interior, so the previous column's optimum — which already sits at
   its own (lower) floor — is strictly feasible for the floor-free
   frontier problem, and the climb only has to cover the gap between
   consecutive floors instead of starting from zero frequency.  The
   warm point is first pulled a quarter of the way toward the
   well-centered trivial start: a neighbouring optimum hugs its
   binding wall, and centering the log barrier from a near-boundary
   point costs many damped Newton steps — more than the shortcut
   saves.  A convex combination of strictly feasible points is
   strictly feasible, so the blend keeps the warm information while
   restoring interior margin. *)
let frontier_barrier_solve ?options ?stop_early ~backend built x0 =
  match backend with
  | `Compiled ->
      Convex.Barrier.solve_compiled ?options ?stop_early
        (Lazy.force built.frontier_compiled) x0
  | `Reference ->
      Convex.Barrier.solve ?options ~backend:`Reference ?stop_early
        (Lazy.force built.frontier_problem) x0

let feasible_start_via_frontier ?options ?(backend = `Compiled) ?stats_into
    ?start built =
  let needed =
    float_of_int built.layout.n_cores *. built.ftarget
    /. built.machine.Sim.Machine.fmax
  in
  let problem = Lazy.force built.frontier_problem in
  let feasible x = Convex.Barrier.is_strictly_feasible problem x in
  let from_trivial () =
    let triv = trivial_start built in
    if feasible triv then Some triv else None
  in
  let x0 =
    match start with
    | Some x when Vec.dim x = built.layout.dim ->
        let triv = trivial_start built in
        let blend = Vec.add (Vec.scale 0.75 x) (Vec.scale 0.25 triv) in
        if feasible blend then Some blend
        else if feasible x then Some x
        else from_trivial ()
    | Some _ | None -> from_trivial ()
  in
  match x0 with
  | None -> None
  | Some x0 ->
      let stop_early x = total_fhat built x > needed +. 1e-7 in
      let r = frontier_barrier_solve ?options ~stop_early ~backend built x0 in
      add_stats stats_into r.Convex.Barrier.stats;
      if total_fhat built r.Convex.Barrier.x > needed then
        Some r.Convex.Barrier.x
      else None

let solve_barrier ?options ?(backend = `Compiled) ?stats_into ?start built =
  let strictly_ok x =
    Vec.dim x = built.layout.dim
    && Convex.Barrier.is_strictly_feasible built.problem x
  in
  let chosen =
    match start with
    | Some s when strictly_ok s -> Some s
    | Some _ | None ->
        let hint = start_hint built in
        if strictly_ok hint then Some hint
        else feasible_start_via_frontier ?options ~backend ?stats_into ?start
            built
  in
  match chosen with
  | None -> Infeasible
  | Some s -> (
      let compiled =
        match backend with
        | `Compiled -> Some (Lazy.force built.compiled)
        | `Reference -> None
      in
      match
        Convex.Solve.solve ?options ~backend ?compiled ?stats_into ~start:s
          built.problem
      with
      | Convex.Solve.Optimal raw -> Feasible (solution_of_x built raw)
      | Convex.Solve.Infeasible _ -> Infeasible)

(* Conic path: no start hint, no frontier climb — the homogeneous
   embedding starts cold (or from a primal-only warm seed) and an
   infeasible cell terminates with a primal-infeasibility certificate
   instead of a failed climb.  A dual-infeasibility certificate cannot
   occur for a well-posed cell (the objective is bounded below on the
   box), and [Unknown] means the iterate stalled before any
   certificate: both fall back to the reference barrier path rather
   than guessing. *)
let raw_of_conic built t (s : Convex.Conic.solution) =
  let dual = Convex.Conic.constraint_duals t s in
  {
    Convex.Solve.x = s.Convex.Conic.x;
    objective_value = s.Convex.Conic.objective_value;
    dual;
    gap = s.Convex.Conic.gap;
    kkt = lazy (Convex.Kkt.residuals built.problem s.Convex.Conic.x dual);
    outer_iterations = s.Convex.Conic.iterations;
    newton_iterations = s.Convex.Conic.iterations;
    stats = Convex.Barrier.stats_zero;
  }

let solve_conic ?conic_options ?conic_stats_into ?conic_ws ?start ?start_dual
    built =
  let t = Lazy.force built.conic in
  let options =
    match conic_options with
    | Some o -> o
    | None ->
        {
          Convex.Conic.default_options with
          Convex.Conic.kkt = `Blocks (conic_blocks built.layout);
        }
  in
  let warm =
    match start with
    | Some x when Vec.dim x = built.layout.dim -> Some x
    | Some _ | None -> None
  in
  let warm_dual = match warm with Some _ -> start_dual | None -> None in
  match
    Convex.Conic.solve ~options ?warm ?warm_dual
      ?stats_into:conic_stats_into ?ws:conic_ws t
  with
  | Convex.Conic.Optimal s ->
      `Done (Feasible (solution_of_x built (raw_of_conic built t s)))
  | Convex.Conic.Primal_infeasible _ -> `Done Infeasible
  | Convex.Conic.Dual_infeasible _ | Convex.Conic.Unknown _ -> `Fallback

let solve ?(solver = `Conic) ?options ?conic_options ?backend ?stats_into
    ?conic_stats_into ?conic_ws ?start ?start_dual built =
  match solver with
  | `Barrier -> solve_barrier ?options ?backend ?stats_into ?start built
  | `Conic -> (
      match
        solve_conic ?conic_options ?conic_stats_into ?conic_ws ?start
          ?start_dual built
      with
      | `Done outcome -> outcome
      | `Fallback ->
          solve_barrier ?options ?backend ?stats_into ?start built)

let predicted_peak built frequencies =
  let machine = built.machine in
  if Vec.dim frequencies <> machine.Sim.Machine.n_cores then
    invalid_arg "Model.predicted_peak: need one frequency per core";
  let power =
    Sim.Machine.power_vector machine ~frequencies
      ~busy:(Array.make machine.Sim.Machine.n_cores true)
  in
  let thermal = machine.Sim.Machine.thermal in
  let t0 = built.initial_temperatures in
  let traj =
    Thermal.Transient.simulate thermal ~t0 ~steps:built.steps ~power:(fun _ ->
        power)
  in
  Thermal.Transient.peak traj
