open Linalg

(* A memoized dense grid.  All mutable state lives inside the value
   (never at toplevel): [cells]/[seeds] memoize per cell, [prepared]
   and [conic_ws] cache the per-row solver contexts, [frontier.(i)] is
   the smallest column index known infeasible for row [i] ([n_cols]
   when none) — the data behind the monotone pruning rule.  Counters
   are plain ints mutated on the owning domain only; [fill] workers
   return their counts and the merge happens on the caller. *)
type t = {
  machine : Sim.Machine.t;
  spec : Spec.t;  (* tmax already tightened by the construction margin *)
  solver : [ `Conic | `Barrier ] option;
  options : Convex.Barrier.options option;
  tstarts : float array;
  ftargets : float array;
  cells : Table.cell option array array;
  seeds : Vec.t option array array;
      (* raw primal optimum of each solved feasible cell, the warm seed *)
  prepared : Model.prepared option array;
  conic_ws : Convex.Conic.workspace option array;
  frontier : int array;
  mutable n_solves : int;
  mutable n_warm_hits : int;
  mutable n_pruned : int;
}

let strictly_increasing a =
  let ok = ref true in
  for i = 1 to Array.length a - 1 do
    if a.(i) <= a.(i - 1) then ok := false
  done;
  !ok

let create ?solver ?options ?(margin = 0.0) ~machine ~spec ~tstarts ~ftargets
    () =
  if margin < 0.0 then invalid_arg "Dense_table.create: negative margin";
  if margin >= spec.Spec.tmax then
    invalid_arg "Dense_table.create: margin leaves no thermal envelope";
  if Array.length tstarts = 0 || Array.length ftargets = 0 then
    invalid_arg "Dense_table.create: empty axis";
  if not (strictly_increasing tstarts) then
    invalid_arg "Dense_table.create: tstarts not strictly increasing";
  if not (strictly_increasing ftargets) then
    invalid_arg "Dense_table.create: ftargets not strictly increasing";
  let spec = { spec with Spec.tmax = spec.Spec.tmax -. margin } in
  Spec.validate spec;
  let rows = Array.length tstarts and cols = Array.length ftargets in
  {
    machine;
    spec;
    solver;
    options;
    tstarts = Array.copy tstarts;
    ftargets = Array.copy ftargets;
    cells = Array.make_matrix rows cols None;
    seeds = Array.make_matrix rows cols None;
    prepared = Array.make rows None;
    conic_ws = Array.make rows None;
    frontier = Array.make rows cols;
    n_solves = 0;
    n_warm_hits = 0;
    n_pruned = 0;
  }

let tstarts t = Array.copy t.tstarts
let ftargets t = Array.copy t.ftargets

let n_rows t = Array.length t.tstarts
let n_cols t = Array.length t.ftargets

let computed t =
  let n = ref 0 in
  Array.iter
    (Array.iter (function Some _ -> incr n | None -> ()))
    t.cells;
  !n

(* Infeasibility is monotone in both axes (hotter starts and higher
   targets are both harder), so the tightest prune bound for row [i]
   is the smallest column any row at or below [i] (cooler or equal
   [tstart]) has certified infeasible: those certificates carry up to
   every hotter row and out to every faster column. *)
let prune_bound t i =
  let b = ref (n_cols t) in
  for i' = 0 to i do
    if t.frontier.(i') < !b then b := t.frontier.(i')
  done;
  !b

let prepared_for t i =
  match t.prepared.(i) with
  | Some p -> p
  | None ->
      let p =
        Model.prepare ~machine:t.machine ~spec:t.spec ~tstart:t.tstarts.(i)
      in
      t.prepared.(i) <- Some p;
      p

(* One conic workspace per row, created on first conic solve of that
   row — the per-column instances share their structure (only the
   throughput-floor constant moves), and reallocating the solver state
   per cell is measurable against millisecond solves. *)
let workspace_for t i (built : Model.built) =
  match t.solver with
  | Some `Barrier -> None
  | Some `Conic | None -> (
      match t.conic_ws.(i) with
      | Some _ as w -> w
      | None ->
          let w =
            Convex.Conic.make_workspace
              ~kkt:(`Blocks (Model.conic_blocks built.Model.layout))
              (Lazy.force built.Model.conic)
          in
          t.conic_ws.(i) <- Some w;
          t.conic_ws.(i))

(* The already-solved adjacent cell with the closest [ftarget] —
   vertical neighbours share the column's ftarget exactly, so they
   beat horizontal ones; ties resolve to the cooler row then the
   slower column, keeping the choice deterministic for a given memo
   state. *)
let neighbour_seed t i j =
  let best = ref None and best_d = ref infinity in
  let consider i' j' =
    if i' >= 0 && i' < n_rows t && j' >= 0 && j' < n_cols t then
      match t.seeds.(i').(j') with
      | Some _ as s ->
          let d = abs_float (t.ftargets.(j') -. t.ftargets.(j)) in
          if d < !best_d then begin
            best := s;
            best_d := d
          end
      | None -> ()
  in
  consider (i - 1) j;
  consider (i + 1) j;
  consider i (j - 1);
  consider i (j + 1);
  !best

let solve_cell t ~prepared ~ws ~seed j =
  let built = Model.instantiate prepared ~ftarget:t.ftargets.(j) in
  match
    Model.solve ?solver:t.solver ?options:t.options ?conic_ws:ws ?start:seed
      built
  with
  | Model.Feasible s ->
      (Table.Frequencies s.Model.frequencies, Some s.Model.raw.Convex.Solve.x)
  | Model.Infeasible -> (Table.Infeasible, None)

let cell t i j =
  if i < 0 || i >= n_rows t then invalid_arg "Dense_table.cell: row out of range";
  if j < 0 || j >= n_cols t then
    invalid_arg "Dense_table.cell: column out of range";
  match t.cells.(i).(j) with
  | Some c -> c
  | None ->
      if j >= prune_bound t i then begin
        (* Certified transitively: some cooler row is infeasible at a
           column <= j, and infeasibility is monotone. *)
        t.cells.(i).(j) <- Some Table.Infeasible;
        t.n_pruned <- t.n_pruned + 1;
        Table.Infeasible
      end
      else begin
        let prepared = prepared_for t i in
        let built0 = Model.instantiate prepared ~ftarget:t.ftargets.(j) in
        let ws = workspace_for t i built0 in
        let seed = neighbour_seed t i j in
        t.n_solves <- t.n_solves + 1;
        (match seed with
        | Some _ -> t.n_warm_hits <- t.n_warm_hits + 1
        | None -> ());
        let c, s = solve_cell t ~prepared ~ws ~seed j in
        t.cells.(i).(j) <- Some c;
        t.seeds.(i).(j) <- s;
        (match c with
        | Table.Infeasible ->
            if j < t.frontier.(i) then t.frontier.(i) <- j
        | Table.Frequencies _ -> ());
        c
      end

type fill_stats = {
  cells : int;
  solves : int;
  warm_hits : int;
  pruned : int;
  feasible : int;
}

(* One row of a fill: a pure function of the row's pre-fill memo state
   and the frontier snapshot, sequential over columns with the
   previous feasible column's optimum as the warm seed — so the grid a
   fill produces is bit-identical at any domain count. *)
let run_row (t : t) ~bound0 i =
  let cols = n_cols t in
  let cells = Array.copy t.cells.(i) in
  let seeds = Array.copy t.seeds.(i) in
  let prepared = ref t.prepared.(i) in
  let ws = ref t.conic_ws.(i) in
  let frontier_i = ref t.frontier.(i) in
  let bound = ref (Stdlib.min bound0 !frontier_i) in
  let warm = ref None in
  let n_new = ref 0 and solves = ref 0 and warm_hits = ref 0 in
  let pruned = ref 0 and feasible = ref 0 in
  for j = 0 to cols - 1 do
    match cells.(j) with
    | Some (Table.Frequencies _) -> warm := seeds.(j)
    | Some Table.Infeasible -> if j < !bound then bound := j
    | None ->
        incr n_new;
        if j >= !bound then begin
          cells.(j) <- Some Table.Infeasible;
          incr pruned;
          if j < !frontier_i then frontier_i := j
        end
        else begin
          let p =
            match !prepared with
            | Some p -> p
            | None ->
                let p =
                  Model.prepare ~machine:t.machine ~spec:t.spec
                    ~tstart:t.tstarts.(i)
                in
                prepared := Some p;
                p
          in
          let w =
            match (t.solver, !ws) with
            | Some `Barrier, _ -> None
            | _, (Some _ as w) -> w
            | _, None ->
                let built = Model.instantiate p ~ftarget:t.ftargets.(j) in
                let w =
                  Convex.Conic.make_workspace
                    ~kkt:(`Blocks (Model.conic_blocks built.Model.layout))
                    (Lazy.force built.Model.conic)
                in
                ws := Some w;
                !ws
          in
          incr solves;
          (match !warm with Some _ -> incr warm_hits | None -> ());
          let c, s = solve_cell t ~prepared:p ~ws:w ~seed:!warm j in
          cells.(j) <- Some c;
          seeds.(j) <- s;
          match c with
          | Table.Frequencies _ ->
              incr feasible;
              warm := s
          | Table.Infeasible ->
              if j < !bound then bound := j;
              if j < !frontier_i then frontier_i := j
        end
  done;
  (cells, seeds, !prepared, !ws, !frontier_i, !n_new, !solves, !warm_hits,
   !pruned, !feasible)

let fill ?domains (t : t) =
  let domains =
    match domains with Some d -> d | None -> Parallel.Pool.default_domains ()
  in
  let rows = n_rows t in
  (* Snapshot the cross-row frontier before the fan-out: every row
     prunes against the same deterministic bound, independent of which
     rows happen to finish first. *)
  let bounds = Array.init rows (fun i -> prune_bound t i) in
  let results =
    (* lint: capture rows share t read-only during the fan-out; each worker returns its row's state and only the submitting domain writes it back below *)
    Parallel.Pool.map ~domains (fun i -> run_row t ~bound0:bounds.(i) i) rows
  in
  let acc = ref { cells = 0; solves = 0; warm_hits = 0; pruned = 0; feasible = 0 } in
  Array.iteri
    (fun i (cells, seeds, prepared, ws, frontier_i, n_new, solves, warm_hits,
            pruned, feasible) ->
      t.cells.(i) <- cells;
      t.seeds.(i) <- seeds;
      t.prepared.(i) <- prepared;
      t.conic_ws.(i) <- ws;
      t.frontier.(i) <- frontier_i;
      acc :=
        {
          cells = !acc.cells + n_new;
          solves = !acc.solves + solves;
          warm_hits = !acc.warm_hits + warm_hits;
          pruned = !acc.pruned + pruned;
          feasible = !acc.feasible + feasible;
        })
    results;
  t.n_solves <- t.n_solves + !acc.solves;
  t.n_warm_hits <- t.n_warm_hits + !acc.warm_hits;
  t.n_pruned <- t.n_pruned + !acc.pruned;
  !acc

let stats (t : t) =
  let feasible = ref 0 in
  Array.iter
    (Array.iter (function
      | Some (Table.Frequencies _) -> incr feasible
      | Some Table.Infeasible | None -> ()))
    t.cells;
  {
    cells = computed t;
    solves = t.n_solves;
    warm_hits = t.n_warm_hits;
    pruned = t.n_pruned;
    feasible = !feasible;
  }

(* ------------------------------------------------------------------ *)
(* Lookups *)

(* Covering row: smallest tstart >= temperature (binary search). *)
let row_index t temperature =
  let ts = t.tstarts in
  let n = Array.length ts in
  if ts.(n - 1) < temperature then -1
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if ts.(mid) >= temperature then hi := mid else lo := mid + 1
    done;
    !lo
  end

let col_covering t required =
  let fa = t.ftargets in
  let n = Array.length fa in
  if fa.(n - 1) < required then -1
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fa.(mid) >= required then hi := mid else lo := mid + 1
    done;
    !lo
  end

let discrete t ~temperature ~required =
  match row_index t temperature with
  | -1 -> None
  | row ->
      let start =
        match col_covering t required with
        | -1 -> n_cols t - 1
        | j -> j
      in
      let rec down j =
        if j < 0 then None
        else
          match cell t row j with
          | Table.Frequencies f -> Some (Vec.copy f)
          | Table.Infeasible -> down (j - 1)
      in
      down start

let lookup t ~temperature ~required =
  let clamped () =
    match discrete t ~temperature ~required with
    | Some d -> `Clamped d
    | None -> `None
  in
  match row_index t temperature with
  | -1 -> `None
  | i1 -> (
      match col_covering t required with
      | -1 ->
          (* Requirement beyond the grid: no upper corner to blend
             toward; the discrete rule's round-down applies. *)
          clamped ()
      | j1 -> (
          let i0 = if temperature <= t.tstarts.(0) then i1 else i1 - 1 in
          let j0 = if required <= t.ftargets.(0) then j1 else j1 - 1 in
          match (cell t i0 j0, cell t i0 j1, cell t i1 j0, cell t i1 j1) with
          | Table.Frequencies f00, Table.Frequencies f01,
            Table.Frequencies f10, Table.Frequencies f11 ->
              let wt =
                if i0 = i1 then 1.0
                else
                  (temperature -. t.tstarts.(i0))
                  /. (t.tstarts.(i1) -. t.tstarts.(i0))
              in
              let wf =
                if j0 = j1 then 1.0
                else
                  (required -. t.ftargets.(j0))
                  /. (t.ftargets.(j1) -. t.ftargets.(j0))
              in
              let v =
                Vec.init (Vec.dim f11) (fun c ->
                    ((1.0 -. wt) *. (((1.0 -. wf) *. f00.(c)) +. (wf *. f01.(c))))
                    +. (wt *. (((1.0 -. wf) *. f10.(c)) +. (wf *. f11.(c)))))
              in
              (* The repair pass: certify the blend from the
                 conservative covering row's start temperature — the
                 same simulate-and-check the Guarantee audits use.  A
                 blend that cannot be certified clamps down to the
                 discrete rule, so interpolation is never less safe
                 than the paper's lookup. *)
              let peak =
                Guarantee.window_peak ~machine:t.machine
                  ~dfs_period:t.spec.Spec.dfs_period ~tstart:t.tstarts.(i1)
                  ~frequencies:v
              in
              if peak <= t.spec.Spec.tmax then `Interpolated v else clamped ()
          | _ -> clamped ()))

(* ------------------------------------------------------------------ *)

let to_table ?domains (t : t) =
  if computed t < n_rows t * n_cols t then ignore (fill ?domains t);
  let cells =
    Array.map
      (Array.map (function
        | Some c -> c
        | None -> assert false (* fill memoized every cell *)))
      t.cells
  in
  Table.make ~tstarts:(Array.copy t.tstarts) ~ftargets:(Array.copy t.ftargets)
    cells

let audit t = Guarantee.audit_table ~machine:t.machine ~spec:t.spec (to_table t)
