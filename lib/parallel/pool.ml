let parse_domains s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> Some n
  | Some _ | None -> None

let default_domains () =
  match Option.bind (Sys.getenv_opt "PROTEMP_DOMAINS") parse_domains with
  | Some n -> n
  | None -> Domain.recommended_domain_count ()

type t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  size : int;
}

let size t = t.size

(* Workers sleep on [nonempty] until a task arrives or the pool is
   shut down; tasks run outside the lock. *)
let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.closed do
    Condition.wait t.nonempty t.mutex
  done;
  match Queue.take_opt t.queue with
  | Some task ->
      Mutex.unlock t.mutex;
      task ();
      worker_loop t
  | None ->
      (* Closed and drained. *)
      Mutex.unlock t.mutex

let create ?domains () =
  let size =
    Stdlib.max 1 (match domains with Some d -> d | None -> default_domains ())
  in
  let t =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      closed = false;
      workers = [];
      size;
    }
  in
  (* The submitting domain works too, so [size - 1] extra domains. *)
  (* lint: capture the pool record is the shared queue itself; every field the workers touch is accessed under t.mutex *)
  t.workers <- List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  let ws = t.workers in
  t.workers <- [];
  List.iter Domain.join ws

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Per-batch completion state, separate from the pool lock so an idle
   pool can accept the next batch while stragglers finish. *)
type batch = {
  b_mutex : Mutex.t;
  b_done : Condition.t;
  mutable remaining : int;
  mutable failed : (int * exn * Printexc.raw_backtrace) option;
}

let sequential f n =
  (* Explicit loop: the order [f 0, f 1, ...] is part of the contract
     (bit-identical to what a caller's own loop would do). *)
  if n <= 0 then [||]
  else begin
    let first = f 0 in
    let results = Array.make n first in
    for i = 1 to n - 1 do
      results.(i) <- f i
    done;
    results
  end

let map_rows t f n =
  if n < 0 then invalid_arg "Pool.map_rows: negative size";
  if t.size <= 1 || n <= 1 then sequential f n
  else begin
    let results = Array.make n None in
    let batch =
      {
        b_mutex = Mutex.create ();
        b_done = Condition.create ();
        remaining = n;
        failed = None;
      }
    in
    let task i () =
      (match f i with
      | v -> results.(i) <- Some v
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          Mutex.lock batch.b_mutex;
          (match batch.failed with
          | Some (j, _, _) when j < i -> ()
          | Some _ | None -> batch.failed <- Some (i, e, bt));
          Mutex.unlock batch.b_mutex);
      Mutex.lock batch.b_mutex;
      batch.remaining <- batch.remaining - 1;
      if batch.remaining = 0 then Condition.broadcast batch.b_done;
      Mutex.unlock batch.b_mutex
    in
    Mutex.lock t.mutex;
    for i = 0 to n - 1 do
      Queue.add (task i) t.queue
    done;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    (* Help drain the queue from the submitting domain. *)
    let rec help () =
      Mutex.lock t.mutex;
      match Queue.take_opt t.queue with
      | Some task ->
          Mutex.unlock t.mutex;
          task ();
          help ()
      | None -> Mutex.unlock t.mutex
    in
    help ();
    Mutex.lock batch.b_mutex;
    while batch.remaining > 0 do
      Condition.wait batch.b_done batch.b_mutex
    done;
    let failed = batch.failed in
    Mutex.unlock batch.b_mutex;
    match failed with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
        Array.map
          (function Some v -> v | None -> assert false)
          results
  end

let map ?domains f n = with_pool ?domains (fun t -> map_rows t f n)
