(** Fixed-size domain pool with a shared task queue.

    A pool owns [size - 1] worker domains pulling tasks from a single
    queue (the submitting domain also participates while waiting, so a
    pool of size [k] really computes on [k] domains).  Results are
    assembled by index, so {!map_rows} is deterministic regardless of
    execution order; a pool of size 1 spawns no domains at all and runs
    the classic sequential loop, producing bit-identical results.

    The pool is built on stdlib [Domain]/[Mutex]/[Condition] only — no
    external dependencies.  Tasks must not themselves submit work to
    the pool they run on. *)

type t

val default_domains : unit -> int
(** Pool size used when none is given: the [PROTEMP_DOMAINS]
    environment variable when set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]. *)

val parse_domains : string -> int option
(** [parse_domains s] is the pool size encoded by an environment
    value: [Some n] for a positive integer, [None] otherwise.
    Exposed for testing. *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] starts a pool of the given size (default
    {!default_domains}).  Sizes below 1 are clamped to 1. *)

val size : t -> int

val map_rows : t -> (int -> 'a) -> int -> 'a array
(** [map_rows pool f n] computes [[| f 0; ...; f (n-1) |]].  Tasks run
    concurrently on the pool's domains; the result array is always in
    index order.  If any [f i] raises, the first exception (in task
    submission order) is re-raised after the batch drains.  Must not
    be called from two domains at once on the same pool. *)

val shutdown : t -> unit
(** Joins the worker domains.  Idempotent.  The pool must be idle. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] on a fresh pool and shuts it down
    afterwards, also on exceptions. *)

val map : ?domains:int -> (int -> 'a) -> int -> 'a array
(** One-shot {!map_rows} on a transient pool. *)
