type t = { tasks : Task.t array; mix_name : string; horizon : float }

let generate ?(n_cores = 8) ~seed ~n_tasks mix =
  Mix.validate mix;
  if n_tasks <= 0 then invalid_arg "Trace.generate: need at least one task";
  let rng = Rng.create seed in
  let rate = Mix.arrival_rate mix ~n_cores in
  let times =
    Arrival.generate_times mix.Mix.process ~rng ~rate ~count:n_tasks
  in
  let tasks =
    Array.mapi (fun id arrival -> Mix.sample_task mix ~rng ~id ~arrival) times
  in
  (* Arrival generators produce increasing times already; sort
     defensively so downstream code may rely on the invariant.  The
     horizon is read from the sorted tasks, not the raw [times]: if a
     generator ever did emit out-of-order instants, the last element
     of [times] would not be the latest arrival and every consumer of
     [horizon] (engine deadlines, windowing, utilization) would be
     silently wrong. *)
  Array.sort Task.compare_by_arrival tasks;
  {
    tasks;
    mix_name = mix.Mix.name;
    horizon = tasks.(n_tasks - 1).Task.arrival;
  }

type statistics = {
  count : int;
  mean_work : float;
  max_work : float;
  total_work : float;
  mean_interarrival : float;
  offered_utilization : float;
}

let statistics trace ~n_cores =
  if n_cores <= 0 then invalid_arg "Trace.statistics: non-positive cores";
  let n = Array.length trace.tasks in
  let total_work =
    Array.fold_left (fun acc t -> acc +. t.Task.work) 0.0 trace.tasks
  in
  let max_work =
    Array.fold_left (fun acc t -> Float.max acc t.Task.work) 0.0 trace.tasks
  in
  (* Degenerate traces are defined explicitly instead of leaking
     whatever the general formulas produce: a 1-task trace has no
     interarrival gap at all (the old [max 1 (n - 1)] silently
     reported the whole horizon), and a zero-length horizon offers no
     sustained load (the old division returned an enormous or
     infinite utilization). *)
  let mean_interarrival =
    if n <= 1 then 0.0 else trace.horizon /. float_of_int (n - 1)
  in
  let offered_utilization =
    if trace.horizon <= 0.0 then 0.0
    else total_work /. (trace.horizon *. float_of_int n_cores)
  in
  {
    count = n;
    mean_work = total_work /. float_of_int n;
    max_work;
    total_work;
    mean_interarrival;
    offered_utilization;
  }

let tasks_in_window ?(closed = false) trace ~lo ~hi =
  Array.to_list trace.tasks
  |> List.filter (fun t ->
         t.Task.arrival >= lo
         && (t.Task.arrival < hi || (closed && t.Task.arrival <= hi)))

let windows trace ~k =
  if k <= 0 then invalid_arg "Trace.windows: non-positive window count";
  let n = Array.length trace.tasks in
  let boundary i = trace.horizon *. float_of_int i /. float_of_int k in
  let out = Array.make k [||] in
  let start = ref 0 in
  for i = 0 to k - 1 do
    let j = ref !start in
    (* The final window is closed at the horizon and simply takes
       every remaining task, so the k slices partition the trace
       exactly however the boundary floats round — the half-open
       [lo, hi) windows used to drop the last task, whose arrival
       equals the horizon. *)
    if i = k - 1 then j := n
    else begin
      let hi = boundary (i + 1) in
      while !j < n && trace.tasks.(!j).Task.arrival < hi do
        incr j
      done
    end;
    out.(i) <- Array.sub trace.tasks !start (!j - !start);
    start := !j
  done;
  out

let pp_statistics ppf s =
  Format.fprintf ppf
    "%d tasks, mean work %.2f ms (max %.2f), mean interarrival %.2f ms, \
     offered utilization %.1f%%"
    s.count (s.mean_work *. 1e3) (s.max_work *. 1e3)
    (s.mean_interarrival *. 1e3)
    (100.0 *. s.offered_utilization)
