(** Task traces: reproducible workload inputs for the simulator.

    The paper's experiments use "a large trace with around 60,000
    tasks, modeling several hundred seconds of actual system
    execution"; {!generate} produces such traces from a {!Mix} and a
    seed. *)

type t = {
  tasks : Task.t array;  (** Sorted by arrival time. *)
  mix_name : string;
  horizon : float;
      (** Arrival time of the last (sorted) task, seconds.  A task
          with [arrival = horizon] always exists, so windowed
          consumers must treat the horizon boundary as inclusive —
          see {!tasks_in_window} and {!windows}. *)
}

val generate : ?n_cores:int -> seed:int64 -> n_tasks:int -> Mix.t -> t
(** [generate ~seed ~n_tasks mix] draws [n_tasks] tasks.  [n_cores]
    (default 8) scales the arrival rate so the trace's offered load
    matches the mix's target utilization on that machine. *)

type statistics = {
  count : int;
  mean_work : float;
  max_work : float;
  total_work : float;
  mean_interarrival : float;
      (** [horizon / (count - 1)]; defined as [0.0] for a 1-task
          trace, which has no interarrival gap. *)
  offered_utilization : float;
      (** [total_work / (horizon * n_cores)]: the realized load.
          Defined as [0.0] when the horizon is zero (a trace whose
          tasks all arrive at one instant offers no sustained
          load). *)
}

val statistics : t -> n_cores:int -> statistics

val tasks_in_window : ?closed:bool -> t -> lo:float -> hi:float -> Task.t list
(** Tasks with arrival in [[lo, hi)], in order; with [~closed:true]
    the window is [[lo, hi]].  Sharding a trace into contiguous
    half-open windows must close the final one (or the task arriving
    exactly at the horizon is dropped) — {!windows} does this for
    you. *)

val windows : t -> k:int -> Task.t array array
(** [windows trace ~k] splits the horizon into [k] equal time windows
    and returns the tasks of each, in order: window [i] covers
    [[i*h/k, (i+1)*h/k)] and the final window is closed at the
    horizon.  The slices are an exact partition of [trace.tasks] —
    no drops, no duplicates — for any [k >= 1] (the property test in
    [test_fleet.ml]).  Raises [Invalid_argument] on [k <= 0]. *)

val pp_statistics : Format.formatter -> statistics -> unit
