open Linalg

(* A chip is [Sim.Engine.run] turned inside out: the same preallocated
   state and the same per-step operation sequence, but resumable — the
   fleet submits tasks between windows and advances the clock in
   slices instead of handing over one whole trace.  The step bodies
   below are copied from the engine's (same expressions, same
   evaluation order), so a one-chip fleet fed the whole trace produces
   bit-identical statistics to [Engine.run]; the golden test in
   test/test_fleet.ml pins that equivalence. *)

(* All-float sub-record: mutable float fields of a mixed record are
   boxed on every write, so the two per-step accumulators live here
   (the [Stats.acc] pattern). *)
type hot = { mutable chip_power : float; mutable energy_acc : float }

type t = {
  machine : Sim.Machine.t;
  controller : Sim.Policy.controller;
  assignment : Sim.Policy.assignment;
  dt : float;
  dfs_period : float;
  steps_per_epoch : int;
  n_cores : int;
  n_nodes : int;
  fmax : float;
  tmax : float;
  migration : bool;
  stats : Sim.Stats.t;
  stepper : Thermal.Rc_model.stepper;
  mutable temp : Vec.t;
  mutable temp_next : Vec.t;
  running : bool array;
  remaining : float array;
  frequencies : Vec.t;
  progress : Vec.t;  (* dt * f / fmax per core, cached per epoch *)
  busy : bool array;
  busy_acc : float array;
  power : Vec.t;
  core_temp : Vec.t;
  hot : hot;
  mutable power_dirty : bool;
  (* FIFO task queue as a power-of-two ring over two unboxed float
     arrays.  [q_head <= q_arrived <= q_tail] are absolute counters
     ([land q_mask] gives the slot): [q_head, q_arrived) are arrived
     and waiting for a core, [q_arrived, q_tail) were submitted by the
     fleet but have not reached their arrival instant yet. *)
  mutable q_arr : float array;
  mutable q_wrk : float array;
  mutable q_mask : int;
  mutable q_head : int;
  mutable q_arrived : int;
  mutable q_tail : int;
  mutable n_running : int;
  mutable step : int;
  mutable epoch_countdown : int;
  mutable submitted : int;
  mutable completed : int;
  mutable migrations : int;
  mutable finalized : bool;
}

let create ?(config = Sim.Engine.default_config) ~machine ~controller
    ~assignment () =
  let thermal = machine.Sim.Machine.thermal in
  let dt = thermal.Thermal.Rc_model.dt in
  let steps_per_epoch =
    let s = int_of_float (Float.round (config.Sim.Engine.dfs_period /. dt)) in
    if s < 1 then invalid_arg "Chip.create: dfs_period below the thermal step";
    s
  in
  let n_cores = machine.Sim.Machine.n_cores in
  let n_nodes = machine.Sim.Machine.n_nodes in
  let ambient = thermal.Thermal.Rc_model.ambient in
  let t0 = Option.value config.Sim.Engine.t_initial ~default:ambient in
  let stepper = Thermal.Rc_model.compile_stepper thermal in
  let power = Vec.zeros n_nodes in
  Array.blit machine.Sim.Machine.fixed_power 0 power 0 n_nodes;
  Thermal.Rc_model.stepper_load_power stepper power;
  let cap = 64 in
  {
    machine;
    controller;
    assignment;
    dt;
    dfs_period = config.Sim.Engine.dfs_period;
    steps_per_epoch;
    n_cores;
    n_nodes;
    fmax = machine.Sim.Machine.fmax;
    tmax = config.Sim.Engine.tmax;
    migration = config.Sim.Engine.migration;
    stats = Sim.Stats.create ~n_cores ~tmax:config.Sim.Engine.tmax ();
    stepper;
    temp = Vec.create n_nodes t0;
    temp_next = Vec.zeros n_nodes;
    running = Array.make n_cores false;
    remaining = Array.make n_cores 0.0;
    frequencies = Vec.zeros n_cores;
    progress = Vec.zeros n_cores;
    busy = Array.make n_cores false;
    busy_acc = Array.make n_cores 0.0;
    power;
    core_temp = Vec.zeros n_cores;
    hot = { chip_power = 0.0; energy_acc = 0.0 };
    power_dirty = true;
    q_arr = Array.make cap 0.0;
    q_wrk = Array.make cap 0.0;
    q_mask = cap - 1;
    q_head = 0;
    q_arrived = 0;
    q_tail = 0;
    n_running = 0;
    step = 0;
    epoch_countdown = 0;
    submitted = 0;
    completed = 0;
    migrations = 0;
    finalized = false;
  }

let time t = float_of_int t.step *. t.dt
let tmax t = t.tmax
let stats t = t.stats
let n_cores t = t.n_cores
let submitted t = t.submitted
let completed t = t.completed
let unfinished t = t.submitted - t.completed
let queued t = t.q_tail - t.q_head
let migrations t = t.migrations

(* Hottest core right now; listed in lint.manifest — the fleet reads
   this for every chip at every routing window. *)
let max_core_temperature t =
  let nodes = t.machine.Sim.Machine.core_nodes in
  let temp = t.temp in
  let m = ref (Array.unsafe_get temp (Array.unsafe_get nodes 0)) in
  for i = 1 to Array.length nodes - 1 do
    let x = Array.unsafe_get temp (Array.unsafe_get nodes i) in
    if x > !m then m := x
  done;
  !m

let submit t ~arrival ~work =
  if work < 0.0 || Float.is_nan work || Float.is_nan arrival then
    invalid_arg "Chip.submit: bad task";
  if t.q_tail - t.q_head > t.q_mask then begin
    (* Ring full: double, unrolling the old ring in queue order. *)
    let old_cap = t.q_mask + 1 in
    let cap = 2 * old_cap in
    let arr = Array.make cap 0.0 and wrk = Array.make cap 0.0 in
    for k = t.q_head to t.q_tail - 1 do
      arr.(k land (cap - 1)) <- t.q_arr.(k land t.q_mask);
      wrk.(k land (cap - 1)) <- t.q_wrk.(k land t.q_mask)
    done;
    t.q_arr <- arr;
    t.q_wrk <- wrk;
    t.q_mask <- cap - 1
  end;
  t.q_arr.(t.q_tail land t.q_mask) <- arrival;
  t.q_wrk.(t.q_tail land t.q_mask) <- work;
  t.q_tail <- t.q_tail + 1;
  t.submitted <- t.submitted + 1

let take_queued t ~max:m =
  (* Pop undispatched tasks off the ring's tail (latest arrivals
     first), so the head FIFO and the non-decreasing-arrival invariant
     of what remains are untouched.  Returned slice is back in
     ascending arrival order. *)
  let k = Stdlib.min m (t.q_tail - t.q_head) in
  if k <= 0 then [||]
  else begin
    let out = Array.make k (0.0, 0.0) in
    for i = 0 to k - 1 do
      let slot = (t.q_tail - k + i) land t.q_mask in
      out.(i) <- (t.q_arr.(slot), t.q_wrk.(slot))
    done;
    t.q_tail <- t.q_tail - k;
    if t.q_arrived > t.q_tail then t.q_arrived <- t.q_tail;
    t.submitted <- t.submitted - k;
    out
  end

(* --- the engine loop, verbatim but over the ring queue --- *)

let queued_work t =
  (* Same fold order as [Engine.run.queued_work]: arrived queue front
     to back, then running cores. *)
  let acc = ref 0.0 in
  for k = t.q_head to t.q_arrived - 1 do
    acc := !acc +. t.q_wrk.(k land t.q_mask)
  done;
  for c = 0 to t.n_cores - 1 do
    if t.running.(c) then acc := !acc +. t.remaining.(c)
  done;
  !acc

let observe t time =
  let core_temperatures = Sim.Machine.core_temperatures t.machine t.temp in
  let work = queued_work t in
  let runnable =
    let r = ref (t.q_arrived - t.q_head) in
    for c = 0 to t.n_cores - 1 do
      if t.running.(c) then incr r
    done;
    !r
  in
  let parallelism = Stdlib.max 1 (Stdlib.min t.n_cores runnable) in
  let capacity = float_of_int parallelism *. t.dfs_period in
  let required = work /. capacity *. t.fmax in
  {
    Sim.Policy.time;
    core_temperatures;
    max_core_temperature = Vec.max core_temperatures;
    required_frequency = Float.min t.fmax (Float.max 0.0 required);
    core_fmax = t.machine.Sim.Machine.core_fmax;
    utilizations =
      Vec.init t.n_cores (fun c -> t.busy_acc.(c) /. t.dfs_period);
    queue_length = t.q_arrived - t.q_head;
    queued_work = work;
  }

let idle_list t =
  let acc = ref [] in
  for c = t.n_cores - 1 downto 0 do
    if not t.running.(c) then acc := c :: !acc
  done;
  !acc

let dispatch t time =
  Sim.Machine.core_temperatures_into t.machine t.temp ~dst:t.core_temp;
  let continue = ref true in
  while !continue && t.q_head < t.q_arrived && t.n_running < t.n_cores do
    match
      t.assignment.Sim.Policy.choose ~idle:(idle_list t)
        ~core_classes:t.machine.Sim.Machine.platform.Sim.Platform.assignment
        ~core_temperatures:t.core_temp
    with
    | None -> continue := false
    | Some c ->
        if t.running.(c) then
          invalid_arg "Chip: assignment picked a busy core";
        let k = t.q_head land t.q_mask in
        t.q_head <- t.q_head + 1;
        t.running.(c) <- true;
        t.n_running <- t.n_running + 1;
        t.remaining.(c) <- t.q_wrk.(k);
        (* The arrival gate in [step_once] guarantees
           [arrival <= time], so this matches the engine's
           [Float.max 0.0] clamp bit-for-bit; any residual float dust
           is absorbed by [Stats.record_waiting]'s epsilon clamp. *)
        Sim.Stats.record_waiting t.stats
          (Float.max 0.0 (time -. t.q_arr.(k)))
  done

let epoch_boundary t time =
  t.epoch_countdown <- t.steps_per_epoch;
  let obs = observe t time in
  let f = t.controller.Sim.Policy.decide obs in
  if Vec.dim f <> t.n_cores then
    invalid_arg "Chip: controller returned a bad frequency vector";
  for c = 0 to t.n_cores - 1 do
    if Float.is_nan f.(c) then
      invalid_arg "Chip: controller returned a NaN frequency"
  done;
  let core_fmax = t.machine.Sim.Machine.core_fmax in
  for c = 0 to t.n_cores - 1 do
    t.frequencies.(c) <- Float.min core_fmax.(c) (Float.max 0.0 f.(c));
    t.progress.(c) <- t.dt *. t.frequencies.(c) /. t.fmax
  done;
  t.power_dirty <- true;
  Array.fill t.busy_acc 0 t.n_cores 0.0;
  if t.migration then begin
    let core_temperatures = Sim.Machine.core_temperatures t.machine t.temp in
    for c = 0 to t.n_cores - 1 do
      (* Bit-exact: 0.0 is the controller's shutdown sentinel. *)
      if t.running.(c) && Float.equal t.frequencies.(c) 0.0 then begin
        let best = ref (-1) in
        for d = 0 to t.n_cores - 1 do
          if
            (not t.running.(d))
            && t.frequencies.(d) > 0.0
            && (!best < 0 || core_temperatures.(d) < core_temperatures.(!best))
          then best := d
        done;
        if !best >= 0 then begin
          t.running.(!best) <- true;
          t.remaining.(!best) <- t.remaining.(c);
          t.running.(c) <- false;
          t.migrations <- t.migrations + 1
        end
      end
    done
  end

(* One thermal step — the fleet's per-chip hot path, listed in
   lint.manifest as [step_once]; same operation sequence as the
   engine's [run.step_once]. *)
let step_once t =
  let time = float_of_int t.step *. t.dt in
  while
    t.q_arrived < t.q_tail
    && Array.unsafe_get t.q_arr (t.q_arrived land t.q_mask) <= time
  do
    t.q_arrived <- t.q_arrived + 1
  done;
  if t.epoch_countdown = 0 then epoch_boundary t time;
  if t.q_head < t.q_arrived && t.n_running < t.n_cores then dispatch t time;
  for c = 0 to t.n_cores - 1 do
    let r = Array.unsafe_get t.running c in
    if r <> Array.unsafe_get t.busy c then begin
      Array.unsafe_set t.busy c r;
      t.power_dirty <- true
    end;
    if r then begin
      Array.unsafe_set t.busy_acc c (Array.unsafe_get t.busy_acc c +. t.dt);
      let w' =
        Array.unsafe_get t.remaining c -. Array.unsafe_get t.progress c
      in
      if w' <= 0.0 then begin
        Array.unsafe_set t.running c false;
        t.n_running <- t.n_running - 1;
        t.completed <- t.completed + 1;
        Sim.Stats.record_completion t.stats
      end
      else Array.unsafe_set t.remaining c w'
    end
  done;
  if t.power_dirty then begin
    Sim.Machine.refresh_core_power t.machine ~frequencies:t.frequencies
      ~busy:t.busy ~dst:t.power;
    Thermal.Rc_model.stepper_reload_power_at t.stepper t.power
      t.machine.Sim.Machine.core_nodes;
    let total = ref 0.0 in
    for i = 0 to t.n_nodes - 1 do
      total := !total +. t.power.(i)
    done;
    t.hot.chip_power <- !total;
    t.power_dirty <- false
  end;
  Thermal.Rc_model.stepper_step_loaded_into t.stepper t.temp ~dst:t.temp_next;
  (let tmp = t.temp in
   t.temp <- t.temp_next;
   t.temp_next <- tmp);
  t.hot.energy_acc <- t.hot.energy_acc +. (t.hot.chip_power *. t.dt);
  Sim.Stats.record_step_nodes t.stats ~dt:t.dt ~temperatures:t.temp
    ~nodes:t.machine.Sim.Machine.core_nodes;
  t.epoch_countdown <- t.epoch_countdown - 1;
  t.step <- t.step + 1

let advance t ~until =
  while float_of_int t.step *. t.dt < until do
    step_once t
  done

let drain t ~deadline =
  (* Same stop condition and check order as the engine's main loop:
     test done-or-past-deadline at the head of each step. *)
  let live = ref true in
  while !live do
    let time = float_of_int t.step *. t.dt in
    if t.completed >= t.submitted || time > deadline then live := false
    else step_once t
  done

let finalize t =
  if not t.finalized then begin
    t.finalized <- true;
    (* One flush, exactly like the engine's end-of-run
       [record_energy]: [0.0 +. e] is bitwise [e] for the nonnegative
       accumulated energy. *)
    Sim.Stats.record_energy t.stats t.hot.energy_acc
  end
