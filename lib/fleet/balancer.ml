(* Fleet-scope placement reuses the core-scope policy interface: a
   balancer is a [Sim.Policy.assignment] whose "cores" are chips and
   whose "temperatures" are the fleet's per-chip hottest-core shadow
   readings, plus a guard band deciding which chips are eligible at
   all.  Anything written against the core interface (coolest-first,
   headroom thresholds, class preferences) works unchanged at chip
   scope. *)

type t = {
  name : string;
  policy : Sim.Policy.assignment;
  guard : float;
}

let of_assignment ?(guard = neg_infinity) policy =
  { name = policy.Sim.Policy.assignment_name; policy; guard }

let round_robin () =
  let next = ref 0 in
  {
    name = "round-robin";
    guard = neg_infinity;
    policy =
      {
        Sim.Policy.assignment_name = "round-robin";
        choose =
          (fun ~idle ~core_classes:_ ~core_temperatures:_ ->
            match idle with
            | [] -> None
            | _ ->
                let pick = List.nth idle (!next mod List.length idle) in
                incr next;
                Some pick);
      };
  }

let coolest_headroom ?(guard = 0.0) () =
  { name = "coolest-headroom"; policy = Sim.Policy.coolest_first; guard }
