(** Thermal-aware admission and load balancing across chips.

    The same policy interface the engine uses at core scope
    ({!Sim.Policy.assignment}) — applied at chip scope: [idle] is the
    list of eligible chips, [core_temperatures] the fleet's per-chip
    hottest-core readings, [core_classes] the chip classes.  The
    [guard] band decides eligibility: a chip whose thermal headroom
    [tmax - hottest_core] is at or below [guard] is in guard-band
    degradation, receives no new work, and (with migration on) has its
    queued tasks pulled back for re-routing. *)

type t = {
  name : string;
  policy : Sim.Policy.assignment;
      (** Picks among eligible chips; [None] holds the task for the
          next window. *)
  guard : float;
      (** Headroom (degrees C) at or below which a chip is ineligible.
          [neg_infinity] = every chip is always eligible. *)
}

val of_assignment : ?guard:float -> Sim.Policy.assignment -> t
(** Lift any core-scope assignment policy to chip scope.  [guard]
    defaults to [neg_infinity]. *)

val round_robin : unit -> t
(** Thermally-blind baseline: rotate across eligible chips (all chips
    — no guard band).  Stateful counter: build one per run. *)

val coolest_headroom : ?guard:float -> unit -> t
(** Route to the chip whose hottest core is coldest — coolest-first
    at chip scope (Chrobak et al., arXiv:0801.4238) in the fleet-level
    spirit of Hung et al.'s thermal-aware task allocation.  [guard]
    defaults to [0.0]: chips at or past their [tmax] are quarantined
    until they cool. *)
