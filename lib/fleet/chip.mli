(** One simulated chip inside a fleet: a resumable [Sim.Engine].

    A chip holds the engine's preallocated stepping state (compiled
    thermal stepper, ping-pong temperature buffers, ring task queue)
    but exposes it incrementally: the fleet {!submit}s tasks between
    routing windows and {!advance}s the chip's clock in slices.  The
    per-step operation sequence is copied from [Sim.Engine.run]
    expression for expression, so a one-chip fleet fed a whole trace
    produces statistics bit-identical to the engine (golden-tested).

    Chips are single-threaded values: the fleet advances disjoint
    chips on different pool domains, which is safe because a chip
    shares no mutable state with any other (controllers reading one
    {!Protemp.Table_store} share only its immutable mapping). *)

type t

val create :
  ?config:Sim.Engine.config ->
  machine:Sim.Machine.t ->
  controller:Sim.Policy.controller ->
  assignment:Sim.Policy.assignment ->
  unit ->
  t
(** [config] defaults to [Sim.Engine.default_config]; its
    [drain_limit] is ignored (the fleet decides when to stop
    draining).  The controller and assignment may be stateful — build
    one per chip. *)

val submit : t -> arrival:float -> work:float -> unit
(** Enqueue a task.  Tasks become visible to the dispatcher once the
    chip's clock reaches [arrival] (an [arrival] already in the past
    is picked up on the next step).  Submissions should arrive in
    non-decreasing [arrival] order — the arrival gate scans the queue
    in submission order and stops at the first future task, so an
    out-of-order submission is only picked up when its predecessor
    arrives (never lost, but delayed).  The fleet's window routing
    preserves the order.  Raises [Invalid_argument] on NaN or negative
    work. *)

val advance : t -> until:float -> unit
(** Step the chip until its clock reaches [until] (first step time
    [>= until] is left unexecuted), whether or not tasks remain. *)

val drain : t -> deadline:float -> unit
(** Step until every submitted task has completed or the clock passes
    [deadline] — the engine's end-of-trace stop condition. *)

val finalize : t -> unit
(** Flush the accumulated energy into the chip's stats, once (the
    engine's end-of-run [record_energy]).  Idempotent.  Call after the
    final {!drain}, before reading {!stats}. *)

val take_queued : t -> max:int -> (float * float) array
(** Remove up to [max] undispatched tasks from the back of the queue
    (latest arrivals) and return them as [(arrival, work)] pairs in
    ascending arrival order — the fleet's migration primitive.
    Already-running tasks are never taken. *)

val time : t -> float
(** Current clock, seconds ([steps * dt]). *)

val max_core_temperature : t -> float
(** Hottest core right now — the fleet balancer's routing signal.
    Allocation-free (lint.manifest). *)

val stats : t -> Sim.Stats.t
val n_cores : t -> int

val tmax : t -> float
(** The thermal threshold the chip was configured with — the
    reference for the fleet's headroom computations. *)

val submitted : t -> int
(** Tasks submitted and not subsequently taken back. *)

val completed : t -> int

val unfinished : t -> int
(** [submitted - completed]. *)

val queued : t -> int
(** Tasks waiting (arrived or pending), excluding running ones. *)

val migrations : t -> int
(** Core-level migrations performed by the chip's own epoch logic
    (when [config.migration] is on) — distinct from fleet-level task
    migration. *)
