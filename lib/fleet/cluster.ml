(* The fleet orchestrator: one arrival stream, N chips, a balancer in
   front.  Time advances in routing windows — the exact partition
   [Workload.Trace.windows] produces — and within each window the
   sequence is: read every chip's hottest core, pull queued work off
   guard-band chips (migration), route the backlog and then the
   window's arrivals through the balancer, and advance all chips to
   the window boundary across the domain pool.

   Determinism at any domain count: routing is sequential (it happens
   between pool batches, over a shadow temperature array snapshotted
   in chip order), chips never share mutable state, and the final
   stats merge runs in fixed chip order — so the aggregate is
   bit-identical however many domains advanced the chips. *)

type config = {
  n_chips : int;
  window : float;
      (* Routing window, seconds: how often the balancer re-reads chip
         temperatures and places the next slice of arrivals. *)
  drain_limit : float;
  migrate : bool;
      (* Pull queued (undispatched) tasks off chips whose headroom is
         at or below the balancer's guard and re-route them. *)
  thermal_penalty : float;
      (* Shadow warming, degrees C per second of routed work: routing
         bumps the chip's shadow temperature so one window's tasks
         spread across the fleet instead of herding onto whichever
         chip was coolest at the snapshot.  Affects routing only — the
         plant's physics are untouched. *)
}

let default_config =
  {
    n_chips = 4;
    window = 0.1;
    drain_limit = 60.0;
    migrate = false;
    thermal_penalty = 0.0;
  }

type result = {
  stats : Sim.Stats.t;
  routed : int;
  held : int;
  migrated : int;
  unfinished : int;
  chip_violations : int array;
  wall_clock : float;
}

(* Snapshot every chip's hottest core into [shadow] — the per-window
   read the balancer routes against; listed in lint.manifest. *)
let shadow_refresh chips shadow =
  for i = 0 to Array.length chips - 1 do
    Array.unsafe_set shadow i
      (Chip.max_core_temperature (Array.unsafe_get chips i))
  done

let run ?(config = default_config) ?domains ~balancer ~chip trace =
  let started = Unix.gettimeofday () in
  if config.n_chips <= 0 then invalid_arg "Cluster.run: need at least one chip";
  if config.window <= 0.0 then invalid_arg "Cluster.run: non-positive window";
  if config.thermal_penalty < 0.0 then
    invalid_arg "Cluster.run: negative thermal penalty";
  let n = config.n_chips in
  let chips = Array.init n chip in
  let tmax = Chip.tmax chips.(0) in
  let shadow = Array.make n 0.0 in
  let chip_classes = Array.make n 0 in
  let routed = ref 0 and held = ref 0 and migrated = ref 0 in
  (* Tasks awaiting a chip: guard-band migrations plus balancer holds,
     re-sorted by arrival before each window so per-chip submission
     order stays non-decreasing. *)
  let backlog = ref [] in
  let eligible () =
    let acc = ref [] in
    for i = n - 1 downto 0 do
      if tmax -. shadow.(i) > balancer.Balancer.guard then acc := i :: !acc
    done;
    !acc
  in
  let submit_to i ~arrival ~work =
    Chip.submit chips.(i) ~arrival ~work;
    shadow.(i) <- shadow.(i) +. (config.thermal_penalty *. work);
    incr routed
  in
  let route_one ~arrival ~work =
    match eligible () with
    | [] ->
        backlog := (arrival, work) :: !backlog;
        incr held
    | idle -> (
        match
          balancer.Balancer.policy.Sim.Policy.choose ~idle
            ~core_classes:chip_classes ~core_temperatures:shadow
        with
        | Some i -> submit_to i ~arrival ~work
        | None ->
            backlog := (arrival, work) :: !backlog;
            incr held)
  in
  let horizon = trace.Workload.Trace.horizon in
  let k =
    Stdlib.max 1 (int_of_float (Float.ceil (horizon /. config.window)))
  in
  let slices = Workload.Trace.windows trace ~k in
  Parallel.Pool.with_pool ?domains (fun pool ->
      for w = 0 to k - 1 do
        shadow_refresh chips shadow;
        if config.migrate then
          for i = 0 to n - 1 do
            if tmax -. shadow.(i) <= balancer.Balancer.guard then begin
              let taken = Chip.take_queued chips.(i) ~max:max_int in
              migrated := !migrated + Array.length taken;
              routed := !routed - Array.length taken;
              Array.iter (fun task -> backlog := task :: !backlog) taken
            end
          done;
        (* Backlog first: its arrivals predate this window's, which
           keeps every chip's submission order non-decreasing (the
           chip's arrival gate requires it). *)
        let pending =
          List.sort
            (fun (a, _) (b, _) -> Float.compare a b)
            (List.rev !backlog)
        in
        backlog := [];
        List.iter (fun (arrival, work) -> route_one ~arrival ~work) pending;
        Array.iter
          (fun task ->
            route_one ~arrival:task.Workload.Task.arrival
              ~work:task.Workload.Task.work)
          slices.(w);
        let until = horizon *. float_of_int (w + 1) /. float_of_int k in
        ignore
          (Parallel.Pool.map_rows pool
             (fun i -> Chip.advance chips.(i) ~until)
             n)
      done;
      (* End of the stream: whatever the balancer kept holding must
         land somewhere — force it onto the chip with the most
         headroom, guard band or not. *)
      (match !backlog with
      | [] -> ()
      | leftovers ->
          shadow_refresh chips shadow;
          List.iter
            (fun (arrival, work) ->
              let best = ref 0 in
              for i = 1 to n - 1 do
                if shadow.(i) < shadow.(!best) then best := i
              done;
              submit_to !best ~arrival ~work)
            (List.sort (fun (a, _) (b, _) -> Float.compare a b)
               (List.rev leftovers));
          backlog := []);
      let deadline = horizon +. config.drain_limit in
      ignore
        (Parallel.Pool.map_rows pool
           (fun i -> Chip.drain chips.(i) ~deadline)
           n));
  Array.iter Chip.finalize chips;
  let aggregate =
    Sim.Stats.create ~n_cores:(Chip.n_cores chips.(0)) ~tmax ()
  in
  Array.iter (fun c -> Sim.Stats.merge_into ~into:aggregate (Chip.stats c)) chips;
  let unfinished =
    Array.fold_left (fun acc c -> acc + Chip.unfinished c) 0 chips
  in
  {
    stats = aggregate;
    routed = !routed;
    held = !held;
    migrated = !migrated;
    unfinished;
    chip_violations =
      Array.map (fun c -> Sim.Stats.violation_steps (Chip.stats c)) chips;
    wall_clock = Unix.gettimeofday () -. started;
  }
