(** The fleet-scale serving simulator: one arrival stream, N chips.

    A single trace is partitioned into routing windows (the exact
    partition of {!Workload.Trace.windows}); each window, the
    {!Balancer} reads every chip's hottest core and places the
    window's arrivals — route to coolest headroom, hold or migrate
    away from chips in guard-band degradation — and all chips then
    advance to the window boundary in parallel across a
    {!Parallel.Pool}.  Aggregate statistics are bit-identical at any
    domain count: routing is sequential between pool batches, chips
    share no mutable state, and per-chip stats merge in fixed chip
    order (DESIGN.md section 6j). *)

type config = {
  n_chips : int;
  window : float;
      (** Routing window, seconds — the balancer's reaction time.
          The trace is split into [ceil (horizon / window)] equal
          windows. *)
  drain_limit : float;
      (** Extra seconds past the horizon chips may run to finish
          their queues (the engine's drain semantics). *)
  migrate : bool;
      (** Pull queued (undispatched) tasks off chips whose headroom
          has fallen to the balancer's guard band and re-route them
          elsewhere. *)
  thermal_penalty : float;
      (** Shadow warming in degrees C per second of routed work:
          routing a task bumps the chip's *shadow* temperature so one
          window's tasks spread over the fleet instead of herding
          onto the single coolest chip.  Routing-only; the simulated
          physics never see it.  [0.0] disables. *)
}

val default_config : config
(** 4 chips, 0.1 s windows, 60 s drain, no migration, no penalty. *)

type result = {
  stats : Sim.Stats.t;
      (** Fleet-wide aggregate (fixed-order {!Sim.Stats.merge_into}
          of the per-chip stats): violation counts, waiting-time
          percentiles, energy, band residency across every chip. *)
  routed : int;
      (** Submission events, including re-submissions of migrated
          tasks. *)
  held : int;
      (** Hold events: a task deferred to the next window because no
          chip was eligible (or the policy declined).  One task held
          across many windows counts once per window. *)
  migrated : int;  (** Tasks pulled off guard-band chips. *)
  unfinished : int;  (** Tasks not completed by the drain deadline. *)
  chip_violations : int array;  (** Per-chip violating step counts. *)
  wall_clock : float;
}

val run :
  ?config:config ->
  ?domains:int ->
  balancer:Balancer.t ->
  chip:(int -> Chip.t) ->
  Workload.Trace.t ->
  result
(** [run ~balancer ~chip trace] builds [config.n_chips] chips via
    [chip i] (stateful controllers — e.g. [Sim.Fault.wrap]ped ones —
    must be constructed fresh inside this callback) and serves the
    trace through them.  Every chip must share [n_cores] and [tmax]
    (enforced by the stats merge).  [domains] sizes the pool as in
    {!Parallel.Pool.create}; the result is bit-identical for any
    value.  Leftover held tasks are force-routed to the
    most-headroom chip at the end of the stream, so every task is
    eventually submitted. *)
