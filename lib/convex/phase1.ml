open Linalg

type verdict = Strictly_feasible of Vec.t | Infeasible of float

let find ?options ?backend ?stats_into ?(margin = 1e-8) constraints x0 =
  let n = Vec.dim x0 in
  Array.iter
    (fun c ->
      if Quad.dim c <> n then invalid_arg "Phase1.find: dimension mismatch")
    constraints;
  if Array.for_all (fun c -> Quad.eval c x0 < -.margin) constraints then
    Strictly_feasible (Vec.copy x0)
  else begin
    let n' = n + 1 in
    (* Lift every f_j to (x, s) space and subtract s. *)
    let minus_s = Quad.linear_coord n' n (-1.0) in
    let lifted =
      Array.map (fun c -> Quad.add (Quad.extend c n') minus_s) constraints
    in
    (* Keep the auxiliary problem bounded below: s >= -1, i.e.
       -s - 1 <= 0. *)
    let s_lower = Quad.add_constant (Quad.linear_coord n' n (-1.0)) (-1.0) in
    (* The pure objective [s] leaves the auxiliary centering unbounded
       below in [x] (margins, hence [-log] terms, can grow forever in
       any unconstrained direction).  A tiny proximal term anchors the
       iterates near [x0]; it perturbs the reported optimum by
       O(1e-6 ||x - x0||^2), which the [worst < 0] check at the end
       absorbs. *)
    let proximal =
      let eps = 1e-6 in
      let p =
        Mat.init n' n' (fun i j ->
            if i = j && i < n then 2.0 *. eps else 0.0)
      in
      let q = Vec.zeros n' in
      for i = 0 to n - 1 do
        q.(i) <- -2.0 *. eps *. x0.(i)
      done;
      Quad.quadratic p q (eps *. Vec.dot x0 x0)
    in
    let problem =
      {
        Barrier.objective = Quad.add (Quad.linear_coord n' n 1.0) proximal;
        constraints = Array.append lifted [| s_lower |];
      }
    in
    let s0 =
      let worst =
        Array.fold_left
          (fun acc c -> Float.max acc (Quad.eval c x0))
          neg_infinity constraints
      in
      worst +. 1.0
    in
    let start = Vec.concat x0 [| s0 |] in
    let stop_early y = y.(n) < -.margin in
    (* With the default t0 = 1 the first centering balances m barrier
       terms against a unit objective and sends s to O(m) before
       coming back; start t0 at m / (distance to the s >= -1 floor) so
       the first center stays near s0. *)
    let options =
      let base =
        match options with Some o -> o | None -> Barrier.default_options
      in
      Some
        {
          base with
          Barrier.t0 =
            Float.max base.Barrier.t0
              (float_of_int (Array.length problem.Barrier.constraints)
              /. (s0 +. 1.0));
        }
    in
    let r = Barrier.solve ?options ?backend ~stop_early problem start in
    (match stats_into with
    | Some acc -> acc := Barrier.stats_add !acc r.Barrier.stats
    | None -> ());
    let x = Vec.slice r.Barrier.x 0 n in
    let worst =
      Array.fold_left
        (fun acc c -> Float.max acc (Quad.eval c x))
        neg_infinity constraints
    in
    if worst < 0.0 then Strictly_feasible x else Infeasible worst
  end
