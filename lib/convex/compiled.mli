(** Compiled problem representation for the barrier solver's hot path.

    A {!Barrier.problem}-shaped instance is partitioned once into (a)
    all affine constraints, packed as one dense row-major Jacobian [A]
    (m_affine x n) plus an offset vector [b], and (b) the few genuinely
    quadratic constraints, kept as {!Quad.t} objects.  The barrier
    oracle then computes every affine residual with a single
    {!Mat.gemv_into}, the gradient contribution as [A^T w] (one
    transposed gemv) and the Hessian contribution as [A^T D A] via the
    blocked {!Mat.syrk_scaled_into} — three cache-friendly dense
    kernels instead of an O(m) object-dispatch loop, and no allocation
    per evaluation.

    For Pro-Temp's thermal models (thousands of affine rows, one
    quadratic power-law row per core) this is the entire inner loop;
    the {!Quad}-walking reference path in {!Barrier} remains available
    for differential testing. *)

open Linalg

type t
(** The packed, immutable form.  Safe to share across cells, solves
    and domains; all mutable state lives in {!workspace}. *)

val make : objective:Quad.t -> constraints:Quad.t array -> t
(** One pass over the constraints: affine rows are copied into the
    packed Jacobian, quadratic ones retained.  All functions must
    share one dimension ([Invalid_argument] otherwise). *)

val of_problem : objective:Quad.t -> constraints:Quad.t array -> t
(** Alias of {!make}. *)

val dim : t -> int
val n_constraints : t -> int
val n_affine : t -> int
val objective : t -> Quad.t
val constraints : t -> Quad.t array
(** The constraints in their original order (do not mutate). *)

val with_constant : t -> index:int -> float -> t
(** [with_constant c ~index v] is [c] with the constant term of the
    affine constraint [index] replaced by [v].  The packed Jacobian
    and index maps are shared — only the offset vector is copied — so
    a prepared sweep row compiles once and re-offsets the throughput
    floor per cell.  [Invalid_argument] if the constraint is not
    affine. *)

type workspace
(** Per-solve mutable buffers (residuals, barrier weights, scratch).
    Not safe to share across concurrent solves. *)

val workspace : t -> workspace

val is_strictly_feasible : t -> workspace -> Vec.t -> bool

val value : t -> workspace -> t:float -> Vec.t -> float option
(** Barrier value [t*f0(x) - sum log(-f_j(x))]; [None] when [x] is not
    strictly feasible. *)

val grad_hess_into :
  t -> workspace -> t:float -> Vec.t -> g:Vec.t -> h:Mat.t -> unit
(** Gradient and Hessian of the centering function, written into the
    caller's buffers.  Must only be called at strictly feasible
    points. *)

val max_step : t -> workspace -> Vec.t -> Vec.t -> float
(** [max_step c ws x d] is the largest [s] such that [x + s*d] stays
    strictly feasible (possibly [infinity]), for strictly feasible
    [x].  The Newton line search caps its first trial at a fraction of
    this, eliminating the domain-violation backtracks that otherwise
    dominate barrier centering. *)

val duals : t -> workspace -> t:float -> Vec.t -> Vec.t
(** Approximate dual multipliers [1/(t * -f_j(x))], indexed in the
    original constraint order. *)
