(** Quadratic functions in standard form.

    A value represents [f(x) = 1/2 x^T P x + q^T x + r] over [R^n],
    with [P] symmetric (possibly absent, meaning the function is
    affine).  This is the standard form every disciplined-convex
    expression of {!Expr} compiles to, and the form the barrier solver
    consumes. *)

open Linalg

type t

(** {1 Construction} *)

val affine : Vec.t -> float -> t
(** [affine q r] is [q^T x + r]. *)

val constant : int -> float -> t
(** [constant n r] is the constant function [r] on [R^n]. *)

val linear_coord : int -> int -> float -> t
(** [linear_coord n i c] is [c * x_i]. *)

val quadratic : Mat.t -> Vec.t -> float -> t
(** [quadratic p q r] is [1/2 x^T P x + q^T x + r].  [P] is
    symmetrized defensively. *)

val square_of_affine : Vec.t -> float -> t
(** [square_of_affine q r] is [(q^T x + r)^2]. *)

(** {1 Algebra} *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val add_constant : t -> float -> t

val extend : t -> int -> t
(** [extend f n'] embeds [f] into [R^n'] (with [n' >= dim f]); the new
    trailing coordinates do not appear in the function.  Affine
    functions stay affine. *)

(** {1 Queries} *)

val dim : t -> int

val is_affine : t -> bool

val eval : t -> Vec.t -> float

val grad : t -> Vec.t -> Vec.t

val eval_with : t -> scratch:Vec.t -> Vec.t -> float
(** {!eval} without allocating: [scratch] (dimension [dim f],
    clobbered) holds the intermediate [P x].  For hot solver loops. *)

val grad_into : t -> Vec.t -> dst:Vec.t -> unit
(** {!grad} written into [dst] ([dst] must not alias [x]). *)

val add_scaled_hess_upper_into : t -> float -> dst:Mat.t -> unit
(** [add_scaled_hess_upper_into f c ~dst] updates
    [dst := dst + c * P] on the upper triangle only ([P] is symmetric);
    a no-op for affine functions.  Pair with {!Mat.mirror_upper}. *)

val hess : t -> Mat.t
(** The (constant) Hessian [P]; the zero matrix for affine functions. *)

val hess_is_psd : ?tol:float -> t -> bool
(** Check positive semidefiniteness of [P] by attempting a jittered
    Cholesky factorization of [P + tol*I]. *)

val linear_part : t -> Vec.t
(** The coefficient vector [q]. *)

val unsafe_linear_part : t -> Vec.t
(** The internal coefficient vector, without copying — for hot
    read-only paths (the barrier's gradient accumulation).  Callers
    must not mutate it. *)

val constant_part : t -> float

val pp : Format.formatter -> t -> unit
