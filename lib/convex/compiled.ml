open Linalg

type t = {
  n : int;
  objective : Quad.t;
  constraints : Quad.t array;
  (* Affine constraints packed as one dense row-major Jacobian plus an
     offset vector: constraint [affine_of.(i)] is [row_i(a) . x + b_i]. *)
  a : Mat.t;
  b : Vec.t;
  affine_of : int array;
  (* The genuinely quadratic constraints, kept as objects. *)
  quads : Quad.t array;
  quad_of : int array;
}

let make ~objective ~constraints =
  let n = Quad.dim objective in
  Array.iter
    (fun c ->
      if Quad.dim c <> n then
        invalid_arg "Compiled.make: constraint dimension mismatch")
    constraints;
  let affine = ref [] and quads = ref [] in
  Array.iteri
    (fun j c ->
      if Quad.is_affine c then affine := (j, c) :: !affine
      else quads := (j, c) :: !quads)
    constraints;
  let affine = Array.of_list (List.rev !affine) in
  let quads = Array.of_list (List.rev !quads) in
  let m_aff = Array.length affine in
  let a = Mat.zeros m_aff n in
  let b = Vec.zeros m_aff in
  Array.iteri
    (fun i (_, c) ->
      let q = Quad.unsafe_linear_part c in
      for j = 0 to n - 1 do
        Mat.set a i j q.(j)
      done;
      b.(i) <- Quad.constant_part c)
    affine;
  {
    n;
    objective;
    constraints;
    a;
    b;
    affine_of = Array.map fst affine;
    quads = Array.map snd quads;
    quad_of = Array.map fst quads;
  }

let of_problem ~objective ~constraints = make ~objective ~constraints

let dim c = c.n
let n_constraints c = Array.length c.constraints
let n_affine c = Vec.dim c.b
let objective c = c.objective
let constraints c = c.constraints

let with_constant c ~index value =
  if index < 0 || index >= Array.length c.constraints then
    invalid_arg "Compiled.with_constant: index out of range";
  if not (Quad.is_affine c.constraints.(index)) then
    invalid_arg "Compiled.with_constant: constraint is not affine";
  let row = ref (-1) in
  Array.iteri (fun i j -> if j = index then row := i) c.affine_of;
  let b = Vec.copy c.b in
  b.(!row) <- value;
  let constraints = Array.copy c.constraints in
  constraints.(index) <-
    Quad.affine (Quad.linear_part c.constraints.(index)) value;
  { c with b; constraints }

type workspace = {
  resid : Vec.t;  (* one residual per packed affine row *)
  w : Vec.t;  (* barrier weights, then their squares (syrk input) *)
  ad : Vec.t;  (* A d, the per-row slopes along a search direction *)
  qg : Vec.t;  (* gradient scratch for one quadratic constraint *)
  scr : Vec.t;  (* Quad.eval_with scratch *)
  xd : Vec.t;  (* x + d, for sampling a quadratic along the ray *)
}

let workspace c =
  let m_aff = Vec.dim c.b in
  { resid = Vec.zeros m_aff; w = Vec.zeros m_aff; ad = Vec.zeros m_aff;
    qg = Vec.zeros c.n; scr = Vec.zeros c.n; xd = Vec.zeros c.n }

(* resid := A x + b — one gemv for all affine constraints. *)
let residuals_into c ws x =
  Mat.gemv_into c.a x ~dst:ws.resid;
  Vec.add_into ~dst:ws.resid c.b

let is_strictly_feasible c ws x =
  residuals_into c ws x;
  let ok = ref true in
  let m_aff = Vec.dim ws.resid in
  for i = 0 to m_aff - 1 do
    if ws.resid.(i) >= 0.0 then ok := false
  done;
  !ok
  && Array.for_all (fun q -> Quad.eval_with q ~scratch:ws.scr x < 0.0) c.quads

let value c ws ~t x =
  residuals_into c ws x;
  let m_aff = Vec.dim ws.resid in
  let acc = ref (t *. Quad.eval_with c.objective ~scratch:ws.scr x) in
  let ok = ref true in
  (let i = ref 0 in
   while !ok && !i < m_aff do
     let r = ws.resid.(!i) in
     if r >= 0.0 then ok := false else acc := !acc -. log (-.r);
     incr i
   done);
  (let j = ref 0 in
   while !ok && !j < Array.length c.quads do
     let fj = Quad.eval_with c.quads.(!j) ~scratch:ws.scr x in
     if fj >= 0.0 then ok := false else acc := !acc -. log (-.fj);
     incr j
   done);
  if !ok then Some !acc else None

(* Gradient and Hessian of phi_t(x) = t f0 - sum log(-f_j):
     grad = t grad_f0 + A^T w + sum_quads grad_f_j / (-f_j)
     hess = t P0 + A^T diag(w^2) A
            + sum_quads [ grad_f_j grad_f_j^T / f_j^2 + P_j / (-f_j) ]
   with w_i = 1 / (-resid_i).  Three dense kernels (gemv, transposed
   gemv, blocked scaled syrk) replace the per-constraint object walk.
   Must only be called at strictly feasible points. *)
let grad_hess_into c ws ~t x ~g ~h =
  residuals_into c ws x;
  Quad.grad_into c.objective x ~dst:g;
  Vec.scale_into ~dst:g t;
  Mat.fill h 0.0;
  Quad.add_scaled_hess_upper_into c.objective t ~dst:h;
  let m_aff = Vec.dim ws.resid in
  for i = 0 to m_aff - 1 do
    ws.w.(i) <- -1.0 /. ws.resid.(i)
  done;
  Mat.gemv_into ~trans:true ~beta:1.0 c.a ws.w ~dst:g;
  for i = 0 to m_aff - 1 do
    ws.w.(i) <- ws.w.(i) *. ws.w.(i)
  done;
  Mat.syrk_scaled_into c.a ws.w ~dst:h;
  Array.iter
    (fun q ->
      let fj = Quad.eval_with q ~scratch:ws.scr x in
      let inv = -1.0 /. fj in
      Quad.grad_into q x ~dst:ws.qg;
      Vec.axpy_into ~dst:g inv ws.qg;
      Mat.add_outer_upper_into h (inv *. inv) ws.qg;
      Quad.add_scaled_hess_upper_into q inv ~dst:h)
    c.quads;
  Mat.mirror_upper h

(* Largest [s] keeping [x + s*d] strictly feasible.  Affine rows need
   one gemv: the row constraint along the ray is [resid_i + s*(A d)_i
   < 0].  Each quadratic [f] restricted to the ray is the scalar
   quadratic [a2 s^2 + a1 s + a0] with [a0 = f(x) < 0], [a1 = grad
   f(x).d] and [a2] recovered from a sample at [s = 1]; its smallest
   positive root is the wall.  [x] must be strictly feasible. *)
let max_step c ws x d =
  residuals_into c ws x;
  Mat.gemv_into c.a d ~dst:ws.ad;
  let m_aff = Vec.dim ws.resid in
  let s = ref infinity in
  for i = 0 to m_aff - 1 do
    let slope = ws.ad.(i) in
    if slope > 0.0 then s := Float.min !s (-.ws.resid.(i) /. slope)
  done;
  Array.iter
    (fun q ->
      let a0 = Quad.eval_with q ~scratch:ws.scr x in
      Quad.grad_into q x ~dst:ws.qg;
      let a1 = Vec.dot ws.qg d in
      Vec.blit ~src:x ~dst:ws.xd;
      Vec.add_into ~dst:ws.xd d;
      let a2 = Quad.eval_with q ~scratch:ws.scr ws.xd -. a0 -. a1 in
      let bound =
        if a2 > 0.0 then
          (* a0 < 0 makes the discriminant positive: the ray always
             exits a proper convex quadratic region in one direction. *)
          let disc = (a1 *. a1) -. (4.0 *. a2 *. a0) in
          (-.a1 +. sqrt disc) /. (2.0 *. a2)
        else if a1 > 0.0 then -.a0 /. a1
        else infinity
      in
      if bound > 0.0 then s := Float.min !s bound)
    c.quads;
  !s

let duals c ws ~t x =
  residuals_into c ws x;
  let dual = Vec.zeros (Array.length c.constraints) in
  Array.iteri
    (fun i j -> dual.(j) <- 1.0 /. (t *. -.ws.resid.(i)))
    c.affine_of;
  Array.iteri
    (fun i j ->
      dual.(j) <- 1.0 /. (t *. -.Quad.eval_with c.quads.(i) ~scratch:ws.scr x))
    c.quad_of;
  dual
