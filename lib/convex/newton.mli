(** Damped Newton's method with backtracking line search.

    Minimizes a smooth, strictly convex function given by an oracle.
    The oracle's value function returns [None] outside the domain
    (e.g. where a log-barrier argument would be non-positive), and the
    line search never leaves the domain.  Termination is by the Newton
    decrement [lambda^2 / 2 <= tol], the standard criterion for
    self-concordant functions (Boyd & Vandenberghe, ch. 9).

    The inner loop is allocation-free: gradient, Hessian, direction,
    line-search candidate and Cholesky factor live in a {!workspace}
    that callers may preallocate once and reuse across many
    minimizations of the same dimension (the barrier solver reuses one
    workspace across all its centering steps). *)

open Linalg

type oracle = {
  value : Vec.t -> float option;
      (** Function value, [None] outside the domain. *)
  grad_hess_into : Vec.t -> g:Vec.t -> h:Mat.t -> unit;
      (** Write the gradient and Hessian at a domain point into the
          caller-provided buffers (no allocation).  Only the values
          written are read back; stale buffer contents must be
          overwritten, not accumulated into. *)
  max_step : (Vec.t -> Vec.t -> float) option;
      (** [max_step x d]: an upper bound on [s] keeping [x + s*d] in
          the domain (may be [infinity]).  When provided, the line
          search caps its first trial at [0.99] of it
          (fraction-to-boundary) instead of locating the wall by
          repeated halving — on barrier centering this removes nearly
          all domain-violation backtracks. *)
}

type options = {
  tol : float;  (** Newton-decrement threshold ([lambda^2/2]). *)
  max_iter : int;
  alpha : float;  (** Armijo fraction, in (0, 1/2). *)
  beta : float;  (** Backtracking factor, in (0, 1). *)
}

val default_options : options
(** [tol = 1e-10], [max_iter = 100], [alpha = 0.25], [beta = 0.5]. *)

type outcome =
  | Converged
  | Iteration_limit
  | Line_search_failed
      (** The step could not make progress; the current iterate is
          returned as the best available point. *)

type result = {
  x : Vec.t;
  value : float;
  decrement : float;  (** Last Newton decrement [lambda^2 / 2]. *)
  iterations : int;
  backtracks : int;  (** Total rejected line-search trial steps. *)
  factorizations : int;
      (** Logical Cholesky factorizations — one per Newton step. *)
  jitter_retries : int;
      (** Extra factorization attempts forced by the jitter schedule
          on numerically semidefinite Hessians. *)
  outcome : outcome;
}

type workspace
(** Preallocated buffers for one problem dimension. *)

val workspace : int -> workspace

val minimize : ?options:options -> ?workspace:workspace -> oracle -> Vec.t -> result
(** [minimize oracle x0] runs damped Newton from [x0], which must lie
    in the domain ([Invalid_argument] otherwise).  A supplied
    [workspace] must match [x0]'s dimension ([Invalid_argument]
    otherwise); without one a fresh workspace is allocated. *)
