open Linalg

(* [p = None] encodes an affine function; this keeps gradient and
   Hessian accumulation cheap for the (many) linear constraints of the
   thermal models. *)
type t = { n : int; p : Mat.t option; q : Vec.t; r : float }

let affine q r = { n = Vec.dim q; p = None; q = Vec.copy q; r }
let constant n r = { n; p = None; q = Vec.zeros n; r }

let linear_coord n i c =
  if i < 0 || i >= n then invalid_arg "Quad.linear_coord: index out of range";
  let q = Vec.zeros n in
  q.(i) <- c;
  { n; p = None; q; r = 0.0 }

let quadratic p q r =
  let n = Vec.dim q in
  if Mat.rows p <> n || Mat.cols p <> n then
    invalid_arg "Quad.quadratic: shape mismatch";
  { n; p = Some (Mat.symmetrize p); q = Vec.copy q; r }

let square_of_affine q r =
  let n = Vec.dim q in
  (* (q.x + r)^2 = 1/2 x (2 q q^T) x + 2 r q . x + r^2 *)
  { n; p = Some (Mat.scale 2.0 (Mat.outer q q)); q = Vec.scale (2.0 *. r) q;
    r = r *. r }

let dim f = f.n

let check_dim name f g =
  if f.n <> g.n then invalid_arg ("Quad." ^ name ^ ": dimension mismatch")

let add f g =
  check_dim "add" f g;
  let p =
    match (f.p, g.p) with
    | None, None -> None
    | Some p, None | None, Some p -> Some (Mat.copy p)
    | Some p1, Some p2 -> Some (Mat.add p1 p2)
  in
  { n = f.n; p; q = Vec.add f.q g.q; r = f.r +. g.r }

let scale c f =
  {
    f with
    p = (match f.p with None -> None | Some p -> Some (Mat.scale c p));
    q = Vec.scale c f.q;
    r = c *. f.r;
  }

let sub f g = add f (scale (-1.0) g)
let add_constant f c = { f with r = f.r +. c }

let extend f n' =
  if n' < f.n then invalid_arg "Quad.extend: cannot shrink";
  if n' = f.n then f
  else
    let q = Vec.zeros n' in
    Array.blit f.q 0 q 0 f.n;
    let p =
      match f.p with
      | None -> None
      | Some p ->
          Some
            (Mat.init n' n' (fun i j ->
                 if i < f.n && j < f.n then Mat.get p i j else 0.0))
    in
    { n = n'; p; q; r = f.r }
let is_affine f = f.p = None

let eval f x =
  if Vec.dim x <> f.n then invalid_arg "Quad.eval: dimension mismatch";
  let quad_term =
    match f.p with
    | None -> 0.0
    | Some p -> 0.5 *. Vec.dot x (Mat.mul_vec p x)
  in
  quad_term +. Vec.dot f.q x +. f.r

let grad f x =
  if Vec.dim x <> f.n then invalid_arg "Quad.grad: dimension mismatch";
  match f.p with
  | None -> Vec.copy f.q
  | Some p -> Vec.add (Mat.mul_vec p x) f.q

let eval_with f ~scratch x =
  if Vec.dim x <> f.n then invalid_arg "Quad.eval_with: dimension mismatch";
  if Vec.dim scratch <> f.n then invalid_arg "Quad.eval_with: bad scratch";
  let quad_term =
    match f.p with
    | None -> 0.0
    | Some p ->
        Mat.mul_vec_into p x ~dst:scratch;
        0.5 *. Vec.dot x scratch
  in
  quad_term +. Vec.dot f.q x +. f.r

let grad_into f x ~dst =
  if Vec.dim x <> f.n then invalid_arg "Quad.grad_into: dimension mismatch";
  if Vec.dim dst <> f.n then invalid_arg "Quad.grad_into: bad destination";
  match f.p with
  | None -> Vec.blit ~src:f.q ~dst
  | Some p ->
      Mat.mul_vec_into p x ~dst;
      Vec.add_into ~dst f.q

let add_scaled_hess_upper_into f c ~dst =
  match f.p with
  | None -> ()
  | Some p ->
      if Mat.rows dst <> f.n || Mat.cols dst <> f.n then
        invalid_arg "Quad.add_scaled_hess_upper_into: bad destination";
      for i = 0 to f.n - 1 do
        for j = i to f.n - 1 do
          Mat.set dst i j (Mat.get dst i j +. (c *. Mat.get p i j))
        done
      done

let hess f =
  match f.p with None -> Mat.zeros f.n f.n | Some p -> Mat.copy p

let hess_is_psd ?(tol = 1e-9) f =
  match f.p with
  | None -> true
  | Some p ->
      let shifted = Mat.copy p in
      for i = 0 to f.n - 1 do
        Mat.set shifted i i (Mat.get shifted i i +. tol)
      done;
      (match Chol.factorize shifted with
      | _ -> true
      | exception Chol.Not_positive_definite _ -> false)

let linear_part f = Vec.copy f.q
let unsafe_linear_part f = f.q
let constant_part f = f.r

let pp ppf f =
  match f.p with
  | None -> Format.fprintf ppf "affine(q=%a, r=%g)" Vec.pp f.q f.r
  | Some _ -> Format.fprintf ppf "quadratic(n=%d, q=%a, r=%g)" f.n Vec.pp f.q f.r
