open Linalg

type oracle = {
  value : Vec.t -> float option;
  grad_hess_into : Vec.t -> g:Vec.t -> h:Mat.t -> unit;
  max_step : (Vec.t -> Vec.t -> float) option;
}

type options = { tol : float; max_iter : int; alpha : float; beta : float }

let default_options = { tol = 1e-10; max_iter = 100; alpha = 0.25; beta = 0.5 }

type outcome = Converged | Iteration_limit | Line_search_failed

type result = {
  x : Vec.t;
  value : float;
  decrement : float;
  iterations : int;
  backtracks : int;
  factorizations : int;
  jitter_retries : int;
  outcome : outcome;
}

type workspace = {
  w_n : int;
  w_g : Vec.t;
  w_h : Mat.t;
  w_d : Vec.t;
  w_cand : Vec.t;
  w_fact : Chol.t;
}

let workspace n =
  {
    w_n = n;
    w_g = Vec.zeros n;
    w_h = Mat.zeros n n;
    w_d = Vec.zeros n;
    w_cand = Vec.zeros n;
    w_fact = Chol.preallocate n;
  }

let minimize ?(options = default_options) ?workspace:ws (oracle : oracle) x0 =
  let n = Vec.dim x0 in
  let ws =
    match ws with
    | Some w ->
        if w.w_n <> n then
          invalid_arg "Newton.minimize: workspace dimension mismatch";
        w
    | None -> workspace n
  in
  let f0 =
    match oracle.value x0 with
    | Some v -> v
    | None -> invalid_arg "Newton.minimize: start point outside domain"
  in
  let x = Vec.copy x0 in
  let fx = ref f0 in
  let backtracks = ref 0 in
  let factorizations = ref 0 in
  let jitter_retries = ref 0 in
  let finish k decrement outcome =
    { x; value = !fx; decrement; iterations = k;
      backtracks = !backtracks; factorizations = !factorizations;
      jitter_retries = !jitter_retries; outcome }
  in
  let rec iterate k =
    if k >= options.max_iter then finish k infinity Iteration_limit
    else begin
      oracle.grad_hess_into x ~g:ws.w_g ~h:ws.w_h;
      (* Newton direction: H d = -g, via jittered Cholesky so that a
         numerically semidefinite Hessian still yields a descent
         direction.  The factor, direction and line-search candidate
         all live in the preallocated workspace. *)
      (* One logical factorization per Newton step; extra attempts the
         jitter schedule needed are retries, counted separately so the
         factorization count lines up with the iteration count. *)
      let _jitter, tries = Chol.factorize_jittered_into ws.w_fact ws.w_h in
      incr factorizations;
      jitter_retries := !jitter_retries + tries - 1;
      Chol.solve_factorized_into ws.w_fact ws.w_g ~dst:ws.w_d;
      Vec.scale_into ~dst:ws.w_d (-1.0);
      let decrement = -0.5 *. Vec.dot ws.w_g ws.w_d in
      if decrement <= options.tol then finish k decrement Converged
      else begin
        let accept v' =
          Vec.blit ~src:ws.w_cand ~dst:x;
          fx := v';
          iterate (k + 1)
        in
        (* Pure Newton phase: inside the quadratic-convergence region
           of a self-concordant function (lambda^2/2 < 1/4, hence
           lambda < 1) the full step stays in the domain and needs no
           damping, so skip the Armijo test — near the optimum of a
           barrier with a huge t the guaranteed decrease is below the
           floating-point resolution of the value and the test can
           reject every step.  The domain check stays as a guard
           against the theory/fp gap. *)
        let pure =
          if decrement >= 0.25 then None
          else begin
            Vec.blit ~src:x ~dst:ws.w_cand;
            Vec.axpy_into ~dst:ws.w_cand 1.0 ws.w_d;
            oracle.value ws.w_cand
          end
        in
        match pure with
        | Some v' -> accept v'
        | None ->
            (* Backtracking: shrink until inside the domain and the
               Armijo condition holds.  When the oracle can bound the
               distance to its domain boundary, every trial is clamped
               just inside it (fraction-to-boundary), so steps the
               bound proves infeasible are never evaluated; with an
               unbound wall the classic {1, beta, beta^2, ...} grid is
               unchanged. *)
            let gd = Vec.dot ws.w_g ws.w_d in
            let cap =
              match oracle.max_step with
              | None -> infinity
              | Some f -> 0.99 *. f x ws.w_d
            in
            let rec search step tries =
              if tries > 60 then None
              else begin
                let trial = Float.min step cap in
                Vec.blit ~src:x ~dst:ws.w_cand;
                Vec.axpy_into ~dst:ws.w_cand trial ws.w_d;
                match oracle.value ws.w_cand with
                | Some v when v <= !fx +. (options.alpha *. trial *. gd) ->
                    Some v
                | Some _ | None ->
                    incr backtracks;
                    (* Shrink on the unclamped grid so the trial
                       sequence rejoins {beta^k} once below the cap,
                       keeping the path independent of whether a wall
                       bound was available. *)
                    let next =
                      if step *. options.beta < cap then
                        step *. options.beta
                      else trial *. options.beta
                    in
                    search next (tries + 1)
              end
            in
            (match search 1.0 0 with
            | None -> finish k decrement Line_search_failed
            | Some v' -> accept v')
      end
    end
  in
  iterate 0
