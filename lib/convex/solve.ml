open Linalg

type solution = {
  x : Vec.t;
  objective_value : float;
  dual : Vec.t;
  gap : float;
  kkt : Kkt.residuals Lazy.t;
  outer_iterations : int;
  newton_iterations : int;
  stats : Barrier.stats;
}

type status = Optimal of solution | Infeasible of float

let solve ?(options = Barrier.default_options) ?backend ?compiled ?stats_into
    ?start (p : Barrier.problem) =
  let n = Quad.dim p.Barrier.objective in
  let x0 = match start with Some x -> Vec.copy x | None -> Vec.zeros n in
  let acc = ref Barrier.stats_zero in
  (* Phase I only needs the sign of the auxiliary optimum, so a much
     looser duality gap suffices; borderline cells are conservatively
     reported infeasible. *)
  let phase1_options =
    { options with Barrier.gap_tol = Float.max options.Barrier.gap_tol 1e-3 }
  in
  let feasible_start =
    if Barrier.is_strictly_feasible p x0 then `Found x0
    else
      match
        Phase1.find ~options:phase1_options ?backend ~stats_into:acc
          p.Barrier.constraints x0
      with
      | Phase1.Strictly_feasible x -> `Found x
      | Phase1.Infeasible worst
        (* Bit-exact: the all-zeros start is a sentinel, not a measure. *)
        when Float.equal (Vec.norm_inf x0) 0.0 || worst > 1e-2 ->
          (* A decisive violation, or nothing different to retry
             from. *)
          `Infeasible worst
      | Phase1.Infeasible _ -> (
          (* A borderline phase-I run from a start far from the
             analytic center can stall; retry once from the origin
             before giving up. *)
          match
            Phase1.find ~options:phase1_options ?backend ~stats_into:acc
              p.Barrier.constraints (Vec.zeros n)
          with
          | Phase1.Strictly_feasible x -> `Found x
          | Phase1.Infeasible worst -> `Infeasible worst)
  in
  let record () =
    match stats_into with
    | Some dst -> dst := Barrier.stats_add !dst !acc
    | None -> ()
  in
  match feasible_start with
  | `Infeasible worst ->
      record ();
      Infeasible worst
  | `Found x0 ->
      let r =
        match compiled with
        | Some c -> Barrier.solve_compiled ~options c x0
        | None -> Barrier.solve ~options ?backend p x0
      in
      acc := Barrier.stats_add !acc r.Barrier.stats;
      record ();
      Optimal
        {
          x = r.Barrier.x;
          objective_value = r.Barrier.objective_value;
          dual = r.Barrier.dual;
          gap = r.Barrier.gap;
          kkt = lazy (Kkt.residuals p r.Barrier.x r.Barrier.dual);
          outer_iterations = r.Barrier.outer_iterations;
          newton_iterations = r.Barrier.newton_iterations;
          stats = !acc;
        }

let pp_status ppf = function
  | Optimal s ->
      Format.fprintf ppf "optimal: obj=%.6g gap=%.2e (%a)" s.objective_value
        s.gap Kkt.pp (Lazy.force s.kkt)
  | Infeasible worst ->
      Format.fprintf ppf "infeasible (best max g = %.3e)" worst
