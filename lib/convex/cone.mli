(** Cone oracles for the primal-dual conic solver.

    Each cone exposes the oracles a symmetric-cone interior-point
    method needs: dimension and barrier degree, a canonical initial
    interior point, an interior test, and the value/gradient/Hessian
    of the standard logarithmically homogeneous self-concordant
    barrier.  Two cones cover the thermal models:

    - [Nonneg d]: the nonnegative orthant [{s : s >= 0}] with barrier
      [-sum log s_i] (degree [d]) — every affine inequality row.
    - [Epi_square]: the rotated quadratic cone
      [{(u, v, w) : 2 u v >= w^2, u >= 0, v >= 0}] with barrier
      [-log (2 u v - w^2)] (degree 2) — the power-law epigraph
      [f^2 <= p] after the affine lift [u = p - ...], [v = 1/2],
      [w = f].  A linear change of coordinates maps it onto the
      standard second-order cone, which is how the solver scales it
      (see {!Conic}); the oracles here are stated directly on the
      rotated form.

    Oracles address a cone's coordinates as [v.(offset ..
    offset + dim - 1)] of a larger vector, so a product cone is an
    array of [t]s plus running offsets and no copying. *)

open Linalg

type t = Nonneg of int | Epi_square

val dim : t -> int
(** Number of coordinates ([Invalid_argument] on [Nonneg d] with
    [d <= 0]). *)

val degree : t -> int
(** Barrier degree [nu]: [d] for [Nonneg d], [2] for [Epi_square]. *)

val initial_point_into : t -> Vec.t -> offset:int -> unit
(** Write the canonical central point: all-ones for the orthant,
    [(1/sqrt 2, 1/sqrt 2, 0)] for [Epi_square] (the image of the
    second-order cone's central ray). *)

val is_interior : t -> Vec.t -> offset:int -> bool
(** Strict interior test. *)

val barrier_value : t -> Vec.t -> offset:int -> float
(** Barrier value at an interior point ([infinity] outside). *)

val barrier_grad_into : t -> Vec.t -> offset:int -> dst:Vec.t -> unit
(** Gradient of the barrier, written into the same coordinate range
    of [dst].  Must be called at an interior point. *)

val barrier_hess_into : t -> Vec.t -> offset:int -> dst:Mat.t -> unit
(** Hessian of the barrier as a dense [dim x dim] block written into
    the top-left corner of [dst] (which must be at least that large).
    Must be called at an interior point.  Used by the agreement tests;
    the solver itself works with Nesterov-Todd scalings. *)
