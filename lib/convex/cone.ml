open Linalg

type t = Nonneg of int | Epi_square

let dim = function
  | Nonneg d ->
      if d <= 0 then invalid_arg "Cone.dim: non-positive orthant dimension";
      d
  | Epi_square -> 3

let degree = function Nonneg d -> d | Epi_square -> 2

(* 2 u v - w^2, the defining quantity of the rotated quadratic cone. *)
let rho v ~offset =
  (2.0 *. v.(offset) *. v.(offset + 1))
  -. (v.(offset + 2) *. v.(offset + 2))

let initial_point_into c v ~offset =
  match c with
  | Nonneg d ->
      for i = 0 to d - 1 do
        v.(offset + i) <- 1.0
      done
  | Epi_square ->
      (* The image of the second-order cone's central ray (1, 0, 0)
         under the rotation that identifies the two cones; rho = 1
         here, matching s0^2 - ||s1||^2 = 1 at the SOC center. *)
      let s = 1.0 /. sqrt 2.0 in
      v.(offset) <- s;
      v.(offset + 1) <- s;
      v.(offset + 2) <- 0.0

let is_interior c v ~offset =
  match c with
  | Nonneg d ->
      let ok = ref true in
      for i = 0 to d - 1 do
        if v.(offset + i) <= 0.0 then ok := false
      done;
      !ok
  | Epi_square ->
      v.(offset) > 0.0 && v.(offset + 1) > 0.0 && rho v ~offset > 0.0

let barrier_value c v ~offset =
  match c with
  | Nonneg d ->
      let acc = ref 0.0 in
      let ok = ref true in
      for i = 0 to d - 1 do
        if v.(offset + i) <= 0.0 then ok := false
        else acc := !acc -. log v.(offset + i)
      done;
      if !ok then !acc else infinity
  | Epi_square ->
      if is_interior c v ~offset then -.log (rho v ~offset) else infinity

let barrier_grad_into c v ~offset ~dst =
  match c with
  | Nonneg d ->
      for i = 0 to d - 1 do
        dst.(offset + i) <- -1.0 /. v.(offset + i)
      done
  | Epi_square ->
      let r = rho v ~offset in
      dst.(offset) <- -2.0 *. v.(offset + 1) /. r;
      dst.(offset + 1) <- -2.0 *. v.(offset) /. r;
      dst.(offset + 2) <- 2.0 *. v.(offset + 2) /. r

let barrier_hess_into c v ~offset ~dst =
  match c with
  | Nonneg d ->
      for i = 0 to d - 1 do
        for j = 0 to d - 1 do
          Mat.set dst i j
            (if i = j then
               let s = v.(offset + i) in
               1.0 /. (s *. s)
             else 0.0)
        done
      done
  | Epi_square ->
      (* F = -log rho, rho = 2uv - w^2:
         H = (grad rho)(grad rho)^T / rho^2 - (hess rho) / rho. *)
      let u = v.(offset) and vv = v.(offset + 1) and w = v.(offset + 2) in
      let r = rho v ~offset in
      let r2 = r *. r in
      Mat.set dst 0 0 (4.0 *. vv *. vv /. r2);
      Mat.set dst 1 1 (4.0 *. u *. u /. r2);
      Mat.set dst 2 2 ((4.0 *. w *. w /. r2) +. (2.0 /. r));
      let huv = (4.0 *. u *. vv /. r2) -. (2.0 /. r) in
      Mat.set dst 0 1 huv;
      Mat.set dst 1 0 huv;
      let huw = -4.0 *. vv *. w /. r2 in
      Mat.set dst 0 2 huw;
      Mat.set dst 2 0 huw;
      let hvw = -4.0 *. u *. w /. r2 in
      Mat.set dst 1 2 hvw;
      Mat.set dst 2 1 hvw
