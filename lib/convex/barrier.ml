open Linalg

type problem = { objective : Quad.t; constraints : Quad.t array }

type backend = [ `Compiled | `Reference ]

type options = {
  mu : float;
  gap_tol : float;
  t0 : float;
  max_outer : int;
  newton : Newton.options;
}

(* A short-step schedule (mu = 2) by default: problems with thousands
   of near-parallel constraints hugging a curved wall (exactly the
   Pro-Temp thermal models) realize the pessimistic long-step bound
   O(m (mu - 1 - log mu)) on Newton work per centering, so small
   increments are far cheaper overall; on small problems the extra
   outer iterations cost microseconds. *)
let default_options =
  { mu = 2.0; gap_tol = 1e-7; t0 = 1.0; max_outer = 120;
    newton = { Newton.default_options with tol = 1e-9; max_iter = 500 } }

type stats = {
  centering_steps : int;
  newton_iterations : int;
  backtracks : int;
  factorizations : int;
  jitter_retries : int;
}

let stats_zero =
  { centering_steps = 0; newton_iterations = 0; backtracks = 0;
    factorizations = 0; jitter_retries = 0 }

let stats_add a b =
  {
    centering_steps = a.centering_steps + b.centering_steps;
    newton_iterations = a.newton_iterations + b.newton_iterations;
    backtracks = a.backtracks + b.backtracks;
    factorizations = a.factorizations + b.factorizations;
    jitter_retries = a.jitter_retries + b.jitter_retries;
  }

type result = {
  x : Vec.t;
  objective_value : float;
  dual : Vec.t;
  gap : float;
  outer_iterations : int;
  newton_iterations : int;
  stats : stats;
  stopped_early : bool;
}

let check_problem p =
  let n = Quad.dim p.objective in
  Array.iter
    (fun c ->
      if Quad.dim c <> n then
        invalid_arg "Barrier: constraint dimension mismatch")
    p.constraints;
  n

let barrier_value p t x =
  let rec go j acc =
    if j >= Array.length p.constraints then Some acc
    else
      let g = Quad.eval p.constraints.(j) x in
      if g >= 0.0 then None else go (j + 1) (acc -. log (-.g))
  in
  go 0 (t *. Quad.eval p.objective x)

let is_strictly_feasible p x =
  Array.for_all (fun c -> Quad.eval c x < 0.0) p.constraints

(* Everything the outer loop needs from a problem representation, so
   the same path-following code drives both the compiled and the
   reference oracle. *)
type engine = {
  e_n : int;
  e_m : int;
  e_feasible : Vec.t -> bool;
  e_value : float -> Vec.t -> float option;
  e_grad_hess : float -> Vec.t -> g:Vec.t -> h:Mat.t -> unit;
  e_max_step : (Vec.t -> Vec.t -> float) option;
  e_objective : Vec.t -> float;
  e_duals : float -> Vec.t -> Vec.t;
}

(* Reference oracle: walk the constraints as Quad objects.  Gradient
   and Hessian of phi_t(x) = t f0 - sum log(-f_j):
     grad = t grad_f0 + sum grad_f_j / (-f_j)
     hess = t P0 + sum [ grad_f_j grad_f_j^T / f_j^2 + P_j / (-f_j) ].
   Rank-one terms accumulate into the upper triangle only; affine
   constraints contribute their coefficient vector directly. *)
let reference_engine p =
  let n = check_problem p in
  let scr = Vec.zeros n and gj = Vec.zeros n in
  let value t x =
    let rec go j acc =
      if j >= Array.length p.constraints then Some acc
      else
        let g = Quad.eval_with p.constraints.(j) ~scratch:scr x in
        if g >= 0.0 then None else go (j + 1) (acc -. log (-.g))
    in
    go 0 (t *. Quad.eval_with p.objective ~scratch:scr x)
  in
  let grad_hess t x ~g ~h =
    Quad.grad_into p.objective x ~dst:g;
    Vec.scale_into ~dst:g t;
    Mat.fill h 0.0;
    Quad.add_scaled_hess_upper_into p.objective t ~dst:h;
    Array.iter
      (fun c ->
        let fj = Quad.eval_with c ~scratch:scr x in
        let inv = -1.0 /. fj in
        if Quad.is_affine c then begin
          let q = Quad.unsafe_linear_part c in
          Vec.axpy_into ~dst:g inv q;
          Mat.add_outer_upper_into h (inv *. inv) q
        end
        else begin
          Quad.grad_into c x ~dst:gj;
          Vec.axpy_into ~dst:g inv gj;
          Mat.add_outer_upper_into h (inv *. inv) gj;
          Quad.add_scaled_hess_upper_into c inv ~dst:h
        end)
      p.constraints;
    Mat.mirror_upper h
  in
  {
    e_n = n;
    e_m = Array.length p.constraints;
    e_feasible = is_strictly_feasible p;
    e_value = value;
    e_grad_hess = grad_hess;
    e_max_step = None;
    e_objective = (fun x -> Quad.eval_with p.objective ~scratch:scr x);
    e_duals =
      (fun t x ->
        Array.map (fun c -> 1.0 /. (t *. -.Quad.eval c x)) p.constraints);
  }

let compiled_engine c =
  let ws = Compiled.workspace c in
  let scr = Vec.zeros (Compiled.dim c) in
  {
    e_n = Compiled.dim c;
    e_m = Compiled.n_constraints c;
    e_feasible = Compiled.is_strictly_feasible c ws;
    e_value = (fun t x -> Compiled.value c ws ~t x);
    e_grad_hess = (fun t x ~g ~h -> Compiled.grad_hess_into c ws ~t x ~g ~h);
    e_max_step = Some (fun x d -> Compiled.max_step c ws x d);
    e_objective =
      (fun x -> Quad.eval_with (Compiled.objective c) ~scratch:scr x);
    e_duals = (fun t x -> Compiled.duals c ws ~t x);
  }

let solve_engine ~options ?stop_early e x0 =
  if Vec.dim x0 <> e.e_n then
    invalid_arg "Barrier.solve: x0 dimension mismatch";
  if not (e.e_feasible x0) then
    invalid_arg "Barrier.solve: x0 not strictly feasible";
  (* One Newton workspace serves every centering step of the solve. *)
  let ws = Newton.workspace e.e_n in
  let m = float_of_int e.e_m in
  let inner = ref 0 and backtracks = ref 0 and factorizations = ref 0 in
  let jitter_retries = ref 0 in
  let finish ~t ~x ~outer ~stopped_early =
    {
      x;
      objective_value = e.e_objective x;
      dual = e.e_duals t x;
      gap = m /. t;
      outer_iterations = outer;
      newton_iterations = !inner;
      stats =
        { centering_steps = outer; newton_iterations = !inner;
          backtracks = !backtracks; factorizations = !factorizations;
          jitter_retries = !jitter_retries };
      stopped_early;
    }
  in
  let rec outer_loop t x outer =
    let oracle =
      {
        Newton.value = (fun y -> e.e_value t y);
        grad_hess_into = (fun y ~g ~h -> e.e_grad_hess t y ~g ~h);
        max_step = e.e_max_step;
      }
    in
    let r = Newton.minimize ~options:options.newton ~workspace:ws oracle x in
    let x = r.Newton.x in
    inner := !inner + r.Newton.iterations;
    backtracks := !backtracks + r.Newton.backtracks;
    factorizations := !factorizations + r.Newton.factorizations;
    jitter_retries := !jitter_retries + r.Newton.jitter_retries;
    let gap = m /. t in
    let early = match stop_early with Some f -> f x | None -> false in
    if early then finish ~t ~x ~outer ~stopped_early:true
    else if gap <= options.gap_tol then
      finish ~t ~x ~outer ~stopped_early:false
    else if outer >= options.max_outer then
      finish ~t ~x ~outer ~stopped_early:false
    else outer_loop (t *. options.mu) x (outer + 1)
  in
  outer_loop options.t0 x0 1

let solve ?(options = default_options) ?(backend = `Compiled) ?stop_early p
    x0 =
  let e =
    match backend with
    | `Compiled ->
        compiled_engine
          (Compiled.make ~objective:p.objective ~constraints:p.constraints)
    | `Reference -> reference_engine p
  in
  solve_engine ~options ?stop_early e x0

let solve_compiled ?(options = default_options) ?stop_early c x0 =
  solve_engine ~options ?stop_early (compiled_engine c) x0
