open Linalg

(* Internal form: the cone rows are permuted so every orthant row comes
   first, followed by the rotated-quadratic blocks mapped onto the
   standard second-order cone by the self-inverse orthogonal rotation

     T = [ 1/r2  1/r2  0 ]
         [ 1/r2 -1/r2  0 ]          r2 = sqrt 2
         [ 0     0     1 ]

   so the solver only ever scales orthant coordinates and standard
   SOC_3 blocks.  T is symmetric and orthogonal, so slacks and duals
   transform identically and inner products are preserved; solutions
   are rotated back to the caller's row order on exit.

   G is stored as truncated sparse rows: row i keeps only the columns
   [glo.(i), glo.(i) + len_i).  The thermal models' rows are tiny
   contiguous stripes of a wide matrix (box rows touch one column,
   thermal rows only the power block), so every G kernel — matvec,
   transposed matvec, and the normal-equations syrk — runs on the
   stripe instead of the dense row.  This is where the per-iteration
   budget is won: the dense syrk alone costs more than the whole
   per-iteration target. *)

let inv_sqrt2 = 1.0 /. sqrt 2.0

type duals_entry = Dual_orth of int | Dual_soc of int

type t = {
  n : int;  (* primal dimension *)
  p : int;  (* equality rows *)
  mo : int;  (* orthant rows *)
  nsoc : int;  (* second-order blocks (3 rows each) *)
  c : Vec.t;
  a : Mat.t;  (* p x n *)
  b : Vec.t;
  gdata : float array;  (* truncated rows, packed contiguously *)
  goff : int array;  (* q + 1 row offsets into gdata *)
  glo : int array;  (* first stored column of each row *)
  hi : Vec.t;  (* q, internal row order *)
  orth_ext : int array;  (* external row of internal orthant row i *)
  soc_ext : int array;  (* external offset of internal block k *)
  (* of_barrier bookkeeping; [||] for make-built instances *)
  duals_map : duals_entry array;
  obj_const : float;
}

let dim t = t.n
let n_rows t = t.mo + (3 * t.nsoc)

(* ------------------------------------------------------------------ *)
(* Construction                                                       *)
(* ------------------------------------------------------------------ *)

(* Truncate a dense row to its nonzero stripe. *)
let truncate_row full =
  let n = Array.length full in
  let lo = ref 0 in
  (* Structural-zero detection at build time wants exact equality. *)
  while !lo < n && full.(!lo) = 0.0 do (* lint: float-equality structural zero *)
    incr lo
  done;
  if !lo = n then ([||], 0)
  else begin
    let hi = ref (n - 1) in
    while full.(!hi) = 0.0 do (* lint: float-equality structural zero *)
      decr hi
    done;
    (Array.sub full !lo (!hi - !lo + 1), !lo)
  end

(* Pack an array of truncated rows into one contiguous buffer; the
   row-pointer layout keeps every G kernel a single linear sweep. *)
let pack_rows rows =
  let q = Array.length rows in
  let goff = Array.make (q + 1) 0 in
  for i = 0 to q - 1 do
    goff.(i + 1) <- goff.(i) + Array.length rows.(i)
  done;
  let gdata = Array.make (max 1 goff.(q)) 0.0 in
  for i = 0 to q - 1 do
    Array.blit rows.(i) 0 gdata goff.(i) (Array.length rows.(i))
  done;
  (gdata, goff)

let count_cones cones =
  Array.fold_left
    (fun (mo, nsoc) c ->
      match c with
      | Cone.Nonneg d -> (mo + Cone.dim (Cone.Nonneg d), nsoc)
      | Cone.Epi_square -> (mo, nsoc + 1))
    (0, 0) cones

let make ?a ?b ~c ~g ~h ~cones () =
  let n = Vec.dim c in
  let a = match a with Some a -> a | None -> Mat.zeros 0 n in
  let b = match b with Some b -> b | None -> Vec.zeros 0 in
  let p = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Conic.make: A column mismatch";
  if Vec.dim b <> p then invalid_arg "Conic.make: b dimension mismatch";
  if Mat.cols g <> n then invalid_arg "Conic.make: G column mismatch";
  let mo, nsoc = count_cones cones in
  let q = mo + (3 * nsoc) in
  if Mat.rows g <> q then invalid_arg "Conic.make: G row mismatch";
  if Vec.dim h <> q then invalid_arg "Conic.make: h dimension mismatch";
  let grows = Array.make q [||] and glo = Array.make q 0 in
  let hi = Vec.zeros q in
  let orth_ext = Array.make mo 0 and soc_ext = Array.make nsoc 0 in
  let full = Vec.zeros n in
  let store i =
    let row, lo = truncate_row full in
    grows.(i) <- row;
    glo.(i) <- lo
  in
  let io = ref 0 and is = ref 0 and ext = ref 0 in
  Array.iter
    (fun cone ->
      match cone with
      | Cone.Nonneg d ->
          for k = 0 to d - 1 do
            let e = !ext + k and i = !io + k in
            orth_ext.(i) <- e;
            hi.(i) <- h.(e);
            for j = 0 to n - 1 do
              full.(j) <- Mat.get g e j
            done;
            store i
          done;
          io := !io + d;
          ext := !ext + d
      | Cone.Epi_square ->
          let e = !ext and r0 = mo + (3 * !is) in
          soc_ext.(!is) <- e;
          hi.(r0) <- inv_sqrt2 *. (h.(e) +. h.(e + 1));
          hi.(r0 + 1) <- inv_sqrt2 *. (h.(e) -. h.(e + 1));
          hi.(r0 + 2) <- h.(e + 2);
          for j = 0 to n - 1 do
            full.(j) <- inv_sqrt2 *. (Mat.get g e j +. Mat.get g (e + 1) j)
          done;
          store r0;
          for j = 0 to n - 1 do
            full.(j) <- inv_sqrt2 *. (Mat.get g e j -. Mat.get g (e + 1) j)
          done;
          store (r0 + 1);
          for j = 0 to n - 1 do
            full.(j) <- Mat.get g (e + 2) j
          done;
          store (r0 + 2);
          incr is;
          ext := !ext + 3)
    cones;
  let gdata, goff = pack_rows grows in
  { n; p; mo; nsoc; c = Vec.copy c; a; b = Vec.copy b; gdata; goff;
    glo; hi; orth_ext; soc_ext; duals_map = [||]; obj_const = 0.0 }

(* Recover a from P = 2 a a^T (the Hessian of a rank-one quadratic
   constraint); [Invalid_argument] when P is not of that form. *)
let rank_one_factor pmat =
  let n = Mat.rows pmat in
  let imax = ref 0 in
  for i = 1 to n - 1 do
    if Mat.get pmat i i > Mat.get pmat !imax !imax then imax := i
  done;
  let dmax = Mat.get pmat !imax !imax in
  if dmax <= 0.0 then
    invalid_arg "Conic.of_barrier: quadratic constraint with no curvature";
  let av = Vec.zeros n in
  let ai = sqrt (dmax /. 2.0) in
  av.(!imax) <- ai;
  for j = 0 to n - 1 do
    if j <> !imax then av.(j) <- Mat.get pmat !imax j /. (2.0 *. ai)
  done;
  let tol = 1e-7 *. (1.0 +. dmax) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if abs_float (Mat.get pmat i j -. (2.0 *. av.(i) *. av.(j))) > tol
      then
        invalid_arg "Conic.of_barrier: quadratic constraint is not rank-one"
    done
  done;
  av

let of_barrier (bp : Barrier.problem) =
  if not (Quad.is_affine bp.Barrier.objective) then
    invalid_arg "Conic.of_barrier: objective is not affine";
  let n = Quad.dim bp.Barrier.objective in
  let cons = bp.Barrier.constraints in
  let m = Array.length cons in
  let mo = ref 0 and nsoc = ref 0 in
  Array.iter
    (fun cj -> if Quad.is_affine cj then incr mo else incr nsoc)
    cons;
  let mo = !mo and nsoc = !nsoc in
  let q = mo + (3 * nsoc) in
  let grows = Array.make q [||] and glo = Array.make q 0 in
  let hi = Vec.zeros q in
  let orth_ext = Array.init mo (fun i -> i) in
  let soc_ext = Array.init nsoc (fun k -> mo + (3 * k)) in
  let duals_map = Array.make m (Dual_orth 0) in
  let full = Vec.zeros n in
  let store i =
    let row, lo = truncate_row full in
    grows.(i) <- row;
    glo.(i) <- lo
  in
  let io = ref 0 and is = ref 0 in
  Array.iteri
    (fun j cj ->
      let qv = Quad.linear_part cj and r = Quad.constant_part cj in
      if Quad.is_affine cj then begin
        (* q'x + r <= 0  <=>  (-r) - q'x >= 0 *)
        let i = !io in
        duals_map.(j) <- Dual_orth i;
        hi.(i) <- -.r;
        Array.blit qv 0 full 0 n;
        store i;
        incr io
      end
      else begin
        (* (a'x)^2 + q'x + r <= 0, lifted to the rotated cone
           (u, v, w) = (-q'x - r, 1/2, a'x): external rows
           u: (G = q, h = -r), v: (G = 0, h = 1/2), w: (G = -a, h = 0),
           stored here already rotated by T onto SOC_3 (under which
           the u and v rows both become q/sqrt2). *)
        let av = rank_one_factor (Quad.hess cj) in
        let k = !is in
        duals_map.(j) <- Dual_soc k;
        let r0 = mo + (3 * k) in
        hi.(r0) <- inv_sqrt2 *. (-.r +. 0.5);
        hi.(r0 + 1) <- inv_sqrt2 *. (-.r -. 0.5);
        hi.(r0 + 2) <- 0.0;
        for jj = 0 to n - 1 do
          full.(jj) <- inv_sqrt2 *. qv.(jj)
        done;
        store r0;
        store (r0 + 1);
        for jj = 0 to n - 1 do
          full.(jj) <- -.av.(jj)
        done;
        store (r0 + 2);
        incr is
      end)
    cons;
  let gdata, goff = pack_rows grows in
  {
    n; p = 0; mo; nsoc;
    c = Quad.linear_part bp.Barrier.objective;
    a = Mat.zeros 0 n; b = Vec.zeros 0;
    gdata; goff; glo; hi; orth_ext; soc_ext; duals_map;
    obj_const = Quad.constant_part bp.Barrier.objective;
  }

let with_constraint_constant t ~index value =
  if Array.length t.duals_map = 0 then
    invalid_arg "Conic.with_constraint_constant: not an of_barrier instance";
  if index < 0 || index >= Array.length t.duals_map then
    invalid_arg "Conic.with_constraint_constant: index out of range";
  match t.duals_map.(index) with
  | Dual_soc _ ->
      invalid_arg "Conic.with_constraint_constant: constraint is not affine"
  | Dual_orth i ->
      let hi = Vec.copy t.hi in
      hi.(i) <- -.value;
      { t with hi }

(* ------------------------------------------------------------------ *)
(* Sparse-row kernels                                                 *)
(* ------------------------------------------------------------------ *)

(* The three G kernels below account for the bulk of a solve (every
   iteration walks the nnz row pack around fifteen times), so they
   use unchecked array access — the only place in the library that
   does.  The indices are safe by construction of pack_rows: for row
   [i], [gdata]/[goff] entries lie in [goff.(i), goff.(i+1)) within
   [0, nnz), and the column window [glo.(i), glo.(i) + len) lies
   within [0, n); both are fixed at pack time and never mutated.

   Each kernel special-cases rows of exactly eight entries with a
   hand-unrolled body.  In the thermal models the per-node
   temperature rows all couple the full frequency (or power) block —
   eight columns — so upward of 95% of rows take this branch, and the
   fixed-trip unrolled code is 2-3x faster than the generic loop
   (measured: the compiler does not unroll, and the single-
   accumulator reduction serializes on FP-add latency). *)

(* dst := G x *)
let g_mulvec t x ~dst =
  let gd = t.gdata and off = t.goff and lo = t.glo in
  for i = 0 to Array.length lo - 1 do
    let s = Array.unsafe_get off i in
    let e = Array.unsafe_get off (i + 1) in
    let l = Array.unsafe_get lo i in
    if e - s = 8 then begin
      let a0 =
        (Array.unsafe_get gd s *. Array.unsafe_get x l)
        +. (Array.unsafe_get gd (s + 1) *. Array.unsafe_get x (l + 1))
      and a1 =
        (Array.unsafe_get gd (s + 2) *. Array.unsafe_get x (l + 2))
        +. (Array.unsafe_get gd (s + 3) *. Array.unsafe_get x (l + 3))
      and a2 =
        (Array.unsafe_get gd (s + 4) *. Array.unsafe_get x (l + 4))
        +. (Array.unsafe_get gd (s + 5) *. Array.unsafe_get x (l + 5))
      and a3 =
        (Array.unsafe_get gd (s + 6) *. Array.unsafe_get x (l + 6))
        +. (Array.unsafe_get gd (s + 7) *. Array.unsafe_get x (l + 7))
      in
      Array.unsafe_set dst i ((a0 +. a1) +. (a2 +. a3))
    end
    else begin
      let sh = l - s in
      let acc = ref 0.0 in
      for k = s to e - 1 do
        acc :=
          !acc +. (Array.unsafe_get gd k *. Array.unsafe_get x (sh + k))
      done;
      Array.unsafe_set dst i !acc
    end
  done

(* dst := G' v *)
let g_tmulvec t v ~dst =
  Vec.fill dst 0.0;
  let gd = t.gdata and off = t.goff and lo = t.glo in
  for i = 0 to Array.length lo - 1 do
    let vi = Array.unsafe_get v i in
    let s = Array.unsafe_get off i in
    let e = Array.unsafe_get off (i + 1) in
    let l = Array.unsafe_get lo i in
    if e - s = 8 then begin
      Array.unsafe_set dst l
        (Array.unsafe_get dst l +. (vi *. Array.unsafe_get gd s));
      Array.unsafe_set dst (l + 1)
        (Array.unsafe_get dst (l + 1)
        +. (vi *. Array.unsafe_get gd (s + 1)));
      Array.unsafe_set dst (l + 2)
        (Array.unsafe_get dst (l + 2)
        +. (vi *. Array.unsafe_get gd (s + 2)));
      Array.unsafe_set dst (l + 3)
        (Array.unsafe_get dst (l + 3)
        +. (vi *. Array.unsafe_get gd (s + 3)));
      Array.unsafe_set dst (l + 4)
        (Array.unsafe_get dst (l + 4)
        +. (vi *. Array.unsafe_get gd (s + 4)));
      Array.unsafe_set dst (l + 5)
        (Array.unsafe_get dst (l + 5)
        +. (vi *. Array.unsafe_get gd (s + 5)));
      Array.unsafe_set dst (l + 6)
        (Array.unsafe_get dst (l + 6)
        +. (vi *. Array.unsafe_get gd (s + 6)));
      Array.unsafe_set dst (l + 7)
        (Array.unsafe_get dst (l + 7)
        +. (vi *. Array.unsafe_get gd (s + 7)))
    end
    else begin
      let sh = l - s in
      for k = s to e - 1 do
        Array.unsafe_set dst (sh + k)
          (Array.unsafe_get dst (sh + k)
          +. (vi *. Array.unsafe_get gd k))
      done
    end
  done

(* marr (flat n x n, upper triangle) += G' diag(d) G *)
let g_syrk t d ~marr =
  let gd = t.gdata and off = t.goff and lo = t.glo and n = t.n in
  for i = 0 to Array.length lo - 1 do
    let s = Array.unsafe_get off i in
    let e = Array.unsafe_get off (i + 1) in
    let l = Array.unsafe_get lo i in
    let di = Array.unsafe_get d i in
    if e - s = 8 then begin
      let g0 = Array.unsafe_get gd s
      and g1 = Array.unsafe_get gd (s + 1)
      and g2 = Array.unsafe_get gd (s + 2)
      and g3 = Array.unsafe_get gd (s + 3)
      and g4 = Array.unsafe_get gd (s + 4)
      and g5 = Array.unsafe_get gd (s + 5)
      and g6 = Array.unsafe_get gd (s + 6)
      and g7 = Array.unsafe_get gd (s + 7) in
      let c0 = di *. g0
      and c1 = di *. g1
      and c2 = di *. g2
      and c3 = di *. g3
      and c4 = di *. g4
      and c5 = di *. g5
      and c6 = di *. g6
      and c7 = di *. g7 in
      let b0 = (l * n) + l in
      Array.unsafe_set marr b0 (Array.unsafe_get marr b0 +. (c0 *. g0));
      Array.unsafe_set marr (b0 + 1)
        (Array.unsafe_get marr (b0 + 1) +. (c0 *. g1));
      Array.unsafe_set marr (b0 + 2)
        (Array.unsafe_get marr (b0 + 2) +. (c0 *. g2));
      Array.unsafe_set marr (b0 + 3)
        (Array.unsafe_get marr (b0 + 3) +. (c0 *. g3));
      Array.unsafe_set marr (b0 + 4)
        (Array.unsafe_get marr (b0 + 4) +. (c0 *. g4));
      Array.unsafe_set marr (b0 + 5)
        (Array.unsafe_get marr (b0 + 5) +. (c0 *. g5));
      Array.unsafe_set marr (b0 + 6)
        (Array.unsafe_get marr (b0 + 6) +. (c0 *. g6));
      Array.unsafe_set marr (b0 + 7)
        (Array.unsafe_get marr (b0 + 7) +. (c0 *. g7));
      let b1 = b0 + n + 1 in
      Array.unsafe_set marr b1 (Array.unsafe_get marr b1 +. (c1 *. g1));
      Array.unsafe_set marr (b1 + 1)
        (Array.unsafe_get marr (b1 + 1) +. (c1 *. g2));
      Array.unsafe_set marr (b1 + 2)
        (Array.unsafe_get marr (b1 + 2) +. (c1 *. g3));
      Array.unsafe_set marr (b1 + 3)
        (Array.unsafe_get marr (b1 + 3) +. (c1 *. g4));
      Array.unsafe_set marr (b1 + 4)
        (Array.unsafe_get marr (b1 + 4) +. (c1 *. g5));
      Array.unsafe_set marr (b1 + 5)
        (Array.unsafe_get marr (b1 + 5) +. (c1 *. g6));
      Array.unsafe_set marr (b1 + 6)
        (Array.unsafe_get marr (b1 + 6) +. (c1 *. g7));
      let b2 = b1 + n + 1 in
      Array.unsafe_set marr b2 (Array.unsafe_get marr b2 +. (c2 *. g2));
      Array.unsafe_set marr (b2 + 1)
        (Array.unsafe_get marr (b2 + 1) +. (c2 *. g3));
      Array.unsafe_set marr (b2 + 2)
        (Array.unsafe_get marr (b2 + 2) +. (c2 *. g4));
      Array.unsafe_set marr (b2 + 3)
        (Array.unsafe_get marr (b2 + 3) +. (c2 *. g5));
      Array.unsafe_set marr (b2 + 4)
        (Array.unsafe_get marr (b2 + 4) +. (c2 *. g6));
      Array.unsafe_set marr (b2 + 5)
        (Array.unsafe_get marr (b2 + 5) +. (c2 *. g7));
      let b3 = b2 + n + 1 in
      Array.unsafe_set marr b3 (Array.unsafe_get marr b3 +. (c3 *. g3));
      Array.unsafe_set marr (b3 + 1)
        (Array.unsafe_get marr (b3 + 1) +. (c3 *. g4));
      Array.unsafe_set marr (b3 + 2)
        (Array.unsafe_get marr (b3 + 2) +. (c3 *. g5));
      Array.unsafe_set marr (b3 + 3)
        (Array.unsafe_get marr (b3 + 3) +. (c3 *. g6));
      Array.unsafe_set marr (b3 + 4)
        (Array.unsafe_get marr (b3 + 4) +. (c3 *. g7));
      let b4 = b3 + n + 1 in
      Array.unsafe_set marr b4 (Array.unsafe_get marr b4 +. (c4 *. g4));
      Array.unsafe_set marr (b4 + 1)
        (Array.unsafe_get marr (b4 + 1) +. (c4 *. g5));
      Array.unsafe_set marr (b4 + 2)
        (Array.unsafe_get marr (b4 + 2) +. (c4 *. g6));
      Array.unsafe_set marr (b4 + 3)
        (Array.unsafe_get marr (b4 + 3) +. (c4 *. g7));
      let b5 = b4 + n + 1 in
      Array.unsafe_set marr b5 (Array.unsafe_get marr b5 +. (c5 *. g5));
      Array.unsafe_set marr (b5 + 1)
        (Array.unsafe_get marr (b5 + 1) +. (c5 *. g6));
      Array.unsafe_set marr (b5 + 2)
        (Array.unsafe_get marr (b5 + 2) +. (c5 *. g7));
      let b6 = b5 + n + 1 in
      Array.unsafe_set marr b6 (Array.unsafe_get marr b6 +. (c6 *. g6));
      Array.unsafe_set marr (b6 + 1)
        (Array.unsafe_get marr (b6 + 1) +. (c6 *. g7));
      let b7 = b6 + n + 1 in
      Array.unsafe_set marr b7 (Array.unsafe_get marr b7 +. (c7 *. g7))
    end
    else
      for a = s to e - 1 do
        let ca = di *. Array.unsafe_get gd a in
        let base = ((l + a - s) * n) + l - s in
        for bk = a to e - 1 do
          Array.unsafe_set marr (base + bk)
            (Array.unsafe_get marr (base + bk)
            +. (ca *. Array.unsafe_get gd bk))
        done
      done
  done

(* ------------------------------------------------------------------ *)
(* Options, stats                                                     *)
(* ------------------------------------------------------------------ *)

type kkt = [ `Dense | `Blocks of int array ]

type options = {
  feas_tol : float;
  gap_abs_tol : float;
  gap_rel_tol : float;
  max_iter : int;
  step_frac : float;
  warm_mu : float;
  kkt : kkt;
}

let default_options =
  { feas_tol = 1e-7; gap_abs_tol = 1e-8; gap_rel_tol = 1e-6;
    max_iter = 100; step_frac = 0.98; warm_mu = 0.003; kkt = `Dense }

type stats = {
  iterations : int;
  predictor_steps : int;
  corrector_steps : int;
  factorizations : int;
  jitter_retries : int;
  optimal : int;
  primal_infeasible : int;
  dual_infeasible : int;
  unknown : int;
}

let stats_zero =
  { iterations = 0; predictor_steps = 0; corrector_steps = 0;
    factorizations = 0; jitter_retries = 0; optimal = 0;
    primal_infeasible = 0; dual_infeasible = 0; unknown = 0 }

let stats_add a b =
  {
    iterations = a.iterations + b.iterations;
    predictor_steps = a.predictor_steps + b.predictor_steps;
    corrector_steps = a.corrector_steps + b.corrector_steps;
    factorizations = a.factorizations + b.factorizations;
    jitter_retries = a.jitter_retries + b.jitter_retries;
    optimal = a.optimal + b.optimal;
    primal_infeasible = a.primal_infeasible + b.primal_infeasible;
    dual_infeasible = a.dual_infeasible + b.dual_infeasible;
    unknown = a.unknown + b.unknown;
  }

type solution = {
  x : Vec.t;
  y : Vec.t;
  s : Vec.t;
  z : Vec.t;
  objective_value : float;
  gap : float;
  iterations : int;
}

type status =
  | Optimal of solution
  | Primal_infeasible of { y : Vec.t; z : Vec.t }
  | Dual_infeasible of { x : Vec.t }
  | Unknown of solution

(* ------------------------------------------------------------------ *)
(* Per-solve workspace                                                *)
(* ------------------------------------------------------------------ *)

type kkt_fact = Fact_dense of Chol.t | Fact_blocks of Block_tridiag.t

type ws = {
  mutable t : t;
  (* iterate (internal row order) *)
  x : Vec.t;
  y : Vec.t;
  z : Vec.t;
  s : Vec.t;
  mutable tau : float;
  mutable kappa : float;
  (* residuals *)
  rx : Vec.t;
  ry : Vec.t;
  rz : Vec.t;
  mutable rt : float;
  mutable mu : float;
  mutable norm_rz : float;  (* |rz|_inf, fused into the rz pass *)
  mutable gap_sz : float;  (* s'z, fused into the rz pass *)
  mutable hz_dot : float;  (* h'z, fused into the rz pass *)
  mutable refine_passes : int;
  (* Nesterov-Todd scaling *)
  w_o : Vec.t;  (* orthant sqrt(s/z) *)
  w2inv_o : Vec.t;  (* orthant z/s *)
  dweights : Vec.t;  (* syrk weights, one per internal row *)
  wbar : Vec.t;  (* 3 per SOC block: the unit-hyperboloid point *)
  eta : Vec.t;  (* 1 per SOC block *)
  lam : Vec.t;  (* scaled point lambda = W z *)
  (* KKT *)
  marr : float array;  (* flat n x n accumulator for G' W^-2 G *)
  m_mat : Mat.t;
  fact : kkt_fact;
  bvec : Vec.t;  (* n: SOC rank-one row G_k' (J wbar) *)
  (* per-iteration precomputations for the tau recovery *)
  w2h : Vec.t;  (* W^-2 h *)
  gw2h : Vec.t;  (* G' W^-2 h *)
  gu1x : Vec.t;  (* G u1x *)
  mutable cbh1 : float;  (* c'u1x + b'u1y + h'u1z *)
  (* equality (Schur) path, used only when p > 0 *)
  schur : Mat.t;
  schur_fact : Chol.t;
  minva : Vec.t array;  (* p rows: M^-1 A' columns *)
  (* u1 = K3^-1 (-c, b, h), x/y components only *)
  u1x : Vec.t;
  u1y : Vec.t;
  (* u2 and the search direction *)
  u2x : Vec.t;
  u2y : Vec.t;
  dx : Vec.t;
  dy : Vec.t;
  dz : Vec.t;
  ds : Vec.t;
  mutable dtau : float;
  mutable dkappa : float;
  (* affine (predictor) quantities kept for the corrector *)
  dsa : Vec.t;  (* W^-1 ds_aff *)
  dza : Vec.t;  (* W dz_aff *)
  mutable dtau_a : float;
  mutable dkappa_a : float;
  (* RHS and scratch *)
  rhsn : Vec.t;
  byv : Vec.t;
  bzv : Vec.t;
  rhs5 : Vec.t;
  dst_s : Vec.t;  (* lambda \ rhs5 *)
  tmp_n : Vec.t;
  tmp_q : Vec.t;
  tmp_q2 : Vec.t;
  tmp_p : Vec.t;
  ref_n : Vec.t;
  cor_n : Vec.t;
  (* best iterate seen so far (by residual/gap merit) *)
  best_x : Vec.t;
  best_y : Vec.t;
  best_s : Vec.t;
  best_z : Vec.t;
  mutable best_tau : float;
  mutable best_kappa : float;
  mutable best_merit : float;
  mutable stall_count : int;
  (* problem norms for the stopping tests *)
  mutable norm_c : float;
  mutable norm_b : float;
  mutable norm_h : float;
}

let make_ws t options =
  let n = t.n and p = t.p in
  let q = n_rows t in
  let fact =
    match options.kkt with
    | `Dense -> Fact_dense (Chol.preallocate n)
    | `Blocks sizes ->
        if Array.fold_left ( + ) 0 sizes <> n then
          invalid_arg "Conic.solve: block sizes do not sum to dim";
        Fact_blocks (Block_tridiag.preallocate sizes)
  in
  {
    t;
    x = Vec.zeros n; y = Vec.zeros p; z = Vec.zeros q; s = Vec.zeros q;
    tau = 1.0; kappa = 1.0;
    rx = Vec.zeros n; ry = Vec.zeros p; rz = Vec.zeros q;
    rt = 0.0; mu = 1.0; norm_rz = 0.0; gap_sz = 0.0; hz_dot = 0.0;
    refine_passes = 1;
    w_o = Vec.zeros t.mo; w2inv_o = Vec.zeros t.mo;
    dweights = Vec.zeros q;
    wbar = Vec.zeros (3 * t.nsoc); eta = Vec.zeros t.nsoc;
    lam = Vec.zeros q;
    marr = Array.make (n * n) 0.0;
    m_mat = Mat.zeros n n; fact; bvec = Vec.zeros n;
    w2h = Vec.zeros q; gw2h = Vec.zeros n; gu1x = Vec.zeros q;
    cbh1 = 0.0;
    schur = Mat.zeros p p;
    schur_fact = Chol.preallocate (max 1 p);
    minva = Array.init p (fun _ -> Vec.zeros n);
    u1x = Vec.zeros n; u1y = Vec.zeros p;
    u2x = Vec.zeros n; u2y = Vec.zeros p;
    dx = Vec.zeros n; dy = Vec.zeros p; dz = Vec.zeros q;
    ds = Vec.zeros q;
    dtau = 0.0; dkappa = 0.0;
    dsa = Vec.zeros q; dza = Vec.zeros q;
    dtau_a = 0.0; dkappa_a = 0.0;
    rhsn = Vec.zeros n; byv = Vec.zeros p; bzv = Vec.zeros q;
    rhs5 = Vec.zeros q; dst_s = Vec.zeros q;
    tmp_n = Vec.zeros n; tmp_q = Vec.zeros q; tmp_q2 = Vec.zeros q;
    tmp_p = Vec.zeros p;
    ref_n = Vec.zeros n; cor_n = Vec.zeros n;
    best_x = Vec.zeros n; best_y = Vec.zeros p;
    best_s = Vec.zeros q; best_z = Vec.zeros q;
    best_tau = 1.0; best_kappa = 1.0; best_merit = infinity;
    stall_count = 0;
    norm_c = (if n = 0 then 0.0 else Vec.norm_inf t.c);
    norm_b = (if p = 0 then 0.0 else Vec.norm_inf t.b);
    norm_h = (if q = 0 then 0.0 else Vec.norm_inf t.hi);
  }

type workspace = ws

let make_workspace ?(kkt = `Dense) t =
  make_ws t { default_options with kkt }

(* Re-point a preallocated workspace at a (structurally identical)
   instance: everything array-shaped is overwritten by the first
   iteration, so only the instance pointer, the problem norms, and the
   cross-iteration scalars need resetting. *)
let rebind_ws st t =
  if
    st.t.n <> t.n || st.t.p <> t.p || st.t.mo <> t.mo
    || st.t.nsoc <> t.nsoc
  then invalid_arg "Conic.solve: workspace shape mismatch";
  st.t <- t;
  st.norm_c <- (if t.n = 0 then 0.0 else Vec.norm_inf t.c);
  st.norm_b <- (if t.p = 0 then 0.0 else Vec.norm_inf t.b);
  st.norm_h <- (if n_rows t = 0 then 0.0 else Vec.norm_inf t.hi);
  st.refine_passes <- 1;
  st.mu <- 1.0;
  st.best_tau <- 1.0;
  st.best_kappa <- 1.0;
  st.best_merit <- infinity;
  st.stall_count <- 0

(* ------------------------------------------------------------------ *)
(* Scaling and Jordan-algebra kernels (internal row order)            *)
(* ------------------------------------------------------------------ *)

(* dst := W u.  Orthant: diag(w_o); SOC block: eta * Wbar with
   Wbar v = (wb0 v0 + wb' v', v' + wb (v0 + (wb' v')/(1 + wb0))).
   Safe when dst == u (components are read into locals first). *)
(* dst := W^-2 u.  Orthant: diag(z/s); SOC: with v = J wbar,
   (Wbar^2)^-1 = 2 v v' - J, so dst = eta^-2 (2 v (v'u) - J u).
   Safe when dst == u. *)
let apply_w2inv st u ~dst =
  let t = st.t in
  for i = 0 to t.mo - 1 do
    dst.(i) <- st.w2inv_o.(i) *. u.(i)
  done;
  for k = 0 to t.nsoc - 1 do
    let r0 = t.mo + (3 * k) and wb = 3 * k in
    let wb0 = st.wbar.(wb)
    and wb1 = st.wbar.(wb + 1)
    and wb2 = st.wbar.(wb + 2) in
    let e = st.eta.(k) in
    let e2inv = 1.0 /. (e *. e) in
    let u0 = u.(r0) and u1 = u.(r0 + 1) and u2 = u.(r0 + 2) in
    let d = (wb0 *. u0) -. (wb1 *. u1) -. (wb2 *. u2) in
    dst.(r0) <- e2inv *. ((2.0 *. wb0 *. d) -. u0);
    dst.(r0 + 1) <- e2inv *. ((-2.0 *. wb1 *. d) +. u1);
    dst.(r0 + 2) <- e2inv *. ((-2.0 *. wb2 *. d) +. u2)
  done

(* dst := G' (W^-2 v) in one sweep: the orthant scaling is diagonal,
   so it folds into the row coefficient for free; the few SOC blocks
   are pre-scaled into the SOC slots of tmp_q first.  Saves a full
   q-length pass over apply_w2inv + g_tmulvec in both direction
   builds. *)
let g_tmulvec_w2inv st v ~dst =
  let t = st.t in
  for k = 0 to t.nsoc - 1 do
    let r0 = t.mo + (3 * k) and wb = 3 * k in
    let wb0 = st.wbar.(wb)
    and wb1 = st.wbar.(wb + 1)
    and wb2 = st.wbar.(wb + 2) in
    let e = st.eta.(k) in
    let e2inv = 1.0 /. (e *. e) in
    let u0 = v.(r0) and u1 = v.(r0 + 1) and u2 = v.(r0 + 2) in
    let d = (wb0 *. u0) -. (wb1 *. u1) -. (wb2 *. u2) in
    st.tmp_q.(r0) <- e2inv *. ((2.0 *. wb0 *. d) -. u0);
    st.tmp_q.(r0 + 1) <- e2inv *. ((-2.0 *. wb1 *. d) +. u1);
    st.tmp_q.(r0 + 2) <- e2inv *. ((-2.0 *. wb2 *. d) +. u2)
  done;
  Vec.fill dst 0.0;
  let gd = t.gdata and off = t.goff and lo = t.glo in
  let w2 = st.w2inv_o and tq = st.tmp_q and mo = t.mo in
  for i = 0 to Array.length lo - 1 do
    let vi =
      if i < mo then Array.unsafe_get w2 i *. Array.unsafe_get v i
      else Array.unsafe_get tq i
    in
    let s = Array.unsafe_get off i in
    let e = Array.unsafe_get off (i + 1) in
    let l = Array.unsafe_get lo i in
    if e - s = 8 then begin
      Array.unsafe_set dst l
        (Array.unsafe_get dst l +. (vi *. Array.unsafe_get gd s));
      Array.unsafe_set dst (l + 1)
        (Array.unsafe_get dst (l + 1)
        +. (vi *. Array.unsafe_get gd (s + 1)));
      Array.unsafe_set dst (l + 2)
        (Array.unsafe_get dst (l + 2)
        +. (vi *. Array.unsafe_get gd (s + 2)));
      Array.unsafe_set dst (l + 3)
        (Array.unsafe_get dst (l + 3)
        +. (vi *. Array.unsafe_get gd (s + 3)));
      Array.unsafe_set dst (l + 4)
        (Array.unsafe_get dst (l + 4)
        +. (vi *. Array.unsafe_get gd (s + 4)));
      Array.unsafe_set dst (l + 5)
        (Array.unsafe_get dst (l + 5)
        +. (vi *. Array.unsafe_get gd (s + 5)));
      Array.unsafe_set dst (l + 6)
        (Array.unsafe_get dst (l + 6)
        +. (vi *. Array.unsafe_get gd (s + 6)));
      Array.unsafe_set dst (l + 7)
        (Array.unsafe_get dst (l + 7)
        +. (vi *. Array.unsafe_get gd (s + 7)))
    end
    else begin
      let sh = l - s in
      for k = s to e - 1 do
        Array.unsafe_set dst (sh + k)
          (Array.unsafe_get dst (sh + k)
          +. (vi *. Array.unsafe_get gd k))
      done
    end
  done

(* Compute the NT scaling at the current (s, z) and the scaled point
   lambda = W z, plus the per-row syrk weights for the diagonal part
   of W^-2 (the SOC rank-one correction is added in assemble_m). *)
let compute_scaling st =
  let t = st.t in
  let s = st.s and z = st.z and wo = st.w_o and w2 = st.w2inv_o in
  let dw = st.dweights and lam = st.lam in
  for i = 0 to t.mo - 1 do
    let si = Array.unsafe_get s i and zi = Array.unsafe_get z i in
    let w = sqrt (si /. zi) in
    let w2i = zi /. si in
    Array.unsafe_set wo i w;
    Array.unsafe_set w2 i w2i;
    Array.unsafe_set dw i w2i;
    Array.unsafe_set lam i (w *. zi)
  done;
  for k = 0 to t.nsoc - 1 do
    let r0 = t.mo + (3 * k) and wb = 3 * k in
    let s0 = st.s.(r0) and s1 = st.s.(r0 + 1) and s2 = st.s.(r0 + 2) in
    let z0 = st.z.(r0) and z1 = st.z.(r0 + 1) and z2 = st.z.(r0 + 2) in
    let rs = (s0 *. s0) -. (s1 *. s1) -. (s2 *. s2) in
    let rz = (z0 *. z0) -. (z1 *. z1) -. (z2 *. z2) in
    let srs = sqrt rs and srz = sqrt rz in
    let sb0 = s0 /. srs and sb1 = s1 /. srs and sb2 = s2 /. srs in
    let zb0 = z0 /. srz and zb1 = z1 /. srz and zb2 = z2 /. srz in
    let szdot = (sb0 *. zb0) +. (sb1 *. zb1) +. (sb2 *. zb2) in
    let gamma = sqrt ((1.0 +. szdot) /. 2.0) in
    st.wbar.(wb) <- (sb0 +. zb0) /. (2.0 *. gamma);
    st.wbar.(wb + 1) <- (sb1 -. zb1) /. (2.0 *. gamma);
    st.wbar.(wb + 2) <- (sb2 -. zb2) /. (2.0 *. gamma);
    let e = sqrt (sqrt (rs /. rz)) in
    st.eta.(k) <- e;
    let e2inv = 1.0 /. (e *. e) in
    st.dweights.(r0) <- -.e2inv;
    st.dweights.(r0 + 1) <- e2inv;
    st.dweights.(r0 + 2) <- e2inv;
    let wb0' = st.wbar.(wb)
    and wb1' = st.wbar.(wb + 1)
    and wb2' = st.wbar.(wb + 2) in
    let d = (wb1' *. z1) +. (wb2' *. z2) in
    let f = z0 +. (d /. (1.0 +. wb0')) in
    lam.(r0) <- e *. ((wb0' *. z0) +. d);
    lam.(r0 + 1) <- e *. (z1 +. (wb1' *. f));
    lam.(r0 + 2) <- e *. (z2 +. (wb2' *. f))
  done

(* M := G' W^-2 G, accumulated in the flat upper-triangle buffer: one
   ranged syrk with the diagonal weights (orthant z/s; SOC -eta^-2 on
   the leading row, +eta^-2 on the rest, the "-J" part of
   (Wbar^2)^-1), then a rank-one correction 2 eta^-2 b b' per SOC
   block with b = G_k' (J wbar), supported on the union stripe of the
   block's rows.  The lower triangle of m_mat is what {!Chol} and
   {!Block_tridiag} read, so the copy-out transposes. *)
let assemble_m st =
  let t = st.t in
  let n = t.n in
  Array.fill st.marr 0 (n * n) 0.0;
  g_syrk t st.dweights ~marr:st.marr;
  for k = 0 to t.nsoc - 1 do
    let r0 = t.mo + (3 * k) and wb = 3 * k in
    let wb0 = st.wbar.(wb)
    and wb1 = st.wbar.(wb + 1)
    and wb2 = st.wbar.(wb + 2) in
    let lo = ref n and hi = ref 0 in
    for rr = r0 to r0 + 2 do
      let l = t.glo.(rr) and len = t.goff.(rr + 1) - t.goff.(rr) in
      if len > 0 then begin
        if l < !lo then lo := l;
        if l + len > !hi then hi := l + len
      end
    done;
    if !hi > !lo then begin
      for j = !lo to !hi - 1 do
        st.bvec.(j) <- 0.0
      done;
      let add coeff rr =
        let s0 = t.goff.(rr) in
        let sh = t.glo.(rr) - s0 in
        for kk = s0 to t.goff.(rr + 1) - 1 do
          st.bvec.(sh + kk) <- st.bvec.(sh + kk) +. (coeff *. t.gdata.(kk))
        done
      in
      add wb0 r0;
      add (-.wb1) (r0 + 1);
      add (-.wb2) (r0 + 2);
      let e = st.eta.(k) in
      let c2 = 2.0 /. (e *. e) in
      for a = !lo to !hi - 1 do
        let ca = c2 *. st.bvec.(a) in
        let base = a * n in
        for b2 = a to !hi - 1 do
          st.marr.(base + b2) <- st.marr.(base + b2) +. (ca *. st.bvec.(b2))
        done
      done
    end
  done;
  for i = 0 to n - 1 do
    for j = 0 to i do
      Mat.set st.m_mat i j st.marr.((j * n) + i)
    done
  done

let factorize_m st =
  match st.fact with
  | Fact_dense f ->
      let _jitter, tries = Chol.factorize_jittered_into f st.m_mat in
      tries
  | Fact_blocks f ->
      let _jitter, tries = Block_tridiag.factorize_jittered_into f st.m_mat in
      tries

let solve_m st v ~dst =
  match st.fact with
  | Fact_dense f -> Chol.solve_factorized_into f v ~dst
  | Fact_blocks f -> Block_tridiag.solve_factorized_into f v ~dst

(* Schur complement S = A M^-1 A' for the equality rows; factorized
   once per iteration (only when p > 0). *)
let build_schur st =
  let t = st.t in
  for i = 0 to t.p - 1 do
    for j = 0 to t.n - 1 do
      st.tmp_n.(j) <- Mat.get t.a i j
    done;
    solve_m st st.tmp_n ~dst:st.minva.(i)
  done;
  for i = 0 to t.p - 1 do
    for j = 0 to t.p - 1 do
      let acc = ref 0.0 in
      for l = 0 to t.n - 1 do
        acc := !acc +. (Mat.get t.a i l *. st.minva.(j).(l))
      done;
      Mat.set st.schur i j !acc
    done
  done;
  let _jitter, tries = Chol.factorize_jittered_into st.schur_fact st.schur in
  tries

(* Solve the (x, y) block of K3 (ox, oy, oz) = (r1, r2, r3), where
     K3 = [ 0  A'  G' ; A  0  0 ; G  0  -W^2 ],
   given the pre-assembled normal-equations RHS
     rhsn = r1 + G' W^-2 r3
   (M ox + A' oy = rhsn, A ox = r2; Schur when p > 0).  oz is never
   materialized here: directions recover dz from the final dx, and
   the tau recovery accumulates h'oz elementwise.  [r1 = r1s * r1v]
   and [r3] are the original first- and third-block RHS, needed for
   iterative refinement against the {e true} residual
     r1 - G' W^-2 (G ox - r3):
   the difference (G ox - r3) is formed elementwise before the W^-2
   amplification, so this catches both the O(wbar0^2 eps) error in
   the assembled M and the cancellation incurred assembling rhsn —
   either alone destabilizes the last decades of mu. *)
let solve_xy st ~r1s ~r1v ~r3 ~r2 ~ox ~oy =
  let t = st.t in
  if t.p = 0 then begin
    solve_m st st.rhsn ~dst:ox;
    for _pass = 1 to st.refine_passes do
      g_mulvec t ox ~dst:st.tmp_q2;
      let q = t.mo + (3 * t.nsoc) in
      let tq2 = st.tmp_q2 in
      for j = 0 to q - 1 do
        Array.unsafe_set tq2 j (Array.unsafe_get tq2 j -. Array.unsafe_get r3 j)
      done;
      g_tmulvec_w2inv st st.tmp_q2 ~dst:st.ref_n;
      for j = 0 to t.n - 1 do
        st.ref_n.(j) <- (r1s *. r1v.(j)) -. st.ref_n.(j)
      done;
      solve_m st st.ref_n ~dst:st.cor_n;
      Vec.axpy_into ~dst:ox 1.0 st.cor_n
    done
  end
  else begin
    ignore r1s;
    ignore r1v;
    ignore r3;
    solve_m st st.rhsn ~dst:st.tmp_n;
    Mat.gemv_into t.a st.tmp_n ~dst:st.tmp_p;
    Vec.axpy_into ~dst:st.tmp_p (-1.0) r2;
    Chol.solve_factorized_into st.schur_fact st.tmp_p ~dst:oy;
    Vec.blit ~src:st.rhsn ~dst:ox;
    Mat.gemv_into ~trans:true ~alpha:(-1.0) ~beta:1.0 t.a oy ~dst:ox;
    solve_m st ox ~dst:ox
  end

(* Per-iteration precomputations once the factorization is ready:
   W^-2 h, G'W^-2 h, and u1 = K3^-1 (-c, b, h), whose
   normal-equations RHS is exactly gw2h - c.  G u1x is kept so that
   h'u1z = sum_j w2h_j ((G u1x)_j - h_j) is accumulated elementwise
   — differencing the two large dots gw2h'u1x and h'W^-2 h instead
   cancels catastrophically once the active-set scalings blow up —
   and so the direction recovery can form G dx without a matvec. *)
let prepare_tau_recovery st =
  let t = st.t in
  apply_w2inv st t.hi ~dst:st.w2h;
  g_tmulvec t st.w2h ~dst:st.gw2h;
  for j = 0 to t.n - 1 do
    st.rhsn.(j) <- st.gw2h.(j) -. t.c.(j)
  done;
  solve_xy st ~r1s:(-1.0) ~r1v:t.c ~r3:t.hi ~r2:t.b ~ox:st.u1x
    ~oy:st.u1y;
  g_mulvec t st.u1x ~dst:st.gu1x;
  let q = t.mo + (3 * t.nsoc) in
  let hz1 = ref 0.0 in
  for j = 0 to q - 1 do
    hz1 := !hz1 +. (st.w2h.(j) *. (st.gu1x.(j) -. t.hi.(j)))
  done;
  st.cbh1 <-
    Vec.dot t.c st.u1x
    +. (if t.p = 0 then 0.0 else Vec.dot t.b st.u1y)
    +. !hz1

(* ------------------------------------------------------------------ *)
(* Residuals, step lengths                                            *)
(* ------------------------------------------------------------------ *)

(* HSDE residuals at the current iterate:
     rx = A'y + G'z + c tau        rz = G x + s - h tau
     ry = A x - b tau              rt = c'x + b'y + h'z + kappa
   and the complementarity measure mu = (s'z + tau kappa)/(deg + 1). *)
let compute_residuals st =
  let t = st.t in
  g_tmulvec t st.z ~dst:st.rx;
  if t.p > 0 then Mat.gemv_into ~trans:true ~beta:1.0 t.a st.y ~dst:st.rx;
  Vec.axpy_into ~dst:st.rx st.tau t.c;
  if t.p > 0 then begin
    Mat.gemv_into t.a st.x ~dst:st.ry;
    Vec.axpy_into ~dst:st.ry (-.st.tau) t.b
  end;
  g_mulvec t st.x ~dst:st.rz;
  (* One fused pass: assemble rz and pick up |rz|_inf, h'z and s'z
     along the way (the stopping tests and rt/mu reuse them). *)
  let q = t.mo + (3 * t.nsoc) in
  let rz = st.rz and s = st.s and z = st.z and hi = t.hi in
  let tau = st.tau in
  let nrz = ref 0.0 and hz = ref 0.0 and sz = ref 0.0 in
  for j = 0 to q - 1 do
    let sj = Array.unsafe_get s j
    and zj = Array.unsafe_get z j
    and hj = Array.unsafe_get hi j in
    let r = Array.unsafe_get rz j +. sj -. (tau *. hj) in
    Array.unsafe_set rz j r;
    let a = abs_float r in
    if a > !nrz then nrz := a;
    hz := !hz +. (hj *. zj);
    sz := !sz +. (sj *. zj)
  done;
  st.norm_rz <- !nrz;
  st.gap_sz <- !sz;
  st.hz_dot <- !hz;
  st.rt <-
    Vec.dot t.c st.x
    +. (if t.p = 0 then 0.0 else Vec.dot t.b st.y)
    +. !hz +. st.kappa;
  let deg = float_of_int (t.mo + t.nsoc) in
  st.mu <- (!sz +. (st.tau *. st.kappa)) /. (deg +. 1.0)

(* Largest alpha with v + alpha dv still in the cone, for one SOC
   block: the smallest positive root of
   rho(v + alpha dv) = a alpha^2 + 2 b alpha + c0 (c0 > 0). *)
let soc_max_step ~v0 ~v1 ~v2 ~d0 ~d1 ~d2 =
  let a = (d0 *. d0) -. (d1 *. d1) -. (d2 *. d2) in
  let b = (v0 *. d0) -. (v1 *. d1) -. (v2 *. d2) in
  let c0 = (v0 *. v0) -. (v1 *. v1) -. (v2 *. v2) in
  let tiny = 1e-14 *. (abs_float a +. abs_float b +. 1.0) in
  if abs_float a <= tiny then
    if b < 0.0 then -.c0 /. (2.0 *. b) else infinity
  else
    let disc = (b *. b) -. (a *. c0) in
    if a < 0.0 then ((-.b) -. sqrt disc) /. a
    else if disc < 0.0 || b >= 0.0 then infinity
    else ((-.b) -. sqrt disc) /. a

(* Largest feasible step for (s, ds), (z, dz), tau and kappa. *)
let max_step st =
  let t = st.t in
  let alpha = ref infinity in
  let bound v d = if d < 0.0 && -.v /. d < !alpha then alpha := -.v /. d in
  let s = st.s and z = st.z and ds = st.ds and dz = st.dz in
  for i = 0 to t.mo - 1 do
    let d = Array.unsafe_get ds i in
    if d < 0.0 then begin
      let r = -.Array.unsafe_get s i /. d in
      if r < !alpha then alpha := r
    end;
    let d = Array.unsafe_get dz i in
    if d < 0.0 then begin
      let r = -.Array.unsafe_get z i /. d in
      if r < !alpha then alpha := r
    end
  done;
  for k = 0 to t.nsoc - 1 do
    let r0 = t.mo + (3 * k) in
    let a_s =
      soc_max_step ~v0:st.s.(r0) ~v1:st.s.(r0 + 1) ~v2:st.s.(r0 + 2)
        ~d0:st.ds.(r0) ~d1:st.ds.(r0 + 1) ~d2:st.ds.(r0 + 2)
    in
    if a_s < !alpha then alpha := a_s;
    let a_z =
      soc_max_step ~v0:st.z.(r0) ~v1:st.z.(r0 + 1) ~v2:st.z.(r0 + 2)
        ~d0:st.dz.(r0) ~d1:st.dz.(r0 + 1) ~d2:st.dz.(r0 + 2)
    in
    if a_z < !alpha then alpha := a_z
  done;
  bound st.tau st.dtau;
  bound st.kappa st.dkappa;
  !alpha

(* ------------------------------------------------------------------ *)
(* Predictor / corrector steps (hot kernels; see lint.manifest)       *)
(* ------------------------------------------------------------------ *)

(* Shared tail of both steps.  On entry: rhsn/byv hold the (x, y) RHS,
   bzv the z RHS of the Newton system, dst_s the scaled
   complementarity direction lambda \ rhs5, and (bt, btk) the tau and
   tau-kappa RHS.  Solves for (u2x, u2y), recovers dtau from the
   precomputed u1/tau quantities, combines dx = u2x + dtau u1x, and
   reconstructs dz = W^-2 (G dx - bzv - dtau h) and
   ds = W (dst_s - W dz); W dz and W^-1 ds land in dza/dsa, which is
   exactly what the corrector's Gamma term needs from the predictor. *)
let recover_direction st ~r1s ~bt ~btk =
  let t = st.t in
  let q = t.mo + (3 * t.nsoc) in
  solve_xy st ~r1s ~r1v:st.rx ~r3:st.bzv ~r2:st.byv ~ox:st.u2x
    ~oy:st.u2y;
  g_mulvec t st.u2x ~dst:st.tmp_q2;
  let hz2 = ref 0.0 in
  for j = 0 to q - 1 do
    hz2 := !hz2 +. (st.w2h.(j) *. (st.tmp_q2.(j) -. st.bzv.(j)))
  done;
  let c2 =
    Vec.dot t.c st.u2x
    +. (if t.p = 0 then 0.0 else Vec.dot t.b st.u2y)
    +. !hz2
  in
  let dtau =
    (bt -. (btk /. st.tau) -. c2) /. (st.cbh1 -. (st.kappa /. st.tau))
  in
  st.dtau <- dtau;
  st.dkappa <- (btk -. (st.kappa *. dtau)) /. st.tau;
  for j = 0 to t.n - 1 do
    st.dx.(j) <- st.u2x.(j) +. (dtau *. st.u1x.(j))
  done;
  for j = 0 to t.p - 1 do
    st.dy.(j) <- st.u2y.(j) +. (dtau *. st.u1y.(j))
  done;
  (* Reconstruct dz = W^-2 (G dx - bzv - dtau h), dza = W dz,
     dsa = dst_s - dza and ds = W dsa in a single fused pass over the
     orthant rows (all four scalings are diagonal there) plus a short
     loop over the SOC blocks. *)
  let tq2 = st.tmp_q2 and gu1 = st.gu1x and bzv = st.bzv and hi = t.hi in
  let dz = st.dz and dza = st.dza and dsa = st.dsa and ds = st.ds in
  let dss = st.dst_s and w2 = st.w2inv_o and wo = st.w_o in
  for j = 0 to t.mo - 1 do
    let t2 =
      Array.unsafe_get tq2 j
      +. (dtau *. Array.unsafe_get gu1 j)
      -. Array.unsafe_get bzv j
      -. (dtau *. Array.unsafe_get hi j)
    in
    let dzj = Array.unsafe_get w2 j *. t2 in
    let w = Array.unsafe_get wo j in
    let dzaj = w *. dzj in
    let dsaj = Array.unsafe_get dss j -. dzaj in
    Array.unsafe_set dz j dzj;
    Array.unsafe_set dza j dzaj;
    Array.unsafe_set dsa j dsaj;
    Array.unsafe_set ds j (w *. dsaj)
  done;
  for k = 0 to t.nsoc - 1 do
    let r0 = t.mo + (3 * k) and wb = 3 * k in
    let wb0 = st.wbar.(wb)
    and wb1 = st.wbar.(wb + 1)
    and wb2 = st.wbar.(wb + 2) in
    let e = st.eta.(k) in
    let e2inv = 1.0 /. (e *. e) in
    let t20 =
      tq2.(r0) +. (dtau *. gu1.(r0)) -. bzv.(r0) -. (dtau *. hi.(r0))
    and t21 =
      tq2.(r0 + 1) +. (dtau *. gu1.(r0 + 1)) -. bzv.(r0 + 1)
      -. (dtau *. hi.(r0 + 1))
    and t22 =
      tq2.(r0 + 2) +. (dtau *. gu1.(r0 + 2)) -. bzv.(r0 + 2)
      -. (dtau *. hi.(r0 + 2))
    in
    let d = (wb0 *. t20) -. (wb1 *. t21) -. (wb2 *. t22) in
    let dz0 = e2inv *. ((2.0 *. wb0 *. d) -. t20)
    and dz1 = e2inv *. ((-2.0 *. wb1 *. d) +. t21)
    and dz2 = e2inv *. ((-2.0 *. wb2 *. d) +. t22) in
    dz.(r0) <- dz0;
    dz.(r0 + 1) <- dz1;
    dz.(r0 + 2) <- dz2;
    let dd = (wb1 *. dz1) +. (wb2 *. dz2) in
    let f = dz0 +. (dd /. (1.0 +. wb0)) in
    let dza0 = e *. ((wb0 *. dz0) +. dd)
    and dza1 = e *. (dz1 +. (wb1 *. f))
    and dza2 = e *. (dz2 +. (wb2 *. f)) in
    dza.(r0) <- dza0;
    dza.(r0 + 1) <- dza1;
    dza.(r0 + 2) <- dza2;
    let dsa0 = dss.(r0) -. dza0
    and dsa1 = dss.(r0 + 1) -. dza1
    and dsa2 = dss.(r0 + 2) -. dza2 in
    dsa.(r0) <- dsa0;
    dsa.(r0 + 1) <- dsa1;
    dsa.(r0 + 2) <- dsa2;
    let dd2 = (wb1 *. dsa1) +. (wb2 *. dsa2) in
    let f2 = dsa0 +. (dd2 /. (1.0 +. wb0)) in
    ds.(r0) <- e *. ((wb0 *. dsa0) +. dd2);
    ds.(r0 + 1) <- e *. (dsa1 +. (wb1 *. f2));
    ds.(r0 + 2) <- e *. (dsa2 +. (wb2 *. f2))
  done

(* Affine-scaling (predictor) direction: Newton towards mu = 0, i.e.
   full residual RHS and lambda o (W dz + W^-1 ds) = -lambda o lambda,
   so dst_s = -lambda and the z RHS is -rz - W dst_s = s - rz (W
   lambda = W^2 z = s, exact for the NT scaling).  Returns the
   unscaled step to the boundary, capped at 1, which sets sigma. *)
let predictor_step st =
  let t = st.t in
  let q = t.mo + (3 * t.nsoc) in
  for j = 0 to q - 1 do
    st.dst_s.(j) <- -.st.lam.(j);
    st.bzv.(j) <- st.s.(j) -. st.rz.(j)
  done;
  for j = 0 to t.p - 1 do
    st.byv.(j) <- -.st.ry.(j)
  done;
  g_tmulvec_w2inv st st.bzv ~dst:st.rhsn;
  Vec.axpy_into ~dst:st.rhsn (-1.0) st.rx;
  recover_direction st ~r1s:(-1.0) ~bt:(-.st.rt)
    ~btk:(-.(st.tau *. st.kappa));
  st.dtau_a <- st.dtau;
  st.dkappa_a <- st.dkappa;
  let a = max_step st in
  if a < 1.0 then a else 1.0

(* Mehrotra corrector: recenter towards sigma mu and cancel the
   second-order term Gamma = (W^-1 ds_aff) o (W dz_aff); the linear
   residuals are scaled by (1 - sigma).  Returns the step to the
   boundary for the combined direction. *)
let corrector_step st ~sigma =
  let t = st.t in
  let q = t.mo + (3 * t.nsoc) in
  let smu = sigma *. st.mu in
  let sc = 1.0 -. sigma in
  ignore q;
  (* One fused pass builds rhs5 = sigma mu e - lam o lam - Gamma,
     divides by lam and maps the result through W straight into the z
     RHS: orthant rows are all diagonal; each SOC block inlines the
     Jordan product/division and the W apply. *)
  let lam = st.lam and dsa = st.dsa and dza = st.dza in
  let dss = st.dst_s and bzv = st.bzv and rz = st.rz and wo = st.w_o in
  for i = 0 to t.mo - 1 do
    let l = Array.unsafe_get lam i in
    let r5 =
      smu -. (l *. l)
      -. (Array.unsafe_get dsa i *. Array.unsafe_get dza i)
    in
    let d = r5 /. l in
    Array.unsafe_set dss i d;
    Array.unsafe_set bzv i
      ((-.sc *. Array.unsafe_get rz i) -. (Array.unsafe_get wo i *. d))
  done;
  for k = 0 to t.nsoc - 1 do
    let r0 = t.mo + (3 * k) and wb = 3 * k in
    let l0 = lam.(r0) and l1 = lam.(r0 + 1) and l2 = lam.(r0 + 2) in
    let a0 = dsa.(r0) and a1 = dsa.(r0 + 1) and a2 = dsa.(r0 + 2) in
    let b0 = dza.(r0) and b1 = dza.(r0 + 1) and b2 = dza.(r0 + 2) in
    let r50 =
      smu -. ((l0 *. l0) +. (l1 *. l1) +. (l2 *. l2))
      -. ((a0 *. b0) +. (a1 *. b1) +. (a2 *. b2))
    and r51 = -.(2.0 *. l0 *. l1) -. ((a0 *. b1) +. (b0 *. a1))
    and r52 = -.(2.0 *. l0 *. l2) -. ((a0 *. b2) +. (b0 *. a2)) in
    let det = (l0 *. l0) -. (l1 *. l1) -. (l2 *. l2) in
    let u0 = ((l0 *. r50) -. (l1 *. r51) -. (l2 *. r52)) /. det in
    let u1 = (r51 -. (u0 *. l1)) /. l0
    and u2 = (r52 -. (u0 *. l2)) /. l0 in
    dss.(r0) <- u0;
    dss.(r0 + 1) <- u1;
    dss.(r0 + 2) <- u2;
    let wb0 = st.wbar.(wb)
    and wb1 = st.wbar.(wb + 1)
    and wb2 = st.wbar.(wb + 2) in
    let e = st.eta.(k) in
    let dd = (wb1 *. u1) +. (wb2 *. u2) in
    let f = u0 +. (dd /. (1.0 +. wb0)) in
    bzv.(r0) <- (-.sc *. rz.(r0)) -. (e *. ((wb0 *. u0) +. dd));
    bzv.(r0 + 1) <- (-.sc *. rz.(r0 + 1)) -. (e *. (u1 +. (wb1 *. f)));
    bzv.(r0 + 2) <- (-.sc *. rz.(r0 + 2)) -. (e *. (u2 +. (wb2 *. f)))
  done;
  for j = 0 to t.p - 1 do
    st.byv.(j) <- -.sc *. st.ry.(j)
  done;
  g_tmulvec_w2inv st st.bzv ~dst:st.rhsn;
  Vec.axpy_into ~dst:st.rhsn (-.sc) st.rx;
  let btk =
    -.(st.tau *. st.kappa) +. smu -. (st.dtau_a *. st.dkappa_a)
  in
  recover_direction st ~r1s:(-.sc) ~bt:(-.sc *. st.rt) ~btk;
  max_step st

(* ------------------------------------------------------------------ *)
(* Initialization, termination                                        *)
(* ------------------------------------------------------------------ *)

(* Cold start: the canonical central point of each cone (internal
   form: all-ones orthant, (1, 0, 0) per SOC block) for both s and z,
   x = y = 0, tau = kappa = 1 — so mu = 1 exactly. *)
let init_cold st =
  let t = st.t in
  Vec.fill st.x 0.0;
  Vec.fill st.y 0.0;
  for i = 0 to t.mo - 1 do
    st.s.(i) <- 1.0;
    st.z.(i) <- 1.0
  done;
  for k = 0 to t.nsoc - 1 do
    let r0 = t.mo + (3 * k) in
    st.s.(r0) <- 1.0; st.s.(r0 + 1) <- 0.0; st.s.(r0 + 2) <- 0.0;
    st.z.(r0) <- 1.0; st.z.(r0 + 1) <- 0.0; st.z.(r0 + 2) <- 0.0
  done;
  st.tau <- 1.0;
  st.kappa <- 1.0

(* Warm start from a primal seed: s = h - G x pushed strictly inside
   the cone, z on the central path at mu0 = warm_mu (per cone
   z = -(mu0/nu') grad F(s), normalized so s'z = mu0 per cone), and
   kappa = mu0 so the complementarity measure starts at mu0 < 1.

   With a dual seed (a neighbouring solve's constraint multipliers,
   in the of_barrier constraint order), z is rebuilt from it instead
   of placed on the central path: an orthant row takes the seed
   multiplier floored at mu0 / s_i (so inactive rows still sit on the
   central path at mu0 rather than contributing huge s_i z_i
   products), and an Epi_square block's full dual is pinned by
   complementarity — z = 2 lam (v, u, -w) up to the internal rotation
   — from its single seed multiplier lam and the lift values already
   in s.  The pair then starts (approximately) complementary and
   stationary for the instance the seed came from; that pays off when
   the active set carries over, and loses a few iterations to the
   central-path dual when it does not (the thermal sweep's moving
   floor is the latter case, so Offline seeds the primal only). *)
let init_warm st seed ~dual ~mu0 =
  let t = st.t in
  Vec.blit ~src:seed ~dst:st.x;
  Vec.fill st.y 0.0;
  g_mulvec t st.x ~dst:st.s;
  let q = t.mo + (3 * t.nsoc) in
  for j = 0 to q - 1 do
    st.s.(j) <- t.hi.(j) -. st.s.(j)
  done;
  let margin = 1e-3 in
  for i = 0 to t.mo - 1 do
    if st.s.(i) < margin then st.s.(i) <- margin
  done;
  for k = 0 to t.nsoc - 1 do
    let r0 = t.mo + (3 * k) in
    let s1 = st.s.(r0 + 1) and s2 = st.s.(r0 + 2) in
    let nrm = sqrt ((s1 *. s1) +. (s2 *. s2)) in
    if st.s.(r0) < nrm +. margin then st.s.(r0) <- nrm +. margin
  done;
  (match dual with
  | Some lam ->
      Array.iteri
        (fun j dm ->
          let l = lam.(j) in
          match dm with
          | Dual_orth i ->
              st.z.(i) <- Float.max l (mu0 /. st.s.(i))
          | Dual_soc k ->
              let r0 = t.mo + (3 * k) in
              let s0 = st.s.(r0) and s1 = st.s.(r0 + 1) in
              let u = inv_sqrt2 *. (s0 +. s1) and w = st.s.(r0 + 2) in
              let l = Float.max l 0.0 in
              let z0 = inv_sqrt2 *. l *. (1.0 +. (2.0 *. u)) in
              let z1 = inv_sqrt2 *. l *. (1.0 -. (2.0 *. u)) in
              let z2 = -2.0 *. l *. w in
              let nrm = sqrt ((z1 *. z1) +. (z2 *. z2)) in
              let z0 =
                Float.max z0 (nrm +. (mu0 /. s0))
              in
              st.z.(r0) <- z0;
              st.z.(r0 + 1) <- z1;
              st.z.(r0 + 2) <- z2)
        t.duals_map
  | None ->
      for i = 0 to t.mo - 1 do
        st.z.(i) <- mu0 /. st.s.(i)
      done;
      for k = 0 to t.nsoc - 1 do
        let r0 = t.mo + (3 * k) in
        let s0 = st.s.(r0) and s1 = st.s.(r0 + 1) and s2 = st.s.(r0 + 2) in
        let rho = (s0 *. s0) -. (s1 *. s1) -. (s2 *. s2) in
        st.z.(r0) <- mu0 *. s0 /. rho;
        st.z.(r0 + 1) <- -.mu0 *. s1 /. rho;
        st.z.(r0 + 2) <- -.mu0 *. s2 /. rho
      done);
  st.tau <- 1.0;
  st.kappa <- mu0

(* Rotate the internal slack/dual back to the caller's row order and
   tau-normalize everything into a solution record. *)
let extract_solution st ~iterations =
  let t = st.t in
  let q = t.mo + (3 * t.nsoc) in
  let inv_tau = 1.0 /. st.tau in
  let s = Vec.zeros q and z = Vec.zeros q in
  for i = 0 to t.mo - 1 do
    let e = t.orth_ext.(i) in
    s.(e) <- st.s.(i) *. inv_tau;
    z.(e) <- st.z.(i) *. inv_tau
  done;
  for k = 0 to t.nsoc - 1 do
    let r0 = t.mo + (3 * k) and e = t.soc_ext.(k) in
    s.(e) <- inv_sqrt2 *. (st.s.(r0) +. st.s.(r0 + 1)) *. inv_tau;
    s.(e + 1) <- inv_sqrt2 *. (st.s.(r0) -. st.s.(r0 + 1)) *. inv_tau;
    s.(e + 2) <- st.s.(r0 + 2) *. inv_tau;
    z.(e) <- inv_sqrt2 *. (st.z.(r0) +. st.z.(r0 + 1)) *. inv_tau;
    z.(e + 1) <- inv_sqrt2 *. (st.z.(r0) -. st.z.(r0 + 1)) *. inv_tau;
    z.(e + 2) <- st.z.(r0 + 2) *. inv_tau
  done;
  {
    x = Vec.scale inv_tau st.x;
    y = Vec.scale inv_tau st.y;
    s;
    z;
    objective_value = (Vec.dot t.c st.x *. inv_tau) +. t.obj_const;
    gap = Vec.dot st.s st.z *. inv_tau *. inv_tau;
    iterations;
  }

(* Convergence and certificate tests on the current residuals; also
   tracks the best iterate seen so far so that a destabilized endgame
   (the scalings blow up as mu -> 0) can fall back to it. *)
let check_termination ?(tol_scale = 1.0) st options ~iterations =
  let t = st.t in
  let pres_y =
    if t.p = 0 then 0.0
    else Vec.norm_inf st.ry /. Float.max 1.0 st.norm_b
  in
  let pres_z = st.norm_rz /. Float.max 1.0 st.norm_h in
  let pres = Float.max pres_y pres_z /. st.tau in
  let dres =
    Vec.norm_inf st.rx /. (Float.max 1.0 st.norm_c *. st.tau)
  in
  let gap_abs = st.gap_sz /. (st.tau *. st.tau) in
  let pobj = Vec.dot t.c st.x /. st.tau in
  let relgap = gap_abs /. Float.max 1.0 (abs_float pobj) in
  (* Certificate residuals, computed before the merit: on an
     infeasible instance tau -> 0 and the optimality merit (all
     tau-normalized) stops improving long before the certificate is
     clean, so the stall guard must watch whichever of the three
     convergence channels is actually making progress. *)
  let hz = (if t.p = 0 then 0.0 else Vec.dot t.b st.y) +. st.hz_dot in
  let pinf_res =
    if hz < 0.0 then begin
      (* A'y + G'z = rx - c tau *)
      Vec.blit ~src:st.rx ~dst:st.tmp_n;
      Vec.axpy_into ~dst:st.tmp_n (-.st.tau) t.c;
      Vec.norm_inf st.tmp_n /. (Float.max 1.0 st.norm_c *. -.hz)
    end
    else infinity
  in
  let cx = Vec.dot t.c st.x in
  let dinf_res =
    if cx < 0.0 then begin
      let ax =
        if t.p = 0 then 0.0
        else begin
          (* A x = ry + b tau *)
          Vec.blit ~src:st.ry ~dst:st.tmp_p;
          Vec.axpy_into ~dst:st.tmp_p st.tau t.b;
          Vec.norm_inf st.tmp_p
        end
      in
      (* G x + s = rz + h tau *)
      Vec.blit ~src:st.rz ~dst:st.tmp_q;
      Vec.axpy_into ~dst:st.tmp_q st.tau t.hi;
      Float.max ax (Vec.norm_inf st.tmp_q)
      /. (Float.max 1.0 st.norm_h *. -.cx)
    end
    else infinity
  in
  let merit =
    Float.min
      (Float.max (Float.max pres dres) relgap)
      (Float.min pinf_res dinf_res)
  in
  if merit < st.best_merit then begin
    st.stall_count <- 0;
    st.best_merit <- merit;
    Vec.blit ~src:st.x ~dst:st.best_x;
    Vec.blit ~src:st.y ~dst:st.best_y;
    Vec.blit ~src:st.s ~dst:st.best_s;
    Vec.blit ~src:st.z ~dst:st.best_z;
    st.best_tau <- st.tau;
    st.best_kappa <- st.kappa
  end
  else if st.mu < 1e-6 then st.stall_count <- st.stall_count + 1;
  let feas_tol = tol_scale *. options.feas_tol in
  if
    pres <= feas_tol && dres <= feas_tol
    && (gap_abs <= tol_scale *. options.gap_abs_tol
       || relgap <= tol_scale *. options.gap_rel_tol)
  then Some (Optimal (extract_solution st ~iterations))
  else if pinf_res <= feas_tol then begin
    (* Primal-infeasibility certificate: (y, z) with z in K*,
       A'y + G'z ~ 0, normalized to b'y + h'z = -1. *)
    let sc = -1.0 /. hz in
    let sol = extract_solution st ~iterations in
    Some
      (Primal_infeasible
         {
           y = Vec.scale (sc *. st.tau) sol.y;
           z = Vec.scale (sc *. st.tau) sol.z;
         })
  end
  else if dinf_res <= feas_tol then
    (* Dual-infeasibility certificate (unbounded primal ray): x with
       A x ~ 0 and G x + s ~ 0 (so -G x in K), normalized to
       c'x = -1. *)
    Some (Dual_infeasible { x = Vec.scale (-1.0 /. cx) st.x })
  else None

(* Failure exit: rewind to the best iterate seen, and accept it as
   optimal if it meets the tolerances relaxed by 100x (the endgame
   often overshoots into numerical noise one step after an acceptable
   iterate); otherwise report Unknown with that iterate. *)
let finish_unknown st options ~iterations =
  if st.best_merit < infinity then begin
    Vec.blit ~src:st.best_x ~dst:st.x;
    Vec.blit ~src:st.best_y ~dst:st.y;
    Vec.blit ~src:st.best_s ~dst:st.s;
    Vec.blit ~src:st.best_z ~dst:st.z;
    st.tau <- st.best_tau;
    st.kappa <- st.best_kappa
  end;
  compute_residuals st;
  match check_termination ~tol_scale:100.0 st options ~iterations with
  | Some status -> status
  | None -> Unknown (extract_solution st ~iterations)

(* ------------------------------------------------------------------ *)
(* Main loop                                                          *)
(* ------------------------------------------------------------------ *)

let take_step st alpha =
  let t = st.t in
  let q = t.mo + (3 * t.nsoc) in
  Vec.axpy_into ~dst:st.x alpha st.dx;
  if t.p > 0 then Vec.axpy_into ~dst:st.y alpha st.dy;
  let s = st.s and z = st.z and ds = st.ds and dz = st.dz in
  for j = 0 to q - 1 do
    Array.unsafe_set z j
      (Array.unsafe_get z j +. (alpha *. Array.unsafe_get dz j));
    Array.unsafe_set s j
      (Array.unsafe_get s j +. (alpha *. Array.unsafe_get ds j))
  done;
  st.tau <- st.tau +. (alpha *. st.dtau);
  st.kappa <- st.kappa +. (alpha *. st.dkappa)

let debug = Sys.getenv_opt "CONIC_DEBUG" <> None

let solve ?(options = default_options) ?warm ?warm_dual ?stats_into ?ws t =
  let st =
    match ws with
    | Some st ->
        rebind_ws st t;
        st
    | None -> make_ws t options
  in
  let iterations = ref 0 in
  let predictor_steps = ref 0 and corrector_steps = ref 0 in
  let factorizations = ref 0 and jitter_retries = ref 0 in
  let warm_active = ref false in
  (match warm with
  | Some seed when Vec.dim seed = t.n ->
      let dual =
        match warm_dual with
        | Some lam when Vec.dim lam = Array.length t.duals_map -> Some lam
        | _ -> None
      in
      init_warm st seed ~dual ~mu0:options.warm_mu;
      warm_active := true
  | _ -> init_cold st);
  (* Warm-start rescue: a seed can be arbitrarily misleading (the
     canonical case is the sweep column just past the feasibility
     boundary, warm-started from the last feasible optimum), and an
     aggressive warm_mu leaves no centrality headroom to recover from
     one.  Rather than surfacing Unknown — which sends Model.solve to
     the barrier fallback at ten times the cost — restart the same
     solve from the cold central point the moment a warm iterate
     stalls (or degenerates: vanishing step, non-finite mu), and only
     then let the usual give-up paths apply.  Iteration counters keep
     accumulating across the restart, so stats stay honest. *)
  let restart_cold () =
    init_cold st;
    st.best_merit <- infinity;
    st.stall_count <- 0;
    st.refine_passes <- 1;
    warm_active := false
  in

  let result = ref None in
  (try
     while !result = None do
       compute_residuals st;
       let give_up () =
         (* The relaxed re-check can still promote the best iterate to
            Optimal; a warm start is rescued only when it cannot. *)
         match finish_unknown st options ~iterations:!iterations with
         | Unknown _ when !warm_active && !iterations < options.max_iter ->
             restart_cold ()
         | status -> result := Some status
       in
       if not (Float.is_finite st.mu) then give_up ()
       else
         match check_termination st options ~iterations:!iterations with
         | Some status -> result := Some status
         | None ->
             if !iterations >= options.max_iter || st.stall_count >= 2 then
               give_up ()
             else begin
               incr iterations;
               (* Iterative refinement only once the scalings start
                  amplifying rounding (mu < 1e-4), and twice in the
                  endgame, for the tau-recovery and direction solves
                  alike. *)
               st.refine_passes <-
                 (if st.mu < 1e-7 then 2
                  else if st.mu < 1e-4 then 1
                  else 0);
               compute_scaling st;
               assemble_m st;
               let tries = factorize_m st in
               incr factorizations;
               jitter_retries := !jitter_retries + tries - 1;
               if t.p > 0 then begin
                 let stries = build_schur st in
                 incr factorizations;
                 jitter_retries := !jitter_retries + stries - 1
               end;
               prepare_tau_recovery st;
               let alpha_aff = predictor_step st in
               incr predictor_steps;
               let sigma =
                 let v = 1.0 -. alpha_aff in
                 let s3 = v *. v *. v in
                 if s3 < 0.0 then 0.0 else if s3 > 1.0 then 1.0 else s3
               in
               let alpha_max = corrector_step st ~sigma in
               incr corrector_steps;
               let alpha = Float.min (options.step_frac *. alpha_max) 1.0 in
               if debug then
                 Format.eprintf
                   "it %d: mu=%.3e tau=%.3e kap=%.3e a_aff=%.3e sig=%.3e \
                    a=%.3e rx=%.3e rz=%.3e rt=%.3e@."
                   !iterations st.mu st.tau st.kappa alpha_aff sigma alpha
                   (Vec.norm_inf st.rx) (Vec.norm_inf st.rz) st.rt;
               if alpha < 1e-10 || not (Float.is_finite alpha) then
                 give_up ()
               else take_step st alpha
             end
     done
   with Chol.Not_positive_definite _ ->
     result := Some (finish_unknown st options ~iterations:!iterations));
  let status =
    match !result with Some s -> s | None -> assert false
  in
  (match stats_into with
  | None -> ()
  | Some acc ->
      let outcome =
        match status with
        | Optimal _ -> { stats_zero with optimal = 1 }
        | Primal_infeasible _ -> { stats_zero with primal_infeasible = 1 }
        | Dual_infeasible _ -> { stats_zero with dual_infeasible = 1 }
        | Unknown _ -> { stats_zero with unknown = 1 }
      in
      acc :=
        stats_add !acc
          {
            outcome with
            iterations = !iterations;
            predictor_steps = !predictor_steps;
            corrector_steps = !corrector_steps;
            factorizations = !factorizations;
            jitter_retries = !jitter_retries;
          });
  status

let constraint_duals t (sol : solution) =
  let m = Array.length t.duals_map in
  if m = 0 then
    invalid_arg "Conic.constraint_duals: not an of_barrier instance";
  Vec.init m (fun j ->
      match t.duals_map.(j) with
      | Dual_orth i -> sol.z.(t.orth_ext.(i))
      | Dual_soc k -> sol.z.(t.soc_ext.(k)))

let pp_status fmt = function
  | Optimal s ->
      Format.fprintf fmt "optimal: obj = %.9g, gap = %.3g (%d iters)"
        s.objective_value s.gap s.iterations
  | Primal_infeasible _ -> Format.fprintf fmt "primal infeasible"
  | Dual_infeasible _ -> Format.fprintf fmt "dual infeasible"
  | Unknown s ->
      Format.fprintf fmt "unknown: obj = %.9g, gap = %.3g (%d iters)"
        s.objective_value s.gap s.iterations
