(** Phase-I feasibility: find a strictly feasible point for a set of
    convex quadratic inequality constraints, or certify infeasibility.

    Solves the standard auxiliary problem
    [minimize s subject to f_j(x) <= s, s >= -1] over [(x, s)]
    starting from any [x0] (taking [s0 = max_j f_j(x0) + 1]), stopping
    early as soon as [s] is comfortably negative. *)

open Linalg

type verdict =
  | Strictly_feasible of Vec.t
      (** A point with [f_j(x) < 0] for every constraint. *)
  | Infeasible of float
      (** The best achievable [max_j f_j(x)] found; non-negative
          (up to tolerance) proves there is no strictly feasible
          point. *)

val find :
  ?options:Barrier.options ->
  ?backend:Barrier.backend ->
  ?stats_into:Barrier.stats ref ->
  ?margin:float ->
  Quad.t array ->
  Vec.t ->
  verdict
(** [find constraints x0] runs phase I from [x0].  [margin]
    (default [1e-8]) is how negative [s] must get before we stop early
    and declare strict feasibility.  [backend] selects the barrier
    oracle for the auxiliary solve; [stats_into] accumulates its work
    counters. *)
