(** Primal-dual predictor-corrector conic solver.

    Solves the conic pair

    {v
      (P)  minimize    c'x                 (D)  maximize  -b'y - h'z
           subject to  b - A x  = 0             subject to G'z + A'y + c = 0
                       h - G x  in K                       z in K*
    v}

    where [K] is a product of the cones of {!Cone} (nonnegative
    orthant and rotated-quadratic / power-epigraph blocks), by a
    Mehrotra-style predictor-corrector method on the homogeneous
    self-dual embedding with Nesterov-Todd scaling.  Unlike the
    log-barrier path ({!Barrier} + {!Phase1}), no strictly feasible
    starting point is required, and an infeasible instance terminates
    with an exact {e certificate} instead of a phase-I failure:

    - {e primal infeasible}: [(y, z)] with [z in K*],
      [A'y + G'z ~ 0] and [b'y + h'z = -1] — a separating hyperplane
      proving no [x] satisfies the constraints;
    - {e dual infeasible} (primal unbounded): [x] with [c'x = -1],
      [A x ~ 0] and [-G x in K] — an improving ray.

    Each iteration costs one scaled normal-equations factorization
    [G' W^-2 G] plus three triangular solves.  The factorization
    backend is selectable: dense Cholesky, or {!Block_tridiag} when
    the caller knows a block partition of the variables under which
    the normal equations are block-tridiagonal (the thermal models'
    (frequency, power, gradient-bound) order; see {!Block_tridiag}).

    Warm starts seed [x] from a neighbouring solution: the slack is
    rebuilt as [h - G x] pushed to a margin inside the cone, and the
    dual is placed on the central path at a reduced [mu], which is
    what makes sweep-adjacent solves measurably cheaper than cold
    ones. *)

open Linalg

type t
(** An immutable problem instance.  Safe to share across solves and
    domains; all mutable state is allocated per {!solve}. *)

val make :
  ?a:Mat.t -> ?b:Vec.t -> c:Vec.t -> g:Mat.t -> h:Vec.t ->
  cones:Cone.t array -> unit -> t
(** [make ~c ~g ~h ~cones ()] builds an instance.  [g] has one row
    per cone coordinate, in the order listed by [cones]; [a]/[b]
    (default empty) carry the equality rows.  Rotated-quadratic
    blocks are rotated onto the standard second-order cone internally
    once, here.  [Invalid_argument] on any dimension mismatch. *)

val of_barrier : Barrier.problem -> t
(** Convert a {!Barrier.problem} whose objective is affine and whose
    non-affine constraints are rank-one quadratics
    [(a'x)^2 + q'x + r <= 0] — exactly the shape of the thermal
    models (affine thermal/box/floor rows plus per-core power-law
    epigraphs).  Affine rows become orthant rows; each rank-one
    quadratic becomes one [Epi_square] block via the lift
    [(u, v, w) = (-q'x - r, 1/2, a'x)].  Retains the constraint-row
    mapping so {!constraint_duals} can report multipliers in the
    original constraint order.  [Invalid_argument] when the objective
    is not affine or a quadratic constraint is not rank-one. *)

val with_constraint_constant : t -> index:int -> float -> t
(** For an {!of_barrier} instance: replace the constant term of the
    affine constraint [index] (in the original constraint order),
    sharing everything but the orthant offset vector — the conic
    analog of {!Compiled.with_constant}, used to re-target the
    throughput floor per sweep cell.  [Invalid_argument] if the
    instance did not come from {!of_barrier} or the constraint is not
    affine. *)

val dim : t -> int
val n_rows : t -> int
(** Total cone rows (the dimension of [s] and [z]). *)

type kkt = [ `Dense | `Blocks of int array ]
(** Factorization backend for the scaled normal equations
    [G' W^-2 G]: dense Cholesky, or block-tridiagonal under the given
    variable partition (sizes must sum to {!dim}). *)

type options = {
  feas_tol : float;  (** Residual tolerance (default [1e-7]). *)
  gap_abs_tol : float;  (** Absolute complementarity gap (default [1e-8]). *)
  gap_rel_tol : float;  (** Relative complementarity gap (default [1e-6]). *)
  max_iter : int;  (** Iteration cap (default [100]). *)
  step_frac : float;
      (** Fraction-to-boundary step scaling (default [0.98]). *)
  warm_mu : float;
      (** Initial complementarity for warm starts (default [3e-3] —
          sweep-neighbour seeds are near-optimal, and starting the
          embedding this close is what the warm-start win is made of;
          cold starts begin at [1]). *)
  kkt : kkt;  (** Default [`Dense]. *)
}

val default_options : options

type stats = {
  iterations : int;
  predictor_steps : int;
  corrector_steps : int;
  factorizations : int;
      (** One scaled normal-equations factorization per iteration. *)
  jitter_retries : int;
  optimal : int;
  primal_infeasible : int;
  dual_infeasible : int;
  unknown : int;  (** Certificate-outcome counters, one per solve. *)
}

val stats_zero : stats
val stats_add : stats -> stats -> stats

type solution = {
  x : Vec.t;
  y : Vec.t;
  s : Vec.t;  (** Cone slack [h - G x], in the caller's row order. *)
  z : Vec.t;  (** Cone dual, in the caller's row order. *)
  objective_value : float;
  gap : float;  (** Complementarity gap [s'z]. *)
  iterations : int;
}

type status =
  | Optimal of solution
  | Primal_infeasible of { y : Vec.t; z : Vec.t }
      (** Certificate normalized to [b'y + h'z = -1]. *)
  | Dual_infeasible of { x : Vec.t }
      (** Improving ray normalized to [c'x = -1]. *)
  | Unknown of solution
      (** No certificate within the iteration cap; payload is the
          best (tau-normalized) iterate.  Callers fall back to the
          reference barrier path. *)

type workspace
(** Preallocated solver state (iterate, scalings, KKT factors) — about
    a megabyte for the thermal cells, and the dominant per-solve
    allocation when solves take a few milliseconds. *)

val make_workspace : ?kkt:kkt -> t -> workspace
(** [make_workspace ?kkt t] preallocates a workspace reusable across
    {!solve} calls on [t] or any structurally identical instance (same
    dimensions and cone layout — e.g. the sweep's per-column
    {!with_constraint_constant} re-targets).  The workspace fixes the
    factorization backend ([kkt] defaults to [`Dense]); a [solve] that
    is handed a workspace ignores [options.kkt].  A workspace serves
    one solve at a time: share instances across domains, not
    workspaces. *)

val solve :
  ?options:options -> ?warm:Vec.t -> ?warm_dual:Vec.t ->
  ?stats_into:stats ref -> ?ws:workspace -> t -> status
(** [warm] is a primal seed of dimension {!dim} (ignored otherwise),
    typically the previous sweep column's [x].  [warm_dual] —
    meaningful only alongside [warm], on an {!of_barrier} instance,
    with one entry per original constraint (the {!constraint_duals}
    of a neighbouring solve) — additionally rebuilds the cone dual
    from the seed multipliers, so the solver starts from an
    (approximately) complementary pair instead of the central path.
    [stats_into] accumulates work counters across solves.  [ws]
    reuses a preallocated {!workspace} instead of allocating one
    ([Invalid_argument] on shape mismatch). *)

val constraint_duals : t -> solution -> Vec.t
(** Multipliers of the original {!Barrier.problem} constraints (the
    orthant dual for affine rows, the epigraph block's [u] dual for
    rank-one quadratic rows).  [Invalid_argument] unless the instance
    came from {!of_barrier}. *)

val pp_status : Format.formatter -> status -> unit
