(** Log-barrier interior-point method.

    Solves [minimize f0(x) subject to f_j(x) <= 0, j = 1..m] where
    [f0] and every [f_j] are convex quadratics ({!Quad.t}), by
    path-following: repeatedly center [t*f0(x) - sum_j log(-f_j(x))]
    with damped Newton ({!Newton}) and increase [t] by [mu] until the
    guaranteed duality gap [m/t] is below tolerance.  This is the
    algorithm class CVX applied to the paper's models (Boyd &
    Vandenberghe, ch. 11).

    Two barrier oracles are available.  The default [`Compiled]
    backend packs all affine constraints into one dense Jacobian
    ({!Compiled}) and evaluates residuals, gradients and Hessians with
    three dense kernels; the [`Reference] backend walks the
    constraints as {!Quad.t} objects.  They compute the same
    mathematical quantities — the reference path exists for
    differential testing and as readable documentation of the math. *)

open Linalg

type problem = { objective : Quad.t; constraints : Quad.t array }
(** All functions must share the same dimension. *)

type backend = [ `Compiled | `Reference ]

type options = {
  mu : float;
      (** Barrier growth factor.  The default is a short-step 2.0:
          long steps (10-50) realize their pessimistic per-centering
          Newton bound on problems with many near-parallel constraints
          along a curved wall, which is precisely the structure of the
          thermal models this library exists for. *)
  gap_tol : float;  (** Target duality gap [m/t] (default 1e-7). *)
  t0 : float;  (** Initial barrier parameter (default 1.0). *)
  max_outer : int;  (** Outer (centering) iteration cap (default 120). *)
  newton : Newton.options;
}

val default_options : options

type stats = {
  centering_steps : int;  (** Outer (centering) iterations. *)
  newton_iterations : int;  (** Total inner Newton steps. *)
  backtracks : int;  (** Total rejected line-search trial steps. *)
  factorizations : int;
      (** Logical Cholesky factorizations (one per Newton step). *)
  jitter_retries : int;
      (** Extra factorization attempts from the jitter schedule. *)
}
(** Work counters for one solve; aggregate across solves with
    {!stats_add}. *)

val stats_zero : stats
val stats_add : stats -> stats -> stats

type result = {
  x : Vec.t;  (** Final (approximately optimal) primal point. *)
  objective_value : float;
  dual : Vec.t;
      (** Approximate dual multipliers [lambda_j = 1/(t * -f_j(x))]. *)
  gap : float;  (** Guaranteed duality-gap bound [m/t]. *)
  outer_iterations : int;
  newton_iterations : int;  (** Total inner Newton steps. *)
  stats : stats;  (** Full work counters for this solve. *)
  stopped_early : bool;  (** [true] if [stop_early] fired. *)
}

val barrier_value : problem -> float -> Vec.t -> float option
(** [barrier_value p t x] is [t*f0(x) - sum log(-f_j(x))], or [None]
    when [x] is not strictly feasible.  Exposed for testing. *)

val is_strictly_feasible : problem -> Vec.t -> bool

val solve :
  ?options:options ->
  ?backend:backend ->
  ?stop_early:(Vec.t -> bool) ->
  problem ->
  Vec.t ->
  result
(** [solve p x0] requires strictly feasible [x0]
    ([Invalid_argument] otherwise).  [stop_early] is checked after each
    centering step; used by phase-I feasibility searches.  [backend]
    defaults to [`Compiled]; when solving the same constraint
    structure many times, compile once and use {!solve_compiled}
    instead. *)

val solve_compiled :
  ?options:options ->
  ?stop_early:(Vec.t -> bool) ->
  Compiled.t ->
  Vec.t ->
  result
(** Like {!solve} with [`Compiled], but on an already-compiled problem
    — the packed Jacobian is reused, so per-solve setup is one
    workspace allocation.  This is the sweep's hot path. *)
