(** Two-phase convex solver: the top-level entry point.

    Runs phase-I feasibility ({!Phase1}) when the supplied starting
    point is not already strictly feasible, then the log-barrier method
    ({!Barrier}), and reports the outcome with a KKT certificate.  This
    is the function the Pro-Temp offline phase calls for every
    [(tstart, ftarget)] design point. *)

open Linalg

type solution = {
  x : Vec.t;
  objective_value : float;
  dual : Vec.t;
  gap : float;  (** Guaranteed duality-gap bound. *)
  kkt : Kkt.residuals Lazy.t;
      (** KKT residual audit of [(x, dual)], computed on first force —
          sweep-style callers that only read frequencies never pay for
          it. *)
  outer_iterations : int;
  newton_iterations : int;
  stats : Barrier.stats;
      (** Total work counters, phase I included. *)
}

type status =
  | Optimal of solution
  | Infeasible of float
      (** Phase I could not find a strictly feasible point; payload is
          the best achieved [max_j f_j]. *)

val solve :
  ?options:Barrier.options ->
  ?backend:Barrier.backend ->
  ?compiled:Compiled.t ->
  ?stats_into:Barrier.stats ref ->
  ?start:Vec.t ->
  Barrier.problem ->
  status
(** [solve p] solves [p].  [start] is a hint (defaults to the origin);
    it need not be feasible.  [backend] selects the barrier oracle
    (default [`Compiled]); [compiled] supplies an already-compiled
    form of [p] for the main solve, skipping recompilation (the caller
    must ensure it matches [p]).  [stats_into] accumulates work
    counters across calls, covering infeasible cells too. *)

val pp_status : Format.formatter -> status -> unit
