(** Parallel simulation campaigns.

    The paper's evaluation (Sec. 5) is a grid of full-trace
    simulations: every controller crossed with every assignment policy
    and every workload scenario.  Those cells are independent, so a
    campaign fans them across a {!Parallel.Pool} — the run-time
    counterpart of [Protemp.Offline.sweep]'s design-time sweep.

    Determinism: each cell regenerates its trace from the scenario's
    own seed and builds a fresh controller (and fresh {!Fault} state)
    from its thunk, so a cell's {!Stats.t} depends only on its grid
    coordinates — never on domain count or execution order.  Results
    come back in index order, controller-major with the fault
    coordinate varying fastest: cell [(ci, ai, si, fi)] lands at
    [((((ci * n_assignments) + ai) * n_scenarios) + si) * n_faults
    + fi]. *)

type scenario = {
  scenario_name : string;
  seed : int64;
  n_tasks : int;
  mix : Workload.Mix.t;
}

val scenario :
  ?seed:int64 -> ?n_tasks:int -> name:string -> Workload.Mix.t -> scenario
(** [seed] defaults to [2008L] (the paper's year), [n_tasks] to
    [20_000]. *)

type spec = {
  controllers : (string * (unit -> Policy.controller)) list;
      (** Thunks, not values: controllers such as Basic-DFS carry
          mutable state, so every cell needs its own instance. *)
  assignments : Policy.assignment list;
  scenarios : scenario list;
  faults : (string * Fault.t list) list;
      (** Named fault scenarios; each cell's controller is wrapped
          with {!Fault.wrap} inside the cell.  [[]] means a single
          clean coordinate named ["none"] — cells are then
          bit-identical to a fault-free campaign. *)
  config : Engine.config;
}

val cells : spec -> int
(** Number of grid cells: controllers × assignments × scenarios ×
    fault scenarios (at least one). *)

type cell = {
  controller_name : string;
  assignment_name : string;
  scenario_name : string;
  fault_name : string;  (** ["none"] when the fault axis is empty. *)
  index : int;  (** Position in the result array. *)
  result : Engine.result;
}

val run :
  ?domains:int -> ?on_cell:(cell -> unit) -> machine:Machine.t -> spec -> cell array
(** Runs every cell of the grid on [domains] domains (default
    {!Parallel.Pool.default_domains}, i.e. [PROTEMP_DOMAINS] when
    set).  [on_cell] fires as cells complete — possibly out of grid
    order, but never concurrently with itself.  Raises
    [Invalid_argument] if any spec list is empty. *)

val pp_summary : Format.formatter -> cell array -> unit
(** One table row per cell: peak temperature, time above tmax, mean
    waiting, energy, unfinished tasks. *)
