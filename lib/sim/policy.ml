open Linalg

type observation = {
  time : float;
  core_temperatures : Vec.t;
  max_core_temperature : float;
  required_frequency : float;
  core_fmax : Vec.t;
  utilizations : Vec.t;
  queue_length : int;
  queued_work : float;
}

type controller = { controller_name : string; decide : observation -> Vec.t }

type assignment = {
  assignment_name : string;
  choose :
    idle:int list ->
    core_classes:int array ->
    core_temperatures:Vec.t ->
    int option;
}

let coldest ~idle ~core_temperatures =
  match idle with
  | [] -> invalid_arg "Policy: no idle core"
  | c :: rest ->
      List.fold_left
        (fun best k ->
          if core_temperatures.(k) < core_temperatures.(best) then k else best)
        c rest

let first_idle =
  {
    assignment_name = "first-idle";
    choose =
      (fun ~idle ~core_classes:_ ~core_temperatures:_ ->
        match idle with
        | [] -> invalid_arg "Policy.first_idle: no idle core"
        | c :: rest -> Some (List.fold_left Stdlib.min c rest));
  }

let coolest_first =
  {
    assignment_name = "coolest-first";
    choose =
      (fun ~idle ~core_classes:_ ~core_temperatures ->
        Some (coldest ~idle ~core_temperatures));
  }

let cool_headroom ~threshold =
  {
    assignment_name = Printf.sprintf "cool-headroom@%.0fC" threshold;
    choose =
      (fun ~idle ~core_classes:_ ~core_temperatures ->
        let c = coldest ~idle ~core_temperatures in
        if core_temperatures.(c) < threshold then Some c else None);
  }

let prefer_class ~cls =
  {
    assignment_name = Printf.sprintf "class%d-first" cls;
    choose =
      (fun ~idle ~core_classes ~core_temperatures ->
        match List.filter (fun c -> core_classes.(c) = cls) idle with
        | [] -> Some (coldest ~idle ~core_temperatures)
        | preferred -> Some (coldest ~idle:preferred ~core_temperatures));
  }

let clamp ~fmax f = Float.min fmax (Float.max 0.0 f)

let fixed_frequency ~fmax f =
  let f = clamp ~fmax f in
  {
    controller_name = Printf.sprintf "fixed-%.0fMHz" (f /. 1e6);
    decide = (fun obs -> Vec.create (Vec.dim obs.core_temperatures) f);
  }

let workload_following ~fmax =
  {
    controller_name = "no-tc";
    decide =
      (fun obs ->
        (* Per-core ceiling: on a homogeneous platform
           [Float.min fmax core_fmax.(c)] is [fmax] exactly, so this
           reproduces the old uniform clamp bit for bit. *)
        let core_fmax = obs.core_fmax in
        Vec.init
          (Vec.dim obs.core_temperatures)
          (fun c ->
            clamp ~fmax:(Float.min fmax core_fmax.(c)) obs.required_frequency));
  }

let integral_feedback ?(gain = 2e7) ?(setpoint = 100.0) () =
  if gain <= 0.0 then invalid_arg "Policy.integral_feedback: non-positive gain";
  (* The adjustable-gain integral law of Rao et al.: per core,
     accumulate [gain * (setpoint - T_c)] into a frequency state
     clamped to [[0, core_fmax]], and never run faster than the
     workload actually asks for.  Pure feedback — no table, no model
     — so it is cheap and platform-agnostic, but it can only react
     after the error appears (the contrast with Pro-Temp's
     feed-forward certification).  State is sized lazily from the
     first observation so one value works on any machine; each
     campaign cell builds a fresh instance. *)
  let state = ref [||] in
  {
    controller_name = Printf.sprintf "integral@%.0fC" setpoint;
    decide =
      (fun obs ->
        let n = Vec.dim obs.core_temperatures in
        if Vec.dim !state <> n then state := Vec.copy obs.core_fmax;
        let s = !state in
        Vec.init n (fun c ->
            let cap = obs.core_fmax.(c) in
            let next =
              s.(c) +. (gain *. (setpoint -. obs.core_temperatures.(c)))
            in
            let next = Float.min cap (Float.max 0.0 next) in
            s.(c) <- next;
            Float.min next (clamp ~fmax:cap obs.required_frequency)));
  }
