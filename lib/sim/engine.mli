(** The discrete-time full-system simulator.

    Co-simulates task arrival/assignment/execution with the thermal
    network at the thermal step (0.4 ms for the Niagara machine),
    invoking the DFS controller every [dfs_period] (100 ms), exactly
    as the paper's evaluation infrastructure does.  The run ends when
    the whole trace has been executed, or at the drain deadline for
    controllers too slow to ever finish. *)

open Linalg

type config = {
  dfs_period : float;  (** Seconds between controller invocations. *)
  tmax : float;  (** Threshold used for violation statistics. *)
  t_initial : float option;
      (** Initial temperature of every node; defaults to the thermal
          model's ambient. *)
  drain_limit : float;
      (** Extra simulated seconds allowed after the last arrival
          before giving up on stragglers. *)
  migration : bool;
      (** Move tasks off stopped cores onto the coolest idle running
          core at each DFS boundary — the task-migration policy class
          the paper cites as composable with Pro-Temp.  Off by
          default. *)
}

val default_config : config
(** [dfs_period = 0.1], [tmax = 100.0], ambient start,
    [drain_limit = 60.0], migration off. *)

type result = {
  stats : Stats.t;
  unfinished : int;  (** Tasks not completed by the drain deadline. *)
  migrations : int;  (** Tasks moved between cores (0 unless enabled). *)
  wall_clock : float;  (** Host seconds spent simulating. *)
}

val run :
  ?config:config ->
  ?probes:Probe.t list ->
  Machine.t ->
  Policy.controller ->
  Policy.assignment ->
  Workload.Trace.t ->
  result
(** Controller output is validated every epoch: a frequency vector of
    the wrong dimension or containing NaN raises [Invalid_argument];
    finite entries are clamped into [[0, fmax]], so a buggy controller
    can neither overclock the cores nor drive them negative.

    The step loop is allocation-free in the steady state: temperature
    ping-pong buffers, power and core-temperature scratch vectors and
    per-core run state are all preallocated, and the thermal
    recurrence runs through {!Thermal.Rc_model.compile_stepper}.
    Allocation only happens at cold edges (arrivals, epoch
    boundaries, dispatch).

    [probes] observe the run ({!Probe.t}): each epoch callback fires
    at every DFS boundary with what the controller saw and decided,
    each step callback after every thermal step, and finish callbacks
    once at the end, in probe order. *)

val run_recorded :
  ?config:config ->
  Machine.t ->
  Policy.controller ->
  Policy.assignment ->
  Workload.Trace.t ->
  result * Probe.sample array * (float * Vec.t) array
(** {!run} with a {!Probe.recorder} and a {!Probe.frequency_log}
    attached: the per-epoch temperature series and controller
    decisions that the paper's time-series figures plot. *)

val run_reference :
  ?config:config ->
  Machine.t ->
  Policy.controller ->
  Policy.assignment ->
  Workload.Trace.t ->
  result
(** The straightforward implementation {!run} was refactored from; it
    allocates freely in the step loop but is semantically identical —
    a golden test asserts both produce bit-for-bit equal {!Stats.t}.
    Kept as the differential-testing oracle and benchmark baseline. *)
