(** Controller and task-assignment policy interfaces.

    A {e controller} is the DFS decision function the thermal
    management unit invokes once per DFS period; an {e assignment
    policy} picks which idle core receives the next queued task.
    Keeping them first-class values (rather than functors) lets the
    benches enumerate policy combinations. *)

open Linalg

type observation = {
  time : float;  (** Start of the upcoming DFS window, seconds. *)
  core_temperatures : Vec.t;
  max_core_temperature : float;
  required_frequency : float;
      (** Average frequency (Hz, in units of the chip reference
          [Machine.fmax]) needed to clear the current backlog within
          the window, accounting for how many cores the runnable
          tasks can actually occupy; already clamped to
          [[0, fmax]]. *)
  core_fmax : Vec.t;
      (** Per-core frequency ceilings — on an asymmetric platform the
          requirement above may exceed what a little core can run, so
          controllers clamp per core against this.  Shared with the
          machine: treat as read-only. *)
  utilizations : Vec.t;
      (** Per-core busy fraction over the elapsed window. *)
  queue_length : int;
  queued_work : float;  (** Seconds at the chip reference frequency,
                            including running tasks' remaining work. *)
}

type controller = {
  controller_name : string;
  decide : observation -> Vec.t;
      (** Returns per-core frequencies in Hz for the next window
          (0 = shut down). *)
}

type assignment = {
  assignment_name : string;
  choose :
    idle:int list ->
    core_classes:int array ->
    core_temperatures:Vec.t ->
    int option;
      (** Pick one of the [idle] core indices (non-empty), or [None]
          to defer dispatch to a later step (thermally-aware admission
          control).  [core_classes] gives each core's platform class
          index (all zeros on a homogeneous machine; read-only). *)
}

val first_idle : assignment
(** The paper's simple policy: any idle processor — we take the
    lowest-numbered one. *)

val coolest_first : assignment
(** Send work to the coldest idle core (always dispatches). *)

val cool_headroom : threshold:float -> assignment
(** The temperature-aware allocation in the spirit of Coskun et
    al. [26] (the paper's "efficient task assignment", Sec. 5.4):
    dispatch to the coldest idle core, but only if it is below
    [threshold]; otherwise hold the task so the hot cores get a
    breather. *)

val prefer_class : cls:int -> assignment
(** Heterogeneity-aware: dispatch to the coldest idle core of
    platform class [cls] when one is idle, else the coldest idle
    core overall.  [prefer_class ~cls:1] on the big.LITTLE platform
    keeps work on the cool little cores until they are all busy. *)

val fixed_frequency : fmax:float -> float -> controller
(** A controller that always answers the same frequency on all cores
    (clamped to [[0, fmax]]); useful for tests and warm-up phases. *)

val workload_following : fmax:float -> controller
(** Matches the application performance level with no thermal action:
    every core runs at the observation's [required_frequency],
    clamped per core against both [fmax] and the core's own ceiling.
    This is the paper's No-TC reference. *)

val integral_feedback : ?gain:float -> ?setpoint:float -> unit -> controller
(** The adjustable-gain integral controller of Rao et al.
    (arXiv:1507.06357): per core, a frequency state accumulates
    [gain * (setpoint - T_c)] each window, clamped to the core's
    [[0, core_fmax]] range, and the decided frequency is the minimum
    of that state and the (per-core-clamped) required frequency.
    Pure feedback — no table, no thermal model — so it is cheap and
    needs no offline phase, but it reacts only after the temperature
    error appears.  [gain] is in Hz per degree per window (default
    2e7: a 5-degree overshoot sheds 100 MHz per window); [setpoint]
    defaults to the engine's 100-degree tmax.  Stateful: build a
    fresh instance per run. *)
