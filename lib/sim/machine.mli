(** The simulated multi-core machine: thermal model plus power law.

    Bundles everything the engine needs to know about the hardware:
    the discretized thermal network, which nodes are cores, the static
    power of the non-core blocks, and the frequency-to-power law
    (the paper's Eq. 2). *)

open Linalg

type t = {
  thermal : Thermal.Rc_model.discrete;
  n_nodes : int;
  n_cores : int;
  core_nodes : int array;  (** Thermal node index of each core. *)
  fixed_power : Vec.t;  (** Per-node static power; zero on cores. *)
  fmax : float;
  core_pmax : float;
  idle_activity : float;
      (** Fraction of the dynamic power an idle (but clocked) core
          burns; must be in [0, 1] so that the convex model's
          all-cores-busy assumption stays an upper bound (this is
          what makes the Pro-Temp guarantee carry over to the
          simulation). *)
}

val make :
  ?idle_activity:float ->
  thermal:Thermal.Rc_model.discrete ->
  core_nodes:int array ->
  fixed_power:Vec.t ->
  fmax:float ->
  core_pmax:float ->
  unit ->
  t
(** Validates shapes and ranges ([Invalid_argument] otherwise).
    [idle_activity] defaults to 0.3. *)

val niagara : unit -> t
(** The calibrated Niagara platform of {!Thermal.Niagara}, discretized
    at the paper's 0.4 ms step. *)

val core_power : t -> frequency:float -> busy:bool -> float
(** Power of one core at [frequency]: [pmax (f/fmax)^2], scaled by
    [idle_activity] when the core is idle. *)

val power_vector : t -> frequencies:Vec.t -> busy:bool array -> Vec.t
(** Full node power vector for one thermal step. *)

val power_vector_into :
  t -> frequencies:Vec.t -> busy:bool array -> dst:Vec.t -> unit
(** Like {!power_vector} but writes into [dst] (length [n_nodes])
    without allocating; produces bit-identical values. *)

val refresh_core_power :
  t -> frequencies:Vec.t -> busy:bool array -> dst:Vec.t -> unit
(** Rewrite only the core entries of [dst], assuming its non-core
    entries already hold [fixed_power] (they never change).  The
    allocation-free stepping loop initializes [dst] once and calls
    this on frequency or busy-state changes. *)

val core_temperatures : t -> Vec.t -> Vec.t
(** Extract the core temperatures from a full node temperature
    vector. *)

val core_temperatures_into : t -> Vec.t -> dst:Vec.t -> unit
(** Like {!core_temperatures} but writes into [dst] (length
    [n_cores]) without allocating. *)
