(** The simulated multi-core machine: thermal model plus power laws.

    Bundles everything the engine needs to know about the hardware:
    the discretized thermal network, which nodes are cores, the static
    power of the non-core blocks, and the per-core frequency-to-power
    laws — the paper's Eq. 2, generalized by {!Platform} to
    heterogeneous core classes.  The flattened per-core arrays below
    are derived from the platform once at construction so the
    stepping hot path never chases the class indirection. *)

open Linalg

type t = {
  thermal : Thermal.Rc_model.discrete;
  n_nodes : int;
  n_cores : int;
  core_nodes : int array;  (** Thermal node index of each core. *)
  fixed_power : Vec.t;  (** Per-node static power; zero on cores. *)
  platform : Platform.t;
  fmax : float;
      (** Chip reference frequency = the largest per-core ceiling.
          Queued work and throughput targets are stated in seconds at
          this frequency; on a homogeneous platform it is the one
          shared [fmax]. *)
  core_fmax : float array;  (** Per-core frequency ceiling, Hz. *)
  core_pmax : float array;  (** Per-core dynamic power at its ceiling, W. *)
  core_exponent : float array;  (** Per-core power-law exponent. *)
  core_idle : float array;
      (** Per-core idle activity factor, in [[0, 1]] so that the
          convex model's all-cores-busy assumption stays an upper
          bound (this is what makes the Pro-Temp guarantee carry over
          to the simulation). *)
}

val make :
  ?idle_activity:float ->
  thermal:Thermal.Rc_model.discrete ->
  core_nodes:int array ->
  fixed_power:Vec.t ->
  fmax:float ->
  core_pmax:float ->
  unit ->
  t
(** The homogeneous constructor: every core shares one quadratic
    power law — exactly the machine the paper models, and bit-for-bit
    the machine this library simulated before platforms existed.
    Validates shapes and ranges ([Invalid_argument] otherwise).
    [idle_activity] defaults to 0.3. *)

val make_platform :
  thermal:Thermal.Rc_model.discrete ->
  core_nodes:int array ->
  fixed_power:Vec.t ->
  platform:Platform.t ->
  unit ->
  t
(** General constructor: the platform's core count must match
    [core_nodes].  A single-class platform behaves identically to
    {!make} with the same numbers. *)

val niagara : unit -> t
(** The calibrated homogeneous Niagara platform of {!Thermal.Niagara},
    discretized at the paper's 0.4 ms step. *)

val biglittle : unit -> t
(** The asymmetric 4 big + 4 little platform of {!Thermal.Biglittle}:
    two core classes with different ceilings, peak powers and
    power-law exponents. *)

val core_power : t -> core:int -> frequency:float -> busy:bool -> float
(** Power of core [core] at [frequency]:
    [pmax_c (f/fmax_c)^exponent_c], scaled by the core's idle
    activity when idle.  Raises [Invalid_argument] on a bad core
    index. *)

val power_vector : t -> frequencies:Vec.t -> busy:bool array -> Vec.t
(** Full node power vector for one thermal step. *)

val power_vector_into :
  t -> frequencies:Vec.t -> busy:bool array -> dst:Vec.t -> unit
(** Like {!power_vector} but writes into [dst] (length [n_nodes])
    without allocating; produces bit-identical values. *)

val refresh_core_power :
  t -> frequencies:Vec.t -> busy:bool array -> dst:Vec.t -> unit
(** Rewrite only the core entries of [dst], assuming its non-core
    entries already hold [fixed_power] (they never change).  The
    allocation-free stepping loop initializes [dst] once and calls
    this on frequency or busy-state changes; listed in
    [lint.manifest]. *)

val core_temperatures : t -> Vec.t -> Vec.t
(** Extract the core temperatures from a full node temperature
    vector. *)

val core_temperatures_into : t -> Vec.t -> dst:Vec.t -> unit
(** Like {!core_temperatures} but writes into [dst] (length
    [n_cores]) without allocating. *)
