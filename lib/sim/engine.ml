open Linalg

type config = {
  dfs_period : float;
  tmax : float;
  t_initial : float option;
  drain_limit : float;
  migration : bool;
}

let default_config =
  {
    dfs_period = 0.1;
    tmax = 100.0;
    t_initial = None;
    drain_limit = 60.0;
    migration = false;
  }

type result = {
  stats : Stats.t;
  unfinished : int;
  migrations : int;
  wall_clock : float;
}

(* The production stepping loop.  Everything the per-step path touches
   is preallocated before the loop: two ping-pong temperature buffers
   fed to the compiled thermal stepper, the power and core-temperature
   scratch vectors, and plain [bool]/[float] arrays for the per-core
   run state (an [option] per core would allocate a [Some] on every
   progress update).  Allocation only happens on the cold edges —
   task arrival, epoch boundaries, dispatch — so steady-state steps
   perform zero minor-heap allocation (asserted by a test).  The
   straightforward allocating implementation is kept below as
   [run_reference]; a golden test checks both produce bit-identical
   statistics. *)
let run ?(config = default_config) ?(probes = []) (machine : Machine.t)
    controller assignment trace =
  let started = Unix.gettimeofday () in
  let epoch_fns = Array.of_list (List.filter_map (fun p -> p.Probe.on_epoch) probes) in
  let step_fns = Array.of_list (List.filter_map (fun p -> p.Probe.on_step) probes) in
  let thermal = machine.Machine.thermal in
  let dt = thermal.Thermal.Rc_model.dt in
  let steps_per_epoch =
    let s = int_of_float (Float.round (config.dfs_period /. dt)) in
    if s < 1 then invalid_arg "Engine.run: dfs_period below the thermal step";
    s
  in
  let n_cores = machine.Machine.n_cores in
  let n_nodes = machine.Machine.n_nodes in
  let fmax = machine.Machine.fmax in
  let core_fmax = machine.Machine.core_fmax in
  let core_classes = machine.Machine.platform.Platform.assignment in
  let tasks = trace.Workload.Trace.tasks in
  let n_tasks = Array.length tasks in
  let ambient = thermal.Thermal.Rc_model.ambient in
  let t0 = Option.value config.t_initial ~default:ambient in
  let stepper = Thermal.Rc_model.compile_stepper thermal in
  let temp = ref (Vec.create n_nodes t0) in
  let temp_next = ref (Vec.zeros n_nodes) in
  let running = Array.make n_cores false in
  let remaining = Array.make n_cores 0.0 in
  let frequencies = Vec.zeros n_cores in
  (* Per-core work advanced per busy step, [dt * f / fmax].  The
     frequencies only move at epoch boundaries, so the division is
     paid once per epoch instead of once per busy core per step; the
     cached value is the exact expression the reference evaluates. *)
  let progress = Vec.zeros n_cores in
  let busy = Array.make n_cores false in
  let busy_acc = Array.make n_cores 0.0 in
  let power = Vec.zeros n_nodes in
  (* The non-core entries of the power vector are the static
     [fixed_power], which never changes: install it once and let
     [Machine.refresh_core_power] rewrite only the core entries. *)
  Array.blit machine.Machine.fixed_power 0 power 0 n_nodes;
  (* One full load caches the injection products of the static
     entries; the loop below only ever reloads the core nodes. *)
  Thermal.Rc_model.stepper_load_power stepper power;
  (* The power vector only changes when the controller moves the
     frequencies or a core starts/stops; between those events the
     step loop reuses [power], the stepper's loaded injection
     products, and the cached chip total in [chip_power]. *)
  let power_dirty = ref true in
  (* Local float refs that never escape compile to unboxed mutable
     variables, so neither accumulator allocates. *)
  let chip_power = ref 0.0 in
  let energy_acc = ref 0.0 in
  let core_temp = Vec.zeros n_cores in
  (* Tasks arrive sorted by arrival time and each is enqueued exactly
     once, so the FIFO queue is just the index window
     [q_head, q_tail) over [tasks]: arrivals advance [q_tail],
     dispatch advances [q_head].  No queue cells are ever allocated
     and emptiness is an integer compare.  The arrival and work fields
     are hoisted into plain float arrays once — reading a float field
     of the mixed [Task.t] record goes through a box. *)
  let arrivals = Array.map (fun t -> t.Workload.Task.arrival) tasks in
  let works = Array.map (fun t -> t.Workload.Task.work) tasks in
  let q_head = ref 0 in
  let q_tail = ref 0 in
  let completed = ref 0 in
  let stats = Stats.create ~n_cores ~tmax:config.tmax () in
  let migrations = ref 0 in
  let deadline = trace.Workload.Trace.horizon +. config.drain_limit in
  (* One mutable view refilled in place each step keeps attached
     probes cheap; with no step probes the loop never touches it. *)
  let have_step = Array.length step_fns > 0 in
  let step_view =
    {
      Probe.at = 0.0;
      dt;
      temperatures = !temp;
      core_nodes = machine.Machine.core_nodes;
      chip_power = 0.0;
    }
  in
  let queued_work () =
    (* Same fold order as the reference's front-to-back queue walk. *)
    let acc = ref 0.0 in
    for k = !q_head to !q_tail - 1 do
      acc := !acc +. works.(k)
    done;
    for c = 0 to n_cores - 1 do
      if running.(c) then acc := !acc +. remaining.(c)
    done;
    !acc
  in
  let observe time =
    let core_temperatures = Machine.core_temperatures machine !temp in
    let work = queued_work () in
    (* The work can only spread over as many cores as there are
       runnable tasks; a single straggler must be driven by one core,
       not an eighth of one (otherwise its service slows down each
       window and it never finishes). *)
    let runnable =
      let r = ref (!q_tail - !q_head) in
      for c = 0 to n_cores - 1 do
        if running.(c) then incr r
      done;
      !r
    in
    let parallelism = Stdlib.max 1 (Stdlib.min n_cores runnable) in
    let capacity = float_of_int parallelism *. config.dfs_period in
    let required = work /. capacity *. fmax in
    {
      Policy.time;
      core_temperatures;
      max_core_temperature = Vec.max core_temperatures;
      required_frequency = Float.min fmax (Float.max 0.0 required);
      core_fmax;
      utilizations =
        Vec.init n_cores (fun c -> busy_acc.(c) /. config.dfs_period);
      queue_length = !q_tail - !q_head;
      queued_work = work;
    }
  in
  (* Count of [true] entries in [running], so the per-step dispatch
     guard is a single compare instead of a scan. *)
  let n_running = ref 0 in
  let idle_list () =
    let acc = ref [] in
    for c = n_cores - 1 downto 0 do
      if not running.(c) then acc := c :: !acc
    done;
    !acc
  in
  (* Dispatch queued tasks onto idle cores; the assignment policy may
     defer (thermally-aware admission control).  Only entered when the
     queue is non-empty and a core is idle, so the common steady-state
     step never pays its list allocation. *)
  let dispatch time =
    (* The core temperatures cannot change between dispatches within a
       step, so one extraction serves the whole chain. *)
    Machine.core_temperatures_into machine !temp ~dst:core_temp;
    let continue = ref true in
    while !continue && !q_head < !q_tail && !n_running < n_cores do
      match
        assignment.Policy.choose ~idle:(idle_list ()) ~core_classes
          ~core_temperatures:core_temp
      with
      | None -> continue := false
      | Some c ->
          if running.(c) then
            invalid_arg "Engine.run: assignment picked a busy core";
          let k = !q_head in
          incr q_head;
          running.(c) <- true;
          incr n_running;
          remaining.(c) <- works.(k);
          Stats.record_waiting stats (Float.max 0.0 (time -. arrivals.(k)))
    done
  in
  let step = ref 0 in
  (* Steps until the next DFS boundary; counting down avoids an
     integer division per step. *)
  let epoch_countdown = ref 0 in
  let live = ref true in
  (* DFS epoch boundary — the cold path, once per control window:
     observe, ask the controller for new frequencies, clamp, notify
     epoch probes, optionally migrate.  Allocation is fine here; the
     alloc-free manifest only covers [step_once] below. *)
  let epoch_boundary time =
    epoch_countdown := steps_per_epoch;
    let obs = observe time in
    let f = controller.Policy.decide obs in
    if Vec.dim f <> n_cores then
      invalid_arg "Engine.run: controller returned a bad frequency vector";
    for c = 0 to n_cores - 1 do
      if Float.is_nan f.(c) then
        invalid_arg "Engine.run: controller returned a NaN frequency"
    done;
    (* Clamp on both sides, in place into the preallocated vector: a
       buggy controller must not be able to run cores past their
       per-core hardware ceiling any more than below 0.  Progress
       stays in units of the chip reference [fmax]: queued work is
       seconds at that frequency, so a little core burns it more
       slowly. *)
    for c = 0 to n_cores - 1 do
      frequencies.(c) <- Float.min core_fmax.(c) (Float.max 0.0 f.(c));
      progress.(c) <- dt *. frequencies.(c) /. fmax
    done;
    power_dirty := true;
    Array.fill busy_acc 0 n_cores 0.0;
    if Array.length epoch_fns > 0 then begin
      let view = { Probe.time; observation = obs; frequencies } in
      Array.iter (fun f -> f view) epoch_fns
    end;
    (* Optional task migration (a policy the paper composes with):
       a task stuck on a stopped core moves to the coolest idle core
       that was granted a non-zero frequency. *)
    if config.migration then begin
      let core_temperatures = Machine.core_temperatures machine !temp in
      for c = 0 to n_cores - 1 do
        (* Bit-exact: 0.0 is the controller's shutdown sentinel. *)
        if running.(c) && Float.equal frequencies.(c) 0.0 then begin
          let best = ref (-1) in
          for d = 0 to n_cores - 1 do
            if
              (not running.(d))
              && frequencies.(d) > 0.0
              && (!best < 0
                 || core_temperatures.(d) < core_temperatures.(!best))
            then best := d
          done;
          if !best >= 0 then begin
            running.(!best) <- true;
            remaining.(!best) <- remaining.(c);
            running.(c) <- false;
            incr migrations
          end
        end
      done
    end
  in
  (* One thermal step — the hot path, listed in the alloc-free
     manifest as [run.step_once], so its body must stay free of
     syntactic allocation sites; the steady-state [Gc.minor_words]
     test checks the compiled code allocates nothing either.  Takes
     [unit] and recomputes the time from [step]: a float argument to
     a local function would be boxed at every call, whereas the
     recomputation is the bit-identical expression the loop head
     evaluates. *)
  let step_once () =
    let time = float_of_int !step *. dt in
    (* Task arrivals land in the queue at step resolution: advancing
       the tail cursor is the whole enqueue. *)
    while !q_tail < n_tasks && Array.unsafe_get arrivals !q_tail <= time do
      incr q_tail
    done;
    if !epoch_countdown = 0 then epoch_boundary time;
    if !q_head < !q_tail && !n_running < n_cores then dispatch time;
    (* Advance running tasks at the current frequencies. *)
    for c = 0 to n_cores - 1 do
      let r = Array.unsafe_get running c in
      if r <> Array.unsafe_get busy c then begin
        Array.unsafe_set busy c r;
        power_dirty := true
      end;
      if r then begin
        Array.unsafe_set busy_acc c (Array.unsafe_get busy_acc c +. dt);
        let w' = Array.unsafe_get remaining c -. Array.unsafe_get progress c in
        if w' <= 0.0 then begin
          Array.unsafe_set running c false;
          decr n_running;
          incr completed;
          Stats.record_completion stats
        end
        else Array.unsafe_set remaining c w'
      end
    done;
    (* Thermal step under the power this configuration draws. *)
    if !power_dirty then begin
      Machine.refresh_core_power machine ~frequencies ~busy ~dst:power;
      (* Only the core entries of [power] can have moved; the initial
         full [stepper_load_power] above covered the static rest. *)
      Thermal.Rc_model.stepper_reload_power_at stepper power
        machine.Machine.core_nodes;
      (* The ascending-index sum matches [Vec.sum power], so the
         energy accumulated below is bit-identical to the reference's
         per-step [record_power ~dt (Vec.sum power)]. *)
      let total = ref 0.0 in
      for i = 0 to n_nodes - 1 do
        total := !total +. power.(i)
      done;
      chip_power := !total;
      power_dirty := false
    end;
    Thermal.Rc_model.stepper_step_loaded_into stepper !temp ~dst:!temp_next;
    (let t = !temp in
     temp := !temp_next;
     temp_next := t);
    energy_acc := !energy_acc +. (!chip_power *. dt);
    Stats.record_step_nodes stats ~dt ~temperatures:!temp
      ~nodes:machine.Machine.core_nodes;
    if have_step then begin
      step_view.Probe.at <- time;
      step_view.Probe.temperatures <- !temp;
      step_view.Probe.chip_power <- !chip_power;
      for i = 0 to Array.length step_fns - 1 do
        (Array.unsafe_get step_fns i) step_view
      done
    end;
    decr epoch_countdown;
    incr step
  in
  while !live do
    let time = float_of_int !step *. dt in
    if (!q_tail >= n_tasks && !completed >= n_tasks) || time > deadline then
      live := false
    else step_once ()
  done;
  (* [0.0 +. e] is bitwise [e] for the nonnegative chip energy, so the
     one-shot flush matches the reference's per-step accumulation. *)
  Stats.record_energy stats !energy_acc;
  List.iter (fun p -> Option.iter (fun f -> f ()) p.Probe.on_finish) probes;
  {
    stats;
    unfinished = n_tasks - !completed;
    migrations = !migrations;
    wall_clock = Unix.gettimeofday () -. started;
  }

(* Per-core execution state of the reference implementation: the
   remaining work (seconds at fmax) of the running task, or none when
   idle. *)
type core_state = { mutable remaining : float option }

(* The straightforward implementation [run] was refactored from:
   allocates freely in the step loop (fresh temperature, power and
   busy vectors every step).  Kept as the oracle for the golden
   regression test and as the benchmark baseline. *)
let run_reference ?(config = default_config) (machine : Machine.t) controller
    assignment trace =
  let started = Unix.gettimeofday () in
  let dt = machine.Machine.thermal.Thermal.Rc_model.dt in
  let steps_per_epoch =
    let s = int_of_float (Float.round (config.dfs_period /. dt)) in
    if s < 1 then invalid_arg "Engine.run: dfs_period below the thermal step";
    s
  in
  let n_cores = machine.Machine.n_cores in
  let tasks = trace.Workload.Trace.tasks in
  let n_tasks = Array.length tasks in
  let ambient = machine.Machine.thermal.Thermal.Rc_model.ambient in
  let t0 = Option.value config.t_initial ~default:ambient in
  let temp = ref (Vec.create machine.Machine.n_nodes t0) in
  let cores = Array.init n_cores (fun _ -> { remaining = None }) in
  let frequencies = ref (Vec.zeros n_cores) in
  let queue = Queue.create () in
  let next_task = ref 0 in
  let completed = ref 0 in
  let busy_acc = Array.make n_cores 0.0 in
  let stats = Stats.create ~n_cores ~tmax:config.tmax () in
  let migrations = ref 0 in
  let deadline = trace.Workload.Trace.horizon +. config.drain_limit in
  let idle_cores () =
    let acc = ref [] in
    for c = n_cores - 1 downto 0 do
      if cores.(c).remaining = None then acc := c :: !acc
    done;
    !acc
  in
  let queued_work () =
    let backlog = Queue.fold (fun acc t -> acc +. t.Workload.Task.work) 0.0 queue in
    Array.fold_left
      (fun acc c ->
        match c.remaining with Some w -> acc +. w | None -> acc)
      backlog cores
  in
  let observe time =
    let core_temperatures = Machine.core_temperatures machine !temp in
    let work = queued_work () in
    let runnable =
      Queue.length queue
      + Array.fold_left
          (fun acc c -> if c.remaining = None then acc else acc + 1)
          0 cores
    in
    let parallelism = Stdlib.max 1 (Stdlib.min n_cores runnable) in
    let capacity = float_of_int parallelism *. config.dfs_period in
    let required = work /. capacity *. machine.Machine.fmax in
    {
      Policy.time;
      core_temperatures;
      max_core_temperature = Vec.max core_temperatures;
      required_frequency =
        Float.min machine.Machine.fmax (Float.max 0.0 required);
      core_fmax = machine.Machine.core_fmax;
      utilizations =
        Vec.init n_cores (fun c -> busy_acc.(c) /. config.dfs_period);
      queue_length = Queue.length queue;
      queued_work = work;
    }
  in
  let step = ref 0 in
  let finished () = !next_task >= n_tasks && !completed >= n_tasks in
  while (not (finished ())) && float_of_int !step *. dt <= deadline do
    let time = float_of_int !step *. dt in
    while
      !next_task < n_tasks && tasks.(!next_task).Workload.Task.arrival <= time
    do
      Queue.push tasks.(!next_task) queue;
      incr next_task
    done;
    if !step mod steps_per_epoch = 0 then begin
      let obs = observe time in
      let f = controller.Policy.decide obs in
      if Vec.dim f <> n_cores then
        invalid_arg "Engine.run: controller returned a bad frequency vector";
      for c = 0 to n_cores - 1 do
        if Float.is_nan f.(c) then
          invalid_arg "Engine.run: controller returned a NaN frequency"
      done;
      frequencies :=
        Vec.init n_cores (fun c ->
            Float.min machine.Machine.core_fmax.(c) (Float.max 0.0 f.(c)));
      Array.fill busy_acc 0 n_cores 0.0;
      if config.migration then begin
        let core_temperatures = Machine.core_temperatures machine !temp in
        Array.iteri
          (fun c state ->
            match state.remaining with
            (* Bit-exact: 0.0 is the controller's shutdown sentinel. *)
            | Some w when Float.equal !frequencies.(c) 0.0 ->
                let best = ref None in
                Array.iteri
                  (fun d other ->
                    if
                      other.remaining = None
                      && !frequencies.(d) > 0.0
                      && (match !best with
                         | None -> true
                         | Some b ->
                             core_temperatures.(d) < core_temperatures.(b))
                    then best := Some d)
                  cores;
                (match !best with
                | Some d ->
                    cores.(d).remaining <- Some w;
                    state.remaining <- None;
                    incr migrations
                | None -> ())
            | Some _ | None -> ())
          cores
      end
    end;
    let rec dispatch () =
      if not (Queue.is_empty queue) then
        match idle_cores () with
        | [] -> ()
        | idle -> (
            let core_temperatures = Machine.core_temperatures machine !temp in
            match
              assignment.Policy.choose ~idle
                ~core_classes:machine.Machine.platform.Platform.assignment
                ~core_temperatures
            with
            | None -> ()
            | Some c ->
                if cores.(c).remaining <> None then
                  invalid_arg "Engine.run: assignment picked a busy core";
                let task = Queue.pop queue in
                cores.(c).remaining <- Some task.Workload.Task.work;
                Stats.record_waiting stats
                  (Float.max 0.0 (time -. task.Workload.Task.arrival));
                dispatch ())
    in
    dispatch ();
    let busy = Array.make n_cores false in
    Array.iteri
      (fun c state ->
        match state.remaining with
        | None -> ()
        | Some w ->
            busy.(c) <- true;
            busy_acc.(c) <- busy_acc.(c) +. dt;
            let progress = dt *. !frequencies.(c) /. machine.Machine.fmax in
            let w' = w -. progress in
            if w' <= 0.0 then begin
              state.remaining <- None;
              incr completed;
              Stats.record_completion stats
            end
            else state.remaining <- Some w')
      cores;
    let power = Machine.power_vector machine ~frequencies:!frequencies ~busy in
    temp := Thermal.Rc_model.step_temperature machine.Machine.thermal !temp power;
    Stats.record_power stats ~dt (Vec.sum power);
    Stats.record_step stats ~dt
      ~core_temperatures:(Machine.core_temperatures machine !temp);
    incr step
  done;
  {
    stats;
    unfinished = n_tasks - !completed;
    migrations = !migrations;
    wall_clock = Unix.gettimeofday () -. started;
  }

(* Convenience for the common "give me the paper's time series"
   shape: a run with a recorder and a frequency-log probe attached. *)
let run_recorded ?config machine controller assignment trace =
  let rec_probe, series = Probe.recorder () in
  let log_probe, frequency_log = Probe.frequency_log () in
  let result =
    run ?config ~probes:[ rec_probe; log_probe ] machine controller assignment
      trace
  in
  (result, series (), frequency_log ())
