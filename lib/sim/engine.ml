open Linalg

type config = {
  dfs_period : float;
  tmax : float;
  t_initial : float option;
  drain_limit : float;
  record_series : bool;
  migration : bool;
}

let default_config =
  {
    dfs_period = 0.1;
    tmax = 100.0;
    t_initial = None;
    drain_limit = 60.0;
    record_series = true;
    migration = false;
  }

type sample = { at : float; core_temperatures : Vec.t }

type result = {
  stats : Stats.t;
  series : sample array;
  frequency_log : (float * Vec.t) array;
  unfinished : int;
  migrations : int;
  wall_clock : float;
}

(* Per-core execution state: the remaining work (seconds at fmax) of
   the running task, or none when idle. *)
type core_state = { mutable remaining : float option }

let run ?(config = default_config) (machine : Machine.t) controller assignment
    trace =
  let started = Unix.gettimeofday () in
  let dt = machine.Machine.thermal.Thermal.Rc_model.dt in
  let steps_per_epoch =
    let s = int_of_float (Float.round (config.dfs_period /. dt)) in
    if s < 1 then invalid_arg "Engine.run: dfs_period below the thermal step";
    s
  in
  let n_cores = machine.Machine.n_cores in
  let tasks = trace.Workload.Trace.tasks in
  let n_tasks = Array.length tasks in
  let ambient = machine.Machine.thermal.Thermal.Rc_model.ambient in
  let t0 = Option.value config.t_initial ~default:ambient in
  let temp = ref (Vec.create machine.Machine.n_nodes t0) in
  let cores = Array.init n_cores (fun _ -> { remaining = None }) in
  let frequencies = ref (Vec.zeros n_cores) in
  let queue = Queue.create () in
  let next_task = ref 0 in
  let completed = ref 0 in
  let busy_acc = Array.make n_cores 0.0 in
  let stats = Stats.create ~n_cores ~tmax:config.tmax () in
  let series = ref [] in
  let freq_log = ref [] in
  let migrations = ref 0 in
  let deadline = trace.Workload.Trace.horizon +. config.drain_limit in
  let idle_cores () =
    let acc = ref [] in
    for c = n_cores - 1 downto 0 do
      if cores.(c).remaining = None then acc := c :: !acc
    done;
    !acc
  in
  let queued_work () =
    let backlog = Queue.fold (fun acc t -> acc +. t.Workload.Task.work) 0.0 queue in
    Array.fold_left
      (fun acc c ->
        match c.remaining with Some w -> acc +. w | None -> acc)
      backlog cores
  in
  let observe time =
    let core_temperatures = Machine.core_temperatures machine !temp in
    let work = queued_work () in
    (* The work can only spread over as many cores as there are
       runnable tasks; a single straggler must be driven by one core,
       not an eighth of one (otherwise its service slows down each
       window and it never finishes). *)
    let runnable =
      Queue.length queue
      + Array.fold_left
          (fun acc c -> if c.remaining = None then acc else acc + 1)
          0 cores
    in
    let parallelism = Stdlib.max 1 (Stdlib.min n_cores runnable) in
    let capacity = float_of_int parallelism *. config.dfs_period in
    let required = work /. capacity *. machine.Machine.fmax in
    {
      Policy.time;
      core_temperatures;
      max_core_temperature = Vec.max core_temperatures;
      required_frequency =
        Float.min machine.Machine.fmax (Float.max 0.0 required);
      utilizations =
        Vec.init n_cores (fun c -> busy_acc.(c) /. config.dfs_period);
      queue_length = Queue.length queue;
      queued_work = work;
    }
  in
  let step = ref 0 in
  let finished () = !next_task >= n_tasks && !completed >= n_tasks in
  while (not (finished ())) && float_of_int !step *. dt <= deadline do
    let time = float_of_int !step *. dt in
    (* Task arrivals land in the queue at step resolution. *)
    while
      !next_task < n_tasks && tasks.(!next_task).Workload.Task.arrival <= time
    do
      Queue.push tasks.(!next_task) queue;
      incr next_task
    done;
    (* DFS epoch boundary: ask the controller for new frequencies. *)
    if !step mod steps_per_epoch = 0 then begin
      let obs = observe time in
      let f = controller.Policy.decide obs in
      if Vec.dim f <> n_cores then
        invalid_arg "Engine.run: controller returned a bad frequency vector";
      for c = 0 to n_cores - 1 do
        if Float.is_nan f.(c) then
          invalid_arg "Engine.run: controller returned a NaN frequency"
      done;
      (* Clamp on both sides: a buggy controller must not be able to
         run cores past the hardware ceiling any more than below 0. *)
      frequencies :=
        Vec.map
          (fun x -> Float.min machine.Machine.fmax (Float.max 0.0 x))
          f;
      Array.fill busy_acc 0 n_cores 0.0;
      if config.record_series then begin
        series :=
          { at = time; core_temperatures = obs.Policy.core_temperatures }
          :: !series;
        freq_log := (time, Vec.copy !frequencies) :: !freq_log
      end;
      (* Optional task migration (a policy the paper composes with):
         a task stuck on a stopped core moves to the coolest idle core
         that was granted a non-zero frequency. *)
      if config.migration then begin
        let core_temperatures = Machine.core_temperatures machine !temp in
        Array.iteri
          (fun c state ->
            match state.remaining with
            | Some w when !frequencies.(c) = 0.0 ->
                let best = ref None in
                Array.iteri
                  (fun d other ->
                    if
                      other.remaining = None
                      && !frequencies.(d) > 0.0
                      && (match !best with
                         | None -> true
                         | Some b ->
                             core_temperatures.(d) < core_temperatures.(b))
                    then best := Some d)
                  cores;
                (match !best with
                | Some d ->
                    cores.(d).remaining <- Some w;
                    state.remaining <- None;
                    incr migrations
                | None -> ())
            | Some _ | None -> ())
          cores
      end
    end;
    (* Dispatch queued tasks onto idle cores; the assignment policy
       may defer (thermally-aware admission control). *)
    let rec dispatch () =
      if not (Queue.is_empty queue) then
        match idle_cores () with
        | [] -> ()
        | idle -> (
            let core_temperatures = Machine.core_temperatures machine !temp in
            match assignment.Policy.choose ~idle ~core_temperatures with
            | None -> ()
            | Some c ->
                if cores.(c).remaining <> None then
                  invalid_arg "Engine.run: assignment picked a busy core";
                let task = Queue.pop queue in
                cores.(c).remaining <- Some task.Workload.Task.work;
                Stats.record_waiting stats
                  (Float.max 0.0 (time -. task.Workload.Task.arrival));
                dispatch ())
    in
    dispatch ();
    (* Advance running tasks at the current frequencies. *)
    let busy = Array.make n_cores false in
    Array.iteri
      (fun c state ->
        match state.remaining with
        | None -> ()
        | Some w ->
            busy.(c) <- true;
            busy_acc.(c) <- busy_acc.(c) +. dt;
            let progress = dt *. !frequencies.(c) /. machine.Machine.fmax in
            let w' = w -. progress in
            if w' <= 0.0 then begin
              state.remaining <- None;
              incr completed;
              Stats.record_completion stats
            end
            else state.remaining <- Some w')
      cores;
    (* Thermal step under the power this configuration draws. *)
    let power = Machine.power_vector machine ~frequencies:!frequencies ~busy in
    temp := Thermal.Rc_model.step_temperature machine.Machine.thermal !temp power;
    Stats.record_power stats ~dt (Vec.sum power);
    Stats.record_step stats ~dt
      ~core_temperatures:(Machine.core_temperatures machine !temp);
    incr step
  done;
  {
    stats;
    series = Array.of_list (List.rev !series);
    frequency_log = Array.of_list (List.rev !freq_log);
    unfinished = n_tasks - !completed;
    migrations = !migrations;
    wall_clock = Unix.gettimeofday () -. started;
  }
