(** Fault injection on the controller's observation/actuation path.

    The paper's guarantee assumes perfect per-core sensors, zero
    observation latency, and a continuous frequency actuator.  Real
    thermal-management units have none of these: sensors are noisy and
    occasionally die, readings arrive a control period late, and DVFS
    snaps to a ladder of operating points.  A fault is a composable
    imperfection injected between the engine and the controller:
    {!wrap} builds a controller that sees a corrupted observation and
    whose decisions pass through the corrupted actuator, while the
    plant underneath stays exact — so a run measures what the policy
    does under the fault, not what the fault does to physics.

    Every fault is deterministic: noise comes from a seeded splitmix64
    stream owned by the wrapped controller, so a fresh wrap (e.g. one
    per campaign cell) reproduces the same corruption sequence at any
    domain count. *)

type t =
  | Sensor_noise of { seed : int64; magnitude : float }
      (** Adds an independent uniform [[-magnitude, +magnitude]]
          perturbation (degrees C) to every core reading at every
          decision.  Bounded by construction, so a guard band of at
          least [magnitude] restores the guarantee. *)
  | Stuck_sensor of { core : int; reading : float option }
      (** Core [core]'s sensor reports [reading] forever; with [None]
          it freezes at the first value it observes (a sensor that
          died at run start). *)
  | Stale_observation of { epochs : int }
      (** The controller sees core temperatures from [epochs]
          decisions ago (the oldest available reading during the first
          [epochs] windows) — observation latency in whole DFS
          periods. *)
  | Quantized_actuator of { levels : float array }
      (** Every requested core frequency is floored onto the ascending
          ladder [levels] (0 when below the lowest level) — pass
          [Protemp.Ladder.levels] to model a real DVFS ladder.
          Rounding down only ever lowers power, so this fault degrades
          throughput, never safety. *)

val sensor_noise : ?seed:int64 -> magnitude:float -> unit -> t
(** [seed] defaults to [1807L].  Raises [Invalid_argument] on a
    negative magnitude. *)

val stuck_sensor : ?reading:float -> core:int -> unit -> t
(** Raises [Invalid_argument] on a negative core index. *)

val stale_observation : epochs:int -> t
(** Raises [Invalid_argument] unless [epochs >= 1]. *)

val quantized_actuator : levels:float array -> t
(** Raises [Invalid_argument] on an empty, unsorted or non-positive
    ladder. *)

val name : t -> string
(** A short label ("noise2.0C", "stuck3@85.0C", "stale2",
    "ladder8") for scenario names and reports. *)

val wrap : faults:t list -> Policy.controller -> Policy.controller
(** [wrap ~faults c] observes through, and actuates through, every
    fault in list order: observation faults corrupt the temperatures
    the controller sees (the observation's [max_core_temperature] is
    recomputed from the corrupted readings), actuator faults corrupt
    the frequencies it answers.  [wrap ~faults:[] c] is [c] itself.
    The wrapped controller carries the faults' mutable state (noise
    stream, freeze latch, staleness buffer), so build one per run.
    Its name is the base name with the fault labels appended. *)
