open Linalg

type t =
  | Sensor_noise of { seed : int64; magnitude : float }
  | Stuck_sensor of { core : int; reading : float option }
  | Stale_observation of { epochs : int }
  | Quantized_actuator of { levels : float array }

let sensor_noise ?(seed = 1807L) ~magnitude () =
  if magnitude < 0.0 then invalid_arg "Fault.sensor_noise: negative magnitude";
  Sensor_noise { seed; magnitude }

let stuck_sensor ?reading ~core () =
  if core < 0 then invalid_arg "Fault.stuck_sensor: negative core index";
  Stuck_sensor { core; reading }

let stale_observation ~epochs =
  if epochs < 1 then invalid_arg "Fault.stale_observation: need epochs >= 1";
  Stale_observation { epochs }

let quantized_actuator ~levels =
  if Array.length levels = 0 then
    invalid_arg "Fault.quantized_actuator: empty ladder";
  Array.iteri
    (fun i l ->
      if l <= 0.0 then
        invalid_arg "Fault.quantized_actuator: non-positive level";
      if i > 0 && l <= levels.(i - 1) then
        invalid_arg "Fault.quantized_actuator: ladder not strictly increasing")
    levels;
  Quantized_actuator { levels = Array.copy levels }

let name = function
  | Sensor_noise { magnitude; _ } -> Printf.sprintf "noise%gC" magnitude
  | Stuck_sensor { core; reading = Some r } ->
      Printf.sprintf "stuck%d@%gC" core r
  | Stuck_sensor { core; reading = None } -> Printf.sprintf "stuck%d" core
  | Stale_observation { epochs } -> Printf.sprintf "stale%d" epochs
  | Quantized_actuator { levels } ->
      Printf.sprintf "ladder%d" (Array.length levels)

(* Largest level <= f (0 when below the lowest), by binary search —
   the same rule as [Protemp.Ladder.floor], restated here because the
   dependency points the other way (protemp is built on sim). *)
let ladder_floor levels f =
  let n = Array.length levels in
  if f < levels.(0) then 0.0
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if levels.(mid) <= f then lo := mid else hi := mid - 1
    done;
    levels.(!lo)
  end

(* One fault instance, with its run-local mutable state: [corrupt]
   rewrites the core readings in place, [actuate] rewrites the decided
   frequencies in place. *)
type instance = {
  corrupt : time:float -> Vec.t -> unit;
  actuate : Vec.t -> unit;
}

let nothing_to_corrupt ~time:_ _ = ()
let nothing_to_actuate _ = ()

let instantiate = function
  | Sensor_noise { seed; magnitude } ->
      let rng = Workload.Rng.create seed in
      {
        corrupt =
          (fun ~time:_ temps ->
            for c = 0 to Vec.dim temps - 1 do
              temps.(c) <-
                temps.(c)
                +. Workload.Rng.uniform rng ~lo:(-.magnitude) ~hi:magnitude
            done);
        actuate = nothing_to_actuate;
      }
  | Stuck_sensor { core; reading } ->
      let frozen = ref reading in
      {
        corrupt =
          (fun ~time:_ temps ->
            if core < Vec.dim temps then begin
              (match !frozen with
              | None -> frozen := Some temps.(core)
              | Some _ -> ());
              match !frozen with
              | Some r -> temps.(core) <- r
              | None -> ()
            end);
        actuate = nothing_to_actuate;
      }
  | Stale_observation { epochs } ->
      (* Ring of the last [epochs + 1] readings: the front is exactly
         [epochs] decisions old once the buffer is warm, and the
         oldest reading available before that. *)
      let buffer = Queue.create () in
      {
        corrupt =
          (fun ~time:_ temps ->
            Queue.push (Vec.copy temps) buffer;
            if Queue.length buffer > epochs + 1 then ignore (Queue.pop buffer);
            Vec.blit ~src:(Queue.peek buffer) ~dst:temps);
        actuate = nothing_to_actuate;
      }
  | Quantized_actuator { levels } ->
      {
        corrupt = nothing_to_corrupt;
        actuate =
          (fun f ->
            for c = 0 to Vec.dim f - 1 do
              f.(c) <- ladder_floor levels f.(c)
            done);
      }

let wrap ~faults (c : Policy.controller) =
  match faults with
  | [] -> c
  | faults ->
      let instances = List.map instantiate faults in
      let decide obs =
        let temps = Vec.copy obs.Policy.core_temperatures in
        List.iter
          (fun i -> i.corrupt ~time:obs.Policy.time temps)
          instances;
        let corrupted =
          {
            obs with
            Policy.core_temperatures = temps;
            max_core_temperature = Vec.max temps;
          }
        in
        let f = Vec.copy (c.Policy.decide corrupted) in
        List.iter (fun i -> i.actuate f) instances;
        f
      in
      {
        Policy.controller_name =
          String.concat "+" (c.Policy.controller_name :: List.map name faults);
        decide;
      }
