type cls = {
  class_name : string;
  fmax : float;
  pmax : float;
  exponent : float;
  idle_activity : float;
}

type t = { classes : cls array; assignment : int array }

let validate_cls c =
  if c.class_name = "" then invalid_arg "Platform: empty class name";
  if c.fmax <= 0.0 then invalid_arg "Platform: non-positive fmax";
  if c.pmax <= 0.0 then invalid_arg "Platform: non-positive pmax";
  if c.exponent < 1.0 then invalid_arg "Platform: power exponent below 1";
  if c.idle_activity < 0.0 || c.idle_activity > 1.0 then
    invalid_arg "Platform: idle_activity outside [0,1]"

let make ~classes ~assignment =
  if Array.length classes = 0 then invalid_arg "Platform.make: no classes";
  Array.iter validate_cls classes;
  if Array.length assignment = 0 then invalid_arg "Platform.make: no cores";
  Array.iter
    (fun k ->
      if k < 0 || k >= Array.length classes then
        invalid_arg "Platform.make: class index out of range")
    assignment;
  { classes = Array.copy classes; assignment = Array.copy assignment }

let homogeneous ?(class_name = "core") ?(idle_activity = 0.3) ?(exponent = 2.0)
    ~n_cores ~fmax ~pmax () =
  if n_cores < 1 then
    invalid_arg "Platform.homogeneous: need at least one core";
  make
    ~classes:[| { class_name; fmax; pmax; exponent; idle_activity } |]
    ~assignment:(Array.make n_cores 0)

let n_cores t = Array.length t.assignment
let n_classes t = Array.length t.classes
let single_class t = Array.length t.classes = 1
let class_of t core = t.classes.(t.assignment.(core))

let core_fmax t = Array.map (fun k -> t.classes.(k).fmax) t.assignment
let core_pmax t = Array.map (fun k -> t.classes.(k).pmax) t.assignment
let core_exponent t = Array.map (fun k -> t.classes.(k).exponent) t.assignment

let core_idle_activity t =
  Array.map (fun k -> t.classes.(k).idle_activity) t.assignment

let max_fmax t =
  Array.fold_left (fun acc k -> Float.max acc t.classes.(k).fmax) 0.0
    t.assignment

let max_pmax t =
  Array.fold_left (fun acc k -> Float.max acc t.classes.(k).pmax) 0.0
    t.assignment
