open Linalg

type sample = { at : float; core_temperatures : Vec.t }

type epoch_view = {
  time : float;
  observation : Policy.observation;
  frequencies : Vec.t;
}

type step_view = {
  mutable at : float;
  dt : float;
  mutable temperatures : Vec.t;
  core_nodes : int array;
  mutable chip_power : float;
}

type t = {
  name : string;
  on_epoch : (epoch_view -> unit) option;
  on_step : (step_view -> unit) option;
  on_finish : (unit -> unit) option;
}

let make ?on_epoch ?on_step ?on_finish name =
  if on_epoch = None && on_step = None && on_finish = None then
    invalid_arg "Probe.make: a probe needs at least one callback";
  { name; on_epoch; on_step; on_finish }

let hottest_core v =
  let t = v.temperatures and nodes = v.core_nodes in
  let h = ref t.(Array.unsafe_get nodes 0) in
  for i = 1 to Array.length nodes - 1 do
    let x = t.(Array.unsafe_get nodes i) in
    if x > !h then h := x
  done;
  !h

let recorder () =
  let acc = ref [] in
  let probe =
    make "recorder"
      ~on_epoch:(fun v ->
        (* [observation.core_temperatures] is freshly allocated by the
           engine's observe step, so retaining it is safe — and
           matches what the old [record_series] path stored. *)
        acc :=
          { at = v.time; core_temperatures = v.observation.Policy.core_temperatures }
          :: !acc)
  in
  (probe, fun () -> Array.of_list (List.rev !acc))

let frequency_log () =
  let acc = ref [] in
  let probe =
    make "frequency-log"
      ~on_epoch:(fun v -> acc := (v.time, Vec.copy v.frequencies) :: !acc)
  in
  (probe, fun () -> Array.of_list (List.rev !acc))

let stats ?bands ~n_cores ~tmax () =
  let s = Stats.create ?bands ~n_cores ~tmax () in
  let probe =
    make "stats"
      ~on_step:(fun v ->
        Stats.record_step_nodes s ~dt:v.dt ~temperatures:v.temperatures
          ~nodes:v.core_nodes;
        (* Per-step accumulation in the same order as the engine's own
           energy integration, so the figures agree exactly. *)
        Stats.record_power s ~dt:v.dt v.chip_power)
  in
  (probe, s)

type audit = {
  audited_steps : int;
  violating_steps : int;
  worst_excess : float;
  first_violation : float option;
}

let thermal_audit ~tmax () =
  let steps = ref 0 in
  let violating = ref 0 in
  let worst = ref 0.0 in
  let first = ref None in
  let probe =
    make "thermal-audit"
      ~on_step:(fun v ->
        incr steps;
        let h = hottest_core v in
        if h > tmax then begin
          incr violating;
          if h -. tmax > !worst then worst := h -. tmax;
          if !first = None then first := Some v.at
        end)
  in
  ( probe,
    fun () ->
      {
        audited_steps = !steps;
        violating_steps = !violating;
        worst_excess = !worst;
        first_violation = !first;
      } )

let jsonl ?(every = 1) oc =
  if every < 1 then invalid_arg "Probe.jsonl: every must be >= 1";
  let k = ref 0 in
  make "jsonl"
    ~on_step:(fun v ->
      if !k mod every = 0 then
        Printf.fprintf oc "{\"t\":%.6f,\"hottest\":%.4f,\"power\":%.4f}\n" v.at
          (hottest_core v) v.chip_power;
      incr k)
    ~on_finish:(fun () -> flush oc)
