(** Per-core power-law classes and their assignment to cores.

    The paper's Eq. 2 is one [pmax (f/fmax)^2] shared by every core;
    a platform generalizes it to a small set of {e classes} — each
    with its own frequency ceiling, peak power, power-law exponent and
    idle activity factor — plus a class index per core.  A single-class
    platform is exactly the homogeneous model the first seven PRs
    measured, and {!Machine} guarantees it reproduces those results
    bit for bit. *)

type cls = {
  class_name : string;
  fmax : float;  (** Frequency ceiling, Hz. *)
  pmax : float;  (** Dynamic power at [fmax], Watts. *)
  exponent : float;
      (** Power-law exponent: [p = pmax (f/fmax)^exponent].  Must be
          at least 1; the convex model additionally requires at least
          2 so its quadratic surrogate stays an over-estimate. *)
  idle_activity : float;
      (** Fraction of the dynamic power an idle (but clocked) core
          burns; in [[0, 1]] so the model's all-busy assumption stays
          an upper bound. *)
}

type t = {
  classes : cls array;
  assignment : int array;
      (** One class index per core, in core order.  Length is the
          core count.  Treat as read-only: {!Machine} and the engine
          share it without copying. *)
}

val make : classes:cls array -> assignment:int array -> t
(** Validates every class (positive [fmax]/[pmax], [exponent >= 1],
    [idle_activity] in [[0, 1]]) and every assignment index; raises
    [Invalid_argument] otherwise.  Arrays are copied. *)

val homogeneous :
  ?class_name:string ->
  ?idle_activity:float ->
  ?exponent:float ->
  n_cores:int ->
  fmax:float ->
  pmax:float ->
  unit ->
  t
(** One class shared by [n_cores] cores — the paper's homogeneous
    machine.  [idle_activity] defaults to 0.3, [exponent] to 2. *)

val n_cores : t -> int
val n_classes : t -> int

val single_class : t -> bool
(** [true] iff exactly one class exists — the degenerate case that
    must match the homogeneous code path bit for bit. *)

val class_of : t -> int -> cls
(** The class of a core index. *)

val core_fmax : t -> float array
(** Per-core frequency ceilings, flattened in core order.  Fresh
    array on every call; the remaining accessors below behave the
    same. *)

val core_pmax : t -> float array
val core_exponent : t -> float array
val core_idle_activity : t -> float array

val max_fmax : t -> float
(** Largest per-core ceiling — the chip's reference frequency: the
    unit in which throughput targets and queued work are stated. *)

val max_pmax : t -> float
(** Largest per-core peak power — the model's power normalizer. *)
