(** Statistics collected during a simulation run.

    Matches the paper's reporting: per-band residency of the cores
    (its Fig. 6 categories <80, 80-90, 90-100, >100), task waiting
    times (Fig. 7), peak temperatures and threshold violations (the
    headline guarantee), and spatial gradients (Fig. 8 / Sec. 5.4). *)

open Linalg

type band = { lo : float; hi : float }

val paper_bands : band list
(** [<80], [80-90], [90-100], [>100] degrees Celsius. *)

type t

val create : ?bands:band list -> n_cores:int -> tmax:float -> unit -> t

(** {1 Recording (used by the engine)} *)

val record_step : t -> dt:float -> core_temperatures:Vec.t -> unit

val record_step_nodes :
  t -> dt:float -> temperatures:Vec.t -> nodes:int array -> unit
(** Like {!record_step} on the gather [temperatures.(nodes.(i))]:
    reads the core temperatures straight out of the full node vector,
    sparing the caller a scratch extraction.  Bit-identical to
    extracting and calling {!record_step}. *)

val record_power : t -> dt:float -> float -> unit
(** Accumulate the chip power drawn over one step (Watts). *)

val record_power_vector : t -> dt:float -> Vec.t -> unit
(** [record_power_vector s ~dt p] equals
    [record_power s ~dt (Vec.sum p)] bit-for-bit, but sums internally
    so the caller's step loop stays allocation-free. *)

val record_energy : t -> float -> unit
(** Add already-integrated Joules in one call.  A loop that keeps the
    running sum [e += power*dt] in a local (unboxed) accumulator and
    flushes it here once produces the same energy bit-for-bit as
    per-step {!record_power} calls, without the per-step call. *)

val record_waiting : t -> float -> unit
(** One completed dispatch: time the task spent queued.  Sub-epsilon
    negatives (>= -1e-9 s) — float dust from subtracting two nearby
    clocks, which fleet window boundaries produce routinely — are
    clamped to zero; genuinely negative waits below that still raise
    [Invalid_argument].  Each wait also lands in a bounded geometric
    histogram (256 buckets spanning 1 µs .. 1000 s at ~8.5% relative
    resolution) backing {!waiting_percentile}. *)

val record_completion : t -> unit

val equal : t -> t -> bool
(** Exact (no-tolerance) equality of every accumulated figure — the
    predicate behind the engine's golden regression tests. *)

(** {1 Reading} *)

val band_residency : t -> (band * float) list
(** Fraction of core-time spent in each band (averaged over cores);
    fractions sum to 1. *)

val time_above : t -> float
(** Fraction of core-time spent strictly above [tmax]. *)

val violation_steps : t -> int
(** Number of thermal steps during which at least one core exceeded
    [tmax]. *)

val total_steps : t -> int

val peak_temperature : t -> float

val peak_gradient : t -> float
(** Largest instantaneous spread [max_i t_i - min_i t_i] observed. *)

val mean_gradient : t -> float

val mean_waiting : t -> float
(** Mean task waiting time, seconds ([0.0] if nothing was
    dispatched). *)

val max_waiting : t -> float

val waiting_percentile : t -> float -> float
(** [waiting_percentile s q] for [q] in [[0, 1]] (e.g. [0.5], [0.95],
    [0.99]): the waiting-time quantile from the bounded sketch, in
    seconds.  Conservative — reports the matching bucket's upper edge
    (never understates the true quantile) tightened by the exact
    maximum; [0.0] if nothing was dispatched.  Raises
    [Invalid_argument] outside [[0, 1]]. *)

val merge_into : into:t -> t -> unit
(** [merge_into ~into s] folds [s]'s accumulators into [into]:
    counters, sums, band times and waiting sketches add; peaks and
    maxima take the max.  A fleet that merges per-chip stats in a
    fixed chip order gets bit-identical aggregates however the chips
    were scheduled across domains (float addition is order-sensitive,
    so the *merge* order is what must be pinned — the
    domain-count-invariance tests rely on this).  Both sides must
    share configuration ([n_cores], [tmax], bands) or
    [Invalid_argument] is raised. *)

val completed : t -> int

val simulated_time : t -> float

val energy : t -> float
(** Total chip energy drawn, Joules. *)

val average_power : t -> float
(** [energy / simulated_time], Watts. *)

val pp : Format.formatter -> t -> unit
