open Linalg

type t = {
  thermal : Thermal.Rc_model.discrete;
  n_nodes : int;
  n_cores : int;
  core_nodes : int array;
  fixed_power : Vec.t;
  platform : Platform.t;
  fmax : float;
  core_fmax : float array;
  core_pmax : float array;
  core_exponent : float array;
  core_idle : float array;
}

let make_platform ~thermal ~core_nodes ~fixed_power ~platform () =
  let n_nodes = Mat.rows thermal.Thermal.Rc_model.step in
  if Vec.dim fixed_power <> n_nodes then
    invalid_arg "Machine.make: fixed_power length mismatch";
  if Array.length core_nodes = 0 then
    invalid_arg "Machine.make: no core nodes";
  Array.iter
    (fun i ->
      if i < 0 || i >= n_nodes then
        invalid_arg "Machine.make: core node out of range")
    core_nodes;
  if Platform.n_cores platform <> Array.length core_nodes then
    invalid_arg "Machine.make: platform assigns a different core count";
  {
    thermal;
    n_nodes;
    n_cores = Array.length core_nodes;
    core_nodes;
    fixed_power = Vec.copy fixed_power;
    platform;
    fmax = Platform.max_fmax platform;
    core_fmax = Platform.core_fmax platform;
    core_pmax = Platform.core_pmax platform;
    core_exponent = Platform.core_exponent platform;
    core_idle = Platform.core_idle_activity platform;
  }

let make ?(idle_activity = 0.3) ~thermal ~core_nodes ~fixed_power ~fmax
    ~core_pmax () =
  if fmax <= 0.0 then invalid_arg "Machine.make: non-positive fmax";
  if core_pmax <= 0.0 then invalid_arg "Machine.make: non-positive core_pmax";
  if idle_activity < 0.0 || idle_activity > 1.0 then
    invalid_arg "Machine.make: idle_activity outside [0,1]";
  if Array.length core_nodes = 0 then
    invalid_arg "Machine.make: no core nodes";
  make_platform ~thermal ~core_nodes ~fixed_power
    ~platform:
      (Platform.homogeneous ~idle_activity
         ~n_cores:(Array.length core_nodes)
         ~fmax ~pmax:core_pmax ())
    ()

let niagara () =
  let fp = Thermal.Niagara.floorplan () in
  let model = Thermal.Niagara.model () in
  let thermal = Thermal.Rc_model.discretize model ~dt:Thermal.Niagara.dt in
  make ~thermal
    ~core_nodes:(Thermal.Niagara.core_nodes fp)
    ~fixed_power:(Thermal.Niagara.fixed_power fp)
    ~fmax:Thermal.Niagara.fmax ~core_pmax:Thermal.Niagara.core_pmax ()

let biglittle () =
  let fp = Thermal.Biglittle.floorplan () in
  let model = Thermal.Biglittle.model () in
  let thermal = Thermal.Rc_model.discretize model ~dt:Thermal.Biglittle.dt in
  let classes =
    Array.map
      (fun (c : Thermal.Biglittle.core_class) ->
        {
          Platform.class_name = c.Thermal.Biglittle.class_name;
          fmax = c.Thermal.Biglittle.fmax;
          pmax = c.Thermal.Biglittle.pmax;
          exponent = c.Thermal.Biglittle.exponent;
          idle_activity = c.Thermal.Biglittle.idle_activity;
        })
      (Thermal.Biglittle.classes ())
  in
  let platform =
    Platform.make ~classes ~assignment:(Thermal.Biglittle.class_assignment ())
  in
  make_platform ~thermal
    ~core_nodes:(Thermal.Biglittle.core_nodes fp)
    ~fixed_power:(Thermal.Biglittle.fixed_power fp)
    ~platform ()

let core_power m ~core ~frequency ~busy =
  if core < 0 || core >= m.n_cores then
    invalid_arg "Machine.core_power: core out of range";
  let f = Float.max 0.0 frequency in
  let r = f /. m.core_fmax.(core) in
  let e = m.core_exponent.(core) in
  (* Bit-exact: the quadratic case must associate exactly as the
     homogeneous [pmax *. (f /. fmax) *. (f /. fmax)] did. *)
  let dynamic =
    if Float.equal e 2.0 then m.core_pmax.(core) *. r *. r
    else m.core_pmax.(core) *. (r ** e)
  in
  if busy then dynamic else m.core_idle.(core) *. dynamic

let power_vector m ~frequencies ~busy =
  if Vec.dim frequencies <> m.n_cores then
    invalid_arg "Machine.power_vector: frequency vector length mismatch";
  if Array.length busy <> m.n_cores then
    invalid_arg "Machine.power_vector: busy array length mismatch";
  let p = Vec.copy m.fixed_power in
  Array.iteri
    (fun c node ->
      p.(node) <- core_power m ~core:c ~frequency:frequencies.(c) ~busy:busy.(c))
    m.core_nodes;
  p

let refresh_core_power m ~frequencies ~busy ~dst =
  if Vec.dim frequencies <> m.n_cores then
    invalid_arg "Machine.refresh_core_power: frequency vector length mismatch";
  if Array.length busy <> m.n_cores then
    invalid_arg "Machine.refresh_core_power: busy array length mismatch";
  if Vec.dim dst <> m.n_nodes then
    invalid_arg "Machine.refresh_core_power: destination length mismatch";
  let core_fmax = m.core_fmax and core_pmax = m.core_pmax in
  let core_exponent = m.core_exponent and core_idle = m.core_idle in
  let core_nodes = m.core_nodes in
  for c = 0 to m.n_cores - 1 do
    (* Inlined [core_power]: same arithmetic, but no boxed calls in
       the step loop.  On a single-class quadratic platform every
       per-core read equals the old scalar field, and
       [pmax *. r *. r] left-associates exactly as
       [pmax *. (f /. fmax) *. (f /. fmax)] did, so the produced
       powers are bit-identical to the homogeneous path. *)
    let f = Array.unsafe_get frequencies c in
    let f = if f < 0.0 then 0.0 else f in
    let r = f /. Array.unsafe_get core_fmax c in
    let e = Array.unsafe_get core_exponent c in
    let dynamic =
      if Float.equal e 2.0 then Array.unsafe_get core_pmax c *. r *. r
      else Array.unsafe_get core_pmax c *. (r ** e)
    in
    Array.unsafe_set dst
      (Array.unsafe_get core_nodes c)
      (if Array.unsafe_get busy c then dynamic
       else Array.unsafe_get core_idle c *. dynamic)
  done

let power_vector_into m ~frequencies ~busy ~dst =
  if Vec.dim dst <> m.n_nodes then
    invalid_arg "Machine.power_vector_into: destination length mismatch";
  Array.blit m.fixed_power 0 dst 0 m.n_nodes;
  refresh_core_power m ~frequencies ~busy ~dst

let core_temperatures m t =
  if Vec.dim t <> m.n_nodes then
    invalid_arg "Machine.core_temperatures: temperature length mismatch";
  Array.map (fun node -> t.(node)) m.core_nodes

let core_temperatures_into m t ~dst =
  if Vec.dim t <> m.n_nodes then
    invalid_arg "Machine.core_temperatures_into: temperature length mismatch";
  if Vec.dim dst <> m.n_cores then
    invalid_arg "Machine.core_temperatures_into: destination length mismatch";
  let core_nodes = m.core_nodes in
  for c = 0 to m.n_cores - 1 do
    Array.unsafe_set dst c (Array.unsafe_get t (Array.unsafe_get core_nodes c))
  done
