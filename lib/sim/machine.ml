open Linalg

type t = {
  thermal : Thermal.Rc_model.discrete;
  n_nodes : int;
  n_cores : int;
  core_nodes : int array;
  fixed_power : Vec.t;
  fmax : float;
  core_pmax : float;
  idle_activity : float;
}

let make ?(idle_activity = 0.3) ~thermal ~core_nodes ~fixed_power ~fmax
    ~core_pmax () =
  let n_nodes = Mat.rows thermal.Thermal.Rc_model.step in
  if Vec.dim fixed_power <> n_nodes then
    invalid_arg "Machine.make: fixed_power length mismatch";
  if Array.length core_nodes = 0 then
    invalid_arg "Machine.make: no core nodes";
  Array.iter
    (fun i ->
      if i < 0 || i >= n_nodes then
        invalid_arg "Machine.make: core node out of range")
    core_nodes;
  if fmax <= 0.0 then invalid_arg "Machine.make: non-positive fmax";
  if core_pmax <= 0.0 then invalid_arg "Machine.make: non-positive core_pmax";
  if idle_activity < 0.0 || idle_activity > 1.0 then
    invalid_arg "Machine.make: idle_activity outside [0,1]";
  {
    thermal;
    n_nodes;
    n_cores = Array.length core_nodes;
    core_nodes;
    fixed_power = Vec.copy fixed_power;
    fmax;
    core_pmax;
    idle_activity;
  }

let niagara () =
  let fp = Thermal.Niagara.floorplan () in
  let model = Thermal.Niagara.model () in
  let thermal = Thermal.Rc_model.discretize model ~dt:Thermal.Niagara.dt in
  make ~thermal
    ~core_nodes:(Thermal.Niagara.core_nodes fp)
    ~fixed_power:(Thermal.Niagara.fixed_power fp)
    ~fmax:Thermal.Niagara.fmax ~core_pmax:Thermal.Niagara.core_pmax ()

let core_power m ~frequency ~busy =
  let f = Float.max 0.0 frequency in
  let dynamic = m.core_pmax *. (f /. m.fmax) *. (f /. m.fmax) in
  if busy then dynamic else m.idle_activity *. dynamic

let power_vector m ~frequencies ~busy =
  if Vec.dim frequencies <> m.n_cores then
    invalid_arg "Machine.power_vector: frequency vector length mismatch";
  if Array.length busy <> m.n_cores then
    invalid_arg "Machine.power_vector: busy array length mismatch";
  let p = Vec.copy m.fixed_power in
  Array.iteri
    (fun c node ->
      p.(node) <- core_power m ~frequency:frequencies.(c) ~busy:busy.(c))
    m.core_nodes;
  p

let refresh_core_power m ~frequencies ~busy ~dst =
  if Vec.dim frequencies <> m.n_cores then
    invalid_arg "Machine.refresh_core_power: frequency vector length mismatch";
  if Array.length busy <> m.n_cores then
    invalid_arg "Machine.refresh_core_power: busy array length mismatch";
  if Vec.dim dst <> m.n_nodes then
    invalid_arg "Machine.refresh_core_power: destination length mismatch";
  let fmax = m.fmax and core_pmax = m.core_pmax in
  let idle_activity = m.idle_activity in
  let core_nodes = m.core_nodes in
  for c = 0 to m.n_cores - 1 do
    (* Inlined [core_power]: same arithmetic, but no boxed calls in
       the step loop. *)
    let f = Array.unsafe_get frequencies c in
    let f = if f < 0.0 then 0.0 else f in
    let dynamic = core_pmax *. (f /. fmax) *. (f /. fmax) in
    Array.unsafe_set dst
      (Array.unsafe_get core_nodes c)
      (if Array.unsafe_get busy c then dynamic else idle_activity *. dynamic)
  done

let power_vector_into m ~frequencies ~busy ~dst =
  if Vec.dim dst <> m.n_nodes then
    invalid_arg "Machine.power_vector_into: destination length mismatch";
  Array.blit m.fixed_power 0 dst 0 m.n_nodes;
  refresh_core_power m ~frequencies ~busy ~dst

let core_temperatures m t =
  if Vec.dim t <> m.n_nodes then
    invalid_arg "Machine.core_temperatures: temperature length mismatch";
  Array.map (fun node -> t.(node)) m.core_nodes

let core_temperatures_into m t ~dst =
  if Vec.dim t <> m.n_nodes then
    invalid_arg "Machine.core_temperatures_into: temperature length mismatch";
  if Vec.dim dst <> m.n_cores then
    invalid_arg "Machine.core_temperatures_into: destination length mismatch";
  let core_nodes = m.core_nodes in
  for c = 0 to m.n_cores - 1 do
    Array.unsafe_set dst c (Array.unsafe_get t (Array.unsafe_get core_nodes c))
  done
