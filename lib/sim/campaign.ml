type scenario = {
  scenario_name : string;
  seed : int64;
  n_tasks : int;
  mix : Workload.Mix.t;
}

let scenario ?(seed = 2008L) ?(n_tasks = 20_000) ~name mix =
  if n_tasks <= 0 then invalid_arg "Campaign.scenario: non-positive n_tasks";
  { scenario_name = name; seed; n_tasks; mix }

type spec = {
  controllers : (string * (unit -> Policy.controller)) list;
  assignments : Policy.assignment list;
  scenarios : scenario list;
  faults : (string * Fault.t list) list;
  config : Engine.config;
}

(* An empty fault axis means "the clean run only": the grid always has
   at least one fault coordinate, and with no faults declared the
   controllers run unwrapped — cells are bit-identical to a spec that
   predates the axis. *)
let fault_axis spec =
  match spec.faults with [] -> [| ("none", []) |] | fs -> Array.of_list fs

let cells spec =
  List.length spec.controllers
  * List.length spec.assignments
  * List.length spec.scenarios
  * Array.length (fault_axis spec)

type cell = {
  controller_name : string;
  assignment_name : string;
  scenario_name : string;
  fault_name : string;
  index : int;
  result : Engine.result;
}

let run ?domains ?on_cell ~machine spec =
  if spec.controllers = [] then invalid_arg "Campaign.run: no controllers";
  if spec.assignments = [] then invalid_arg "Campaign.run: no assignments";
  if spec.scenarios = [] then invalid_arg "Campaign.run: no scenarios";
  let domains =
    match domains with Some d -> d | None -> Parallel.Pool.default_domains ()
  in
  let controllers = Array.of_list spec.controllers in
  let assignments = Array.of_list spec.assignments in
  let scenarios = Array.of_list spec.scenarios in
  (* Traces are immutable once generated, so each scenario's trace is
     built once up front and shared read-only across the grid. *)
  let traces =
    Array.map
      (fun s ->
        Workload.Trace.generate ~n_cores:machine.Machine.n_cores ~seed:s.seed
          ~n_tasks:s.n_tasks s.mix)
      scenarios
  in
  let faults = fault_axis spec in
  let n_assign = Array.length assignments in
  let n_scen = Array.length scenarios in
  let n_fault = Array.length faults in
  let report =
    match on_cell with
    | None -> fun _ -> ()
    | Some f ->
        if domains <= 1 then f
        else
          (* Cells complete out of order; serialize the callback so
             user code never runs concurrently with itself. *)
          let m = Mutex.create () in
          fun c ->
            Mutex.lock m;
            Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () -> f c)
  in
  let run_cell index =
    let ci = index / (n_assign * n_scen * n_fault) in
    let ai = index / (n_scen * n_fault) mod n_assign in
    let si = index / n_fault mod n_scen in
    let fi = index mod n_fault in
    let name, make_controller = controllers.(ci) in
    let assignment = assignments.(ai) in
    let fault_name, fault_list = faults.(fi) in
    (* Wrapping happens inside the cell, so every cell owns a fresh
       fault state (noise stream, staleness buffer) — seeded faults
       replay identically at any domain count. *)
    let controller = Fault.wrap ~faults:fault_list (make_controller ()) in
    let result =
      Engine.run ~config:spec.config machine controller assignment traces.(si)
    in
    let cell =
      {
        controller_name = name;
        assignment_name = assignment.Policy.assignment_name;
        scenario_name = scenarios.(si).scenario_name;
        fault_name;
        index;
        result;
      }
    in
    report cell;
    cell
  in
  Parallel.Pool.map ~domains run_cell
    (Array.length controllers * n_assign * n_scen * n_fault)

let pp_summary ppf cells =
  Format.fprintf ppf "%-12s %-14s %-10s %-10s %9s %9s %9s %9s %6s@."
    "controller" "assignment" "scenario" "fault" "peak C" "above s" "wait ms"
    "energy J" "undone";
  Array.iter
    (fun c ->
      let s = c.result.Engine.stats in
      Format.fprintf ppf "%-12s %-14s %-10s %-10s %9.2f %9.2f %9.3f %9.1f %6d@."
        c.controller_name c.assignment_name c.scenario_name c.fault_name
        (Stats.peak_temperature s) (Stats.time_above s)
        (Stats.mean_waiting s *. 1e3)
        (Stats.energy s) c.result.Engine.unfinished)
    cells
