(** Composable observers of a simulation run.

    The engine used to hard-code its instrumentation: one
    [record_series] flag controlling a temperature series and a
    frequency log baked into the result.  A probe is instead an
    independent observer with optional callbacks at the three
    granularities a run exposes — DFS epochs, thermal steps, and run
    completion — and [Engine.run] composes any subset.  The step view
    is a single mutable record the engine refills in place, so an
    attached probe costs a few callback invocations per step and an
    unprobed run costs nothing at all. *)

open Linalg

type sample = { at : float; core_temperatures : Vec.t }
(** One per-epoch temperature snapshot (what the engine's old
    [series] recorded). *)

type epoch_view = {
  time : float;
  observation : Policy.observation;
      (** Exactly what the controller saw this epoch; safe to
          retain. *)
  frequencies : Vec.t;
      (** The granted (clamped) frequencies.  This is the engine's
          live buffer: copy it if you keep it. *)
}

type step_view = {
  mutable at : float;  (** Simulated time of this step, seconds. *)
  dt : float;
  mutable temperatures : Vec.t;
      (** Full node temperature vector after the step.  A ping-pong
          buffer the engine reuses: read, never retain or mutate. *)
  core_nodes : int array;  (** Node index of each core. *)
  mutable chip_power : float;  (** Total chip power this step, W. *)
}

type t = {
  name : string;
  on_epoch : (epoch_view -> unit) option;
  on_step : (step_view -> unit) option;
  on_finish : (unit -> unit) option;
}

val make :
  ?on_epoch:(epoch_view -> unit) ->
  ?on_step:(step_view -> unit) ->
  ?on_finish:(unit -> unit) ->
  string ->
  t
(** A probe with the given callbacks; omitted hooks cost nothing. *)

(** {1 Stock probes}

    Constructors return the probe together with an accessor for what
    it gathered; read the accessor after the run. *)

val recorder : unit -> t * (unit -> sample array)
(** Per-epoch core-temperature snapshots, in time order — the old
    [result.series]. *)

val frequency_log : unit -> t * (unit -> (float * Vec.t) array)
(** Per-epoch controller decisions (copied), in time order — the old
    [result.frequency_log]. *)

val stats : ?bands:Stats.band list -> n_cores:int -> tmax:float -> unit -> t * Stats.t
(** An independent {!Stats.t} fed from the step stream — e.g. to
    score a run against a second threshold or band set.  Thermal and
    energy figures match the engine's own statistics bit-for-bit;
    scheduling figures (waiting, dispatch counts) stay zero because
    probes only see the thermal stream. *)

type audit = {
  audited_steps : int;
  violating_steps : int;  (** Steps with some core above [tmax]. *)
  worst_excess : float;  (** Peak [hottest - tmax], 0 if never above. *)
  first_violation : float option;  (** Time of the first violation. *)
}

val thermal_audit : tmax:float -> unit -> t * (unit -> audit)
(** Watches every step for cores above [tmax] — the run-time
    counterpart of the offline {!Protemp.Guarantee} audit. *)

val jsonl : ?every:int -> out_channel -> t
(** Streams one JSON object per sampled step
    ([{"t":..,"hottest":..,"power":..}]) to the channel; [every]
    (default 1) subsamples.  Flushes on finish; the caller owns the
    channel. *)
