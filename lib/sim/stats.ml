open Linalg

type band = { lo : float; hi : float }

let paper_bands =
  [
    { lo = neg_infinity; hi = 80.0 };
    { lo = 80.0; hi = 90.0 };
    { lo = 90.0; hi = 100.0 };
    { lo = 100.0; hi = infinity };
  ]

(* The float accumulators live in their own all-float record: OCaml
   stores such records flat (unboxed fields), so the per-step mutable
   writes below do not allocate.  Mixing them with the int and array
   fields of [t] would box every float field and allocate a fresh box
   on every [<-]. *)
type acc = {
  mutable above_time : float;  (* core-seconds above tmax *)
  mutable sim_time : float;
  mutable peak : float;
  mutable peak_gradient : float;
  mutable gradient_sum : float;
  mutable waiting_sum : float;
  mutable waiting_max : float;
  mutable energy : float;
}

(* Bounded waiting-time sketch: a fixed geometric histogram.  Bucket 0
   holds waits below [hist_min]; buckets 1..254 are geometric with
   ratio [hist_gamma] up to [hist_max]; bucket 255 is the overflow.
   256 ints regardless of run length, ~8.5% relative resolution
   (gamma = (hist_max/hist_min)^(1/254)), and merging two sketches is
   an elementwise sum — what the fleet aggregation relies on. *)
let hist_buckets = 256
let hist_min = 1e-6
let hist_max = 1e3

let hist_gamma =
  exp (log (hist_max /. hist_min) /. float_of_int (hist_buckets - 2))

let hist_inv_log_gamma = 1.0 /. log hist_gamma

(* Cross-chip clock arithmetic (fleet window boundaries vs per-chip
   step clocks) legitimately produces waits like -1e-18; anything
   below this is a real accounting bug and still raises. *)
let waiting_clamp = -1e-9

type t = {
  bands : band array;
  band_lo : float array;  (* bands.(b).lo, unboxed for the hot loop *)
  band_hi : float array;
  n_cores : int;
  tmax : float;
  band_time : float array;  (* core-seconds accumulated per band *)
  wait_hist : int array;  (* waiting-time sketch, hist_buckets wide *)
  acc : acc;
  mutable violation_steps : int;
  mutable total_steps : int;
  mutable dispatched : int;
  mutable completed : int;
}

let create ?(bands = paper_bands) ~n_cores ~tmax () =
  if n_cores <= 0 then invalid_arg "Stats.create: non-positive cores";
  {
    bands = Array.of_list bands;
    band_lo = Array.of_list (List.map (fun b -> b.lo) bands);
    band_hi = Array.of_list (List.map (fun b -> b.hi) bands);
    n_cores;
    tmax;
    band_time = Array.make (List.length bands) 0.0;
    wait_hist = Array.make hist_buckets 0;
    acc =
      {
        above_time = 0.0;
        sim_time = 0.0;
        peak = neg_infinity;
        peak_gradient = 0.0;
        gradient_sum = 0.0;
        waiting_sum = 0.0;
        waiting_max = 0.0;
        energy = 0.0;
      };
    violation_steps = 0;
    total_steps = 0;
    dispatched = 0;
    completed = 0;
  }

(* The whole recording path runs once per thermal step, so it is
   written with plain [for] loops and inlined min/max: no closures,
   no boxed [Float.max] calls, zero heap allocation. *)
let record_step s ~dt ~core_temperatures =
  let n = Vec.dim core_temperatures in
  if n <> s.n_cores then
    invalid_arg "Stats.record_step: temperature vector length mismatch";
  let a = s.acc in
  let hottest = ref (Array.unsafe_get core_temperatures 0)
  and coldest = ref (Array.unsafe_get core_temperatures 0) in
  for i = 1 to n - 1 do
    let x = Array.unsafe_get core_temperatures i in
    if x > !hottest then hottest := x;
    if x < !coldest then coldest := x
  done;
  let hottest = !hottest and coldest = !coldest in
  s.total_steps <- s.total_steps + 1;
  a.sim_time <- a.sim_time +. dt;
  if hottest > a.peak then a.peak <- hottest;
  let spread = hottest -. coldest in
  if spread > a.peak_gradient then a.peak_gradient <- spread;
  a.gradient_sum <- a.gradient_sum +. spread;
  if hottest > s.tmax then s.violation_steps <- s.violation_steps + 1;
  let band_lo = s.band_lo
  and band_hi = s.band_hi
  and band_time = s.band_time in
  let n_bands = Array.length band_lo in
  for i = 0 to n - 1 do
    let temp = Array.unsafe_get core_temperatures i in
    if temp > s.tmax then a.above_time <- a.above_time +. dt;
    (* Bands partition the line, so at most one matches; stopping at
       the first hit changes which comparisons run but not a single
       float operation. *)
    let b = ref 0 in
    let continue = ref true in
    while !continue && !b < n_bands do
      if
        temp >= Array.unsafe_get band_lo !b
        && temp < Array.unsafe_get band_hi !b
      then begin
        Array.unsafe_set band_time !b (Array.unsafe_get band_time !b +. dt);
        continue := false
      end
      else incr b
    done
  done

let record_step_nodes s ~dt ~temperatures ~nodes =
  let n = Array.length nodes in
  if n <> s.n_cores then
    invalid_arg "Stats.record_step_nodes: node index array length mismatch";
  let a = s.acc in
  let band_lo = s.band_lo
  and band_hi = s.band_hi
  and band_time = s.band_time in
  let n_bands = Array.length band_lo in
  let tmax = s.tmax in
  (* Single fused pass over the gather [temperatures.(nodes.(i))].
     The reference [record_step] runs a min/max pass and then a band
     pass; each accumulator below sees exactly the same operand
     sequence as there (the accumulators are independent), so the
     result is bit-identical to extracting the core temperatures and
     calling [record_step] — without the scratch extraction. *)
  let t0 = temperatures.(Array.unsafe_get nodes 0) in
  let hottest = ref t0
  and coldest = ref t0 in
  for i = 0 to n - 1 do
    let temp = temperatures.(Array.unsafe_get nodes i) in
    if i > 0 then begin
      if temp > !hottest then hottest := temp;
      if temp < !coldest then coldest := temp
    end;
    if temp > tmax then a.above_time <- a.above_time +. dt;
    let b = ref 0 in
    let continue = ref true in
    while !continue && !b < n_bands do
      if
        temp >= Array.unsafe_get band_lo !b
        && temp < Array.unsafe_get band_hi !b
      then begin
        Array.unsafe_set band_time !b (Array.unsafe_get band_time !b +. dt);
        continue := false
      end
      else incr b
    done
  done;
  let hottest = !hottest and coldest = !coldest in
  s.total_steps <- s.total_steps + 1;
  a.sim_time <- a.sim_time +. dt;
  if hottest > a.peak then a.peak <- hottest;
  let spread = hottest -. coldest in
  if spread > a.peak_gradient then a.peak_gradient <- spread;
  a.gradient_sum <- a.gradient_sum +. spread;
  if hottest > tmax then s.violation_steps <- s.violation_steps + 1

let record_power s ~dt power =
  if power < 0.0 then invalid_arg "Stats.record_power: negative power";
  s.acc.energy <- s.acc.energy +. (power *. dt)

let record_power_vector s ~dt p =
  (* Summing here instead of taking a float argument keeps the step
     loop free of the boxed return a [Vec.sum] call would allocate.
     The ascending-index sum matches [Vec.sum]'s fold order, so the
     accumulated energy is bit-identical to
     [record_power ~dt (Vec.sum p)]. *)
  let total = ref 0.0 in
  for i = 0 to Vec.dim p - 1 do
    total := !total +. Array.unsafe_get p i
  done;
  if !total < 0.0 then invalid_arg "Stats.record_power_vector: negative power";
  s.acc.energy <- s.acc.energy +. (!total *. dt)

let record_energy s j =
  if j < 0.0 then invalid_arg "Stats.record_energy: negative energy";
  s.acc.energy <- s.acc.energy +. j

let record_waiting s w =
  (* Sub-epsilon negatives are float dust from subtracting two nearby
     clocks (a window boundary vs. a per-chip step clock), not a
     scheduling bug; clamping them keeps a week-long fleet run from
     dying on a [-1e-18].  Anything below [waiting_clamp] still
     raises. *)
  let w =
    if w >= 0.0 then w
    else if w >= waiting_clamp then 0.0
    else invalid_arg "Stats.record_waiting: negative waiting time"
  in
  let a = s.acc in
  a.waiting_sum <- a.waiting_sum +. w;
  if w > a.waiting_max then a.waiting_max <- w;
  let b =
    if w < hist_min then 0
    else
      let raw = 1 + int_of_float (log (w /. hist_min) *. hist_inv_log_gamma) in
      if raw > hist_buckets - 1 then hist_buckets - 1 else raw
  in
  Array.unsafe_set s.wait_hist b (Array.unsafe_get s.wait_hist b + 1);
  s.dispatched <- s.dispatched + 1

let record_completion s = s.completed <- s.completed + 1

let equal (a : t) (b : t) =
  (* Structural equality over every accumulated figure; floats compare
     numerically (no tolerance), which is what the engine's golden
     regression test relies on. *)
  a = b

let core_time s = s.acc.sim_time *. float_of_int s.n_cores

let band_residency s =
  let total = Float.max 1e-300 (core_time s) in
  Array.to_list
    (Array.mapi (fun b band -> (band, s.band_time.(b) /. total)) s.bands)

let time_above s = s.acc.above_time /. Float.max 1e-300 (core_time s)
let violation_steps s = s.violation_steps
let total_steps s = s.total_steps
let peak_temperature s = s.acc.peak
let peak_gradient s = s.acc.peak_gradient

let mean_gradient s =
  s.acc.gradient_sum /. float_of_int (Stdlib.max 1 s.total_steps)

let mean_waiting s =
  if s.dispatched = 0 then 0.0
  else s.acc.waiting_sum /. float_of_int s.dispatched

let max_waiting s = s.acc.waiting_max

let waiting_percentile s q =
  if q < 0.0 || q > 1.0 then
    invalid_arg "Stats.waiting_percentile: quantile outside [0, 1]";
  if s.dispatched = 0 then 0.0
  else begin
    let rank =
      let r = int_of_float (ceil (q *. float_of_int s.dispatched)) in
      if r < 1 then 1 else r
    in
    let b = ref 0 and cum = ref 0 in
    while !cum < rank && !b < hist_buckets do
      cum := !cum + s.wait_hist.(!b);
      if !cum < rank then incr b
    done;
    (* Report the bucket's upper edge — a conservative (never
       understated) quantile with the sketch's ~8.5% resolution —
       tightened by the exact maximum, which also makes an all-zero
       sketch report 0 rather than [hist_min]. *)
    let edge =
      if !b = 0 then hist_min
      else hist_min *. (hist_gamma ** float_of_int !b)
    in
    Float.min edge s.acc.waiting_max
  end

let merge_into ~into s =
  if into == s then invalid_arg "Stats.merge_into: cannot merge into itself";
  if into.n_cores <> s.n_cores then
    invalid_arg "Stats.merge_into: core-count mismatch";
  (* Exact comparison is intended: merging is only defined between
     stats created with identical configuration. *)
  if not (Float.equal into.tmax s.tmax) then
    invalid_arg "Stats.merge_into: tmax mismatch";
  let n_bands = Array.length into.band_lo in
  if n_bands <> Array.length s.band_lo then
    invalid_arg "Stats.merge_into: band mismatch";
  for b = 0 to n_bands - 1 do
    (* Exact comparison is intended: band edges must match exactly. *)
    if
      not
        (Float.equal into.band_lo.(b) s.band_lo.(b)
        && Float.equal into.band_hi.(b) s.band_hi.(b))
    then invalid_arg "Stats.merge_into: band mismatch"
  done;
  for b = 0 to n_bands - 1 do
    into.band_time.(b) <- into.band_time.(b) +. s.band_time.(b)
  done;
  for b = 0 to hist_buckets - 1 do
    into.wait_hist.(b) <- into.wait_hist.(b) + s.wait_hist.(b)
  done;
  let a = into.acc and o = s.acc in
  a.above_time <- a.above_time +. o.above_time;
  a.sim_time <- a.sim_time +. o.sim_time;
  if o.peak > a.peak then a.peak <- o.peak;
  if o.peak_gradient > a.peak_gradient then a.peak_gradient <- o.peak_gradient;
  a.gradient_sum <- a.gradient_sum +. o.gradient_sum;
  a.waiting_sum <- a.waiting_sum +. o.waiting_sum;
  if o.waiting_max > a.waiting_max then a.waiting_max <- o.waiting_max;
  a.energy <- a.energy +. o.energy;
  into.violation_steps <- into.violation_steps + s.violation_steps;
  into.total_steps <- into.total_steps + s.total_steps;
  into.dispatched <- into.dispatched + s.dispatched;
  into.completed <- into.completed + s.completed

let completed s = s.completed
let simulated_time s = s.acc.sim_time
let energy s = s.acc.energy
let average_power s = s.acc.energy /. Float.max 1e-300 s.acc.sim_time

let pp ppf s =
  Format.fprintf ppf
    "@[<v>%d tasks completed in %.1f s@,peak %.1f C, %.2f%% of core-time \
     above %.0f C (%d violating steps)@,mean waiting %.2f ms (max %.1f \
     ms)@,gradient: mean %.2f C, peak %.2f C"
    s.completed s.acc.sim_time s.acc.peak
    (100.0 *. time_above s)
    s.tmax s.violation_steps
    (mean_waiting s *. 1e3)
    (s.acc.waiting_max *. 1e3)
    (mean_gradient s) s.acc.peak_gradient;
  Format.fprintf ppf "@,energy %.1f J (average power %.2f W)@,bands:"
    s.acc.energy (average_power s);
  List.iter
    (fun ({ lo; hi }, frac) ->
      Format.fprintf ppf "@,  [%6.1f, %6.1f): %5.1f%%" lo hi (100.0 *. frac))
    (band_residency s);
  Format.fprintf ppf "@]"
