(** Cholesky factorization of block-tridiagonal SPD matrices.

    Generalizes {!Tridiag} (scalar blocks, Thomas algorithm) to an
    arbitrary partition of the index range into K contiguous blocks:
    the matrix may couple index [i] to index [j] only when their
    blocks are equal or adjacent.  The Cholesky factor of such a
    matrix fills in nothing outside the block band, so both the
    factorization and the triangular solves skip every out-of-band
    entry — cost O(sum n_k^3) instead of O((sum n_k)^3).

    The interior-point solver's normal-equations matrix G^T W^-2 G is
    exactly of this shape under the thermal model's variable order
    (frequency block, power block, gradient-bound block): the
    epigraph cones couple [f_j] to [p_j] (adjacent blocks), the
    thermal rows touch only powers, and the gradient rows couple
    powers to [(u, l)] — frequencies and gradient bounds never meet.

    The input is a plain dense {!Mat.t}; only in-band entries of its
    lower triangle are read, so the caller may assemble into a dense
    buffer with any garbage outside the band.  Jitter and retry
    semantics mirror {!Chol} (including {!Chol.Not_positive_definite}
    on failure), and the factor is preallocated for the solver's
    allocation-free hot path. *)

type t
(** A preallocated block-tridiagonal factor workspace. *)

val preallocate : int array -> t
(** [preallocate sizes] is a factor workspace for the partition with
    block [k] of dimension [sizes.(k)].  All sizes must be positive
    ([Invalid_argument] otherwise).  Contents are meaningless until
    the first factorization. *)

val dim : t -> int
(** Total dimension [sum sizes]. *)

val sizes : t -> int array
(** The block partition (a copy). *)

val factorize_attempt_into : t -> jitter:float -> Mat.t -> unit
(** One factorization attempt of [a + jitter*I] into the preallocated
    factor, reading only in-band entries of [a]'s lower triangle.
    Raises {!Chol.Not_positive_definite} on a failed pivot, leaving
    the factor's contents unspecified.  Allocation-free. *)

val factorize_jittered_into :
  ?initial:float -> ?growth:float -> ?max_tries:int -> t -> Mat.t -> float * int
(** Same retry schedule and return convention as
    {!Chol.factorize_jittered_into}: returns the jitter that succeeded
    ([0.0] if none was needed) and the number of attempts ([1] for a
    clean first factorization; each extra attempt is a jitter
    retry). *)

val solve_factorized_into : t -> Vec.t -> dst:Vec.t -> unit
(** Solve [A x = b] from the factor, writing into [dst] ([dst] may be
    [b] itself).  Skips every out-of-band entry.  Allocation-free. *)
