(** Dense matrices stored row-major in a flat float array.

    The representation is immutable-by-convention: all pure operations
    allocate a fresh matrix; the few mutating operations are suffixed
    [_into] or clearly named ([set]).  Dimensions are checked and
    [Invalid_argument] is raised on mismatch. *)

type t

(** {1 Construction} *)

val create : int -> int -> float -> t
(** [create rows cols x] is a [rows] x [cols] matrix filled with [x]. *)

val zeros : int -> int -> t

val identity : int -> t

val init : int -> int -> (int -> int -> float) -> t
(** [init rows cols f] has entry [f i j] at row [i], column [j]. *)

val of_rows : float array array -> t
(** Rows must all have the same length. *)

val of_diag : Vec.t -> t

val copy : t -> t

(** {1 Access} *)

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val row : t -> int -> Vec.t
val col : t -> int -> Vec.t
val diag : t -> Vec.t
val to_rows : t -> float array array

(** {1 Arithmetic} *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val transpose : t -> t
val matmul : t -> t -> t

val fill : t -> float -> unit
(** Set every entry to the given value in place. *)

val gemv_into :
  ?trans:bool -> ?alpha:float -> ?beta:float -> t -> Vec.t -> dst:Vec.t -> unit
(** [gemv_into ~trans ~alpha ~beta a x ~dst] updates
    [dst := alpha * op(a) * x + beta * dst] in place, where [op] is the
    identity ([trans = false], the default) or the transpose
    ([trans = true], computed without forming it).  Defaults
    [alpha = 1.0], [beta = 0.0] (plain overwrite; [dst]'s prior
    contents are then ignored entirely).  [dst] must not alias [x]. *)

val syrk_scaled_into : t -> Vec.t -> dst:t -> unit
(** [syrk_scaled_into a d ~dst] updates
    [dst := dst + a^T * diag(d) * a] on the {e upper triangle only}
    (pair with {!mirror_upper}).  [d] has one weight per row of [a].
    Rows are processed in pairs so the destination traffic is halved
    relative to [Vec.dim d] rank-one updates — the barrier solver's
    Hessian kernel. *)

val mul_vec : t -> Vec.t -> Vec.t
(** [mul_vec a x] is [a * x]. *)

val mul_vec_into : t -> Vec.t -> dst:Vec.t -> unit
(** Like {!mul_vec} but writes into [dst] (which must not alias the
    input vector). *)

val tmul_vec : t -> Vec.t -> Vec.t
(** [tmul_vec a x] is [transpose a * x], without forming the
    transpose. *)

val outer : Vec.t -> Vec.t -> t
(** [outer x y] is the rank-one matrix [x * y^T]. *)

val add_outer_into : t -> float -> Vec.t -> unit
(** [add_outer_into a c x] updates [a := a + c * x * x^T] in place.
    [a] must be square with dimension [Vec.dim x]. *)

val add_outer_upper_into : t -> float -> Vec.t -> unit
(** Like {!add_outer_into} but touches only the upper triangle
    (including the diagonal); pair with {!mirror_upper} after
    accumulating many rank-one terms — half the work of the full
    update. *)

val mirror_upper : t -> unit
(** Copy the strict upper triangle onto the lower one in place. *)

val add_into : dst:t -> t -> unit
(** [add_into ~dst b] updates [dst := dst + b] in place. *)

val pow : t -> int -> t
(** [pow a k] is [a] raised to the non-negative integer power [k] by
    repeated squaring.  [a] must be square. *)

(** {1 Properties} *)

val is_square : t -> bool

val is_symmetric : ?tol:float -> t -> bool

val norm_inf : t -> float
(** Maximum absolute row sum. *)

val norm_fro : t -> float
(** Frobenius norm. *)

val trace : t -> float

val symmetrize : t -> t
(** [(a + a^T) / 2]. *)

val approx_equal : ?tol:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
