exception Singular of int

(* Doolittle LU with partial pivoting.  [lu] stores L (unit diagonal,
   strictly lower part) and U (upper part) packed in one matrix; [perm]
   records the row exchanges; [sign] tracks the permutation parity for
   the determinant. *)
type t = { lu : Mat.t; perm : int array; sign : float }

let factorize ?pivot_tol a =
  if not (Mat.is_square a) then invalid_arg "Lu.factorize: not square";
  let n = Mat.rows a in
  let scale = Float.max 1.0 (Mat.norm_inf a) in
  let tol = match pivot_tol with Some t -> t | None -> 1e-13 *. scale in
  let lu = Mat.copy a in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1.0 in
  for k = 0 to n - 1 do
    (* Find the pivot row. *)
    let piv = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs (Mat.get lu i k) > Float.abs (Mat.get lu !piv k) then
        piv := i
    done;
    if Float.abs (Mat.get lu !piv k) <= tol then raise (Singular k);
    if !piv <> k then begin
      for j = 0 to n - 1 do
        let t = Mat.get lu k j in
        Mat.set lu k j (Mat.get lu !piv j);
        Mat.set lu !piv j t
      done;
      let t = perm.(k) in
      perm.(k) <- perm.(!piv);
      perm.(!piv) <- t;
      sign := -. !sign
    end;
    let pivot = Mat.get lu k k in
    for i = k + 1 to n - 1 do
      let m = Mat.get lu i k /. pivot in
      Mat.set lu i k m;
      (* Bit-exact: skipping only true zeros keeps the update exact. *)
      if not (Float.equal m 0.0) then
        for j = k + 1 to n - 1 do
          Mat.set lu i j (Mat.get lu i j -. (m *. Mat.get lu k j))
        done
    done
  done;
  { lu; perm; sign = !sign }

let solve_factorized f b =
  let n = Mat.rows f.lu in
  if Vec.dim b <> n then invalid_arg "Lu.solve: dimension mismatch";
  (* Forward substitution with permuted b: L y = P b. *)
  let y = Vec.zeros n in
  for i = 0 to n - 1 do
    let acc = ref b.(f.perm.(i)) in
    for j = 0 to i - 1 do
      acc := !acc -. (Mat.get f.lu i j *. y.(j))
    done;
    y.(i) <- !acc
  done;
  (* Back substitution: U x = y. *)
  let x = Vec.zeros n in
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Mat.get f.lu i j *. x.(j))
    done;
    x.(i) <- !acc /. Mat.get f.lu i i
  done;
  x

let solve a b = solve_factorized (factorize a) b

let solve_many a bs =
  let f = factorize a in
  List.map (solve_factorized f) bs

let inverse a =
  let n = Mat.rows a in
  let f = factorize a in
  let cols = List.init n (fun j -> solve_factorized f (Vec.basis n j)) in
  let inv = Mat.zeros n n in
  List.iteri (fun j c -> Array.iteri (fun i x -> Mat.set inv i j x) c) cols;
  inv

let det a =
  match factorize a with
  | f ->
      let n = Mat.rows a in
      let acc = ref f.sign in
      for i = 0 to n - 1 do
        acc := !acc *. Mat.get f.lu i i
      done;
      !acc
  | exception Singular _ -> 0.0
