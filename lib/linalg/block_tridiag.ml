(* Block-tridiagonal Cholesky.  The factor of a block-tridiagonal SPD
   matrix has the same block-lower-band sparsity as the input (no
   fill-in beyond the band), so the standard column-oriented Cholesky
   recurrences apply verbatim with every loop clipped to the band:

     row i only meets columns j >= off(blk(i) - 1), and the inner
     products over k start at the same clip (for j <= i the binding
     constraint is blk(k) >= blk(i) - 1, since blk(j) >= blk(i) - 1
     already implies blk(j) - blk(k) <= 1).

   [bt_blk] maps an index to its block and [bt_off] holds the K+1
   prefix offsets, so the clips are O(1) array reads in the inner
   loops. *)

type t = {
  bt_sizes : int array;
  bt_off : int array;  (* length K+1; bt_off.(K) = n *)
  bt_blk : int array;  (* length n; block index of each row *)
  bt_l : Mat.t;
}

let preallocate sizes =
  if Array.length sizes = 0 then
    invalid_arg "Block_tridiag.preallocate: empty partition";
  Array.iter
    (fun s ->
      if s <= 0 then
        invalid_arg "Block_tridiag.preallocate: non-positive block size")
    sizes;
  let k = Array.length sizes in
  let off = Array.make (k + 1) 0 in
  for b = 0 to k - 1 do
    off.(b + 1) <- off.(b) + sizes.(b)
  done;
  let n = off.(k) in
  let blk = Array.make n 0 in
  for b = 0 to k - 1 do
    for i = off.(b) to off.(b + 1) - 1 do
      blk.(i) <- b
    done
  done;
  { bt_sizes = Array.copy sizes; bt_off = off; bt_blk = blk;
    bt_l = Mat.zeros n n }

let dim t = Array.length t.bt_blk

let sizes t = Array.copy t.bt_sizes

(* Only already-written entries of the factor are read, so a
   half-finished factor from a failed attempt never leaks into the
   next one (same contract as Chol.factorize_attempt_into). *)
let factorize_attempt_into t ~jitter a =
  let n = Array.length t.bt_blk in
  let l = t.bt_l and off = t.bt_off and blk = t.bt_blk in
  for i = 0 to n - 1 do
    let bi = blk.(i) in
    let lo = if bi = 0 then 0 else off.(bi - 1) in
    for j = lo to i do
      let acc = ref (Mat.get a i j +. if i = j then jitter else 0.0) in
      for k = lo to j - 1 do
        acc := !acc -. (Mat.get l i k *. Mat.get l j k)
      done;
      if i = j then begin
        (* lint: alloc-free the exception payload allocates only on the abandoned attempt *)
        if !acc <= 0.0 then raise (Chol.Not_positive_definite i);
        Mat.set l i i (sqrt !acc)
      end
      else Mat.set l i j (!acc /. Mat.get l j j)
    done
  done

let factorize_jittered_into ?initial ?(growth = 10.0) ?(max_tries = 20) t a =
  if not (Mat.is_square a) then
    invalid_arg "Block_tridiag.factorize_jittered_into: not square";
  if Mat.rows a <> dim t then
    invalid_arg "Block_tridiag.factorize_jittered_into: dimension mismatch";
  match factorize_attempt_into t ~jitter:0.0 a with
  | () -> (0.0, 1)
  | exception Chol.Not_positive_definite _ ->
      let n = dim t in
      let diag_scale =
        let acc = ref 1.0 in
        for i = 0 to n - 1 do
          acc := Float.max !acc (Float.abs (Mat.get a i i))
        done;
        !acc
      in
      let initial =
        match initial with Some x -> x | None -> 1e-10 *. diag_scale
      in
      let rec attempt jitter tries =
        if tries > max_tries then raise (Chol.Not_positive_definite (-1))
        else
          match factorize_attempt_into t ~jitter a with
          | () -> (jitter, tries + 1)
          | exception Chol.Not_positive_definite _ ->
              attempt (jitter *. growth) (tries + 1)
      in
      attempt initial 1

let solve_factorized_into t b ~dst =
  let n = Array.length t.bt_blk in
  if Vec.dim b <> n then
    invalid_arg "Block_tridiag.solve_factorized_into: dimension mismatch";
  if Vec.dim dst <> n then
    invalid_arg "Block_tridiag.solve_factorized_into: bad destination";
  let l = t.bt_l and off = t.bt_off and blk = t.bt_blk in
  let nblocks = Array.length t.bt_sizes in
  if not (b == dst) then Vec.blit ~src:b ~dst;
  (* L y = b, in place: dst.(i) only reads already-overwritten slots,
     and only in-band columns of row i. *)
  for i = 0 to n - 1 do
    let bi = blk.(i) in
    let lo = if bi = 0 then 0 else off.(bi - 1) in
    let acc = ref dst.(i) in
    for j = lo to i - 1 do
      acc := !acc -. (Mat.get l i j *. dst.(j))
    done;
    dst.(i) <- !acc /. Mat.get l i i
  done;
  (* L^T x = y, in place, descending; row i only meets rows up to the
     end of block bi + 1. *)
  for i = n - 1 downto 0 do
    let bi = blk.(i) in
    let hi = (if bi + 1 >= nblocks then off.(nblocks) else off.(bi + 2)) - 1 in
    let acc = ref dst.(i) in
    for j = i + 1 to hi do
      acc := !acc -. (Mat.get l j i *. dst.(j))
    done;
    dst.(i) <- !acc /. Mat.get l i i
  done
