exception Singular of int

let check_dims name ~lower ~diag ~upper n =
  if Vec.dim diag <> n then invalid_arg (name ^ ": bad diag length");
  if Vec.dim lower <> Stdlib.max 0 (n - 1) then
    invalid_arg (name ^ ": bad lower length");
  if Vec.dim upper <> Stdlib.max 0 (n - 1) then
    invalid_arg (name ^ ": bad upper length")

let solve ~lower ~diag ~upper ~rhs =
  let n = Vec.dim rhs in
  check_dims "Tridiag.solve" ~lower ~diag ~upper n;
  if n = 0 then [||]
  else begin
    (* Thomas algorithm with forward sweep into scratch arrays. *)
    let c' = Vec.zeros (Stdlib.max 0 (n - 1)) in
    let d' = Vec.zeros n in
    (* Bit-exact: only a literally zero pivot is singular. *)
    if Float.equal diag.(0) 0.0 then raise (Singular 0);
    if n > 1 then c'.(0) <- upper.(0) /. diag.(0);
    d'.(0) <- rhs.(0) /. diag.(0);
    for i = 1 to n - 1 do
      let denom = diag.(i) -. (lower.(i - 1) *. c'.(i - 1)) in
      (* Bit-exact: only a literally zero pivot is singular. *)
      if Float.equal denom 0.0 then raise (Singular i);
      if i < n - 1 then c'.(i) <- upper.(i) /. denom;
      d'.(i) <- (rhs.(i) -. (lower.(i - 1) *. d'.(i - 1))) /. denom
    done;
    let x = Vec.zeros n in
    x.(n - 1) <- d'.(n - 1);
    for i = n - 2 downto 0 do
      x.(i) <- d'.(i) -. (c'.(i) *. x.(i + 1))
    done;
    x
  end

let mul_vec ~lower ~diag ~upper x =
  let n = Vec.dim x in
  check_dims "Tridiag.mul_vec" ~lower ~diag ~upper n;
  Vec.init n (fun i ->
      let acc = ref (diag.(i) *. x.(i)) in
      if i > 0 then acc := !acc +. (lower.(i - 1) *. x.(i - 1));
      if i < n - 1 then acc := !acc +. (upper.(i) *. x.(i + 1));
      !acc)
