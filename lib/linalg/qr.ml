exception Rank_deficient of int

(* Householder QR.  [qr] holds R in its upper triangle and the
   essential parts of the Householder vectors below the diagonal;
   [betas] holds the reflector coefficients; [diag_v] the leading
   entries of the reflectors. *)
type t = { qr : Mat.t; betas : float array; diag_v : float array }

let factorize a =
  let m = Mat.rows a and n = Mat.cols a in
  if m < n then invalid_arg "Qr.factorize: need rows >= cols";
  let qr = Mat.copy a in
  let betas = Array.make n 0.0 in
  let diag_v = Array.make n 0.0 in
  for k = 0 to n - 1 do
    (* Build the reflector annihilating column k below the diagonal. *)
    let norm = ref 0.0 in
    for i = k to m - 1 do
      let x = Mat.get qr i k in
      norm := !norm +. (x *. x)
    done;
    let norm = sqrt !norm in
    (* Bit-exact: only a literally zero column gets the identity reflector. *)
    if Float.equal norm 0.0 then begin
      betas.(k) <- 0.0;
      diag_v.(k) <- 1.0
    end
    else begin
      let akk = Mat.get qr k k in
      let alpha = if akk >= 0.0 then -.norm else norm in
      let v0 = akk -. alpha in
      (* beta = 2 / (v^T v) with v = (v0, a_{k+1..m-1,k}). *)
      let vtv = ref (v0 *. v0) in
      for i = k + 1 to m - 1 do
        let x = Mat.get qr i k in
        vtv := !vtv +. (x *. x)
      done;
      (* Bit-exact: guards the division; any nonzero vtv is usable. *)
      betas.(k) <- (if Float.equal !vtv 0.0 then 0.0 else 2.0 /. !vtv);
      diag_v.(k) <- v0;
      (* Apply the reflector to the trailing columns only: column k's
         sub-diagonal keeps storing the reflector vector, and its
         diagonal becomes alpha directly (the reflector maps the
         column to alpha * e_k by construction). *)
      for j = k + 1 to n - 1 do
        let dot = ref (v0 *. Mat.get qr k j) in
        for i = k + 1 to m - 1 do
          dot := !dot +. (Mat.get qr i k *. Mat.get qr i j)
        done;
        let s = betas.(k) *. !dot in
        Mat.set qr k j (Mat.get qr k j -. (s *. v0));
        for i = k + 1 to m - 1 do
          Mat.set qr i j (Mat.get qr i j -. (s *. Mat.get qr i k))
        done
      done;
      Mat.set qr k k alpha
    end
  done;
  { qr; betas; diag_v }

let r f =
  let n = Mat.cols f.qr in
  Mat.init n n (fun i j -> if j >= i then Mat.get f.qr i j else 0.0)

let qt_mul f b =
  let m = Mat.rows f.qr and n = Mat.cols f.qr in
  if Vec.dim b <> m then invalid_arg "Qr.qt_mul: dimension mismatch";
  let y = Vec.copy b in
  for k = 0 to n - 1 do
    (* Bit-exact: beta 0.0 marks the identity reflector stored above. *)
    if not (Float.equal f.betas.(k) 0.0) then begin
      let dot = ref (f.diag_v.(k) *. y.(k)) in
      for i = k + 1 to m - 1 do
        dot := !dot +. (Mat.get f.qr i k *. y.(i))
      done;
      let s = f.betas.(k) *. !dot in
      y.(k) <- y.(k) -. (s *. f.diag_v.(k));
      for i = k + 1 to m - 1 do
        y.(i) <- y.(i) -. (s *. Mat.get f.qr i k)
      done
    end
  done;
  y

let solve_least_squares a b =
  let n = Mat.cols a in
  let f = factorize a in
  let y = qt_mul f b in
  let scale = Float.max 1.0 (Mat.norm_inf a) in
  let x = Vec.zeros n in
  for i = n - 1 downto 0 do
    let rii = Mat.get f.qr i i in
    if Float.abs rii <= 1e-13 *. scale then raise (Rank_deficient i);
    let acc = ref y.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Mat.get f.qr i j *. x.(j))
    done;
    x.(i) <- !acc /. rii
  done;
  x

let residual_norm a x b = Vec.norm2 (Vec.sub (Mat.mul_vec a x) b)
