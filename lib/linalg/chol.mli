(** Cholesky factorization of symmetric positive-definite matrices.

    Used by the interior-point solver for Newton systems (whose KKT
    Hessians are SPD on the barrier's domain) and by the thermal
    steady-state solver.  A jittered variant handles Hessians that are
    only positive semidefinite up to rounding. *)

exception Not_positive_definite of int
(** Raised when a diagonal pivot is non-positive; the payload is the
    offending index. *)

type t
(** A factorization [A = L * L^T] with [L] lower-triangular. *)

val factorize : Mat.t -> t
(** Factorize a symmetric positive-definite matrix.  Only the lower
    triangle of the input is read.  Raises {!Not_positive_definite}
    if a pivot fails. *)

val factorize_jittered :
  ?initial:float -> ?growth:float -> ?max_tries:int -> Mat.t -> t * float
(** [factorize_jittered a] tries [factorize a]; on failure it retries
    with [a + jitter*I], growing [jitter] geometrically from [initial]
    (default [1e-10] scaled by the diagonal magnitude) by [growth]
    (default [10.0]) up to [max_tries] (default [20]) times.  Returns
    the factorization and the jitter that succeeded ([0.0] if none was
    needed).  Raises {!Not_positive_definite} if all attempts fail. *)

val preallocate : int -> t
(** An [n x n] factor workspace for the in-place entry points below;
    its contents are meaningless until the first
    {!factorize_jittered_into}. *)

val dim : t -> int

val factorize_jittered_into :
  ?initial:float -> ?growth:float -> ?max_tries:int -> t -> Mat.t -> float * int
(** [factorize_jittered_into f a] overwrites the factor [f] with the
    (jittered) Cholesky factorization of [a], allocating nothing: the
    jitter is added to the diagonal on the fly rather than by copying
    [a].  Same retry schedule as {!factorize_jittered}.  Returns the
    jitter that succeeded and the number of factorization attempts
    (>= 1 — the solver's factorization counter).  Raises
    {!Not_positive_definite} if all attempts fail, leaving [f]'s
    contents unspecified. *)

val solve_factorized_into : t -> Vec.t -> dst:Vec.t -> unit
(** Like {!solve_factorized} but writes into [dst] without allocating.
    [dst] may be [b] itself (the substitution runs in place). *)

val solve_factorized : t -> Vec.t -> Vec.t

val solve : Mat.t -> Vec.t -> Vec.t

val lower : t -> Mat.t
(** The lower-triangular factor [L]. *)

val log_det : t -> float
(** [log det A], computed stably from the factor diagonal. *)
