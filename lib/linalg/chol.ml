exception Not_positive_definite of int

type t = { l : Mat.t }

let factorize a =
  if not (Mat.is_square a) then invalid_arg "Chol.factorize: not square";
  let n = Mat.rows a in
  let l = Mat.zeros n n in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let acc = ref (Mat.get a i j) in
      for k = 0 to j - 1 do
        acc := !acc -. (Mat.get l i k *. Mat.get l j k)
      done;
      if i = j then begin
        if !acc <= 0.0 then raise (Not_positive_definite i);
        Mat.set l i i (sqrt !acc)
      end
      else Mat.set l i j (!acc /. Mat.get l j j)
    done
  done;
  { l }

let factorize_jittered ?initial ?(growth = 10.0) ?(max_tries = 20) a =
  match factorize a with
  | f -> (f, 0.0)
  | exception Not_positive_definite _ ->
      let n = Mat.rows a in
      let diag_scale =
        let acc = ref 1.0 in
        for i = 0 to n - 1 do
          acc := Float.max !acc (Float.abs (Mat.get a i i))
        done;
        !acc
      in
      let initial =
        match initial with Some x -> x | None -> 1e-10 *. diag_scale
      in
      let rec attempt jitter tries =
        if tries > max_tries then raise (Not_positive_definite (-1))
        else
          let a' = Mat.copy a in
          for i = 0 to n - 1 do
            Mat.set a' i i (Mat.get a' i i +. jitter)
          done;
          match factorize a' with
          | f -> (f, jitter)
          | exception Not_positive_definite _ ->
              attempt (jitter *. growth) (tries + 1)
      in
      attempt initial 1

let preallocate n =
  if n < 0 then invalid_arg "Chol.preallocate: negative dimension";
  { l = Mat.zeros n n }

let dim { l } = Mat.rows l

(* Factorize [a + jitter*I] into the preallocated factor.  Only
   already-written entries of [l] are read, so a half-finished factor
   from a failed attempt never leaks into the next one. *)
let factorize_attempt_into { l } ~jitter a =
  let n = Mat.rows a in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let acc = ref (Mat.get a i j +. if i = j then jitter else 0.0) in
      for k = 0 to j - 1 do
        acc := !acc -. (Mat.get l i k *. Mat.get l j k)
      done;
      if i = j then begin
        (* lint: alloc-free the exception payload allocates only on the abandoned attempt *)
        if !acc <= 0.0 then raise (Not_positive_definite i);
        Mat.set l i i (sqrt !acc)
      end
      else Mat.set l i j (!acc /. Mat.get l j j)
    done
  done

let factorize_jittered_into ?initial ?(growth = 10.0) ?(max_tries = 20) f a =
  if not (Mat.is_square a) then
    invalid_arg "Chol.factorize_jittered_into: not square";
  if Mat.rows a <> dim f then
    invalid_arg "Chol.factorize_jittered_into: factor dimension mismatch";
  match factorize_attempt_into f ~jitter:0.0 a with
  | () -> (0.0, 1)
  | exception Not_positive_definite _ ->
      let n = Mat.rows a in
      let diag_scale =
        let acc = ref 1.0 in
        for i = 0 to n - 1 do
          acc := Float.max !acc (Float.abs (Mat.get a i i))
        done;
        !acc
      in
      let initial =
        match initial with Some x -> x | None -> 1e-10 *. diag_scale
      in
      let rec attempt jitter tries =
        if tries > max_tries then raise (Not_positive_definite (-1))
        else
          match factorize_attempt_into f ~jitter a with
          | () -> (jitter, tries + 1)
          | exception Not_positive_definite _ ->
              attempt (jitter *. growth) (tries + 1)
      in
      attempt initial 1

let solve_factorized_into { l } b ~dst =
  let n = Mat.rows l in
  if Vec.dim b <> n then invalid_arg "Chol.solve_factorized_into: dimension mismatch";
  if Vec.dim dst <> n then invalid_arg "Chol.solve_factorized_into: bad destination";
  if not (b == dst) then Vec.blit ~src:b ~dst;
  (* L y = b, in place: dst.(i) only reads already-overwritten slots. *)
  for i = 0 to n - 1 do
    let acc = ref dst.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Mat.get l i j *. dst.(j))
    done;
    dst.(i) <- !acc /. Mat.get l i i
  done;
  (* L^T x = y, in place, descending. *)
  for i = n - 1 downto 0 do
    let acc = ref dst.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Mat.get l j i *. dst.(j))
    done;
    dst.(i) <- !acc /. Mat.get l i i
  done

let solve_factorized { l } b =
  let n = Mat.rows l in
  if Vec.dim b <> n then invalid_arg "Chol.solve: dimension mismatch";
  (* L y = b. *)
  let y = Vec.zeros n in
  for i = 0 to n - 1 do
    let acc = ref b.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Mat.get l i j *. y.(j))
    done;
    y.(i) <- !acc /. Mat.get l i i
  done;
  (* L^T x = y. *)
  let x = Vec.zeros n in
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Mat.get l j i *. x.(j))
    done;
    x.(i) <- !acc /. Mat.get l i i
  done;
  x

let solve a b = solve_factorized (factorize a) b

let lower { l } = Mat.copy l

let log_det { l } =
  let acc = ref 0.0 in
  for i = 0 to Mat.rows l - 1 do
    acc := !acc +. log (Mat.get l i i)
  done;
  2.0 *. !acc
