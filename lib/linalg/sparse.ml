type t = {
  rows : int;
  cols : int;
  row_ptr : int array; (* length rows+1 *)
  col_idx : int array; (* length nnz *)
  values : float array; (* length nnz *)
}

type triplet = { row : int; col : int; value : float }

let rows m = m.rows
let cols m = m.cols
let nnz m = Array.length m.values

let of_triplets ~rows ~cols triplets =
  if rows < 0 || cols < 0 then invalid_arg "Sparse.of_triplets: negative dims";
  List.iter
    (fun { row; col; _ } ->
      if row < 0 || row >= rows || col < 0 || col >= cols then
        invalid_arg "Sparse.of_triplets: entry out of bounds")
    triplets;
  (* Sum duplicates via a per-row association into a sorted row
     representation. *)
  let tbl = Hashtbl.create (List.length triplets) in
  List.iter
    (fun { row; col; value } ->
      let key = (row, col) in
      let prev = try Hashtbl.find tbl key with Not_found -> 0.0 in
      Hashtbl.replace tbl key (prev +. value))
    triplets;
  let entries =
    Hashtbl.fold
      (* Bit-exact: only true zeros may be dropped from the pattern. *)
      (fun (r, c) v acc -> if Float.equal v 0.0 then acc else (r, c, v) :: acc)
      tbl []
  in
  let entries =
    List.sort
      (fun (r1, c1, _) (r2, c2, _) ->
        match compare r1 r2 with 0 -> compare c1 c2 | c -> c)
      entries
  in
  let n = List.length entries in
  let row_ptr = Array.make (rows + 1) 0 in
  let col_idx = Array.make n 0 in
  let values = Array.make n 0.0 in
  List.iteri
    (fun k (r, c, v) ->
      row_ptr.(r + 1) <- row_ptr.(r + 1) + 1;
      col_idx.(k) <- c;
      values.(k) <- v)
    entries;
  for r = 0 to rows - 1 do
    row_ptr.(r + 1) <- row_ptr.(r + 1) + row_ptr.(r)
  done;
  { rows; cols; row_ptr; col_idx; values }

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Sparse.get: out of bounds";
  let result = ref 0.0 in
  for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
    if m.col_idx.(k) = j then result := m.values.(k)
  done;
  !result

let mul_vec m x =
  if Vec.dim x <> m.cols then invalid_arg "Sparse.mul_vec: dimension mismatch";
  Vec.init m.rows (fun i ->
      let acc = ref 0.0 in
      for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
        acc := !acc +. (m.values.(k) *. x.(m.col_idx.(k)))
      done;
      !acc)

let to_dense m =
  let d = Mat.zeros m.rows m.cols in
  for i = 0 to m.rows - 1 do
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      Mat.set d i m.col_idx.(k) m.values.(k)
    done
  done;
  d

let iter_entries m f =
  for i = 0 to m.rows - 1 do
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      f i m.col_idx.(k) m.values.(k)
    done
  done

let transpose m =
  let trips = ref [] in
  iter_entries m (fun i j v -> trips := { row = j; col = i; value = v } :: !trips);
  of_triplets ~rows:m.cols ~cols:m.rows !trips

let scale c m = { m with values = Array.map (fun v -> c *. v) m.values }

let is_symmetric ?(tol = 1e-9) m =
  m.rows = m.cols
  &&
  let ok = ref true in
  iter_entries m (fun i j v ->
      if Float.abs (v -. get m j i) > tol then ok := false);
  !ok

type cg_result = {
  solution : Vec.t;
  iterations : int;
  residual : float;
  converged : bool;
}

let cg ?(tol = 1e-10) ?max_iter ?x0 m b =
  if m.rows <> m.cols then invalid_arg "Sparse.cg: not square";
  if Vec.dim b <> m.rows then invalid_arg "Sparse.cg: bad rhs";
  let n = m.rows in
  let max_iter = match max_iter with Some k -> k | None -> 10 * n in
  let x = match x0 with Some v -> Vec.copy v | None -> Vec.zeros n in
  let r = Vec.sub b (mul_vec m x) in
  let p = Vec.copy r in
  let b_norm = Float.max (Vec.norm2 b) 1e-300 in
  let rs_old = ref (Vec.dot r r) in
  let iter = ref 0 in
  let stop = ref (sqrt !rs_old /. b_norm <= tol) in
  while (not !stop) && !iter < max_iter do
    incr iter;
    let ap = mul_vec m p in
    let denom = Vec.dot p ap in
    if denom <= 0.0 then stop := true (* not SPD or converged to rounding *)
    else begin
      let alpha = !rs_old /. denom in
      Vec.axpy_into ~dst:x alpha p;
      Vec.axpy_into ~dst:r (-.alpha) ap;
      let rs_new = Vec.dot r r in
      if sqrt rs_new /. b_norm <= tol then stop := true
      else begin
        let beta = rs_new /. !rs_old in
        for i = 0 to n - 1 do
          p.(i) <- r.(i) +. (beta *. p.(i))
        done
      end;
      rs_old := rs_new
    end
  done;
  let final_res = Vec.norm2 (Vec.sub b (mul_vec m x)) in
  {
    solution = x;
    iterations = !iter;
    residual = final_res;
    converged = final_res /. b_norm <= tol *. 10.0;
  }
