type t = { rows : int; cols : int; data : float array }

let rows m = m.rows
let cols m = m.cols

let create rows cols x =
  if rows < 0 || cols < 0 then invalid_arg "Mat.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) x }

let zeros rows cols = create rows cols 0.0

let init rows cols f =
  if rows < 0 || cols < 0 then invalid_arg "Mat.init: negative dimension";
  let data = Array.make (rows * cols) 0.0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      data.((i * cols) + j) <- f i j
    done
  done;
  { rows; cols; data }

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let of_rows arr =
  let rows = Array.length arr in
  let cols = if rows = 0 then 0 else Array.length arr.(0) in
  Array.iter
    (fun r ->
      if Array.length r <> cols then invalid_arg "Mat.of_rows: ragged rows")
    arr;
  init rows cols (fun i j -> arr.(i).(j))

let of_diag v =
  let n = Vec.dim v in
  init n n (fun i j -> if i = j then v.(i) else 0.0)

let copy m = { m with data = Array.copy m.data }

let check_bounds name m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg
      (Printf.sprintf "Mat.%s: index (%d,%d) out of %dx%d" name i j m.rows
         m.cols)

let get m i j =
  check_bounds "get" m i j;
  m.data.((i * m.cols) + j)

let set m i j x =
  check_bounds "set" m i j;
  m.data.((i * m.cols) + j) <- x

let row m i =
  if i < 0 || i >= m.rows then invalid_arg "Mat.row: out of range";
  Array.sub m.data (i * m.cols) m.cols

let col m j =
  if j < 0 || j >= m.cols then invalid_arg "Mat.col: out of range";
  Array.init m.rows (fun i -> m.data.((i * m.cols) + j))

let diag m = Array.init (Stdlib.min m.rows m.cols) (fun i -> m.data.((i * m.cols) + i))

let to_rows m = Array.init m.rows (fun i -> row m i)

let check_same_shape name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg
      (Printf.sprintf "Mat.%s: shape mismatch (%dx%d vs %dx%d)" name a.rows
         a.cols b.rows b.cols)

let add a b =
  check_same_shape "add" a b;
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) +. b.data.(k)) }

let sub a b =
  check_same_shape "sub" a b;
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) -. b.data.(k)) }

let scale c a = { a with data = Array.map (fun x -> c *. x) a.data }

let transpose a = init a.cols a.rows (fun i j -> a.data.((j * a.cols) + i))

let matmul a b =
  if a.cols <> b.rows then
    invalid_arg
      (Printf.sprintf "Mat.matmul: inner dimension mismatch (%d vs %d)" a.cols
         b.rows);
  let c = zeros a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      (* lint: float-equality exact-zero skip, hot kernel *)
      if aik <> 0.0 then
        for j = 0 to b.cols - 1 do
          c.data.((i * b.cols) + j) <-
            c.data.((i * b.cols) + j) +. (aik *. b.data.((k * b.cols) + j))
        done
    done
  done;
  c

let fill m x = Array.fill m.data 0 (Array.length m.data) x

let gemv_into ?(trans = false) ?(alpha = 1.0) ?(beta = 0.0) a x ~dst =
  let m = a.rows and n = a.cols in
  let data = a.data in
  if trans then begin
    if Vec.dim x <> m then invalid_arg "Mat.gemv_into: dimension mismatch";
    if Vec.dim dst <> n then invalid_arg "Mat.gemv_into: bad destination";
    if beta = 0.0 then Vec.fill dst 0.0 (* lint: float-equality exact dispatch on the blas-style default *)
    else if beta <> 1.0 then Vec.scale_into ~dst beta; (* lint: float-equality exact dispatch on the blas-style default *)
    for i = 0 to m - 1 do
      let xi = alpha *. x.(i) in
      if xi <> 0.0 then begin (* lint: float-equality exact-zero skip, hot kernel *)
        let base = i * n in
        for j = 0 to n - 1 do
          dst.(j) <- dst.(j) +. (xi *. data.(base + j))
        done
      end
    done
  end
  else begin
    if Vec.dim x <> n then invalid_arg "Mat.gemv_into: dimension mismatch";
    if Vec.dim dst <> m then invalid_arg "Mat.gemv_into: bad destination";
    for i = 0 to m - 1 do
      let acc = ref 0.0 in
      let base = i * n in
      for j = 0 to n - 1 do
        acc := !acc +. (data.(base + j) *. x.(j))
      done;
      dst.(i) <-
        (* lint: float-equality exact dispatch on the blas-style default *)
        (if beta = 0.0 then alpha *. !acc
         else (alpha *. !acc) +. (beta *. dst.(i)))
    done
  end

(* dst (upper triangle) += A^T diag(d) A, accumulated two rows of A at
   a time so each pass over the n x n destination amortizes twice the
   row data — the barrier Hessian kernel, replacing m rank-one
   updates. *)
let syrk_scaled_into a d ~dst =
  let m = a.rows and n = a.cols in
  if Vec.dim d <> m then invalid_arg "Mat.syrk_scaled_into: weight mismatch";
  if dst.rows <> n || dst.cols <> n then
    invalid_arg "Mat.syrk_scaled_into: bad destination";
  let ad = a.data and hd = dst.data in
  let i = ref 0 in
  while !i + 1 < m do
    let i0 = !i in
    let b0 = i0 * n and b1 = (i0 + 1) * n in
    let d0 = d.(i0) and d1 = d.(i0 + 1) in
    for j = 0 to n - 1 do
      let c0 = d0 *. ad.(b0 + j) and c1 = d1 *. ad.(b1 + j) in
      if c0 <> 0.0 || c1 <> 0.0 then begin (* lint: float-equality exact-zero skip, hot kernel *)
        let hbase = j * n in
        for k = j to n - 1 do
          hd.(hbase + k) <-
            hd.(hbase + k) +. (c0 *. ad.(b0 + k)) +. (c1 *. ad.(b1 + k))
        done
      end
    done;
    i := i0 + 2
  done;
  (* Odd-row tail, written out inline: a local [rank1] helper would be
     a closure allocation, and this function is alloc-free-listed. *)
  if !i < m then begin
    let i0 = !i in
    let base = i0 * n in
    let di = d.(i0) in
    for j = 0 to n - 1 do
      let c = di *. ad.(base + j) in
      if c <> 0.0 then begin (* lint: float-equality exact-zero skip, hot kernel *)
        let hbase = j * n in
        for k = j to n - 1 do
          hd.(hbase + k) <- hd.(hbase + k) +. (c *. ad.(base + k))
        done
      end
    done
  end

let mul_vec_into a x ~dst =
  if a.cols <> Vec.dim x then
    invalid_arg "Mat.mul_vec_into: dimension mismatch";
  if a.rows <> Vec.dim dst then
    invalid_arg "Mat.mul_vec_into: bad destination";
  for i = 0 to a.rows - 1 do
    let acc = ref 0.0 in
    let base = i * a.cols in
    for j = 0 to a.cols - 1 do
      acc := !acc +. (a.data.(base + j) *. x.(j))
    done;
    dst.(i) <- !acc
  done

let mul_vec a x =
  let dst = Vec.zeros a.rows in
  mul_vec_into a x ~dst;
  dst

let tmul_vec a x =
  if a.rows <> Vec.dim x then invalid_arg "Mat.tmul_vec: dimension mismatch";
  let dst = Vec.zeros a.cols in
  for i = 0 to a.rows - 1 do
    let xi = x.(i) in
    if xi <> 0.0 then (* lint: float-equality exact-zero skip, hot kernel *)
      let base = i * a.cols in
      for j = 0 to a.cols - 1 do
        dst.(j) <- dst.(j) +. (a.data.(base + j) *. xi)
      done
  done;
  dst

let outer x y =
  init (Vec.dim x) (Vec.dim y) (fun i j -> x.(i) *. y.(j))

let add_outer_into a c x =
  let n = Vec.dim x in
  if a.rows <> n || a.cols <> n then
    invalid_arg "Mat.add_outer_into: dimension mismatch";
  for i = 0 to n - 1 do
    let cxi = c *. x.(i) in
    if cxi <> 0.0 then (* lint: float-equality exact-zero skip, hot kernel *)
      let base = i * n in
      for j = 0 to n - 1 do
        a.data.(base + j) <- a.data.(base + j) +. (cxi *. x.(j))
      done
  done

let add_outer_upper_into a c x =
  let n = Vec.dim x in
  if a.rows <> n || a.cols <> n then
    invalid_arg "Mat.add_outer_upper_into: dimension mismatch";
  for i = 0 to n - 1 do
    let cxi = c *. x.(i) in
    if cxi <> 0.0 then (* lint: float-equality exact-zero skip, hot kernel *)
      let base = i * n in
      for j = i to n - 1 do
        a.data.(base + j) <- a.data.(base + j) +. (cxi *. x.(j))
      done
  done

let mirror_upper a =
  if not (a.rows = a.cols) then invalid_arg "Mat.mirror_upper: not square";
  let n = a.rows in
  for i = 1 to n - 1 do
    for j = 0 to i - 1 do
      a.data.((i * n) + j) <- a.data.((j * n) + i)
    done
  done

let add_into ~dst b =
  check_same_shape "add_into" dst b;
  for k = 0 to Array.length dst.data - 1 do
    dst.data.(k) <- dst.data.(k) +. b.data.(k)
  done

let is_square m = m.rows = m.cols

let pow a k =
  if not (is_square a) then invalid_arg "Mat.pow: not square";
  if k < 0 then invalid_arg "Mat.pow: negative power";
  let rec go acc base k =
    if k = 0 then acc
    else if k land 1 = 1 then go (matmul acc base) (matmul base base) (k lsr 1)
    else go acc (matmul base base) (k lsr 1)
  in
  go (identity a.rows) a k

let is_symmetric ?(tol = 1e-9) m =
  is_square m
  &&
  let ok = ref true in
  for i = 0 to m.rows - 1 do
    for j = i + 1 to m.cols - 1 do
      if Float.abs (get m i j -. get m j i) > tol then ok := false
    done
  done;
  !ok

let norm_inf m =
  let best = ref 0.0 in
  for i = 0 to m.rows - 1 do
    let acc = ref 0.0 in
    for j = 0 to m.cols - 1 do
      acc := !acc +. Float.abs m.data.((i * m.cols) + j)
    done;
    if !acc > !best then best := !acc
  done;
  !best

let norm_fro m =
  sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 m.data)

let trace m =
  if not (is_square m) then invalid_arg "Mat.trace: not square";
  let acc = ref 0.0 in
  for i = 0 to m.rows - 1 do
    acc := !acc +. m.data.((i * m.cols) + i)
  done;
  !acc

let symmetrize m =
  if not (is_square m) then invalid_arg "Mat.symmetrize: not square";
  init m.rows m.cols (fun i j -> 0.5 *. (get m i j +. get m j i))

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  let ok = ref true in
  for k = 0 to Array.length a.data - 1 do
    if Float.abs (a.data.(k) -. b.data.(k)) > tol then ok := false
  done;
  !ok

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "%a@," Vec.pp (row m i)
  done;
  Format.fprintf ppf "@]"
