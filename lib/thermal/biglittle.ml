open Linalg

type core_class = {
  class_name : string;
  fmax : float;
  pmax : float;
  exponent : float;
  idle_activity : float;
}

let big = {
  class_name = "big";
  fmax = 1.0e9;
  pmax = 5.0;
  exponent = 2.0;
  idle_activity = 0.3;
}

let little = {
  class_name = "little";
  fmax = 0.6e9;
  pmax = 1.5;
  exponent = 3.0;
  idle_activity = 0.2;
}

let classes () = [| big; little |]
let class_assignment () = [| 0; 0; 0; 0; 1; 1; 1; 1 |]

let target_peak = 122.0
let dt = 0.4e-3
let n_cores = 8

let mm = 1e-3

(* Same 13 x 11.5 mm die as {!Niagara}, re-floorplanned for an
   asymmetric chip: the bottom core row holds the four big cores
   (B1-B4, 2.5 mm wide), the top row the four little cores (L1-L4,
   half the width and power density) packed toward the west flank,
   with the freed-up top-east area given to an extra SRAM bank.  The
   crossbar strip and the flanking/boundary L2 banks are as in the
   homogeneous plan, so the two platforms share a package and differ
   only in the compute rows. *)
let floorplan () =
  let block name kind x y width height =
    {
      Floorplan.name;
      kind;
      x = x *. mm;
      y = y *. mm;
      width = width *. mm;
      height = height *. mm;
    }
  in
  let big_core i = block (Printf.sprintf "B%d" (i + 1)) Floorplan.Core
      (1.5 +. (float_of_int i *. 2.5)) 2.5 2.5 2.5 in
  let little_core i = block (Printf.sprintf "L%d" (i + 1)) Floorplan.Core
      (1.5 +. (float_of_int i *. 1.25)) 6.5 1.25 2.5 in
  Floorplan.make
    ([
       block "L2_SW" Floorplan.Cache 0.0 0.0 6.5 2.5;
       block "L2_SE" Floorplan.Cache 6.5 0.0 6.5 2.5;
       block "L2_W" Floorplan.Cache 0.0 2.5 1.5 6.5;
       block "L2_E" Floorplan.Cache 11.5 2.5 1.5 6.5;
     ]
    @ List.init 4 big_core
    @ [
        block "BUF_W" Floorplan.Buffer 1.5 5.0 1.25 1.5;
        block "XBAR" Floorplan.Interconnect 2.75 5.0 7.5 1.5;
        block "BUF_E" Floorplan.Buffer 10.25 5.0 1.25 1.5;
      ]
    @ List.init 4 little_core
    @ [
        block "SRAM_N" Floorplan.Cache 6.5 6.5 5.0 2.5;
        block "L2_NW" Floorplan.Cache 0.0 9.0 6.5 2.5;
        block "L2_NE" Floorplan.Cache 6.5 9.0 6.5 2.5;
      ])

let fixed_power fp =
  Vec.init (Floorplan.size fp) (fun i ->
      match (Floorplan.block_of fp i).Floorplan.kind with
      | Floorplan.Core -> 0.0
      | Floorplan.Cache -> 1.3
      | Floorplan.Buffer -> 0.25
      | Floorplan.Interconnect -> 1.5
      | Floorplan.Other -> 0.0)

let core_names =
  [| "B1"; "B2"; "B3"; "B4"; "L1"; "L2"; "L3"; "L4" |]

let core_nodes fp =
  Array.map (fun name -> Floorplan.index_of fp name) core_names

let core_pmax () =
  let asg = class_assignment () in
  let cls = classes () in
  Vec.init n_cores (fun c -> cls.(asg.(c)).pmax)

let power_vector fp ~core_power =
  if Vec.dim core_power <> n_cores then
    invalid_arg "Biglittle.power_vector: need 8 core powers";
  let p = fixed_power fp in
  Array.iteri (fun i node -> p.(node) <- core_power.(i)) (core_nodes fp);
  p

(* Calibrated parameters, computed once; see {!Niagara.params} for
   why the thin die and why the memo cell must be an [Atomic]. *)
let params =
  let cache = Atomic.make None in
  fun () ->
    match Atomic.get cache with
    | Some p -> p
    | None ->
        let fp = floorplan () in
        let base =
          { Rc_model.default_params with Rc_model.die_thickness = 0.15e-3 }
        in
        let full_load = power_vector fp ~core_power:(core_pmax ()) in
        let tuned =
          Calibrate.tune_vertical_conductance ~params:base ~floorplan:fp
            ~power:full_load target_peak
        in
        Atomic.set cache (Some tuned);
        tuned

let model () = Rc_model.build ~params:(params ()) (floorplan ())
