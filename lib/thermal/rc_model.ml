open Linalg

type params = {
  die_thickness : float;
  conductivity : float;
  volumetric_heat_capacity : float;
  vertical_conductance_per_area : float;
  ambient : float;
}

let default_params =
  {
    die_thickness = 0.5e-3;
    conductivity = 100.0;
    volumetric_heat_capacity = 1.75e6;
    vertical_conductance_per_area = 3.0e3;
    ambient = 27.0;
  }

type t = {
  fp : Floorplan.t;
  prm : params;
  lateral : Mat.t;  (* symmetric conductances, W/K *)
  g_amb : Vec.t;  (* vertical conductance to ambient per node *)
  cap : Vec.t;  (* heat capacity per node, J/K *)
}

let build ?(params = default_params) fp =
  let n = Floorplan.size fp in
  if n = 0 then invalid_arg "Rc_model.build: empty floorplan";
  let lateral = Mat.zeros n n in
  for i = 0 to n - 1 do
    let bi = Floorplan.block_of fp i in
    List.iter
      (fun (j, shared_len) ->
        let bj = Floorplan.block_of fp j in
        let dist = Floorplan.center_distance bi bj in
        (* Conduction through the die cross-section between the two
           block centers. *)
        let g =
          params.conductivity *. params.die_thickness *. shared_len /. dist
        in
        Mat.set lateral i j g)
      (Floorplan.neighbours fp i)
  done;
  (* Defensive symmetrization: shared_edge is symmetric so this is a
     no-op up to rounding. *)
  let lateral = Mat.symmetrize lateral in
  let g_amb =
    Vec.init n (fun i ->
        params.vertical_conductance_per_area
        *. Floorplan.area (Floorplan.block_of fp i))
  in
  let cap =
    Vec.init n (fun i ->
        params.volumetric_heat_capacity *. params.die_thickness
        *. Floorplan.area (Floorplan.block_of fp i))
  in
  { fp; prm = params; lateral; g_amb; cap }

let size m = Floorplan.size m.fp
let floorplan m = m.fp
let params m = m.prm
let conductance m i j = Mat.get m.lateral i j
let ambient_conductance m i = m.g_amb.(i)
let capacitance m i = m.cap.(i)

(* Conductance (Laplacian + ambient) matrix: G T = P + g_amb * T_amb at
   steady state. *)
let conductance_matrix m =
  let n = size m in
  Mat.init n n (fun i j ->
      if i = j then
        m.g_amb.(i) +. Vec.sum (Mat.row m.lateral i)
      else -.Mat.get m.lateral i j)

let steady_state m p =
  let n = size m in
  if Vec.dim p <> n then invalid_arg "Rc_model.steady_state: bad power vector";
  let g = conductance_matrix m in
  let rhs = Vec.init n (fun i -> p.(i) +. (m.g_amb.(i) *. m.prm.ambient)) in
  Lu.solve g rhs

let conductance_sparse m =
  let n = size m in
  let trips = ref [] in
  for i = 0 to n - 1 do
    let diag = ref (m.g_amb.(i)) in
    for j = 0 to n - 1 do
      let g = Mat.get m.lateral i j in
      if g > 0.0 then begin
        diag := !diag +. g;
        trips := { Sparse.row = i; col = j; value = -.g } :: !trips
      end
    done;
    trips := { Sparse.row = i; col = i; value = !diag } :: !trips
  done;
  Sparse.of_triplets ~rows:n ~cols:n !trips

let steady_state_cg ?(tol = 1e-10) m p =
  let n = size m in
  if Vec.dim p <> n then invalid_arg "Rc_model.steady_state_cg: bad power";
  let g = conductance_sparse m in
  let rhs = Vec.init n (fun i -> p.(i) +. (m.g_amb.(i) *. m.prm.ambient)) in
  let r = Sparse.cg ~tol g rhs in
  if not r.Sparse.converged then failwith "Rc_model.steady_state_cg: stalled";
  (r.Sparse.solution, r.Sparse.iterations)

type discrete = {
  step : Mat.t;
  injection : Vec.t;
  drive : Vec.t;
  dt : float;
  ambient : float;
}

let total_conductance m i = m.g_amb.(i) +. Vec.sum (Mat.row m.lateral i)

let max_monotone_dt m =
  let n = size m in
  let best = ref infinity in
  for i = 0 to n - 1 do
    best := Float.min !best (m.cap.(i) /. total_conductance m i)
  done;
  !best

let discretize m ~dt =
  if dt <= 0.0 then invalid_arg "Rc_model.discretize: non-positive dt";
  let limit = max_monotone_dt m in
  if dt > limit then
    invalid_arg
      (Printf.sprintf
         "Rc_model.discretize: dt=%g exceeds the monotone limit %g" dt limit);
  let n = size m in
  let step =
    Mat.init n n (fun i j ->
        let aij = dt *. Mat.get m.lateral i j /. m.cap.(i) in
        if i = j then 1.0 -. (dt *. total_conductance m i /. m.cap.(i))
        else aij)
  in
  let injection = Vec.init n (fun i -> dt /. m.cap.(i)) in
  let drive =
    Vec.init n (fun i -> dt *. m.g_amb.(i) /. m.cap.(i) *. m.prm.ambient)
  in
  { step; injection; drive; dt; ambient = m.prm.ambient }

let step_temperature_into d t p ~dst =
  let n = Mat.rows d.step in
  if Vec.dim t <> n || Vec.dim p <> n then
    invalid_arg "Rc_model.step_temperature: dimension mismatch";
  Mat.mul_vec_into d.step t ~dst;
  for i = 0 to n - 1 do
    dst.(i) <- dst.(i) +. (d.injection.(i) *. p.(i)) +. d.drive.(i)
  done

let step_temperature d t p =
  let dst = Vec.zeros (Mat.rows d.step) in
  step_temperature_into d t p ~dst;
  dst

type stepper = {
  n : int;
  row_start : int array;
  cols : int array;
  vals : float array;
  s_injection : float array;
  s_drive : float array;
  s_dt : float;
  injp : float array;
      (* cached injection.(i) *. p.(i) for the last loaded power *)
}

let compile_stepper d =
  let n = Mat.rows d.step in
  let nnz = ref 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      (* Bit-exact: the sparsity pattern must drop only true zeros. *)
      if not (Float.equal (Mat.get d.step i j) 0.0) then incr nnz
    done
  done;
  let row_start = Array.make (n + 1) 0 in
  let cols = Array.make (Stdlib.max 1 !nnz) 0 in
  let vals = Array.make (Stdlib.max 1 !nnz) 0.0 in
  let k = ref 0 in
  for i = 0 to n - 1 do
    row_start.(i) <- !k;
    (* Ascending column order within each row: the accumulation visits
       the surviving terms in the same order as the dense matvec, and
       the skipped products are exact zeros added to a nonnegative
       accumulator, so the result is bit-for-bit identical to
       [step_temperature_into]. *)
    for j = 0 to n - 1 do
      let a = Mat.get d.step i j in
      (* Bit-exact: the sparsity pattern must drop only true zeros. *)
      if not (Float.equal a 0.0) then begin
        cols.(!k) <- j;
        vals.(!k) <- a;
        incr k
      end
    done
  done;
  row_start.(n) <- !k;
  {
    n;
    row_start;
    cols;
    vals;
    s_injection = Vec.copy d.injection;
    s_drive = Vec.copy d.drive;
    s_dt = d.dt;
    injp = Array.make n 0.0;
  }

let stepper_dt s = s.s_dt

let stepper_load_power s p =
  if Vec.dim p <> s.n then
    invalid_arg "Rc_model.stepper_load_power: dimension mismatch";
  for i = 0 to s.n - 1 do
    Array.unsafe_set s.injp i
      (Array.unsafe_get s.s_injection i *. Array.unsafe_get p i)
  done

let stepper_reload_power_at s p idx =
  if Vec.dim p <> s.n then
    invalid_arg "Rc_model.stepper_reload_power_at: dimension mismatch";
  for k = 0 to Array.length idx - 1 do
    let i = Array.unsafe_get idx k in
    s.injp.(i) <- s.s_injection.(i) *. p.(i)
  done

let stepper_step_loaded_into s t ~dst =
  if Vec.dim t <> s.n || Vec.dim dst <> s.n then
    invalid_arg "Rc_model.stepper_step_loaded_into: dimension mismatch";
  let row_start = s.row_start
  and cols = s.cols
  and vals = s.vals
  and injp = s.injp
  and drive = s.s_drive in
  for i = 0 to s.n - 1 do
    let acc = ref 0.0 in
    for k = Array.unsafe_get row_start i to Array.unsafe_get row_start (i + 1) - 1 do
      acc :=
        !acc
        +. Array.unsafe_get vals k
           *. Array.unsafe_get t (Array.unsafe_get cols k)
    done;
    (* Same association as [step_temperature_into]:
       (acc + injection*p) + drive, with the product precomputed by
       {!stepper_load_power} — bit-identical. *)
    Array.unsafe_set dst i
      (!acc +. Array.unsafe_get injp i +. Array.unsafe_get drive i)
  done

let stepper_step_into s t p ~dst =
  if Vec.dim t <> s.n || Vec.dim p <> s.n || Vec.dim dst <> s.n then
    invalid_arg "Rc_model.stepper_step_into: dimension mismatch";
  let row_start = s.row_start
  and cols = s.cols
  and vals = s.vals
  and injection = s.s_injection
  and drive = s.s_drive in
  for i = 0 to s.n - 1 do
    let acc = ref 0.0 in
    for k = Array.unsafe_get row_start i to Array.unsafe_get row_start (i + 1) - 1 do
      acc :=
        !acc
        +. Array.unsafe_get vals k
           *. Array.unsafe_get t (Array.unsafe_get cols k)
    done;
    Array.unsafe_set dst i
      (!acc +. (Array.unsafe_get injection i *. Array.unsafe_get p i)
      +. Array.unsafe_get drive i)
  done

let discrete_steady_state d p =
  let n = Mat.rows d.step in
  if Vec.dim p <> n then
    invalid_arg "Rc_model.discrete_steady_state: bad power vector";
  (* (I - A) t = b.p + c *)
  let i_minus_a = Mat.sub (Mat.identity n) d.step in
  let rhs = Vec.init n (fun i -> (d.injection.(i) *. p.(i)) +. d.drive.(i)) in
  Lu.solve i_minus_a rhs
