open Linalg

type trajectory = { times : Vec.t; temperatures : Mat.t }

let simulate (d : Rc_model.discrete) ~t0 ~steps ~power =
  let n = Mat.rows d.Rc_model.step in
  if Vec.dim t0 <> n then invalid_arg "Transient.simulate: bad t0";
  if steps < 0 then invalid_arg "Transient.simulate: negative steps";
  let temperatures = Mat.zeros (steps + 1) n in
  (* Ping-pong between two buffers: the step loop allocates nothing. *)
  let t = ref (Vec.copy t0) in
  let next = ref (Vec.zeros n) in
  for i = 0 to n - 1 do
    Mat.set temperatures 0 i t0.(i)
  done;
  for k = 1 to steps do
    Rc_model.step_temperature_into d !t (power (k - 1)) ~dst:!next;
    let tmp = !t in
    t := !next;
    next := tmp;
    for i = 0 to n - 1 do
      Mat.set temperatures k i !t.(i)
    done
  done;
  let times =
    Vec.init (steps + 1) (fun k -> float_of_int k *. d.Rc_model.dt)
  in
  { times; temperatures }

let simulate_const d ~t0 ~steps p = simulate d ~t0 ~steps ~power:(fun _ -> p)

let peak traj =
  let best = ref neg_infinity in
  for k = 0 to Mat.rows traj.temperatures - 1 do
    for i = 0 to Mat.cols traj.temperatures - 1 do
      best := Float.max !best (Mat.get traj.temperatures k i)
    done
  done;
  !best

let node_series traj i = Mat.col traj.temperatures i

(* --- exact integration ------------------------------------------- *)

(* Continuous dynamics: C dT/dt = -G_total T + L T_off + p + g_amb Ta,
   i.e. dT/dt = Ac T + u(p) with
   Ac = C^{-1} (lateral - diag(total conductance)) and
   u = C^{-1} (p + g_amb * Ta).
   Exact step: T(h) = e^{h Ac} T + h phi1(h Ac) u. *)
type propagator = {
  e : Mat.t;
  response : Mat.t;  (* h * phi1(h Ac) * C^{-1}: maps (p + g_amb Ta) *)
  drive : Vec.t;  (* response applied to the ambient forcing *)
  dt : float;
}

let exact_propagator model ~dt =
  if dt <= 0.0 then invalid_arg "Transient.exact_propagator: bad dt";
  let n = Rc_model.size model in
  let ac =
    Mat.init n n (fun i j ->
        let ci = Rc_model.capacitance model i in
        if i = j then begin
          let total = ref (Rc_model.ambient_conductance model i) in
          for k = 0 to n - 1 do
            if k <> i then total := !total +. Rc_model.conductance model i k
          done;
          -. !total /. ci
        end
        else Rc_model.conductance model i j /. ci)
  in
  let h_ac = Mat.scale dt ac in
  let e = Expm.expm h_ac in
  let phi = Expm.phi1 h_ac in
  (* response = dt * phi1(h Ac) * C^{-1} *)
  let response =
    Mat.init n n (fun i j ->
        dt *. Mat.get phi i j /. Rc_model.capacitance model j)
  in
  let ambient_forcing =
    Vec.init n (fun i ->
        Rc_model.ambient_conductance model i
        *. (Rc_model.params model).Rc_model.ambient)
  in
  { e; response; drive = Mat.mul_vec response ambient_forcing; dt }

let exact_step_into prop t p ~scratch ~dst =
  Mat.mul_vec_into prop.e t ~dst;
  Mat.mul_vec_into prop.response p ~dst:scratch;
  for i = 0 to Vec.dim dst - 1 do
    dst.(i) <- dst.(i) +. scratch.(i) +. prop.drive.(i)
  done

let exact_step prop t p =
  let n = Vec.dim prop.drive in
  let dst = Vec.zeros n in
  exact_step_into prop t p ~scratch:(Vec.zeros n) ~dst;
  dst

let exact_simulate prop ~t0 ~steps ~power =
  let n = Vec.dim t0 in
  if steps < 0 then invalid_arg "Transient.exact_simulate: negative steps";
  let temperatures = Mat.zeros (steps + 1) n in
  (* Same ping-pong scheme as {!simulate}: three fixed buffers,
     nothing allocated per step. *)
  let t = ref (Vec.copy t0) in
  let next = ref (Vec.zeros n) in
  let scratch = Vec.zeros n in
  for i = 0 to n - 1 do
    Mat.set temperatures 0 i t0.(i)
  done;
  for k = 1 to steps do
    exact_step_into prop !t (power (k - 1)) ~scratch ~dst:!next;
    let tmp = !t in
    t := !next;
    next := tmp;
    for i = 0 to n - 1 do
      Mat.set temperatures k i !t.(i)
    done
  done;
  let times = Vec.init (steps + 1) (fun k -> float_of_int k *. prop.dt) in
  { times; temperatures }
