(** RC thermal network extraction, and its discrete-time form.

    Builds the lumped thermal network of a floorplan in the style of
    HotSpot [Skadron et al., TACO 2004] and the MPSoC tool of
    [Paci et al., DATE 2006]: one node per block, lateral conductances
    proportional to the shared edge length through the die thickness,
    a vertical conductance per unit area to ambient (lumping the
    spreader/sink stack), and heat capacities proportional to block
    volume.

    The continuous model is [C dT/dt = -G (T - ...) + P], which the
    paper discretizes (its Eq. 1) as

    [t_{k+1,i} = t_{k,i} + sum_j a_ij (t_{k,j} - t_{k,i}) + b_i p_i]

    plus an ambient term.  {!discretize} produces exactly that affine
    recurrence [t_{k+1} = A t_k + diag(b) p + c]. *)

open Linalg

type params = {
  die_thickness : float;  (** meters (default 0.5e-3). *)
  conductivity : float;  (** W/(m K), silicon (default 100.0). *)
  volumetric_heat_capacity : float;  (** J/(m^3 K) (default 1.75e6). *)
  vertical_conductance_per_area : float;
      (** W/(K m^2): effective package conductance, die to ambient
          through spreader and sink (default 3.0e3). *)
  ambient : float;  (** Ambient temperature, Celsius (default 27.0). *)
}

val default_params : params

type t
(** The continuous-time network. *)

val build : ?params:params -> Floorplan.t -> t

val size : t -> int
val floorplan : t -> Floorplan.t
val params : t -> params

val conductance : t -> int -> int -> float
(** Lateral conductance between two nodes (W/K); [0.0] if not
    adjacent. *)

val ambient_conductance : t -> int -> float
val capacitance : t -> int -> float

val steady_state : t -> Vec.t -> Vec.t
(** [steady_state m p] is the equilibrium temperature vector under
    constant power [p] (length = number of blocks). *)

val conductance_sparse : t -> Sparse.t
(** The (SPD) conductance matrix in CSR form: the Laplacian of the
    lateral network plus the ambient conductances on the diagonal. *)

val steady_state_cg : ?tol:float -> t -> Vec.t -> Vec.t * int
(** Like {!steady_state} but via conjugate gradients on the sparse
    matrix — the right tool for fine-grained meshes
    ({!Floorplan.grid}) where dense LU is cubic.  Returns the
    temperatures and the CG iteration count; raises [Failure] if CG
    stalls. *)

(** {1 Discrete-time form (the paper's Eq. 1)} *)

type discrete = {
  step : Mat.t;  (** [A]: nonnegative for a stable step size. *)
  injection : Vec.t;  (** [b]: per-node power-to-temperature gain. *)
  drive : Vec.t;  (** [c]: ambient forcing term. *)
  dt : float;
  ambient : float;
}

val max_monotone_dt : t -> float
(** Largest step size for which the explicit-Euler matrix [A] stays
    elementwise nonnegative — the regime in which temperatures are
    monotone in initial conditions and powers (the lemma the Pro-Temp
    guarantee rests on). *)

val discretize : t -> dt:float -> discrete
(** Raises [Invalid_argument] if [dt] exceeds {!max_monotone_dt}. *)

val step_temperature : discrete -> Vec.t -> Vec.t -> Vec.t
(** [step_temperature d t p] is one application of the recurrence. *)

val step_temperature_into : discrete -> Vec.t -> Vec.t -> dst:Vec.t -> unit
(** Like {!step_temperature} but writes into [dst], which must not
    alias the input temperature vector.  Lets step loops run
    allocation-free with two ping-pong buffers. *)

val discrete_steady_state : discrete -> Vec.t -> Vec.t
(** Fixed point of the recurrence under constant [p]; equals
    {!steady_state} of the continuous model. *)
