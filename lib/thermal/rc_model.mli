(** RC thermal network extraction, and its discrete-time form.

    Builds the lumped thermal network of a floorplan in the style of
    HotSpot [Skadron et al., TACO 2004] and the MPSoC tool of
    [Paci et al., DATE 2006]: one node per block, lateral conductances
    proportional to the shared edge length through the die thickness,
    a vertical conductance per unit area to ambient (lumping the
    spreader/sink stack), and heat capacities proportional to block
    volume.

    The continuous model is [C dT/dt = -G (T - ...) + P], which the
    paper discretizes (its Eq. 1) as

    [t_{k+1,i} = t_{k,i} + sum_j a_ij (t_{k,j} - t_{k,i}) + b_i p_i]

    plus an ambient term.  {!discretize} produces exactly that affine
    recurrence [t_{k+1} = A t_k + diag(b) p + c]. *)

open Linalg

type params = {
  die_thickness : float;  (** meters (default 0.5e-3). *)
  conductivity : float;  (** W/(m K), silicon (default 100.0). *)
  volumetric_heat_capacity : float;  (** J/(m^3 K) (default 1.75e6). *)
  vertical_conductance_per_area : float;
      (** W/(K m^2): effective package conductance, die to ambient
          through spreader and sink (default 3.0e3). *)
  ambient : float;  (** Ambient temperature, Celsius (default 27.0). *)
}

val default_params : params

type t
(** The continuous-time network. *)

val build : ?params:params -> Floorplan.t -> t

val size : t -> int
val floorplan : t -> Floorplan.t
val params : t -> params

val conductance : t -> int -> int -> float
(** Lateral conductance between two nodes (W/K); [0.0] if not
    adjacent. *)

val ambient_conductance : t -> int -> float
val capacitance : t -> int -> float

val steady_state : t -> Vec.t -> Vec.t
(** [steady_state m p] is the equilibrium temperature vector under
    constant power [p] (length = number of blocks). *)

val conductance_sparse : t -> Sparse.t
(** The (SPD) conductance matrix in CSR form: the Laplacian of the
    lateral network plus the ambient conductances on the diagonal. *)

val steady_state_cg : ?tol:float -> t -> Vec.t -> Vec.t * int
(** Like {!steady_state} but via conjugate gradients on the sparse
    matrix — the right tool for fine-grained meshes
    ({!Floorplan.grid}) where dense LU is cubic.  Returns the
    temperatures and the CG iteration count; raises [Failure] if CG
    stalls. *)

(** {1 Discrete-time form (the paper's Eq. 1)} *)

type discrete = {
  step : Mat.t;  (** [A]: nonnegative for a stable step size. *)
  injection : Vec.t;  (** [b]: per-node power-to-temperature gain. *)
  drive : Vec.t;  (** [c]: ambient forcing term. *)
  dt : float;
  ambient : float;
}

val max_monotone_dt : t -> float
(** Largest step size for which the explicit-Euler matrix [A] stays
    elementwise nonnegative — the regime in which temperatures are
    monotone in initial conditions and powers (the lemma the Pro-Temp
    guarantee rests on). *)

val discretize : t -> dt:float -> discrete
(** Raises [Invalid_argument] if [dt] exceeds {!max_monotone_dt}. *)

val step_temperature : discrete -> Vec.t -> Vec.t -> Vec.t
(** [step_temperature d t p] is one application of the recurrence. *)

val step_temperature_into : discrete -> Vec.t -> Vec.t -> dst:Vec.t -> unit
(** Like {!step_temperature} but writes into [dst], which must not
    alias the input temperature vector.  Lets step loops run
    allocation-free with two ping-pong buffers. *)

val discrete_steady_state : discrete -> Vec.t -> Vec.t
(** Fixed point of the recurrence under constant [p]; equals
    {!steady_state} of the continuous model. *)

(** {1 Compiled stepper}

    The step matrix of a physical floorplan is sparse (each node only
    touches its few lateral neighbours), so simulation loops that
    apply the recurrence millions of times should not stream the
    dense [A].  A {!stepper} is the CSR form of [A] bundled with the
    injection and drive vectors. *)

type stepper

val compile_stepper : discrete -> stepper
(** One-time compilation of the recurrence into CSR form.  Nonzeros
    are stored in ascending column order per row, so
    {!stepper_step_into} produces results bit-for-bit identical to
    {!step_temperature_into} (the products it skips are exact
    zeros). *)

val stepper_dt : stepper -> float

val stepper_step_into : stepper -> Vec.t -> Vec.t -> dst:Vec.t -> unit
(** Like {!step_temperature_into} on the compiled form; performs no
    heap allocation.  [dst] must not alias the input temperature
    vector. *)

val stepper_load_power : stepper -> Vec.t -> unit
(** Cache the power vector's injection products inside the stepper.
    Simulation loops whose power changes rarely (only when a core
    starts/stops or frequencies move) load it once per change and
    step with {!stepper_step_loaded_into} in between. *)

val stepper_reload_power_at : stepper -> Vec.t -> int array -> unit
(** Recompute the cached injection products only at the given node
    indexes.  Equivalent to {!stepper_load_power} when every other
    entry of the power vector is unchanged since the last load —
    the case for a stepping loop whose power moves only on the core
    nodes. *)

val stepper_step_loaded_into : stepper -> Vec.t -> dst:Vec.t -> unit
(** One recurrence application against the last loaded power;
    bit-identical to {!stepper_step_into} with that power, and
    allocation-free. *)
