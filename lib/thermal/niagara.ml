open Linalg

let fmax = 1.0e9
let core_pmax = 4.0
let target_peak = 122.0
let dt = 0.4e-3
let n_cores = 8

let mm = 1e-3

(* Die: 13 x 11.5 mm.  Bottom to top: cache row, core row P1-P4,
   crossbar strip with the two L2 buffers, core row P5-P8, cache row;
   tall L2 bank columns flank both core rows, so the row-end cores
   (P1, P4, P5, P8) border cool caches while the middle cores are
   sandwiched by other cores — the asymmetry Sec. 5.3 discusses. *)
let floorplan () =
  let block name kind x y width height =
    {
      Floorplan.name;
      kind;
      x = x *. mm;
      y = y *. mm;
      width = width *. mm;
      height = height *. mm;
    }
  in
  let core_w = 2.5 in
  let bottom_core i = block (Printf.sprintf "P%d" (i + 1)) Floorplan.Core
      (1.5 +. (float_of_int i *. core_w)) 2.5 core_w 2.5 in
  let top_core i = block (Printf.sprintf "P%d" (i + 5)) Floorplan.Core
      (1.5 +. (float_of_int i *. core_w)) 6.5 core_w 2.5 in
  Floorplan.make
    ([
       block "L2_SW" Floorplan.Cache 0.0 0.0 6.5 2.5;
       block "L2_SE" Floorplan.Cache 6.5 0.0 6.5 2.5;
       block "L2_W" Floorplan.Cache 0.0 2.5 1.5 6.5;
       block "L2_E" Floorplan.Cache 11.5 2.5 1.5 6.5;
     ]
    @ List.init 4 bottom_core
    @ [
        block "BUF_W" Floorplan.Buffer 1.5 5.0 1.25 1.5;
        block "XBAR" Floorplan.Interconnect 2.75 5.0 7.5 1.5;
        block "BUF_E" Floorplan.Buffer 10.25 5.0 1.25 1.5;
      ]
    @ List.init 4 top_core
    @ [
        block "L2_NW" Floorplan.Cache 0.0 9.0 6.5 2.5;
        block "L2_NE" Floorplan.Cache 6.5 9.0 6.5 2.5;
      ])

let fixed_power fp =
  Vec.init (Floorplan.size fp) (fun i ->
      match (Floorplan.block_of fp i).Floorplan.kind with
      | Floorplan.Core -> 0.0
      | Floorplan.Cache -> 1.3
      | Floorplan.Buffer -> 0.25
      | Floorplan.Interconnect -> 1.5
      | Floorplan.Other -> 0.0)

let core_nodes fp =
  Array.init n_cores (fun i ->
      Floorplan.index_of fp (Printf.sprintf "P%d" (i + 1)))

let core_power_of_frequency f =
  let f = Float.max 0.0 f in
  core_pmax *. (f /. fmax) *. (f /. fmax)

let power_vector fp ~core_power =
  if Vec.dim core_power <> n_cores then
    invalid_arg "Niagara.power_vector: need 8 core powers";
  let p = fixed_power fp in
  Array.iteri (fun i node -> p.(node) <- core_power.(i)) (core_nodes fp);
  p

(* Calibrated parameters, computed once.  One deliberate departure
   from the generic defaults: a thinned flip-chip die (0.15 mm), which
   weakens lateral spreading so a single core's self-heating is tens
   of degrees — the regime in which the paper's per-core effects
   (reactive overshoot in Fig. 1, the periphery/middle split of
   Figs. 9-10) exist at all.  With the thin die, raw silicon heat
   capacity yields a ~20 ms core time constant, so a 100 ms DFS window
   reaches quasi-steady state, matching the declining feasibility
   frontier of the paper's Fig. 9. *)
let params =
  (* The memo cell is read from every domain that builds a model, so
     it must be an [Atomic], not a bare [ref]: the calibration is
     deterministic and the cached record immutable, so a duplicated
     first computation is benign, whereas an unsynchronized [ref]
     write has no cross-domain ordering guarantee at all. *)
  let cache = Atomic.make None in
  fun () ->
    match Atomic.get cache with
    | Some p -> p
    | None ->
        let fp = floorplan () in
        let base =
          { Rc_model.default_params with Rc_model.die_thickness = 0.15e-3 }
        in
        let full_load =
          power_vector fp ~core_power:(Vec.create n_cores core_pmax)
        in
        let tuned =
          Calibrate.tune_vertical_conductance ~params:base ~floorplan:fp
            ~power:full_load target_peak
        in
        Atomic.set cache (Some tuned);
        tuned

let model () = Rc_model.build ~params:(params ()) (floorplan ())
