(** Transient thermal simulation.

    Two integrators over the same RC network:
    - {!simulate}: the paper's explicit-Euler recurrence (Eq. 1),
      which is what both the Pro-Temp offline models and the run-time
      simulator use; and
    - {!exact_propagator}/{!exact_step}: the exact solution of the
      continuous system via the matrix exponential, used as the ground
      truth in the Euler-accuracy ablation. *)

open Linalg

type trajectory = {
  times : Vec.t;  (** [steps + 1] sample instants, starting at 0. *)
  temperatures : Mat.t;  (** [(steps + 1) x n]; row [k] is [t_k]. *)
}

val simulate :
  Rc_model.discrete -> t0:Vec.t -> steps:int -> power:(int -> Vec.t) ->
  trajectory
(** [simulate d ~t0 ~steps ~power] iterates Eq. 1; [power k] is the
    power vector applied during step [k] (from [t_k] to [t_{k+1}]). *)

val simulate_const :
  Rc_model.discrete -> t0:Vec.t -> steps:int -> Vec.t -> trajectory

val peak : trajectory -> float
(** Highest temperature over all nodes and times. *)

val node_series : trajectory -> int -> Vec.t
(** The time series of one node. *)

(** {1 Exact integration} *)

type propagator
(** Precomputed [e^{dt A_c}] and input response for one step size. *)

val exact_propagator : Rc_model.t -> dt:float -> propagator

val exact_step : propagator -> Vec.t -> Vec.t -> Vec.t
(** [exact_step prop t p]: the exact temperature after [dt] under
    constant power [p], from temperature [t]. *)

val exact_step_into :
  propagator -> Vec.t -> Vec.t -> scratch:Vec.t -> dst:Vec.t -> unit
(** In-place {!exact_step}: writes the result into [dst] using
    [scratch] as workspace.  [dst] and [scratch] must be distinct and
    must not alias the input temperature vector. *)

val exact_simulate :
  propagator -> t0:Vec.t -> steps:int -> power:(int -> Vec.t) -> trajectory
