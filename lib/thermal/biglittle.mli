(** An asymmetric big.LITTLE 8-core platform on the Niagara package.

    Four "big" cores (1 GHz, 5 W, quadratic power law) in the bottom
    row and four "little" cores (600 MHz, 1.5 W, cubic power law,
    lower idle activity) in the top row, on the same 13 x 11.5 mm die,
    crossbar strip and L2 flanks as {!Niagara} — so comparisons
    between the two platforms isolate the effect of core asymmetry.
    The per-class numbers follow the big.LITTLE modelling literature
    (Bhat et al.): little cores trade a lower ceiling and a steeper
    (super-quadratic) law for much lower absolute power.

    This module only knows thermal/physical facts; [Sim.Machine.biglittle]
    lifts {!classes} and {!class_assignment} into a [Sim.Platform]. *)

open Linalg

type core_class = {
  class_name : string;
  fmax : float;  (** Frequency ceiling, Hz. *)
  pmax : float;  (** Dynamic power at the ceiling, Watts. *)
  exponent : float;  (** Power-law exponent. *)
  idle_activity : float;  (** Idle dynamic-power fraction. *)
}

val big : core_class
(** 1 GHz, 5 W, exponent 2, idle activity 0.3. *)

val little : core_class
(** 600 MHz, 1.5 W, exponent 3, idle activity 0.2. *)

val classes : unit -> core_class array
(** [[| big; little |]] (fresh array). *)

val class_assignment : unit -> int array
(** Class index per core: B1-B4 then L1-L4, i.e.
    [[| 0;0;0;0; 1;1;1;1 |]] (fresh array). *)

val target_peak : float
(** Calibration anchor: hottest steady-state node with every core at
    its class [pmax] (122 degrees Celsius, as for {!Niagara}). *)

val dt : float
(** Thermal integration step, seconds (0.4e-3). *)

val n_cores : int
(** 8. *)

val floorplan : unit -> Floorplan.t
(** 18 blocks: 4 big cores, 4 little cores, 6 L2 banks, an SRAM bank
    filling the top-east area the narrow little cores free up, 2 L2
    buffers and the crossbar. *)

val params : unit -> Rc_model.params
(** Calibrated parameters (computed once, then cached). *)

val model : unit -> Rc_model.t

val fixed_power : Floorplan.t -> Vec.t
(** Static power of the non-core blocks (cores are zero here); same
    per-kind budget as {!Niagara.fixed_power}. *)

val core_pmax : unit -> Vec.t
(** Per-core peak dynamic power in core order (the full-load
    calibration vector). *)

val power_vector : Floorplan.t -> core_power:Vec.t -> Vec.t
(** Embed 8 per-core powers into a full node power vector, adding the
    fixed non-core power. *)

val core_nodes : Floorplan.t -> int array
(** Node indices of B1..B4, L1..L4, in that order. *)
