.PHONY: ci build test bench clean

# Everything the tier-1 gate runs: full build, then the test suites.
# `dune runtest` also executes both benchmarks in fast mode
# (PROTEMP_BENCH_FAST=1, see bench/dune): the sweep smoke cross-checks
# the compiled vs reference barrier backends and the parallel vs
# sequential tables, and the sim smoke checks the allocation-free
# engine against the reference engine, the campaign (including its
# fault axis) across domain counts, and the fault sweep's golden
# guarantee gate — a zero-fault configuration reporting any tmax
# violation, or the guard-banded table failing to absorb an injected
# fault, exits non-zero.
ci: build test

build:
	dune build

test:
	dune runtest

# Full-size benchmarks; rewrite BENCH_sweep.json / BENCH_sim.json.
bench:
	dune exec bench/sweep_bench.exe
	dune exec bench/sim_bench.exe

clean:
	dune clean
