.PHONY: ci build test bench clean

# Everything the tier-1 gate runs: full build, then the test suites.
# `dune runtest` also executes the sweep benchmark in fast mode
# (PROTEMP_BENCH_FAST=1, see bench/dune), which cross-checks the
# compiled vs reference barrier backends and the parallel vs
# sequential tables on a tiny grid.
ci: build test

build:
	dune build

test:
	dune runtest

# Full-grid benchmark; rewrites BENCH_sweep.json.
bench:
	dune exec bench/sweep_bench.exe

clean:
	dune clean
