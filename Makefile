.PHONY: ci build test lint bench clean

# Everything the tier-1 gate runs: full build, then the test suites.
# `dune runtest` also executes the benchmarks in fast mode
# (PROTEMP_BENCH_FAST=1, see bench/dune): the sweep smoke cross-checks
# the compiled vs reference barrier backends and the parallel vs
# sequential tables, walks the dense-table pipeline end to end (fill,
# domain invariance, warm-start hit-rate gate, mmap store, both
# serving paths), and the sim smoke checks the allocation-free
# engine against the reference engine, the campaign (including its
# fault axis) across domain counts, and the fault sweep's golden
# guarantee gate — a zero-fault configuration reporting any tmax
# violation, or the guard-banded table failing to absorb an injected
# fault, exits non-zero.  The fleet smoke runs all three fleet gates
# on a small rack: zero violations under the shared guard-banded
# store, bit-identical aggregates across domain counts, and
# coolest-headroom strictly beating round-robin on the hot-aisle
# scenario.  The table_store suite also pins the serving
# format against test/table_store_header.golden: a format/version
# change must update that committed header consciously or ci fails.
# `dune runtest` additionally self-lints the
# whole tree (see the root `dune` rule), and `lint` below runs the
# same pass standalone; ci runs it explicitly so a lint regression is
# reported even if the runtest alias is filtered.
ci: build test lint

build:
	dune build

test:
	dune runtest

# Static analysis: domain-safety, alloc-free manifest, float equality,
# mli coverage (DESIGN.md section 6f), plus the typed pass — units of
# measure per units.manifest and cross-domain capture (section 6k).
# Building the check alias first guarantees fresh .cmt artifacts, so
# the typed checkers see real cross-module types; findings whose
# stable id is in lint.baseline are reported but don't fail.  Exits
# non-zero on any unsuppressed, unbaselined finding.
lint:
	dune build @lib/check @bin/check
	dune exec bin/protemp_cli.exe -- lint --manifest lint.manifest \
	  --units units.manifest --baseline lint.baseline

# Regenerate the baseline: acknowledge every current finding by id.
# Review the diff — a grown baseline is a consciously accepted debt.
lint-baseline:
	dune build @lib/check @bin/check
	dune exec bin/protemp_cli.exe -- lint --manifest lint.manifest \
	  --units units.manifest --baseline lint.baseline --update-baseline

# Full-size benchmarks; rewrite BENCH_sweep.json / BENCH_sim.json /
# BENCH_fleet.json.
bench:
	dune exec bench/sweep_bench.exe
	dune exec bench/sim_bench.exe
	dune exec bench/fleet_bench.exe

clean:
	dune clean
