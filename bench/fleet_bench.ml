(* Fleet-scale serving benchmark: one arrival stream partitioned over
   a rack of chips, each running the Pro-Temp controller off a single
   shared read-only Table_store image, fronted by the thermal-aware
   balancer.  Emits BENCH_fleet.json (fleet steps/s, waiting-time tail
   percentiles, fleet-wide violation counts) so the serving trajectory
   can be tracked across PRs.

   Every timed section doubles as a gate:
     - the shared-store Pro-Temp fleet must report zero tmax
       violations (the per-chip guarantee must survive fleet routing);
     - the aggregate must be bit-identical at 1 domain and at the
       machine's domain count;
     - on the heterogeneous hot-aisle scenario the coolest-headroom
       balancer must show strictly fewer fleet-wide violating steps
       than thermally-blind round-robin.
   Any failed gate exits non-zero.

   Run with:  dune exec bench/fleet_bench.exe             (full sizes)
              PROTEMP_BENCH_FAST=1 dune exec bench/fleet_bench.exe
              (small sizes, seconds — wired into `dune runtest` as a
              smoke test) *)

let fast = Sys.getenv_opt "PROTEMP_BENCH_FAST" <> None
let machine = Sim.Machine.niagara ()
let failures = ref 0

let check what ok =
  if not ok then begin
    Printf.printf "  [FAIL] %s\n%!" what;
    incr failures
  end

(* ------------------------------------------------------------------ *)
(* The serving fleet: N chips, every controller polling one mapped
   guard-banded table image. *)

let serve_chips = if fast then 8 else 120
let serve_tasks = if fast then 4000 else 50000
let guard_margin = 5.0

let store =
  let spec = Protemp.Spec.default in
  let tstarts = Array.init 74 (fun i -> 27.0 +. float_of_int i) in
  let ftargets = Array.init 9 (fun i -> float_of_int (i + 1) *. 1e8) in
  let table =
    Protemp.Guarantee.uniform_table ~machine ~spec ~margin:guard_margin
      ~tstarts ~ftargets ()
  in
  let path = Filename.temp_file "fleet_bench" ".ptbl" in
  Protemp.Table_store.write ~core_fmax:machine.Sim.Machine.core_fmax table
    path;
  let store = Protemp.Table_store.open_file path in
  (* The mapping keeps the pages alive; the name can go. *)
  Sys.remove path;
  store

let serve_trace =
  (* Sized for the whole rack: the generator's offered-load scaling is
     per core, so asking for half the fleet's cores puts the fleet at
     roughly half duty — heavy enough to exercise the balancer, light
     enough that the guard-banded table never needs to emergency-stop
     for long. *)
  Workload.Trace.generate
    ~n_cores:(serve_chips * 4)
    ~seed:2008L ~n_tasks:serve_tasks Workload.Mix.paper_mix

let serve_config =
  {
    Fleet.Cluster.default_config with
    Fleet.Cluster.n_chips = serve_chips;
    thermal_penalty = 50.0;
  }

let serve_chip _ =
  Fleet.Chip.create ~machine
    ~controller:(Protemp.Controller.of_store ~store)
    ~assignment:Sim.Policy.first_idle ()

let serve_at domains =
  Fleet.Cluster.run ~config:serve_config ~domains
    ~balancer:(Fleet.Balancer.coolest_headroom ())
    ~chip:serve_chip serve_trace

(* ------------------------------------------------------------------ *)
(* The balancer gate: a heterogeneous rack where odd chips sit in a
   hot aisle (fixed power x6, idling near 87 C).  Round-robin's fair
   share pushes the hot aisle over the cap; coolest-headroom skews the
   stream toward the cool aisle and must violate strictly less.  Same
   scenario as test/test_fleet.ml, full-size here. *)

let aisle_tasks = if fast then 2000 else 4000

let aisle_trace =
  Workload.Trace.generate ~n_cores:10 ~seed:23L ~n_tasks:aisle_tasks
    Workload.Mix.compute_intensive

let aisle_chip i =
  let m =
    if i land 1 = 1 then
      Sim.Machine.make ~thermal:machine.Sim.Machine.thermal
        ~core_nodes:machine.Sim.Machine.core_nodes
        ~fixed_power:
          (Array.map (fun p -> p *. 6.0) machine.Sim.Machine.fixed_power)
        ~fmax:1e9 ~core_pmax:4.0 ()
    else machine
  in
  Fleet.Chip.create ~machine:m
    ~controller:(Sim.Policy.workload_following ~fmax:1e9)
    ~assignment:Sim.Policy.first_idle ()

let aisle_config =
  {
    Fleet.Cluster.default_config with
    Fleet.Cluster.n_chips = 4;
    migrate = true;
    thermal_penalty = 60.0;
  }

let aisle_run balancer =
  Fleet.Cluster.run ~config:aisle_config ~balancer ~chip:aisle_chip
    aisle_trace

(* ------------------------------------------------------------------ *)

let pct stats q = Sim.Stats.waiting_percentile stats q *. 1e3

let () =
  let hw = Parallel.Pool.default_domains () in
  Printf.printf "Fleet benchmark%s (%d domain(s) available)\n%!"
    (if fast then " (FAST mode)" else "")
    hw;

  (* Warm-up run (page faults, code paths), then the timed one. *)
  ignore (serve_at 1);
  let r = serve_at hw in
  let r1 = serve_at 1 in
  let steps = Sim.Stats.total_steps r.Fleet.Cluster.stats in
  let steps_per_sec = float_of_int steps /. r.Fleet.Cluster.wall_clock in
  let p50 = pct r.Fleet.Cluster.stats 0.50
  and p95 = pct r.Fleet.Cluster.stats 0.95
  and p99 = pct r.Fleet.Cluster.stats 0.99 in
  Printf.printf
    "  shared-store fleet: %d chips, %d tasks, %.2e steps in %.2f s \
     (%.2e steps/s on %d domains)\n%!"
    serve_chips serve_tasks (float_of_int steps) r.Fleet.Cluster.wall_clock
    steps_per_sec hw;
  Printf.printf
    "    waiting: p50 %.2f ms, p95 %.2f ms, p99 %.2f ms, max %.2f ms; \
     routed %d, held %d, unfinished %d\n%!"
    p50 p95 p99
    (Sim.Stats.max_waiting r.Fleet.Cluster.stats *. 1e3)
    r.Fleet.Cluster.routed r.Fleet.Cluster.held r.Fleet.Cluster.unfinished;
  check "guarantee gate: shared-store fleet has zero tmax violations"
    (Sim.Stats.violation_steps r.Fleet.Cluster.stats = 0);
  check "shared-store fleet finishes the stream"
    (r.Fleet.Cluster.unfinished = 0);
  check "aggregate bit-identical at 1 domain and at the machine's count"
    (Sim.Stats.equal r.Fleet.Cluster.stats r1.Fleet.Cluster.stats);
  check "routing identical across domain counts"
    (r.Fleet.Cluster.routed = r1.Fleet.Cluster.routed
    && r.Fleet.Cluster.held = r1.Fleet.Cluster.held);

  let rr = aisle_run (Fleet.Balancer.round_robin ()) in
  let cool = aisle_run (Fleet.Balancer.coolest_headroom ~guard:5.0 ()) in
  let rr_viol = Sim.Stats.violation_steps rr.Fleet.Cluster.stats in
  let cool_viol = Sim.Stats.violation_steps cool.Fleet.Cluster.stats in
  Printf.printf
    "  hot-aisle gate: round-robin %d violating steps (peak %.1f C), \
     coolest-headroom %d (peak %.1f C, %d migrated, %d held)\n%!"
    rr_viol
    (Sim.Stats.peak_temperature rr.Fleet.Cluster.stats)
    cool_viol
    (Sim.Stats.peak_temperature cool.Fleet.Cluster.stats)
    cool.Fleet.Cluster.migrated cool.Fleet.Cluster.held;
  check "balancer gate: coolest-headroom strictly reduces violations"
    (cool_viol < rr_viol);
  check "hot-aisle round-robin finishes" (rr.Fleet.Cluster.unfinished = 0);
  check "hot-aisle coolest-headroom finishes"
    (cool.Fleet.Cluster.unfinished = 0);

  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"fast\": %b,\n  \"available_domains\": %d,\n" fast hw);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"shared_store_fleet\": {\"chips\": %d, \"tasks\": %d, \"steps\": \
        %d, \"seconds\": %.3f, \"steps_per_sec\": %.0f, \"violating_steps\": \
        %d, \"routed\": %d, \"held\": %d, \"unfinished\": %d, \
        \"waiting_ms\": {\"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f, \
        \"max\": %.3f}},\n"
       serve_chips serve_tasks steps r.Fleet.Cluster.wall_clock steps_per_sec
       (Sim.Stats.violation_steps r.Fleet.Cluster.stats)
       r.Fleet.Cluster.routed r.Fleet.Cluster.held r.Fleet.Cluster.unfinished
       p50 p95 p99
       (Sim.Stats.max_waiting r.Fleet.Cluster.stats *. 1e3));
  Buffer.add_string buf
    (Printf.sprintf "  \"domain_invariant\": %b,\n"
       (Sim.Stats.equal r.Fleet.Cluster.stats r1.Fleet.Cluster.stats));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"hot_aisle_gate\": {\"chips\": %d, \"tasks\": %d, \
        \"round_robin\": {\"violating_steps\": %d, \"peak_c\": %.2f, \
        \"p99_ms\": %.3f}, \"coolest_headroom\": {\"violating_steps\": %d, \
        \"peak_c\": %.2f, \"p99_ms\": %.3f, \"migrated\": %d, \"held\": \
        %d}},\n"
       aisle_config.Fleet.Cluster.n_chips aisle_tasks rr_viol
       (Sim.Stats.peak_temperature rr.Fleet.Cluster.stats)
       (pct rr.Fleet.Cluster.stats 0.99)
       cool_viol
       (Sim.Stats.peak_temperature cool.Fleet.Cluster.stats)
       (pct cool.Fleet.Cluster.stats 0.99)
       cool.Fleet.Cluster.migrated cool.Fleet.Cluster.held);
  Buffer.add_string buf
    (Printf.sprintf "  \"checks_failed\": %d\n}\n" !failures);
  let oc = open_out "BENCH_fleet.json" in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "written to BENCH_fleet.json\n%!";
  if !failures > 0 then exit 1
