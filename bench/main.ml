(* The experiment harness: regenerates every figure of the paper's
   evaluation (Figs. 1-2 and 6-11 — the paper has no numbered tables)
   plus the in-text Sec. 5.1 timing claim, and the ablations listed in
   DESIGN.md Sec. 7.  Each experiment prints the same rows/series the
   paper plots; a Bechamel micro-benchmark of each experiment's
   computational kernel runs at the end.

   Run with:  dune exec bench/main.exe          (full, ~5-10 minutes)
              PROTEMP_BENCH_FAST=1 dune exec bench/main.exe   (smaller
              traces and grids, ~2 minutes; shapes unchanged) *)

open Linalg

let fast = Sys.getenv_opt "PROTEMP_BENCH_FAST" <> None

let section title =
  Printf.printf "\n=================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "=================================================================\n%!"

let claim name ok =
  Printf.printf "  [%s] %s\n%!" (if ok then "PASS" else "FAIL") name

(* ------------------------------------------------------------------ *)
(* Shared context, built once. *)

let machine = Sim.Machine.niagara ()
let fmax = machine.Sim.Machine.fmax

(* Thermal cap enforced every other step in the sweep spec: half the
   build cost; the audit below re-checks every entry at full
   resolution. *)
let spec = { Protemp.Spec.default with Protemp.Spec.constraint_stride = 2 }

let n_tasks_big = if fast then 12_000 else 60_000
let trace_mix =
  Workload.Trace.generate ~seed:2008L ~n_tasks:n_tasks_big
    Workload.Mix.paper_mix

let trace_compute =
  Workload.Trace.generate ~seed:2009L ~n_tasks:n_tasks_big
    Workload.Mix.compute_intensive

let table_tstarts =
  if fast then [| 27.0; 55.0; 85.0; 100.0 |]
  else [| 27.0; 40.0; 55.0; 70.0; 85.0; 100.0 |]

let table_ftargets =
  if fast then [| 2e8; 4e8; 6e8; 8e8; 1e9 |]
  else Array.init 10 (fun i -> float_of_int (i + 1) *. 1e8)

let table_build_seconds = ref 0.0

let table =
  lazy
    (let t0 = Unix.gettimeofday () in
     let t =
       Protemp.Offline.sweep ~machine ~spec ~tstarts:table_tstarts
         ~ftargets:table_ftargets ()
     in
     table_build_seconds := Unix.gettimeofday () -. t0;
     t)

let gradient_spec = Protemp.Spec.with_gradient ~weight:4.0 spec

let gradient_table =
  lazy
    (Protemp.Offline.sweep ~machine ~spec:gradient_spec
       ~tstarts:[| 40.0; 70.0; 100.0 |]
       ~ftargets:[| 3e8; 5e8; 7e8; 9e8 |]
       ())

let no_tc () = Protemp.No_tc.create ~fmax
let basic_dfs () = Protemp.Basic_dfs.create ~fmax ()
let pro_temp () = Protemp.Controller.create ~table:(Lazy.force table)

let run_sim ?(assignment = Sim.Policy.first_idle) controller trace =
  Sim.Engine.run machine controller assignment trace

(* Cache of simulation runs shared between figures. *)
let runs : (string, Sim.Engine.result) Hashtbl.t = Hashtbl.create 16

let sim key ?assignment controller trace =
  match Hashtbl.find_opt runs key with
  | Some r -> r
  | None ->
      let r = run_sim ?assignment (controller ()) trace in
      Hashtbl.add runs key r;
      r

(* Per-epoch temperature series for the time-series figures, gathered
   by a recorder probe (runs are cheap enough to redo per figure). *)
let recorded : (string, Sim.Probe.sample array) Hashtbl.t = Hashtbl.create 4

let sim_series key ?(assignment = Sim.Policy.first_idle) controller trace =
  match Hashtbl.find_opt recorded key with
  | Some s -> s
  | None ->
      let probe, series = Sim.Probe.recorder () in
      let _ : Sim.Engine.result =
        Sim.Engine.run ~probes:[ probe ] machine (controller ()) assignment
          trace
      in
      let s = series () in
      Hashtbl.add recorded key s;
      s

(* ------------------------------------------------------------------ *)
(* Figs. 1 and 2: temperature snapshot of processor P1 over time. *)

let hottest_series series =
  Array.map
    (fun (s : Sim.Probe.sample) ->
      (s.Sim.Probe.at, s.Sim.Probe.core_temperatures.(0)))
    series

let print_series name series =
  Printf.printf "%s (time in 100s of ms, temperature of P1 in C):\n" name;
  let n = Array.length series in
  let stride = Stdlib.max 1 (n / 40) in
  let k = ref 0 in
  while !k < Stdlib.min n (40 * stride) do
    let t, temp = series.(!k) in
    let bar = String.make (Stdlib.max 0 (int_of_float ((temp -. 27.0) /. 2.5))) '#' in
    Printf.printf "  %5.0f  %6.1f  %s\n" (t /. 0.1) temp bar;
    k := !k + stride
  done;
  Printf.printf "%!"

let fig1 () =
  section "Fig. 1 — thermal snapshot under traditional (Basic-) DFS";
  let r = sim "basic/compute" basic_dfs trace_compute in
  print_series "Basic-DFS" (hottest_series (sim_series "basic/compute" basic_dfs trace_compute));
  let peak = Sim.Stats.peak_temperature r.Sim.Engine.stats in
  Printf.printf "  peak %.1f C; violations of the 100 C limit: %d steps\n" peak
    (Sim.Stats.violation_steps r.Sim.Engine.stats);
  claim "Basic-DFS exceeds the maximum temperature (paper: repeatedly)"
    (peak > 100.0)

let fig2 () =
  section "Fig. 2 — thermal snapshot under Pro-Temp";
  let r = sim "protemp/compute" pro_temp trace_compute in
  print_series "Pro-Temp" (hottest_series (sim_series "protemp/compute" pro_temp trace_compute));
  let peak = Sim.Stats.peak_temperature r.Sim.Engine.stats in
  Printf.printf "  peak %.1f C; violations: %d steps\n" peak
    (Sim.Stats.violation_steps r.Sim.Engine.stats);
  claim "Pro-Temp never exceeds the maximum temperature"
    (Sim.Stats.violation_steps r.Sim.Engine.stats = 0 && peak <= 100.0)

(* ------------------------------------------------------------------ *)
(* Fig. 6: per-band residency for the three schemes. *)

let band_row r =
  List.map (fun (_, f) -> 100.0 *. f)
    (Sim.Stats.band_residency r.Sim.Engine.stats)

let print_bands title rows =
  Printf.printf "%s\n" title;
  Printf.printf "  %-12s %8s %8s %8s %8s\n" "scheme" "<80" "80-90" "90-100"
    ">100";
  List.iter
    (fun (name, row) ->
      match row with
      | [ a; b; c; d ] ->
          Printf.printf "  %-12s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n" name a b c d
      | _ -> assert false)
    rows;
  Printf.printf "%!"

let fig6 () =
  section "Fig. 6a — % time per temperature band (mixed benchmarks)";
  let rows =
    [
      ("No-TC", band_row (sim "notc/mix" no_tc trace_mix));
      ("Basic-DFS", band_row (sim "basic/mix" basic_dfs trace_mix));
      ("Pro-Temp", band_row (sim "protemp/mix" pro_temp trace_mix));
    ]
  in
  print_bands "(averaged across the 8 cores)" rows;
  section "Fig. 6b — % time per band (most computation-intensive benchmark)";
  let above _name r = List.nth (band_row r) 3 in
  let r_notc = sim "notc/compute" no_tc trace_compute in
  let r_basic = sim "basic/compute" basic_dfs trace_compute in
  let r_pro = sim "protemp/compute" pro_temp trace_compute in
  print_bands ""
    [
      ("No-TC", band_row r_notc);
      ("Basic-DFS", band_row r_basic);
      ("Pro-Temp", band_row r_pro);
    ];
  claim "No-TC and Basic-DFS spend significant time above 100 C"
    (above "notc" r_notc > 5.0 && above "basic" r_basic > 5.0);
  claim "Basic-DFS reaches tens of %% above tmax (paper: up to 40%)"
    (above "basic" r_basic > 15.0);
  (* Bit-exact: the claim is that the ratio is literally zero. *)
  claim "Pro-Temp spends 0%% above 100 C" (Float.equal (above "pro" r_pro) 0.0)

(* ------------------------------------------------------------------ *)
(* Fig. 7: task waiting times, normalized to Basic-DFS. *)

let fig7 () =
  section "Fig. 7 — average task waiting time (normalized to Basic-DFS)";
  let w_basic =
    Sim.Stats.mean_waiting (sim "basic/compute" basic_dfs trace_compute).Sim.Engine.stats
  in
  let w_pro =
    Sim.Stats.mean_waiting (sim "protemp/compute" pro_temp trace_compute).Sim.Engine.stats
  in
  Printf.printf "  Basic-DFS: %8.1f ms  (= 1.00)\n" (w_basic *. 1e3);
  Printf.printf "  Pro-Temp:  %8.1f ms  (= %.2f)\n" (w_pro *. 1e3)
    (w_pro /. w_basic);
  claim "Pro-Temp cuts waiting time by >= 40%% (paper: ~60%%)"
    (w_pro /. w_basic < 0.6)

(* ------------------------------------------------------------------ *)
(* Fig. 8: P1 and P2 temperatures over time under Pro-Temp. *)

let fig8 () =
  section "Fig. 8 — temperatures of P1 and P2 over time (Pro-Temp)";
  let series = sim_series "protemp/mix" pro_temp trace_mix in
  let n = Array.length series in
  let stride = Stdlib.max 1 (n / 25) in
  Printf.printf "  %8s %8s %8s %8s\n" "t (s)" "P1 (C)" "P2 (C)" "|P1-P2|";
  let worst = ref 0.0 in
  Array.iteri
    (fun k s ->
      let p1 = s.Sim.Probe.core_temperatures.(0)
      and p2 = s.Sim.Probe.core_temperatures.(1) in
      worst := Float.max !worst (Float.abs (p1 -. p2));
      if k mod stride = 0 && k / stride < 25 then
        Printf.printf "  %8.1f %8.2f %8.2f %8.2f\n" s.Sim.Probe.at p1 p2
          (Float.abs (p1 -. p2)))
    series;
  Printf.printf "  worst |P1 - P2| over the whole run: %.2f C\n%!" !worst;
  claim "temperature gradient across processors stays low (paper: low)"
    (!worst < 10.0)

(* ------------------------------------------------------------------ *)
(* Fig. 9: max supportable average frequency, uniform vs variable. *)

let frontier_tstarts = [| 27.0; 37.0; 47.0; 57.0; 67.0; 77.0; 87.0; 97.0 |]

let frontier_solutions variant =
  Array.map
    (fun tstart ->
      let s = { spec with Protemp.Spec.variant } in
      ( tstart,
        Protemp.Offline.frontier_point ~machine ~spec:s ~tstart () ))
    frontier_tstarts

let fig9_10_data =
  lazy
    ( frontier_solutions Protemp.Spec.Variable,
      frontier_solutions Protemp.Spec.Uniform )

let fig9 () =
  section "Fig. 9 — max average frequency vs starting temperature";
  let variable, uniform = Lazy.force fig9_10_data in
  Printf.printf "  %8s %14s %14s\n" "tstart" "uniform (MHz)" "variable (MHz)";
  let ok = ref true in
  Array.iteri
    (fun i (tstart, v) ->
      let mean_of = function
        | Protemp.Model.Feasible s -> Vec.mean s.Protemp.Model.frequencies /. 1e6
        | Protemp.Model.Infeasible -> 0.0
      in
      let fv = mean_of v and fu = mean_of (snd uniform.(i)) in
      if fv < fu -. 1.0 then ok := false;
      Printf.printf "  %8.0f %14.0f %14.0f\n" tstart fu fv)
    variable;
  claim "variable assignment supports >= the uniform frontier everywhere" !ok;
  let first_v, last_v =
    let mean_of = function
      | Protemp.Model.Feasible s -> Vec.mean s.Protemp.Model.frequencies
      | Protemp.Model.Infeasible -> 0.0
    in
    (mean_of (snd variable.(0)), mean_of (snd variable.(7)))
  in
  claim "the frontier declines with the starting temperature"
    (last_v < first_v)

(* ------------------------------------------------------------------ *)
(* Fig. 10: per-core frequencies of P1 and P2 along the frontier. *)

let fig10 () =
  section "Fig. 10 — frequencies of P1 (periphery) and P2 (middle)";
  let variable, _ = Lazy.force fig9_10_data in
  Printf.printf "  %8s %10s %10s\n" "tstart" "P1 (MHz)" "P2 (MHz)";
  let ok = ref true in
  Array.iter
    (fun (tstart, outcome) ->
      match outcome with
      | Protemp.Model.Feasible s ->
          let f = s.Protemp.Model.frequencies in
          if f.(0) < f.(1) -. 1e5 then ok := false;
          Printf.printf "  %8.0f %10.0f %10.0f\n" tstart (f.(0) /. 1e6)
            (f.(1) /. 1e6)
      | Protemp.Model.Infeasible ->
          Printf.printf "  %8.0f %10s %10s\n" tstart "--" "--")
    variable;
  claim "P1 runs at least as fast as P2 (paper: significantly faster)" !ok

(* ------------------------------------------------------------------ *)
(* Fig. 11: effect of the task assignment policy. *)

let fig11 () =
  section "Fig. 11 — Basic-DFS above-tmax time vs assignment policy";
  let above r = 100.0 *. Sim.Stats.time_above r.Sim.Engine.stats in
  let r_first = sim "basic/compute" basic_dfs trace_compute in
  let efficient = Sim.Policy.cool_headroom ~threshold:97.0 in
  let r_cool =
    sim "basic/compute/cool" ~assignment:efficient basic_dfs trace_compute
  in
  Printf.printf "  Basic-DFS, first-idle assignment:     %5.1f%% above tmax\n"
    (above r_first);
  Printf.printf "  Basic-DFS, efficient assignment [26]: %5.1f%% above tmax\n"
    (above r_cool);
  claim "the efficient assignment reduces Basic-DFS violations"
    (above r_cool < above r_first);
  claim "but does not eliminate them (burstiness, as the paper notes)"
    (above r_cool > 0.0);
  (* In-text Sec. 5.4: Pro-Temp + efficient assignment reduces the
     spatial spread further. *)
  let spread r = Sim.Stats.mean_gradient r.Sim.Engine.stats in
  let g_plain = spread (sim "protemp/compute" pro_temp trace_compute) in
  let grad_controller () =
    Protemp.Controller.create ~table:(Lazy.force gradient_table)
  in
  let g_cool =
    spread
      (sim "protempgrad/compute/cool" ~assignment:Sim.Policy.coolest_first
         grad_controller trace_compute)
  in
  Printf.printf
    "  Pro-Temp mean core spread: %.2f C; with gradient table + efficient \
     assignment: %.2f C (-%.0f%%)\n"
    g_plain g_cool
    (100.0 *. (1.0 -. (g_cool /. g_plain)));
  claim "gradient table + efficient assignment reduces the spatial spread"
    (g_cool < g_plain)

(* ------------------------------------------------------------------ *)
(* Sec. 5.1: solver and design-time cost. *)

let s51 () =
  section "Sec. 5.1 — design-time cost";
  let t0 = Unix.gettimeofday () in
  let built =
    (* The paper's full-resolution formulation: every 0.4 ms step. *)
    Protemp.Model.build ~machine ~spec:Protemp.Spec.default ~tstart:70.0
      ~ftarget:7e8
  in
  let outcome = Protemp.Model.solve built in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf
    "  one Eq. 3 instance (m = %d steps, %d constraints): %.2f s\n"
    built.Protemp.Model.steps
    (Array.length built.Protemp.Model.problem.Convex.Barrier.constraints)
    dt;
  claim "single design point solves in < 2 minutes (paper: < 2 min with CVX)"
    (dt < 120.0 && outcome <> Protemp.Model.Infeasible);
  let _ = Lazy.force table in
  Printf.printf "  full Phase-1 sweep (%d x %d grid): %.1f s\n"
    (Array.length table_tstarts)
    (Array.length table_ftargets)
    !table_build_seconds;
  let audit =
    Protemp.Guarantee.audit_table ~machine ~spec (Lazy.force table)
  in
  Printf.printf
    "  table audit: %d feasible cells re-simulated, tightest margin %.4f C\n"
    audit.Protemp.Guarantee.cells_checked
    audit.Protemp.Guarantee.worst_margin;
  claim "every table entry honours tmax for its whole window"
    (audit.Protemp.Guarantee.worst_margin >= -1e-9)

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md Sec. 7). *)

let abl_euler_vs_expm () =
  section "Ablation — explicit Euler (paper's Eq. 1) vs exact expm transient";
  let model = Thermal.Niagara.model () in
  let fp = Thermal.Niagara.floorplan () in
  let p =
    Thermal.Niagara.power_vector fp
      ~core_power:(Vec.create 8 Thermal.Niagara.core_pmax)
  in
  let t0 = Vec.create (Thermal.Floorplan.size fp) 27.0 in
  let exact =
    let prop = Thermal.Transient.exact_propagator model ~dt:0.1 in
    Thermal.Transient.exact_step prop t0 p
  in
  Printf.printf "  %10s %14s\n" "dt (ms)" "max |err| (C)";
  List.iter
    (fun dt ->
      let d = Thermal.Rc_model.discretize model ~dt in
      let steps = int_of_float (Float.round (0.1 /. dt)) in
      let traj = Thermal.Transient.simulate_const d ~t0 ~steps p in
      let final = Mat.row traj.Thermal.Transient.temperatures steps in
      Printf.printf "  %10.1f %14.4f\n" (dt *. 1e3)
        (Vec.norm_inf (Vec.sub final exact)))
    [ 0.4e-3; 2e-3; 10e-3 ];
  Printf.printf
    "  (paper's 0.4 ms step is ~exact; the monotone limit here is %.1f ms)\n%!"
    (Thermal.Rc_model.max_monotone_dt model *. 1e3)

let abl_stride () =
  section "Ablation — thermal-constraint stride vs solve cost and margin";
  Printf.printf "  %8s %12s %10s %14s\n" "stride" "constraints" "time (s)"
    "window margin";
  (* A point near the feasibility frontier, where the thermal rows
     bind and the stride actually matters. *)
  List.iter
    (fun stride ->
      let s = { Protemp.Spec.default with Protemp.Spec.constraint_stride = stride } in
      let t0 = Unix.gettimeofday () in
      let built =
        Protemp.Model.build ~machine ~spec:s ~tstart:85.0 ~ftarget:8.68e8
      in
      match Protemp.Model.solve built with
      | Protemp.Model.Feasible sol ->
          let dt = Unix.gettimeofday () -. t0 in
          let peak =
            Protemp.Guarantee.window_peak ~machine ~dfs_period:0.1 ~tstart:85.0
              ~frequencies:sol.Protemp.Model.frequencies
          in
          Printf.printf "  %8d %12d %10.2f %14.4f\n" stride
            (Array.length built.Protemp.Model.problem.Convex.Barrier.constraints)
            dt (100.0 -. peak)
      | Protemp.Model.Infeasible -> Printf.printf "  %8d infeasible\n" stride)
    [ 1; 2; 5; 20 ];
  Printf.printf
    "  (larger strides are cheaper and keep a positive margin here — the\n\
    \   monotone heating within a window peaks at the always-constrained\n\
    \   final step — but the margins thin as the cap is checked less often)\n%!"

let abl_table_resolution () =
  section "Ablation — table grid resolution vs run-time conservatism";
  let coarse =
    Protemp.Offline.sweep ~machine ~spec ~tstarts:[| 55.0; 100.0 |]
      ~ftargets:[| 3e8; 7e8 |] ()
  in
  let run name t =
    let r = run_sim (Protemp.Controller.create ~table:t) trace_mix in
    Printf.printf
      "  %-18s mean wait %8.1f ms, avg power %6.2f W, violations %d, peak \
       %.1f C\n"
      name
      (Sim.Stats.mean_waiting r.Sim.Engine.stats *. 1e3)
      (Sim.Stats.average_power r.Sim.Engine.stats)
      (Sim.Stats.violation_steps r.Sim.Engine.stats)
      (Sim.Stats.peak_temperature r.Sim.Engine.stats)
  in
  run "coarse (2x2)" coarse;
  run
    (Printf.sprintf "fine (%dx%d)" (Array.length table_tstarts)
       (Array.length table_ftargets))
    (Lazy.force table);
  Printf.printf
    "  (both keep the guarantee; the coarse grid rounds demand up to its\n\
    \   sparse columns, wasting power — exactly what the finer Phase-1 grid\n\
    \   buys back)\n%!"

let abl_discrete_ladder () =
  section "Ablation — continuous vs discrete DVFS operating points";
  let t = Lazy.force table in
  let run name tbl =
    let r = run_sim (Protemp.Controller.create ~table:tbl) trace_mix in
    let s = r.Sim.Engine.stats in
    Printf.printf
      "  %-24s wait %8.1f ms, avg power %6.2f W, violations %d\n%!" name
      (Sim.Stats.mean_waiting s *. 1e3)
      (Sim.Stats.average_power s)
      (Sim.Stats.violation_steps s)
  in
  run "continuous" t;
  List.iter
    (fun levels ->
      let ladder = Protemp.Ladder.uniform ~fmax ~levels in
      run
        (Printf.sprintf "%d-level ladder (%.0f MHz)" levels
           (fmax /. float_of_int levels /. 1e6))
        (Protemp.Ladder.quantize_table ladder t))
    [ 20; 10; 5 ];
  Printf.printf
    "  (rounding cells down onto the ladder keeps the guarantee; the\n\
    \   Phase-2 feedback partly compensates the lost throughput by\n\
    \   selecting higher columns, at some power cost)\n%!"

let abl_migration () =
  section "Ablation — task migration (stuck-core failure drill)";
  (* Organic Basic-DFS shutdowns last only 1-2 windows and coincide
     with full queues, so DFS-granularity migration almost never fires
     on the paper's workloads (an honest negative result).  The drill
     below shows the failure mode migration exists for: a core whose
     sensor reads stuck-hot is permanently denied a frequency; pinned
     tasks then strand on it. *)
  let stuck_core0 =
    {
      Sim.Policy.controller_name = "stuck-sensor-core0";
      decide =
        (fun obs ->
          Vec.init
            (Vec.dim obs.Sim.Policy.core_temperatures)
            (fun c ->
              if c = 0 then 0.0
              else Float.min fmax obs.Sim.Policy.required_frequency));
    }
  in
  let trace =
    Workload.Trace.generate ~seed:11L ~n_tasks:4000 Workload.Mix.web
  in
  let run name migration =
    let config =
      { Sim.Engine.default_config with Sim.Engine.migration;
        drain_limit = 5.0 }
    in
    let r = Sim.Engine.run ~config machine stuck_core0 Sim.Policy.first_idle trace in
    Printf.printf "  %-18s unfinished %4d, wait %8.1f ms, migrations %d\n%!"
      name r.Sim.Engine.unfinished
      (Sim.Stats.mean_waiting r.Sim.Engine.stats *. 1e3)
      r.Sim.Engine.migrations;
    r
  in
  let r_off = run "pinned tasks" false in
  let r_on = run "with migration" true in
  claim "migration rescues tasks stranded on a dead core"
    (r_on.Sim.Engine.unfinished = 0 && r_off.Sim.Engine.unfinished > 0)

let abl_sparse_scaling () =
  section "Ablation — dense LU vs sparse CG on fine-grained meshes";
  Printf.printf "  %8s %12s %12s %8s\n" "mesh" "dense (ms)" "cg (ms)" "iters";
  List.iter
    (fun n ->
      let fp =
        Thermal.Floorplan.grid ~rows:n ~cols:n ~cell_width:0.5e-3
          ~cell_height:0.5e-3 ()
      in
      let m = Thermal.Rc_model.build fp in
      (* A hotspot pattern: uniform power would have a constant
         solution that CG finds in one step. *)
      let p =
        Vec.init (n * n) (fun i ->
            if i = (n * n / 2) + (n / 2) then 2.0 else 0.02)
      in
      let t0 = Unix.gettimeofday () in
      let dense = Thermal.Rc_model.steady_state m p in
      let t_dense = Unix.gettimeofday () -. t0 in
      let t0 = Unix.gettimeofday () in
      let sparse, iters = Thermal.Rc_model.steady_state_cg m p in
      let t_cg = Unix.gettimeofday () -. t0 in
      let agree = Vec.dist2 dense sparse < 1e-4 *. Vec.norm2 dense in
      Printf.printf "  %4dx%-4d %12.2f %12.2f %8d%s\n" n n (t_dense *. 1e3)
        (t_cg *. 1e3) iters
        (if agree then "" else "  (MISMATCH)"))
    [ 8; 16; 24; 32 ];
  Printf.printf "%!"

let abl_online_vs_table () =
  section "Ablation — table-driven Pro-Temp vs online (MPC) re-solving";
  let trace =
    Workload.Trace.generate ~seed:4040L ~n_tasks:3000
      Workload.Mix.compute_intensive
  in
  let online_spec = { spec with Protemp.Spec.constraint_stride = 8 } in
  let online_t = Protemp.Online.create ~machine ~spec:online_spec () in
  let online = Protemp.Online.controller online_t in
  let report name r =
    let s = r.Sim.Engine.stats in
    Printf.printf
      "  %-22s wait %8.1f ms, avg power %6.2f W, violations %d, host %.1f s\n%!"
      name
      (Sim.Stats.mean_waiting s *. 1e3)
      (Sim.Stats.average_power s)
      (Sim.Stats.violation_steps s)
      r.Sim.Engine.wall_clock
  in
  let r_table = run_sim (pro_temp ()) trace in
  let r_online = run_sim online trace in
  report "table (Fig. 4 lookup)" r_table;
  report "online re-solve" r_online;
  Printf.printf "  online controller solved %d instances\n"
    (Protemp.Online.solves online_t);
  claim "both variants keep the guarantee"
    (Sim.Stats.violation_steps r_table.Sim.Engine.stats = 0
    && Sim.Stats.violation_steps r_online.Sim.Engine.stats = 0);
  claim
    "online removes the table's conservatism (no worse waiting, at orders \
     of magnitude more compute)"
    (Sim.Stats.mean_waiting r_online.Sim.Engine.stats
    <= Sim.Stats.mean_waiting r_table.Sim.Engine.stats *. 1.02)

let abl_barrier_mu () =
  section "Ablation — barrier growth factor mu on a frontier solve";
  (* The paper's full-resolution uniform-frequency formulation, the
     case where long-step schedules visibly stall. *)
  let built =
    Protemp.Model.build_frontier ~machine
      ~spec:
        { Protemp.Spec.default with Protemp.Spec.variant = Protemp.Spec.Uniform }
      ~tstart:57.0
  in
  Printf.printf "  %6s %14s %10s %10s\n" "mu" "frontier (MHz)" "newton" "time (s)";
  List.iter
    (fun mu ->
      let options = { Convex.Barrier.default_options with Convex.Barrier.mu } in
      let t0 = Unix.gettimeofday () in
      match Protemp.Model.solve_frontier ~options built with
      | Protemp.Model.Feasible s ->
          Printf.printf "  %6.1f %14.0f %10d %10.2f\n" mu
            (Vec.mean s.Protemp.Model.frequencies /. 1e6)
            s.Protemp.Model.raw.Convex.Solve.newton_iterations
            (Unix.gettimeofday () -. t0)
      | Protemp.Model.Infeasible -> Printf.printf "  %6.1f infeasible?\n" mu)
    [ 2.0; 5.0; 20.0 ];
  Printf.printf
    "  (large steps stall on the thousands of near-parallel thermal rows;\n\
    \   mu = 2 is the library default for this reason)\n%!"

(* ------------------------------------------------------------------ *)
(* Bechamel kernels: the computational core of each experiment. *)

let kernel_tests () =
  let open Bechamel in
  let small_trace =
    Workload.Trace.generate ~seed:7L ~n_tasks:1000 Workload.Mix.web
  in
  let thermal = machine.Sim.Machine.thermal in
  let t_amb = Vec.create machine.Sim.Machine.n_nodes 27.0 in
  let full_power =
    Sim.Machine.power_vector machine
      ~frequencies:(Vec.create 8 fmax)
      ~busy:(Array.make 8 true)
  in
  let fast_spec = { spec with Protemp.Spec.constraint_stride = 8 } in
  let tbl = Lazy.force table in
  [
    Test.make ~name:"fig1/2: one DFS window of thermal stepping"
      (Staged.stage (fun () ->
           let t = ref t_amb in
           for _ = 1 to 250 do
             t := Thermal.Rc_model.step_temperature thermal !t full_power
           done;
           !t));
    Test.make ~name:"fig6/7: full-system simulation (1k tasks)"
      (Staged.stage (fun () ->
           run_sim (Protemp.Basic_dfs.create ~fmax ()) small_trace));
    Test.make ~name:"fig8/11: pro-temp controlled simulation (1k tasks)"
      (Staged.stage (fun () ->
           run_sim (Protemp.Controller.create ~table:tbl) small_trace));
    Test.make ~name:"fig9/10: frontier solve (uniform, stride 8)"
      (Staged.stage (fun () ->
           Protemp.Model.solve_frontier
             (Protemp.Model.build_frontier ~machine
                ~spec:
                  { fast_spec with Protemp.Spec.variant = Protemp.Spec.Uniform }
                ~tstart:57.0)));
    Test.make ~name:"s5.1: one Eq.3 solve (stride 8)"
      (Staged.stage (fun () ->
           Protemp.Model.solve
             (Protemp.Model.build ~machine ~spec:fast_spec ~tstart:55.0
                ~ftarget:6e8)));
    Test.make ~name:"phase2: table lookup"
      (Staged.stage (fun () ->
           Protemp.Table.lookup tbl ~temperature:83.0 ~required:6.3e8));
    Test.make ~name:"substrate: trace generation (10k tasks)"
      (Staged.stage (fun () ->
           Workload.Trace.generate ~seed:3L ~n_tasks:10_000
             Workload.Mix.paper_mix));
    Test.make ~name:"substrate: exact expm propagator build"
      (Staged.stage (fun () ->
           Thermal.Transient.exact_propagator (Thermal.Niagara.model ())
             ~dt:0.1));
  ]

let run_kernels () =
  section "Bechamel micro-benchmarks (per-experiment kernels)";
  let open Bechamel in
  let cfg =
    Benchmark.cfg ~limit:20 ~quota:(Time.second 1.5) ~stabilize:false
      ~kde:None ()
  in
  let grouped = Test.make_grouped ~name:"protemp" (kernel_tests ()) in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  List.iter
    (fun (name, v) ->
      match Analyze.OLS.estimates v with
      | Some (t :: _) -> Printf.printf "  %-55s %12.3f ms/run\n" name (t /. 1e6)
      | Some [] | None -> Printf.printf "  %-55s (no estimate)\n" name)
    (List.sort compare rows);
  Printf.printf "%!"

(* ------------------------------------------------------------------ *)

let () =
  Printf.printf "Pro-Temp experiment harness%s\n"
    (if fast then " (FAST mode)" else "");
  Format.printf "mix trace:     %a@."
    Workload.Trace.pp_statistics
    (Workload.Trace.statistics trace_mix ~n_cores:8);
  Format.printf "compute trace: %a@."
    Workload.Trace.pp_statistics
    (Workload.Trace.statistics trace_compute ~n_cores:8);
  s51 ();
  fig1 ();
  fig2 ();
  fig6 ();
  fig7 ();
  fig8 ();
  fig9 ();
  fig10 ();
  fig11 ();
  abl_euler_vs_expm ();
  abl_stride ();
  abl_table_resolution ();
  abl_discrete_ladder ();
  abl_migration ();
  abl_sparse_scaling ();
  abl_online_vs_table ();
  abl_barrier_mu ();
  run_kernels ();
  Printf.printf "\nDone.\n"
