(* Offline-sweep benchmark: times the Phase-1 table build across
   solvers (primal-dual conic vs the reference log-barrier), domain
   counts and warm-start modes, verifies the tables agree, and emits
   BENCH_sweep.json (cells/sec, solver work counters, single-solve
   latency) so the perf trajectory can be tracked across PRs.

   Gates (full mode): the conic and barrier tables must agree to
   1e-6 fmax on the whole grid, the conic warm/cold time ratio must
   stay under 0.8, and one cold conic solve must either come in under
   4 ms or beat the same-machine barrier by 10x.  In FAST mode (tiny
   grid, wired into `dune runtest` as a smoke test) only the
   correctness gates run — timing on a seconds-long grid is noise.

   Run with:  dune exec bench/sweep_bench.exe            (full grid)
              PROTEMP_BENCH_FAST=1 dune exec bench/sweep_bench.exe *)

let fast = Sys.getenv_opt "PROTEMP_BENCH_FAST" <> None

let machine = Sim.Machine.niagara ()

let spec =
  {
    Protemp.Spec.default with
    Protemp.Spec.constraint_stride = (if fast then 4 else 2);
  }

let tstarts =
  if fast then [| 27.0; 85.0 |]
  else [| 27.0; 40.0; 55.0; 70.0; 85.0; 100.0 |]

let ftargets =
  if fast then [| 2e8; 5e8; 8e8 |]
  else Array.init 10 (fun i -> float_of_int (i + 1) *. 1e8)

let cells = Array.length tstarts * Array.length ftargets

let solver_name = function `Conic -> "conic" | `Barrier -> "barrier"

type run = {
  solver : [ `Conic | `Barrier ];
  domains : int;
  warm_starts : bool;
  seconds : float;
  table : Protemp.Table.t;
  stats : Protemp.Offline.sweep_stats;
}

let time_sweep ~solver ~domains ~warm_starts =
  let t0 = Unix.gettimeofday () in
  let table, stats =
    Protemp.Offline.sweep_with_stats ~machine ~spec ~solver ~domains
      ~warm_starts ~tstarts ~ftargets ()
  in
  let seconds = Unix.gettimeofday () -. t0 in
  let work =
    match solver with
    | `Conic -> stats.Protemp.Offline.conic.Convex.Conic.iterations
    | `Barrier -> stats.Protemp.Offline.barrier.Convex.Barrier.newton_iterations
  in
  Printf.printf
    "  solver=%-7s domains=%d warm_starts=%-5b: %7.2f s  (%.2f cells/s, %d \
     iters)\n\
     %!"
    (solver_name solver) domains warm_starts seconds
    (float_of_int cells /. seconds)
    work;
  { solver; domains; warm_starts; seconds; table; stats }

(* Tolerances are in Hz.  Same-configuration runs must agree
   essentially bit-for-bit (1e-9 on every core).  Across solvers the
   comparison is two-level: the {e optimum} — the mean frequency,
   pinned by the binding throughput floor and the strictly convex
   power objective — must agree to [mean_tol] (1e-6 fmax), while the
   {e per-core split} sits in a nearly-flat valley (cores couple only
   through the shared floor and thermal rows), where two independent
   algorithms land within [core_tol] (1e-4 fmax) of each other.  The
   table consumer depends on the former: the guarantee audits re-check
   every stored vector against the thermal envelope directly. *)
let tables_equal ?(mean_tol = 1e-9) ?(core_tol = 1e-9) a b =
  let ta = Protemp.Table.tstarts a and fa = Protemp.Table.ftargets a in
  Array.for_all
    (fun i ->
      Array.for_all
        (fun j ->
          match (Protemp.Table.cell a i j, Protemp.Table.cell b i j) with
          | Protemp.Table.Infeasible, Protemp.Table.Infeasible -> true
          | Protemp.Table.Frequencies x, Protemp.Table.Frequencies y ->
              abs_float (Linalg.Vec.mean x -. Linalg.Vec.mean y) <= mean_tol
              && Linalg.Vec.approx_equal ~tol:core_tol x y
          | Protemp.Table.Infeasible, Protemp.Table.Frequencies _
          | Protemp.Table.Frequencies _, Protemp.Table.Infeasible -> false)
        (Array.init (Array.length fa) Fun.id))
    (Array.init (Array.length ta) Fun.id)

(* Latency of one cold solve of a representative interior cell
   (model construction excluded), best of [reps]. *)
let single_solve_seconds ~solver =
  let built =
    Protemp.Model.build ~machine ~spec ~tstart:70.0 ~ftarget:5e8
  in
  (* Force the shared lazies (conic packing / Jacobian compilation)
     outside the timed region, like a sweep row does. *)
  (match Protemp.Model.solve ~solver built with
  | Protemp.Model.Feasible _ -> ()
  | Protemp.Model.Infeasible -> failwith "single-solve cell infeasible");
  let reps = 3 in
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    (match Protemp.Model.solve ~solver built with
    | Protemp.Model.Feasible _ -> ()
    | Protemp.Model.Infeasible -> failwith "single-solve cell infeasible");
    best := Float.min !best (Unix.gettimeofday () -. t0)
  done;
  !best

(* The README quickstart cell, solved both ways: the cheap end-to-end
   agreement check that runs even in FAST mode. *)
let quickstart_agreement () =
  let built = Protemp.Model.build ~machine ~spec ~tstart:85.0 ~ftarget:600e6 in
  match
    (Protemp.Model.solve ~solver:`Conic built,
     Protemp.Model.solve ~solver:`Barrier built)
  with
  | Protemp.Model.Feasible c, Protemp.Model.Feasible b ->
      let dmean =
        abs_float
          (Linalg.Vec.mean c.Protemp.Model.frequencies
          -. Linalg.Vec.mean b.Protemp.Model.frequencies)
      and dcore =
        Linalg.Vec.norm_inf
          (Linalg.Vec.sub c.Protemp.Model.frequencies
             b.Protemp.Model.frequencies)
      in
      Printf.printf
        "  quickstart cell (85C, 600 MHz): solvers within %.2e Hz on the mean, \
         %.2e Hz per core\n%!"
        dmean dcore;
      dmean <= 1e-6 *. machine.Sim.Machine.fmax
      && dcore <= 1e-4 *. machine.Sim.Machine.fmax
  | _ -> false

let json_of_stats (s : Protemp.Offline.sweep_stats) =
  let b = s.Protemp.Offline.barrier and c = s.Protemp.Offline.conic in
  Printf.sprintf
    "{\"solves\": %d, \"barrier\": {\"centering_steps\": %d, \
     \"newton_iterations\": %d, \"backtracks\": %d, \"factorizations\": %d, \
     \"jitter_retries\": %d}, \"conic\": {\"iterations\": %d, \
     \"predictor_steps\": %d, \"corrector_steps\": %d, \"factorizations\": \
     %d, \"jitter_retries\": %d, \"optimal\": %d, \"primal_infeasible\": %d, \
     \"dual_infeasible\": %d, \"unknown\": %d}}"
    s.Protemp.Offline.solves b.Convex.Barrier.centering_steps
    b.Convex.Barrier.newton_iterations b.Convex.Barrier.backtracks
    b.Convex.Barrier.factorizations b.Convex.Barrier.jitter_retries
    c.Convex.Conic.iterations c.Convex.Conic.predictor_steps
    c.Convex.Conic.corrector_steps c.Convex.Conic.factorizations
    c.Convex.Conic.jitter_retries c.Convex.Conic.optimal
    c.Convex.Conic.primal_infeasible c.Convex.Conic.dual_infeasible
    c.Convex.Conic.unknown

let () =
  let hw = Parallel.Pool.default_domains () in
  Printf.printf
    "Offline sweep benchmark%s: %dx%d grid (stride %d), %d domain(s) available\n\
     %!"
    (if fast then " (FAST mode)" else "")
    (Array.length tstarts) (Array.length ftargets)
    spec.Protemp.Spec.constraint_stride hw;
  (* Barrier cold first (the pre-conic behaviour and the agreement
     reference), then conic cold, conic warm (the default
     configuration) at 1 domain and at the hardware count; in FAST
     mode also an oversubscribed 4-domain run so the parallel path is
     exercised even on small machines. *)
  let domain_counts =
    List.sort_uniq compare ([ 1; hw ] @ if fast then [ 4 ] else [])
  in
  let barrier_cold =
    time_sweep ~solver:`Barrier ~domains:1 ~warm_starts:false
  in
  let conic_cold = time_sweep ~solver:`Conic ~domains:1 ~warm_starts:false in
  let runs =
    barrier_cold :: conic_cold
    :: List.map
         (fun domains -> time_sweep ~solver:`Conic ~domains ~warm_starts:true)
         domain_counts
  in
  let warm_tables =
    List.filter_map
      (fun r -> if r.warm_starts then Some r.table else None)
      runs
  in
  let identical =
    match warm_tables with
    | [] -> true
    | first :: rest -> List.for_all (tables_equal first) rest
  in
  let fmax = machine.Sim.Machine.fmax in
  let solvers_agree =
    tables_equal ~mean_tol:(1e-6 *. fmax) ~core_tol:(1e-4 *. fmax)
      barrier_cold.table conic_cold.table
  in
  let conic_speedup = barrier_cold.seconds /. conic_cold.seconds in
  Printf.printf "  conic speedup vs barrier (cold, 1 domain): %.2fx\n%!"
    conic_speedup;
  let single_barrier = single_solve_seconds ~solver:`Barrier in
  let single_conic = single_solve_seconds ~solver:`Conic in
  let single_speedup = single_barrier /. single_conic in
  Printf.printf
    "  single solve: barrier %.1f ms, conic %.1f ms (%.2fx)\n%!"
    (single_barrier *. 1e3) (single_conic *. 1e3) single_speedup;
  let quickstart_ok = quickstart_agreement () in
  let sequential_warm =
    List.find (fun r -> r.warm_starts && r.domains = 1) runs
  in
  (* Warm starts are on by default in [Offline.sweep]: the conic
     solver restarts the homogeneous embedding from the neighbouring
     column's optimum at a reduced initial mu.  The gated ratio is
     solver work (factorizations — one per iteration, so the metric
     is exact and machine-independent), because the wall-clock ratio
     on a sub-second grid moves +-10% with scheduler noise and a CI
     gate on it would flap; the seconds ratio is still reported for
     the audit trail. *)
  let warm_fact =
    sequential_warm.stats.Protemp.Offline.conic.Convex.Conic.factorizations
  in
  let cold_fact =
    conic_cold.stats.Protemp.Offline.conic.Convex.Conic.factorizations
  in
  let warm_vs_cold = float_of_int warm_fact /. float_of_int cold_fact in
  let warm_vs_cold_seconds =
    sequential_warm.seconds /. conic_cold.seconds
  in
  Printf.printf
    "  warm vs cold (conic, 1 domain): work ratio %.3f (%d vs %d \
     factorizations), time ratio %.2f — warm starts on by default\n\
     %!"
    warm_vs_cold warm_fact cold_fact warm_vs_cold_seconds;
  (* ---------------------------------------------------------------- *)
  (* The dense-table pipeline (DESIGN.md section 6h): memoized fill
     with neighbour warm starts and frontier pruning, export to the
     mmap-able serving format, and the two serving paths (raw
     lookup_into vs certified interpolation).  Full mode runs the
     production-scale 100x100 grid; FAST mode shrinks to 3x5 but walks
     the same pipeline end to end. *)
  let dense_spec =
    { Protemp.Spec.default with Protemp.Spec.constraint_stride = 4 }
  in
  let dense_tstarts =
    if fast then [| 40.0; 60.0; 80.0 |]
    else Array.init 100 (fun i -> 27.0 +. (73.0 *. float_of_int i /. 99.0))
  in
  let dense_ftargets =
    if fast then Array.init 5 (fun j -> 2e8 +. (1e8 *. float_of_int j))
    else Array.init 100 (fun j -> 1e8 +. (9e8 *. float_of_int j /. 99.0))
  in
  let dense_rows = Array.length dense_tstarts in
  let dense_cols = Array.length dense_ftargets in
  let dense_cells = dense_rows * dense_cols in
  Printf.printf "Dense pipeline: %dx%d grid (%d cells, stride %d)\n%!"
    dense_rows dense_cols dense_cells dense_spec.Protemp.Spec.constraint_stride;
  let dense =
    Protemp.Dense_table.create ~machine ~spec:dense_spec
      ~tstarts:dense_tstarts ~ftargets:dense_ftargets ()
  in
  let t0 = Unix.gettimeofday () in
  let fstats = Protemp.Dense_table.fill ~domains:hw dense in
  let fill_seconds = Unix.gettimeofday () -. t0 in
  let dense_cells_per_sec = float_of_int dense_cells /. fill_seconds in
  let warm_hit_rate =
    float_of_int fstats.Protemp.Dense_table.warm_hits
    /. float_of_int (max 1 fstats.Protemp.Dense_table.solves)
  in
  let pruned_fraction =
    float_of_int fstats.Protemp.Dense_table.pruned /. float_of_int dense_cells
  in
  Printf.printf
    "  fill: %7.2f s (%.1f cells/s), %d solves, warm hit rate %.3f, %d \
     pruned (%.1f%%), %d feasible\n\
     %!"
    fill_seconds dense_cells_per_sec fstats.Protemp.Dense_table.solves
    warm_hit_rate fstats.Protemp.Dense_table.pruned
    (100.0 *. pruned_fraction)
    fstats.Protemp.Dense_table.feasible;
  let dense_table = Protemp.Dense_table.to_table dense in
  (* A second fresh fill at a different domain count must reproduce
     the grid bit for bit (CSV is %.17g, i.e. exact). *)
  let invariance_domains = if hw = 2 then 4 else 2 in
  let dense_identical =
    let d2 =
      Protemp.Dense_table.create ~machine ~spec:dense_spec
        ~tstarts:dense_tstarts ~ftargets:dense_ftargets ()
    in
    ignore (Protemp.Dense_table.fill ~domains:invariance_domains d2);
    Protemp.Table.to_csv dense_table
    = Protemp.Table.to_csv (Protemp.Dense_table.to_table d2)
  in
  Printf.printf "  fill identical at %d vs %d domains: %b\n%!" hw
    invariance_domains dense_identical;
  let store_path = Filename.temp_file "protemp_dense" ".ptbl" in
  let t0 = Unix.gettimeofday () in
  (* v2 images record the ceilings the cells were certified against. *)
  Protemp.Table_store.write ~core_fmax:machine.Sim.Machine.core_fmax
    dense_table store_path;
  let store_write_seconds = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let store = Protemp.Table_store.open_file store_path in
  let store_open_seconds = Unix.gettimeofday () -. t0 in
  let store_bytes = (Unix.stat store_path).Unix.st_size in
  Printf.printf
    "  store: %d bytes, write %.2f ms, mmap open %.3f ms\n%!" store_bytes
    (store_write_seconds *. 1e3)
    (store_open_seconds *. 1e3);
  (* Deterministic pseudo-random query stream over (and slightly past)
     the grid envelope, shared by both serving paths. *)
  let queries =
    let state = ref 123456789 in
    let next () =
      state := ((1103515245 * !state) + 12345) land 0x3FFFFFFF;
      float_of_int !state /. float_of_int 0x40000000
    in
    let tmin = dense_tstarts.(0) and tmax = dense_tstarts.(dense_rows - 1) in
    let fmin = dense_ftargets.(0) and fmax' = dense_ftargets.(dense_cols - 1) in
    Array.init 4096 (fun _ ->
        ( tmin -. 5.0 +. (next () *. (tmax -. tmin +. 10.0)),
          fmin +. (next () *. ((fmax' -. fmin) *. 1.05)) ))
  in
  let lookup_buf = Linalg.Vec.zeros (Protemp.Table_store.n_cores store) in
  let n_store_lookups = if fast then 20_000 else 2_000_000 in
  let t0 = Unix.gettimeofday () in
  for k = 0 to n_store_lookups - 1 do
    let temperature, required = queries.(k land 4095) in
    ignore
      (Protemp.Table_store.lookup_into store ~temperature ~required
         ~into:lookup_buf)
  done;
  let store_lookups_per_sec =
    float_of_int n_store_lookups /. (Unix.gettimeofday () -. t0)
  in
  let n_interp = if fast then 200 else 2_000 in
  let interp_served = ref 0 in
  let t0 = Unix.gettimeofday () in
  for k = 0 to n_interp - 1 do
    let temperature, required = queries.(k land 4095) in
    match Protemp.Dense_table.lookup dense ~temperature ~required with
    | `Interpolated _ | `Clamped _ -> incr interp_served
    | `None -> ()
  done;
  let interp_lookups_per_sec =
    float_of_int n_interp /. (Unix.gettimeofday () -. t0)
  in
  Sys.remove store_path;
  Printf.printf
    "  serving: %.2e store lookups/s (mmap, alloc-free), %.1f certified \
     interpolated lookups/s (%d/%d served)\n\
     %!"
    store_lookups_per_sec interp_lookups_per_sec !interp_served n_interp;
  (* ---------------------------------------------------------------- *)
  (* Heterogeneous grid (the platform refactor, DESIGN.md 6i): the
     same Phase-1 sweep on the asymmetric big.LITTLE machine — per-core
     frequency bounds and power laws flow through Model and both
     solver backends.  Correctness gates (solver agreement, every
     stored frequency under its own core's ceiling) run in both modes;
     FAST shrinks the grid like everywhere else. *)
  let het_machine = Sim.Machine.biglittle () in
  let het_tstarts =
    if fast then [| 50.0; 80.0 |] else [| 27.0; 40.0; 55.0; 70.0; 85.0 |]
  in
  let het_ftargets =
    if fast then [| 1e8; 3e8 |]
    else Array.init 6 (fun i -> float_of_int (i + 1) *. 1e8)
  in
  let het_cells = Array.length het_tstarts * Array.length het_ftargets in
  Printf.printf "Heterogeneous grid (biglittle): %dx%d grid\n%!"
    (Array.length het_tstarts) (Array.length het_ftargets);
  let het_sweep solver =
    let t0 = Unix.gettimeofday () in
    let table =
      Protemp.Offline.sweep ~solver ~machine:het_machine ~spec ~domains:hw
        ~tstarts:het_tstarts ~ftargets:het_ftargets ()
    in
    let seconds = Unix.gettimeofday () -. t0 in
    Printf.printf "  solver=%-7s: %7.2f s (%.2f cells/s)\n%!"
      (solver_name solver) seconds
      (float_of_int het_cells /. seconds);
    (table, seconds)
  in
  let het_conic, het_conic_seconds = het_sweep `Conic in
  let het_barrier, het_barrier_seconds = het_sweep `Barrier in
  let het_fmax = het_machine.Sim.Machine.fmax in
  let het_agree =
    tables_equal ~mean_tol:(1e-6 *. het_fmax) ~core_tol:(1e-4 *. het_fmax)
      het_barrier het_conic
  in
  let het_caps_ok =
    let ok = ref true in
    let check table =
      Array.iteri
        (fun i _ ->
          Array.iteri
            (fun j _ ->
              match Protemp.Table.cell table i j with
              | Protemp.Table.Infeasible -> ()
              | Protemp.Table.Frequencies f ->
                  Array.iteri
                    (fun c hz ->
                      if hz > het_machine.Sim.Machine.core_fmax.(c) +. 1e-3
                      then ok := false)
                    f)
            (Protemp.Table.ftargets table))
        (Protemp.Table.tstarts table)
    in
    check het_conic;
    check het_barrier;
    !ok
  in
  let het_feasible =
    let n = ref 0 in
    Array.iteri
      (fun i _ ->
        Array.iteri
          (fun j _ ->
            match Protemp.Table.cell het_conic i j with
            | Protemp.Table.Frequencies _ -> incr n
            | Protemp.Table.Infeasible -> ())
          (Protemp.Table.ftargets het_conic))
      (Protemp.Table.tstarts het_conic);
    !n
  in
  Printf.printf
    "  solvers agree: %b, per-core caps respected: %b, %d/%d feasible\n%!"
    het_agree het_caps_ok het_feasible het_cells;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"grid\": {\"tstarts\": %d, \"ftargets\": %d, \"cells\": %d, \
        \"constraint_stride\": %d, \"fast\": %b},\n"
       (Array.length tstarts) (Array.length ftargets) cells
       spec.Protemp.Spec.constraint_stride fast);
  Buffer.add_string buf
    (Printf.sprintf "  \"available_domains\": %d,\n" hw);
  Buffer.add_string buf "  \"runs\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"solver\": \"%s\", \"domains\": %d, \"warm_starts\": %b, \
            \"seconds\": %.3f, \"cells_per_sec\": %.3f, \
            \"speedup_vs_sequential_warm\": %.3f, \"counters\": %s}%s\n"
           (solver_name r.solver) r.domains r.warm_starts r.seconds
           (float_of_int cells /. r.seconds)
           (sequential_warm.seconds /. r.seconds)
           (json_of_stats r.stats)
           (if i = List.length runs - 1 then "" else ",")))
    runs;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"single_solve\": {\"barrier_ms\": %.2f, \"conic_ms\": %.2f, \
        \"conic_speedup\": %.2f},\n"
       (single_barrier *. 1e3) (single_conic *. 1e3) single_speedup);
  Buffer.add_string buf
    (Printf.sprintf "  \"conic_speedup_vs_barrier\": %.3f,\n" conic_speedup);
  Buffer.add_string buf
    (Printf.sprintf "  \"solvers_agree_1e6\": %b,\n" solvers_agree);
  Buffer.add_string buf
    (Printf.sprintf "  \"quickstart_agree_1e6\": %b,\n" quickstart_ok);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"warm_vs_cold_factorizations\": %.3f, \"warm_vs_cold_seconds\": %.3f, \"warm_starts_default\": true,\n"
       warm_vs_cold warm_vs_cold_seconds);
  Buffer.add_string buf
    (Printf.sprintf "  \"identical_across_domains\": %b,\n" identical);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"dense\": {\"rows\": %d, \"cols\": %d, \"cells\": %d, \
        \"constraint_stride\": %d, \"fill_seconds\": %.3f, \
        \"cells_per_sec\": %.3f, \"solves\": %d, \"warm_hits\": %d, \
        \"warm_hit_rate\": %.3f, \"pruned\": %d, \"pruned_fraction\": %.3f, \
        \"feasible\": %d, \"identical_across_domains\": %b, \"store\": \
        {\"file_bytes\": %d, \"write_ms\": %.3f, \"mmap_open_ms\": %.3f, \
        \"lookups_per_sec\": %.0f}, \"interpolated_lookups_per_sec\": %.1f, \
        \"interpolated_served_fraction\": %.3f},\n"
       dense_rows dense_cols dense_cells
       dense_spec.Protemp.Spec.constraint_stride fill_seconds
       dense_cells_per_sec fstats.Protemp.Dense_table.solves
       fstats.Protemp.Dense_table.warm_hits warm_hit_rate
       fstats.Protemp.Dense_table.pruned pruned_fraction
       fstats.Protemp.Dense_table.feasible dense_identical store_bytes
       (store_write_seconds *. 1e3)
       (store_open_seconds *. 1e3)
       store_lookups_per_sec interp_lookups_per_sec
       (float_of_int !interp_served /. float_of_int n_interp));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"heterogeneous\": {\"platform\": \"biglittle\", \"rows\": %d, \
        \"cols\": %d, \"cells\": %d, \"conic_seconds\": %.3f, \
        \"barrier_seconds\": %.3f, \"solvers_agree_1e6\": %b, \
        \"per_core_caps_respected\": %b, \"feasible\": %d}\n"
       (Array.length het_tstarts) (Array.length het_ftargets) het_cells
       het_conic_seconds het_barrier_seconds het_agree het_caps_ok
       het_feasible);
  Buffer.add_string buf "}\n";
  let oc = open_out "BENCH_sweep.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote BENCH_sweep.json\n";
  if not identical then begin
    Printf.printf "FAIL: tables differ across domain counts\n";
    exit 1
  end;
  if not solvers_agree then begin
    Printf.printf "FAIL: conic and barrier tables disagree (>1e-6 fmax)\n";
    exit 1
  end;
  if not quickstart_ok then begin
    Printf.printf "FAIL: quickstart cell disagrees across solvers\n";
    exit 1
  end;
  if not dense_identical then begin
    Printf.printf "FAIL: dense fill differs across domain counts\n";
    exit 1
  end;
  if not het_agree then begin
    Printf.printf
      "FAIL: heterogeneous conic and barrier tables disagree (>1e-6 fmax)\n";
    exit 1
  end;
  if not het_caps_ok then begin
    Printf.printf
      "FAIL: heterogeneous table stores a frequency above its core's ceiling\n";
    exit 1
  end;
  if het_feasible = 0 then begin
    Printf.printf "FAIL: heterogeneous grid has no feasible cells\n";
    exit 1
  end;
  (* The neighbour-seeding design target: most solves of a dense fill
     must ride a warm start (only each row's leading feasible cell is
     cold).  Gated in both modes — the rate is a count ratio, immune
     to timing noise. *)
  if warm_hit_rate <= 0.5 then begin
    Printf.printf "FAIL: dense warm-start hit rate %.3f <= 0.5\n"
      warm_hit_rate;
    exit 1
  end;
  if not fast then begin
    if warm_vs_cold >= 0.8 then begin
      Printf.printf
        "FAIL: warm starts no longer a win (work ratio %.3f >= 0.8)\n"
        warm_vs_cold;
      exit 1
    end;
    if single_conic > 4e-3 && single_speedup < 10.0 then begin
      Printf.printf
        "FAIL: single conic solve %.1f ms (> 4 ms) and only %.1fx vs \
         barrier (< 10x)\n"
        (single_conic *. 1e3) single_speedup;
      exit 1
    end;
    if dense_cells_per_sec < 300.0 then begin
      Printf.printf "FAIL: dense fill %.1f cells/s < 300\n"
        dense_cells_per_sec;
      exit 1
    end
  end;
  Printf.printf
    "tables identical across domain counts and solvers agree: ok\n"
