(* Offline-sweep benchmark: times the Phase-1 table build across
   barrier backends, domain counts and warm-start modes, verifies the
   tables agree, and emits BENCH_sweep.json (cells/sec, solver work
   counters, single-solve latency) so the perf trajectory can be
   tracked across PRs.

   Run with:  dune exec bench/sweep_bench.exe            (full grid)
              PROTEMP_BENCH_FAST=1 dune exec bench/sweep_bench.exe
              (tiny grid, seconds — wired into `dune runtest` as a
              smoke test) *)

let fast = Sys.getenv_opt "PROTEMP_BENCH_FAST" <> None

let machine = Sim.Machine.niagara ()

let spec =
  {
    Protemp.Spec.default with
    Protemp.Spec.constraint_stride = (if fast then 4 else 2);
  }

let tstarts =
  if fast then [| 27.0; 85.0 |]
  else [| 27.0; 40.0; 55.0; 70.0; 85.0; 100.0 |]

let ftargets =
  if fast then [| 2e8; 5e8; 8e8 |]
  else Array.init 10 (fun i -> float_of_int (i + 1) *. 1e8)

let cells = Array.length tstarts * Array.length ftargets

let backend_name = function `Compiled -> "compiled" | `Reference -> "reference"

type run = {
  domains : int;
  warm_starts : bool;
  backend : Convex.Barrier.backend;
  seconds : float;
  table : Protemp.Table.t;
  stats : Protemp.Offline.sweep_stats;
}

let time_sweep ~domains ~warm_starts ~backend =
  let t0 = Unix.gettimeofday () in
  let table, stats =
    Protemp.Offline.sweep_with_stats ~machine ~spec ~backend ~domains
      ~warm_starts ~tstarts ~ftargets ()
  in
  let seconds = Unix.gettimeofday () -. t0 in
  Printf.printf
    "  backend=%-9s domains=%d warm_starts=%-5b: %7.2f s  (%.2f cells/s, %d \
     newton iters)\n\
     %!"
    (backend_name backend) domains warm_starts seconds
    (float_of_int cells /. seconds)
    stats.Protemp.Offline.newton_iterations;
  { domains; warm_starts; backend; seconds; table; stats }

(* [tol] is in Hz.  Same-backend runs must agree essentially
   bit-for-bit (1e-9); across backends the two oracles walk different
   floating-point paths to the same optimum, so agreement is required
   to 1e-6 of full scale (fmax) instead. *)
let tables_equal ?(tol = 1e-9) a b =
  let ta = Protemp.Table.tstarts a and fa = Protemp.Table.ftargets a in
  Array.for_all
    (fun i ->
      Array.for_all
        (fun j ->
          match (Protemp.Table.cell a i j, Protemp.Table.cell b i j) with
          | Protemp.Table.Infeasible, Protemp.Table.Infeasible -> true
          | Protemp.Table.Frequencies x, Protemp.Table.Frequencies y ->
              Linalg.Vec.approx_equal ~tol x y
          | Protemp.Table.Infeasible, Protemp.Table.Frequencies _
          | Protemp.Table.Frequencies _, Protemp.Table.Infeasible -> false)
        (Array.init (Array.length fa) Fun.id))
    (Array.init (Array.length ta) Fun.id)

(* Latency of one cold solve of a representative interior cell
   (model construction excluded), best of [reps]. *)
let single_solve_seconds ~backend =
  let built =
    Protemp.Model.build ~machine ~spec ~tstart:70.0 ~ftarget:5e8
  in
  let reps = 3 in
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    (match Protemp.Model.solve ~backend built with
    | Protemp.Model.Feasible _ -> ()
    | Protemp.Model.Infeasible -> failwith "single-solve cell infeasible");
    best := Float.min !best (Unix.gettimeofday () -. t0)
  done;
  !best

let json_of_stats (s : Protemp.Offline.sweep_stats) =
  Printf.sprintf
    "{\"solves\": %d, \"centering_steps\": %d, \"newton_iterations\": %d, \
     \"backtracks\": %d, \"factorizations\": %d}"
    s.Protemp.Offline.solves s.Protemp.Offline.centering_steps
    s.Protemp.Offline.newton_iterations s.Protemp.Offline.backtracks
    s.Protemp.Offline.factorizations

let () =
  let hw = Parallel.Pool.default_domains () in
  Printf.printf
    "Offline sweep benchmark%s: %dx%d grid (stride %d), %d domain(s) available\n\
     %!"
    (if fast then " (FAST mode)" else "")
    (Array.length tstarts) (Array.length ftargets)
    spec.Protemp.Spec.constraint_stride hw;
  (* Reference cold first (the pre-compiled-backend behaviour), then
     the compiled backend cold, warm-started at 1 domain and at the
     hardware count; in FAST mode also an oversubscribed 4-domain run
     so the parallel path is exercised even on small machines. *)
  let domain_counts =
    List.sort_uniq compare ([ 1; hw ] @ if fast then [ 4 ] else [])
  in
  let reference_cold =
    time_sweep ~domains:1 ~warm_starts:false ~backend:`Reference
  in
  let cold = time_sweep ~domains:1 ~warm_starts:false ~backend:`Compiled in
  let runs =
    reference_cold :: cold
    :: List.map
         (fun domains ->
           time_sweep ~domains ~warm_starts:true ~backend:`Compiled)
         domain_counts
  in
  let warm_tables =
    List.filter_map
      (fun r -> if r.warm_starts then Some r.table else None)
      runs
  in
  let identical =
    match warm_tables with
    | [] -> true
    | first :: rest -> List.for_all (tables_equal first) rest
  in
  let cross_backend_tol = 1e-6 *. machine.Sim.Machine.fmax in
  let backends_agree =
    tables_equal ~tol:cross_backend_tol reference_cold.table cold.table
  in
  let compiled_speedup = reference_cold.seconds /. cold.seconds in
  Printf.printf "  compiled speedup vs reference (cold, 1 domain): %.2fx\n%!"
    compiled_speedup;
  let single_ref = single_solve_seconds ~backend:`Reference in
  let single_comp = single_solve_seconds ~backend:`Compiled in
  Printf.printf
    "  single solve: reference %.1f ms, compiled %.1f ms (%.2fx)\n%!"
    (single_ref *. 1e3) (single_comp *. 1e3)
    (single_ref /. single_comp);
  let sequential_warm =
    List.find (fun r -> r.warm_starts && r.domains = 1) runs
  in
  (* Warm starts are off by default in [Offline.sweep]: with the
     boundary-aware line search and blended frontier-climb seeding the
     warm path measures within noise of cold (the start hint already
     skips phase I on almost every cell) and does no fewer Newton
     iterations.  Report the ratio so the decision stays auditable. *)
  let warm_vs_cold = cold.seconds /. sequential_warm.seconds in
  Printf.printf
    "  warm vs cold (1 domain): %.2fx (warm %d iters, cold %d) — warm \
     starts stay off by default\n%!"
    warm_vs_cold
    sequential_warm.stats.Protemp.Offline.newton_iterations
    cold.stats.Protemp.Offline.newton_iterations;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"grid\": {\"tstarts\": %d, \"ftargets\": %d, \"cells\": %d, \
        \"constraint_stride\": %d, \"fast\": %b},\n"
       (Array.length tstarts) (Array.length ftargets) cells
       spec.Protemp.Spec.constraint_stride fast);
  Buffer.add_string buf
    (Printf.sprintf "  \"available_domains\": %d,\n" hw);
  Buffer.add_string buf "  \"runs\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"backend\": \"%s\", \"domains\": %d, \"warm_starts\": %b, \
            \"seconds\": %.3f, \"cells_per_sec\": %.3f, \
            \"speedup_vs_sequential_warm\": %.3f, \"counters\": %s}%s\n"
           (backend_name r.backend) r.domains r.warm_starts r.seconds
           (float_of_int cells /. r.seconds)
           (sequential_warm.seconds /. r.seconds)
           (json_of_stats r.stats)
           (if i = List.length runs - 1 then "" else ",")))
    runs;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"single_solve\": {\"reference_ms\": %.2f, \"compiled_ms\": %.2f},\n"
       (single_ref *. 1e3) (single_comp *. 1e3));
  Buffer.add_string buf
    (Printf.sprintf "  \"compiled_speedup_vs_reference\": %.3f,\n"
       compiled_speedup);
  Buffer.add_string buf
    (Printf.sprintf "  \"backends_agree_1e6\": %b,\n" backends_agree);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"warm_vs_cold_sequential\": %.3f, \"warm_starts_default\": false,\n"
       warm_vs_cold);
  Buffer.add_string buf
    (Printf.sprintf "  \"identical_across_domains\": %b\n" identical);
  Buffer.add_string buf "}\n";
  let oc = open_out "BENCH_sweep.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote BENCH_sweep.json\n";
  if not identical then begin
    Printf.printf "FAIL: tables differ across domain counts\n";
    exit 1
  end;
  if not backends_agree then begin
    Printf.printf "FAIL: compiled and reference tables disagree (>1e-6 fmax)\n";
    exit 1
  end;
  Printf.printf
    "tables identical across domain counts and backends agree: ok\n"
