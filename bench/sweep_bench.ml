(* Offline-sweep benchmark: times the Phase-1 table build across
   domain counts and warm-start modes, verifies the tables agree, and
   emits BENCH_sweep.json (cells/sec) so the perf trajectory can be
   tracked across PRs.

   Run with:  dune exec bench/sweep_bench.exe            (full grid)
              PROTEMP_BENCH_FAST=1 dune exec bench/sweep_bench.exe
              (tiny grid, seconds — wired into `dune runtest` as a
              smoke test) *)

let fast = Sys.getenv_opt "PROTEMP_BENCH_FAST" <> None

let machine = Sim.Machine.niagara ()

let spec =
  {
    Protemp.Spec.default with
    Protemp.Spec.constraint_stride = (if fast then 4 else 2);
  }

let tstarts =
  if fast then [| 27.0; 85.0 |]
  else [| 27.0; 40.0; 55.0; 70.0; 85.0; 100.0 |]

let ftargets =
  if fast then [| 2e8; 5e8; 8e8 |]
  else Array.init 10 (fun i -> float_of_int (i + 1) *. 1e8)

let cells = Array.length tstarts * Array.length ftargets

type run = {
  domains : int;
  warm_starts : bool;
  seconds : float;
  table : Protemp.Table.t;
}

let time_sweep ~domains ~warm_starts =
  let t0 = Unix.gettimeofday () in
  let table =
    Protemp.Offline.sweep ~machine ~spec ~domains ~warm_starts ~tstarts
      ~ftargets ()
  in
  let seconds = Unix.gettimeofday () -. t0 in
  Printf.printf "  domains=%d warm_starts=%b: %7.2f s  (%.2f cells/s)\n%!"
    domains warm_starts seconds
    (float_of_int cells /. seconds);
  { domains; warm_starts; seconds; table }

let tables_equal a b =
  let ta = Protemp.Table.tstarts a and fa = Protemp.Table.ftargets a in
  Array.for_all
    (fun i ->
      Array.for_all
        (fun j ->
          match (Protemp.Table.cell a i j, Protemp.Table.cell b i j) with
          | Protemp.Table.Infeasible, Protemp.Table.Infeasible -> true
          | Protemp.Table.Frequencies x, Protemp.Table.Frequencies y ->
              Linalg.Vec.approx_equal ~tol:1e-9 x y
          | Protemp.Table.Infeasible, Protemp.Table.Frequencies _
          | Protemp.Table.Frequencies _, Protemp.Table.Infeasible -> false)
        (Array.init (Array.length fa) Fun.id))
    (Array.init (Array.length ta) Fun.id)

let () =
  let hw = Parallel.Pool.default_domains () in
  Printf.printf "Offline sweep benchmark%s: %dx%d grid (stride %d), %d domain(s) available\n%!"
    (if fast then " (FAST mode)" else "")
    (Array.length tstarts) (Array.length ftargets)
    spec.Protemp.Spec.constraint_stride hw;
  (* Cold sequential first (the seed behaviour minus the shared row
     context), then warm-started at 1 and at the hardware count; in
     FAST mode also an oversubscribed 4-domain run so the parallel
     path is exercised even on small machines. *)
  let domain_counts =
    List.sort_uniq compare ([ 1; hw ] @ if fast then [ 4 ] else [])
  in
  let cold = time_sweep ~domains:1 ~warm_starts:false in
  let runs =
    cold
    :: List.map (fun domains -> time_sweep ~domains ~warm_starts:true)
         domain_counts
  in
  let warm_tables =
    List.filter_map
      (fun r -> if r.warm_starts then Some r.table else None)
      runs
  in
  let identical =
    match warm_tables with
    | [] -> true
    | first :: rest -> List.for_all (tables_equal first) rest
  in
  let sequential_warm =
    List.find (fun r -> r.warm_starts && r.domains = 1) runs
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"grid\": {\"tstarts\": %d, \"ftargets\": %d, \"cells\": %d, \
        \"constraint_stride\": %d, \"fast\": %b},\n"
       (Array.length tstarts) (Array.length ftargets) cells
       spec.Protemp.Spec.constraint_stride fast);
  Buffer.add_string buf
    (Printf.sprintf "  \"available_domains\": %d,\n" hw);
  Buffer.add_string buf "  \"runs\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"domains\": %d, \"warm_starts\": %b, \"seconds\": %.3f, \
            \"cells_per_sec\": %.3f, \"speedup_vs_sequential_warm\": %.3f}%s\n"
           r.domains r.warm_starts r.seconds
           (float_of_int cells /. r.seconds)
           (sequential_warm.seconds /. r.seconds)
           (if i = List.length runs - 1 then "" else ",")))
    runs;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"identical_across_domains\": %b\n" identical);
  Buffer.add_string buf "}\n";
  let oc = open_out "BENCH_sweep.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote BENCH_sweep.json\n";
  if not identical then begin
    Printf.printf "FAIL: tables differ across domain counts\n";
    exit 1
  end;
  Printf.printf "tables identical across domain counts: ok\n"
