(* Simulation-stack benchmark: times the allocation-free stepping core
   against the reference (pre-refactor) engine, measures per-step
   allocation and probe overhead, and scales a campaign across domain
   counts, emitting BENCH_sim.json so the perf trajectory can be
   tracked across PRs.

   Every timed pair is also a correctness check: the refactored engine
   must reproduce the reference Stats.t bit-for-bit, and the campaign
   must return identical cells at every domain count — any mismatch
   exits non-zero.

   Run with:  dune exec bench/sim_bench.exe              (full sizes)
              PROTEMP_BENCH_FAST=1 dune exec bench/sim_bench.exe
              (small sizes, seconds — wired into `dune runtest` as a
              smoke test) *)

let fast = Sys.getenv_opt "PROTEMP_BENCH_FAST" <> None
let machine = Sim.Machine.niagara ()
let fmax = machine.Sim.Machine.fmax
let controller () = Sim.Policy.fixed_frequency ~fmax fmax

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let failures = ref 0

let check what ok =
  if not ok then begin
    Printf.printf "  [FAIL] %s\n%!" what;
    incr failures
  end

(* ------------------------------------------------------------------ *)
(* Steady-state stepping floor: one long-running task keeps every
   cold edge (arrivals, dispatch, completions) out of the loop, so
   this measures the pure step path — the number the allocation-free
   refactor targets. *)

let steady_trace =
  let task =
    { Workload.Task.id = 0; arrival = 0.0; work = 1e6; benchmark = Web }
  in
  { Workload.Trace.tasks = [| task |]; mix_name = "steady"; horizon = 0.0 }

let steady_config =
  {
    Sim.Engine.default_config with
    Sim.Engine.drain_limit = (if fast then 8.0 else 40.0);
  }

let steady_pair () =
  let run_new () =
    Sim.Engine.run ~config:steady_config machine (controller ())
      Sim.Policy.first_idle steady_trace
  in
  let run_ref () =
    Sim.Engine.run_reference ~config:steady_config machine (controller ())
      Sim.Policy.first_idle steady_trace
  in
  ignore (run_new ());
  ignore (run_ref ());
  let reps = 3 in
  let best_new = ref infinity and best_ref = ref infinity in
  let steps = ref 0 in
  let stats_agree = ref true in
  for _ = 1 to reps do
    let tn, rn = time run_new in
    let tr, rr = time run_ref in
    best_new := Float.min !best_new tn;
    best_ref := Float.min !best_ref tr;
    steps := Sim.Stats.total_steps rn.Sim.Engine.stats;
    stats_agree :=
      !stats_agree
      && Sim.Stats.equal rn.Sim.Engine.stats rr.Sim.Engine.stats
  done;
  (!steps, !best_new, !best_ref, !stats_agree)

(* Per-step minor-heap allocation, measured differentially: two runs
   that differ only in length cancel out the fixed start-up cost.
   With [dfs_period] pushed past the horizon only the step-0 epoch
   fires, so [pure] isolates the step path (must be exactly 0); the
   default 100 ms period gives the amortized figure including the
   epoch-boundary observe/decide allocations (cold by design). *)
let allocation_per_step ~dfs_period =
  let config =
    { steady_config with Sim.Engine.dfs_period; drain_limit = 0.0 }
  in
  let run horizon =
    let trace = { steady_trace with Workload.Trace.horizon } in
    let r =
      Sim.Engine.run ~config machine (controller ()) Sim.Policy.first_idle
        trace
    in
    Sim.Stats.total_steps r.Sim.Engine.stats
  in
  ignore (run 1.0);
  let words_of horizon =
    let before = Gc.minor_words () in
    let steps = run horizon in
    (Gc.minor_words () -. before, steps)
  in
  let w1, s1 = words_of 1.0 in
  let w2, s2 = words_of 3.0 in
  (w2 -. w1) /. float_of_int (s2 - s1)

(* ------------------------------------------------------------------ *)
(* Trace-driven run: the paper's workload shape — arrivals, dispatch
   and epoch decisions mixed into the step stream. *)

let trace_tasks = if fast then 6000 else 60000

let trace_pair () =
  let trace =
    Workload.Trace.generate ~seed:42L ~n_tasks:trace_tasks Workload.Mix.web
  in
  let run_new () =
    Sim.Engine.run machine (controller ()) Sim.Policy.first_idle trace
  in
  let run_ref () =
    Sim.Engine.run_reference machine (controller ()) Sim.Policy.first_idle
      trace
  in
  ignore (run_new ());
  let tn, rn = time run_new in
  let tr, rr = time run_ref in
  ( Sim.Stats.total_steps rn.Sim.Engine.stats,
    tn,
    tr,
    Sim.Stats.equal rn.Sim.Engine.stats rr.Sim.Engine.stats )

(* Probe overhead: the steady run again, with the stats probe (a
   per-step callback) attached. *)
let probed_seconds () =
  let probe, _ =
    Sim.Probe.stats ~n_cores:machine.Sim.Machine.n_cores
      ~tmax:steady_config.Sim.Engine.tmax ()
  in
  let run () =
    Sim.Engine.run ~config:steady_config ~probes:[ probe ] machine
      (controller ()) Sim.Policy.first_idle steady_trace
  in
  ignore (run ());
  let best = ref infinity in
  for _ = 1 to 3 do
    let t, _ = time run in
    best := Float.min !best t
  done;
  !best

(* ------------------------------------------------------------------ *)
(* Campaign scaling across domain counts. *)

let campaign_spec =
  let n_tasks = if fast then 2000 else 20000 in
  {
    Sim.Campaign.controllers =
      [
        ("fmax", fun () -> Sim.Policy.fixed_frequency ~fmax fmax);
        ("no-tc", fun () -> Sim.Policy.workload_following ~fmax);
      ];
    assignments = [ Sim.Policy.first_idle; Sim.Policy.coolest_first ];
    scenarios =
      [
        Sim.Campaign.scenario ~seed:11L ~n_tasks ~name:"web" Workload.Mix.web;
        Sim.Campaign.scenario ~seed:12L ~n_tasks ~name:"mix"
          Workload.Mix.paper_mix;
      ];
    (* One faulty coordinate keeps the campaign's fault axis (and its
       cross-domain determinism) covered by the smoke run. *)
    faults =
      [
        ("none", []);
        ( "noise2+stale1",
          [
            Sim.Fault.sensor_noise ~seed:1807L ~magnitude:2.0 ();
            Sim.Fault.stale_observation ~epochs:1;
          ] );
      ];
    config = Sim.Engine.default_config;
  }

let campaign_at domains =
  let t, cells =
    time (fun () -> Sim.Campaign.run ~domains ~machine campaign_spec)
  in
  (t, cells)

(* ------------------------------------------------------------------ *)
(* Fault sweep: the guarantee as a function of observation staleness,
   with and without a guard band.  Tables come from the solver-free
   certified builder (window_peak per cell), so the sweep is cheap
   enough for the smoke run.  Staleness is the fault that actually
   breaks the unguarded table on this plant: during the warm-up ramp
   the controller acts on readings from N windows ago and keeps the
   ramp frequency while the cores are already at the frontier.
   Symmetric bounded noise, by contrast, is absorbed for free — the
   demand-limited equilibrium sits several degrees below the cap and
   the table's frequency response is flat there — so severity > 0
   points also compose 2 C of seeded sensor noise on top of the
   staleness to keep both fault classes in the run. *)

let guard_margin = 5.0
let severities = [| 0.0; 1.0; 2.0; 3.0 |]

let faults_of s =
  (* Bit-exact: 0.0 is the sentinel for "no fault injection". *)
  if Float.equal s 0.0 then []
  else
    [
      Sim.Fault.sensor_noise ~seed:1807L ~magnitude:2.0 ();
      Sim.Fault.stale_observation ~epochs:(int_of_float s);
    ]

let fault_sweep () =
  let spec = Protemp.Spec.default in
  let tstarts = Array.init 74 (fun i -> 27.0 +. float_of_int i) in
  let ftargets = Array.init 9 (fun i -> float_of_int (i + 1) *. 1e8) in
  let table margin =
    Protemp.Guarantee.uniform_table ~machine ~spec ~margin ~tstarts ~ftargets
      ()
  in
  let unguarded = table 0.0 and guarded = table guard_margin in
  let n_tasks = if fast then 2500 else 20000 in
  let trace =
    Workload.Trace.generate ~seed:7L ~n_tasks Workload.Mix.compute_intensive
  in
  let sweep tbl =
    Protemp.Guarantee.violations_under_faults ~machine
      ~controller:(fun () -> Protemp.Controller.create ~table:tbl)
      ~trace ~faults_of ~severities ()
  in
  let t, (unguarded_pts, guarded_pts) =
    time (fun () -> (sweep unguarded, sweep guarded))
  in
  (t, unguarded_pts, guarded_pts)

let cells_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun (x : Sim.Campaign.cell) (y : Sim.Campaign.cell) ->
         Sim.Stats.equal x.Sim.Campaign.result.Sim.Engine.stats
           y.Sim.Campaign.result.Sim.Engine.stats)
       a b

let () =
  let hw = Parallel.Pool.default_domains () in
  Printf.printf "Simulation benchmark%s (%d domain(s) available)\n%!"
    (if fast then " (FAST mode)" else "")
    hw;

  let steps, t_new, t_ref, steady_agree = steady_pair () in
  let steady_new = float_of_int steps /. t_new in
  let steady_ref = float_of_int steps /. t_ref in
  let steady_speedup = t_ref /. t_new in
  Printf.printf
    "  steady-state: %.2e steps/s (%.0f ns/step), reference %.2e — %.2fx\n%!"
    steady_new (1e9 /. steady_new) steady_ref steady_speedup;
  check "steady-state stats match reference bit-for-bit" steady_agree;
  check "steady-state speedup >= 3x" (steady_speedup >= 3.0);

  let alloc = allocation_per_step ~dfs_period:100.0 in
  let alloc_amortized =
    allocation_per_step ~dfs_period:steady_config.Sim.Engine.dfs_period
  in
  Printf.printf
    "  minor allocation: %.3f words/step (%.3f amortized with 100 ms epochs)\n\
     %!"
    alloc alloc_amortized;
  (* Bit-exact: the invariant is literally zero words allocated. *)
  check "zero allocation per steady-state step" (Float.equal alloc 0.0);

  let tsteps, tt_new, tt_ref, trace_agree = trace_pair () in
  let trace_new = float_of_int tsteps /. tt_new in
  let trace_speedup = tt_ref /. tt_new in
  Printf.printf
    "  %d-task web trace: %.2e steps/s, reference %.2e — %.2fx\n%!"
    trace_tasks trace_new
    (float_of_int tsteps /. tt_ref)
    trace_speedup;
  check "trace-driven stats match reference bit-for-bit" trace_agree;

  let t_probed = probed_seconds () in
  let probe_overhead = (t_probed -. t_new) /. t_new in
  Printf.printf "  stats-probe overhead on the steady run: %+.1f%%\n%!"
    (100.0 *. probe_overhead);

  (* Oversubscription note: with one hardware core, multi-domain runs
     measure scheduling overhead, not speedup; the scaling claim needs
     >= 4 real cores.  Results must be identical either way. *)
  let domain_counts = List.sort_uniq compare [ 1; hw; 4 ] in
  let campaign_runs =
    List.map
      (fun d ->
        let t, cells = campaign_at d in
        Printf.printf "  campaign: %d cells on %d domain(s) in %.2f s (%.2f \
                       cells/s)\n%!"
          (Array.length cells) d t
          (float_of_int (Array.length cells) /. t);
        (d, t, cells))
      domain_counts
  in
  (match campaign_runs with
  | (_, _, first) :: rest ->
      check "campaign cells identical across domain counts"
        (List.for_all (fun (_, _, c) -> cells_equal first c) rest)
  | [] -> ());

  let t_sweep, unguarded_pts, guarded_pts = fault_sweep () in
  Printf.printf
    "  fault sweep (%.1f s): staleness severity vs tmax violations \
     (guard band %.1f C)\n%!"
    t_sweep guard_margin;
  Array.iteri
    (fun i (u : Protemp.Guarantee.severity_point) ->
      let g = guarded_pts.(i) in
      Printf.printf
        "    stale %.0f: unguarded %6d violating steps (worst %+.3f C, wait \
         %.1f ms) | guarded %4d (wait %.1f ms)\n%!"
        u.Protemp.Guarantee.severity
        u.Protemp.Guarantee.thermal.Sim.Probe.violating_steps
        u.Protemp.Guarantee.thermal.Sim.Probe.worst_excess
        (u.Protemp.Guarantee.mean_waiting *. 1e3)
        g.Protemp.Guarantee.thermal.Sim.Probe.violating_steps
        (g.Protemp.Guarantee.mean_waiting *. 1e3))
    unguarded_pts;
  (* The golden guarantee gate: a clean (zero-fault) configuration
     must never report a tmax violation, guarded or not — if it does,
     the table builder or the controller regressed, and the bench
     exits non-zero. *)
  check "golden gate: zero-fault unguarded run has zero violations"
    (unguarded_pts.(0).Protemp.Guarantee.thermal.Sim.Probe.violating_steps = 0);
  check "golden gate: zero-fault guarded run has zero violations"
    (guarded_pts.(0).Protemp.Guarantee.thermal.Sim.Probe.violating_steps = 0);
  check "guard band absorbs every injected severity"
    (Array.for_all
       (fun (p : Protemp.Guarantee.severity_point) ->
         p.Protemp.Guarantee.thermal.Sim.Probe.violating_steps = 0)
       guarded_pts);
  check "unguarded table breaks under every nonzero severity"
    (Array.for_all
       (fun (p : Protemp.Guarantee.severity_point) ->
         (* Bit-exact: severity 0.0 is the "no violation" sentinel. *)
         Float.equal p.Protemp.Guarantee.severity 0.0
         || p.Protemp.Guarantee.thermal.Sim.Probe.violating_steps > 0)
       unguarded_pts);

  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"fast\": %b,\n  \"available_domains\": %d,\n" fast hw);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"steady_state\": {\"steps\": %d, \"steps_per_sec\": %.0f, \
        \"ns_per_step\": %.1f, \"reference_steps_per_sec\": %.0f, \
        \"speedup_vs_reference\": %.2f},\n"
       steps steady_new (1e9 /. steady_new) steady_ref steady_speedup);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"minor_words_per_step\": %.3f,\n  \
        \"minor_words_per_step_amortized\": %.3f,\n"
       alloc alloc_amortized);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"web_trace\": {\"tasks\": %d, \"steps\": %d, \"steps_per_sec\": \
        %.0f, \"speedup_vs_reference\": %.2f},\n"
       trace_tasks tsteps trace_new trace_speedup);
  Buffer.add_string buf
    (Printf.sprintf "  \"stats_probe_overhead\": %.4f,\n" probe_overhead);
  Buffer.add_string buf "  \"campaign\": [\n";
  List.iteri
    (fun i (d, t, cells) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"domains\": %d, \"cells\": %d, \"seconds\": %.3f, \
            \"cells_per_sec\": %.3f}%s\n"
           d (Array.length cells) t
           (float_of_int (Array.length cells) /. t)
           (if i = List.length campaign_runs - 1 then "" else ",")))
    campaign_runs;
  Buffer.add_string buf "  ],\n";
  let sweep_json (pts : Protemp.Guarantee.severity_point array) =
    String.concat ","
      (Array.to_list
         (Array.map
            (fun (p : Protemp.Guarantee.severity_point) ->
              Printf.sprintf
                "\n      {\"severity\": %.1f, \"violating_steps\": %d, \
                 \"audited_steps\": %d, \"worst_excess\": %.4f, \
                 \"unfinished\": %d, \"mean_waiting_ms\": %.3f}"
                p.Protemp.Guarantee.severity
                p.Protemp.Guarantee.thermal.Sim.Probe.violating_steps
                p.Protemp.Guarantee.thermal.Sim.Probe.audited_steps
                p.Protemp.Guarantee.thermal.Sim.Probe.worst_excess
                p.Protemp.Guarantee.unfinished
                (p.Protemp.Guarantee.mean_waiting *. 1e3))
            pts))
  in
  Buffer.add_string buf
    (Printf.sprintf
       "  \"fault_sweep\": {\n    \"guard_margin\": %.1f,\n    \"seconds\": \
        %.2f,\n    \"unguarded\": [%s],\n    \"guarded\": [%s]\n  },\n"
       guard_margin t_sweep (sweep_json unguarded_pts)
       (sweep_json guarded_pts));
  Buffer.add_string buf
    (Printf.sprintf "  \"checks_failed\": %d\n}\n" !failures);
  let oc = open_out "BENCH_sim.json" in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "written to BENCH_sim.json\n%!";
  if !failures > 0 then exit 1
