(* Tests for the domain worker pool and the parallel, warm-started
   offline sweep: pool semantics (ordering, reuse, exceptions), the
   domain-count invariance of the table, and the thermal guarantee on
   warm-started cells. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let machine = lazy (Sim.Machine.niagara ())

(* Solver-bound tests below use a coarse constraint stride; the
   guarantee audit re-checks every cell at full resolution. *)
let fast_spec = { Protemp.Spec.default with Protemp.Spec.constraint_stride = 8 }

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_map_order () =
  List.iter
    (fun domains ->
      let r = Parallel.Pool.map ~domains (fun i -> i * i) 64 in
      check_int "length" 64 (Array.length r);
      Array.iteri (fun i v -> check_int "slot" (i * i) v) r)
    [ 1; 2; 4; 8 ]

let test_pool_reuse_across_batches () =
  Parallel.Pool.with_pool ~domains:3 (fun pool ->
      check_int "size" 3 (Parallel.Pool.size pool);
      let a = Parallel.Pool.map_rows pool (fun i -> i + 1) 10 in
      let b = Parallel.Pool.map_rows pool (fun i -> i * 2) 5 in
      check_bool "first batch" true (a = Array.init 10 (fun i -> i + 1));
      check_bool "second batch" true (b = Array.init 5 (fun i -> i * 2)))

let test_pool_edge_sizes () =
  check_bool "empty" true (Parallel.Pool.map ~domains:4 (fun i -> i) 0 = [||]);
  check_bool "single" true (Parallel.Pool.map ~domains:4 (fun i -> i) 1 = [| 0 |]);
  (* Sizes below 1 clamp to a sequential pool. *)
  check_bool "clamped" true
    (Parallel.Pool.map ~domains:0 (fun i -> i) 3 = [| 0; 1; 2 |])

let test_pool_propagates_first_exception () =
  match
    Parallel.Pool.map ~domains:4
      (fun i -> if i = 2 || i = 5 then failwith (string_of_int i) else i)
      8
  with
  | _ -> Alcotest.fail "expected an exception"
  | exception Failure msg ->
      (* The batch drains fully, then the smallest failing index is
         re-raised. *)
      check_bool "first failure by index" true (msg = "2")

let test_pool_sequential_when_size_one () =
  (* A size-1 pool must run on the calling domain in index order. *)
  let trace = ref [] in
  let r =
    Parallel.Pool.map ~domains:1
      (fun i ->
        trace := i :: !trace;
        i)
    4
  in
  check_bool "results" true (r = [| 0; 1; 2; 3 |]);
  check_bool "in order on caller" true (!trace = [ 3; 2; 1; 0 ])

let test_parse_domains () =
  check_bool "plain" true (Parallel.Pool.parse_domains "4" = Some 4);
  check_bool "padded" true (Parallel.Pool.parse_domains " 8 " = Some 8);
  check_bool "zero" true (Parallel.Pool.parse_domains "0" = None);
  check_bool "negative" true (Parallel.Pool.parse_domains "-2" = None);
  check_bool "junk" true (Parallel.Pool.parse_domains "many" = None)

(* ------------------------------------------------------------------ *)
(* Parallel sweep *)

let tstarts = [| 40.0; 70.0; 100.0 |]
let ftargets = [| 3e8; 6e8; 9e8 |]

let sweep ?on_progress ~domains ~warm_starts () =
  Protemp.Offline.sweep ~machine:(Lazy.force machine) ~spec:fast_spec ~domains
    ~warm_starts ~tstarts ~ftargets ?on_progress ()

let tables_equal ?(tol = 1e-9) a b =
  let ta = Protemp.Table.tstarts a and fa = Protemp.Table.ftargets a in
  Protemp.Table.tstarts b = ta
  && Protemp.Table.ftargets b = fa
  && Array.for_all
       (fun i ->
         Array.for_all
           (fun j ->
             match (Protemp.Table.cell a i j, Protemp.Table.cell b i j) with
             | Protemp.Table.Infeasible, Protemp.Table.Infeasible -> true
             | Protemp.Table.Frequencies x, Protemp.Table.Frequencies y ->
                 Linalg.Vec.approx_equal ~tol x y
             | Protemp.Table.Infeasible, Protemp.Table.Frequencies _
             | Protemp.Table.Frequencies _, Protemp.Table.Infeasible -> false)
           (Array.init (Array.length fa) Fun.id))
       (Array.init (Array.length ta) Fun.id)

let parallel_table = lazy (sweep ~domains:4 ~warm_starts:true ())

let test_sweep_domain_count_invariant () =
  let seq = sweep ~domains:1 ~warm_starts:true () in
  check_bool "domains=4 equals domains=1" true
    (tables_equal seq (Lazy.force parallel_table))

let test_sweep_reports_every_cell () =
  let count = ref 0 in
  let m = Mutex.create () in
  let _ =
    sweep ~domains:4 ~warm_starts:true
      ~on_progress:(fun _ ->
        Mutex.lock m;
        incr count;
        Mutex.unlock m)
      ()
  in
  check_int "one progress report per cell"
    (Array.length tstarts * Array.length ftargets)
    !count

let test_sweep_warm_started_cells_keep_guarantee () =
  let audit =
    Protemp.Guarantee.audit_table ~machine:(Lazy.force machine) ~spec:fast_spec
      (Lazy.force parallel_table)
  in
  check_bool "cells checked" true (audit.Protemp.Guarantee.cells_checked > 0);
  check_bool
    (Printf.sprintf "margin %.4f >= 0" audit.Protemp.Guarantee.worst_margin)
    true
    (audit.Protemp.Guarantee.worst_margin >= -1e-9)

(* A direct warm-start exercise on a thermally tight row: solve a
   column, seed the next solve with its interior optimum, and check
   the warm-started solution still honours the cap and the floor. *)
let test_warm_start_direct () =
  let m = Lazy.force machine in
  let prepared = Protemp.Model.prepare ~machine:m ~spec:fast_spec ~tstart:85.0 in
  let first =
    Protemp.Model.solve (Protemp.Model.instantiate prepared ~ftarget:5e8)
  in
  match first with
  | Protemp.Model.Infeasible -> Alcotest.fail "cold cell expected feasible"
  | Protemp.Model.Feasible s -> (
      let warm = s.Protemp.Model.raw.Convex.Solve.x in
      let built = Protemp.Model.instantiate prepared ~ftarget:6e8 in
      match Protemp.Model.solve ~start:warm built with
      | Protemp.Model.Infeasible ->
          Alcotest.fail "warm-started cell expected feasible"
      | Protemp.Model.Feasible w ->
          let f = w.Protemp.Model.frequencies in
          check_bool "floor met" true (Linalg.Vec.sum f >= 8.0 *. 6e8 -. 8e6);
          let peak =
            Protemp.Guarantee.window_peak ~machine:m
              ~dfs_period:fast_spec.Protemp.Spec.dfs_period ~tstart:85.0
              ~frequencies:f
          in
          check_bool
            (Printf.sprintf "warm peak %.3f <= tmax" peak)
            true
            (peak <= fast_spec.Protemp.Spec.tmax +. 1e-9))

(* The compiled barrier backend must produce the same offline table as
   the reference Quad-walking oracle (to 1e-6 of full scale — the two
   walk different floating-point paths to the same optimum), and the
   reference table must pass the same thermal audit. *)
let test_sweep_backends_agree () =
  let m = Lazy.force machine in
  let run backend =
    Protemp.Offline.sweep ~machine:m ~spec:fast_spec ~domains:1 ~backend
      ~tstarts ~ftargets ()
  in
  let reference = run `Reference and compiled = run `Compiled in
  check_bool "tables agree to 1e-6 fmax" true
    (tables_equal ~tol:(1e-6 *. m.Sim.Machine.fmax) reference compiled);
  let audit =
    Protemp.Guarantee.audit_table ~machine:m ~spec:fast_spec reference
  in
  check_bool "cells checked" true (audit.Protemp.Guarantee.cells_checked > 0);
  check_bool
    (Printf.sprintf "reference margin %.4f >= 0"
       audit.Protemp.Guarantee.worst_margin)
    true
    (audit.Protemp.Guarantee.worst_margin >= -1e-9)

(* The aggregated work counters are a pure function of the grid — the
   same whichever domain count runs it. *)
let test_sweep_stats_domain_invariant () =
  let run domains =
    snd
      (Protemp.Offline.sweep_with_stats ~machine:(Lazy.force machine)
         ~spec:fast_spec ~domains ~tstarts ~ftargets ())
  in
  let s1 = run 1 and s4 = run 4 in
  check_int "solves" s1.Protemp.Offline.solves s4.Protemp.Offline.solves;
  let b1 = s1.Protemp.Offline.barrier and b4 = s4.Protemp.Offline.barrier in
  check_int "centerings" b1.Convex.Barrier.centering_steps
    b4.Convex.Barrier.centering_steps;
  check_int "newton" b1.Convex.Barrier.newton_iterations
    b4.Convex.Barrier.newton_iterations;
  check_int "backtracks" b1.Convex.Barrier.backtracks
    b4.Convex.Barrier.backtracks;
  check_int "factorizations" b1.Convex.Barrier.factorizations
    b4.Convex.Barrier.factorizations;
  let c1 = s1.Protemp.Offline.conic and c4 = s4.Protemp.Offline.conic in
  check_int "conic iterations" c1.Convex.Conic.iterations
    c4.Convex.Conic.iterations;
  check_int "conic factorizations" c1.Convex.Conic.factorizations
    c4.Convex.Conic.factorizations;
  check_int "conic optimal" c1.Convex.Conic.optimal c4.Convex.Conic.optimal;
  check_bool "non-trivial" true (c1.Convex.Conic.iterations > 0)

(* Instantiating from a prepared context must yield the same problem
   as a from-scratch build, so the same optimum. *)
let test_instantiate_matches_build () =
  let m = Lazy.force machine in
  let prepared = Protemp.Model.prepare ~machine:m ~spec:fast_spec ~tstart:55.0 in
  let a = Protemp.Model.solve (Protemp.Model.instantiate prepared ~ftarget:6e8) in
  let b =
    Protemp.Model.solve
      (Protemp.Model.build ~machine:m ~spec:fast_spec ~tstart:55.0 ~ftarget:6e8)
  in
  match (a, b) with
  | Protemp.Model.Feasible x, Protemp.Model.Feasible y ->
      check_bool "same frequencies" true
        (Linalg.Vec.approx_equal ~tol:1e-9 x.Protemp.Model.frequencies
           y.Protemp.Model.frequencies)
  | _, _ -> Alcotest.fail "expected both feasible"

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map order" `Quick test_pool_map_order;
          Alcotest.test_case "reuse across batches" `Quick
            test_pool_reuse_across_batches;
          Alcotest.test_case "edge sizes" `Quick test_pool_edge_sizes;
          Alcotest.test_case "first exception wins" `Quick
            test_pool_propagates_first_exception;
          Alcotest.test_case "sequential fallback" `Quick
            test_pool_sequential_when_size_one;
          Alcotest.test_case "PROTEMP_DOMAINS parsing" `Quick
            test_parse_domains;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "domain-count invariant" `Slow
            test_sweep_domain_count_invariant;
          Alcotest.test_case "progress covers every cell" `Slow
            test_sweep_reports_every_cell;
          Alcotest.test_case "warm-started cells keep the guarantee" `Slow
            test_sweep_warm_started_cells_keep_guarantee;
          Alcotest.test_case "warm start direct" `Slow test_warm_start_direct;
          Alcotest.test_case "backends agree" `Slow test_sweep_backends_agree;
          Alcotest.test_case "stats domain-count invariant" `Slow
            test_sweep_stats_domain_invariant;
          Alcotest.test_case "instantiate matches build" `Slow
            test_instantiate_matches_build;
        ] );
    ]
