(* Tests for the mmap-able binary serving format: byte-for-byte
   round-trips against Table's CSV semantics, header validation
   (magic, version, size, endianness sentinel), the committed golden
   header, allocation-free lookups, and identical lookups from
   concurrent readers sharing one image across domains. *)

open Linalg

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let freqs a = Protemp.Table.Frequencies a

(* The canonical fixture behind the committed golden header: 3 rows, 2
   columns, 2 cores, one infeasible corner.  Changing the format
   version or header layout must change the golden file consciously. *)
let canonical_table () =
  Protemp.Table.make ~tstarts:[| 50.0; 80.0; 100.0 |] ~ftargets:[| 2e8; 5e8 |]
    [|
      [| freqs [| 2e8; 2.5e8 |]; freqs [| 5e8; 5.5e8 |] |];
      [| freqs [| 1.5e8; 2e8 |]; freqs [| 4e8; 4.5e8 |] |];
      [| freqs [| 1e8; 1.25e8 |]; Protemp.Table.Infeasible |];
    |]

let with_store table f =
  let path = Filename.temp_file "protemp_store" ".ptbl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Protemp.Table_store.write table path;
      f path (Protemp.Table_store.open_file path))

let with_image bytes f =
  let path = Filename.temp_file "protemp_store" ".ptbl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc bytes;
      close_out oc;
      f path)

let opens_with_failure bytes =
  with_image bytes (fun path ->
      match Protemp.Table_store.open_file path with
      | _ -> None
      | exception Failure msg -> Some msg)

(* ------------------------------------------------------------------ *)

let test_roundtrip_csv_semantics () =
  let t = canonical_table () in
  with_store t (fun _path store ->
      (* CSV is %.17g — exact for every finite double — so string
         equality is bit-for-bit cell equality. *)
      check_string "csv round-trip" (Protemp.Table.to_csv t)
        (Protemp.Table.to_csv (Protemp.Table_store.to_table store));
      check_int "rows" 3 (Protemp.Table_store.n_rows store);
      check_int "cols" 2 (Protemp.Table_store.n_cols store);
      check_int "cores" 2 (Protemp.Table_store.n_cores store))

let test_lookup_matches_table () =
  let t = canonical_table () in
  with_store t (fun _path store ->
      let buf = Vec.zeros 2 in
      let agree temperature required =
        let expected = Protemp.Table.lookup t ~temperature ~required in
        let got =
          Protemp.Table_store.lookup_into store ~temperature ~required
            ~into:buf
        in
        match (expected, got) with
        | None, false -> true
        | Some f, true -> Vec.approx_equal ~tol:0.0 f buf
        | Some _, false | None, true -> false
      in
      for it = 0 to 499 do
        let temperature = 20.0 +. (float_of_int (it mod 25) *. 4.0) in
        let required = float_of_int (it mod 20) *. 0.5e8 in
        check_bool
          (Printf.sprintf "lookup (%g, %g)" temperature required)
          true
          (agree temperature required)
      done)

let test_all_infeasible_image () =
  let t =
    Protemp.Table.make ~tstarts:[| 50.0 |] ~ftargets:[| 2e8 |]
      [| [| Protemp.Table.Infeasible |] |]
  in
  with_store t (fun _path store ->
      check_int "zero cores" 0 (Protemp.Table_store.n_cores store);
      check_bool "lookup misses" false
        (Protemp.Table_store.lookup_into store ~temperature:40.0 ~required:1e8
           ~into:(Vec.zeros 0));
      check_string "csv round-trip" (Protemp.Table.to_csv t)
        (Protemp.Table.to_csv (Protemp.Table_store.to_table store)))

let test_core_fmax_roundtrip () =
  let t = canonical_table () in
  (* Default: platform unknown, recorded as zeros. *)
  with_store t (fun _path store ->
      check_bool "unknown platform is all zeros" true
        (Protemp.Table_store.core_fmax store = [| 0.0; 0.0 |]));
  (* Explicit ceilings round-trip exactly. *)
  let path = Filename.temp_file "protemp_store" ".ptbl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Protemp.Table_store.write ~core_fmax:[| 1e9; 6e8 |] t path;
      let store = Protemp.Table_store.open_file path in
      check_bool "ceilings round-trip" true
        (Protemp.Table_store.core_fmax store = [| 1e9; 6e8 |]));
  (* Length mismatches and negative ceilings are writer errors. *)
  let rejects core_fmax =
    match Protemp.Table_store.serialize ~core_fmax t with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  check_bool "length mismatch rejected" true (rejects [| 1e9 |]);
  check_bool "negative ceiling rejected" true (rejects [| 1e9; -1.0 |])

let test_golden_header () =
  let image = Protemp.Table_store.serialize (canonical_table ()) in
  let hex = Buffer.create 64 in
  String.iteri
    (fun i c ->
      if i < 32 then Buffer.add_string hex (Printf.sprintf "%02x" (Char.code c)))
    image;
  let ic = open_in "table_store_header.golden" in
  let golden = String.trim (input_line ic) in
  close_in ic;
  check_string "committed golden header (format version 2)" golden
    (Buffer.contents hex)

let test_rejects_truncated () =
  let image = Protemp.Table_store.serialize (canonical_table ()) in
  (* Truncated header. *)
  check_bool "truncated header" true
    (opens_with_failure (String.sub image 0 16) <> None);
  (* Truncated payload: header intact, cells cut short. *)
  check_bool "truncated payload" true
    (opens_with_failure (String.sub image 0 (String.length image - 8)) <> None);
  (* Trailing garbage: size no longer matches the declared layout. *)
  check_bool "trailing garbage" true
    (opens_with_failure (image ^ "XXXXXXXX") <> None)

let test_rejects_bad_magic_and_version () =
  let image = Protemp.Table_store.serialize (canonical_table ()) in
  let patch off c =
    let b = Bytes.of_string image in
    Bytes.set b off c;
    Bytes.to_string b
  in
  (match opens_with_failure (patch 0 'X') with
  | Some msg -> check_bool "magic message" true (String.length msg > 0)
  | None -> Alcotest.fail "bad magic accepted");
  (* Version 3 is from the future. *)
  check_bool "future version" true (opens_with_failure (patch 4 '\003') <> None);
  (* A big-endian writer would produce version bytes 00 00 00 02. *)
  let be = patch 4 '\000' in
  let be = Bytes.of_string be in
  Bytes.set be 7 '\002';
  check_bool "big-endian version field" true
    (opens_with_failure (Bytes.to_string be) <> None)

let contains_substring ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_rejects_v1_with_versioned_message () =
  (* A stale pre-platform fleet image: same payload a v1 writer would
     have produced (no core_fmax block), version byte 1.  The error
     must name the version so operators know to rebuild, not debug. *)
  let image = Protemp.Table_store.serialize (canonical_table ()) in
  let b = Bytes.of_string image in
  Bytes.set b 4 '\001';
  match opens_with_failure (Bytes.to_string b) with
  | None -> Alcotest.fail "v1 image accepted"
  | Some msg ->
      check_bool
        (Printf.sprintf "message names version 1: %s" msg)
        true
        (contains_substring ~needle:"version 1" msg)

let test_rejects_corrupt_sentinel () =
  let image = Protemp.Table_store.serialize (canonical_table ()) in
  let b = Bytes.of_string image in
  (* The float-view sentinel lives at bytes 24..31. *)
  Bytes.set b 27 '\055';
  check_bool "corrupt sentinel" true
    (opens_with_failure (Bytes.to_string b) <> None)

let test_rejects_unsorted_axis () =
  let image = Protemp.Table_store.serialize (canonical_table ()) in
  let b = Bytes.of_string image in
  (* Overwrite tstarts.(1) (bytes 40..47) with a value below
     tstarts.(0): the axis must be strictly increasing. *)
  let bits = Int64.bits_of_float 10.0 in
  for k = 0 to 7 do
    Bytes.set b (40 + k)
      (Char.chr
         (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * k)) 0xFFL)))
  done;
  check_bool "unsorted axis" true
    (opens_with_failure (Bytes.to_string b) <> None)

let test_lookup_allocation_free () =
  let t = canonical_table () in
  with_store t (fun _path store ->
      (* Queries live in a tuple array so the floats are already boxed:
         passing them to lookup_into allocates nothing, and the
         lookup itself must not either (lint.manifest covers the
         syntactic half; this is the runtime half, like Engine.run's
         zero-words golden). *)
      let queries =
        Array.init 512 (fun i ->
            ( 20.0 +. (float_of_int (i mod 29) *. 3.5),
              float_of_int (i mod 23) *. 0.4e8 ))
      in
      let buf = Vec.zeros 2 in
      let run () =
        for i = 0 to Array.length queries - 1 do
          let temperature, required = queries.(i) in
          ignore
            (Protemp.Table_store.lookup_into store ~temperature ~required
               ~into:buf)
        done
      in
      run ();
      (* Warm-up forced any one-time lazies. *)
      let before = Gc.minor_words () in
      run ();
      let words = Gc.minor_words () -. before in
      Alcotest.(check (float 0.0)) "minor words for 512 lookups" 0.0 words)

let test_concurrent_readers_share_image () =
  let t = canonical_table () in
  with_store t (fun _path store ->
      let temps = Array.init 40 (fun i -> 20.0 +. (float_of_int i *. 2.5)) in
      let reqs = Array.init 20 (fun j -> float_of_int j *. 0.4e8) in
      let snapshot () =
        let buf = Vec.zeros 2 in
        Array.map
          (fun temperature ->
            Array.map
              (fun required ->
                if
                  Protemp.Table_store.lookup_into store ~temperature ~required
                    ~into:buf
                then Some (Vec.copy buf)
                else None)
              reqs)
          temps
      in
      let reference = snapshot () in
      (* One mapped image, read from >= 4 domains at once: every
         reader must see exactly the reference lookups. *)
      let results = Parallel.Pool.map ~domains:4 (fun _ -> snapshot ()) 8 in
      Array.iteri
        (fun k snap ->
          check_bool (Printf.sprintf "reader %d identical" k) true
            (snap = reference))
        results)

let () =
  Alcotest.run "table_store"
    [
      ( "format",
        [
          Alcotest.test_case "csv round-trip" `Quick
            test_roundtrip_csv_semantics;
          Alcotest.test_case "lookup matches table" `Quick
            test_lookup_matches_table;
          Alcotest.test_case "all-infeasible image" `Quick
            test_all_infeasible_image;
          Alcotest.test_case "core_fmax round-trip" `Quick
            test_core_fmax_roundtrip;
          Alcotest.test_case "golden header" `Quick test_golden_header;
        ] );
      ( "validation",
        [
          Alcotest.test_case "rejects truncated" `Quick test_rejects_truncated;
          Alcotest.test_case "rejects bad magic/version" `Quick
            test_rejects_bad_magic_and_version;
          Alcotest.test_case "rejects v1 with versioned message" `Quick
            test_rejects_v1_with_versioned_message;
          Alcotest.test_case "rejects corrupt sentinel" `Quick
            test_rejects_corrupt_sentinel;
          Alcotest.test_case "rejects unsorted axis" `Quick
            test_rejects_unsorted_axis;
        ] );
      ( "serving",
        [
          Alcotest.test_case "allocation-free lookups" `Quick
            test_lookup_allocation_free;
          Alcotest.test_case "concurrent readers" `Quick
            test_concurrent_readers_share_image;
        ] );
    ]
