(* The platform abstraction (DESIGN.md 6i): a single-class
   heterogeneous machine must reproduce the homogeneous Niagara path
   bit for bit — power vectors, swept tables and whole engine traces —
   the big.LITTLE preset must obey its per-core power laws end to end,
   and the platform-aware policies (class-preferring dispatch, the
   integral-feedback controller) behave as specified. *)

open Linalg

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float tol = Alcotest.(check (float tol))
let check_string = Alcotest.(check string)

let niagara = lazy (Sim.Machine.niagara ())
let biglittle = lazy (Sim.Machine.biglittle ())

(* Niagara rebuilt through the explicit platform constructor: one core
   class carrying exactly the old scalar parameters. *)
let degenerate =
  lazy
    (let m = Lazy.force niagara in
     Sim.Machine.make_platform ~thermal:m.Sim.Machine.thermal
       ~core_nodes:m.Sim.Machine.core_nodes
       ~fixed_power:m.Sim.Machine.fixed_power
       ~platform:(Sim.Platform.homogeneous ~n_cores:8 ~fmax:1e9 ~pmax:4.0 ())
       ())

(* Same machine again, but split into two *identical* classes with an
   interleaved assignment: exercises the multi-class bookkeeping while
   every per-core parameter still equals the homogeneous value. *)
let two_identical_classes =
  lazy
    (let m = Lazy.force niagara in
     let cls =
       {
         Sim.Platform.class_name = "twin";
         fmax = 1e9;
         pmax = 4.0;
         exponent = 2.0;
         idle_activity = 0.3;
       }
     in
     Sim.Machine.make_platform ~thermal:m.Sim.Machine.thermal
       ~core_nodes:m.Sim.Machine.core_nodes
       ~fixed_power:m.Sim.Machine.fixed_power
       ~platform:
         (Sim.Platform.make
            ~classes:[| cls; { cls with Sim.Platform.class_name = "twin2" } |]
            ~assignment:[| 0; 1; 0; 1; 0; 1; 0; 1 |])
       ())

(* ------------------------------------------------------------------ *)
(* Platform validation *)

let test_platform_validation () =
  let cls =
    {
      Sim.Platform.class_name = "c";
      fmax = 1e9;
      pmax = 4.0;
      exponent = 2.0;
      idle_activity = 0.3;
    }
  in
  let rejects mk = match mk () with _ -> false | exception Invalid_argument _ -> true in
  check_bool "empty classes" true
    (rejects (fun () -> Sim.Platform.make ~classes:[||] ~assignment:[| 0 |]));
  check_bool "empty assignment" true
    (rejects (fun () -> Sim.Platform.make ~classes:[| cls |] ~assignment:[||]));
  check_bool "assignment out of range" true
    (rejects (fun () -> Sim.Platform.make ~classes:[| cls |] ~assignment:[| 1 |]));
  check_bool "non-positive fmax" true
    (rejects (fun () ->
         Sim.Platform.make
           ~classes:[| { cls with Sim.Platform.fmax = 0.0 } |]
           ~assignment:[| 0 |]));
  check_bool "exponent below 1" true
    (rejects (fun () ->
         Sim.Platform.make
           ~classes:[| { cls with Sim.Platform.exponent = 0.5 } |]
           ~assignment:[| 0 |]));
  check_bool "idle outside [0,1]" true
    (rejects (fun () ->
         Sim.Platform.make
           ~classes:[| { cls with Sim.Platform.idle_activity = 1.5 } |]
           ~assignment:[| 0 |]));
  let p = Sim.Platform.make ~classes:[| cls |] ~assignment:[| 0; 0; 0 |] in
  check_int "n_cores" 3 (Sim.Platform.n_cores p);
  check_int "n_classes" 1 (Sim.Platform.n_classes p);
  check_bool "single class" true (Sim.Platform.single_class p);
  check_bool "two identical classes are not single-class" false
    (Sim.Platform.single_class
       (Lazy.force two_identical_classes).Sim.Machine.platform)

(* ------------------------------------------------------------------ *)
(* Degenerate platform: bit-for-bit against the homogeneous path *)

let busy_patterns =
  [
    Array.make 8 true;
    Array.make 8 false;
    Array.init 8 (fun c -> c mod 2 = 0);
  ]

let frequency_vectors =
  [
    Vec.create 8 1e9;
    Vec.create 8 0.0;
    Vec.create 8 (-1.0);
    Vec.init 8 (fun c -> float_of_int c *. 1.37e8);
    Vec.init 8 (fun c -> if c < 4 then 9.99e8 else 1.3e7);
  ]

let check_power_bitidentical name other =
  let m = Lazy.force niagara in
  List.iter
    (fun frequencies ->
      List.iter
        (fun busy ->
          let p1 = Sim.Machine.power_vector m ~frequencies ~busy in
          let p2 = Sim.Machine.power_vector other ~frequencies ~busy in
          check_bool (name ^ ": power vector bit-identical") true (p1 = p2);
          let d1 = Vec.zeros m.Sim.Machine.n_nodes in
          let d2 = Vec.zeros m.Sim.Machine.n_nodes in
          Sim.Machine.power_vector_into m ~frequencies ~busy ~dst:d1;
          Sim.Machine.power_vector_into other ~frequencies ~busy ~dst:d2;
          check_bool (name ^ ": into variant bit-identical") true (d1 = d2))
        busy_patterns)
    frequency_vectors

let test_degenerate_power_bitidentical () =
  check_power_bitidentical "single-class" (Lazy.force degenerate);
  check_power_bitidentical "two identical classes"
    (Lazy.force two_identical_classes)

let prop_degenerate_power_bitidentical =
  QCheck2.Test.make
    ~name:"platform: single-class power matches homogeneous on random inputs"
    ~count:100
    QCheck2.Gen.(array_size (return 8) (float_bound_inclusive 1.2e9))
    (fun frequencies ->
      let m = Lazy.force niagara and d = Lazy.force degenerate in
      let busy = Array.init 8 (fun c -> frequencies.(c) > 5e8) in
      Sim.Machine.power_vector m ~frequencies ~busy
      = Sim.Machine.power_vector d ~frequencies ~busy)

let test_degenerate_table_identical () =
  (* A small Phase-1 sweep through the Model on both machines: the
     per-core normalization must collapse to the old scalar one, so
     the CSVs (%.17g, exact for every double) are string-equal. *)
  let sweep machine =
    Protemp.Table.to_csv
      (Protemp.Offline.sweep ~domains:1 ~machine ~spec:Protemp.Spec.default
         ~tstarts:[| 50.0; 80.0 |] ~ftargets:[| 2e8; 5e8 |] ())
  in
  check_string "swept table bit-identical" (sweep (Lazy.force niagara))
    (sweep (Lazy.force degenerate))

let test_degenerate_engine_identical () =
  let trace = Workload.Trace.generate ~seed:77L ~n_tasks:1500 Workload.Mix.web in
  let run machine mk_controller =
    Sim.Engine.run machine (mk_controller ()) Sim.Policy.coolest_first trace
  in
  let controllers =
    [
      ("no-tc", fun () -> Sim.Policy.workload_following ~fmax:1e9);
      ("basic-dfs", fun () -> Protemp.Basic_dfs.create ~fmax:1e9 ());
      ("integral", fun () -> Sim.Policy.integral_feedback ());
    ]
  in
  List.iter
    (fun (name, mk) ->
      let a = run (Lazy.force niagara) mk in
      let b = run (Lazy.force degenerate) mk in
      check_bool (name ^ ": stats bit-for-bit") true
        (Sim.Stats.equal a.Sim.Engine.stats b.Sim.Engine.stats);
      check_int (name ^ ": unfinished") a.Sim.Engine.unfinished
        b.Sim.Engine.unfinished)
    controllers

(* ------------------------------------------------------------------ *)
(* big.LITTLE preset *)

let test_biglittle_shape () =
  let m = Lazy.force biglittle in
  check_int "cores" 8 m.Sim.Machine.n_cores;
  check_int "classes" 2 (Sim.Platform.n_classes m.Sim.Machine.platform);
  check_float 1e-3 "chip reference fmax is the big ceiling" 1e9
    m.Sim.Machine.fmax;
  for c = 0 to 3 do
    check_float 1e-3 "big fmax" 1e9 m.Sim.Machine.core_fmax.(c);
    check_int "big class" 0 m.Sim.Machine.platform.Sim.Platform.assignment.(c)
  done;
  for c = 4 to 7 do
    check_float 1e-3 "little fmax" 6e8 m.Sim.Machine.core_fmax.(c);
    check_int "little class" 1
      m.Sim.Machine.platform.Sim.Platform.assignment.(c)
  done;
  Array.iter
    (fun node ->
      check_float 1e-12 "no fixed power on cores" 0.0
        m.Sim.Machine.fixed_power.(node))
    m.Sim.Machine.core_nodes

let test_biglittle_power_laws () =
  let m = Lazy.force biglittle in
  (* Big: quadratic, 5 W at 1 GHz. *)
  check_float 1e-9 "big at fmax" 5.0
    (Sim.Machine.core_power m ~core:0 ~frequency:1e9 ~busy:true);
  check_float 1e-9 "big at half" 1.25
    (Sim.Machine.core_power m ~core:0 ~frequency:5e8 ~busy:true);
  (* Little: cubic, 1.5 W at 600 MHz. *)
  check_float 1e-9 "little at its fmax" 1.5
    (Sim.Machine.core_power m ~core:7 ~frequency:6e8 ~busy:true);
  check_float 1e-9 "little at half" (1.5 *. 0.125)
    (Sim.Machine.core_power m ~core:7 ~frequency:3e8 ~busy:true);
  (* Idle activity scales the class's own dynamic power. *)
  check_float 1e-9 "big idle" (0.3 *. 1.25)
    (Sim.Machine.core_power m ~core:0 ~frequency:5e8 ~busy:false);
  check_float 1e-9 "little idle" (0.2 *. 1.5 *. 0.125)
    (Sim.Machine.core_power m ~core:7 ~frequency:3e8 ~busy:false);
  (* The hot path agrees with the scalar entry point on both laws. *)
  let frequencies = Vec.init 8 (fun c -> float_of_int (c + 1) *. 1.2e8) in
  let busy = Array.init 8 (fun c -> c mod 3 <> 0) in
  let dst = Vec.zeros m.Sim.Machine.n_nodes in
  Sim.Machine.power_vector_into m ~frequencies ~busy ~dst;
  check_bool "into matches allocating path" true
    (dst = Sim.Machine.power_vector m ~frequencies ~busy)

let test_biglittle_engine_matches_reference () =
  (* The alloc-free engine against the oracle on an asymmetric
     machine: per-core clamps and the cubic power path are mirrored in
     both loops. *)
  let m = Lazy.force biglittle in
  let trace = Workload.Trace.generate ~seed:41L ~n_tasks:800 Workload.Mix.paper_mix in
  let mk () = Sim.Policy.workload_following ~fmax:m.Sim.Machine.fmax in
  let fresh = Sim.Engine.run m (mk ()) Sim.Policy.coolest_first trace in
  let oracle =
    Sim.Engine.run_reference m (mk ()) Sim.Policy.coolest_first trace
  in
  check_bool "stats bit-for-bit" true
    (Sim.Stats.equal fresh.Sim.Engine.stats oracle.Sim.Engine.stats);
  check_int "unfinished" oracle.Sim.Engine.unfinished fresh.Sim.Engine.unfinished

let test_biglittle_engine_clamps_little_cores () =
  (* A controller demanding the big ceiling everywhere must trace
     exactly like one demanding each core's own ceiling: the engine
     clamps little cores to 600 MHz. *)
  let m = Lazy.force biglittle in
  let trace = Workload.Trace.generate ~seed:42L ~n_tasks:600 Workload.Mix.web in
  let overdriven = Sim.Policy.fixed_frequency ~fmax:m.Sim.Machine.fmax 1e9 in
  let per_core =
    {
      Sim.Policy.controller_name = "per-core-caps";
      decide = (fun obs -> Vec.copy obs.Sim.Policy.core_fmax);
    }
  in
  let run ctrl = Sim.Engine.run m ctrl Sim.Policy.first_idle trace in
  let a = run overdriven and b = run per_core in
  check_bool "identical traces" true
    (Sim.Stats.equal a.Sim.Engine.stats b.Sim.Engine.stats)

let test_biglittle_zero_alloc_steady_state () =
  (* The Niagara steady-state golden, on the asymmetric machine: the
     cubic [r ** e] branch and the per-core reads must not add a
     single minor word to the step loop. *)
  let m = Lazy.force biglittle in
  let config =
    {
      Sim.Engine.default_config with
      Sim.Engine.dfs_period = 100.0;
      drain_limit = 0.0;
    }
  in
  let ctrl = Sim.Policy.fixed_frequency ~fmax:m.Sim.Machine.fmax 1e9 in
  let words horizon =
    let task =
      { Workload.Task.id = 0; arrival = 0.0; work = 100.0; benchmark = Web }
    in
    let trace =
      { Workload.Trace.tasks = [| task |]; mix_name = "synthetic"; horizon }
    in
    ignore (Sim.Engine.run ~config m ctrl Sim.Policy.first_idle trace);
    let before = Gc.minor_words () in
    ignore (Sim.Engine.run ~config m ctrl Sim.Policy.first_idle trace);
    Gc.minor_words () -. before
  in
  let short = words 0.2 and long = words 0.4 in
  check_float 0.0 "extra minor words for 500 extra steps" 0.0 (long -. short)

let test_biglittle_sweep_and_audit () =
  (* One small certified table on the asymmetric machine, audited
     against the simulator: the per-core model keeps the guarantee. *)
  let m = Lazy.force biglittle in
  let spec = Protemp.Spec.default in
  let table =
    Protemp.Offline.sweep ~domains:1 ~machine:m ~spec ~tstarts:[| 50.0; 80.0 |]
      ~ftargets:[| 1e8; 3e8 |] ()
  in
  let feasible = ref 0 in
  Array.iteri
    (fun i _ ->
      Array.iteri
        (fun j _ ->
          match Protemp.Table.cell table i j with
          | Protemp.Table.Frequencies f ->
              incr feasible;
              Array.iteri
                (fun c hz ->
                  check_bool "cell respects its core's ceiling" true
                    (hz <= m.Sim.Machine.core_fmax.(c) +. 1e-6))
                f
          | Protemp.Table.Infeasible -> ())
        (Protemp.Table.ftargets table))
    (Protemp.Table.tstarts table);
  check_bool "some feasible cells" true (!feasible > 0);
  let audit = Protemp.Guarantee.audit_table ~machine:m ~spec table in
  check_bool "audit re-simulated the feasible cells" true
    (audit.Protemp.Guarantee.cells_checked = !feasible);
  check_bool
    (Printf.sprintf "guarantee holds (worst margin %.4f C)"
       audit.Protemp.Guarantee.worst_margin)
    true
    (audit.Protemp.Guarantee.worst_margin >= -1e-9)

let test_campaign_biglittle_domain_invariant () =
  (* The acceptance bar for the CLI's --platform biglittle grid:
     per-cell stats identical at any domain count, heterogeneous
     machine included. *)
  let m = Lazy.force biglittle in
  let spec =
    {
      Sim.Campaign.controllers =
        [
          ("no-tc", fun () -> Sim.Policy.workload_following ~fmax:m.Sim.Machine.fmax);
          ("integral", fun () -> Sim.Policy.integral_feedback ());
        ];
      assignments = [ Sim.Policy.first_idle; Sim.Policy.prefer_class ~cls:1 ];
      scenarios =
        [ Sim.Campaign.scenario ~seed:11L ~n_tasks:300 ~name:"web" Workload.Mix.web ];
      faults = [];
      config = Sim.Engine.default_config;
    }
  in
  let base = Sim.Campaign.run ~domains:1 ~machine:m spec in
  check_int "grid size" 4 (Array.length base);
  let cells = Sim.Campaign.run ~domains:3 ~machine:m spec in
  Array.iteri
    (fun i c ->
      check_bool
        (Printf.sprintf "cell %d identical across domain counts" i)
        true
        (Sim.Stats.equal base.(i).Sim.Campaign.result.Sim.Engine.stats
           c.Sim.Campaign.result.Sim.Engine.stats))
    cells

(* ------------------------------------------------------------------ *)
(* Platform-aware policies *)

let test_prefer_class () =
  let core_classes = [| 0; 0; 0; 0; 1; 1; 1; 1 |] in
  let temps = [| 40.0; 90.0; 50.0; 60.0; 80.0; 70.0; 85.0; 75.0 |] in
  let pick cls idle =
    match
      (Sim.Policy.prefer_class ~cls).Sim.Policy.choose ~idle ~core_classes
        ~core_temperatures:temps
    with
    | Some c -> c
    | None -> Alcotest.fail "expected a dispatch decision"
  in
  (* Coldest idle little core, even though a colder big core is idle. *)
  check_int "coldest of the preferred class" 5 (pick 1 [ 0; 2; 5; 6 ]);
  (* No idle core of the class: fall back to the coldest overall. *)
  check_int "falls back to coldest" 0 (pick 1 [ 0; 2; 3 ]);
  check_int "prefers big when asked" 2 (pick 0 [ 2; 3; 5 ])

let integral_obs ?(core_fmax = Vec.create 8 1e9) ~temp ~required () =
  {
    Sim.Policy.time = 0.0;
    core_temperatures = Vec.create 8 temp;
    max_core_temperature = temp;
    required_frequency = required;
    core_fmax;
    utilizations = Vec.zeros 8;
    queue_length = 0;
    queued_work = 0.0;
  }

let test_integral_feedback_rejects_bad_gain () =
  check_bool "non-positive gain" true
    (match Sim.Policy.integral_feedback ~gain:0.0 () with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_integral_feedback_tracks_error () =
  let c = Sim.Policy.integral_feedback ~gain:2e7 ~setpoint:100.0 () in
  (* Cool chip, modest demand: never runs faster than the workload
     asks for. *)
  let f = c.Sim.Policy.decide (integral_obs ~temp:40.0 ~required:5e8 ()) in
  check_float 1e-3 "follows demand when cool" 5e8 f.(0);
  (* Cool chip, excessive demand: capped at fmax. *)
  let f = c.Sim.Policy.decide (integral_obs ~temp:40.0 ~required:3e9 ()) in
  check_float 1e-3 "capped at fmax" 1e9 f.(0);
  (* Sustained overheat: the integrator winds the cap down by
     gain * error per decision, 2e7 * 10 = 2e8 Hz a step. *)
  let f = c.Sim.Policy.decide (integral_obs ~temp:110.0 ~required:3e9 ()) in
  check_float 1e-3 "one step down" 8e8 f.(0);
  let f = c.Sim.Policy.decide (integral_obs ~temp:110.0 ~required:3e9 ()) in
  check_float 1e-3 "two steps down" 6e8 f.(0);
  for _ = 1 to 10 do
    ignore (c.Sim.Policy.decide (integral_obs ~temp:110.0 ~required:3e9 ()))
  done;
  let f = c.Sim.Policy.decide (integral_obs ~temp:110.0 ~required:3e9 ()) in
  check_float 1e-3 "winds down to a stop" 0.0 f.(0);
  (* Cooling back below the setpoint recovers the frequency. *)
  let f = c.Sim.Policy.decide (integral_obs ~temp:90.0 ~required:3e9 ()) in
  check_float 1e-3 "recovers after cooling" 2e8 f.(0)

let test_integral_feedback_respects_per_core_caps () =
  let c = Sim.Policy.integral_feedback () in
  let m = Lazy.force biglittle in
  let core_fmax = Vec.copy m.Sim.Machine.core_fmax in
  let f = c.Sim.Policy.decide (integral_obs ~core_fmax ~temp:40.0 ~required:3e9 ()) in
  check_float 1e-3 "big core at its ceiling" 1e9 f.(0);
  check_float 1e-3 "little core at its ceiling" 6e8 f.(7)

(* ------------------------------------------------------------------ *)

let props =
  List.map QCheck_alcotest.to_alcotest [ prop_degenerate_power_bitidentical ]

let () =
  Alcotest.run "platform"
    [
      ( "platform",
        [ Alcotest.test_case "validation" `Quick test_platform_validation ] );
      ( "degenerate",
        [
          Alcotest.test_case "power bit-identical" `Quick
            test_degenerate_power_bitidentical;
          Alcotest.test_case "swept table bit-identical" `Slow
            test_degenerate_table_identical;
          Alcotest.test_case "engine traces bit-identical" `Quick
            test_degenerate_engine_identical;
        ] );
      ( "biglittle",
        [
          Alcotest.test_case "shape" `Quick test_biglittle_shape;
          Alcotest.test_case "per-core power laws" `Quick
            test_biglittle_power_laws;
          Alcotest.test_case "engine matches reference" `Quick
            test_biglittle_engine_matches_reference;
          Alcotest.test_case "little cores clamped" `Quick
            test_biglittle_engine_clamps_little_cores;
          Alcotest.test_case "steady-state step allocates nothing" `Quick
            test_biglittle_zero_alloc_steady_state;
          Alcotest.test_case "sweep honours the guarantee" `Slow
            test_biglittle_sweep_and_audit;
          Alcotest.test_case "campaign domain invariant" `Quick
            test_campaign_biglittle_domain_invariant;
        ] );
      ( "policies",
        [
          Alcotest.test_case "prefer-class dispatch" `Quick test_prefer_class;
          Alcotest.test_case "integral rejects bad gain" `Quick
            test_integral_feedback_rejects_bad_gain;
          Alcotest.test_case "integral tracks error" `Quick
            test_integral_feedback_tracks_error;
          Alcotest.test_case "integral respects per-core caps" `Quick
            test_integral_feedback_respects_per_core_caps;
        ] );
      ("properties", props);
    ]
