(* Fixture-string tests for the static-analysis pass (DESIGN.md 6f):
   positive and negative cases per checker, the suppression path, the
   strict-manifest round-trip, and the JSON rendering.  Fixtures are
   linted via [Lint.Driver.lint_source], the same entry point the CLI
   drives per file, so what passes here is what `protemp_cli lint`
   enforces. *)

let ids findings = List.map (fun f -> f.Lint.Finding.checker) findings

let count checker findings =
  List.length (List.filter (fun f -> f.Lint.Finding.checker = checker) findings)

(* Default fixture home: library code with a declared interface, so
   only the checker under test can fire.  [typed] defaults to [`Off];
   the typed-pass tests opt in with [`Infer]. *)
let lint ?manifest ?units ?typed ?(mli_exists = true)
    ?(path = "lib/fix/fixture.ml") text =
  Lint.Driver.lint_source ?manifest ?units ?typed ~mli_exists ~path text

let check_counts ~msg expected findings =
  List.iter
    (fun (checker, n) ->
      Alcotest.(check int) (msg ^ ": " ^ checker) n (count checker findings))
    expected;
  let expected_total = List.fold_left (fun a (_, n) -> a + n) 0 expected in
  Alcotest.(check int)
    (msg ^ ": no other findings — got " ^ String.concat "," (ids findings))
    expected_total (List.length findings)

(* ------------------------------------------------------------------ *)
(* domain-safety *)

let test_domain_safety_positives () =
  check_counts ~msg:"toplevel ref"
    [ ("domain-safety", 1) ]
    (lint "let cache = ref None\n");
  check_counts ~msg:"toplevel Hashtbl"
    [ ("domain-safety", 1) ]
    (lint "let table = Hashtbl.create 16\n");
  check_counts ~msg:"toplevel Buffer"
    [ ("domain-safety", 1) ]
    (lint "let buf = Buffer.create 64\n");
  check_counts ~msg:"mutable-field record literal"
    [ ("domain-safety", 1) ]
    (lint "type t = { mutable hits : int }\nlet state = { hits = 0 }\n");
  check_counts ~msg:"inside a literal module"
    [ ("domain-safety", 1) ]
    (lint "module Cache = struct\n  let slots = Hashtbl.create 8\nend\n")

let test_domain_safety_negatives () =
  check_counts ~msg:"Atomic.make is the sanctioned form" []
    (lint "let hits = Atomic.make 0\n");
  check_counts ~msg:"function-local ref is a mutable variable" []
    (lint "let bump () =\n  let r = ref 0 in\n  incr r;\n  !r\n");
  check_counts ~msg:"immutable record literal" []
    (lint "type t = { hits : int }\nlet state = { hits = 0 }\n");
  check_counts ~msg:"binaries may hold process-wide state" []
    (lint ~path:"bin/tool.ml" "let cache = ref None\n")

let test_domain_safety_suppression () =
  check_counts ~msg:"domain-local suppression on the line above" []
    (lint
       "(* lint: domain-local fixture: single-domain memo *)\n\
        let cache = ref None\n");
  check_counts ~msg:"primary key works too" []
    (lint
       "(* lint: domain-safety fixture: single-domain memo *)\n\
        let cache = ref None\n");
  (* A suppression only reaches its own line and the next one. *)
  check_counts ~msg:"suppression two lines up does not reach"
    [ ("domain-safety", 1) ]
    (lint
       "(* lint: domain-local fixture: too far away *)\n\
        \n\
        let cache = ref None\n")

(* ------------------------------------------------------------------ *)
(* float-equality *)

let test_float_equality_positives () =
  check_counts ~msg:"(=) on a float literal"
    [ ("float-equality", 1) ]
    (lint "let is_zero x = x = 0.0\n");
  check_counts ~msg:"(<>) on float arithmetic"
    [ ("float-equality", 1) ]
    (lint "let differs a b = a +. b <> 0.0\n");
  check_counts ~msg:"compare on a float literal"
    [ ("float-equality", 1) ]
    (lint "let order x = compare x 1.0\n");
  check_counts ~msg:"Float.abs result is visibly float"
    [ ("float-equality", 1) ]
    (lint "let flat x = Float.abs x = 0.0\n")

let test_float_equality_negatives () =
  check_counts ~msg:"integer equality" [] (lint "let is_zero x = x = 0\n");
  check_counts ~msg:"Float.equal is the sanctioned form" []
    (lint "let is_zero x = Float.equal x 0.0\n");
  check_counts ~msg:"float comparison short of equality" []
    (lint "let small x = Float.abs x < 1e-9\n")

let test_float_equality_suppression () =
  check_counts ~msg:"inline suppression" []
    (lint "let is_zero x = x = 0.0 (* lint: float-equality fixture *)\n")

(* ------------------------------------------------------------------ *)
(* alloc-free manifest *)

let manifest_of text =
  let m, errors = Lint.Manifest.parse ~path:"lint.manifest" text in
  Alcotest.(check (list (pair int string))) "manifest parses" [] errors;
  m

let test_alloc_free_clean_and_dirty () =
  let manifest =
    manifest_of "lib/fix/fixture.ml kernel\nlib/fix/fixture.ml boxed\n"
  in
  let findings =
    lint ~manifest
      "let kernel dst x =\n\
      \  for i = 0 to Array.length dst - 1 do\n\
      \    dst.(i) <- dst.(i) +. x\n\
      \  done\n\
       \n\
       let boxed x = Some x\n"
  in
  check_counts ~msg:"in-place kernel clean, Some payload flagged"
    [ ("alloc-free", 1) ] findings;
  let f = List.hd findings in
  Alcotest.(check int) "flagged at the Some site" 6 f.Lint.Finding.line

let test_alloc_free_sites () =
  let one body =
    let manifest = manifest_of "lib/fix/fixture.ml hot\n" in
    count "alloc-free" (lint ~manifest (Printf.sprintf "let hot x = %s\n" body))
  in
  Alcotest.(check int) "tuple" 1 (one "(x, x)");
  Alcotest.(check int) "array literal" 1 (one "[| x |]");
  (* Cons parses as a constructor applied to an argument tuple, so the
     payload and the tuple are each reported. *)
  Alcotest.(check int) "list cons" 2 (one "x :: []");
  (* A trailing [fun] chain is parameter peeling, not a closure; one in
     argument position is the real allocation. *)
  Alcotest.(check int) "closure" 1 (one "List.map (fun y -> y + x) []");
  Alcotest.(check int) "lazy" 1 (one "lazy x");
  Alcotest.(check int) "constant constructor is free" 0 (one "if x then 1 else 2");
  Alcotest.(check int) "plain arithmetic is free" 0 (one "(x * 3) land 7")

let test_alloc_free_nested_path () =
  let manifest = manifest_of "lib/fix/fixture.ml run.step_once\n" in
  let findings =
    lint ~manifest
      "let run n =\n\
      \  let acc = ref 0 in\n\
      \  let step_once () = acc := !acc + (fst (n, n)) in\n\
      \  step_once ();\n\
      \  !acc\n"
  in
  check_counts ~msg:"tuple inside the nested hot loop"
    [ ("alloc-free", 1) ] findings

let test_alloc_free_partial_application () =
  let manifest = manifest_of "lib/fix/fixture.ml hot\n" in
  check_counts ~msg:"partial application of a same-file function"
    [ ("alloc-free", 1) ]
    (lint ~manifest "let add3 a b c = a + b + c\nlet hot x = add3 x 1\n");
  check_counts ~msg:"full application is free" []
    (lint ~manifest "let add3 a b c = a + b + c\nlet hot x = add3 x 1 2\n")

(* Satellite: the manifest is strict — a misspelled function is an
   error against the manifest itself, and it bypasses suppression. *)
let test_alloc_free_misspelled_entry () =
  let manifest = manifest_of "lib/fix/fixture.ml kernle\n" in
  let findings = lint ~manifest "let kernel dst = Array.fill dst 0 1 0.0\n" in
  check_counts ~msg:"unknown function is a finding" [ ("alloc-free", 1) ]
    findings;
  let f = List.hd findings in
  Alcotest.(check string)
    "finding lands on the manifest file" "lint.manifest" f.Lint.Finding.file;
  Alcotest.(check int) "at the entry's line" 1 f.Lint.Finding.line

let test_manifest_parse_errors () =
  let _, errors =
    Lint.Manifest.parse ~path:"lint.manifest"
      "# comment\n\nlib/fix/fixture.ml kernel\nlib/only_a_file.ml\n"
  in
  Alcotest.(check int) "one malformed line" 1 (List.length errors);
  Alcotest.(check int) "at line 4" 4 (fst (List.hd errors))

let test_manifest_unknown_file () =
  let manifest = manifest_of "lib/ghost.ml kernel\n" in
  let findings =
    Lint.Driver.manifest_unknown_files manifest ~seen:[ "lib/fix/fixture.ml" ]
  in
  Alcotest.(check int) "one unknown-file finding" 1 (List.length findings);
  Alcotest.(check string)
    "against the manifest" "lint.manifest"
    (List.hd findings).Lint.Finding.file

(* ------------------------------------------------------------------ *)
(* mli-coverage *)

let test_mli_coverage () =
  check_counts ~msg:"library module without an interface"
    [ ("mli-coverage", 1) ]
    (lint ~mli_exists:false "let x = 1\n");
  check_counts ~msg:"interface present" [] (lint ~mli_exists:true "let x = 1\n");
  check_counts ~msg:"declared internal" []
    (lint ~mli_exists:false
       "(* lint: internal fixture: implementation detail *)\nlet x = 1\n");
  check_counts ~msg:"binaries need no interface" []
    (lint ~path:"bin/tool.ml" ~mli_exists:false "let x = 1\n")

(* ------------------------------------------------------------------ *)
(* suppression hygiene and parse failures *)

let test_suppression_problems () =
  check_counts ~msg:"unknown key" [ ("suppression", 1) ]
    (lint "(* lint: bogus-key some reason *)\nlet x = 1\n");
  check_counts ~msg:"missing reason" [ ("suppression", 1) ]
    (lint "(* lint: float-equality *)\nlet x = 1\n")

let test_parse_error_is_a_finding () =
  check_counts ~msg:"syntax error becomes a finding, not an exception"
    [ ("parse-error", 1) ]
    (lint "let let let\n")

(* ------------------------------------------------------------------ *)
(* JSON rendering *)

let test_json_shape () =
  let f =
    Lint.Finding.v ~file:"lib/a.ml" ~line:3 ~col:7 ~checker:"float-equality"
      "say \"no\""
  in
  Alcotest.(check string) "object shape"
    (Printf.sprintf
       {|{"id":"%s","file":"lib/a.ml","line":3,"col":7,"checker":"float-equality","message":"say \"no\""}|}
       (Lint.Finding.id f))
    (Lint.Finding.to_json f);
  Alcotest.(check string) "empty array" "[]" (Lint.Finding.list_to_json []);
  let arr = Lint.Finding.list_to_json [ f; f ] in
  Alcotest.(check bool) "array brackets" true
    (String.length arr > 2 && arr.[0] = '[' && arr.[String.length arr - 1] = ']')

(* ------------------------------------------------------------------ *)
(* stable ids and the baseline *)

let test_finding_id_stability () =
  let f line =
    Lint.Finding.v ~file:"lib/a.ml" ~line ~checker:"units" "mixed units"
  in
  Alcotest.(check string) "id ignores the line"
    (Lint.Finding.id (f 3))
    (Lint.Finding.id (f 40));
  Alcotest.(check int) "12 hex chars" 12 (String.length (Lint.Finding.id (f 3)));
  let g = Lint.Finding.v ~file:"lib/b.ml" ~line:3 ~checker:"units" "mixed units" in
  Alcotest.(check bool) "different file, different id" true
    (Lint.Finding.id (f 3) <> Lint.Finding.id g)

let test_baseline_round_trip () =
  let dir = Filename.temp_file "protemp_baseline" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let path = Filename.concat dir "lint.baseline" in
  Alcotest.(check (list string)) "missing file is an empty baseline" []
    (Lint.Baseline.load path);
  let f1 = Lint.Finding.v ~file:"lib/a.ml" ~line:3 ~checker:"units" "one" in
  let f2 = Lint.Finding.v ~file:"lib/b.ml" ~line:9 ~checker:"capture" "two" in
  Lint.Baseline.save path [ f1; f2 ];
  let ids = Lint.Baseline.load path in
  Alcotest.(check int) "both ids read back" 2 (List.length ids);
  let kept, n_baselined = Lint.Baseline.filter ids [ f1; f2 ] in
  Alcotest.(check int) "both filtered out" 0 (List.length kept);
  Alcotest.(check int) "both counted" 2 n_baselined;
  let f3 = Lint.Finding.v ~file:"lib/c.ml" ~line:1 ~checker:"units" "new" in
  let kept, n_baselined = Lint.Baseline.filter ids [ f1; f3 ] in
  Alcotest.(check (list string)) "a new finding survives the baseline"
    [ "lib/c.ml" ]
    (List.map (fun f -> f.Lint.Finding.file) kept);
  Alcotest.(check int) "only the old one baselined" 1 n_baselined

(* ------------------------------------------------------------------ *)
(* whole-repo driver on a seeded fixture tree *)

let write_file path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

let test_run_repo_seeded_violation () =
  let root = Filename.temp_file "protemp_lint" "" in
  Sys.remove root;
  Sys.mkdir root 0o755;
  Sys.mkdir (Filename.concat root "lib") 0o755;
  write_file (Filename.concat root "lib/bad.ml") "let cache = ref None\n";
  write_file (Filename.concat root "lib/good.ml") "let x = 1\n";
  write_file (Filename.concat root "lib/good.mli") "val x : int\n";
  let r = Lint.Driver.run_repo ~root () in
  Alcotest.(check (list string)) "discovers both sources"
    [ "lib/bad.ml"; "lib/good.ml" ]
    r.Lint.Driver.files;
  Alcotest.(check int) "seeded domain-safety violation found" 1
    (count "domain-safety" r.Lint.Driver.findings);
  Alcotest.(check int) "bad.ml also lacks an interface" 1
    (count "mli-coverage" r.Lint.Driver.findings);
  Alcotest.(check bool) "non-empty findings drive the non-zero exit" true
    (r.Lint.Driver.findings <> []);
  Alcotest.(check int)
    "both self-contained files get an in-process typed pass" 2
    r.Lint.Driver.typed

(* ------------------------------------------------------------------ *)
(* typed pass: units of measure and cross-domain capture, on the
   committed fixture files (test/fixtures/, declared as dune deps) *)

let read_fixture name =
  let ic = open_in_bin (Filename.concat "fixtures" name) in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let units_manifest_of text =
  let m, errors = Lint.Units_manifest.parse ~path:"units.manifest" text in
  Alcotest.(check (list (pair int string))) "units manifest parses" [] errors;
  m

let units_bad_manifest path =
  Printf.sprintf
    "val %s fmax hz\nval %s tmax celsius\nfn %s clamp util:norm\n" path path
    path

let test_units_seeded_fixture () =
  let path = "lib/units_bad.ml" in
  let units = units_manifest_of (units_bad_manifest path) in
  let findings =
    lint ~path ~units ~typed:`Infer (read_fixture "units_bad.ml")
  in
  check_counts ~msg:"both seeded violations, nothing else"
    [ ("units", 2) ] findings;
  let lines = List.map (fun f -> f.Lint.Finding.line) findings in
  Alcotest.(check (list int)) "on the marked lines" [ 10; 16 ] lines

let test_units_vocabulary_is_closed () =
  let _, errors =
    Lint.Units_manifest.parse ~path:"units.manifest"
      "val lib/a.ml fmax hz\nval lib/a.ml speed furlong\n"
  in
  Alcotest.(check int) "unknown unit fails the load" 1 (List.length errors);
  Alcotest.(check int) "at its line" 2 (fst (List.hd errors))

let test_units_strict_manifest () =
  let path = "lib/units_bad.ml" in
  let units =
    units_manifest_of (units_bad_manifest path ^ "fn " ^ path ^ " missing x:hz\n")
  in
  let findings =
    lint ~path ~units ~typed:`Infer (read_fixture "units_bad.ml")
  in
  Alcotest.(check int) "the phantom entry is a finding" 3
    (count "units" findings);
  Alcotest.(check bool) "reported against the manifest file" true
    (List.exists
       (fun f -> f.Lint.Finding.file = "units.manifest")
       findings)

let test_units_suppression () =
  let path = "lib/units_bad.ml" in
  let units = units_manifest_of (units_bad_manifest path) in
  let suppressed =
    lint ~path ~units ~typed:`Infer
      "let fmax = 2.5e9\n\
       let tmax = 85.0\n\
       (* lint: units fixture: deliberate mixed add *)\n\
       let mixed = fmax +. tmax\n\
       let clamp ~util = if util > 1.0 then 1.0 else util\n\
       let _n = clamp ~util:0.5\n"
  in
  check_counts ~msg:"suppression silences the typed finding" [] suppressed

let test_capture_seeded_fixture () =
  let findings =
    lint ~path:"lib/capture_bad.ml" ~typed:`Infer
      (read_fixture "capture_bad.ml")
  in
  (* The toplevel ref also trips the syntactic domain-safety checker —
     the two checkers see the same hazard from different angles. *)
  check_counts ~msg:"seeded capture violation"
    [ ("capture", 1); ("domain-safety", 1) ]
    findings;
  let f =
    List.find (fun f -> f.Lint.Finding.checker = "capture") findings
  in
  Alcotest.(check int) "on the marked line" 17 f.Lint.Finding.line

let test_capture_clean_closure () =
  check_counts ~msg:"a closure over immutable state is fine" []
    (lint ~path:"lib/cap_ok.ml" ~typed:`Infer
       "module Parallel = struct\n\
       \  module Pool = struct let map_rows f n = Array.init n f end\n\
        end\n\
        let scale = 2.0\n\
        let rows n = Parallel.Pool.map_rows (fun i -> float_of_int i *. scale) n\n")

let test_capture_atomic_is_sanctioned () =
  check_counts ~msg:"Atomic counters may cross domains" []
    (lint ~path:"lib/cap_atomic.ml" ~typed:`Infer
       "module Parallel = struct\n\
       \  module Pool = struct let map_rows f n = Array.init n f end\n\
        end\n\
        let hits = Atomic.make 0\n\
        (* lint: domain-safety shared counter, atomic by construction *)\n\
        let rows n = Parallel.Pool.map_rows (fun i -> Atomic.incr hits; i) n\n")

(* End-to-end: a fixture tree with both seeded files drives the
   non-zero exit through [run_repo], the path the CLI takes. *)
let test_run_repo_typed_fixture_tree () =
  let root = Filename.temp_file "protemp_typed" "" in
  Sys.remove root;
  Sys.mkdir root 0o755;
  Sys.mkdir (Filename.concat root "lib") 0o755;
  write_file
    (Filename.concat root "lib/units_bad.ml")
    (read_fixture "units_bad.ml");
  write_file (Filename.concat root "lib/units_bad.mli") "";
  write_file
    (Filename.concat root "lib/capture_bad.ml")
    (read_fixture "capture_bad.ml");
  write_file (Filename.concat root "lib/capture_bad.mli") "";
  write_file
    (Filename.concat root "units.manifest")
    (units_bad_manifest "lib/units_bad.ml");
  let r =
    Lint.Driver.run_repo ~root ~units_path:"units.manifest" ()
  in
  Alcotest.(check int) "both files typed in-process" 2 r.Lint.Driver.typed;
  Alcotest.(check int) "seeded units violations" 2
    (count "units" r.Lint.Driver.findings);
  Alcotest.(check int) "seeded capture violation" 1
    (count "capture" r.Lint.Driver.findings);
  Alcotest.(check bool) "the tree fails lint" true
    (r.Lint.Driver.findings <> [])

(* ------------------------------------------------------------------ *)
(* suppression reach: a property, not examples.  A suppression on line
   L silences a finding on line F iff F is L or L + 1. *)

let test_suppression_reach_property () =
  let gen = QCheck.Gen.(pair (int_range 1 30) (int_range 1 32)) in
  let prop (l, f) =
    let b = Buffer.create 256 in
    for line = 1 to 32 do
      if line = l then
        Buffer.add_string b "(* lint: float-equality fixture reason *)\n"
      else Buffer.add_string b "\n"
    done;
    let sup = Lint.Suppress.scan ~keys:Lint.Driver.all_keys (Buffer.contents b) in
    Lint.Suppress.active sup ~keys:[ "float-equality" ] ~line:f
    = (f = l || f = l + 1)
  in
  let cell =
    QCheck.Test.make ~count:500 ~name:"suppression reaches L and L+1 only"
      (QCheck.make gen) prop
  in
  QCheck.Test.check_exn cell

let () =
  Alcotest.run "lint"
    [
      ( "domain-safety",
        [
          Alcotest.test_case "positives" `Quick test_domain_safety_positives;
          Alcotest.test_case "negatives" `Quick test_domain_safety_negatives;
          Alcotest.test_case "suppression" `Quick test_domain_safety_suppression;
        ] );
      ( "float-equality",
        [
          Alcotest.test_case "positives" `Quick test_float_equality_positives;
          Alcotest.test_case "negatives" `Quick test_float_equality_negatives;
          Alcotest.test_case "suppression" `Quick
            test_float_equality_suppression;
        ] );
      ( "alloc-free",
        [
          Alcotest.test_case "clean and dirty bodies" `Quick
            test_alloc_free_clean_and_dirty;
          Alcotest.test_case "allocation sites" `Quick test_alloc_free_sites;
          Alcotest.test_case "nested path" `Quick test_alloc_free_nested_path;
          Alcotest.test_case "partial application" `Quick
            test_alloc_free_partial_application;
          Alcotest.test_case "misspelled entry is strict" `Quick
            test_alloc_free_misspelled_entry;
          Alcotest.test_case "manifest parse errors" `Quick
            test_manifest_parse_errors;
          Alcotest.test_case "unknown manifest file" `Quick
            test_manifest_unknown_file;
        ] );
      ( "mli-coverage",
        [ Alcotest.test_case "coverage" `Quick test_mli_coverage ] );
      ( "hygiene",
        [
          Alcotest.test_case "suppression problems" `Quick
            test_suppression_problems;
          Alcotest.test_case "parse errors" `Quick test_parse_error_is_a_finding;
          Alcotest.test_case "json shape" `Quick test_json_shape;
          Alcotest.test_case "suppression reach property" `Quick
            test_suppression_reach_property;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "stable ids" `Quick test_finding_id_stability;
          Alcotest.test_case "round trip" `Quick test_baseline_round_trip;
        ] );
      ( "units",
        [
          Alcotest.test_case "seeded fixture" `Quick test_units_seeded_fixture;
          Alcotest.test_case "closed vocabulary" `Quick
            test_units_vocabulary_is_closed;
          Alcotest.test_case "strict manifest" `Quick test_units_strict_manifest;
          Alcotest.test_case "suppression" `Quick test_units_suppression;
        ] );
      ( "capture",
        [
          Alcotest.test_case "seeded fixture" `Quick test_capture_seeded_fixture;
          Alcotest.test_case "immutable capture is clean" `Quick
            test_capture_clean_closure;
          Alcotest.test_case "atomic is sanctioned" `Quick
            test_capture_atomic_is_sanctioned;
        ] );
      ( "driver",
        [
          Alcotest.test_case "seeded repo violation" `Quick
            test_run_repo_seeded_violation;
          Alcotest.test_case "seeded typed fixture tree" `Quick
            test_run_repo_typed_fixture_tree;
        ] );
    ]
