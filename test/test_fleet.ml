(* Tests for the fleet layer: exact trace partitioning, the
   waiting-time sketch and merge, the chip/engine golden equivalence,
   domain-count invariance, chip-level fault composition, and the
   thermal-aware balancer. *)

open Workload

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float tol = Alcotest.(check (float tol))
let machine = lazy (Sim.Machine.niagara ())

let raises_invalid f =
  match f () with exception Invalid_argument _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Trace windowing and degenerate statistics (the bugfixes) *)

let prop_windows_partition =
  QCheck2.Test.make ~name:"trace: k-windowing is an exact partition"
    ~count:60
    QCheck2.Gen.(pair (int_range 1 32) (int_range 1 1000))
    (fun (k, seed) ->
      let trace =
        Trace.generate ~seed:(Int64.of_int seed) ~n_tasks:200 Mix.paper_mix
      in
      let slices = Trace.windows trace ~k in
      let flat = Array.concat (Array.to_list slices) in
      (* Every task id exactly once, in the original order: no drops
         (the old half-open windowing lost the task arriving exactly
         at the horizon), no duplicates. *)
      Array.length flat = Array.length trace.Trace.tasks
      && Array.for_all2
           (fun (a : Task.t) (b : Task.t) -> a.Task.id = b.Task.id)
           trace.Trace.tasks flat)

let test_windows_last_task_kept () =
  let trace = Trace.generate ~seed:7L ~n_tasks:500 Mix.web in
  let last = trace.Trace.tasks.(499) in
  (* The last task arrives exactly at the horizon; the closed query
     and the partition must both include it. *)
  check_float 0.0 "last arrival is the horizon" trace.Trace.horizon
    last.Task.arrival;
  let closed =
    Trace.tasks_in_window ~closed:true trace
      ~lo:(trace.Trace.horizon /. 2.0)
      ~hi:trace.Trace.horizon
  in
  check_bool "closed window includes the horizon task" true
    (List.exists (fun t -> t.Task.id = last.Task.id) closed);
  let slices = Trace.windows trace ~k:8 in
  let final = slices.(7) in
  check_bool "final slice includes the horizon task" true
    (Array.exists (fun t -> t.Task.id = last.Task.id) final)

let test_generate_horizon_after_sort () =
  (* The horizon must be the largest arrival of the *sorted* tasks for
     every seed — reading the pre-sort array's last element happened
     to agree only because generators emit increasing times. *)
  for seed = 1 to 20 do
    let trace =
      Trace.generate ~seed:(Int64.of_int seed) ~n_tasks:100 Mix.paper_mix
    in
    Array.iter
      (fun t ->
        check_bool "no arrival past the horizon" true
          (t.Task.arrival <= trace.Trace.horizon))
      trace.Trace.tasks
  done

let test_statistics_degenerate () =
  let one = Trace.generate ~seed:3L ~n_tasks:1 Mix.web in
  let s = Trace.statistics one ~n_cores:8 in
  check_int "count" 1 s.Trace.count;
  check_float 0.0 "1-task trace has no interarrival gap" 0.0
    s.Trace.mean_interarrival;
  let instant =
    {
      Trace.tasks =
        [|
          { Task.id = 0; arrival = 0.0; work = 1e-3; benchmark = Task.Web };
        |];
      mix_name = "instant";
      horizon = 0.0;
    }
  in
  let s0 = Trace.statistics instant ~n_cores:8 in
  check_float 0.0 "zero horizon offers no sustained load" 0.0
    s0.Trace.offered_utilization;
  check_float 0.0 "zero horizon has no interarrival gap" 0.0
    s0.Trace.mean_interarrival;
  check_float 1e-12 "work still counted" 1e-3 s0.Trace.total_work

(* ------------------------------------------------------------------ *)
(* Stats: waiting clamp, percentile sketch, merge *)

let test_record_waiting_clamp () =
  let s = Sim.Stats.create ~n_cores:1 ~tmax:100.0 () in
  (* Float dust from cross-chip clock subtraction must be absorbed. *)
  Sim.Stats.record_waiting s (-1e-18);
  Sim.Stats.record_waiting s (-1e-12);
  check_float 0.0 "dust clamps to zero" 0.0 (Sim.Stats.mean_waiting s);
  check_float 0.0 "max untouched" 0.0 (Sim.Stats.max_waiting s);
  (* Genuinely negative waits are still accounting bugs. *)
  check_bool "genuinely negative still raises" true
    (raises_invalid (fun () -> Sim.Stats.record_waiting s (-1.0)));
  check_bool "below the epsilon raises" true
    (raises_invalid (fun () -> Sim.Stats.record_waiting s (-1e-6)))

let test_waiting_percentile () =
  let s = Sim.Stats.create ~n_cores:1 ~tmax:100.0 () in
  check_float 0.0 "empty sketch reports 0" 0.0
    (Sim.Stats.waiting_percentile s 0.99);
  (* 100 waits: 1ms .. 100ms. *)
  for i = 1 to 100 do
    Sim.Stats.record_waiting s (float_of_int i *. 1e-3)
  done;
  let p50 = Sim.Stats.waiting_percentile s 0.5
  and p95 = Sim.Stats.waiting_percentile s 0.95
  and p99 = Sim.Stats.waiting_percentile s 0.99
  and p100 = Sim.Stats.waiting_percentile s 1.0 in
  (* The sketch is conservative (bucket upper edge, ~8.5% relative
     resolution): never below the true quantile, never more than one
     gamma above it. *)
  let within truth est =
    est >= truth -. 1e-12 && est <= truth *. 1.1 +. 1e-12
  in
  check_bool "p50 in band" true (within 0.050 p50);
  check_bool "p95 in band" true (within 0.095 p95);
  check_bool "p99 in band" true (within 0.099 p99);
  check_float 1e-12 "p100 is the exact max" 0.1 p100;
  check_bool "monotone" true (p50 <= p95 && p95 <= p99 && p99 <= p100);
  check_bool "quantile range checked" true
    (raises_invalid (fun () -> Sim.Stats.waiting_percentile s 1.5))

let test_merge_into () =
  let a = Sim.Stats.create ~n_cores:1 ~tmax:100.0 () in
  let b = Sim.Stats.create ~n_cores:1 ~tmax:100.0 () in
  let both = Sim.Stats.create ~n_cores:1 ~tmax:100.0 () in
  let temps_a = [| 85.0 |] and temps_b = [| 103.0 |] in
  Sim.Stats.record_step a ~dt:0.1 ~core_temperatures:temps_a;
  Sim.Stats.record_step b ~dt:0.1 ~core_temperatures:temps_b;
  Sim.Stats.record_step both ~dt:0.1 ~core_temperatures:temps_a;
  Sim.Stats.record_step both ~dt:0.1 ~core_temperatures:temps_b;
  Sim.Stats.record_waiting a 2e-3;
  Sim.Stats.record_waiting b 7e-3;
  Sim.Stats.record_waiting both 2e-3;
  Sim.Stats.record_waiting both 7e-3;
  Sim.Stats.record_energy a 1.0;
  Sim.Stats.record_energy b 2.5;
  Sim.Stats.record_energy both 3.5;
  Sim.Stats.merge_into ~into:a b;
  check_int "steps add" 2 (Sim.Stats.total_steps a);
  check_int "violations add" 1 (Sim.Stats.violation_steps a);
  check_float 1e-12 "peak is the max" 103.0 (Sim.Stats.peak_temperature a);
  check_float 1e-12 "waits merge" 4.5e-3 (Sim.Stats.mean_waiting a);
  check_float 1e-12 "max wait merges" 7e-3 (Sim.Stats.max_waiting a);
  check_float 1e-12 "energy adds" 3.5 (Sim.Stats.energy a);
  check_float 1e-12 "sketch merges (p100)" 7e-3
    (Sim.Stats.waiting_percentile a 1.0);
  check_bool "merged equals the single-stream recording" true
    (Sim.Stats.equal a both);
  let other = Sim.Stats.create ~n_cores:2 ~tmax:100.0 () in
  check_bool "config mismatch raises" true
    (raises_invalid (fun () -> Sim.Stats.merge_into ~into:a other));
  check_bool "self-merge raises" true
    (raises_invalid (fun () -> Sim.Stats.merge_into ~into:a a))

(* ------------------------------------------------------------------ *)
(* Fleet *)

let fleet_trace = lazy (Trace.generate ~seed:11L ~n_tasks:250 Mix.web)

let plain_chip ?t_initial () =
  let config = { Sim.Engine.default_config with t_initial } in
  Fleet.Chip.create ~config ~machine:(Lazy.force machine)
    ~controller:(Sim.Policy.fixed_frequency ~fmax:1e9 8e8)
    ~assignment:Sim.Policy.first_idle ()

let test_one_chip_matches_engine () =
  (* A one-chip fleet is the engine with extra steps removed: same
     state, same per-step operation order — the statistics must be
     bit-identical, not merely close. *)
  let trace = Lazy.force fleet_trace in
  let engine =
    Sim.Engine.run (Lazy.force machine)
      (Sim.Policy.fixed_frequency ~fmax:1e9 8e8)
      Sim.Policy.first_idle trace
  in
  let fleet =
    Fleet.Cluster.run
      ~config:{ Fleet.Cluster.default_config with n_chips = 1 }
      ~domains:1
      ~balancer:(Fleet.Balancer.round_robin ())
      ~chip:(fun _ -> plain_chip ())
      trace
  in
  check_int "all tasks routed" 250 fleet.Fleet.Cluster.routed;
  check_int "nothing held" 0 fleet.Fleet.Cluster.held;
  check_int "nothing unfinished" 0 fleet.Fleet.Cluster.unfinished;
  check_bool "stats bit-identical to the engine" true
    (Sim.Stats.equal engine.Sim.Engine.stats fleet.Fleet.Cluster.stats)

let run_fleet ~domains =
  Fleet.Cluster.run
    ~config:
      {
        Fleet.Cluster.default_config with
        n_chips = 6;
        thermal_penalty = 50.0;
      }
    ~domains
    ~balancer:(Fleet.Balancer.coolest_headroom ())
    ~chip:(fun i ->
      plain_chip ~t_initial:(45.0 +. (3.0 *. float_of_int i)) ())
    (Lazy.force fleet_trace)

let test_domain_count_invariance () =
  let r1 = run_fleet ~domains:1 in
  let r3 = run_fleet ~domains:3 in
  let r8 = run_fleet ~domains:8 in
  check_bool "1 vs 3 domains bit-identical" true
    (Sim.Stats.equal r1.Fleet.Cluster.stats r3.Fleet.Cluster.stats);
  check_bool "1 vs 8 domains bit-identical" true
    (Sim.Stats.equal r1.Fleet.Cluster.stats r8.Fleet.Cluster.stats);
  check_int "same routing (3 domains)" r1.Fleet.Cluster.routed
    r3.Fleet.Cluster.routed;
  check_int "same routing (8 domains)" r1.Fleet.Cluster.routed
    r8.Fleet.Cluster.routed;
  check_bool "per-chip violations identical" true
    (r1.Fleet.Cluster.chip_violations = r8.Fleet.Cluster.chip_violations)

let test_chip_fault_composition () =
  (* Chip-level faults inside a fleet run: wrapping one chip's
     controller must change that chip's (and only deterministically
     that) behaviour while the fleet machinery is untouched. *)
  let faulted_chip i =
    let controller = Sim.Policy.fixed_frequency ~fmax:1e9 8e8 in
    let controller =
      if i = 0 then
        Sim.Fault.wrap
          ~faults:[ Sim.Fault.quantized_actuator ~levels:[| 5e8 |] ]
          controller
      else controller
    in
    Fleet.Chip.create ~machine:(Lazy.force machine) ~controller
      ~assignment:Sim.Policy.first_idle ()
  in
  let config = { Fleet.Cluster.default_config with n_chips = 2 } in
  let balancer () = Fleet.Balancer.round_robin () in
  let trace = Lazy.force fleet_trace in
  let clean =
    Fleet.Cluster.run ~config ~domains:1 ~balancer:(balancer ())
      ~chip:(fun _ -> plain_chip ())
      trace
  in
  let faulted =
    Fleet.Cluster.run ~config ~domains:1 ~balancer:(balancer ())
      ~chip:faulted_chip trace
  in
  check_int "clean fleet finishes" 0 clean.Fleet.Cluster.unfinished;
  check_int "faulted fleet finishes" 0 faulted.Fleet.Cluster.unfinished;
  (* The quantized actuator floors chip 0 to half frequency: its tasks
     run longer, so the aggregate must differ. *)
  check_bool "fault changes the aggregate" false
    (Sim.Stats.equal clean.Fleet.Cluster.stats faulted.Fleet.Cluster.stats)

let test_take_queued () =
  let c = plain_chip () in
  Fleet.Chip.submit c ~arrival:0.0 ~work:1e-3;
  Fleet.Chip.submit c ~arrival:1.0 ~work:2e-3;
  Fleet.Chip.submit c ~arrival:2.0 ~work:3e-3;
  check_int "queued" 3 (Fleet.Chip.queued c);
  let taken = Fleet.Chip.take_queued c ~max:2 in
  check_int "took two" 2 (Array.length taken);
  check_bool "latest arrivals, ascending" true
    (taken = [| (1.0, 2e-3); (2.0, 3e-3) |]);
  check_int "one left" 1 (Fleet.Chip.queued c);
  check_int "submitted adjusted" 1 (Fleet.Chip.submitted c)

(* The heterogeneous rack: odd chips sit in a hot aisle (fixed power
   scaled up, so they idle near 87 C instead of 37 C), even chips in a
   cool one.  Under the fair-share split of round-robin the hot-aisle
   chips cross the threshold; the coolest-headroom balancer skews the
   stream toward the cool aisle and quarantines the hot one behind the
   guard band.  The shadow penalty matters here: without it one cool
   chip absorbs each whole window as a burst and overshoots where the
   steady fair share would not have. *)
let hot_aisle_chip i =
  let base = Lazy.force machine in
  let m =
    if i land 1 = 1 then
      Sim.Machine.make ~thermal:base.Sim.Machine.thermal
        ~core_nodes:base.Sim.Machine.core_nodes
        ~fixed_power:
          (Array.map (fun p -> p *. 6.0) base.Sim.Machine.fixed_power)
        ~fmax:1e9 ~core_pmax:4.0 ()
    else base
  in
  Fleet.Chip.create ~machine:m
    ~controller:(Sim.Policy.workload_following ~fmax:1e9)
    ~assignment:Sim.Policy.first_idle ()

let test_balancer_beats_round_robin () =
  (* Sized so the whole stream fits on 4 chips: generated for 10 cores
     against the fleet's 32, i.e. ~28% fleet duty. *)
  let trace = Trace.generate ~n_cores:10 ~seed:23L ~n_tasks:4000 Mix.compute_intensive in
  let config =
    {
      Fleet.Cluster.default_config with
      n_chips = 4;
      migrate = true;
      thermal_penalty = 60.0;
    }
  in
  let rr =
    Fleet.Cluster.run ~config ~domains:2
      ~balancer:(Fleet.Balancer.round_robin ()) ~chip:hot_aisle_chip trace
  in
  let cool =
    Fleet.Cluster.run ~config ~domains:2
      ~balancer:(Fleet.Balancer.coolest_headroom ~guard:5.0 ())
      ~chip:hot_aisle_chip trace
  in
  check_int "round-robin finishes" 0 rr.Fleet.Cluster.unfinished;
  check_int "coolest finishes" 0 cool.Fleet.Cluster.unfinished;
  check_bool "coolest-headroom strictly reduces violating steps" true
    (Sim.Stats.violation_steps cool.Fleet.Cluster.stats
    < Sim.Stats.violation_steps rr.Fleet.Cluster.stats)

let () =
  Alcotest.run "fleet"
    [
      ( "trace-windows",
        [
          QCheck_alcotest.to_alcotest prop_windows_partition;
          Alcotest.test_case "horizon task kept" `Quick
            test_windows_last_task_kept;
          Alcotest.test_case "horizon after sort" `Quick
            test_generate_horizon_after_sort;
          Alcotest.test_case "degenerate statistics" `Quick
            test_statistics_degenerate;
        ] );
      ( "stats",
        [
          Alcotest.test_case "waiting clamp" `Quick test_record_waiting_clamp;
          Alcotest.test_case "waiting percentile" `Quick
            test_waiting_percentile;
          Alcotest.test_case "merge" `Quick test_merge_into;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "one chip = engine" `Quick
            test_one_chip_matches_engine;
          Alcotest.test_case "domain-count invariant" `Quick
            test_domain_count_invariance;
          Alcotest.test_case "chip-level faults compose" `Quick
            test_chip_fault_composition;
          Alcotest.test_case "take_queued" `Quick test_take_queued;
          Alcotest.test_case "coolest beats round-robin" `Quick
            test_balancer_beats_round_robin;
        ] );
    ]
