(* Tests for the Pro-Temp core: specs, convex model construction and
   solving, the offline sweep, the table, the online controllers, and
   the headline never-exceeds-tmax guarantee as a property. *)

open Linalg

let check_bool = Alcotest.(check bool)
let check_float tol = Alcotest.(check (float tol))
let check_int = Alcotest.(check int)

let machine = lazy (Sim.Machine.niagara ())

(* A cheaper spec for solver-bound unit tests: same window, thermal
   cap enforced every 4th step (the audit below confirms the guarantee
   still holds at full resolution). *)
let fast_spec = { Protemp.Spec.default with Protemp.Spec.constraint_stride = 4 }

(* ------------------------------------------------------------------ *)
(* Spec *)

let test_spec_validation () =
  let bad s =
    match Protemp.Spec.validate s with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  check_bool "negative tmax" true
    (bad { Protemp.Spec.default with Protemp.Spec.tmax = -1.0 });
  check_bool "zero stride" true
    (bad { Protemp.Spec.default with Protemp.Spec.constraint_stride = 0 });
  check_bool "default ok" true
    (match Protemp.Spec.validate Protemp.Spec.default with
    | () -> true
    | exception Invalid_argument _ -> false)

let test_spec_with_gradient () =
  let s = Protemp.Spec.with_gradient ~weight:2.0 Protemp.Spec.default in
  match s.Protemp.Spec.gradient with
  | Some g -> check_float 1e-12 "weight" 2.0 g.Protemp.Spec.weight
  | None -> Alcotest.fail "gradient not set"

(* ------------------------------------------------------------------ *)
(* Table (synthetic; no solver involved) *)

let freqs v = Protemp.Table.Frequencies (Vec.create 8 v)

let synthetic_table () =
  Protemp.Table.make ~tstarts:[| 50.0; 80.0; 100.0 |]
    ~ftargets:[| 2e8; 5e8; 8e8 |]
    [|
      [| freqs 2e8; freqs 5e8; freqs 8e8 |];
      [| freqs 2e8; freqs 5e8; Protemp.Table.Infeasible |];
      [| freqs 2e8; Protemp.Table.Infeasible; Protemp.Table.Infeasible |];
    |]

let test_table_validation () =
  check_bool "unsorted tstarts" true
    (match
       Protemp.Table.make ~tstarts:[| 80.0; 50.0 |] ~ftargets:[| 1e8 |]
         [| [| freqs 1e8 |]; [| freqs 1e8 |] |]
     with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "ragged" true
    (match
       Protemp.Table.make ~tstarts:[| 50.0 |] ~ftargets:[| 1e8; 2e8 |]
         [| [| freqs 1e8 |] |]
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_table_row_selection () =
  let t = synthetic_table () in
  check_bool "below first" true
    (Protemp.Table.row_for_temperature t 30.0 = Some 0);
  check_bool "exact" true (Protemp.Table.row_for_temperature t 80.0 = Some 1);
  check_bool "between" true (Protemp.Table.row_for_temperature t 81.0 = Some 2);
  check_bool "too hot" true (Protemp.Table.row_for_temperature t 101.0 = None)

let test_table_lookup_rounds_up_frequency () =
  let t = synthetic_table () in
  (* required 3e8 at a cool chip: smallest column >= required is 5e8 *)
  match Protemp.Table.lookup t ~temperature:40.0 ~required:3e8 with
  | Some f -> check_float 1.0 "rounded up" 5e8 f.(0)
  | None -> Alcotest.fail "expected entry"

let test_table_lookup_falls_back_down () =
  let t = synthetic_table () in
  (* hot row 100: the 5e8 and 8e8 columns are infeasible; fall back to
     the next lower feasible point, 2e8. *)
  match Protemp.Table.lookup t ~temperature:95.0 ~required:7e8 with
  | Some f -> check_float 1.0 "fell back" 2e8 f.(0)
  | None -> Alcotest.fail "expected fallback entry"

let test_table_lookup_none_when_too_hot () =
  let t = synthetic_table () in
  check_bool "none" true
    (Protemp.Table.lookup t ~temperature:120.0 ~required:1e8 = None)

(* The binary searches behind row/column selection, pinned against the
   obvious linear scans on randomized axes. *)
let test_table_binary_search_matches_linear () =
  let st = Random.State.make [| 0x7ab1e |] in
  for _ = 1 to 50 do
    let rows = 1 + Random.State.int st 7 in
    let cols = 1 + Random.State.int st 7 in
    let tstarts =
      Array.init rows (fun i -> 30.0 +. (10.0 *. float_of_int i))
    in
    let ftargets =
      Array.init cols (fun j -> 1e8 +. (1e8 *. float_of_int j))
    in
    let t =
      Protemp.Table.make ~tstarts ~ftargets
        (Array.make_matrix rows cols (freqs 1e8))
    in
    for _ = 1 to 40 do
      let temperature = 20.0 +. Random.State.float st 100.0 in
      let required = Random.State.float st 1e9 in
      let linear_row =
        let r = ref (-1) in
        for i = rows - 1 downto 0 do
          if tstarts.(i) >= temperature then r := i
        done;
        !r
      in
      let linear_col =
        let c = ref (cols - 1) in
        for j = cols - 1 downto 0 do
          if ftargets.(j) >= required then c := j
        done;
        !c
      in
      check_int "row_index" linear_row (Protemp.Table.row_index t temperature);
      check_int "col_start" linear_col (Protemp.Table.col_start t required)
    done
  done

(* lookup_into is lookup without the copy: same hit/miss decisions,
   same vector, written into the caller's buffer. *)
let test_table_lookup_into_agrees () =
  let t = synthetic_table () in
  let buf = Vec.zeros 8 in
  for it = 0 to 299 do
    let temperature = 20.0 +. (float_of_int (it mod 30) *. 3.7) in
    let required = float_of_int (it mod 12) *. 0.8e8 in
    match Protemp.Table.lookup t ~temperature ~required with
    | Some f ->
        check_bool "hit agrees" true
          (Protemp.Table.lookup_into t ~temperature ~required ~into:buf
          && Vec.approx_equal ~tol:0.0 f buf)
    | None ->
        check_bool "miss agrees" true
          (not (Protemp.Table.lookup_into t ~temperature ~required ~into:buf))
  done;
  check_bool "core_count" true (Protemp.Table.core_count t = Some 8)

let test_table_frontier () =
  let t = synthetic_table () in
  let frontier = Protemp.Table.feasible_frontier t in
  check_bool "row 0" true (frontier.(0) = (50.0, Some 8e8));
  check_bool "row 1" true (frontier.(1) = (80.0, Some 5e8));
  check_bool "row 2" true (frontier.(2) = (100.0, Some 2e8))

let test_table_csv_roundtrip () =
  let t = synthetic_table () in
  let t' = Protemp.Table.of_csv (Protemp.Table.to_csv t) in
  check_bool "axes" true
    (Protemp.Table.tstarts t = Protemp.Table.tstarts t'
    && Protemp.Table.ftargets t = Protemp.Table.ftargets t');
  for i = 0 to 2 do
    for j = 0 to 2 do
      let same =
        match (Protemp.Table.cell t i j, Protemp.Table.cell t' i j) with
        | Protemp.Table.Infeasible, Protemp.Table.Infeasible -> true
        | Protemp.Table.Frequencies a, Protemp.Table.Frequencies b ->
            Vec.approx_equal ~tol:1.0 a b
        | Protemp.Table.Infeasible, Protemp.Table.Frequencies _
        | Protemp.Table.Frequencies _, Protemp.Table.Infeasible -> false
      in
      check_bool "cell" true same
    done
  done

let test_table_csv_rejects_duplicates () =
  let t = synthetic_table () in
  let csv = Protemp.Table.to_csv t in
  let first_line =
    List.hd (String.split_on_char '\n' csv)
  in
  check_bool "duplicate cell rejected" true
    (match Protemp.Table.of_csv (csv ^ first_line ^ "\n") with
    | _ -> false
    | exception Failure _ -> true)

let test_table_make_validates_cell_dimensions () =
  let bad cells =
    match
      Protemp.Table.make ~tstarts:[| 50.0; 80.0 |] ~ftargets:[| 1e8 |] cells
    with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  check_bool "mismatched core counts" true
    (bad
       [|
         [| Protemp.Table.Frequencies (Vec.create 8 1e8) |];
         [| Protemp.Table.Frequencies (Vec.create 4 1e8) |];
       |]);
  check_bool "empty frequency vector" true
    (bad
       [|
         [| Protemp.Table.Frequencies [||] |];
         [| Protemp.Table.Infeasible |];
       |]);
  check_bool "consistent dimensions accepted" true
    (not
       (bad
          [|
            [| Protemp.Table.Frequencies (Vec.create 8 1e8) |];
            [| Protemp.Table.Infeasible |];
          |]))

(* CSV round-trip as a property, over random tables whose axis values
   differ below the old %.6g print precision — exactly the tables the
   rounded format used to corrupt by merging rows on re-read. *)
let prop_table_csv_roundtrip_exact =
  QCheck2.Test.make ~name:"table: CSV round-trips exactly" ~count:60
    QCheck2.Gen.(
      let* rows = int_range 1 4 in
      let* cols = int_range 1 4 in
      let* n_cores = int_range 1 4 in
      let* t0 = float_range 20.0 90.0 in
      let* tincs =
        list_repeat (rows - 1) (oneofl [ 1.0; 3e-7; 1e-9; 0.1 +. 0.2 ])
      in
      let* f0 = float_range 1e8 5e8 in
      let* fincs = list_repeat (cols - 1) (oneofl [ 1e8; 0.25; 1e-3 ]) in
      let* cells =
        list_repeat (rows * cols)
          (oneof
             [
               return None;
               map Option.some (list_repeat n_cores (float_range 0.0 1e9));
             ])
      in
      return (t0, tincs, f0, fincs, cells))
    (fun (t0, tincs, f0, fincs, cells) ->
      let cumsum x0 incs =
        Array.of_list
          (List.rev
             (List.fold_left
                (fun acc d -> (List.hd acc +. d) :: acc)
                [ x0 ] incs))
      in
      let tstarts = cumsum t0 tincs and ftargets = cumsum f0 fincs in
      let cols = Array.length ftargets in
      let grid =
        Array.init (Array.length tstarts) (fun i ->
            Array.init cols (fun j ->
                match List.nth cells ((i * cols) + j) with
                | None -> Protemp.Table.Infeasible
                | Some vs -> Protemp.Table.Frequencies (Array.of_list vs)))
      in
      let t = Protemp.Table.make ~tstarts ~ftargets grid in
      let t' = Protemp.Table.of_csv (Protemp.Table.to_csv t) in
      Protemp.Table.tstarts t = Protemp.Table.tstarts t'
      && Protemp.Table.ftargets t = Protemp.Table.ftargets t'
      && Array.for_all
           (fun i ->
             Array.for_all
               (fun j ->
                 (* Structural equality: exact floats, no tolerance. *)
                 Protemp.Table.cell t i j = Protemp.Table.cell t' i j)
               (Array.init cols (fun j -> j)))
           (Array.init (Array.length tstarts) (fun i -> i)))

(* ------------------------------------------------------------------ *)
(* Model *)

let test_model_easy_instance () =
  (* Cool start, modest target: thermal slack everywhere, so the
     optimum is the uniform split at exactly the target and the power
     follows Eq. 2. *)
  let m = Lazy.force machine in
  let built = Protemp.Model.build ~machine:m ~spec:fast_spec ~tstart:40.0
      ~ftarget:4e8 in
  match Protemp.Model.solve built with
  | Protemp.Model.Infeasible -> Alcotest.fail "expected feasible"
  | Protemp.Model.Feasible s ->
      check_float 2e6 "mean at target" 4e8 (Vec.mean s.Protemp.Model.frequencies);
      (* p = 8 * 4W * 0.4^2 = 5.12 W *)
      check_float 0.05 "power law" 5.12 s.Protemp.Model.total_power;
      check_bool "peak within cap" true
        (Protemp.Model.predicted_peak built s.Protemp.Model.frequencies
        <= fast_spec.Protemp.Spec.tmax +. 1e-6)

let test_model_infeasible_when_too_hot () =
  let m = Lazy.force machine in
  let built = Protemp.Model.build ~machine:m ~spec:fast_spec ~tstart:105.0
      ~ftarget:1e8 in
  check_bool "infeasible" true (Protemp.Model.solve built = Protemp.Model.Infeasible)

let test_model_throughput_satisfied () =
  let m = Lazy.force machine in
  let built = Protemp.Model.build ~machine:m ~spec:fast_spec ~tstart:70.0
      ~ftarget:7e8 in
  match Protemp.Model.solve built with
  | Protemp.Model.Infeasible -> Alcotest.fail "expected feasible"
  | Protemp.Model.Feasible s ->
      check_bool "throughput" true
        (Vec.sum s.Protemp.Model.frequencies >= 8.0 *. 7e8 -. 8e6)

let test_model_uniform_expands () =
  let m = Lazy.force machine in
  let spec = { fast_spec with Protemp.Spec.variant = Protemp.Spec.Uniform } in
  let built = Protemp.Model.build ~machine:m ~spec ~tstart:40.0 ~ftarget:3e8 in
  match Protemp.Model.solve built with
  | Protemp.Model.Infeasible -> Alcotest.fail "expected feasible"
  | Protemp.Model.Feasible s ->
      check_int "eight cores" 8 (Vec.dim s.Protemp.Model.frequencies);
      let f0 = s.Protemp.Model.frequencies.(0) in
      check_bool "all equal" true
        (Array.for_all (fun f -> Float.abs (f -. f0) < 1.0)
           s.Protemp.Model.frequencies)

let test_model_frontier_beats_uniform () =
  (* Section 5.3: the variable assignment supports at least the
     uniform frontier, with the periphery cores at or above the middle
     ones. *)
  let m = Lazy.force machine in
  let var = Protemp.Model.build_frontier ~machine:m ~spec:fast_spec ~tstart:57.0 in
  let uni =
    Protemp.Model.build_frontier ~machine:m
      ~spec:{ fast_spec with Protemp.Spec.variant = Protemp.Spec.Uniform }
      ~tstart:57.0
  in
  match (Protemp.Model.solve_frontier var, Protemp.Model.solve_frontier uni) with
  | Protemp.Model.Feasible v, Protemp.Model.Feasible u ->
      let fv = Vec.mean v.Protemp.Model.frequencies in
      let fu = Vec.mean u.Protemp.Model.frequencies in
      check_bool (Printf.sprintf "variable %.0f >= uniform %.0f" fv fu) true
        (fv >= fu -. 1e6);
      (* periphery (P1 P4 P5 P8 = 0 3 4 7) at or above middles *)
      let f = v.Protemp.Model.frequencies in
      check_bool "P1 >= P2" true (f.(0) >= f.(1) -. 1e5);
      check_bool "P4 >= P3" true (f.(3) >= f.(2) -. 1e5)
  | _, _ -> Alcotest.fail "expected both frontiers feasible"

let test_model_gradient_variant_reports_spread () =
  let m = Lazy.force machine in
  let spec = Protemp.Spec.with_gradient ~weight:0.5 fast_spec in
  let built = Protemp.Model.build ~machine:m ~spec ~tstart:50.0 ~ftarget:5e8 in
  match Protemp.Model.solve built with
  | Protemp.Model.Infeasible -> Alcotest.fail "expected feasible"
  | Protemp.Model.Feasible s -> (
      match s.Protemp.Model.gradient_spread with
      | Some spread -> check_bool "positive and bounded" true
          (spread >= 0.0 && spread < 100.0)
      | None -> Alcotest.fail "spread missing")

let test_model_rejects_bad_ftarget () =
  let m = Lazy.force machine in
  check_bool "too high" true
    (match
       Protemp.Model.build ~machine:m ~spec:fast_spec ~tstart:40.0
         ~ftarget:2e9
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Offline *)

let small_table =
  lazy
    (Protemp.Offline.sweep ~machine:(Lazy.force machine) ~spec:fast_spec
       ~tstarts:[| 40.0; 70.0; 100.0 |]
       ~ftargets:[| 3e8; 6e8; 9e8 |]
       ())

let test_offline_sweep_shape () =
  let t = Lazy.force small_table in
  check_int "rows" 3 (Array.length (Protemp.Table.tstarts t));
  check_int "cols" 3 (Array.length (Protemp.Table.ftargets t));
  (* The cool rows support everything up to 900 MHz. *)
  check_bool "cool row feasible" true
    (match Protemp.Table.cell t 0 2 with
    | Protemp.Table.Frequencies _ -> true
    | Protemp.Table.Infeasible -> false)

let test_offline_monotone_infeasibility () =
  (* Once a column is infeasible in a row, all higher columns are. *)
  let t = Lazy.force small_table in
  Array.iteri
    (fun i _ ->
      let seen_infeasible = ref false in
      Array.iteri
        (fun j _ ->
          match Protemp.Table.cell t i j with
          | Protemp.Table.Infeasible -> seen_infeasible := true
          | Protemp.Table.Frequencies _ ->
              check_bool "no feasible after infeasible" false !seen_infeasible)
        (Protemp.Table.ftargets t))
    (Protemp.Table.tstarts t)

let test_offline_frontier_consistent_with_sweep () =
  let m = Lazy.force machine in
  match
    Protemp.Offline.max_feasible_ftarget ~machine:m ~spec:fast_spec
      ~tstart:70.0 ()
  with
  | None -> Alcotest.fail "expected a frontier"
  | Some f ->
      (* every feasible cell of the 70-degree row is below the
         frontier *)
      let t = Lazy.force small_table in
      Array.iteri
        (fun j ftarget ->
          match Protemp.Table.cell t 1 j with
          | Protemp.Table.Frequencies _ ->
              check_bool "cell below frontier" true (ftarget <= f +. 1e7)
          | Protemp.Table.Infeasible ->
              check_bool "cell above frontier" true (ftarget >= f -. 1e7))
        (Protemp.Table.ftargets t)

(* ------------------------------------------------------------------ *)
(* Controllers *)

let obs ~temp ~required =
  {
    Sim.Policy.time = 0.0;
    core_temperatures = Vec.create 8 temp;
    max_core_temperature = temp;
    required_frequency = required;
    core_fmax = Vec.create 8 1e9;
    utilizations = Vec.zeros 8;
    queue_length = 0;
    queued_work = 0.0;
  }

let test_controller_uses_table () =
  let c = Protemp.Controller.create ~table:(synthetic_table ()) in
  let f = c.Sim.Policy.decide (obs ~temp:40.0 ~required:3e8) in
  check_float 1.0 "table entry" 5e8 f.(0)

let test_controller_stops_when_too_hot () =
  let c = Protemp.Controller.create ~table:(synthetic_table ()) in
  let f = c.Sim.Policy.decide (obs ~temp:150.0 ~required:3e8) in
  check_float 1e-9 "stopped" 0.0 (Vec.norm_inf f)

let test_basic_dfs_lag () =
  let c = Protemp.Basic_dfs.create ~threshold:90.0 ~lag_periods:1 ~fmax:1e9 () in
  (* First epoch hot: no history yet, reacts to the current reading. *)
  let f1 = c.Sim.Policy.decide (obs ~temp:95.0 ~required:1e9) in
  check_float 1e-9 "first epoch shut" 0.0 f1.(0);
  (* Chip cools below threshold, but the lagged reading is still hot:
     the shutdown persists one extra window. *)
  let f2 = c.Sim.Policy.decide (obs ~temp:60.0 ~required:1e9) in
  check_float 1e-9 "lagged shutdown" 0.0 f2.(0);
  (* Now the lagged reading is the cool one: full speed resumes. *)
  let f3 = c.Sim.Policy.decide (obs ~temp:95.0 ~required:1e9) in
  check_float 1e-9 "resumes on stale cool reading" 1e9 f3.(0)

let test_basic_dfs_no_lag () =
  let c = Protemp.Basic_dfs.create ~threshold:90.0 ~lag_periods:0 ~fmax:1e9 () in
  let f = c.Sim.Policy.decide (obs ~temp:95.0 ~required:1e9) in
  check_float 1e-9 "instant shutdown" 0.0 f.(0);
  let f = c.Sim.Policy.decide (obs ~temp:60.0 ~required:5e8) in
  check_float 1e-9 "instant resume" 5e8 f.(0)

let test_no_tc_follows_demand () =
  let c = Protemp.No_tc.create ~fmax:1e9 in
  let f = c.Sim.Policy.decide (obs ~temp:150.0 ~required:7e8) in
  check_float 1e-9 "ignores temperature" 7e8 f.(0)

(* ------------------------------------------------------------------ *)
(* Guarantee *)

let test_guarantee_window_peak_cooling () =
  (* Zero frequency from a hot uniform start: the peak is the start. *)
  let m = Lazy.force machine in
  let peak =
    Protemp.Guarantee.window_peak ~machine:m ~dfs_period:0.1 ~tstart:95.0
      ~frequencies:(Vec.zeros 8)
  in
  check_float 1e-9 "peak is start" 95.0 peak

let test_guarantee_audit_table () =
  let m = Lazy.force machine in
  let audit =
    Protemp.Guarantee.audit_table ~machine:m ~spec:fast_spec
      (Lazy.force small_table)
  in
  check_bool "cells checked" true (audit.Protemp.Guarantee.cells_checked > 0);
  (* Every stored entry honours tmax at full thermal resolution, even
     though the model only constrained every 4th step. *)
  check_bool
    (Printf.sprintf "margin %.4f >= 0" audit.Protemp.Guarantee.worst_margin)
    true
    (audit.Protemp.Guarantee.worst_margin >= -1e-9)

(* ------------------------------------------------------------------ *)
(* Ladder (discrete DVFS) *)

let test_ladder_floor () =
  let l = Protemp.Ladder.make [ 2e8; 6e8; 1e9 ] in
  check_float 1.0 "between levels" 6e8 (Protemp.Ladder.floor l 7e8);
  check_float 1.0 "exact level" 6e8 (Protemp.Ladder.floor l 6e8);
  check_float 1.0 "above top" 1e9 (Protemp.Ladder.floor l 2e9);
  check_float 1.0 "below bottom is off" 0.0 (Protemp.Ladder.floor l 1e8)

let test_ladder_uniform () =
  let l = Protemp.Ladder.uniform ~fmax:1e9 ~levels:4 in
  check_bool "levels" true
    (Vec.approx_equal ~tol:1.0 (Protemp.Ladder.levels l)
       [| 2.5e8; 5e8; 7.5e8; 1e9 |])

let test_ladder_validation () =
  check_bool "empty" true
    (match Protemp.Ladder.make [] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "negative" true
    (match Protemp.Ladder.make [ -1.0 ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_ladder_quantize_table_preserves_guarantee () =
  let m = Lazy.force machine in
  let ladder = Protemp.Ladder.uniform ~fmax:1e9 ~levels:20 in
  let quantized =
    Protemp.Ladder.quantize_table ladder (Lazy.force small_table)
  in
  let levels = Protemp.Ladder.levels ladder in
  let on_ladder f = f = 0.0 || Array.exists (fun l -> l = f) levels in
  let ftargets = Protemp.Table.ftargets quantized in
  let any_feasible = ref false in
  (* Re-labelling contract: every stored cell is on the ladder and
     honours its (possibly demoted) column's throughput promise. *)
  Array.iteri
    (fun i _ ->
      Array.iteri
        (fun j target ->
          match Protemp.Table.cell quantized i j with
          | Protemp.Table.Infeasible -> ()
          | Protemp.Table.Frequencies f ->
              any_feasible := true;
              Array.iter
                (fun fq -> check_bool "value on ladder" true (on_ladder fq))
                f;
              let sum = Array.fold_left ( +. ) 0.0 f in
              let promised = float_of_int (Array.length f) *. target in
              check_bool "column throughput honoured" true
                (sum >= promised -. (1e-6 *. Float.max 1.0 promised)))
        ftargets)
    (Protemp.Table.tstarts quantized);
  check_bool "quantization kept some cells" true !any_feasible;
  (* Every stored vector is elementwise at most a vector certified for
     the same row, so the audit must still pass. *)
  let audit = Protemp.Guarantee.audit_table ~machine:m ~spec:fast_spec quantized in
  check_bool "audit" true (audit.Protemp.Guarantee.worst_margin >= -1e-9)

(* ------------------------------------------------------------------ *)
(* Online (MPC) controller *)

let test_online_keeps_guarantee () =
  let m = Lazy.force machine in
  let spec = { Protemp.Spec.default with Protemp.Spec.constraint_stride = 8 } in
  let online = Protemp.Online.create ~machine:m ~spec () in
  let trace = Workload.Trace.generate ~seed:808L ~n_tasks:1200 Workload.Mix.web in
  let r =
    Sim.Engine.run m (Protemp.Online.controller online) Sim.Policy.first_idle
      trace
  in
  check_int "zero violations" 0 (Sim.Stats.violation_steps r.Sim.Engine.stats);
  check_int "all tasks done" 0 r.Sim.Engine.unfinished;
  check_bool "solved every epoch" true (Protemp.Online.solves online > 0);
  let c = Protemp.Online.counts online in
  check_int "counts sum to solves"
    (Protemp.Online.solves online)
    (c.Protemp.Online.solved + c.Protemp.Online.fallbacks
   + c.Protemp.Online.stops)

(* Hand-crafted observations drive each stage of the degradation
   chain in turn: fresh solve, table fallback, safe stop. *)
let obs_at m temp required =
  let n = m.Sim.Machine.n_cores in
  {
    Sim.Policy.time = 0.0;
    core_temperatures = Vec.create n temp;
    max_core_temperature = temp;
    required_frequency = required;
    core_fmax = Vec.copy m.Sim.Machine.core_fmax;
    utilizations = Vec.create n 1.0;
    queue_length = n;
    queued_work = 1.0;
  }

let counts_testable =
  Alcotest.testable
    (fun fmt c ->
      Format.fprintf fmt "{solved=%d; fallbacks=%d; stops=%d}"
        c.Protemp.Online.solved c.Protemp.Online.fallbacks
        c.Protemp.Online.stops)
    ( = )

let test_online_degradation_chain () =
  let m = Lazy.force machine in
  let spec = { Protemp.Spec.default with Protemp.Spec.constraint_stride = 8 } in
  (* One certified low-frequency row just above the hot observation:
     at 1e8 the cores cool, so the window peak is the start value. *)
  let fallback =
    Protemp.Guarantee.uniform_table ~machine:m ~spec ~tstarts:[| 99.5 |]
      ~ftargets:[| 1e8 |] ()
  in
  (match Protemp.Table.cell fallback 0 0 with
  | Protemp.Table.Frequencies _ -> ()
  | Protemp.Table.Infeasible -> Alcotest.fail "fallback row not certified");
  let online = Protemp.Online.create ~fallback ~machine:m ~spec () in
  let probe, outcomes = Protemp.Online.outcome_probe online in
  ignore probe;
  let decide = (Protemp.Online.controller online).Sim.Policy.decide in
  (* Cool and modest: the fresh solve succeeds. *)
  let f = decide (obs_at m 45.0 2e8) in
  check_bool "solved answer is positive" true (Vec.max f > 0.0);
  Alcotest.check counts_testable "solve first"
    { Protemp.Online.solved = 1; fallbacks = 0; stops = 0 }
    (Protemp.Online.counts online);
  (* Nearly at the cap demanding fmax: infeasible, so the table's
     next-lower-feasible-column rule answers. *)
  let f = decide (obs_at m 99.0 1e9) in
  check_bool "fallback answers the table cell" true
    (Vec.max f <= 1e8 +. 1.0 && Vec.max f > 0.0);
  Alcotest.check counts_testable "then fall back"
    { Protemp.Online.solved = 1; fallbacks = 1; stops = 0 }
    (Protemp.Online.counts online);
  Alcotest.check counts_testable "probe sees the same outcomes"
    (Protemp.Online.counts online)
    (outcomes ());
  (* No fallback table: the chain ends in a safe stop. *)
  let bare = Protemp.Online.create ~machine:m ~spec () in
  let f = (Protemp.Online.controller bare).Sim.Policy.decide (obs_at m 99.0 1e9) in
  check_float 0.0 "stop vector" 0.0 (Vec.max f);
  Alcotest.check counts_testable "last resort stops"
    { Protemp.Online.solved = 0; fallbacks = 0; stops = 1 }
    (Protemp.Online.counts bare)

(* Golden zero-fault check: the hardened path (explicit margin 0.0,
   wrapped in an empty fault list) must reproduce the plain controller
   bit-for-bit — the guard band and fault layer cost nothing when off. *)
let test_online_zero_fault_bit_identical () =
  let m = Lazy.force machine in
  let spec = { Protemp.Spec.default with Protemp.Spec.constraint_stride = 8 } in
  let trace =
    Workload.Trace.generate ~seed:515L ~n_tasks:300 Workload.Mix.web
  in
  let run ctrl = Sim.Engine.run m ctrl Sim.Policy.first_idle trace in
  let plain =
    run (Protemp.Online.controller (Protemp.Online.create ~machine:m ~spec ()))
  in
  let hardened =
    run
      (Sim.Fault.wrap ~faults:[]
         (Protemp.Online.controller
            (Protemp.Online.create ~margin:0.0 ~machine:m ~spec ())))
  in
  check_bool "bit-identical stats" true
    (Sim.Stats.equal plain.Sim.Engine.stats hardened.Sim.Engine.stats);
  check_int "identical unfinished" plain.Sim.Engine.unfinished
    hardened.Sim.Engine.unfinished

let test_online_margin_validation () =
  let m = Lazy.force machine in
  let bad margin =
    match Protemp.Online.create ~margin ~machine:m ~spec:fast_spec () with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  check_bool "negative margin" true (bad (-1.0));
  check_bool "margin swallows the envelope" true
    (bad fast_spec.Protemp.Spec.tmax);
  check_bool "sane margin accepted" true (not (bad 5.0))

(* The headline property: Pro-Temp never exceeds tmax, on random
   traces. *)
let prop_never_exceeds_tmax =
  QCheck2.Test.make ~name:"pro-temp: zero violations on random traces"
    ~count:6
    QCheck2.Gen.(
      pair (int_range 0 1_000_000)
        (oneofl [ "web"; "multimedia"; "compute"; "mix" ]))
    (fun (seed, mix_name) ->
      let m = Lazy.force machine in
      let table = Lazy.force small_table in
      let trace =
        Workload.Trace.generate ~seed:(Int64.of_int seed) ~n_tasks:2000
          (Workload.Mix.by_name mix_name)
      in
      let controller = Protemp.Controller.create ~table in
      let r = Sim.Engine.run m controller Sim.Policy.first_idle trace in
      Sim.Stats.violation_steps r.Sim.Engine.stats = 0
      && Sim.Stats.peak_temperature r.Sim.Engine.stats
         <= fast_spec.Protemp.Spec.tmax)

(* And the contrast: under the same saturating load, the reactive
   baseline does violate. *)
(* The PR's acceptance property, end to end: a certified-but-unguarded
   table breaks the cap under every injected fault severity (stale
   observations plus bounded sensor noise), while the same table built
   with a 5 C guard band absorbs all of them — and with zero faults
   the two reproduce the guarantee exactly. *)
let test_guard_band_absorbs_faults () =
  let m = Lazy.force machine in
  let spec = Protemp.Spec.default in
  let tstarts = Array.init 74 (fun i -> 27.0 +. float_of_int i) in
  let ftargets = Array.init 9 (fun i -> float_of_int (i + 1) *. 1e8) in
  let table margin =
    Protemp.Guarantee.uniform_table ~machine:m ~spec ~margin ~tstarts
      ~ftargets ()
  in
  let trace =
    Workload.Trace.generate ~seed:7L ~n_tasks:2500
      Workload.Mix.compute_intensive
  in
  let severities = [| 0.0; 1.0; 2.0; 3.0 |] in
  let faults_of s =
    if s = 0.0 then []
    else
      [
        Sim.Fault.sensor_noise ~seed:1807L ~magnitude:2.0 ();
        Sim.Fault.stale_observation ~epochs:(int_of_float s);
      ]
  in
  let sweep tbl =
    Protemp.Guarantee.violations_under_faults ~machine:m
      ~controller:(fun () -> Protemp.Controller.create ~table:tbl)
      ~trace ~faults_of ~severities ()
  in
  let unguarded = sweep (table 0.0) in
  let guarded = sweep (table 5.0) in
  Array.iteri
    (fun i (u : Protemp.Guarantee.severity_point) ->
      let g = guarded.(i) in
      check_bool "steps audited" true
        (u.Protemp.Guarantee.thermal.Sim.Probe.audited_steps > 0);
      if u.Protemp.Guarantee.severity = 0.0 then
        check_int "zero faults, zero violations (unguarded)" 0
          u.Protemp.Guarantee.thermal.Sim.Probe.violating_steps
      else
        check_bool
          (Printf.sprintf "unguarded violates at severity %.0f"
             u.Protemp.Guarantee.severity)
          true
          (u.Protemp.Guarantee.thermal.Sim.Probe.violating_steps > 0);
      check_int
        (Printf.sprintf "guarded absorbs severity %.0f"
           g.Protemp.Guarantee.severity)
        0 g.Protemp.Guarantee.thermal.Sim.Probe.violating_steps)
    unguarded

let test_basic_dfs_violates_under_load () =
  let m = Lazy.force machine in
  let trace =
    Workload.Trace.generate ~seed:4242L ~n_tasks:6000
      Workload.Mix.compute_intensive
  in
  let basic = Protemp.Basic_dfs.create ~fmax:1e9 () in
  let r = Sim.Engine.run m basic Sim.Policy.first_idle trace in
  check_bool "violations happen" true
    (Sim.Stats.violation_steps r.Sim.Engine.stats > 0)

(* Lookup semantics on random synthetic tables: the result always
   comes from the covering row, and when the ideal column (smallest
   target at or above the requirement) is feasible, it is chosen. *)
let prop_table_lookup_semantics =
  QCheck2.Test.make ~name:"table: lookup picks the ideal feasible column"
    ~count:200
    QCheck2.Gen.(
      triple (int_range 0 1_000_000)
        (float_range 20.0 120.0)
        (float_range 0.0 1.1e9))
    (fun (seed, temperature, required) ->
      let st = Random.State.make [| seed |] in
      let tstarts = [| 40.0; 70.0; 100.0 |] in
      let ftargets = [| 2e8; 5e8; 8e8 |] in
      let cells =
        Array.map
          (fun _ ->
            Array.map
              (fun f ->
                if Random.State.bool st then
                  Protemp.Table.Frequencies (Vec.create 8 f)
                else Protemp.Table.Infeasible)
              ftargets)
          tstarts
      in
      let table = Protemp.Table.make ~tstarts ~ftargets cells in
      match Protemp.Table.lookup table ~temperature ~required with
      | None ->
          (* Legal only when the chip is hotter than every row, or
             every cell of the covering row at or below the ideal
             column is infeasible. *)
          temperature > 100.0
          ||
          let row = Option.get (Protemp.Table.row_for_temperature table temperature) in
          let ideal =
            let rec go j =
              if j < 2 && ftargets.(j) < required then go (j + 1) else j
            in
            go 0
          in
          Array.for_all
            (fun j -> cells.(row).(j) = Protemp.Table.Infeasible)
            (Array.init (ideal + 1) Fun.id)
      | Some f ->
          temperature <= 100.0
          &&
          let row = Option.get (Protemp.Table.row_for_temperature table temperature) in
          let ideal =
            let rec go j =
              if j < 2 && ftargets.(j) < required then go (j + 1) else j
            in
            go 0
          in
          (* the result is a feasible cell of the covering row at or
             below the ideal column, and the highest such one *)
          let rec highest j =
            if j < 0 then None
            else
              match cells.(row).(j) with
              | Protemp.Table.Frequencies g -> Some g
              | Protemp.Table.Infeasible -> highest (j - 1)
          in
          (match highest ideal with
          | Some g -> Vec.approx_equal ~tol:1.0 f g
          | None -> false))

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_never_exceeds_tmax;
      prop_table_lookup_semantics;
      prop_table_csv_roundtrip_exact;
    ]

let () =
  Alcotest.run "protemp"
    [
      ( "spec",
        [
          Alcotest.test_case "validation" `Quick test_spec_validation;
          Alcotest.test_case "with_gradient" `Quick test_spec_with_gradient;
        ] );
      ( "table",
        [
          Alcotest.test_case "validation" `Quick test_table_validation;
          Alcotest.test_case "row selection" `Quick test_table_row_selection;
          Alcotest.test_case "lookup rounds up" `Quick
            test_table_lookup_rounds_up_frequency;
          Alcotest.test_case "lookup falls back" `Quick
            test_table_lookup_falls_back_down;
          Alcotest.test_case "lookup too hot" `Quick
            test_table_lookup_none_when_too_hot;
          Alcotest.test_case "binary search vs linear" `Quick
            test_table_binary_search_matches_linear;
          Alcotest.test_case "lookup_into agrees" `Quick
            test_table_lookup_into_agrees;
          Alcotest.test_case "frontier" `Quick test_table_frontier;
          Alcotest.test_case "csv roundtrip" `Quick test_table_csv_roundtrip;
          Alcotest.test_case "csv rejects duplicates" `Quick
            test_table_csv_rejects_duplicates;
          Alcotest.test_case "cell dimension validation" `Quick
            test_table_make_validates_cell_dimensions;
        ] );
      ( "model",
        [
          Alcotest.test_case "easy instance" `Slow test_model_easy_instance;
          Alcotest.test_case "infeasible when too hot" `Slow
            test_model_infeasible_when_too_hot;
          Alcotest.test_case "throughput satisfied" `Slow
            test_model_throughput_satisfied;
          Alcotest.test_case "uniform expands" `Slow test_model_uniform_expands;
          Alcotest.test_case "frontier beats uniform" `Slow
            test_model_frontier_beats_uniform;
          Alcotest.test_case "gradient variant" `Slow
            test_model_gradient_variant_reports_spread;
          Alcotest.test_case "rejects bad ftarget" `Quick
            test_model_rejects_bad_ftarget;
        ] );
      ( "offline",
        [
          Alcotest.test_case "sweep shape" `Slow test_offline_sweep_shape;
          Alcotest.test_case "monotone infeasibility" `Slow
            test_offline_monotone_infeasibility;
          Alcotest.test_case "frontier vs sweep" `Slow
            test_offline_frontier_consistent_with_sweep;
        ] );
      ( "controllers",
        [
          Alcotest.test_case "pro-temp uses table" `Quick
            test_controller_uses_table;
          Alcotest.test_case "pro-temp stops when too hot" `Quick
            test_controller_stops_when_too_hot;
          Alcotest.test_case "basic-dfs lag" `Quick test_basic_dfs_lag;
          Alcotest.test_case "basic-dfs no lag" `Quick test_basic_dfs_no_lag;
          Alcotest.test_case "no-tc follows demand" `Quick
            test_no_tc_follows_demand;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "floor" `Quick test_ladder_floor;
          Alcotest.test_case "uniform" `Quick test_ladder_uniform;
          Alcotest.test_case "validation" `Quick test_ladder_validation;
          Alcotest.test_case "quantized table keeps guarantee" `Slow
            test_ladder_quantize_table_preserves_guarantee;
        ] );
      ( "online",
        [
          Alcotest.test_case "keeps the guarantee" `Slow
            test_online_keeps_guarantee;
          Alcotest.test_case "degradation chain" `Quick
            test_online_degradation_chain;
          Alcotest.test_case "zero-fault bit identical" `Slow
            test_online_zero_fault_bit_identical;
          Alcotest.test_case "margin validation" `Quick
            test_online_margin_validation;
        ] );
      ( "guarantee",
        [
          Alcotest.test_case "window peak cooling" `Quick
            test_guarantee_window_peak_cooling;
          Alcotest.test_case "table audit" `Slow test_guarantee_audit_table;
          Alcotest.test_case "guard band absorbs faults" `Slow
            test_guard_band_absorbs_faults;
          Alcotest.test_case "basic-dfs violates" `Slow
            test_basic_dfs_violates_under_load;
        ] );
      ("properties", props);
    ]
