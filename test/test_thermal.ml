(* Tests for the thermal substrate: floorplan geometry, RC network
   extraction, transient integration (Euler vs exact), the HotSpot-
   style validation model, calibration and the Niagara platform. *)

open Linalg
open Thermal

let check_bool = Alcotest.(check bool)
let check_float tol = Alcotest.(check (float tol))
let check_int = Alcotest.(check int)

(* A simple 2x1 two-block floorplan for hand-checkable cases. *)
let two_block () =
  Floorplan.make
    [
      { Floorplan.name = "A"; kind = Floorplan.Core; x = 0.0; y = 0.0;
        width = 2e-3; height = 2e-3 };
      { Floorplan.name = "B"; kind = Floorplan.Cache; x = 2e-3; y = 0.0;
        width = 2e-3; height = 2e-3 };
    ]

(* ------------------------------------------------------------------ *)
(* Floorplan *)

let test_floorplan_basic () =
  let fp = two_block () in
  check_int "size" 2 (Floorplan.size fp);
  check_int "index" 1 (Floorplan.index_of fp "B");
  check_float 1e-12 "area" 4e-6 (Floorplan.area (Floorplan.block_of fp 0));
  check_float 1e-12 "total area" 8e-6 (Floorplan.total_area fp);
  let xmin, ymin, xmax, ymax = Floorplan.bounding_box fp in
  check_float 1e-12 "xmin" 0.0 xmin;
  check_float 1e-12 "ymin" 0.0 ymin;
  check_float 1e-12 "xmax" 4e-3 xmax;
  check_float 1e-12 "ymax" 2e-3 ymax

let test_floorplan_shared_edge () =
  let fp = two_block () in
  let a = Floorplan.block_of fp 0 and b = Floorplan.block_of fp 1 in
  check_float 1e-12 "shared edge" 2e-3 (Floorplan.shared_edge a b);
  check_float 1e-12 "symmetric" 2e-3 (Floorplan.shared_edge b a);
  (* Corner contact only: zero shared edge. *)
  let c =
    { Floorplan.name = "C"; kind = Floorplan.Other; x = 4e-3; y = 2e-3;
      width = 1e-3; height = 1e-3 }
  in
  check_float 1e-12 "corner" 0.0 (Floorplan.shared_edge b c)

let test_floorplan_neighbours () =
  let fp = two_block () in
  (match Floorplan.neighbours fp 0 with
  | [ (1, len) ] -> check_float 1e-12 "len" 2e-3 len
  | _ -> Alcotest.fail "expected exactly one neighbour");
  check_bool "cores" true (Floorplan.cores fp = [| 0 |])

let test_floorplan_rejects_overlap () =
  check_bool "overlap rejected" true
    (match
       Floorplan.make
         [
           { Floorplan.name = "A"; kind = Floorplan.Core; x = 0.0; y = 0.0;
             width = 2e-3; height = 2e-3 };
           { Floorplan.name = "B"; kind = Floorplan.Core; x = 1e-3; y = 0.0;
             width = 2e-3; height = 2e-3 };
         ]
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_floorplan_rejects_duplicates () =
  check_bool "duplicate name rejected" true
    (match
       Floorplan.make
         [
           { Floorplan.name = "A"; kind = Floorplan.Core; x = 0.0; y = 0.0;
             width = 1e-3; height = 1e-3 };
           { Floorplan.name = "A"; kind = Floorplan.Core; x = 2e-3; y = 0.0;
             width = 1e-3; height = 1e-3 };
         ]
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Rc_model *)

let test_rc_single_block_steady () =
  (* One isolated block: steady T = Ta + P / (h A). *)
  let fp =
    Floorplan.make
      [
        { Floorplan.name = "A"; kind = Floorplan.Core; x = 0.0; y = 0.0;
          width = 2e-3; height = 2e-3 };
      ]
  in
  let prm = Rc_model.default_params in
  let m = Rc_model.build ~params:prm fp in
  let p = 2.0 in
  let t = Rc_model.steady_state m [| p |] in
  let expect =
    prm.Rc_model.ambient
    +. (p /. (prm.Rc_model.vertical_conductance_per_area *. 4e-6))
  in
  check_float 1e-6 "steady" expect t.(0)

let test_rc_zero_power_is_ambient () =
  let m = Rc_model.build (two_block ()) in
  let t = Rc_model.steady_state m [| 0.0; 0.0 |] in
  check_float 1e-9 "ambient A" 27.0 t.(0);
  check_float 1e-9 "ambient B" 27.0 t.(1)

let test_rc_heat_flows_to_neighbour () =
  (* Power only block A: both blocks end above ambient, A hotter. *)
  let m = Rc_model.build (two_block ()) in
  let t = Rc_model.steady_state m [| 1.0; 0.0 |] in
  check_bool "A above ambient" true (t.(0) > 27.0);
  check_bool "B above ambient" true (t.(1) > 27.0);
  check_bool "A hotter than B" true (t.(0) > t.(1))

let test_rc_discretize_matches_steady () =
  let m = Rc_model.build (two_block ()) in
  let dt = 0.5 *. Rc_model.max_monotone_dt m in
  let d = Rc_model.discretize m ~dt in
  let p = [| 1.5; 0.3 |] in
  check_bool "fixed points agree" true
    (Vec.approx_equal ~tol:1e-6
       (Rc_model.discrete_steady_state d p)
       (Rc_model.steady_state m p))

let test_rc_discretize_rejects_large_dt () =
  let m = Rc_model.build (two_block ()) in
  let dt = 2.0 *. Rc_model.max_monotone_dt m in
  check_bool "rejected" true
    (match Rc_model.discretize m ~dt with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_rc_step_matrix_nonnegative () =
  let m = Rc_model.build (two_block ()) in
  let d = Rc_model.discretize m ~dt:(Rc_model.max_monotone_dt m) in
  let a = d.Rc_model.step in
  let ok = ref true in
  for i = 0 to Mat.rows a - 1 do
    for j = 0 to Mat.cols a - 1 do
      if Mat.get a i j < -1e-12 then ok := false
    done
  done;
  check_bool "nonnegative" true !ok

let test_rc_conductance_symmetric () =
  let m = Rc_model.build (two_block ()) in
  check_float 1e-12 "symmetric"
    (Rc_model.conductance m 0 1)
    (Rc_model.conductance m 1 0);
  check_bool "positive" true (Rc_model.conductance m 0 1 > 0.0)

(* The monotonicity lemma behind the Pro-Temp guarantee: raising any
   initial temperature or any power never lowers any later
   temperature. *)
let test_rc_monotone_in_initial_condition () =
  let m = Rc_model.build (two_block ()) in
  let d = Rc_model.discretize m ~dt:(0.9 *. Rc_model.max_monotone_dt m) in
  let p = [| 1.0; 0.5 |] in
  let lo = [| 40.0; 35.0 |] and hi = [| 45.0; 35.0 |] in
  let t_lo = ref (Vec.copy lo) and t_hi = ref (Vec.copy hi) in
  let ok = ref true in
  for _ = 1 to 200 do
    t_lo := Rc_model.step_temperature d !t_lo p;
    t_hi := Rc_model.step_temperature d !t_hi p;
    Array.iteri (fun i x -> if x > !t_hi.(i) +. 1e-12 then ok := false) !t_lo
  done;
  check_bool "monotone" true !ok

(* ------------------------------------------------------------------ *)
(* Transient *)

let test_transient_converges_to_steady () =
  let m = Rc_model.build (two_block ()) in
  let d = Rc_model.discretize m ~dt:(0.5 *. Rc_model.max_monotone_dt m) in
  let p = [| 1.0; 0.2 |] in
  let steady = Rc_model.steady_state m p in
  let traj =
    Transient.simulate_const d ~t0:(Vec.create 2 27.0) ~steps:5000 p
  in
  let final = Mat.row traj.Transient.temperatures 5000 in
  check_bool "converged" true (Vec.approx_equal ~tol:1e-3 final steady)

let test_transient_peak_and_series () =
  let m = Rc_model.build (two_block ()) in
  let d = Rc_model.discretize m ~dt:(0.5 *. Rc_model.max_monotone_dt m) in
  let traj =
    Transient.simulate_const d ~t0:[| 80.0; 27.0 |] ~steps:100 [| 0.0; 0.0 |]
  in
  (* No power: the peak is the initial hot node. *)
  check_float 1e-9 "peak" 80.0 (Transient.peak traj);
  let series = Transient.node_series traj 0 in
  check_int "series length" 101 (Vec.dim series);
  check_bool "cooling monotone" true
    (series.(100) < series.(50) && series.(50) < series.(0))

let test_exact_matches_euler_small_dt () =
  (* With a small step, Euler and the exact propagator agree. *)
  let m = Rc_model.build (two_block ()) in
  let dt = 0.01 *. Rc_model.max_monotone_dt m in
  let d = Rc_model.discretize m ~dt in
  let prop = Transient.exact_propagator m ~dt in
  let p = [| 1.0; 0.0 |] in
  let t0 = Vec.create 2 27.0 in
  let euler = Transient.simulate_const d ~t0 ~steps:500 p in
  let exact =
    Transient.exact_simulate prop ~t0 ~steps:500 ~power:(fun _ -> p)
  in
  let e_final = Mat.row euler.Transient.temperatures 500 in
  let x_final = Mat.row exact.Transient.temperatures 500 in
  check_bool "close" true (Vec.approx_equal ~tol:0.05 e_final x_final)

let test_exact_step_reaches_steady () =
  (* One huge exact step lands on the steady state. *)
  let m = Rc_model.build (two_block ()) in
  let p_nodes = [| 1.0; 0.2 |] in
  let steady = Rc_model.steady_state m p_nodes in
  let prop = Transient.exact_propagator m ~dt:1000.0 in
  let t = Transient.exact_step prop (Vec.create 2 27.0) p_nodes in
  check_bool "steady" true (Vec.approx_equal ~tol:1e-6 t steady)

let test_in_place_steps_match_allocating () =
  (* The buffer-reusing step paths are exactly the allocating ones. *)
  let m = Rc_model.build (two_block ()) in
  let p_nodes = [| 0.8; 0.3 |] in
  let t = [| 40.0; 35.0 |] in
  let prop = Transient.exact_propagator m ~dt:0.05 in
  let expected = Transient.exact_step prop t p_nodes in
  let dst = Vec.zeros 2 and scratch = Vec.zeros 2 in
  Transient.exact_step_into prop t p_nodes ~scratch ~dst;
  check_bool "exact step" true (Vec.approx_equal ~tol:0.0 expected dst);
  let d = Rc_model.discretize m ~dt:(0.5 *. Rc_model.max_monotone_dt m) in
  let expected = Rc_model.step_temperature d t p_nodes in
  Rc_model.step_temperature_into d t p_nodes ~dst;
  check_bool "euler step" true (Vec.approx_equal ~tol:0.0 expected dst)

(* ------------------------------------------------------------------ *)
(* Hotspot3l *)

let test_hotspot_layout () =
  let fp = two_block () in
  let m = Hotspot3l.build fp in
  check_int "size" 6 (Hotspot3l.size m);
  check_int "die node" 0 (Hotspot3l.die_node m 0);
  check_int "spreader node" 2 (Hotspot3l.spreader_node m 0);
  check_int "sink node" 4 (Hotspot3l.sink_node m 0)

let test_hotspot_zero_power_ambient () =
  let m = Hotspot3l.build (two_block ()) in
  let t = Hotspot3l.steady_state m [| 0.0; 0.0 |] in
  Array.iter (fun x -> check_float 1e-6 "ambient" 27.0 x) t

let test_hotspot_layer_ordering () =
  (* Heat flows die -> spreader -> sink: temperatures must decrease up
     the stack. *)
  let m = Hotspot3l.build (two_block ()) in
  let t = Hotspot3l.steady_state m [| 2.0; 0.5 |] in
  let die = t.(Hotspot3l.die_node m 0)
  and spr = t.(Hotspot3l.spreader_node m 0)
  and snk = t.(Hotspot3l.sink_node m 0) in
  check_bool "die hottest" true (die > spr && spr > snk && snk > 27.0)

let test_hotspot_vertical_chain_matches () =
  (* A single isolated block: the full model must agree with the
     tridiagonal vertical-chain solution. *)
  let fp =
    Floorplan.make
      [
        { Floorplan.name = "A"; kind = Floorplan.Core; x = 0.0; y = 0.0;
          width = 3e-3; height = 3e-3 };
      ]
  in
  let prm = Hotspot3l.default_params in
  let m = Hotspot3l.build ~params:prm fp in
  let t = Hotspot3l.die_steady_state m [| 2.0 |] in
  let chain = Hotspot3l.vertical_chain_check prm ~area:9e-6 ~power:2.0 in
  check_float 1e-6 "matches tridiagonal" chain t.(0)

let test_hotspot_cross_validates_rc () =
  (* The headline validation: Rc_model with the matched effective
     vertical conductance predicts die steady temperatures close to
     the 3-layer model on the Niagara floorplan at full power. *)
  let fp = Niagara.floorplan () in
  let hs_prm = Hotspot3l.default_params in
  let hs = Hotspot3l.build ~params:hs_prm fp in
  let rc_prm =
    {
      Rc_model.default_params with
      Rc_model.vertical_conductance_per_area =
        Hotspot3l.effective_vertical_conductance_per_area hs_prm;
    }
  in
  let rc = Rc_model.build ~params:rc_prm fp in
  let p =
    Niagara.power_vector fp
      ~core_power:(Vec.create Niagara.n_cores Niagara.core_pmax)
  in
  let t_hs = Hotspot3l.die_steady_state hs p in
  let t_rc = Rc_model.steady_state rc p in
  (* Compare temperature rises over ambient; the lumped model cannot
     capture spreader-level lateral smoothing exactly, so allow 25%. *)
  let max_rel = ref 0.0 in
  Array.iteri
    (fun i hs_t ->
      let rise_hs = hs_t -. 27.0 and rise_rc = t_rc.(i) -. 27.0 in
      max_rel :=
        Float.max !max_rel (Float.abs (rise_rc -. rise_hs) /. rise_hs))
    t_hs;
  check_bool
    (Printf.sprintf "within 25%% (got %.1f%%)" (100.0 *. !max_rel))
    true (!max_rel < 0.25)

(* ------------------------------------------------------------------ *)
(* Calibrate *)

let test_calibrate_hits_target () =
  let fp = Niagara.floorplan () in
  let power =
    Niagara.power_vector fp
      ~core_power:(Vec.create Niagara.n_cores Niagara.core_pmax)
  in
  let tuned =
    Calibrate.tune_vertical_conductance ~params:Rc_model.default_params
      ~floorplan:fp ~power 110.0
  in
  let m = Rc_model.build ~params:tuned fp in
  check_float 0.05 "peak" 110.0 (Vec.max (Rc_model.steady_state m power))

let test_calibrate_rejects_unreachable () =
  let fp = two_block () in
  check_bool "too hot rejected" true
    (match
       Calibrate.tune_vertical_conductance ~params:Rc_model.default_params
         ~floorplan:fp ~power:[| 0.0; 0.0 |] 500.0
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_fit_discrete_recovers_model () =
  (* Simulate the two-block model under varying power and identify the
     Eq. 1 coefficients back. *)
  let m = Rc_model.build (two_block ()) in
  let d = Rc_model.discretize m ~dt:(0.5 *. Rc_model.max_monotone_dt m) in
  let steps = 60 in
  let st = Random.State.make [| 99 |] in
  let powers =
    Mat.init steps 2 (fun _ _ -> Random.State.float st 2.0)
  in
  let traj =
    Transient.simulate d ~t0:[| 40.0; 30.0 |] ~steps ~power:(fun k ->
        Mat.row powers k)
  in
  let fit =
    Calibrate.fit_discrete ~temperatures:traj.Transient.temperatures ~powers
  in
  check_bool "A recovered" true
    (Mat.approx_equal ~tol:1e-6 fit.Calibrate.step d.Rc_model.step);
  check_bool "b recovered" true
    (Vec.approx_equal ~tol:1e-6 fit.Calibrate.injection d.Rc_model.injection);
  check_bool "c recovered" true
    (Vec.approx_equal ~tol:1e-4 fit.Calibrate.drive d.Rc_model.drive)

(* ------------------------------------------------------------------ *)
(* Niagara *)

let test_niagara_floorplan_shape () =
  let fp = Niagara.floorplan () in
  check_int "17 blocks" 17 (Floorplan.size fp);
  check_int "8 cores" 8 (Array.length (Floorplan.cores fp));
  (* The floorplan tiles the die completely. *)
  let xmin, ymin, xmax, ymax = Floorplan.bounding_box fp in
  check_float 1e-9 "tiles die" ((xmax -. xmin) *. (ymax -. ymin))
    (Floorplan.total_area fp)

let test_niagara_core_adjacency () =
  (* P2 is sandwiched: it has two core neighbours.  P1 has one. *)
  let fp = Niagara.floorplan () in
  let core_neighbour_count name =
    let i = Floorplan.index_of fp name in
    List.length
      (List.filter
         (fun (j, _) ->
           (Floorplan.block_of fp j).Floorplan.kind = Floorplan.Core)
         (Floorplan.neighbours fp i))
  in
  check_int "P1" 1 (core_neighbour_count "P1");
  check_int "P2" 2 (core_neighbour_count "P2");
  check_int "P3" 2 (core_neighbour_count "P3");
  check_int "P4" 1 (core_neighbour_count "P4");
  check_int "P6" 2 (core_neighbour_count "P6")

let test_niagara_calibrated_peak () =
  let fp = Niagara.floorplan () in
  let m = Niagara.model () in
  let p =
    Niagara.power_vector fp
      ~core_power:(Vec.create Niagara.n_cores Niagara.core_pmax)
  in
  check_float 0.1 "peak at full power" Niagara.target_peak
    (Vec.max (Rc_model.steady_state m p))

let test_niagara_power_law () =
  check_float 1e-9 "pmax at fmax" 4.0
    (Niagara.core_power_of_frequency Niagara.fmax);
  check_float 1e-9 "quadratic" 1.0
    (Niagara.core_power_of_frequency (0.5 *. Niagara.fmax));
  check_float 1e-9 "clamps negative" 0.0
    (Niagara.core_power_of_frequency (-1.0))

let test_niagara_middle_cores_hotter () =
  (* Uniform core power: the sandwiched cores (P2, P3, P6, P7) must
     run hotter at steady state than the row-end cores. *)
  let fp = Niagara.floorplan () in
  let m = Niagara.model () in
  let p = Niagara.power_vector fp ~core_power:(Vec.create 8 3.0) in
  let t = Rc_model.steady_state m p in
  let temp name = t.(Floorplan.index_of fp name) in
  check_bool "P2 > P1" true (temp "P2" > temp "P1");
  check_bool "P3 > P4" true (temp "P3" > temp "P4");
  check_bool "P6 > P5" true (temp "P6" > temp "P5");
  check_bool "P7 > P8" true (temp "P7" > temp "P8")

let test_niagara_dt_stable () =
  let m = Niagara.model () in
  check_bool "0.4 ms below monotone limit" true
    (Niagara.dt < Rc_model.max_monotone_dt m)

let test_niagara_fixed_power_share () =
  (* Non-core power ~ 30% of full core power, as the paper states. *)
  let fp = Niagara.floorplan () in
  let fixed = Vec.sum (Niagara.fixed_power fp) in
  let cores = float_of_int Niagara.n_cores *. Niagara.core_pmax in
  check_float 0.02 "share" 0.30 (fixed /. cores)

let test_grid_floorplan () =
  let fp = Floorplan.grid ~rows:3 ~cols:4 ~cell_width:1e-3 ~cell_height:1e-3 () in
  check_int "12 cells" 12 (Floorplan.size fp);
  (* an interior cell has 4 neighbours, a corner 2 *)
  let count name = List.length (Floorplan.neighbours fp (Floorplan.index_of fp name)) in
  check_int "interior" 4 (count "R1C1");
  check_int "corner" 2 (count "R0C0");
  check_int "edge" 3 (count "R0C1")

let test_sparse_steady_matches_dense () =
  (* On a 6x6 grid mesh, conjugate gradients on the sparse conductance
     matrix must agree with the dense LU solve. *)
  let fp = Floorplan.grid ~rows:6 ~cols:6 ~cell_width:1e-3 ~cell_height:1e-3 () in
  let m = Rc_model.build fp in
  let st = Random.State.make [| 5 |] in
  let p = Vec.init 36 (fun _ -> Random.State.float st 0.5) in
  let dense = Rc_model.steady_state m p in
  let sparse, iters = Rc_model.steady_state_cg m p in
  check_bool "agree" true (Vec.approx_equal ~tol:1e-6 dense sparse);
  check_bool "few iterations" true (iters <= 360)

(* ------------------------------------------------------------------ *)
(* Property tests *)

let prop_monotone_in_power =
  QCheck2.Test.make ~name:"rc: temperatures monotone in power" ~count:50
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let m = Rc_model.build (two_block ()) in
      let d = Rc_model.discretize m ~dt:(0.9 *. Rc_model.max_monotone_dt m) in
      let p_lo = Vec.init 2 (fun _ -> Random.State.float st 2.0) in
      let p_hi = Vec.init 2 (fun i -> p_lo.(i) +. Random.State.float st 1.0) in
      let t_lo = ref (Vec.create 2 27.0) and t_hi = ref (Vec.create 2 27.0) in
      let ok = ref true in
      for _ = 1 to 100 do
        t_lo := Rc_model.step_temperature d !t_lo p_lo;
        t_hi := Rc_model.step_temperature d !t_hi p_hi;
        Array.iteri
          (fun i x -> if x > !t_hi.(i) +. 1e-12 then ok := false)
          !t_lo
      done;
      !ok)

let prop_steady_above_ambient =
  QCheck2.Test.make ~name:"rc: steady state above ambient for p >= 0"
    ~count:50
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let m = Rc_model.build (two_block ()) in
      let p = Vec.init 2 (fun _ -> Random.State.float st 3.0) in
      let t = Rc_model.steady_state m p in
      Array.for_all (fun x -> x >= 27.0 -. 1e-9) t)

let prop_euler_bounded_by_steady =
  QCheck2.Test.make
    ~name:"rc: heating from ambient never overshoots the steady state"
    ~count:30
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let m = Rc_model.build (two_block ()) in
      let d = Rc_model.discretize m ~dt:(0.9 *. Rc_model.max_monotone_dt m) in
      let p = Vec.init 2 (fun _ -> Random.State.float st 3.0) in
      let steady = Rc_model.steady_state m p in
      let traj = Transient.simulate_const d ~t0:(Vec.create 2 27.0) ~steps:300 p in
      let ok = ref true in
      for k = 0 to 300 do
        for i = 0 to 1 do
          if Mat.get traj.Transient.temperatures k i > steady.(i) +. 1e-9 then
            ok := false
        done
      done;
      !ok)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_monotone_in_power; prop_steady_above_ambient;
      prop_euler_bounded_by_steady ]

let () =
  Alcotest.run "thermal"
    [
      ( "floorplan",
        [
          Alcotest.test_case "basic geometry" `Quick test_floorplan_basic;
          Alcotest.test_case "shared edges" `Quick test_floorplan_shared_edge;
          Alcotest.test_case "neighbours" `Quick test_floorplan_neighbours;
          Alcotest.test_case "rejects overlap" `Quick
            test_floorplan_rejects_overlap;
          Alcotest.test_case "rejects duplicates" `Quick
            test_floorplan_rejects_duplicates;
        ] );
      ( "rc_model",
        [
          Alcotest.test_case "single block steady" `Quick
            test_rc_single_block_steady;
          Alcotest.test_case "zero power is ambient" `Quick
            test_rc_zero_power_is_ambient;
          Alcotest.test_case "heat flows to neighbour" `Quick
            test_rc_heat_flows_to_neighbour;
          Alcotest.test_case "discrete fixed point" `Quick
            test_rc_discretize_matches_steady;
          Alcotest.test_case "rejects large dt" `Quick
            test_rc_discretize_rejects_large_dt;
          Alcotest.test_case "step matrix nonnegative" `Quick
            test_rc_step_matrix_nonnegative;
          Alcotest.test_case "conductance symmetric" `Quick
            test_rc_conductance_symmetric;
          Alcotest.test_case "monotone in initial condition" `Quick
            test_rc_monotone_in_initial_condition;
        ] );
      ( "transient",
        [
          Alcotest.test_case "converges to steady" `Quick
            test_transient_converges_to_steady;
          Alcotest.test_case "peak and series" `Quick
            test_transient_peak_and_series;
          Alcotest.test_case "exact matches euler" `Quick
            test_exact_matches_euler_small_dt;
          Alcotest.test_case "exact long step" `Quick
            test_exact_step_reaches_steady;
          Alcotest.test_case "in-place steps match" `Quick
            test_in_place_steps_match_allocating;
        ] );
      ( "hotspot3l",
        [
          Alcotest.test_case "layout" `Quick test_hotspot_layout;
          Alcotest.test_case "zero power ambient" `Quick
            test_hotspot_zero_power_ambient;
          Alcotest.test_case "layer ordering" `Quick
            test_hotspot_layer_ordering;
          Alcotest.test_case "vertical chain" `Quick
            test_hotspot_vertical_chain_matches;
          Alcotest.test_case "cross-validates rc model" `Quick
            test_hotspot_cross_validates_rc;
        ] );
      ( "calibrate",
        [
          Alcotest.test_case "hits target peak" `Quick
            test_calibrate_hits_target;
          Alcotest.test_case "rejects unreachable" `Quick
            test_calibrate_rejects_unreachable;
          Alcotest.test_case "identifies Eq.1 coefficients" `Quick
            test_fit_discrete_recovers_model;
        ] );
      ( "niagara",
        [
          Alcotest.test_case "floorplan shape" `Quick
            test_niagara_floorplan_shape;
          Alcotest.test_case "core adjacency" `Quick
            test_niagara_core_adjacency;
          Alcotest.test_case "calibrated peak" `Quick
            test_niagara_calibrated_peak;
          Alcotest.test_case "quadratic power law" `Quick
            test_niagara_power_law;
          Alcotest.test_case "middle cores hotter" `Quick
            test_niagara_middle_cores_hotter;
          Alcotest.test_case "dt stable" `Quick test_niagara_dt_stable;
          Alcotest.test_case "fixed power share" `Quick
            test_niagara_fixed_power_share;
        ] );
      ( "grid",
        [
          Alcotest.test_case "mesh construction" `Quick test_grid_floorplan;
          Alcotest.test_case "sparse steady state" `Quick
            test_sparse_steady_matches_dense;
        ] );
      ("properties", props);
    ]
