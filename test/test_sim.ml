(* Tests for the system simulator: machine description, policies,
   statistics and the engine's conservation invariants. *)

open Linalg

let check_bool = Alcotest.(check bool)
let check_float tol = Alcotest.(check (float tol))
let check_int = Alcotest.(check int)

let machine = lazy (Sim.Machine.niagara ())

(* ------------------------------------------------------------------ *)
(* Machine *)

let test_machine_shape () =
  let m = Lazy.force machine in
  check_int "cores" 8 m.Sim.Machine.n_cores;
  check_int "nodes" 17 m.Sim.Machine.n_nodes;
  check_float 1e-3 "fmax" 1e9 m.Sim.Machine.fmax;
  Array.iter
    (fun node -> check_float 1e-12 "no fixed power on cores" 0.0
        m.Sim.Machine.fixed_power.(node))
    m.Sim.Machine.core_nodes

let test_machine_core_power () =
  let m = Lazy.force machine in
  check_float 1e-9 "busy at fmax" 4.0
    (Sim.Machine.core_power m ~core:0 ~frequency:1e9 ~busy:true);
  check_float 1e-9 "busy at half" 1.0
    (Sim.Machine.core_power m ~core:0 ~frequency:5e8 ~busy:true);
  check_float 1e-9 "idle scales" (0.3 *. 1.0)
    (Sim.Machine.core_power m ~core:0 ~frequency:5e8 ~busy:false);
  check_float 1e-9 "negative clamps" 0.0
    (Sim.Machine.core_power m ~core:0 ~frequency:(-1.0) ~busy:true)

let test_machine_idle_never_exceeds_busy () =
  (* The invariant behind the Pro-Temp guarantee carrying over to the
     simulation: real power never exceeds the modeled all-busy power. *)
  let m = Lazy.force machine in
  List.iter
    (fun f ->
      check_bool "idle <= busy" true
        (Sim.Machine.core_power m ~core:0 ~frequency:f ~busy:false
        <= Sim.Machine.core_power m ~core:0 ~frequency:f ~busy:true +. 1e-12))
    [ 0.0; 1e8; 5e8; 9e8; 1e9 ]

let test_machine_power_vector () =
  let m = Lazy.force machine in
  let freqs = Vec.create 8 1e9 in
  let busy = Array.make 8 true in
  let p = Sim.Machine.power_vector m ~frequencies:freqs ~busy in
  check_float 1e-9 "total" (32.0 +. Vec.sum m.Sim.Machine.fixed_power) (Vec.sum p)

let test_machine_validation () =
  let m = Lazy.force machine in
  check_bool "bad idle_activity" true
    (match
       Sim.Machine.make ~idle_activity:1.5 ~thermal:m.Sim.Machine.thermal
         ~core_nodes:m.Sim.Machine.core_nodes
         ~fixed_power:m.Sim.Machine.fixed_power ~fmax:1e9 ~core_pmax:4.0 ()
     with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "bad core node" true
    (match
       Sim.Machine.make ~thermal:m.Sim.Machine.thermal ~core_nodes:[| 99 |]
         ~fixed_power:m.Sim.Machine.fixed_power ~fmax:1e9 ~core_pmax:4.0 ()
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Policy *)

let get_pick = function
  | Some c -> c
  | None -> Alcotest.fail "expected a dispatch decision"

let homogeneous_classes n = Array.make n 0

let test_first_idle_lowest () =
  let pick = Sim.Policy.first_idle.Sim.Policy.choose in
  check_int "lowest" 1
    (get_pick
       (pick ~idle:[ 3; 1; 5 ] ~core_classes:(homogeneous_classes 8)
          ~core_temperatures:(Vec.zeros 8)))

let test_coolest_first () =
  let temps = [| 90.0; 50.0; 70.0; 40.0; 95.0; 60.0; 55.0; 45.0 |] in
  let pick = Sim.Policy.coolest_first.Sim.Policy.choose in
  check_int "coolest among idle" 3
    (get_pick
       (pick ~idle:[ 0; 2; 3; 4 ] ~core_classes:(homogeneous_classes 8)
          ~core_temperatures:temps));
  check_int "coolest overall" 3
    (get_pick
       (pick
          ~idle:[ 0; 1; 2; 3; 4; 5; 6; 7 ]
          ~core_classes:(homogeneous_classes 8) ~core_temperatures:temps))

let test_cool_headroom_defers () =
  let temps = [| 91.0; 93.0; 89.0; 95.0 |] in
  let policy = Sim.Policy.cool_headroom ~threshold:90.0 in
  let pick = policy.Sim.Policy.choose in
  check_int "dispatches below threshold" 2
    (get_pick
       (pick ~idle:[ 0; 1; 2; 3 ] ~core_classes:(homogeneous_classes 4)
          ~core_temperatures:temps));
  check_bool "defers when all hot" true
    (pick ~idle:[ 0; 1; 3 ] ~core_classes:(homogeneous_classes 4)
       ~core_temperatures:temps
    = None)

let test_workload_following_clamps () =
  let c = Sim.Policy.workload_following ~fmax:1e9 in
  let obs required =
    {
      Sim.Policy.time = 0.0;
      core_temperatures = Vec.zeros 8;
      max_core_temperature = 0.0;
      required_frequency = required;
      core_fmax = Vec.create 8 1e9;
      utilizations = Vec.zeros 8;
      queue_length = 0;
      queued_work = 0.0;
    }
  in
  let f = c.Sim.Policy.decide (obs 5e8) in
  check_float 1e-3 "matches demand" 5e8 f.(0);
  let f = c.Sim.Policy.decide (obs 2e9) in
  check_float 1e-3 "clamped to fmax" 1e9 f.(0)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_bands_sum_to_one () =
  let s = Sim.Stats.create ~n_cores:2 ~tmax:100.0 () in
  Sim.Stats.record_step s ~dt:0.1 ~core_temperatures:[| 75.0; 85.0 |];
  Sim.Stats.record_step s ~dt:0.1 ~core_temperatures:[| 95.0; 105.0 |];
  let total =
    List.fold_left (fun acc (_, f) -> acc +. f) 0.0 (Sim.Stats.band_residency s)
  in
  check_float 1e-9 "sums to 1" 1.0 total;
  check_float 1e-9 "above fraction" 0.25 (Sim.Stats.time_above s);
  check_int "violating steps" 1 (Sim.Stats.violation_steps s);
  check_float 1e-9 "peak" 105.0 (Sim.Stats.peak_temperature s)

let test_stats_gradient () =
  let s = Sim.Stats.create ~n_cores:2 ~tmax:100.0 () in
  Sim.Stats.record_step s ~dt:0.1 ~core_temperatures:[| 80.0; 90.0 |];
  Sim.Stats.record_step s ~dt:0.1 ~core_temperatures:[| 80.0; 84.0 |];
  check_float 1e-9 "peak gradient" 10.0 (Sim.Stats.peak_gradient s);
  check_float 1e-9 "mean gradient" 7.0 (Sim.Stats.mean_gradient s)

let test_stats_waiting () =
  let s = Sim.Stats.create ~n_cores:1 ~tmax:100.0 () in
  Sim.Stats.record_waiting s 0.2;
  Sim.Stats.record_waiting s 0.4;
  check_float 1e-9 "mean" 0.3 (Sim.Stats.mean_waiting s);
  check_float 1e-9 "max" 0.4 (Sim.Stats.max_waiting s);
  check_bool "negative rejected" true
    (match Sim.Stats.record_waiting s (-0.1) with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Engine *)

let small_trace n =
  Workload.Trace.generate ~seed:77L ~n_tasks:n Workload.Mix.web

let fast_controller =
  lazy (Sim.Policy.fixed_frequency ~fmax:1e9 1e9)

let test_engine_completes_all_tasks () =
  let m = Lazy.force machine in
  let trace = small_trace 2000 in
  let r =
    Sim.Engine.run m (Lazy.force fast_controller) Sim.Policy.first_idle trace
  in
  check_int "all done" 0 r.Sim.Engine.unfinished;
  check_int "completions" 2000 (Sim.Stats.completed r.Sim.Engine.stats)

let test_engine_finishes_near_horizon () =
  (* At fmax, a 45%-load web trace finishes just after the last
     arrival (plus the last task's length). *)
  let m = Lazy.force machine in
  let trace = small_trace 2000 in
  let r =
    Sim.Engine.run m (Lazy.force fast_controller) Sim.Policy.first_idle trace
  in
  let sim_t = Sim.Stats.simulated_time r.Sim.Engine.stats in
  check_bool "no long drain" true
    (sim_t < trace.Workload.Trace.horizon +. 1.0)

let test_engine_waiting_small_at_low_load () =
  let m = Lazy.force machine in
  let trace = small_trace 2000 in
  let r =
    Sim.Engine.run m (Lazy.force fast_controller) Sim.Policy.first_idle trace
  in
  (* 45% load on 8 cores at fmax: queueing is negligible. *)
  check_bool "small waiting" true
    (Sim.Stats.mean_waiting r.Sim.Engine.stats < 5e-3)

let test_engine_zero_frequency_never_finishes () =
  let m = Lazy.force machine in
  let trace = small_trace 50 in
  let stopped = Sim.Policy.fixed_frequency ~fmax:1e9 0.0 in
  let config = { Sim.Engine.default_config with Sim.Engine.drain_limit = 0.5 } in
  let r = Sim.Engine.run ~config m stopped Sim.Policy.first_idle trace in
  check_int "nothing completes" 50 r.Sim.Engine.unfinished

let test_engine_series_recorded () =
  let m = Lazy.force machine in
  let trace = small_trace 500 in
  let _, series, frequency_log =
    Sim.Engine.run_recorded m (Lazy.force fast_controller)
      Sim.Policy.first_idle trace
  in
  check_bool "series non-empty" true (Array.length series > 0);
  check_bool "one sample per epoch" true
    (Array.length series = Array.length frequency_log);
  (* Samples are 100 ms apart. *)
  check_float 1e-9 "epoch spacing" 0.1
    (series.(1).Sim.Probe.at -. series.(0).Sim.Probe.at)

let test_probe_stats_matches_engine () =
  (* The stats probe sees the same steps as the engine's internal
     accumulator, in the same order, so the thermal and energy fields
     must agree bit-for-bit. *)
  let m = Lazy.force machine in
  let trace = small_trace 500 in
  let probe, s =
    Sim.Probe.stats ~n_cores:m.Sim.Machine.n_cores
      ~tmax:Sim.Engine.default_config.Sim.Engine.tmax ()
  in
  let r =
    Sim.Engine.run ~probes:[ probe ] m (Lazy.force fast_controller)
      Sim.Policy.first_idle trace
  in
  let e = r.Sim.Engine.stats in
  check_int "steps" (Sim.Stats.total_steps e) (Sim.Stats.total_steps s);
  check_int "violations" (Sim.Stats.violation_steps e)
    (Sim.Stats.violation_steps s);
  check_bool "peak identical" true
    (Sim.Stats.peak_temperature e = Sim.Stats.peak_temperature s);
  check_bool "energy identical" true
    (Sim.Stats.energy e = Sim.Stats.energy s)

let test_probe_thermal_audit_agrees () =
  let m = Lazy.force machine in
  let trace = small_trace 500 in
  let tmax = 60.0 in
  let config = { Sim.Engine.default_config with Sim.Engine.tmax } in
  let probe, audit = Sim.Probe.thermal_audit ~tmax () in
  let r =
    Sim.Engine.run ~config ~probes:[ probe ] m (Lazy.force fast_controller)
      Sim.Policy.first_idle trace
  in
  let a = audit () in
  check_int "audited every step"
    (Sim.Stats.total_steps r.Sim.Engine.stats)
    a.Sim.Probe.audited_steps;
  check_int "violations agree"
    (Sim.Stats.violation_steps r.Sim.Engine.stats)
    a.Sim.Probe.violating_steps;
  (if a.Sim.Probe.violating_steps > 0 then
     match a.Sim.Probe.first_violation with
     | None -> Alcotest.fail "violations but no first-violation time"
     | Some t -> check_bool "first violation in range" true (t >= 0.0));
  check_bool "worst excess sane" true (a.Sim.Probe.worst_excess >= 0.0)

let test_probe_jsonl_streams () =
  let m = Lazy.force machine in
  let trace = small_trace 200 in
  let path = Filename.temp_file "protemp_probe" ".jsonl" in
  let oc = open_out path in
  let every = 50 in
  let r =
    Sim.Engine.run ~probes:[ Sim.Probe.jsonl ~every oc ] m
      (Lazy.force fast_controller) Sim.Policy.first_idle trace
  in
  close_out oc;
  let ic = open_in path in
  let lines = ref 0 in
  (try
     while true do
       let line = input_line ic in
       ignore line;
       incr lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  let steps = Sim.Stats.total_steps r.Sim.Engine.stats in
  check_int "one line per [every] steps" ((steps + every - 1) / every) !lines

let test_probe_requires_callback () =
  check_bool "empty probe rejected" true
    (match Sim.Probe.make "empty" with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_engine_temperatures_stay_physical () =
  let m = Lazy.force machine in
  let trace = small_trace 1000 in
  let r =
    Sim.Engine.run m (Lazy.force fast_controller) Sim.Policy.first_idle trace
  in
  let peak = Sim.Stats.peak_temperature r.Sim.Engine.stats in
  check_bool "above ambient" true (peak > 27.0);
  check_bool "below all-max steady peak" true
    (peak <= Thermal.Niagara.target_peak +. 1e-6)

let test_engine_coolest_first_reduces_gradient () =
  (* Spreading work to cool cores lowers the spatial spread vs. always
     hammering the lowest-numbered cores. *)
  let m = Lazy.force machine in
  let trace =
    Workload.Trace.generate ~seed:99L ~n_tasks:4000 Workload.Mix.multimedia
  in
  let run assign =
    let r = Sim.Engine.run m (Lazy.force fast_controller) assign trace in
    Sim.Stats.mean_gradient r.Sim.Engine.stats
  in
  let g_first = run Sim.Policy.first_idle in
  let g_cool = run Sim.Policy.coolest_first in
  check_bool
    (Printf.sprintf "gradient %.2f < %.2f" g_cool g_first)
    true (g_cool < g_first)

let test_engine_clamps_overdriven_controller () =
  (* A controller demanding 3x fmax must behave exactly like one
     pinned at fmax: the engine clamps to the hardware ceiling. *)
  let m = Lazy.force machine in
  let trace = small_trace 500 in
  let overdriven =
    {
      Sim.Policy.controller_name = "overdriven";
      decide =
        (fun obs -> Vec.create (Vec.dim obs.Sim.Policy.core_temperatures) 3e9);
    }
  in
  let run ctrl =
    let r = Sim.Engine.run m ctrl Sim.Policy.first_idle trace in
    ( Sim.Stats.peak_temperature r.Sim.Engine.stats,
      Sim.Stats.energy r.Sim.Engine.stats,
      Sim.Stats.simulated_time r.Sim.Engine.stats )
  in
  check_bool "identical to fmax run" true
    (run overdriven = run (Lazy.force fast_controller))

let test_engine_rejects_nan_frequency () =
  let m = Lazy.force machine in
  let trace = small_trace 10 in
  let nan_controller =
    {
      Sim.Policy.controller_name = "nan";
      decide =
        (fun obs -> Vec.create (Vec.dim obs.Sim.Policy.core_temperatures) Float.nan);
    }
  in
  check_bool "NaN rejected" true
    (match Sim.Engine.run m nan_controller Sim.Policy.first_idle trace with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_engine_migration_rescues_stalled_tasks () =
  (* A controller that permanently stops core 0 but runs the others:
     without migration, a task stuck on core 0 never finishes; with
     migration it moves and completes. *)
  let m = Lazy.force machine in
  let stop_core0 =
    {
      Sim.Policy.controller_name = "stop-core0";
      decide =
        (fun obs ->
          Vec.init (Vec.dim obs.Sim.Policy.core_temperatures) (fun c ->
              if c = 0 then 0.0 else 1e9));
    }
  in
  let trace = small_trace 200 in
  let config =
    { Sim.Engine.default_config with Sim.Engine.drain_limit = 2.0 }
  in
  let without =
    Sim.Engine.run ~config m stop_core0 Sim.Policy.first_idle trace
  in
  (* first-idle prefers core 0, so tasks do get stuck there *)
  check_bool "tasks stall without migration" true
    (without.Sim.Engine.unfinished > 0);
  let with_migration =
    Sim.Engine.run
      ~config:{ config with Sim.Engine.migration = true }
      m stop_core0 Sim.Policy.first_idle trace
  in
  check_int "all complete with migration" 0 with_migration.Sim.Engine.unfinished;
  check_bool "migrations counted" true (with_migration.Sim.Engine.migrations > 0)

let test_engine_cool_headroom_defers_dispatch () =
  (* Engine-level deferral: a machine started at 95 C with a
     cool-headroom@90 policy must hold the queued task (all idle cores
     are too hot), then dispatch it once the idle cores cool below the
     threshold — so the task completes but with a non-zero wait. *)
  let m = Lazy.force machine in
  let task =
    { Workload.Task.id = 0; arrival = 0.0; work = 1e-3; benchmark = Web }
  in
  let trace =
    { Workload.Trace.tasks = [| task |]; mix_name = "single"; horizon = 0.0 }
  in
  let config =
    { Sim.Engine.default_config with Sim.Engine.t_initial = Some 95.0 }
  in
  let ctrl = Lazy.force fast_controller in
  let hot =
    Sim.Engine.run ~config m ctrl
      (Sim.Policy.cool_headroom ~threshold:90.0)
      trace
  in
  check_int "completes after cooling" 0 hot.Sim.Engine.unfinished;
  check_bool "dispatch deferred while hot" true
    (Sim.Stats.max_waiting hot.Sim.Engine.stats > 0.0);
  let eager = Sim.Engine.run ~config m ctrl Sim.Policy.first_idle trace in
  check_float 1e-12 "immediate without headroom" 0.0
    (Sim.Stats.max_waiting eager.Sim.Engine.stats)

(* ------------------------------------------------------------------ *)
(* Golden regression: allocation-free engine vs the reference path *)

let protemp_table () =
  let freqs v = Protemp.Table.Frequencies (Vec.create 8 v) in
  Protemp.Table.make ~tstarts:[| 50.0; 80.0; 100.0 |]
    ~ftargets:[| 2e8; 5e8; 8e8 |]
    [|
      [| freqs 2e8; freqs 5e8; freqs 8e8 |];
      [| freqs 2e8; freqs 5e8; Protemp.Table.Infeasible |];
      [| freqs 2e8; Protemp.Table.Infeasible; Protemp.Table.Infeasible |];
    |]

let check_matches_reference name config mk_controller assignment trace =
  let m = Lazy.force machine in
  (* Controllers may be stateful (Basic-DFS keeps a reading history),
     so each run gets a fresh one. *)
  let fresh = Sim.Engine.run ~config m (mk_controller ()) assignment trace in
  let oracle =
    Sim.Engine.run_reference ~config m (mk_controller ()) assignment trace
  in
  check_bool (name ^ ": stats bit-for-bit") true
    (Sim.Stats.equal fresh.Sim.Engine.stats oracle.Sim.Engine.stats);
  check_int (name ^ ": unfinished") oracle.Sim.Engine.unfinished
    fresh.Sim.Engine.unfinished;
  check_int (name ^ ": migrations") oracle.Sim.Engine.migrations
    fresh.Sim.Engine.migrations;
  fresh.Sim.Engine.migrations

let test_engine_matches_reference_golden () =
  let trace = small_trace 1000 in
  let config = Sim.Engine.default_config in
  ignore
    (check_matches_reference "no-tc" config
       (fun () -> Sim.Policy.workload_following ~fmax:1e9)
       Sim.Policy.first_idle trace);
  ignore
    (check_matches_reference "basic-dfs" config
       (fun () -> Protemp.Basic_dfs.create ~fmax:1e9 ())
       Sim.Policy.coolest_first trace);
  ignore
    (check_matches_reference "pro-temp" config
       (fun () -> Protemp.Controller.create ~table:(protemp_table ()))
       Sim.Policy.coolest_first trace)

let test_engine_matches_reference_with_migration () =
  let stop_core0 =
    {
      Sim.Policy.controller_name = "stop-core0";
      decide =
        (fun obs ->
          Vec.init (Vec.dim obs.Sim.Policy.core_temperatures) (fun c ->
              if c = 0 then 0.0 else 1e9));
    }
  in
  let config =
    {
      Sim.Engine.default_config with
      Sim.Engine.drain_limit = 2.0;
      migration = true;
    }
  in
  let migrations =
    check_matches_reference "migration" config
      (fun () -> stop_core0)
      Sim.Policy.first_idle (small_trace 200)
  in
  check_bool "migration path exercised" true (migrations > 0)

(* ------------------------------------------------------------------ *)
(* Allocation discipline *)

let test_engine_zero_alloc_steady_state () =
  (* Two runs that differ only in how many steady-state steps they
     take (one long-running task, one epoch at step 0, no arrivals or
     dispatches after the start) must allocate exactly the same number
     of minor-heap words: the per-step path allocates nothing. *)
  let m = Lazy.force machine in
  let config =
    {
      Sim.Engine.default_config with
      Sim.Engine.dfs_period = 100.0;
      drain_limit = 0.0;
    }
  in
  let ctrl = Lazy.force fast_controller in
  let words horizon =
    let task =
      { Workload.Task.id = 0; arrival = 0.0; work = 100.0; benchmark = Web }
    in
    let trace =
      { Workload.Trace.tasks = [| task |]; mix_name = "synthetic"; horizon }
    in
    (* Warm-up run forces any one-time lazy initialization. *)
    ignore (Sim.Engine.run ~config m ctrl Sim.Policy.first_idle trace);
    let before = Gc.minor_words () in
    ignore (Sim.Engine.run ~config m ctrl Sim.Policy.first_idle trace);
    Gc.minor_words () -. before
  in
  let short = words 0.2 and long = words 0.4 in
  (* 0.2 s more simulated time = 500 more thermal steps. *)
  check_float 0.0 "extra minor words for 500 extra steps" 0.0 (long -. short)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_engine_conserves_tasks =
  QCheck2.Test.make ~name:"engine: dispatched = completed + unfinished"
    ~count:10
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let m = Lazy.force machine in
      let trace =
        Workload.Trace.generate ~seed:(Int64.of_int seed) ~n_tasks:500
          Workload.Mix.web
      in
      let r =
        Sim.Engine.run m (Lazy.force fast_controller) Sim.Policy.first_idle
          trace
      in
      Sim.Stats.completed r.Sim.Engine.stats + r.Sim.Engine.unfinished = 500)

let prop_engine_deterministic =
  QCheck2.Test.make ~name:"engine: identical runs agree" ~count:5
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let m = Lazy.force machine in
      let trace =
        Workload.Trace.generate ~seed:(Int64.of_int seed) ~n_tasks:300
          Workload.Mix.web
      in
      let run () =
        let r =
          Sim.Engine.run m (Lazy.force fast_controller) Sim.Policy.first_idle
            trace
        in
        ( Sim.Stats.peak_temperature r.Sim.Engine.stats,
          Sim.Stats.mean_waiting r.Sim.Engine.stats )
      in
      run () = run ())

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_engine_conserves_tasks; prop_engine_deterministic ]

let () =
  Alcotest.run "sim"
    [
      ( "machine",
        [
          Alcotest.test_case "niagara shape" `Quick test_machine_shape;
          Alcotest.test_case "core power law" `Quick test_machine_core_power;
          Alcotest.test_case "idle below busy" `Quick
            test_machine_idle_never_exceeds_busy;
          Alcotest.test_case "power vector" `Quick test_machine_power_vector;
          Alcotest.test_case "validation" `Quick test_machine_validation;
        ] );
      ( "policy",
        [
          Alcotest.test_case "first idle" `Quick test_first_idle_lowest;
          Alcotest.test_case "coolest first" `Quick test_coolest_first;
          Alcotest.test_case "cool headroom defers" `Quick
            test_cool_headroom_defers;
          Alcotest.test_case "workload following clamps" `Quick
            test_workload_following_clamps;
        ] );
      ( "stats",
        [
          Alcotest.test_case "bands" `Quick test_stats_bands_sum_to_one;
          Alcotest.test_case "gradient" `Quick test_stats_gradient;
          Alcotest.test_case "waiting" `Quick test_stats_waiting;
        ] );
      ( "engine",
        [
          Alcotest.test_case "completes all tasks" `Quick
            test_engine_completes_all_tasks;
          Alcotest.test_case "finishes near horizon" `Quick
            test_engine_finishes_near_horizon;
          Alcotest.test_case "low-load waiting" `Quick
            test_engine_waiting_small_at_low_load;
          Alcotest.test_case "zero frequency stalls" `Quick
            test_engine_zero_frequency_never_finishes;
          Alcotest.test_case "series recording" `Quick
            test_engine_series_recorded;
          Alcotest.test_case "temperatures physical" `Quick
            test_engine_temperatures_stay_physical;
          Alcotest.test_case "coolest-first lowers gradient" `Quick
            test_engine_coolest_first_reduces_gradient;
          Alcotest.test_case "overdriven controller clamped to fmax" `Quick
            test_engine_clamps_overdriven_controller;
          Alcotest.test_case "NaN frequency rejected" `Quick
            test_engine_rejects_nan_frequency;
          Alcotest.test_case "migration rescues stalled tasks" `Quick
            test_engine_migration_rescues_stalled_tasks;
          Alcotest.test_case "cool-headroom defers dispatch" `Quick
            test_engine_cool_headroom_defers_dispatch;
        ] );
      ( "probes",
        [
          Alcotest.test_case "stats probe matches engine" `Quick
            test_probe_stats_matches_engine;
          Alcotest.test_case "thermal audit agrees with stats" `Quick
            test_probe_thermal_audit_agrees;
          Alcotest.test_case "jsonl sink streams" `Quick
            test_probe_jsonl_streams;
          Alcotest.test_case "probe needs a callback" `Quick
            test_probe_requires_callback;
        ] );
      ( "golden",
        [
          Alcotest.test_case "matches reference (no-tc, basic, pro)" `Quick
            test_engine_matches_reference_golden;
          Alcotest.test_case "matches reference with migration" `Quick
            test_engine_matches_reference_with_migration;
          Alcotest.test_case "steady-state step allocates nothing" `Quick
            test_engine_zero_alloc_steady_state;
        ] );
      ("properties", props);
    ]
