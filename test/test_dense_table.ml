(* Tests for the dense-grid pipeline: on-demand memoized cells against
   the one-shot solver, warm-start and frontier-pruning accounting,
   domain-count-invariant fills, agreement with the offline sweep, and
   the certified-interpolation safety property. *)

open Linalg
module D = Protemp.Dense_table

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let machine = lazy (Sim.Machine.niagara ())
let fast_spec = { Protemp.Spec.default with Protemp.Spec.constraint_stride = 4 }

(* A cool, mostly-feasible grid: exercises warm starts and
   interpolation without fighting the thermal cap. *)
let cool_tstarts = [| 60.0; 80.0; 95.0 |]
let cool_ftargets = [| 2e8; 5e8; 8e8 |]

let cool_dense () =
  D.create ~machine:(Lazy.force machine) ~spec:fast_spec
    ~tstarts:cool_tstarts ~ftargets:cool_ftargets ()

(* Shared across the lookup tests: cells memoize, so the 9 solves are
   paid once. *)
let shared = lazy (cool_dense ())

let test_create_validation () =
  let m = Lazy.force machine in
  let bad f = match f () with _ -> false | exception Invalid_argument _ -> true in
  check_bool "negative margin" true
    (bad (fun () ->
         D.create ~margin:(-1.0) ~machine:m ~spec:fast_spec
           ~tstarts:cool_tstarts ~ftargets:cool_ftargets ()));
  check_bool "margin swallows envelope" true
    (bad (fun () ->
         D.create ~margin:fast_spec.Protemp.Spec.tmax ~machine:m
           ~spec:fast_spec ~tstarts:cool_tstarts ~ftargets:cool_ftargets ()));
  check_bool "unsorted tstarts" true
    (bad (fun () ->
         D.create ~machine:m ~spec:fast_spec ~tstarts:[| 80.0; 60.0 |]
           ~ftargets:cool_ftargets ()));
  check_bool "empty axis" true
    (bad (fun () ->
         D.create ~machine:m ~spec:fast_spec ~tstarts:cool_tstarts
           ~ftargets:[||] ()))

let test_cell_matches_solve_point () =
  let m = Lazy.force machine in
  let dt = cool_dense () in
  (* First touch of a fresh grid is a cold solve — the same problem
     solve_point poses. *)
  let c = D.cell dt 1 1 in
  let direct =
    Protemp.Offline.solve_point ~machine:m ~spec:fast_spec ~tstart:cool_tstarts.(1)
      ~ftarget:cool_ftargets.(1) ()
  in
  (match (c, direct) with
  | Protemp.Table.Frequencies f, Protemp.Model.Feasible s ->
      check_bool "frequencies agree" true
        (Vec.approx_equal ~tol:1e4 f s.Protemp.Model.frequencies)
  | Protemp.Table.Infeasible, Protemp.Model.Infeasible -> ()
  | _ -> Alcotest.fail "on-demand cell disagrees with solve_point");
  (* Memoized: a second read is free. *)
  let solves = (D.stats dt).D.solves in
  ignore (D.cell dt 1 1);
  check_int "memoized" solves (D.stats dt).D.solves;
  check_int "computed" 1 (D.computed dt)

let test_fill_stats_and_warm_rate () =
  let dt = cool_dense () in
  let s = D.fill ~domains:2 dt in
  check_int "all cells" 9 s.D.cells;
  check_int "accounted" 9 (s.D.solves + s.D.pruned);
  check_bool "mostly feasible grid" true (s.D.feasible >= 6);
  (* Within each row every solve after the first feasible column is
     warm-seeded: on this grid the warm rate must clear the serving
     gate. *)
  check_bool
    (Printf.sprintf "warm rate %d/%d > 0.5" s.D.warm_hits s.D.solves)
    true
    (float_of_int s.D.warm_hits > 0.5 *. float_of_int s.D.solves);
  (* fill is idempotent. *)
  let again = D.fill dt in
  check_int "nothing left" 0 again.D.cells

let test_fill_domain_invariance () =
  let csv_at domains =
    let dt = cool_dense () in
    ignore (D.fill ~domains dt);
    Protemp.Table.to_csv (D.to_table dt)
  in
  (* Bit-identical grids at 1 vs 4 domains (CSV is %.17g, i.e. exact). *)
  Alcotest.(check string) "domains 1 = domains 4" (csv_at 1) (csv_at 4)

let test_fill_matches_offline_sweep () =
  let m = Lazy.force machine in
  let dt = cool_dense () in
  ignore (D.fill dt);
  let dense = D.to_table dt in
  let swept =
    Protemp.Offline.sweep ~machine:m ~spec:fast_spec ~tstarts:cool_tstarts
      ~ftargets:cool_ftargets ()
  in
  for i = 0 to 2 do
    for j = 0 to 2 do
      match (Protemp.Table.cell dense i j, Protemp.Table.cell swept i j) with
      | Protemp.Table.Infeasible, Protemp.Table.Infeasible -> ()
      | Protemp.Table.Frequencies a, Protemp.Table.Frequencies b ->
          check_bool (Printf.sprintf "cell (%d,%d)" i j) true
            (Vec.approx_equal ~tol:1e4 a b)
      | _ -> Alcotest.fail (Printf.sprintf "feasibility differs at (%d,%d)" i j)
    done
  done

let test_frontier_prunes_across_rows () =
  let m = Lazy.force machine in
  (* Full speed from a hair under the cap: the window peak must blow
     through tmax, so the cool row's infeasibility certificate is
     available to prune the hotter row without touching the solver. *)
  let dt =
    D.create ~machine:m ~spec:fast_spec ~tstarts:[| 99.0; 99.5 |]
      ~ftargets:[| 9.5e8; 1e9 |] ()
  in
  (match D.cell dt 0 1 with
  | Protemp.Table.Infeasible -> ()
  | Protemp.Table.Frequencies _ ->
      Alcotest.fail "full speed at 99C should be infeasible");
  let solves = (D.stats dt).D.solves in
  (match D.cell dt 1 1 with
  | Protemp.Table.Infeasible -> ()
  | Protemp.Table.Frequencies _ -> Alcotest.fail "pruned cell must be infeasible");
  let s = D.stats dt in
  check_int "no extra solve" solves s.D.solves;
  check_bool "counted as pruned" true (s.D.pruned >= 1);
  (* And a fill of the remainder keeps the books balanced. *)
  let f = D.fill ~domains:2 dt in
  check_int "remaining cells" 2 f.D.cells;
  check_int "grid complete" 4 (D.computed dt)

let test_lookup_at_grid_point () =
  let dt = Lazy.force shared in
  (* At the cool corner both axis weights collapse to 1.0, so the blend
     is bit-for-bit the corner cell. *)
  let corner =
    match D.cell dt 0 0 with
    | Protemp.Table.Frequencies f -> f
    | Protemp.Table.Infeasible -> Alcotest.fail "cool corner infeasible"
  in
  (match
     D.lookup dt ~temperature:cool_tstarts.(0) ~required:cool_ftargets.(0)
   with
  | `Interpolated v | `Clamped v ->
      check_bool "corner exact" true (Vec.approx_equal ~tol:0.0 corner v)
  | `None -> Alcotest.fail "corner lookup served nothing");
  (* Hotter than every row mirrors Table.lookup's None. *)
  check_bool "too hot" true
    (match D.lookup dt ~temperature:96.0 ~required:2e8 with
    | `None -> true
    | _ -> false)

let test_lookup_beyond_grid_clamps () =
  let dt = Lazy.force shared in
  (* Requirement above the fastest column: no corner to blend toward,
     so the discrete round-down must serve. *)
  match D.lookup dt ~temperature:70.0 ~required:9.9e8 with
  | `Clamped v ->
      check_bool "discrete agrees" true
        (match D.discrete dt ~temperature:70.0 ~required:9.9e8 with
        | Some d -> Vec.approx_equal ~tol:0.0 d v
        | None -> false)
  | `Interpolated _ -> Alcotest.fail "nothing to interpolate beyond the grid"
  | `None -> Alcotest.fail "grid should still serve its fastest column"

let test_audit_certifies_grid () =
  let dt = Lazy.force shared in
  let a = D.audit dt in
  check_bool "cells checked" true (a.Protemp.Guarantee.cells_checked > 0);
  check_bool
    (Printf.sprintf "worst margin %g >= 0" a.Protemp.Guarantee.worst_margin)
    true
    (a.Protemp.Guarantee.worst_margin >= 0.0)

(* The tentpole safety property: whenever the paper's discrete rule
   would serve a cap-honouring vector, the interpolating lookup's
   served vector honours the cap too — the repair pass may clamp, but
   never serves something less safe. *)
let prop_interpolation_never_less_safe =
  QCheck2.Test.make ~name:"dense: interpolated lookups never violate tmax"
    ~count:40
    QCheck2.Gen.(pair (float_range 50.0 100.0) (float_range 1e8 9e8))
    (fun (temperature, required) ->
      let m = Lazy.force machine in
      let dt = Lazy.force shared in
      let peak_of v =
        Protemp.Guarantee.window_peak ~machine:m
          ~dfs_period:fast_spec.Protemp.Spec.dfs_period ~tstart:temperature
          ~frequencies:v
      in
      let tmax = fast_spec.Protemp.Spec.tmax in
      match D.lookup dt ~temperature ~required with
      | `None -> D.discrete dt ~temperature ~required = None
      | `Interpolated v | `Clamped v -> (
          match D.discrete dt ~temperature ~required with
          | None -> false (* a served vector implies a discrete fallback *)
          | Some d ->
              (* Only constrained when the discrete rule itself is safe
                 at this (between-grid-point) temperature. *)
              peak_of d > tmax +. 1e-9 || peak_of v <= tmax +. 1e-9))

let () =
  Alcotest.run "dense_table"
    [
      ( "cells",
        [
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "on-demand cell" `Slow test_cell_matches_solve_point;
          Alcotest.test_case "frontier pruning" `Slow
            test_frontier_prunes_across_rows;
        ] );
      ( "fill",
        [
          Alcotest.test_case "stats and warm rate" `Slow
            test_fill_stats_and_warm_rate;
          Alcotest.test_case "domain invariance" `Slow
            test_fill_domain_invariance;
          Alcotest.test_case "matches offline sweep" `Slow
            test_fill_matches_offline_sweep;
        ] );
      ( "serving",
        [
          Alcotest.test_case "grid-point lookup" `Slow test_lookup_at_grid_point;
          Alcotest.test_case "beyond-grid clamp" `Slow
            test_lookup_beyond_grid_clamps;
          Alcotest.test_case "whole-grid audit" `Slow test_audit_certifies_grid;
          QCheck_alcotest.to_alcotest prop_interpolation_never_less_safe;
        ] );
    ]
