(* Fault injection: constructor validation, the exact corruption each
   fault applies, composition order, and determinism — the same seed
   must reproduce the same corrupted run, which is what lets faulty
   campaign cells stay domain-count invariant. *)

open Linalg

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float tol = Alcotest.(check (float tol))
let check_string = Alcotest.(check string)

let obs ?(time = 0.0) temps =
  let v = Array.of_list temps in
  {
    Sim.Policy.time;
    core_temperatures = v;
    max_core_temperature = Vec.max v;
    required_frequency = 5e8;
    core_fmax = Vec.create (Array.length v) 1e9;
    utilizations = Vec.create (Array.length v) 1.0;
    queue_length = 1;
    queued_work = 0.1;
  }

(* A spy controller: records every observation it is shown and
   answers a fixed frequency vector. *)
let spy answer =
  let seen = ref [] in
  ( {
      Sim.Policy.controller_name = "spy";
      decide =
        (fun o ->
          seen :=
            (Vec.copy o.Sim.Policy.core_temperatures,
             o.Sim.Policy.max_core_temperature)
            :: !seen;
          answer);
    },
    fun () -> List.rev !seen )

let test_constructor_validation () =
  let bad f = match f () with _ -> false | exception Invalid_argument _ -> true in
  check_bool "negative magnitude" true
    (bad (fun () -> Sim.Fault.sensor_noise ~magnitude:(-1.0) ()));
  check_bool "negative core" true
    (bad (fun () -> Sim.Fault.stuck_sensor ~core:(-1) ()));
  check_bool "zero epochs" true
    (bad (fun () -> Sim.Fault.stale_observation ~epochs:0));
  check_bool "empty ladder" true
    (bad (fun () -> Sim.Fault.quantized_actuator ~levels:[||]));
  check_bool "unsorted ladder" true
    (bad (fun () -> Sim.Fault.quantized_actuator ~levels:[| 2e8; 1e8 |]));
  check_bool "non-positive level" true
    (bad (fun () -> Sim.Fault.quantized_actuator ~levels:[| 0.0; 1e8 |]))

let test_names () =
  check_string "noise" "noise2C"
    (Sim.Fault.name (Sim.Fault.sensor_noise ~magnitude:2.0 ()));
  check_string "stuck at" "stuck3@85C"
    (Sim.Fault.name (Sim.Fault.stuck_sensor ~reading:85.0 ~core:3 ()));
  check_string "stuck frozen" "stuck0"
    (Sim.Fault.name (Sim.Fault.stuck_sensor ~core:0 ()));
  check_string "stale" "stale2"
    (Sim.Fault.name (Sim.Fault.stale_observation ~epochs:2));
  check_string "ladder" "ladder4"
    (Sim.Fault.name
       (Sim.Fault.quantized_actuator ~levels:[| 1e8; 2e8; 3e8; 4e8 |]))

let test_empty_wrap_is_identity () =
  let c, _ = spy (Vec.create 4 1e8) in
  check_bool "physically the same controller" true
    (Sim.Fault.wrap ~faults:[] c == c)

let test_wrapped_name () =
  let c, _ = spy (Vec.create 4 1e8) in
  let w =
    Sim.Fault.wrap
      ~faults:
        [ Sim.Fault.stale_observation ~epochs:1;
          Sim.Fault.stuck_sensor ~reading:85.0 ~core:0 () ]
      c
  in
  check_string "labels appended" "spy+stale1+stuck0@85C"
    w.Sim.Policy.controller_name

let test_stuck_sensor () =
  let c, seen = spy (Vec.create 3 1e8) in
  let w =
    Sim.Fault.wrap ~faults:[ Sim.Fault.stuck_sensor ~reading:95.0 ~core:1 () ] c
  in
  ignore (w.Sim.Policy.decide (obs [ 40.0; 50.0; 60.0 ]));
  (match seen () with
  | [ (t, mx) ] ->
      check_float 0.0 "core 0 untouched" 40.0 t.(0);
      check_float 0.0 "core 1 stuck" 95.0 t.(1);
      check_float 0.0 "max recomputed from corrupted readings" 95.0 mx
  | _ -> Alcotest.fail "expected one observation");
  (* [reading = None] freezes at the first observed value. *)
  let c, seen = spy (Vec.create 3 1e8) in
  let w = Sim.Fault.wrap ~faults:[ Sim.Fault.stuck_sensor ~core:2 () ] c in
  ignore (w.Sim.Policy.decide (obs [ 40.0; 50.0; 60.0 ]));
  ignore (w.Sim.Policy.decide (obs [ 41.0; 51.0; 75.0 ]));
  match seen () with
  | [ (a, _); (b, _) ] ->
      check_float 0.0 "first value" 60.0 a.(2);
      check_float 0.0 "frozen thereafter" 60.0 b.(2);
      check_float 0.0 "other cores live" 51.0 b.(1)
  | _ -> Alcotest.fail "expected two observations"

let test_stale_observation () =
  let c, seen = spy (Vec.create 2 1e8) in
  let w = Sim.Fault.wrap ~faults:[ Sim.Fault.stale_observation ~epochs:2 ] c in
  List.iter
    (fun t -> ignore (w.Sim.Policy.decide (obs [ t; t ])))
    [ 10.0; 20.0; 30.0; 40.0; 50.0 ];
  let delivered = List.map (fun (t, _) -> t.(0)) (seen ()) in
  (* Before the buffer is warm the oldest available reading is
     delivered; from decision [epochs + 1] on, exactly 2-old. *)
  check_bool "staleness schedule" true
    (delivered = [ 10.0; 10.0; 10.0; 20.0; 30.0 ])

let test_quantized_actuator () =
  let c, _ = spy [| 0.9e8; 2.5e8; 4.0e8; 0.4e8 |] in
  let w =
    Sim.Fault.wrap
      ~faults:[ Sim.Fault.quantized_actuator ~levels:[| 1e8; 2e8; 4e8 |] ]
      c
  in
  let f = w.Sim.Policy.decide (obs [ 40.0; 40.0; 40.0; 40.0 ]) in
  check_float 0.0 "below lowest -> off" 0.0 f.(0);
  check_float 0.0 "floored" 2e8 f.(1);
  check_float 0.0 "exact level kept" 4e8 f.(2);
  check_float 0.0 "below lowest -> off" 0.0 f.(3)

let test_sensor_noise_bounded_and_seeded () =
  let run seed =
    let c, seen = spy (Vec.create 4 1e8) in
    let w =
      Sim.Fault.wrap
        ~faults:[ Sim.Fault.sensor_noise ~seed ~magnitude:2.0 () ]
        c
    in
    for i = 1 to 50 do
      ignore (w.Sim.Policy.decide (obs (List.init 4 (fun c' -> 40.0 +. float_of_int (i + c')))))
    done;
    List.concat_map (fun (t, _) -> Array.to_list t) (seen ())
  in
  let a = run 7L and b = run 7L and c = run 8L in
  check_bool "same seed, identical corruption" true (a = b);
  check_bool "different seed, different corruption" true (a <> c);
  List.iteri
    (fun i (x, y) ->
      let base = 40.0 +. float_of_int ((i / 4) + 1 + (i mod 4)) in
      ignore y;
      check_bool "within the bound" true (Float.abs (x -. base) <= 2.0))
    (List.map (fun x -> (x, ())) a)

let test_faults_compose_in_order () =
  (* Stuck first, then noise: the stuck core's delivered reading moves
     (noise applies after the latch).  Noise first, then stuck: the
     stuck core is rock solid. *)
  let deliver faults =
    let c, seen = spy (Vec.create 2 1e8) in
    let w = Sim.Fault.wrap ~faults c in
    for _ = 1 to 10 do
      ignore (w.Sim.Policy.decide (obs [ 50.0; 60.0 ]))
    done;
    List.map (fun (t, _) -> t.(0)) (seen ())
  in
  let noise = Sim.Fault.sensor_noise ~seed:3L ~magnitude:1.0 () in
  let stuck = Sim.Fault.stuck_sensor ~reading:70.0 ~core:0 () in
  let stuck_then_noise = deliver [ stuck; noise ] in
  let noise_then_stuck = deliver [ noise; stuck ] in
  check_bool "noise after latch jitters the stuck reading" true
    (List.exists (fun t -> t <> 70.0) stuck_then_noise);
  check_bool "latch after noise pins the reading" true
    (List.for_all (fun t -> t = 70.0) noise_then_stuck)

(* End-to-end determinism: a faulty engine run is reproducible from
   the seed — fresh wrap, same trace, bit-identical stats. *)
let test_engine_run_deterministic () =
  let machine = Sim.Machine.niagara () in
  let fmax = machine.Sim.Machine.fmax in
  let trace =
    Workload.Trace.generate ~seed:99L ~n_tasks:800 Workload.Mix.web
  in
  let run () =
    let base = Sim.Policy.workload_following ~fmax in
    let w =
      Sim.Fault.wrap
        ~faults:
          [
            Sim.Fault.sensor_noise ~seed:5L ~magnitude:3.0 ();
            Sim.Fault.stale_observation ~epochs:1;
          ]
        base
    in
    Sim.Engine.run machine w Sim.Policy.first_idle trace
  in
  let a = run () and b = run () in
  check_bool "bit-identical stats" true
    (Sim.Stats.equal a.Sim.Engine.stats b.Sim.Engine.stats);
  check_int "same unfinished" a.Sim.Engine.unfinished b.Sim.Engine.unfinished

let () =
  Alcotest.run "fault"
    [
      ( "fault",
        [
          Alcotest.test_case "constructor validation" `Quick
            test_constructor_validation;
          Alcotest.test_case "names" `Quick test_names;
          Alcotest.test_case "empty wrap is identity" `Quick
            test_empty_wrap_is_identity;
          Alcotest.test_case "wrapped name" `Quick test_wrapped_name;
          Alcotest.test_case "stuck sensor" `Quick test_stuck_sensor;
          Alcotest.test_case "stale observation" `Quick test_stale_observation;
          Alcotest.test_case "quantized actuator" `Quick
            test_quantized_actuator;
          Alcotest.test_case "noise bounded and seeded" `Quick
            test_sensor_noise_bounded_and_seeded;
          Alcotest.test_case "faults compose in order" `Quick
            test_faults_compose_in_order;
          Alcotest.test_case "engine run deterministic" `Quick
            test_engine_run_deterministic;
        ] );
    ]
