(* Tests for the convex optimization substrate: quadratic forms, the
   DCP layer, Newton, the barrier method, phase-I, KKT certificates,
   LP corner cases and bisection. *)

open Linalg
open Convex

let check_bool = Alcotest.(check bool)
let check_float tol = Alcotest.(check (float tol))
let check_int = Alcotest.(check int)

let mk_rand seed = Random.State.make [| seed |]
let random_vec st n = Vec.init n (fun _ -> Random.State.float st 2.0 -. 1.0)

let random_spd st n =
  let a = Mat.init n n (fun _ _ -> Random.State.float st 2.0 -. 1.0) in
  Mat.add (Mat.matmul (Mat.transpose a) a) (Mat.identity n)

(* ------------------------------------------------------------------ *)
(* Quad *)

let test_quad_affine_eval () =
  let f = Quad.affine [| 1.0; -2.0 |] 3.0 in
  check_float 1e-12 "eval" 2.0 (Quad.eval f [| 1.0; 1.0 |]);
  check_bool "grad" true
    (Vec.approx_equal (Quad.grad f [| 5.0; 5.0 |]) [| 1.0; -2.0 |]);
  check_bool "affine" true (Quad.is_affine f)

let test_quad_quadratic_eval () =
  (* f(x) = 1/2 (2 x0^2 + 2 x1^2) + x0 = x0^2 + x1^2 + x0 *)
  let f = Quad.quadratic (Mat.of_diag [| 2.0; 2.0 |]) [| 1.0; 0.0 |] 0.0 in
  check_float 1e-12 "eval" 3.0 (Quad.eval f [| 1.0; 1.0 |]);
  check_bool "grad" true
    (Vec.approx_equal (Quad.grad f [| 1.0; 1.0 |]) [| 3.0; 2.0 |]);
  check_bool "psd" true (Quad.hess_is_psd f)

let test_quad_square_of_affine () =
  (* (x0 - x1 + 2)^2 at (1, 0) = 9. *)
  let f = Quad.square_of_affine [| 1.0; -1.0 |] 2.0 in
  check_float 1e-12 "eval" 9.0 (Quad.eval f [| 1.0; 0.0 |]);
  (* gradient: 2 (q.x + r) q = 2*3*(1,-1) = (6,-6) *)
  check_bool "grad" true
    (Vec.approx_equal (Quad.grad f [| 1.0; 0.0 |]) [| 6.0; -6.0 |]);
  check_bool "psd" true (Quad.hess_is_psd f)

let test_quad_algebra () =
  let f = Quad.square_of_affine [| 1.0 |] 0.0 in
  let g = Quad.affine [| 2.0 |] 1.0 in
  let h = Quad.add f (Quad.scale 3.0 g) in
  (* x^2 + 6x + 3 at x=2: 4 + 12 + 3 = 19 *)
  check_float 1e-12 "combo" 19.0 (Quad.eval h [| 2.0 |]);
  let s = Quad.sub h h in
  check_float 1e-12 "self-sub" 0.0 (Quad.eval s [| 7.0 |])

let test_quad_extend () =
  let f = Quad.square_of_affine [| 1.0; 1.0 |] 0.0 in
  let g = Quad.extend f 4 in
  check_int "dim" 4 (Quad.dim g);
  check_float 1e-12 "ignores new coords" 4.0
    (Quad.eval g [| 1.0; 1.0; 99.0; -99.0 |])

let test_quad_grad_finite_difference () =
  let st = mk_rand 2 in
  let n = 5 in
  let f = Quad.quadratic (random_spd st n) (random_vec st n) 0.3 in
  let x = random_vec st n in
  let g = Quad.grad f x in
  let h = 1e-6 in
  for i = 0 to n - 1 do
    let xp = Vec.copy x and xm = Vec.copy x in
    xp.(i) <- xp.(i) +. h;
    xm.(i) <- xm.(i) -. h;
    let fd = (Quad.eval f xp -. Quad.eval f xm) /. (2.0 *. h) in
    check_float 1e-5 "fd grad" fd g.(i)
  done

(* ------------------------------------------------------------------ *)
(* Expr (DCP layer) *)

let test_expr_curvature () =
  let x = Expr.var 2 0 in
  check_bool "var affine" true (Expr.curvature x = Expr.Affine);
  check_bool "square convex" true (Expr.curvature (Expr.square x) = Expr.Convex);
  check_bool "neg square concave" true
    (Expr.curvature (Expr.neg (Expr.square x)) = Expr.Concave);
  check_bool "scale by negative flips" true
    (Expr.curvature (Expr.scale (-2.0) (Expr.square x)) = Expr.Concave)

let test_expr_rejects_non_dcp () =
  let x = Expr.var 1 0 in
  let sq = Expr.square x in
  check_bool "square of convex rejected" true
    (match Expr.square sq with
    | _ -> false
    | exception Expr.Non_dcp _ -> true);
  check_bool "convex+concave rejected" true
    (match Expr.add sq (Expr.neg sq) with
    | _ -> false
    | exception Expr.Non_dcp _ -> true);
  check_bool "convex rhs of leq rejected" true
    (match Expr.leq x sq with
    | _ -> false
    | exception Expr.Non_dcp _ -> true);
  check_bool "concave minimize rejected" true
    (match Expr.minimize (Expr.neg sq) [] with
    | _ -> false
    | exception Expr.Non_dcp _ -> true)

let test_expr_eval () =
  let n = 3 in
  let e =
    Expr.add
      (Expr.sum_squares [ Expr.var n 0; Expr.var n 1 ])
      (Expr.scale 2.0 (Expr.var n 2))
  in
  check_float 1e-12 "eval" (1.0 +. 4.0 +. 6.0) (Expr.eval e [| 1.0; 2.0; 3.0 |])

let test_expr_quad_form () =
  let p = Mat.of_diag [| 2.0; 4.0 |] in
  let e = Expr.quad_form p in
  check_float 1e-12 "eval" (1.0 +. 2.0) (Expr.eval e [| 1.0; 1.0 |]);
  let neg = Mat.of_diag [| -1.0; 1.0 |] in
  check_bool "indefinite rejected" true
    (match Expr.quad_form neg with
    | _ -> false
    | exception Expr.Non_dcp _ -> true)

(* ------------------------------------------------------------------ *)
(* Newton *)

let quad_bowl_oracle p q =
  (* f(x) = 1/2 x'Px + q'x *)
  let f = Quad.quadratic p q 0.0 in
  {
    Newton.value = (fun x -> Some (Quad.eval f x));
    max_step = None;
    grad_hess_into =
      (fun x ~g ~h ->
        Vec.blit ~src:(Quad.grad f x) ~dst:g;
        Mat.fill h 0.0;
        Quad.add_scaled_hess_upper_into f 1.0 ~dst:h;
        Mat.mirror_upper h);
  }

let test_newton_quadratic_one_step () =
  (* On a quadratic, Newton converges in one damped step. *)
  let st = mk_rand 4 in
  let n = 6 in
  let p = random_spd st n in
  let q = random_vec st n in
  let r = Newton.minimize (quad_bowl_oracle p q) (Vec.zeros n) in
  check_bool "converged" true (r.Newton.outcome = Newton.Converged);
  (* optimum solves P x = -q *)
  let expect = Chol.solve p (Vec.neg q) in
  check_bool "argmin" true (Vec.approx_equal ~tol:1e-6 r.Newton.x expect);
  check_bool "few iterations" true (r.Newton.iterations <= 3)

let test_newton_respects_domain () =
  (* minimize -log(x) + x on x > 0: optimum at x = 1. *)
  let oracle =
    {
      Newton.value =
        (fun x -> if x.(0) <= 0.0 then None else Some (x.(0) -. log x.(0)));
      grad_hess_into =
        (fun x ~g ~h ->
          g.(0) <- 1.0 -. (1.0 /. x.(0));
          Mat.set h 0 0 (1.0 /. (x.(0) *. x.(0))));
      max_step = None;
    }
  in
  let r = Newton.minimize oracle [| 0.01 |] in
  check_bool "converged" true (r.Newton.outcome = Newton.Converged);
  check_float 1e-6 "optimum" 1.0 r.Newton.x.(0)

let test_newton_rejects_bad_start () =
  let oracle =
    {
      Newton.value = (fun x -> if x.(0) <= 0.0 then None else Some x.(0));
      grad_hess_into =
        (fun _ ~g ~h ->
          g.(0) <- 1.0;
          Mat.set h 0 0 1.0);
      max_step = None;
    }
  in
  check_bool "raises" true
    (match Newton.minimize oracle [| -1.0 |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Barrier on problems with known solutions *)

let test_barrier_box_lp () =
  (* minimize x0 + x1 s.t. 0 <= xi <= 1: optimum (0,0), value 0. *)
  let n = 2 in
  let constraints =
    Array.of_list
      (List.concat_map
         (fun i ->
           List.map Expr.constr_quad (Expr.box n i ~lo:0.0 ~hi:1.0))
         [ 0; 1 ])
  in
  let p =
    { Barrier.objective = Quad.affine [| 1.0; 1.0 |] 0.0; constraints }
  in
  let r = Barrier.solve p [| 0.5; 0.5 |] in
  check_float 1e-5 "value" 0.0 r.Barrier.objective_value;
  check_bool "near corner" true (Vec.norm_inf r.Barrier.x < 1e-4)

let test_barrier_projection () =
  (* minimize ||x - (2,2)||^2 s.t. x0 + x1 <= 2: projection (1,1). *)
  let obj =
    Quad.add
      (Quad.square_of_affine [| 1.0; 0.0 |] (-2.0))
      (Quad.square_of_affine [| 0.0; 1.0 |] (-2.0))
  in
  let constraints = [| Quad.affine [| 1.0; 1.0 |] (-2.0) |] in
  let r = Barrier.solve { Barrier.objective = obj; constraints } [| 0.0; 0.0 |] in
  check_bool "projection" true
    (Vec.approx_equal ~tol:1e-4 r.Barrier.x [| 1.0; 1.0 |]);
  (* The dual of the active constraint must be ~2 (from KKT:
     2(x0-2) + lambda = 0 at x0=1). *)
  check_float 1e-3 "dual" 2.0 r.Barrier.dual.(0)

let test_barrier_inactive_constraint () =
  (* minimize (x-1)^2 s.t. x <= 100: unconstrained optimum x=1. *)
  let obj = Quad.square_of_affine [| 1.0 |] (-1.0) in
  let constraints = [| Quad.affine [| 1.0 |] (-100.0) |] in
  let r = Barrier.solve { Barrier.objective = obj; constraints } [| 0.0 |] in
  check_float 1e-5 "optimum" 1.0 r.Barrier.x.(0);
  check_bool "dual tiny" true (r.Barrier.dual.(0) < 1e-4)

let test_barrier_quadratic_constraint () =
  (* minimize x0 + x1 s.t. x0^2 + x1^2 <= 1: optimum (-1/sqrt2, -1/sqrt2),
     value -sqrt(2). *)
  let obj = Quad.affine [| 1.0; 1.0 |] 0.0 in
  let ball = Quad.quadratic (Mat.of_diag [| 2.0; 2.0 |]) (Vec.zeros 2) (-1.0) in
  let r =
    Barrier.solve { Barrier.objective = obj; constraints = [| ball |] }
      [| 0.0; 0.0 |]
  in
  check_float 1e-4 "value" (-.sqrt 2.0) r.Barrier.objective_value;
  let s = -1.0 /. sqrt 2.0 in
  check_bool "argmin" true (Vec.approx_equal ~tol:1e-4 r.Barrier.x [| s; s |])

let test_barrier_rejects_infeasible_start () =
  let constraints = [| Quad.affine [| 1.0 |] 0.0 |] in
  let p = { Barrier.objective = Quad.affine [| 1.0 |] 0.0; constraints } in
  check_bool "raises" true
    (match Barrier.solve p [| 1.0 |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_barrier_unconstrained () =
  let obj = Quad.square_of_affine [| 1.0 |] (-3.0) in
  let r = Barrier.solve { Barrier.objective = obj; constraints = [||] } [| 0.0 |] in
  check_float 1e-6 "optimum" 3.0 r.Barrier.x.(0)

(* ------------------------------------------------------------------ *)
(* Compiled backend: the packed-Jacobian oracle must match a naive
   barrier oracle computed straight from the Quad definitions, and the
   two barrier backends must reach the same optimum. *)

let quad_hess f n =
  let h = Mat.zeros n n in
  Quad.add_scaled_hess_upper_into f 1.0 ~dst:h;
  Mat.mirror_upper h;
  h

(* Naive t*f0 - sum log(-f_j) oracle, allocating freely. *)
let naive_barrier_value ~t obj constraints x =
  if Array.exists (fun f -> Quad.eval f x >= 0.0) constraints then None
  else
    Some
      (Array.fold_left
         (fun acc f -> acc -. log (-.Quad.eval f x))
         (t *. Quad.eval obj x)
         constraints)

let naive_barrier_grad_hess ~t obj constraints x =
  let n = Vec.dim x in
  let g = Vec.scale t (Quad.grad obj x) in
  let h = ref (Mat.scale t (quad_hess obj n)) in
  Array.iter
    (fun f ->
      let fv = Quad.eval f x in
      let gf = Quad.grad f x in
      Vec.axpy_into ~dst:g (-1.0 /. fv) gf;
      let h' = Mat.add !h (Mat.scale (-1.0 /. fv) (quad_hess f n)) in
      Mat.add_outer_into h' (1.0 /. (fv *. fv)) gf;
      h := h')
    constraints;
  (g, !h)

(* Random QCQP, strictly feasible at the origin: box rows, a few extra
   affine rows, and one or two quadratic balls. *)
let random_qcqp st n =
  let obj = Quad.quadratic (random_spd st n) (random_vec st n) 0.0 in
  let boxes =
    Array.init (2 * n) (fun k ->
        let i = k / 2 in
        if k mod 2 = 0 then
          Quad.add_constant (Quad.linear_coord n i (-1.0)) (-1.0)
        else Quad.add_constant (Quad.linear_coord n i 1.0) (-1.0))
  in
  let extra =
    Array.init
      (1 + Random.State.int st 3)
      (fun _ ->
        Quad.affine (random_vec st n) (-.(1.5 +. Random.State.float st 1.0)))
  in
  let balls =
    Array.init
      (1 + Random.State.int st 2)
      (fun _ ->
        let rad = 0.8 +. Random.State.float st 1.0 in
        Quad.quadratic
          (Mat.scale 2.0 (Mat.identity n))
          (Vec.zeros n)
          (-.(rad *. rad)))
  in
  (obj, Array.concat [ boxes; extra; balls ])

let rel_close tol a b = Float.abs (a -. b) <= tol *. Float.max 1.0 (Float.abs b)

(* Shared generator for the randomized solver tests: a dimension and a
   PRNG seed. *)
let qp_gen =
  QCheck2.Gen.(
    let* n = int_range 1 5 in
    let* seed = int_range 0 1_000_000 in
    return (n, seed))

let prop_compiled_oracle_matches_naive =
  QCheck2.Test.make
    ~name:"compiled: oracle matches naive barrier to 1e-10" ~count:60 qp_gen
    (fun (n, seed) ->
      let st = mk_rand seed in
      let obj, constraints = random_qcqp st n in
      let c = Compiled.make ~objective:obj ~constraints in
      let ws = Compiled.workspace c in
      let g = Vec.zeros n and h = Mat.zeros n n in
      let ok = ref true in
      (* The origin is strictly feasible by construction; other sample
         points are used only when they are. *)
      let points =
        Vec.zeros n
        :: List.filteri
             (fun _ x -> Compiled.is_strictly_feasible c ws x)
             (List.init 5 (fun _ ->
                  Vec.init n (fun _ -> Random.State.float st 0.6 -. 0.3)))
      in
      List.iter
        (fun x ->
          List.iter
            (fun t ->
              (match
                 ( Compiled.value c ws ~t x,
                   naive_barrier_value ~t obj constraints x )
               with
              | Some a, Some b -> if not (rel_close 1e-10 a b) then ok := false
              | None, None -> ()
              | _ -> ok := false);
              Compiled.grad_hess_into c ws ~t x ~g ~h;
              let g', h' = naive_barrier_grad_hess ~t obj constraints x in
              for i = 0 to n - 1 do
                if not (rel_close 1e-10 g.(i) g'.(i)) then ok := false;
                for j = 0 to n - 1 do
                  if not (rel_close 1e-10 (Mat.get h i j) (Mat.get h' i j))
                  then ok := false
                done
              done)
            [ 1.0; 100.0; 1e6 ])
        points;
      !ok)

let prop_compiled_max_step_is_the_wall =
  QCheck2.Test.make ~name:"compiled: max_step is the feasibility wall"
    ~count:100 qp_gen (fun (n, seed) ->
      let st = mk_rand seed in
      let obj, constraints = random_qcqp st n in
      let c = Compiled.make ~objective:obj ~constraints in
      let ws = Compiled.workspace c in
      let x = Vec.zeros n in
      let d = random_vec st n in
      let s = Compiled.max_step c ws x d in
      if s = infinity then
        (* Recession direction: any step stays feasible. *)
        Compiled.is_strictly_feasible c ws (Vec.axpy 1e6 d x)
      else
        s > 0.0
        && Compiled.is_strictly_feasible c ws (Vec.axpy (0.99 *. s) d x)
        && not (Compiled.is_strictly_feasible c ws (Vec.axpy (1.01 *. s) d x)))

let prop_compiled_backend_same_optimum =
  QCheck2.Test.make ~name:"barrier: both backends reach the same optimum"
    ~count:40 qp_gen (fun (n, seed) ->
      let st = mk_rand seed in
      let obj, constraints = random_qcqp st n in
      let p = { Barrier.objective = obj; constraints } in
      let rc = Barrier.solve ~backend:`Compiled p (Vec.zeros n) in
      let rr = Barrier.solve ~backend:`Reference p (Vec.zeros n) in
      rel_close 1e-6 rc.Barrier.objective_value rr.Barrier.objective_value
      && Vec.approx_equal ~tol:1e-4 rc.Barrier.x rr.Barrier.x
      && Vec.approx_equal ~tol:1e-4 rc.Barrier.dual rr.Barrier.dual)

let test_compiled_partition () =
  let st = mk_rand 71 in
  let n = 4 in
  let obj, constraints = random_qcqp st n in
  let c = Compiled.make ~objective:obj ~constraints in
  check_int "dim" n (Compiled.dim c);
  check_int "constraint count" (Array.length constraints)
    (Compiled.n_constraints c);
  check_int "affine count"
    (Array.length (Array.of_seq
       (Seq.filter Quad.is_affine (Array.to_seq constraints))))
    (Compiled.n_affine c);
  (* Original order preserved. *)
  let x = random_vec st n in
  Array.iteri
    (fun j f ->
      check_float 1e-12 "order preserved" (Quad.eval f x)
        (Quad.eval (Compiled.constraints c).(j) x))
    constraints

let test_compiled_with_constant () =
  let n = 3 in
  let obj = Quad.affine [| 1.0; 1.0; 1.0 |] 0.0 in
  let base = Quad.add_constant (Quad.linear_coord n 0 1.0) (-1.0) in
  let others =
    Array.init n (fun i -> Quad.add_constant (Quad.linear_coord n i (-1.0)) (-1.0))
  in
  let constraints = Array.append [| base |] others in
  let c = Compiled.make ~objective:obj ~constraints in
  let ws = Compiled.workspace c in
  (* Replace the first row's constant: must equal compiling the edited
     problem from scratch, and must not disturb the original. *)
  let c' = Compiled.with_constant c ~index:0 (-2.0) in
  let edited =
    Array.append [| Quad.add_constant (Quad.linear_coord n 0 1.0) (-2.0) |] others
  in
  let fresh = Compiled.make ~objective:obj ~constraints:edited in
  let ws' = Compiled.workspace c' in
  let wsf = Compiled.workspace fresh in
  let g1 = Vec.zeros n and h1 = Mat.zeros n n in
  let g2 = Vec.zeros n and h2 = Mat.zeros n n in
  List.iter
    (fun x ->
      (match (Compiled.value c' ws' ~t:10.0 x, Compiled.value fresh wsf ~t:10.0 x) with
      | Some a, Some b -> check_float 1e-12 "value matches fresh" b a
      | None, None -> ()
      | _ -> Alcotest.fail "feasibility disagrees");
      if Compiled.is_strictly_feasible c' ws' x then begin
        Compiled.grad_hess_into c' ws' ~t:10.0 x ~g:g1 ~h:h1;
        Compiled.grad_hess_into fresh wsf ~t:10.0 x ~g:g2 ~h:h2;
        check_bool "grad matches fresh" true
          (Vec.approx_equal ~tol:1e-12 g1 g2);
        check_bool "hess matches fresh" true
          (Mat.approx_equal ~tol:1e-12 h1 h2)
      end)
    [ [| 0.5; 0.0; 0.0 |]; [| 1.5; 0.2; -0.3 |]; [| -0.5; 0.5; 0.5 |] ];
  (* The original is untouched (the Jacobian is shared, offsets are
     not): x0 = 1.5 violates the original x0 <= 1 but satisfies the
     relaxed x0 <= 2. *)
  check_bool "original still x0 <= 1" true
    (Compiled.value c ws ~t:10.0 [| 1.5; 0.2; -0.3 |] = None);
  check_bool "copy relaxed to x0 <= 2" true
    (Compiled.value c' ws' ~t:10.0 [| 1.5; 0.2; -0.3 |] <> None);
  (* Replacing the constant of a quadratic constraint is rejected. *)
  let ball =
    Quad.quadratic (Mat.scale 2.0 (Mat.identity n)) (Vec.zeros n) (-1.0)
  in
  let cq = Compiled.make ~objective:obj ~constraints:[| ball |] in
  check_bool "quadratic index rejected" true
    (match Compiled.with_constant cq ~index:0 (-2.0) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_barrier_stats () =
  (* The instrumentation counters must be populated and consistent. *)
  let st = mk_rand 73 in
  let obj, constraints = random_qcqp st 3 in
  let p = { Barrier.objective = obj; constraints } in
  let r = Barrier.solve p (Vec.zeros 3) in
  let s = r.Barrier.stats in
  check_bool "centerings > 0" true (s.Barrier.centering_steps > 0);
  check_bool "newton > 0" true (s.Barrier.newton_iterations > 0);
  check_bool "factorizations >= newton" true
    (s.Barrier.factorizations >= s.Barrier.newton_iterations);
  check_int "outer matches stats" r.Barrier.outer_iterations
    s.Barrier.centering_steps;
  check_int "newton matches stats" r.Barrier.newton_iterations
    s.Barrier.newton_iterations

(* ------------------------------------------------------------------ *)
(* Phase 1 and two-phase Solve *)

let test_phase1_finds_point () =
  (* Feasible set: 1 <= x <= 2, start from 0 (infeasible). *)
  let constraints =
    [| Quad.affine [| -1.0 |] 1.0 (* 1 - x <= 0 *);
       Quad.affine [| 1.0 |] (-2.0) (* x - 2 <= 0 *) |]
  in
  match Phase1.find constraints [| 0.0 |] with
  | Phase1.Strictly_feasible x ->
      check_bool "inside" true (x.(0) > 1.0 && x.(0) < 2.0)
  | Phase1.Infeasible _ -> Alcotest.fail "expected feasible"

let test_phase1_detects_infeasible () =
  (* x <= 0 and x >= 1 simultaneously. *)
  let constraints =
    [| Quad.affine [| 1.0 |] 0.0; Quad.affine [| -1.0 |] 1.0 |]
  in
  match Phase1.find constraints [| 0.5 |] with
  | Phase1.Strictly_feasible _ -> Alcotest.fail "expected infeasible"
  | Phase1.Infeasible worst -> check_bool "worst >= 0" true (worst >= -1e-6)

let test_phase1_short_circuit () =
  (* Already strictly feasible: returns the same point. *)
  let constraints = [| Quad.affine [| 1.0 |] (-10.0) |] in
  match Phase1.find constraints [| 0.0 |] with
  | Phase1.Strictly_feasible x -> check_float 1e-12 "same point" 0.0 x.(0)
  | Phase1.Infeasible _ -> Alcotest.fail "expected feasible"

let test_solve_end_to_end () =
  (* minimize (x-5)^2 s.t. x <= 3, from an infeasible start: optimum 3. *)
  let obj = Quad.square_of_affine [| 1.0 |] (-5.0) in
  let constraints = [| Quad.affine [| 1.0 |] (-3.0) |] in
  match Solve.solve { Barrier.objective = obj; constraints } ~start:[| 10.0 |] with
  | Solve.Optimal s ->
      check_float 1e-4 "optimum" 3.0 s.Solve.x.(0);
      check_bool "kkt" true (Kkt.max_residual (Lazy.force s.Solve.kkt) < 1e-3)
  | Solve.Infeasible _ -> Alcotest.fail "expected optimal"

let test_solve_reports_infeasible () =
  let obj = Quad.affine [| 1.0 |] 0.0 in
  let constraints =
    [| Quad.affine [| 1.0 |] 0.0; Quad.affine [| -1.0 |] 1.0 |]
  in
  match Solve.solve { Barrier.objective = obj; constraints } with
  | Solve.Optimal _ -> Alcotest.fail "expected infeasible"
  | Solve.Infeasible _ -> ()

(* ------------------------------------------------------------------ *)
(* Conic *)

(* minimize x0 + x1 s.t. 0 <= x <= 1 in raw conic form:
   s = h - Gx >= 0 with G = [-I; I], h = [0; 0; 1; 1]. *)
let box_lp_conic () =
  let g =
    Mat.of_rows
      [| [| -1.0; 0.0 |]; [| 0.0; -1.0 |]; [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |]
  in
  Conic.make ~c:[| 1.0; 1.0 |] ~g ~h:[| 0.0; 0.0; 1.0; 1.0 |]
    ~cones:[| Cone.Nonneg 4 |] ()

let test_conic_box_lp () =
  match Conic.solve (box_lp_conic ()) with
  | Conic.Optimal s ->
      check_float 1e-6 "value" 0.0 s.Conic.objective_value;
      check_bool "at corner" true (Vec.norm_inf s.Conic.x < 1e-6);
      check_bool "slack matches" true
        (Vec.approx_equal ~tol:1e-6 s.Conic.s [| 0.0; 0.0; 1.0; 1.0 |]);
      (* Both lower bounds are active: their duals carry the cost. *)
      check_float 1e-5 "dual of x0 >= 0" 1.0 s.Conic.z.(0);
      check_float 1e-5 "dual of x1 >= 0" 1.0 s.Conic.z.(1)
  | st -> Alcotest.failf "expected optimal, got %a" Conic.pp_status st

let test_conic_equality_rows () =
  (* minimize x0 s.t. x0 + x1 = 1, x >= 0: optimum (0, 1). *)
  let t =
    Conic.make ~a:(Mat.of_rows [| [| 1.0; 1.0 |] |]) ~b:[| 1.0 |]
      ~c:[| 1.0; 0.0 |]
      ~g:(Mat.of_rows [| [| -1.0; 0.0 |]; [| 0.0; -1.0 |] |])
      ~h:[| 0.0; 0.0 |] ~cones:[| Cone.Nonneg 2 |] ()
  in
  match Conic.solve t with
  | Conic.Optimal s ->
      check_bool "argmin" true
        (Vec.approx_equal ~tol:1e-6 s.Conic.x [| 0.0; 1.0 |])
  | st -> Alcotest.failf "expected optimal, got %a" Conic.pp_status st

let test_conic_primal_infeasible_certificate () =
  (* x <= 0 and x >= 1 cannot hold together.  The certificate must be
     a separating hyperplane: z in K*, G'z ~ 0, h'z = -1. *)
  let t =
    Conic.make ~c:[| 1.0 |]
      ~g:(Mat.of_rows [| [| 1.0 |]; [| -1.0 |] |])
      ~h:[| 0.0; -1.0 |] ~cones:[| Cone.Nonneg 2 |] ()
  in
  match Conic.solve t with
  | Conic.Primal_infeasible { z; _ } ->
      check_bool "z in dual cone" true (Vec.min z >= -1e-9);
      check_float 1e-6 "G'z ~ 0" 0.0 (Float.abs (z.(0) -. z.(1)));
      check_float 1e-6 "h'z = -1" (-1.0) (-.z.(1))
  | st -> Alcotest.failf "expected primal infeasible, got %a" Conic.pp_status st

let test_conic_dual_infeasible_certificate () =
  (* minimize -x s.t. x >= 0 is unbounded below.  The certificate is
     an improving ray: c'x = -1 with -Gx in K. *)
  let t =
    Conic.make ~c:[| -1.0 |] ~g:(Mat.of_rows [| [| -1.0 |] |]) ~h:[| 0.0 |]
      ~cones:[| Cone.Nonneg 1 |] ()
  in
  match Conic.solve t with
  | Conic.Dual_infeasible { x } ->
      check_float 1e-6 "c'x = -1" (-1.0) (-.x.(0));
      check_bool "-Gx in cone" true (x.(0) >= 0.0)
  | st -> Alcotest.failf "expected dual infeasible, got %a" Conic.pp_status st

(* minimize x0 s.t. x0^2 <= x1, x1 <= 2 — a rank-one quadratic plus an
   affine row, exactly the shape [Conic.of_barrier] accepts.  Optimum
   x = (-sqrt 2, 2), value -sqrt 2. *)
let epigraph_problem () =
  let obj = Quad.affine [| 1.0; 0.0 |] 0.0 in
  let constraints =
    [|
      Quad.add
        (Quad.square_of_affine [| 1.0; 0.0 |] 0.0)
        (Quad.affine [| 0.0; -1.0 |] 0.0);
      Quad.affine [| 0.0; 1.0 |] (-2.0);
    |]
  in
  { Barrier.objective = obj; constraints }

let test_conic_of_barrier_agreement () =
  let p = epigraph_problem () in
  let conic =
    match Conic.solve (Conic.of_barrier p) with
    | Conic.Optimal s -> s
    | st -> Alcotest.failf "conic: expected optimal, got %a" Conic.pp_status st
  in
  check_float 1e-6 "conic value" (-.sqrt 2.0) conic.Conic.objective_value;
  match Solve.solve p ~start:[| 0.0; 1.0 |] with
  | Solve.Optimal b ->
      check_bool "argmin agrees with barrier" true
        (Vec.approx_equal ~tol:1e-5 conic.Conic.x b.Solve.x)
  | Solve.Infeasible _ -> Alcotest.fail "barrier: expected optimal"

let test_conic_constraint_duals () =
  let p = epigraph_problem () in
  let t = Conic.of_barrier p in
  let s =
    match Conic.solve t with
    | Conic.Optimal s -> s
    | st -> Alcotest.failf "expected optimal, got %a" Conic.pp_status st
  in
  let duals = Conic.constraint_duals t s in
  check_int "one dual per constraint" 2 (Vec.dim duals);
  (* KKT stationarity: 1 + lambda0 * 2 x0 = 0 at x0 = -sqrt 2, and the
     x1 column gives -lambda0 + lambda1 = 0. *)
  check_float 1e-4 "epigraph multiplier" (1.0 /. (2.0 *. sqrt 2.0)) duals.(0);
  check_float 1e-4 "affine multiplier" duals.(0) duals.(1);
  check_bool "raw instances have no mapping" true
    (try
       ignore (Conic.constraint_duals (box_lp_conic ()) s);
       false
     with Invalid_argument _ -> true)

let test_conic_warm_start_and_stats () =
  let p = epigraph_problem () in
  let t = Conic.of_barrier p in
  let stats = ref Conic.stats_zero in
  let cold =
    match Conic.solve ~stats_into:stats t with
    | Conic.Optimal s -> s
    | st -> Alcotest.failf "cold: expected optimal, got %a" Conic.pp_status st
  in
  let cold_iters = !stats.Conic.iterations in
  check_bool "counted iterations" true (cold_iters > 0);
  check_int "one factorization per iteration" cold_iters
    !stats.Conic.factorizations;
  check_int "optimal outcome counted" 1 !stats.Conic.optimal;
  (* Re-target the affine bound slightly and warm-start from the
     neighbouring optimum, as the sweep does column to column. *)
  let t' = Conic.with_constraint_constant t ~index:1 (-2.1) in
  let warm =
    match
      Conic.solve ~stats_into:stats ~warm:cold.Conic.x
        ~warm_dual:(Conic.constraint_duals t cold) t'
    with
    | Conic.Optimal s -> s
    | st -> Alcotest.failf "warm: expected optimal, got %a" Conic.pp_status st
  in
  check_float 1e-6 "re-targeted optimum" (-.sqrt 2.1)
    warm.Conic.objective_value;
  check_int "outcomes accumulate" 2 !stats.Conic.optimal

let test_conic_workspace_reuse () =
  let t = Conic.of_barrier (epigraph_problem ()) in
  let ws = Conic.make_workspace t in
  let solve_with inst =
    match Conic.solve ~ws inst with
    | Conic.Optimal s -> s.Conic.objective_value
    | st -> Alcotest.failf "expected optimal, got %a" Conic.pp_status st
  in
  check_float 1e-6 "first solve" (-.sqrt 2.0) (solve_with t);
  check_float 1e-6 "re-targeted reuse" (-.sqrt 3.0)
    (solve_with (Conic.with_constraint_constant t ~index:1 (-3.0)));
  check_float 1e-6 "back to the first instance" (-.sqrt 2.0) (solve_with t);
  check_bool "shape mismatch rejected" true
    (try
       ignore (Conic.solve ~ws (box_lp_conic ()));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Linprog *)

let test_linprog_known () =
  (* minimize -x0 - 2 x1 s.t. x0 + x1 <= 1, x >= 0.
     Optimum at (0, 1), value -2. *)
  let a =
    Mat.of_rows [| [| 1.0; 1.0 |]; [| -1.0; 0.0 |]; [| 0.0; -1.0 |] |]
  in
  match
    Linprog.solve ~c:[| -1.0; -2.0 |] ~a ~b:[| 1.0; 0.0; 0.0 |] ()
  with
  | Linprog.Optimal { x; objective_value; _ } ->
      check_float 1e-4 "value" (-2.0) objective_value;
      check_bool "vertex" true (Vec.approx_equal ~tol:1e-3 x [| 0.0; 1.0 |])
  | Linprog.Infeasible _ -> Alcotest.fail "expected optimal"

let test_linprog_infeasible () =
  let a = Mat.of_rows [| [| 1.0 |]; [| -1.0 |] |] in
  match Linprog.solve ~c:[| 1.0 |] ~a ~b:[| -1.0; -1.0 |] () with
  | Linprog.Optimal _ -> Alcotest.fail "expected infeasible"
  | Linprog.Infeasible _ -> ()

(* ------------------------------------------------------------------ *)
(* Simplex *)

let test_simplex_known () =
  (* max x0 + 2 x1 s.t. x0 + x1 <= 4, x1 <= 2, x >= 0: optimum (2,2),
     value -6 for the minimization form. *)
  let a = Mat.of_rows [| [| 1.0; 1.0 |]; [| 0.0; 1.0 |] |] in
  match Simplex.solve ~c:[| -1.0; -2.0 |] ~a ~b:[| 4.0; 2.0 |] with
  | Simplex.Optimal { x; objective_value } ->
      check_float 1e-9 "value" (-6.0) objective_value;
      check_bool "vertex" true (Vec.approx_equal ~tol:1e-9 x [| 2.0; 2.0 |])
  | Simplex.Unbounded | Simplex.Infeasible -> Alcotest.fail "expected optimal"

let test_simplex_two_phase () =
  (* min x s.t. x >= 1 (written -x <= -1), x >= 0: needs phase 1. *)
  let a = Mat.of_rows [| [| -1.0 |] |] in
  match Simplex.solve ~c:[| 1.0 |] ~a ~b:[| -1.0 |] with
  | Simplex.Optimal { x; objective_value } ->
      check_float 1e-9 "value" 1.0 objective_value;
      check_float 1e-9 "x" 1.0 x.(0)
  | Simplex.Unbounded | Simplex.Infeasible -> Alcotest.fail "expected optimal"

let test_simplex_infeasible () =
  (* x <= 1 and x >= 2 simultaneously. *)
  let a = Mat.of_rows [| [| 1.0 |]; [| -1.0 |] |] in
  check_bool "infeasible" true
    (Simplex.solve ~c:[| 0.0 |] ~a ~b:[| 1.0; -2.0 |] = Simplex.Infeasible)

let test_simplex_unbounded () =
  (* min -x0 with only x0 - x1 <= 1: x0 can grow with x1. *)
  let a = Mat.of_rows [| [| 1.0; -1.0 |] |] in
  check_bool "unbounded" true
    (Simplex.solve ~c:[| -1.0; 0.0 |] ~a ~b:[| 1.0 |] = Simplex.Unbounded)

let test_simplex_degenerate () =
  (* Degenerate vertex (redundant constraints through the optimum):
     Bland's rule must terminate. *)
  let a =
    Mat.of_rows
      [| [| 1.0; 1.0 |]; [| 1.0; 1.0 |]; [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |]
  in
  match Simplex.solve ~c:[| -1.0; -1.0 |] ~a ~b:[| 1.0; 1.0; 1.0; 1.0 |] with
  | Simplex.Optimal { objective_value; _ } ->
      check_float 1e-9 "value" (-1.0) objective_value
  | Simplex.Unbounded | Simplex.Infeasible -> Alcotest.fail "expected optimal"

(* ------------------------------------------------------------------ *)
(* Bisect *)

let test_bisect_threshold () =
  let r = Bisect.max_feasible ~tol:1e-9 ~lo:0.0 ~hi:10.0 (fun x -> x <= 3.7) in
  (match r.Bisect.best_feasible with
  | Some v -> check_float 1e-6 "threshold" 3.7 v
  | None -> Alcotest.fail "expected feasible");
  check_bool "probes logarithmic" true (r.Bisect.probes < 50)

let test_bisect_all_infeasible () =
  let r = Bisect.max_feasible ~lo:0.0 ~hi:1.0 (fun _ -> false) in
  check_bool "none" true (r.Bisect.best_feasible = None);
  check_bool "lo infeasible" true (r.Bisect.first_infeasible = Some 0.0)

let test_bisect_all_feasible () =
  let r = Bisect.max_feasible ~lo:0.0 ~hi:1.0 (fun _ -> true) in
  check_bool "hi feasible" true (r.Bisect.best_feasible = Some 1.0);
  check_bool "none infeasible" true (r.Bisect.first_infeasible = None)

(* ------------------------------------------------------------------ *)
(* Property tests *)

(* Random convex QP with box constraints: the barrier optimum must
   satisfy the KKT conditions and beat random feasible points. *)
let random_box_qp st n =
  let p = random_spd st n in
  let q = random_vec st n in
  let obj = Quad.quadratic p q 0.0 in
  let constraints =
    Array.init (2 * n) (fun k ->
        let i = k / 2 in
        if k mod 2 = 0 then Quad.linear_coord n i (-1.0) |> fun f ->
          Quad.add_constant f (-1.0) (* -x_i - 1 <= 0 *)
        else Quad.add_constant (Quad.linear_coord n i 1.0) (-1.0)
        (* x_i - 1 <= 0 *))
  in
  { Barrier.objective = obj; constraints }

let prop_barrier_kkt =
  QCheck2.Test.make ~name:"barrier: KKT residuals small on random QPs"
    ~count:60 qp_gen (fun (n, seed) ->
      let st = mk_rand seed in
      let p = random_box_qp st n in
      let r = Barrier.solve p (Vec.zeros n) in
      let kkt = Kkt.residuals p r.Barrier.x r.Barrier.dual in
      Kkt.max_residual kkt < 1e-4)

let prop_barrier_beats_random_feasible =
  QCheck2.Test.make
    ~name:"barrier: optimum value <= random feasible points" ~count:60 qp_gen
    (fun (n, seed) ->
      let st = mk_rand seed in
      let p = random_box_qp st n in
      let r = Barrier.solve p (Vec.zeros n) in
      let ok = ref true in
      for _ = 1 to 20 do
        let y = Vec.init n (fun _ -> Random.State.float st 1.8 -. 0.9) in
        if Quad.eval p.Barrier.objective y < r.Barrier.objective_value -. 1e-5
        then ok := false
      done;
      !ok)

let prop_phase1_consistent =
  (* Intervals [a, b]: phase 1 must find a point iff a < b. *)
  QCheck2.Test.make ~name:"phase1: interval feasibility" ~count:100
    QCheck2.Gen.(pair (float_range (-5.0) 5.0) (float_range (-5.0) 5.0))
    (fun (a, b) ->
      QCheck2.assume (Float.abs (a -. b) > 1e-3);
      let constraints =
        [| Quad.add_constant (Quad.linear_coord 1 0 (-1.0)) a
           (* a - x <= 0 *);
           Quad.add_constant (Quad.linear_coord 1 0 1.0) (-.b)
           (* x - b <= 0 *) |]
      in
      match Phase1.find constraints [| 0.0 |] with
      | Phase1.Strictly_feasible x -> a < b && x.(0) > a && x.(0) < b
      | Phase1.Infeasible _ -> a > b)

(* The strongest solver evidence available: two algorithmically
   independent LP solvers (tableau simplex vs log-barrier IPM) agree on
   random feasible bounded instances. *)
let prop_simplex_matches_barrier =
  QCheck2.Test.make ~name:"simplex and barrier agree on random LPs"
    ~count:40 qp_gen (fun (n, seed) ->
      let st = mk_rand seed in
      let m_rows = 1 + Random.State.int st 5 in
      let a0 =
        Mat.init m_rows n (fun _ _ -> Random.State.float st 2.0 -. 1.0)
      in
      let b0 = Vec.init m_rows (fun _ -> 0.5 +. Random.State.float st 1.5) in
      let c = random_vec st n in
      (* Box x <= 3 keeps both solvers bounded; x >= 0 is implicit for
         the simplex and explicit rows for the barrier. *)
      let box = Mat.init n n (fun i j -> if i = j then 1.0 else 0.0) in
      let a_simplex =
        Mat.init (m_rows + n) n (fun i j ->
            if i < m_rows then Mat.get a0 i j else Mat.get box (i - m_rows) j)
      in
      let b_simplex = Vec.concat b0 (Vec.create n 3.0) in
      let a_barrier =
        Mat.init (m_rows + (2 * n)) n (fun i j ->
            if i < m_rows then Mat.get a0 i j
            else if i < m_rows + n then Mat.get box (i - m_rows) j
            else if i - m_rows - n = j then -1.0
            else 0.0)
      in
      let b_barrier = Vec.concat b_simplex (Vec.zeros n) in
      match
        ( Simplex.solve ~c ~a:a_simplex ~b:b_simplex,
          Linprog.solve ~c ~a:a_barrier ~b:b_barrier () )
      with
      | ( Simplex.Optimal { objective_value = sv; _ },
          Linprog.Optimal { objective_value = lv; _ } ) ->
          Float.abs (sv -. lv) < 1e-3 *. Float.max 1.0 (Float.abs sv)
      | Simplex.Infeasible, Linprog.Infeasible _ -> true
      | _, _ -> false)

(* Random affine expressions: the DCP layer's compilation to Quad must
   agree with direct evaluation, and squares must evaluate to squares. *)
let random_affine st n =
  let q = random_vec st n in
  let r = Random.State.float st 2.0 -. 1.0 in
  (Expr.affine_of q r, q, r)

let prop_expr_eval_matches_quad =
  QCheck2.Test.make ~name:"expr: eval agrees with compiled quad" ~count:100
    qp_gen (fun (n, seed) ->
      let st = mk_rand seed in
      let e1, _, _ = random_affine st n in
      let e2, _, _ = random_affine st n in
      let expr = Expr.add (Expr.square e1) (Expr.scale 3.0 e2) in
      let x = random_vec st n in
      Float.abs (Expr.eval expr x -. Quad.eval (Expr.to_quad expr) x) < 1e-9)

let prop_expr_square_is_square =
  QCheck2.Test.make ~name:"expr: square evaluates to the square" ~count:100
    qp_gen (fun (n, seed) ->
      let st = mk_rand seed in
      let e, q, r = random_affine st n in
      let x = random_vec st n in
      let v = Vec.dot q x +. r in
      Float.abs (Expr.eval (Expr.square e) x -. (v *. v)) < 1e-9)

let prop_expr_curvature_closed =
  (* Sums and nonnegative scalings of convex expressions stay convex,
     and their compiled Hessians are PSD. *)
  QCheck2.Test.make ~name:"expr: convex compositions have PSD Hessians"
    ~count:60 qp_gen (fun (n, seed) ->
      let st = mk_rand seed in
      let e1, _, _ = random_affine st n in
      let e2, _, _ = random_affine st n in
      let c = Random.State.float st 3.0 in
      let expr = Expr.add (Expr.scale c (Expr.square e1)) (Expr.square e2) in
      Expr.curvature expr = Expr.Convex
      && Quad.hess_is_psd (Expr.to_quad expr))

(* End-to-end through the DCP layer: a least-squares-with-box problem
   posed with Expr, solved by the barrier, checked against the
   projection. *)
let test_expr_to_solver_end_to_end () =
  let n = 3 in
  (* minimize sum_i (x_i - 2)^2 s.t. 0 <= x_i <= 1: optimum (1,1,1). *)
  let terms =
    List.init n (fun i ->
        Expr.square (Expr.sub (Expr.var n i) (Expr.const n 2.0)))
  in
  let obj = List.fold_left Expr.add (List.hd terms) (List.tl terms) in
  let constrs =
    List.concat_map (fun i -> Expr.box n i ~lo:0.0 ~hi:1.0) (List.init n Fun.id)
  in
  let problem = Expr.minimize obj constrs in
  match Solve.solve problem ~start:(Vec.create n 0.5) with
  | Solve.Optimal s ->
      check_bool "projection" true
        (Vec.approx_equal ~tol:1e-4 s.Solve.x (Vec.create n 1.0))
  | Solve.Infeasible _ -> Alcotest.fail "expected optimal"

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_barrier_kkt; prop_barrier_beats_random_feasible;
      prop_phase1_consistent; prop_simplex_matches_barrier;
      prop_expr_eval_matches_quad; prop_expr_square_is_square;
      prop_expr_curvature_closed; prop_compiled_oracle_matches_naive;
      prop_compiled_max_step_is_the_wall;
      prop_compiled_backend_same_optimum ]

let () =
  Alcotest.run "convex"
    [
      ( "quad",
        [
          Alcotest.test_case "affine eval/grad" `Quick test_quad_affine_eval;
          Alcotest.test_case "quadratic eval/grad" `Quick
            test_quad_quadratic_eval;
          Alcotest.test_case "square of affine" `Quick
            test_quad_square_of_affine;
          Alcotest.test_case "algebra" `Quick test_quad_algebra;
          Alcotest.test_case "extend" `Quick test_quad_extend;
          Alcotest.test_case "gradient vs finite differences" `Quick
            test_quad_grad_finite_difference;
        ] );
      ( "expr",
        [
          Alcotest.test_case "curvature tracking" `Quick test_expr_curvature;
          Alcotest.test_case "rejects non-DCP" `Quick test_expr_rejects_non_dcp;
          Alcotest.test_case "evaluation" `Quick test_expr_eval;
          Alcotest.test_case "quad_form" `Quick test_expr_quad_form;
          Alcotest.test_case "end-to-end through the solver" `Quick
            test_expr_to_solver_end_to_end;
        ] );
      ( "newton",
        [
          Alcotest.test_case "quadratic bowl" `Quick
            test_newton_quadratic_one_step;
          Alcotest.test_case "respects domain" `Quick
            test_newton_respects_domain;
          Alcotest.test_case "rejects bad start" `Quick
            test_newton_rejects_bad_start;
        ] );
      ( "barrier",
        [
          Alcotest.test_case "box LP" `Quick test_barrier_box_lp;
          Alcotest.test_case "projection QP" `Quick test_barrier_projection;
          Alcotest.test_case "inactive constraint" `Quick
            test_barrier_inactive_constraint;
          Alcotest.test_case "quadratic constraint" `Quick
            test_barrier_quadratic_constraint;
          Alcotest.test_case "rejects infeasible start" `Quick
            test_barrier_rejects_infeasible_start;
          Alcotest.test_case "unconstrained" `Quick test_barrier_unconstrained;
          Alcotest.test_case "work counters" `Quick test_barrier_stats;
        ] );
      ( "compiled",
        [
          Alcotest.test_case "partition" `Quick test_compiled_partition;
          Alcotest.test_case "with_constant" `Quick test_compiled_with_constant;
        ] );
      ( "phase1",
        [
          Alcotest.test_case "finds point" `Quick test_phase1_finds_point;
          Alcotest.test_case "detects infeasible" `Quick
            test_phase1_detects_infeasible;
          Alcotest.test_case "short circuit" `Quick test_phase1_short_circuit;
        ] );
      ( "solve",
        [
          Alcotest.test_case "end to end" `Quick test_solve_end_to_end;
          Alcotest.test_case "reports infeasible" `Quick
            test_solve_reports_infeasible;
        ] );
      ( "conic",
        [
          Alcotest.test_case "box LP" `Quick test_conic_box_lp;
          Alcotest.test_case "equality rows" `Quick test_conic_equality_rows;
          Alcotest.test_case "primal-infeasible certificate" `Quick
            test_conic_primal_infeasible_certificate;
          Alcotest.test_case "dual-infeasible certificate" `Quick
            test_conic_dual_infeasible_certificate;
          Alcotest.test_case "agrees with barrier" `Quick
            test_conic_of_barrier_agreement;
          Alcotest.test_case "constraint duals" `Quick
            test_conic_constraint_duals;
          Alcotest.test_case "warm start and stats" `Quick
            test_conic_warm_start_and_stats;
          Alcotest.test_case "workspace reuse" `Quick
            test_conic_workspace_reuse;
        ] );
      ( "linprog",
        [
          Alcotest.test_case "known LP" `Quick test_linprog_known;
          Alcotest.test_case "infeasible LP" `Quick test_linprog_infeasible;
        ] );
      ( "simplex",
        [
          Alcotest.test_case "known LP" `Quick test_simplex_known;
          Alcotest.test_case "two-phase start" `Quick test_simplex_two_phase;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "degenerate (Bland)" `Quick
            test_simplex_degenerate;
        ] );
      ( "bisect",
        [
          Alcotest.test_case "finds threshold" `Quick test_bisect_threshold;
          Alcotest.test_case "all infeasible" `Quick test_bisect_all_infeasible;
          Alcotest.test_case "all feasible" `Quick test_bisect_all_feasible;
        ] );
      ("properties", props);
    ]
