(* Campaign driver: grid shape, ordering, and the determinism
   guarantee — identical per-cell Stats.t for any domain count,
   mirroring the offline table's domain-invariance check. *)

let machine = lazy (Sim.Machine.niagara ())

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fmax = 1e9

let small_spec ?(n_tasks = 400) () =
  {
    Sim.Campaign.controllers =
      [
        ("fmax", fun () -> Sim.Policy.fixed_frequency ~fmax fmax);
        ("half", fun () -> Sim.Policy.fixed_frequency ~fmax (fmax /. 2.0));
        ("no-tc", fun () -> Sim.Policy.workload_following ~fmax);
      ];
    assignments = [ Sim.Policy.first_idle; Sim.Policy.coolest_first ];
    scenarios =
      [
        Sim.Campaign.scenario ~seed:11L ~n_tasks ~name:"web" Workload.Mix.web;
        Sim.Campaign.scenario ~seed:12L ~n_tasks ~name:"compute"
          Workload.Mix.compute_intensive;
      ];
    faults = [];
    config = Sim.Engine.default_config;
  }

let test_grid_shape_and_order () =
  let m = Lazy.force machine in
  let spec = small_spec () in
  let cells = Sim.Campaign.run ~domains:1 ~machine:m spec in
  check_int "cell count" (Sim.Campaign.cells spec) (Array.length cells);
  check_int "cell count is the product" 12 (Array.length cells);
  (* Controller-major: index = ((ci * n_assign) + ai) * n_scen + si. *)
  Array.iteri
    (fun i c -> check_int "index matches position" i c.Sim.Campaign.index)
    cells;
  check_bool "first cell" true
    (cells.(0).Sim.Campaign.controller_name = "fmax"
    && cells.(0).Sim.Campaign.assignment_name = "first-idle"
    && cells.(0).Sim.Campaign.scenario_name = "web");
  check_bool "scenario varies fastest" true
    (cells.(1).Sim.Campaign.controller_name = "fmax"
    && cells.(1).Sim.Campaign.assignment_name = "first-idle"
    && cells.(1).Sim.Campaign.scenario_name = "compute");
  check_bool "last cell" true
    (cells.(11).Sim.Campaign.controller_name = "no-tc"
    && cells.(11).Sim.Campaign.assignment_name = "coolest-first"
    && cells.(11).Sim.Campaign.scenario_name = "compute")

let test_domain_count_invariant () =
  (* The acceptance bar: per-cell Stats.t identical for any
     PROTEMP_DOMAINS value.  Domain counts beyond the hardware just
     oversubscribe; results must not change. *)
  let m = Lazy.force machine in
  let spec = small_spec () in
  let base = Sim.Campaign.run ~domains:1 ~machine:m spec in
  List.iter
    (fun domains ->
      let cells = Sim.Campaign.run ~domains ~machine:m spec in
      check_int "same cell count" (Array.length base) (Array.length cells);
      Array.iteri
        (fun i c ->
          check_bool
            (Printf.sprintf "cell %d stats identical at %d domains" i domains)
            true
            (Sim.Stats.equal base.(i).Sim.Campaign.result.Sim.Engine.stats
               c.Sim.Campaign.result.Sim.Engine.stats);
          check_int "unfinished identical"
            base.(i).Sim.Campaign.result.Sim.Engine.unfinished
            c.Sim.Campaign.result.Sim.Engine.unfinished)
        cells)
    [ 2; 4 ]

let test_on_cell_covers_grid () =
  let m = Lazy.force machine in
  let spec = small_spec ~n_tasks:100 () in
  let seen = Hashtbl.create 16 in
  let cells =
    Sim.Campaign.run ~domains:2
      ~on_cell:(fun c -> Hashtbl.replace seen c.Sim.Campaign.index ())
      ~machine:m spec
  in
  check_int "every cell reported" (Array.length cells) (Hashtbl.length seen)

(* ------------------------------------------------------------------ *)
(* The fault axis *)

let faulty_spec ?n_tasks () =
  {
    (small_spec ?n_tasks ()) with
    Sim.Campaign.faults =
      [
        ("clean", []);
        ("noise1", [ Sim.Fault.sensor_noise ~seed:31L ~magnitude:1.0 () ]);
        ("stale2", [ Sim.Fault.stale_observation ~epochs:2 ]);
      ];
  }

let test_fault_axis_shape () =
  let m = Lazy.force machine in
  let spec = faulty_spec ~n_tasks:100 () in
  let cells = Sim.Campaign.run ~domains:1 ~machine:m spec in
  check_int "cell count triples" 36 (Array.length cells);
  check_int "cells agrees" (Sim.Campaign.cells spec) (Array.length cells);
  Array.iteri
    (fun i c -> check_int "index matches position" i c.Sim.Campaign.index)
    cells;
  (* Fault varies fastest. *)
  check_bool "fault order" true
    (cells.(0).Sim.Campaign.fault_name = "clean"
    && cells.(1).Sim.Campaign.fault_name = "noise1"
    && cells.(2).Sim.Campaign.fault_name = "stale2"
    && cells.(3).Sim.Campaign.fault_name = "clean"
    && cells.(3).Sim.Campaign.scenario_name = "compute");
  (* An empty fault list is the single clean coordinate. *)
  let clean = Sim.Campaign.run ~domains:1 ~machine:m (small_spec ~n_tasks:100 ()) in
  Array.iter
    (fun c -> check_bool "default fault name" true (c.Sim.Campaign.fault_name = "none"))
    clean;
  (* The explicit clean coordinate reproduces the fault-free cell
     bit-for-bit. *)
  Array.iter
    (fun c ->
      if c.Sim.Campaign.fault_name = "clean" then begin
        let matching =
          Array.to_list clean
          |> List.find (fun c' ->
                 c'.Sim.Campaign.controller_name = c.Sim.Campaign.controller_name
                 && c'.Sim.Campaign.assignment_name = c.Sim.Campaign.assignment_name
                 && c'.Sim.Campaign.scenario_name = c.Sim.Campaign.scenario_name)
        in
        check_bool "clean coordinate bit-identical" true
          (Sim.Stats.equal c.Sim.Campaign.result.Sim.Engine.stats
             matching.Sim.Campaign.result.Sim.Engine.stats)
      end)
    cells

let test_fault_axis_domain_invariant () =
  (* Seeded fault state lives in the per-cell wrap, so faulty cells
     must stay bit-identical at any domain count too. *)
  let m = Lazy.force machine in
  let spec = faulty_spec ~n_tasks:200 () in
  let base = Sim.Campaign.run ~domains:1 ~machine:m spec in
  List.iter
    (fun domains ->
      let cells = Sim.Campaign.run ~domains ~machine:m spec in
      Array.iteri
        (fun i c ->
          check_bool
            (Printf.sprintf "faulty cell %d identical at %d domains" i domains)
            true
            (Sim.Stats.equal base.(i).Sim.Campaign.result.Sim.Engine.stats
               c.Sim.Campaign.result.Sim.Engine.stats))
        cells)
    [ 3; 5 ]

(* Regression for the Online counter bug: counters used to live in a
   global Hashtbl keyed by controller name, with a non-atomic id
   counter — campaign workers building controllers concurrently could
   collide on names and share (or lose) counts.  Now every instance
   carries its own atomics and ids are atomic. *)
let test_online_per_controller_counts () =
  let m = Lazy.force machine in
  let pspec =
    { Protemp.Spec.default with Protemp.Spec.constraint_stride = 8 }
  in
  let lock = Mutex.create () in
  let created = ref [] in
  let make () =
    let t = Protemp.Online.create ~machine:m ~spec:pspec () in
    Mutex.lock lock;
    created := t :: !created;
    Mutex.unlock lock;
    Protemp.Online.controller t
  in
  let spec =
    {
      Sim.Campaign.controllers = [ ("online", make) ];
      assignments = [ Sim.Policy.first_idle ];
      scenarios =
        [
          Sim.Campaign.scenario ~seed:21L ~n_tasks:80 ~name:"web"
            Workload.Mix.web;
          Sim.Campaign.scenario ~seed:22L ~n_tasks:80 ~name:"compute"
            Workload.Mix.compute_intensive;
        ];
      faults =
        [
          ("clean", []);
          ("noise1", [ Sim.Fault.sensor_noise ~seed:31L ~magnitude:1.0 () ]);
        ];
      config = Sim.Engine.default_config;
    }
  in
  let cells = Sim.Campaign.run ~domains:4 ~machine:m spec in
  let instances = !created in
  check_int "one fresh instance per cell" (Array.length cells)
    (List.length instances);
  List.iter
    (fun t ->
      check_bool "every instance decided at least once" true
        (Protemp.Online.solves t > 0))
    instances;
  let names =
    List.map
      (fun t -> (Protemp.Online.controller t).Sim.Policy.controller_name)
      instances
  in
  check_int "instance names unique" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_empty_spec_rejected () =
  let m = Lazy.force machine in
  let spec = { (small_spec ()) with Sim.Campaign.controllers = [] } in
  check_bool "no controllers rejected" true
    (match Sim.Campaign.run ~domains:1 ~machine:m spec with
    | _ -> false
    | exception Invalid_argument _ -> true)

let () =
  Alcotest.run "campaign"
    [
      ( "campaign",
        [
          Alcotest.test_case "grid shape and order" `Quick
            test_grid_shape_and_order;
          Alcotest.test_case "domain-count invariant" `Quick
            test_domain_count_invariant;
          Alcotest.test_case "on_cell covers the grid" `Quick
            test_on_cell_covers_grid;
          Alcotest.test_case "fault axis shape" `Quick test_fault_axis_shape;
          Alcotest.test_case "fault axis domain invariant" `Quick
            test_fault_axis_domain_invariant;
          Alcotest.test_case "online per-controller counts" `Quick
            test_online_per_controller_counts;
          Alcotest.test_case "empty spec rejected" `Quick
            test_empty_spec_rejected;
        ] );
    ]
