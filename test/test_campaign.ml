(* Campaign driver: grid shape, ordering, and the determinism
   guarantee — identical per-cell Stats.t for any domain count,
   mirroring the offline table's domain-invariance check. *)

let machine = lazy (Sim.Machine.niagara ())

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fmax = 1e9

let small_spec ?(n_tasks = 400) () =
  {
    Sim.Campaign.controllers =
      [
        ("fmax", fun () -> Sim.Policy.fixed_frequency ~fmax fmax);
        ("half", fun () -> Sim.Policy.fixed_frequency ~fmax (fmax /. 2.0));
        ("no-tc", fun () -> Sim.Policy.workload_following ~fmax);
      ];
    assignments = [ Sim.Policy.first_idle; Sim.Policy.coolest_first ];
    scenarios =
      [
        Sim.Campaign.scenario ~seed:11L ~n_tasks ~name:"web" Workload.Mix.web;
        Sim.Campaign.scenario ~seed:12L ~n_tasks ~name:"compute"
          Workload.Mix.compute_intensive;
      ];
    config = Sim.Engine.default_config;
  }

let test_grid_shape_and_order () =
  let m = Lazy.force machine in
  let spec = small_spec () in
  let cells = Sim.Campaign.run ~domains:1 ~machine:m spec in
  check_int "cell count" (Sim.Campaign.cells spec) (Array.length cells);
  check_int "cell count is the product" 12 (Array.length cells);
  (* Controller-major: index = ((ci * n_assign) + ai) * n_scen + si. *)
  Array.iteri
    (fun i c -> check_int "index matches position" i c.Sim.Campaign.index)
    cells;
  check_bool "first cell" true
    (cells.(0).Sim.Campaign.controller_name = "fmax"
    && cells.(0).Sim.Campaign.assignment_name = "first-idle"
    && cells.(0).Sim.Campaign.scenario_name = "web");
  check_bool "scenario varies fastest" true
    (cells.(1).Sim.Campaign.controller_name = "fmax"
    && cells.(1).Sim.Campaign.assignment_name = "first-idle"
    && cells.(1).Sim.Campaign.scenario_name = "compute");
  check_bool "last cell" true
    (cells.(11).Sim.Campaign.controller_name = "no-tc"
    && cells.(11).Sim.Campaign.assignment_name = "coolest-first"
    && cells.(11).Sim.Campaign.scenario_name = "compute")

let test_domain_count_invariant () =
  (* The acceptance bar: per-cell Stats.t identical for any
     PROTEMP_DOMAINS value.  Domain counts beyond the hardware just
     oversubscribe; results must not change. *)
  let m = Lazy.force machine in
  let spec = small_spec () in
  let base = Sim.Campaign.run ~domains:1 ~machine:m spec in
  List.iter
    (fun domains ->
      let cells = Sim.Campaign.run ~domains ~machine:m spec in
      check_int "same cell count" (Array.length base) (Array.length cells);
      Array.iteri
        (fun i c ->
          check_bool
            (Printf.sprintf "cell %d stats identical at %d domains" i domains)
            true
            (Sim.Stats.equal base.(i).Sim.Campaign.result.Sim.Engine.stats
               c.Sim.Campaign.result.Sim.Engine.stats);
          check_int "unfinished identical"
            base.(i).Sim.Campaign.result.Sim.Engine.unfinished
            c.Sim.Campaign.result.Sim.Engine.unfinished)
        cells)
    [ 2; 4 ]

let test_on_cell_covers_grid () =
  let m = Lazy.force machine in
  let spec = small_spec ~n_tasks:100 () in
  let seen = Hashtbl.create 16 in
  let cells =
    Sim.Campaign.run ~domains:2
      ~on_cell:(fun c -> Hashtbl.replace seen c.Sim.Campaign.index ())
      ~machine:m spec
  in
  check_int "every cell reported" (Array.length cells) (Hashtbl.length seen)

let test_empty_spec_rejected () =
  let m = Lazy.force machine in
  let spec = { (small_spec ()) with Sim.Campaign.controllers = [] } in
  check_bool "no controllers rejected" true
    (match Sim.Campaign.run ~domains:1 ~machine:m spec with
    | _ -> false
    | exception Invalid_argument _ -> true)

let () =
  Alcotest.run "campaign"
    [
      ( "campaign",
        [
          Alcotest.test_case "grid shape and order" `Quick
            test_grid_shape_and_order;
          Alcotest.test_case "domain-count invariant" `Quick
            test_domain_count_invariant;
          Alcotest.test_case "on_cell covers the grid" `Quick
            test_on_cell_covers_grid;
          Alcotest.test_case "empty spec rejected" `Quick
            test_empty_spec_rejected;
        ] );
    ]
