(* Tests for the dense/sparse linear algebra substrate. *)

open Linalg

let check_float = Alcotest.(check (float 1e-9))
let check_float_loose tol = Alcotest.(check (float tol))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A deterministic PRNG for the property tests (qcheck has its own,
   this is for hand-rolled random fixtures). *)
let mk_rand seed = Random.State.make [| seed |]

let random_vec st n = Vec.init n (fun _ -> Random.State.float st 2.0 -. 1.0)

let random_mat st n m =
  Mat.init n m (fun _ _ -> Random.State.float st 2.0 -. 1.0)

(* Random symmetric positive-definite matrix: A^T A + I. *)
let random_spd st n =
  let a = random_mat st n n in
  Mat.add (Mat.matmul (Mat.transpose a) a) (Mat.identity n)

(* Random diagonally dominant matrix (guaranteed non-singular). *)
let random_dd st n =
  let a = random_mat st n n in
  Mat.init n n (fun i j ->
      if i = j then float_of_int n +. Mat.get a i j else Mat.get a i j)

(* ------------------------------------------------------------------ *)
(* Vec *)

let test_vec_basic () =
  let v = Vec.of_list [ 1.0; 2.0; 3.0 ] in
  check_int "dim" 3 (Vec.dim v);
  check_float "sum" 6.0 (Vec.sum v);
  check_float "mean" 2.0 (Vec.mean v);
  check_float "min" 1.0 (Vec.min v);
  check_float "max" 3.0 (Vec.max v);
  check_int "argmax" 2 (Vec.argmax v);
  check_int "argmin" 0 (Vec.argmin v);
  check_float "norm1" 6.0 (Vec.norm1 v);
  check_float "norm_inf" 3.0 (Vec.norm_inf v);
  check_float "norm2" (sqrt 14.0) (Vec.norm2 v)

let test_vec_arith () =
  let x = Vec.of_list [ 1.0; -2.0 ] and y = Vec.of_list [ 3.0; 4.0 ] in
  check_bool "add" true (Vec.approx_equal (Vec.add x y) [| 4.0; 2.0 |]);
  check_bool "sub" true (Vec.approx_equal (Vec.sub x y) [| -2.0; -6.0 |]);
  check_bool "scale" true (Vec.approx_equal (Vec.scale 2.0 x) [| 2.0; -4.0 |]);
  check_bool "mul" true (Vec.approx_equal (Vec.mul x y) [| 3.0; -8.0 |]);
  check_bool "axpy" true
    (Vec.approx_equal (Vec.axpy 2.0 x y) [| 5.0; 0.0 |]);
  check_float "dot" (-5.0) (Vec.dot x y);
  check_float "dist2" (sqrt (4.0 +. 36.0)) (Vec.dist2 x y)

let test_vec_inplace () =
  let x = Vec.of_list [ 1.0; 2.0 ] in
  Vec.add_into ~dst:x [| 10.0; 20.0 |];
  check_bool "add_into" true (Vec.approx_equal x [| 11.0; 22.0 |]);
  Vec.scale_into ~dst:x 0.5;
  check_bool "scale_into" true (Vec.approx_equal x [| 5.5; 11.0 |]);
  Vec.axpy_into ~dst:x 2.0 [| 1.0; 1.0 |];
  check_bool "axpy_into" true (Vec.approx_equal x [| 7.5; 13.0 |])

let test_vec_linspace () =
  let v = Vec.linspace 0.0 1.0 5 in
  check_bool "linspace" true
    (Vec.approx_equal v [| 0.0; 0.25; 0.5; 0.75; 1.0 |])

let test_vec_slice_concat () =
  let v = Vec.of_list [ 1.0; 2.0; 3.0; 4.0 ] in
  check_bool "slice" true (Vec.approx_equal (Vec.slice v 1 2) [| 2.0; 3.0 |]);
  check_bool "concat" true
    (Vec.approx_equal (Vec.concat [| 1.0 |] [| 2.0 |]) [| 1.0; 2.0 |])

let test_vec_errors () =
  Alcotest.check_raises "dim mismatch"
    (Invalid_argument "Vec.add: dimension mismatch (2 vs 3)") (fun () ->
      ignore (Vec.add [| 1.0; 2.0 |] [| 1.0; 2.0; 3.0 |]));
  Alcotest.check_raises "empty mean" (Invalid_argument "Vec.mean: empty vector")
    (fun () -> ignore (Vec.mean [||]))

(* ------------------------------------------------------------------ *)
(* Mat *)

let test_mat_basic () =
  let m = Mat.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  check_int "rows" 2 (Mat.rows m);
  check_int "cols" 2 (Mat.cols m);
  check_float "get" 3.0 (Mat.get m 1 0);
  check_float "trace" 5.0 (Mat.trace m);
  check_bool "row" true (Vec.approx_equal (Mat.row m 0) [| 1.0; 2.0 |]);
  check_bool "col" true (Vec.approx_equal (Mat.col m 1) [| 2.0; 4.0 |]);
  check_bool "diag" true (Vec.approx_equal (Mat.diag m) [| 1.0; 4.0 |])

let test_mat_matmul () =
  let a = Mat.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Mat.of_rows [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let c = Mat.matmul a b in
  check_bool "matmul" true
    (Mat.approx_equal c (Mat.of_rows [| [| 2.0; 1.0 |]; [| 4.0; 3.0 |] |]))

let test_mat_mulvec () =
  let a = Mat.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  check_bool "mul_vec" true
    (Vec.approx_equal (Mat.mul_vec a [| 1.0; 1.0 |]) [| 3.0; 7.0 |]);
  check_bool "tmul_vec" true
    (Vec.approx_equal (Mat.tmul_vec a [| 1.0; 1.0 |]) [| 4.0; 6.0 |])

let test_mat_identity_pow () =
  let st = mk_rand 7 in
  let a = random_mat st 4 4 in
  check_bool "a^0 = I" true (Mat.approx_equal (Mat.pow a 0) (Mat.identity 4));
  check_bool "a^1 = a" true (Mat.approx_equal (Mat.pow a 1) a);
  check_bool "a^3 = a*a*a" true
    (Mat.approx_equal ~tol:1e-9 (Mat.pow a 3) (Mat.matmul a (Mat.matmul a a)))

let test_mat_outer () =
  let m = Mat.outer [| 1.0; 2.0 |] [| 3.0; 4.0 |] in
  check_bool "outer" true
    (Mat.approx_equal m (Mat.of_rows [| [| 3.0; 4.0 |]; [| 6.0; 8.0 |] |]));
  let a = Mat.zeros 2 2 in
  Mat.add_outer_into a 2.0 [| 1.0; 1.0 |];
  check_bool "add_outer_into" true
    (Mat.approx_equal a (Mat.of_rows [| [| 2.0; 2.0 |]; [| 2.0; 2.0 |] |]))

let test_mat_upper_accumulation () =
  (* Accumulating rank-ones in the upper triangle and mirroring must
     equal the full-update path. *)
  let st = mk_rand 53 in
  let n = 5 in
  let full = Mat.zeros n n and upper = Mat.zeros n n in
  for _ = 1 to 10 do
    let x = random_vec st n in
    let c = Random.State.float st 2.0 in
    Mat.add_outer_into full c x;
    Mat.add_outer_upper_into upper c x
  done;
  Mat.mirror_upper upper;
  check_bool "matches full update" true (Mat.approx_equal ~tol:1e-12 full upper)

let test_mat_gemv_into () =
  let st = mk_rand 59 in
  let a = random_mat st 4 6 in
  let x = random_vec st 6 and y = random_vec st 4 in
  let dst = Vec.zeros 4 in
  Mat.gemv_into a x ~dst;
  check_bool "plain overwrite" true
    (Vec.approx_equal ~tol:1e-12 dst (Mat.mul_vec a x));
  let dst_t = Vec.zeros 6 in
  Mat.gemv_into ~trans:true a y ~dst:dst_t;
  check_bool "transposed" true
    (Vec.approx_equal ~tol:1e-12 dst_t (Mat.tmul_vec a y));
  (* alpha/beta accumulate: dst := alpha A x + beta dst0. *)
  let dst0 = random_vec st 4 in
  let dst = Vec.copy dst0 in
  Mat.gemv_into ~alpha:2.5 ~beta:(-0.5) a x ~dst;
  let expect = Vec.axpy 2.5 (Mat.mul_vec a x) (Vec.scale (-0.5) dst0) in
  check_bool "alpha/beta" true (Vec.approx_equal ~tol:1e-12 dst expect);
  (* beta = 0 must ignore garbage in dst, including NaN. *)
  let dst = Vec.init 4 (fun _ -> Float.nan) in
  Mat.gemv_into a x ~dst;
  check_bool "beta=0 ignores dst" true
    (Vec.approx_equal ~tol:1e-12 dst (Mat.mul_vec a x))

(* Naive A^T diag(d) A for checking the blocked kernel. *)
let naive_atda a d =
  let m = Mat.rows a and n = Mat.cols a in
  Mat.init n n (fun i j ->
      let s = ref 0.0 in
      for r = 0 to m - 1 do
        s := !s +. (d.(r) *. Mat.get a r i *. Mat.get a r j)
      done;
      !s)

let test_mat_syrk_scaled_into () =
  let st = mk_rand 61 in
  (* Odd and even row counts both exercised (the kernel processes rows
     in pairs, with a tail row when the count is odd). *)
  List.iter
    (fun m ->
      let a = random_mat st m 4 in
      let d = random_vec st m in
      let dst = Mat.zeros 4 4 in
      Mat.syrk_scaled_into a d ~dst;
      Mat.mirror_upper dst;
      check_bool
        (Printf.sprintf "matches naive (m=%d)" m)
        true
        (Mat.approx_equal ~tol:1e-12 dst (naive_atda a d)))
    [ 1; 4; 5 ];
  (* Accumulation: two calls add both contributions. *)
  let a1 = random_mat st 3 4 and a2 = random_mat st 5 4 in
  let d1 = random_vec st 3 and d2 = random_vec st 5 in
  let dst = Mat.zeros 4 4 in
  Mat.syrk_scaled_into a1 d1 ~dst;
  Mat.syrk_scaled_into a2 d2 ~dst;
  Mat.mirror_upper dst;
  check_bool "accumulates" true
    (Mat.approx_equal ~tol:1e-12 dst
       (Mat.add (naive_atda a1 d1) (naive_atda a2 d2)))

let test_mat_symmetry () =
  let st = mk_rand 11 in
  let a = random_mat st 5 5 in
  check_bool "random not symmetric" false (Mat.is_symmetric a);
  check_bool "symmetrize" true (Mat.is_symmetric (Mat.symmetrize a));
  check_bool "spd symmetric" true (Mat.is_symmetric ~tol:1e-9 (random_spd st 5))

(* ------------------------------------------------------------------ *)
(* Lu *)

let test_lu_solve_known () =
  let a = Mat.of_rows [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = Lu.solve a [| 3.0; 5.0 |] in
  (* 2x + y = 3, x + 3y = 5 -> x = 4/5, y = 7/5 *)
  check_bool "solution" true (Vec.approx_equal x [| 0.8; 1.4 |])

let test_lu_det () =
  let a = Mat.of_rows [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  check_float "det" 5.0 (Lu.det a);
  check_float "det singular" 0.0
    (Lu.det (Mat.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |]))

let test_lu_singular () =
  let a = Mat.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  check_bool "raises Singular" true
    (match Lu.solve a [| 1.0; 1.0 |] with
    | _ -> false
    | exception Lu.Singular _ -> true)

let test_lu_inverse () =
  let st = mk_rand 3 in
  let a = random_dd st 6 in
  let inv = Lu.inverse a in
  check_bool "a * a^-1 = I" true
    (Mat.approx_equal ~tol:1e-9 (Mat.matmul a inv) (Mat.identity 6))

let test_lu_solve_many () =
  let st = mk_rand 5 in
  let a = random_dd st 5 in
  let bs = [ random_vec st 5; random_vec st 5; random_vec st 5 ] in
  let xs = Lu.solve_many a bs in
  List.iter2
    (fun b x ->
      check_bool "residual" true
        (Vec.approx_equal ~tol:1e-9 (Mat.mul_vec a x) b))
    bs xs

(* ------------------------------------------------------------------ *)
(* Chol *)

let test_chol_reconstruct () =
  let st = mk_rand 13 in
  let a = random_spd st 6 in
  let f = Chol.factorize a in
  let l = Chol.lower f in
  check_bool "L L^T = A" true
    (Mat.approx_equal ~tol:1e-8 (Mat.matmul l (Mat.transpose l)) a)

let test_chol_solve () =
  let st = mk_rand 17 in
  let a = random_spd st 8 in
  let b = random_vec st 8 in
  let x = Chol.solve a b in
  check_bool "residual" true (Vec.approx_equal ~tol:1e-8 (Mat.mul_vec a x) b)

let test_chol_rejects_indefinite () =
  let a = Mat.of_rows [| [| 1.0; 0.0 |]; [| 0.0; -1.0 |] |] in
  check_bool "raises" true
    (match Chol.factorize a with
    | _ -> false
    | exception Chol.Not_positive_definite _ -> true)

let test_chol_jitter () =
  (* Singular PSD matrix: jitter must rescue it. *)
  let a = Mat.of_rows [| [| 1.0; 1.0 |]; [| 1.0; 1.0 |] |] in
  let _f, jitter = Chol.factorize_jittered a in
  check_bool "jitter used" true (jitter > 0.0)

let test_chol_into_matches () =
  let st = mk_rand 67 in
  let f = Chol.preallocate 8 in
  (* Reuse one preallocated factor across several systems. *)
  for _ = 1 to 3 do
    let a = random_spd st 8 in
    let b = random_vec st 8 in
    let jitter, attempts = Chol.factorize_jittered_into f a in
    check_float "no jitter on SPD" 0.0 jitter;
    check_int "one attempt" 1 attempts;
    let x = Vec.zeros 8 in
    Chol.solve_factorized_into f b ~dst:x;
    check_bool "matches Chol.solve" true
      (Vec.approx_equal ~tol:1e-9 x (Chol.solve a b));
    (* In-place solve: dst aliasing b. *)
    let b' = Vec.copy b in
    Chol.solve_factorized_into f b' ~dst:b';
    check_bool "in-place solve" true (Vec.approx_equal ~tol:1e-12 b' x)
  done

let test_chol_into_jitter () =
  (* Singular PSD matrix: the in-place path must jitter and retry,
     reporting the attempt count, without corrupting the workspace for
     later factorizations. *)
  let f = Chol.preallocate 2 in
  let singular = Mat.of_rows [| [| 1.0; 1.0 |]; [| 1.0; 1.0 |] |] in
  let jitter, attempts = Chol.factorize_jittered_into f singular in
  check_bool "jitter used" true (jitter > 0.0);
  check_bool "several attempts" true (attempts > 1);
  let spd = Mat.of_rows [| [| 2.0; 0.0 |]; [| 0.0; 3.0 |] |] in
  let jitter, _ = Chol.factorize_jittered_into f spd in
  check_float "workspace reusable" 0.0 jitter;
  let x = Vec.zeros 2 in
  Chol.solve_factorized_into f [| 4.0; 9.0 |] ~dst:x;
  check_bool "diag solve" true (Vec.approx_equal ~tol:1e-12 x [| 2.0; 3.0 |])

let test_chol_logdet () =
  let a = Mat.of_diag [| 2.0; 3.0; 4.0 |] in
  let f = Chol.factorize a in
  check_float_loose 1e-9 "log det" (log 24.0) (Chol.log_det f)

(* ------------------------------------------------------------------ *)
(* Qr *)

let test_qr_exact_solve () =
  (* Square invertible: least squares is the exact solution. *)
  let a = Mat.of_rows [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = Qr.solve_least_squares a [| 3.0; 5.0 |] in
  check_bool "matches LU" true (Vec.approx_equal ~tol:1e-9 x [| 0.8; 1.4 |])

let test_qr_overdetermined () =
  (* Fit y = a + b t through 4 points with known LS solution. *)
  let a =
    Mat.of_rows
      [| [| 1.0; 0.0 |]; [| 1.0; 1.0 |]; [| 1.0; 2.0 |]; [| 1.0; 3.0 |] |]
  in
  let b = [| 0.0; 1.1; 1.9; 3.1 |] in
  let x = Qr.solve_least_squares a b in
  (* Normal equations solved by hand: slope ~ 1.03, intercept ~ -0.02. *)
  let atb = Mat.tmul_vec a b in
  let ata = Mat.matmul (Mat.transpose a) a in
  let expect = Lu.solve ata atb in
  check_bool "normal equations agree" true (Vec.approx_equal ~tol:1e-9 x expect)

let test_qr_r_upper () =
  let st = mk_rand 23 in
  let a = random_mat st 6 4 in
  let f = Qr.factorize a in
  let r = Qr.r f in
  let ok = ref true in
  for i = 0 to 3 do
    for j = 0 to i - 1 do
      if Float.abs (Mat.get r i j) > 1e-12 then ok := false
    done
  done;
  check_bool "R upper triangular" true !ok

let test_qr_rank_deficient () =
  let a = Mat.of_rows [| [| 1.0; 1.0 |]; [| 1.0; 1.0 |]; [| 1.0; 1.0 |] |] in
  check_bool "raises" true
    (match Qr.solve_least_squares a [| 1.0; 2.0; 3.0 |] with
    | _ -> false
    | exception Qr.Rank_deficient _ -> true)

(* ------------------------------------------------------------------ *)
(* Expm *)

let test_expm_zero () =
  check_bool "e^0 = I" true
    (Mat.approx_equal (Expm.expm (Mat.zeros 3 3)) (Mat.identity 3))

let test_expm_diag () =
  let a = Mat.of_diag [| 1.0; -2.0; 0.5 |] in
  let e = Expm.expm a in
  check_bool "diagonal exp" true
    (Mat.approx_equal ~tol:1e-12
       e
       (Mat.of_diag [| exp 1.0; exp (-2.0); exp 0.5 |]))

let test_expm_nilpotent () =
  (* exp [[0,1],[0,0]] = [[1,1],[0,1]] exactly. *)
  let a = Mat.of_rows [| [| 0.0; 1.0 |]; [| 0.0; 0.0 |] |] in
  check_bool "nilpotent" true
    (Mat.approx_equal ~tol:1e-12 (Expm.expm a)
       (Mat.of_rows [| [| 1.0; 1.0 |]; [| 0.0; 1.0 |] |]))

let test_expm_additivity () =
  (* e^(A) e^(A) = e^(2A) for any A. *)
  let st = mk_rand 29 in
  let a = random_mat st 4 4 in
  let e1 = Expm.expm a in
  let e2 = Expm.expm (Mat.scale 2.0 a) in
  check_bool "semigroup" true
    (Mat.approx_equal ~tol:1e-8 (Mat.matmul e1 e1) e2)

let test_expm_phi1 () =
  (* phi1(0) = I; for invertible A, phi1(A) = A^-1 (e^A - I). *)
  check_bool "phi1 at zero" true
    (Mat.approx_equal ~tol:1e-10 (Expm.phi1 (Mat.zeros 3 3)) (Mat.identity 3));
  let a = Mat.of_diag [| 1.0; -0.5 |] in
  let expect =
    Mat.of_diag [| exp 1.0 -. 1.0; (exp (-0.5) -. 1.0) /. -0.5 |]
  in
  check_bool "phi1 diagonal" true
    (Mat.approx_equal ~tol:1e-10 (Expm.phi1 a) expect)

(* ------------------------------------------------------------------ *)
(* Tridiag *)

let test_tridiag_solve () =
  let lower = [| 1.0; 1.0 |]
  and diag = [| 4.0; 4.0; 4.0 |]
  and upper = [| 1.0; 1.0 |] in
  let rhs = [| 5.0; 6.0; 5.0 |] in
  let x = Tridiag.solve ~lower ~diag ~upper ~rhs in
  let back = Tridiag.mul_vec ~lower ~diag ~upper x in
  check_bool "residual" true (Vec.approx_equal ~tol:1e-12 back rhs)

let test_tridiag_matches_dense () =
  let st = mk_rand 31 in
  let n = 8 in
  let diag = Vec.init n (fun _ -> 5.0 +. Random.State.float st 1.0) in
  let lower = Vec.init (n - 1) (fun _ -> Random.State.float st 1.0) in
  let upper = Vec.init (n - 1) (fun _ -> Random.State.float st 1.0) in
  let rhs = random_vec st n in
  let dense =
    Mat.init n n (fun i j ->
        if i = j then diag.(i)
        else if i = j + 1 then lower.(j)
        else if j = i + 1 then upper.(i)
        else 0.0)
  in
  let x_tri = Tridiag.solve ~lower ~diag ~upper ~rhs in
  let x_lu = Lu.solve dense rhs in
  check_bool "matches dense LU" true (Vec.approx_equal ~tol:1e-9 x_tri x_lu)

(* ------------------------------------------------------------------ *)
(* Block_tridiag *)

(* Block index of each coordinate under a partition. *)
let block_of_index sizes =
  let n = Array.fold_left ( + ) 0 sizes in
  let blk = Array.make n 0 in
  let i = ref 0 in
  Array.iteri
    (fun k nk ->
      for _ = 1 to nk do
        blk.(!i) <- k;
        incr i
      done)
    sizes;
  blk

(* Random SPD matrix supported on the block band: a symmetric random
   matrix masked to the band, made diagonally dominant. *)
let random_block_banded st sizes =
  let n = Array.fold_left ( + ) 0 sizes in
  let blk = block_of_index sizes in
  let a = random_mat st n n in
  let m =
    Mat.init n n (fun i j ->
        if abs (blk.(i) - blk.(j)) <= 1 then
          0.5 *. (Mat.get a i j +. Mat.get a j i)
        else 0.0)
  in
  for i = 0 to n - 1 do
    let row = ref 1.0 in
    for j = 0 to n - 1 do
      if j <> i then row := !row +. Float.abs (Mat.get m i j)
    done;
    Mat.set m i i (!row +. Float.abs (Mat.get m i i))
  done;
  m

let test_block_tridiag_matches_dense () =
  let st = mk_rand 53 in
  let sizes = [| 3; 4; 2; 3 |] in
  let a = random_block_banded st sizes in
  let n = Mat.rows a in
  let fac = Block_tridiag.preallocate sizes in
  check_int "dim" n (Block_tridiag.dim fac);
  let jitter, tries = Block_tridiag.factorize_jittered_into fac a in
  check_float "no jitter needed" 0.0 jitter;
  check_int "one attempt" 1 tries;
  let b = random_vec st n in
  let x = Vec.zeros n in
  Block_tridiag.solve_factorized_into fac b ~dst:x;
  let x_dense = Chol.solve a b in
  check_bool "matches dense cholesky" true
    (Vec.approx_equal ~tol:1e-10 x x_dense)

let test_block_tridiag_scalar_blocks () =
  (* All-scalar partition degenerates to an ordinary tridiagonal
     system; cross-check against the Thomas solver. *)
  let st = mk_rand 59 in
  let n = 7 in
  let sizes = Array.make n 1 in
  let a = random_block_banded st sizes in
  let fac = Block_tridiag.preallocate sizes in
  ignore (Block_tridiag.factorize_jittered_into fac a);
  let b = random_vec st n in
  let x = Vec.zeros n in
  Block_tridiag.solve_factorized_into fac b ~dst:x;
  let diag = Vec.init n (fun i -> Mat.get a i i) in
  let lower = Vec.init (n - 1) (fun i -> Mat.get a (i + 1) i) in
  let upper = Vec.init (n - 1) (fun i -> Mat.get a i (i + 1)) in
  let x_tri = Tridiag.solve ~lower ~diag ~upper ~rhs:b in
  check_bool "matches thomas" true (Vec.approx_equal ~tol:1e-10 x x_tri)

let test_block_tridiag_ignores_out_of_band () =
  (* Only in-band entries of the lower triangle are read: garbage
     outside the band must not change the factorization. *)
  let st = mk_rand 61 in
  let sizes = [| 2; 3; 2 |] in
  let a = random_block_banded st sizes in
  let n = Mat.rows a in
  let blk = block_of_index sizes in
  let dirty = Mat.init n n (fun i j -> Mat.get a i j) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if abs (blk.(i) - blk.(j)) > 1 then Mat.set dirty i j 1e12
    done
  done;
  let b = random_vec st n in
  let solve_with m =
    let fac = Block_tridiag.preallocate sizes in
    ignore (Block_tridiag.factorize_jittered_into fac m);
    let x = Vec.zeros n in
    Block_tridiag.solve_factorized_into fac b ~dst:x;
    x
  in
  check_bool "garbage outside band ignored" true
    (Vec.approx_equal ~tol:1e-12 (solve_with a) (solve_with dirty))

let test_block_tridiag_singular_leading_block () =
  (* A singular leading block fails the bare attempt and forces the
     jitter-retry schedule; the factor then solves A + jitter*I. *)
  let st = mk_rand 67 in
  let sizes = [| 3; 4; 2 |] in
  let a = random_block_banded st sizes in
  for i = 0 to sizes.(0) - 1 do
    for j = 0 to sizes.(0) - 1 do
      Mat.set a i j 0.0
    done
  done;
  let fac = Block_tridiag.preallocate sizes in
  check_bool "bare attempt rejects" true
    (try
       Block_tridiag.factorize_attempt_into fac ~jitter:0.0 a;
       false
     with Chol.Not_positive_definite _ -> true);
  let jitter, tries = Block_tridiag.factorize_jittered_into fac a in
  check_bool "jitter applied" true (jitter > 0.0);
  check_bool "retried" true (tries > 1);
  let n = Mat.rows a in
  let b = random_vec st n in
  let x = Vec.zeros n in
  Block_tridiag.solve_factorized_into fac b ~dst:x;
  let shifted =
    Mat.init n n (fun i j ->
        Mat.get a i j +. if i = j then jitter else 0.0)
  in
  check_bool "solves the jittered system" true
    (Vec.approx_equal ~tol:1e-8 x (Lu.solve shifted b))

let test_block_tridiag_rejects_bad_partition () =
  check_bool "zero block size" true
    (try
       ignore (Block_tridiag.preallocate [| 2; 0; 3 |]);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Sparse *)

let sparse_of_dense m =
  let trips = ref [] in
  for i = 0 to Mat.rows m - 1 do
    for j = 0 to Mat.cols m - 1 do
      let v = Mat.get m i j in
      if v <> 0.0 then trips := { Sparse.row = i; col = j; value = v } :: !trips
    done
  done;
  Sparse.of_triplets ~rows:(Mat.rows m) ~cols:(Mat.cols m) !trips

let test_sparse_roundtrip () =
  let d = Mat.of_rows [| [| 1.0; 0.0; 2.0 |]; [| 0.0; 3.0; 0.0 |] |] in
  let s = sparse_of_dense d in
  check_int "nnz" 3 (Sparse.nnz s);
  check_bool "to_dense" true (Mat.approx_equal (Sparse.to_dense s) d);
  check_float "get" 3.0 (Sparse.get s 1 1);
  check_float "get zero" 0.0 (Sparse.get s 0 1)

let test_sparse_duplicates_summed () =
  let s =
    Sparse.of_triplets ~rows:1 ~cols:1
      [ { Sparse.row = 0; col = 0; value = 1.0 };
        { Sparse.row = 0; col = 0; value = 2.5 } ]
  in
  check_float "summed" 3.5 (Sparse.get s 0 0)

let test_sparse_mulvec_matches_dense () =
  let st = mk_rand 37 in
  let d = random_mat st 5 7 in
  let s = sparse_of_dense d in
  let x = random_vec st 7 in
  check_bool "matches" true
    (Vec.approx_equal ~tol:1e-12 (Sparse.mul_vec s x) (Mat.mul_vec d x))

let test_sparse_transpose () =
  let st = mk_rand 41 in
  let d = random_mat st 4 6 in
  let s = sparse_of_dense d in
  check_bool "transpose" true
    (Mat.approx_equal (Sparse.to_dense (Sparse.transpose s))
       (Mat.transpose d))

let test_sparse_cg () =
  let st = mk_rand 43 in
  let a = random_spd st 10 in
  let s = sparse_of_dense a in
  let b = random_vec st 10 in
  let r = Sparse.cg ~tol:1e-12 s b in
  check_bool "converged" true r.Sparse.converged;
  check_bool "residual small" true
    (Vec.approx_equal ~tol:1e-7 (Mat.mul_vec a r.Sparse.solution) b)

(* ------------------------------------------------------------------ *)
(* Property tests (qcheck) *)

let spd_gen =
  (* Generate an SPD matrix and rhs of matching size. *)
  QCheck2.Gen.(
    let* n = int_range 1 8 in
    let* seed = int_range 0 1_000_000 in
    return (n, seed))

let prop_lu_solve_residual =
  QCheck2.Test.make ~name:"lu: A x = b residual small" ~count:100 spd_gen
    (fun (n, seed) ->
      let st = mk_rand seed in
      let a = random_dd st n in
      let b = random_vec st n in
      let x = Lu.solve a b in
      Vec.dist2 (Mat.mul_vec a x) b <= 1e-8 *. Float.max 1.0 (Vec.norm2 b))

let prop_chol_matches_lu =
  QCheck2.Test.make ~name:"chol: solve matches lu on SPD" ~count:100 spd_gen
    (fun (n, seed) ->
      let st = mk_rand seed in
      let a = random_spd st n in
      let b = random_vec st n in
      let x1 = Chol.solve a b in
      let x2 = Lu.solve a b in
      Vec.dist2 x1 x2 <= 1e-7 *. Float.max 1.0 (Vec.norm2 x2))

let prop_expm_inverse =
  QCheck2.Test.make ~name:"expm: e^A e^-A = I" ~count:50
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let st = mk_rand seed in
      let a = random_mat st 4 4 in
      let p = Mat.matmul (Expm.expm a) (Expm.expm (Mat.scale (-1.0) a)) in
      Mat.approx_equal ~tol:1e-7 p (Mat.identity 4))

let prop_dot_cauchy_schwarz =
  QCheck2.Test.make ~name:"vec: |x.y| <= |x||y|" ~count:200
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let st = mk_rand seed in
      let n = 1 + Random.State.int st 20 in
      let x = random_vec st n and y = random_vec st n in
      Float.abs (Vec.dot x y) <= (Vec.norm2 x *. Vec.norm2 y) +. 1e-12)

let prop_sparse_cg_spd =
  QCheck2.Test.make ~name:"sparse: cg solves SPD systems" ~count:50 spd_gen
    (fun (n, seed) ->
      let st = mk_rand seed in
      let a = random_spd st n in
      let s = sparse_of_dense a in
      let b = random_vec st n in
      let r = Sparse.cg ~tol:1e-12 s b in
      Vec.dist2 (Sparse.mul_vec s r.Sparse.solution) b
      <= 1e-6 *. Float.max 1.0 (Vec.norm2 b))

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_lu_solve_residual;
      prop_chol_matches_lu;
      prop_expm_inverse;
      prop_dot_cauchy_schwarz;
      prop_sparse_cg_spd;
    ]

let () =
  Alcotest.run "linalg"
    [
      ( "vec",
        [
          Alcotest.test_case "basic reductions" `Quick test_vec_basic;
          Alcotest.test_case "arithmetic" `Quick test_vec_arith;
          Alcotest.test_case "in-place ops" `Quick test_vec_inplace;
          Alcotest.test_case "linspace" `Quick test_vec_linspace;
          Alcotest.test_case "slice and concat" `Quick test_vec_slice_concat;
          Alcotest.test_case "errors" `Quick test_vec_errors;
        ] );
      ( "mat",
        [
          Alcotest.test_case "accessors" `Quick test_mat_basic;
          Alcotest.test_case "matmul" `Quick test_mat_matmul;
          Alcotest.test_case "mat-vec products" `Quick test_mat_mulvec;
          Alcotest.test_case "powers" `Quick test_mat_identity_pow;
          Alcotest.test_case "outer products" `Quick test_mat_outer;
          Alcotest.test_case "upper-triangle accumulation" `Quick
            test_mat_upper_accumulation;
          Alcotest.test_case "gemv_into" `Quick test_mat_gemv_into;
          Alcotest.test_case "syrk_scaled_into" `Quick
            test_mat_syrk_scaled_into;
          Alcotest.test_case "symmetry" `Quick test_mat_symmetry;
        ] );
      ( "lu",
        [
          Alcotest.test_case "known 2x2 solve" `Quick test_lu_solve_known;
          Alcotest.test_case "determinant" `Quick test_lu_det;
          Alcotest.test_case "singular detection" `Quick test_lu_singular;
          Alcotest.test_case "inverse" `Quick test_lu_inverse;
          Alcotest.test_case "multiple rhs" `Quick test_lu_solve_many;
        ] );
      ( "chol",
        [
          Alcotest.test_case "reconstruction" `Quick test_chol_reconstruct;
          Alcotest.test_case "solve" `Quick test_chol_solve;
          Alcotest.test_case "rejects indefinite" `Quick
            test_chol_rejects_indefinite;
          Alcotest.test_case "jittered factorization" `Quick test_chol_jitter;
          Alcotest.test_case "in-place factorize and solve" `Quick
            test_chol_into_matches;
          Alcotest.test_case "in-place jitter retry" `Quick
            test_chol_into_jitter;
          Alcotest.test_case "log det" `Quick test_chol_logdet;
        ] );
      ( "qr",
        [
          Alcotest.test_case "square solve" `Quick test_qr_exact_solve;
          Alcotest.test_case "overdetermined LS" `Quick test_qr_overdetermined;
          Alcotest.test_case "R is upper triangular" `Quick test_qr_r_upper;
          Alcotest.test_case "rank deficiency" `Quick test_qr_rank_deficient;
        ] );
      ( "expm",
        [
          Alcotest.test_case "exp of zero" `Quick test_expm_zero;
          Alcotest.test_case "diagonal" `Quick test_expm_diag;
          Alcotest.test_case "nilpotent" `Quick test_expm_nilpotent;
          Alcotest.test_case "semigroup property" `Quick test_expm_additivity;
          Alcotest.test_case "phi1" `Quick test_expm_phi1;
        ] );
      ( "tridiag",
        [
          Alcotest.test_case "solve small" `Quick test_tridiag_solve;
          Alcotest.test_case "matches dense" `Quick test_tridiag_matches_dense;
        ] );
      ( "block_tridiag",
        [
          Alcotest.test_case "matches dense cholesky" `Quick
            test_block_tridiag_matches_dense;
          Alcotest.test_case "scalar blocks match thomas" `Quick
            test_block_tridiag_scalar_blocks;
          Alcotest.test_case "ignores out-of-band entries" `Quick
            test_block_tridiag_ignores_out_of_band;
          Alcotest.test_case "singular leading block jitters" `Quick
            test_block_tridiag_singular_leading_block;
          Alcotest.test_case "rejects bad partition" `Quick
            test_block_tridiag_rejects_bad_partition;
        ] );
      ( "sparse",
        [
          Alcotest.test_case "roundtrip" `Quick test_sparse_roundtrip;
          Alcotest.test_case "duplicates summed" `Quick
            test_sparse_duplicates_summed;
          Alcotest.test_case "mul_vec matches dense" `Quick
            test_sparse_mulvec_matches_dense;
          Alcotest.test_case "transpose" `Quick test_sparse_transpose;
          Alcotest.test_case "conjugate gradients" `Quick test_sparse_cg;
        ] );
      ("properties", props);
    ]
