(* Seeded units-of-measure violations for test_lint.  This file is
   never built — the typed lint tests feed it through the in-process
   typechecker with a matching units manifest and expect findings on
   the two lines marked BAD below. *)

let fmax = 2.5e9
let tmax = 85.0

(* BAD: hz +. celsius — mixed-unit addition. *)
let mixed = fmax +. tmax

let clamp ~util = if util > 1.0 then 1.0 else util

(* BAD: an absolute frequency passed where a normalized ratio is
   declared. *)
let absolute_for_normalized = clamp ~util:fmax
