(* Seeded cross-domain capture violation for test_lint.  This file is
   never built — the typed lint tests feed it through the in-process
   typechecker and expect a capture finding on the closure below.  The
   Pool stub gives the boundary its real name and shape without
   depending on lib/parallel. *)

module Parallel = struct
  module Pool = struct
    let map_rows f n = Array.init n f
  end
end

let total = ref 0

(* BAD: the closure shipped across domains captures the mutable
   [total]. *)
let sum_rows n = Parallel.Pool.map_rows (fun i -> total := !total + i) n
