(* Command-line interface to the Pro-Temp library.

   protemp solve     — one Eq. 3 design point
   protemp frontier  — max supportable frequency from a temperature
   protemp table     — Phase-1 sweep, written as CSV
   protemp validate  — audit a table against the thermal simulator
   protemp simulate  — run a trace under a controller
   protemp campaign  — controller x workload x fault grid
   protemp fleet     — serve one stream across a rack of chips
   protemp lint      — static-analysis pass over the repo sources *)

open Cmdliner

let machine_of = function
  | `Niagara -> Sim.Machine.niagara ()
  | `Biglittle -> Sim.Machine.biglittle ()

(* CLI frequencies are MHz; the library speaks Hz (see
   units.manifest).  Every scaling goes through this pair so the
   units checker can follow the conversion. *)
let mhz_to_hz f = f *. 1e6
let hz_to_mhz f = f /. 1e6

let spec_of ~uniform ~gradient ~stride =
  let base =
    {
      Protemp.Spec.default with
      Protemp.Spec.constraint_stride = stride;
      variant =
        (if uniform then Protemp.Spec.Uniform else Protemp.Spec.Variable);
    }
  in
  match gradient with
  | None -> base
  | Some weight -> Protemp.Spec.with_gradient ~weight base

(* ----- shared options ----- *)

let platform =
  Arg.(
    value
    & opt (enum [ ("niagara", `Niagara); ("biglittle", `Biglittle) ]) `Niagara
    & info [ "platform" ] ~docv:"NAME"
        ~doc:
          "Hardware platform: niagara (the paper's homogeneous 8-core chip, \
           the default) or biglittle (4 big + 4 little asymmetric cores with \
           per-core power laws).")

let uniform =
  Arg.(value & flag & info [ "uniform" ] ~doc:"Uniform frequency variant.")

let gradient =
  Arg.(
    value
    & opt (some float) None
    & info [ "gradient" ] ~docv:"WEIGHT"
        ~doc:"Enable the Eq. 4-5 gradient term with this weight.")

let stride =
  Arg.(
    value & opt int 1
    & info [ "stride" ] ~docv:"N"
        ~doc:"Enforce the thermal cap every N-th step (1 = the paper).")

let tstart =
  Arg.(
    required
    & opt (some float) None
    & info [ "tstart" ] ~docv:"CELSIUS" ~doc:"Starting temperature.")

let solver =
  Arg.(
    value
    & opt (enum [ ("conic", `Conic); ("barrier", `Barrier) ]) `Conic
    & info [ "solver" ] ~docv:"NAME"
        ~doc:
          "Interior-point backend: conic (primal-dual, the default) or \
           barrier (the reference log-barrier path).")

let print_frequencies f =
  Array.iteri
    (fun i hz -> Printf.printf "P%d %.1f MHz\n" (i + 1) (hz_to_mhz hz))
    f

(* ----- solve ----- *)

let solve_cmd =
  let ftarget =
    Arg.(
      required
      & opt (some float) None
      & info [ "ftarget" ] ~docv:"MHZ" ~doc:"Required average frequency.")
  in
  let run platform uniform gradient stride tstart ftarget =
    let spec = spec_of ~uniform ~gradient ~stride in
    let built =
      Protemp.Model.build ~machine:(machine_of platform) ~spec ~tstart
        ~ftarget:(mhz_to_hz ftarget)
    in
    match Protemp.Model.solve built with
    | Protemp.Model.Infeasible ->
        print_endline "infeasible";
        1
    | Protemp.Model.Feasible s ->
        print_frequencies s.Protemp.Model.frequencies;
        Printf.printf "total power %.2f W, duality gap %.1e\n"
          s.Protemp.Model.total_power s.Protemp.Model.raw.Convex.Solve.gap;
        (match s.Protemp.Model.gradient_spread with
        | Some g -> Printf.printf "certified window spread %.2f C\n" g
        | None -> ());
        0
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Solve one Eq. 3/5 design point.")
    Term.(const run $ platform $ uniform $ gradient $ stride $ tstart $ ftarget)

(* ----- frontier ----- *)

let frontier_cmd =
  let run platform uniform gradient stride tstart =
    let spec = spec_of ~uniform ~gradient ~stride in
    match
      Protemp.Offline.frontier_point ~machine:(machine_of platform) ~spec
        ~tstart ()
    with
    | Protemp.Model.Infeasible ->
        print_endline "no operation possible from this temperature";
        1
    | Protemp.Model.Feasible s ->
        print_frequencies s.Protemp.Model.frequencies;
        Printf.printf "max average frequency %.1f MHz\n"
          (hz_to_mhz (Linalg.Vec.mean s.Protemp.Model.frequencies));
        0
  in
  Cmd.v
    (Cmd.info "frontier"
       ~doc:"Maximum supportable frequency from a starting temperature.")
    Term.(const run $ platform $ uniform $ gradient $ stride $ tstart)

(* ----- table ----- *)

let out_file =
  Arg.(
    required
    & opt (some string) None
    & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output CSV file.")

let table_cmd =
  let tstarts =
    Arg.(
      value
      & opt (list float) (Array.to_list Protemp.Offline.default_tstarts)
      & info [ "tstarts" ] ~docv:"T1,T2,..." ~doc:"Row temperatures.")
  in
  let ftargets =
    Arg.(
      value
      & opt (list float)
          (List.map hz_to_mhz
             (Array.to_list Protemp.Offline.default_ftargets))
      & info [ "ftargets" ] ~docv:"MHZ1,MHZ2,..." ~doc:"Column targets (MHz).")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Solve table rows on N domains (default: PROTEMP_DOMAINS or the \
             machine's core count; 1 = sequential).")
  in
  let margin =
    Arg.(
      value & opt float 0.0
      & info [ "margin" ] ~docv:"C"
          ~doc:
            "Guard band in degrees C: certify every cell against tmax - \
             margin, so the stored table tolerates bounded sensor error up \
             to the margin at run time.")
  in
  let run platform uniform gradient stride tstarts ftargets domains margin
      solver out =
    let spec = spec_of ~uniform ~gradient ~stride in
    let spec =
      (* Bit-exact: 0.0 is the flag default meaning "no margin". *)
      if Float.equal margin 0.0 then spec
      else if margin < 0.0 || margin >= spec.Protemp.Spec.tmax then
        failwith "margin must be in [0, tmax)"
      else
        { spec with Protemp.Spec.tmax = spec.Protemp.Spec.tmax -. margin }
    in
    let table =
      Protemp.Offline.sweep ~solver ~machine:(machine_of platform) ~spec
        ?domains
        ~tstarts:(Array.of_list tstarts)
        ~ftargets:(Array.of_list (List.map mhz_to_hz ftargets))
        ~on_progress:(fun p ->
          Printf.eprintf "(%.0f C, %.0f MHz): %s\n%!" p.Protemp.Offline.tstart
            (hz_to_mhz p.Protemp.Offline.ftarget)
            (match p.Protemp.Offline.outcome with
            | `Feasible -> "ok"
            | `Infeasible -> "infeasible"
            | `Pruned -> "pruned"))
        ()
    in
    let oc = open_out out in
    output_string oc (Protemp.Table.to_csv table);
    close_out oc;
    Format.printf "%a@." Protemp.Table.pp table;
    Printf.printf "written to %s\n" out;
    0
  in
  Cmd.v
    (Cmd.info "table" ~doc:"Run the Phase-1 sweep and store the table.")
    Term.(
      const run $ platform $ uniform $ gradient $ stride $ tstarts $ ftargets
      $ domains $ margin $ solver $ out_file)

(* ----- validate ----- *)

let table_file =
  Arg.(
    required
    & opt (some file) None
    & info [ "table" ] ~docv:"FILE" ~doc:"Table CSV produced by 'table'.")

let load_table file =
  let ic = open_in file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Protemp.Table.of_csv s

let validate_cmd =
  let run platform stride table_file =
    let spec = spec_of ~uniform:false ~gradient:None ~stride in
    let table = load_table table_file in
    let audit =
      Protemp.Guarantee.audit_table ~machine:(machine_of platform) ~spec table
    in
    Printf.printf "%d feasible cells re-simulated\n"
      audit.Protemp.Guarantee.cells_checked;
    Printf.printf "tightest margin below tmax: %.4f C%s\n"
      audit.Protemp.Guarantee.worst_margin
      (match audit.Protemp.Guarantee.worst_cell with
      | Some (t, f) -> Printf.sprintf " at (%.0f C, %.0f MHz)" t (hz_to_mhz f)
      | None -> "");
    if audit.Protemp.Guarantee.worst_margin >= -1e-9 then begin
      print_endline "table honours the guarantee";
      0
    end
    else begin
      print_endline "TABLE VIOLATES THE GUARANTEE";
      1
    end
  in
  Cmd.v
    (Cmd.info "validate" ~doc:"Audit a table against the thermal simulator.")
    Term.(const run $ platform $ stride $ table_file)

(* ----- simulate ----- *)

let simulate_cmd =
  let controller =
    Arg.(
      value
      & opt
          (enum
             [ ("no-tc", `No_tc); ("basic-dfs", `Basic); ("pro-temp", `Pro);
               ("online", `Online); ("integral", `Integral) ])
          `Pro
      & info [ "controller" ] ~docv:"NAME"
          ~doc:
            "no-tc, basic-dfs, pro-temp, online (MPC re-solve) or integral \
             (pure feedback).")
  in
  let ladder =
    Arg.(
      value
      & opt (some int) None
      & info [ "ladder" ] ~docv:"LEVELS"
          ~doc:"Quantize the table onto a discrete DVFS ladder.")
  in
  let migration =
    Arg.(value & flag & info [ "migration" ] ~doc:"Enable task migration.")
  in
  let table_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "table" ] ~docv:"FILE" ~doc:"Table CSV (pro-temp only).")
  in
  let mix =
    Arg.(
      value & opt string "mix"
      & info [ "mix" ] ~docv:"NAME" ~doc:"web, multimedia, compute or mix.")
  in
  let tasks =
    Arg.(value & opt int 20000 & info [ "tasks" ] ~docv:"N" ~doc:"Trace size.")
  in
  let seed =
    Arg.(value & opt int 2008 & info [ "seed" ] ~docv:"N" ~doc:"Trace seed.")
  in
  let coolest =
    Arg.(
      value & flag
      & info [ "coolest-first" ]
          ~doc:"Use the efficient (coolest-first) task assignment.")
  in
  let margin =
    Arg.(
      value & opt float 0.0
      & info [ "margin" ] ~docv:"C"
          ~doc:
            "Guard band in degrees C (online only): solve against tmax - \
             margin so bounded sensor faults cannot break the cap.")
  in
  let sensor_noise =
    Arg.(
      value
      & opt (some float) None
      & info [ "sensor-noise" ] ~docv:"MAG"
          ~doc:
            "Inject uniform [-MAG, +MAG] degrees C sensor noise on every \
             core reading (deterministic, see --fault-seed).")
  in
  let stale =
    Arg.(
      value
      & opt (some int) None
      & info [ "stale" ] ~docv:"N"
          ~doc:"The controller sees temperatures N decisions old.")
  in
  let stuck_core =
    Arg.(
      value
      & opt (some int) None
      & info [ "stuck-core" ] ~docv:"CORE"
          ~doc:"Core CORE's sensor is stuck (see --stuck-at).")
  in
  let stuck_at =
    Arg.(
      value
      & opt (some float) None
      & info [ "stuck-at" ] ~docv:"TEMP"
          ~doc:
            "Reading reported by the stuck sensor; omitted, it freezes at \
             the first observed value.")
  in
  let fault_seed =
    Arg.(
      value & opt int 1807
      & info [ "fault-seed" ] ~docv:"N" ~doc:"Seed for sensor-noise streams.")
  in
  let actuator_levels =
    Arg.(
      value
      & opt (some int) None
      & info [ "actuator-levels" ] ~docv:"N"
          ~doc:
            "Quantize decided frequencies through a uniform N-level DVFS \
             ladder (actuator-side; contrast with --ladder, which quantizes \
             the table itself).")
  in
  let run platform controller table_file mix tasks seed coolest ladder
      migration margin sensor_noise stale stuck_core stuck_at fault_seed
      actuator_levels =
    let machine = machine_of platform in
    let load_quantized f =
      let t = load_table f in
      match ladder with
      | None -> t
      | Some levels ->
          Protemp.Ladder.quantize_table
            (Protemp.Ladder.uniform ~fmax:machine.Sim.Machine.fmax ~levels)
            t
    in
    let online = ref None in
    let ctrl =
      match controller with
      | `No_tc -> Protemp.No_tc.create ~fmax:machine.Sim.Machine.fmax
      | `Basic -> Protemp.Basic_dfs.create ~fmax:machine.Sim.Machine.fmax ()
      | `Online ->
          let spec =
            { Protemp.Spec.default with Protemp.Spec.constraint_stride = 8 }
          in
          let fallback = Option.map load_quantized table_file in
          let t = Protemp.Online.create ?fallback ~margin ~machine ~spec () in
          online := Some t;
          Protemp.Online.controller t
      | `Integral -> Sim.Policy.integral_feedback ()
      | `Pro -> (
          match table_file with
          | None -> failwith "pro-temp needs --table"
          | Some f -> Protemp.Controller.create ~table:(load_quantized f))
    in
    let faults =
      List.concat
        [
          (match sensor_noise with
          | None -> []
          | Some magnitude ->
              [
                Sim.Fault.sensor_noise ~seed:(Int64.of_int fault_seed)
                  ~magnitude ();
              ]);
          (match stuck_core with
          | None -> []
          | Some core -> [ Sim.Fault.stuck_sensor ?reading:stuck_at ~core () ]);
          (match stale with
          | None -> []
          | Some epochs -> [ Sim.Fault.stale_observation ~epochs ]);
          (match actuator_levels with
          | None -> []
          | Some levels ->
              let ladder =
                Protemp.Ladder.uniform ~fmax:machine.Sim.Machine.fmax ~levels
              in
              [
                Sim.Fault.quantized_actuator
                  ~levels:(Protemp.Ladder.levels ladder);
              ]);
        ]
    in
    let ctrl = Sim.Fault.wrap ~faults ctrl in
    let mix =
      try Workload.Mix.by_name mix
      with Not_found -> failwith ("unknown mix " ^ mix)
    in
    let trace =
      Workload.Trace.generate ~seed:(Int64.of_int seed) ~n_tasks:tasks mix
    in
    let assignment =
      if coolest then Sim.Policy.coolest_first else Sim.Policy.first_idle
    in
    let config = { Sim.Engine.default_config with Sim.Engine.migration } in
    let audit_probe, audit =
      Sim.Probe.thermal_audit ~tmax:config.Sim.Engine.tmax ()
    in
    let r =
      Sim.Engine.run ~config ~probes:[ audit_probe ] machine ctrl assignment
        trace
    in
    Format.printf "%a@." Sim.Stats.pp r.Sim.Engine.stats;
    Printf.printf "unfinished %d, migrations %d, wall %.2f s\n"
      r.Sim.Engine.unfinished r.Sim.Engine.migrations r.Sim.Engine.wall_clock;
    let a = audit () in
    Printf.printf "thermal audit: %d/%d steps above tmax (worst excess %.3f C)\n"
      a.Sim.Probe.violating_steps a.Sim.Probe.audited_steps
      a.Sim.Probe.worst_excess;
    (match !online with
    | None -> ()
    | Some t ->
        let c = Protemp.Online.counts t in
        Printf.printf
          "online outcomes: %d solved, %d table fallbacks, %d safe stops\n"
          c.Protemp.Online.solved c.Protemp.Online.fallbacks
          c.Protemp.Online.stops);
    0
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run a trace under a controller.")
    Term.(
      const run $ platform $ controller $ table_file $ mix $ tasks $ seed
      $ coolest $ ladder $ migration $ margin $ sensor_noise $ stale
      $ stuck_core $ stuck_at $ fault_seed $ actuator_levels)

(* ----- campaign ----- *)

let campaign_cmd =
  let table_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "table" ] ~docv:"FILE"
          ~doc:"Table CSV; when given, Pro-Temp joins the controller grid.")
  in
  let mixes =
    Arg.(
      value
      & opt (list string) [ "mix" ]
      & info [ "mixes" ] ~docv:"NAME1,NAME2,..."
          ~doc:"Workload scenarios: web, multimedia, compute or mix.")
  in
  let tasks =
    Arg.(
      value & opt int 20000
      & info [ "tasks" ] ~docv:"N" ~doc:"Tasks per scenario trace.")
  in
  let seed =
    Arg.(value & opt int 2008 & info [ "seed" ] ~docv:"N" ~doc:"Trace seed.")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Run grid cells on N domains (default: PROTEMP_DOMAINS or the \
             machine's core count; 1 = sequential).")
  in
  let guarded_table_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "guarded-table" ] ~docv:"FILE"
          ~doc:
            "Guard-banded table CSV (built with `table --margin`); when \
             given, pro-temp-guarded joins the controller grid.")
  in
  let noise_axis =
    Arg.(
      value
      & opt (list float) []
      & info [ "sensor-noise" ] ~docv:"MAG1,MAG2,..."
          ~doc:
            "Add fault-axis coordinates with uniform sensor noise of these \
             magnitudes (degrees C); a clean coordinate is always included.")
  in
  let stale_axis =
    Arg.(
      value
      & opt (list int) []
      & info [ "stale" ] ~docv:"N1,N2,..."
          ~doc:
            "Add fault-axis coordinates where observations are N decisions \
             old.")
  in
  let fault_seed =
    Arg.(
      value & opt int 1807
      & info [ "fault-seed" ] ~docv:"N" ~doc:"Seed for sensor-noise streams.")
  in
  let online =
    Arg.(
      value & flag
      & info [ "online" ]
          ~doc:
            "Add the online MPC controller (per-period re-solve with the \
             selected --solver) to the controller grid.")
  in
  let run platform table_file guarded_table_file mixes tasks seed domains
      noise_axis stale_axis fault_seed online solver =
    let machine = machine_of platform in
    let fmax = machine.Sim.Machine.fmax in
    let controllers =
      [
        ("no-tc", fun () -> Protemp.No_tc.create ~fmax);
        ("basic-dfs", fun () -> Protemp.Basic_dfs.create ~fmax ());
        ("integral", fun () -> Sim.Policy.integral_feedback ());
      ]
      @ (match table_file with
        | None -> []
        | Some f ->
            let table = load_table f in
            [ ("pro-temp", fun () -> Protemp.Controller.create ~table) ])
      @ (match guarded_table_file with
        | None -> []
        | Some f ->
            let table = load_table f in
            [ ("pro-temp-guarded", fun () -> Protemp.Controller.create ~table) ])
      @
      if not online then []
      else
        (* Same stride as `simulate --controller online`; the fallback
           table joins when one was supplied.  A fresh instance per
           grid cell keeps the decision counters per-cell and the
           thunk safe to call from worker domains. *)
        let spec =
          { Protemp.Spec.default with Protemp.Spec.constraint_stride = 8 }
        in
        let fallback = Option.map load_table table_file in
        [
          ( "online",
            fun () ->
              Protemp.Online.controller
                (Protemp.Online.create ~solver ?fallback ~machine ~spec ()) );
        ]
    in
    let faults =
      List.map
        (fun magnitude ->
          let f =
            Sim.Fault.sensor_noise ~seed:(Int64.of_int fault_seed) ~magnitude
              ()
          in
          (Sim.Fault.name f, [ f ]))
        noise_axis
      @ List.map
          (fun epochs ->
            let f = Sim.Fault.stale_observation ~epochs in
            (Sim.Fault.name f, [ f ]))
          stale_axis
    in
    let faults = if faults = [] then [] else ("none", []) :: faults in
    let scenarios =
      List.map
        (fun name ->
          let mix =
            try Workload.Mix.by_name name
            with Not_found -> failwith ("unknown mix " ^ name)
          in
          Sim.Campaign.scenario ~seed:(Int64.of_int seed) ~n_tasks:tasks ~name
            mix)
        mixes
    in
    let spec =
      {
        Sim.Campaign.controllers;
        assignments = [ Sim.Policy.first_idle; Sim.Policy.coolest_first ];
        scenarios;
        faults;
        config = Sim.Engine.default_config;
      }
    in
    Printf.eprintf "%d cells on %d domain(s)\n%!" (Sim.Campaign.cells spec)
      (match domains with
      | Some d -> d
      | None -> Parallel.Pool.default_domains ());
    let t0 = Unix.gettimeofday () in
    let cells =
      Sim.Campaign.run ?domains
        ~on_cell:(fun c ->
          Printf.eprintf "  %-12s %-14s %-10s %-10s %.2fs\n%!"
            c.Sim.Campaign.controller_name c.Sim.Campaign.assignment_name
            c.Sim.Campaign.scenario_name c.Sim.Campaign.fault_name
            c.Sim.Campaign.result.Sim.Engine.wall_clock)
        ~machine spec
    in
    let wall = Unix.gettimeofday () -. t0 in
    Format.printf "%a" Sim.Campaign.pp_summary cells;
    Printf.printf "%d cells in %.1f s\n" (Array.length cells) wall;
    0
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Fan a controller x assignment x workload x fault grid across \
          domains.")
    Term.(
      const run $ platform $ table_file $ guarded_table_file $ mixes $ tasks
      $ seed $ domains $ noise_axis $ stale_axis $ fault_seed $ online
      $ solver)

(* ----- fleet ----- *)

let fleet_cmd =
  let chips =
    Arg.(value & opt int 4 & info [ "chips" ] ~docv:"N" ~doc:"Fleet size.")
  in
  let tasks =
    Arg.(value & opt int 20000 & info [ "tasks" ] ~docv:"N" ~doc:"Trace size.")
  in
  let mix =
    Arg.(
      value & opt string "mix"
      & info [ "mix" ] ~docv:"NAME" ~doc:"web, multimedia, compute or mix.")
  in
  let seed =
    Arg.(value & opt int 2008 & info [ "seed" ] ~docv:"N" ~doc:"Trace seed.")
  in
  let trace_cores =
    Arg.(
      value
      & opt (some int) None
      & info [ "trace-cores" ] ~docv:"N"
          ~doc:
            "Scale the trace's offered load to N cores (default: the whole \
             fleet's core count — near-saturating).")
  in
  let balancer =
    Arg.(
      value
      & opt (enum [ ("round-robin", `Rr); ("coolest", `Cool) ]) `Cool
      & info [ "balancer" ] ~docv:"NAME"
          ~doc:"round-robin (thermally blind) or coolest (headroom-aware).")
  in
  let guard =
    Arg.(
      value & opt float 0.0
      & info [ "guard" ] ~docv:"C"
          ~doc:
            "Guard band in degrees C: chips within this headroom of tmax are \
             quarantined from routing (coolest balancer only).")
  in
  let penalty =
    Arg.(
      value & opt float 50.0
      & info [ "penalty" ] ~docv:"C_PER_S"
          ~doc:
            "Shadow warming per second of routed work, so one window's tasks \
             spread across the fleet instead of herding.")
  in
  let window =
    Arg.(
      value & opt float 0.1
      & info [ "window" ] ~docv:"SECONDS" ~doc:"Routing window length.")
  in
  let migrate =
    Arg.(
      value & flag
      & info [ "migrate" ]
          ~doc:"Pull queued tasks off guard-band chips and re-route them.")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Advance chips on N domains (default: PROTEMP_DOMAINS or the \
             machine's core count; results are identical for any value).")
  in
  let table_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "table" ] ~docv:"FILE"
          ~doc:
            "Table CSV: every chip runs the Pro-Temp controller off it \
             (default: the workload-following baseline).")
  in
  let run platform chips tasks mix seed trace_cores balancer guard penalty
      window migrate domains table_file =
    let machine = machine_of platform in
    let mix =
      try Workload.Mix.by_name mix
      with Not_found -> failwith ("unknown mix " ^ mix)
    in
    let n_cores =
      match trace_cores with
      | Some n -> n
      | None -> chips * machine.Sim.Machine.n_cores
    in
    let trace =
      Workload.Trace.generate ~n_cores ~seed:(Int64.of_int seed)
        ~n_tasks:tasks mix
    in
    let controller =
      match table_file with
      | None -> fun () -> Sim.Policy.workload_following ~fmax:machine.Sim.Machine.fmax
      | Some f ->
          let table = load_table f in
          fun () -> Protemp.Controller.create ~table
    in
    let chip _ =
      Fleet.Chip.create ~machine ~controller:(controller ())
        ~assignment:Sim.Policy.first_idle ()
    in
    let balancer =
      match balancer with
      | `Rr -> Fleet.Balancer.round_robin ()
      | `Cool -> Fleet.Balancer.coolest_headroom ~guard ()
    in
    let config =
      {
        Fleet.Cluster.default_config with
        Fleet.Cluster.n_chips = chips;
        window;
        migrate;
        thermal_penalty = penalty;
      }
    in
    let r = Fleet.Cluster.run ~config ?domains ~balancer ~chip trace in
    Format.printf "%a@." Sim.Stats.pp r.Fleet.Cluster.stats;
    let ms q = Sim.Stats.waiting_percentile r.Fleet.Cluster.stats q *. 1e3 in
    Printf.printf "waiting p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n" (ms 0.5)
      (ms 0.95) (ms 0.99);
    Printf.printf
      "routed %d, held %d, migrated %d, unfinished %d, wall %.2f s\n"
      r.Fleet.Cluster.routed r.Fleet.Cluster.held r.Fleet.Cluster.migrated
      r.Fleet.Cluster.unfinished r.Fleet.Cluster.wall_clock;
    Printf.printf "per-chip violating steps: [%s]\n"
      (String.concat "; "
         (Array.to_list
            (Array.map string_of_int r.Fleet.Cluster.chip_violations)));
    if Sim.Stats.violation_steps r.Fleet.Cluster.stats = 0 then 0 else 1
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Serve one arrival stream across a rack of chips behind a \
          thermal-aware balancer.")
    Term.(
      const run $ platform $ chips $ tasks $ mix $ seed $ trace_cores
      $ balancer $ guard $ penalty $ window $ migrate $ domains $ table_file)

(* ----- lint ----- *)

let lint_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Render findings as a JSON array on stdout.")
  in
  let manifest =
    Arg.(
      value
      & opt (some string) None
      & info [ "manifest" ] ~docv:"FILE"
          ~doc:
            "Alloc-free manifest (default: lint.manifest under the root when \
             present).")
  in
  let units =
    Arg.(
      value
      & opt (some string) None
      & info [ "units" ] ~docv:"FILE"
          ~doc:
            "Units-of-measure manifest (default: units.manifest under the \
             root when present).")
  in
  let baseline =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Baseline of acknowledged finding ids; baselined findings are \
             reported in the summary but do not fail the run.")
  in
  let update_baseline =
    Arg.(
      value & flag
      & info [ "update-baseline" ]
          ~doc:
            "Write the current findings to the baseline file (requires \
             $(b,--baseline)) and exit 0.")
  in
  let no_typed =
    Arg.(
      value & flag
      & info [ "no-typed" ]
          ~doc:
            "Skip the typed pass (units, capture); syntactic checkers only.")
  in
  let root =
    Arg.(
      value & opt dir "."
      & info [ "root" ] ~docv:"DIR"
          ~doc:"Repository root; lib/, bin/ and bench/ under it are linted.")
  in
  let run json manifest units baseline update_baseline no_typed root =
    let default_path name = function
      | Some _ as m -> m
      | None ->
          if Sys.file_exists (Filename.concat root name) then Some name
          else None
    in
    let manifest_path = default_path "lint.manifest" manifest in
    let units_path = default_path "units.manifest" units in
    let t0 = Unix.gettimeofday () in
    let r =
      Lint.Driver.run_repo ~root ?manifest_path ?units_path
        ~typed:(not no_typed) ()
    in
    let elapsed = Unix.gettimeofday () -. t0 in
    if update_baseline then (
      match baseline with
      | None ->
          prerr_endline "lint: --update-baseline requires --baseline FILE";
          2
      | Some b ->
          let b = if Filename.is_relative b then Filename.concat root b else b in
          Lint.Baseline.save b r.Lint.Driver.findings;
          Printf.eprintf "lint: wrote %d finding(s) to baseline %s\n%!"
            (List.length r.Lint.Driver.findings) b;
          0)
    else begin
      let findings, n_baselined =
        match baseline with
        | None -> (r.Lint.Driver.findings, 0)
        | Some b ->
            let b =
              if Filename.is_relative b then Filename.concat root b else b
            in
            Lint.Baseline.filter (Lint.Baseline.load b) r.Lint.Driver.findings
      in
      if json then print_endline (Lint.Finding.list_to_json findings)
      else
        List.iter (fun f -> print_endline (Lint.Finding.to_string f)) findings;
      Printf.eprintf
        "lint: %d finding(s)%s in %d file(s), %d typed, %.2f s\n%!"
        (List.length findings)
        (if n_baselined > 0 then Printf.sprintf " (+%d baselined)" n_baselined
         else "")
        (List.length r.Lint.Driver.files)
        r.Lint.Driver.typed elapsed;
      if findings = [] then 0 else 1
    end
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Enforce the domain-safety, alloc-free, float-equality, \
          mli-coverage, units-of-measure and cross-domain-capture \
          invariants over the repository sources.")
    Term.(
      const run $ json $ manifest $ units $ baseline $ update_baseline
      $ no_typed $ root)

let () =
  let doc = "Pro-Temp: convex-optimization thermal control of multi-cores" in
  let info = Cmd.info "protemp" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info
                     [ solve_cmd; frontier_cmd; table_cmd; validate_cmd;
                       simulate_cmd; campaign_cmd; fleet_cmd; lint_cmd ]))
