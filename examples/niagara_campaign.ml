(* The full Pro-Temp flow on the Niagara platform, end to end:

   Phase 1 (design time): sweep starting temperatures x frequency
   targets, solving the Eq. 3 convex model for each, into the lookup
   table of the paper's Fig. 4 — then audit every entry against the
   thermal simulator.

   Phase 2 (run time): drive a 20,000-task mixed-benchmark trace
   through the simulator under the table-driven controller and report
   the statistics the paper reports.

   Run with:  dune exec examples/niagara_campaign.exe
   (Phase 1 solves ~60 convex programs; expect a couple of minutes.) *)

let () =
  let machine = Sim.Machine.niagara () in
  let spec =
    (* Thermal cap enforced every other step: half the solve cost; the
       audit below confirms the guarantee still holds at full
       resolution. *)
    { Protemp.Spec.default with Protemp.Spec.constraint_stride = 2 }
  in

  print_endline "=== Phase 1: design-time table generation ===";
  Printf.printf "(rows solved on %d domain(s); set PROTEMP_DOMAINS to change)\n%!"
    (Parallel.Pool.default_domains ());
  let t0 = Unix.gettimeofday () in
  let table =
    Protemp.Offline.sweep ~machine ~spec
      ~tstarts:[| 27.0; 40.0; 55.0; 70.0; 85.0; 100.0 |]
      ~ftargets:(Array.init 9 (fun i -> float_of_int (i + 1) *. 1e8))
      ~on_progress:(fun p ->
        match p.Protemp.Offline.outcome with
        | `Feasible ->
            Printf.printf "  (%5.1f C, %4.0f MHz) ok    %.1fs\n%!"
              p.Protemp.Offline.tstart
              (p.Protemp.Offline.ftarget /. 1e6)
              p.Protemp.Offline.seconds
        | `Infeasible ->
            Printf.printf "  (%5.1f C, %4.0f MHz) infeasible\n%!"
              p.Protemp.Offline.tstart
              (p.Protemp.Offline.ftarget /. 1e6)
        | `Pruned -> ())
      ()
  in
  Printf.printf "Table built in %.1f s:\n%!" (Unix.gettimeofday () -. t0);
  Format.printf "%a@.@." Protemp.Table.pp table;

  let audit = Protemp.Guarantee.audit_table ~machine ~spec table in
  Printf.printf
    "Audit: %d feasible cells re-simulated; tightest margin below the cap: \
     %.3f C\n\n%!"
    audit.Protemp.Guarantee.cells_checked
    audit.Protemp.Guarantee.worst_margin;

  print_endline "=== Phase 2: run-time control ===";
  let trace =
    Workload.Trace.generate ~seed:2008L ~n_tasks:20000 Workload.Mix.paper_mix
  in
  Format.printf "Trace: %a@.@." Workload.Trace.pp_statistics
    (Workload.Trace.statistics trace ~n_cores:8);
  let controller = Protemp.Controller.create ~table in
  let r = Sim.Engine.run machine controller Sim.Policy.first_idle trace in
  Format.printf "%a@." Sim.Stats.pp r.Sim.Engine.stats;
  Printf.printf "Unfinished tasks: %d\n" r.Sim.Engine.unfinished;
  Printf.printf "Violating thermal steps: %d (the guarantee: always 0)\n"
    (Sim.Stats.violation_steps r.Sim.Engine.stats)
