(* The full Pro-Temp flow on the Niagara platform, end to end:

   Phase 1 (design time): sweep starting temperatures x frequency
   targets, solving the Eq. 3 convex model for each, into the lookup
   table of the paper's Fig. 4 — then audit every entry against the
   thermal simulator.

   Phase 2 (run time): fan the paper's evaluation grid — No-TC vs
   Basic-DFS vs Pro-Temp, crossed with the simple and the
   temperature-aware assignment policies, over the mixed-benchmark
   trace — across domains with Sim.Campaign, and report the
   statistics the paper reports for every cell.

   Run with:  dune exec examples/niagara_campaign.exe
   (Phase 1 solves ~60 convex programs; expect a couple of minutes.
   Set PROTEMP_DOMAINS to spread both phases over more domains.) *)

let () =
  let machine = Sim.Machine.niagara () in
  let spec =
    (* Thermal cap enforced every other step: half the solve cost; the
       audit below confirms the guarantee still holds at full
       resolution. *)
    { Protemp.Spec.default with Protemp.Spec.constraint_stride = 2 }
  in

  print_endline "=== Phase 1: design-time table generation ===";
  Printf.printf "(rows solved on %d domain(s); set PROTEMP_DOMAINS to change)\n%!"
    (Parallel.Pool.default_domains ());
  let t0 = Unix.gettimeofday () in
  let table =
    Protemp.Offline.sweep ~machine ~spec
      ~tstarts:[| 27.0; 40.0; 55.0; 70.0; 85.0; 100.0 |]
      ~ftargets:(Array.init 9 (fun i -> float_of_int (i + 1) *. 1e8))
      ~on_progress:(fun p ->
        match p.Protemp.Offline.outcome with
        | `Feasible ->
            Printf.printf "  (%5.1f C, %4.0f MHz) ok    %.1fs\n%!"
              p.Protemp.Offline.tstart
              (p.Protemp.Offline.ftarget /. 1e6)
              p.Protemp.Offline.seconds
        | `Infeasible ->
            Printf.printf "  (%5.1f C, %4.0f MHz) infeasible\n%!"
              p.Protemp.Offline.tstart
              (p.Protemp.Offline.ftarget /. 1e6)
        | `Pruned -> ())
      ()
  in
  Printf.printf "Table built in %.1f s:\n%!" (Unix.gettimeofday () -. t0);
  Format.printf "%a@.@." Protemp.Table.pp table;

  let audit = Protemp.Guarantee.audit_table ~machine ~spec table in
  Printf.printf
    "Audit: %d feasible cells re-simulated; tightest margin below the cap: \
     %.3f C\n\n%!"
    audit.Protemp.Guarantee.cells_checked
    audit.Protemp.Guarantee.worst_margin;

  print_endline "=== Phase 2: run-time campaign ===";
  let fmax = machine.Sim.Machine.fmax in
  let campaign =
    {
      Sim.Campaign.controllers =
        [
          ("no-tc", fun () -> Protemp.No_tc.create ~fmax);
          ("basic-dfs", fun () -> Protemp.Basic_dfs.create ~fmax ());
          ("pro-temp", fun () -> Protemp.Controller.create ~table);
        ];
      assignments = [ Sim.Policy.first_idle; Sim.Policy.coolest_first ];
      scenarios =
        [
          Sim.Campaign.scenario ~seed:2008L ~n_tasks:20000 ~name:"mix"
            Workload.Mix.paper_mix;
        ];
      faults = [];
      config = Sim.Engine.default_config;
    }
  in
  Printf.printf "(%d cells on %d domain(s))\n%!"
    (Sim.Campaign.cells campaign)
    (Parallel.Pool.default_domains ());
  let t0 = Unix.gettimeofday () in
  let cells =
    Sim.Campaign.run
      ~on_cell:(fun c ->
        Printf.printf "  %-10s x %-14s done in %.1f s\n%!"
          c.Sim.Campaign.controller_name c.Sim.Campaign.assignment_name
          c.Sim.Campaign.result.Sim.Engine.wall_clock)
      ~machine campaign
  in
  Printf.printf "Campaign finished in %.1f s\n\n%!"
    (Unix.gettimeofday () -. t0);
  Format.printf "%a@." Sim.Campaign.pp_summary cells;
  Array.iter
    (fun c ->
      if c.Sim.Campaign.controller_name = "pro-temp" then
        Printf.printf
          "pro-temp/%s: %d violating thermal steps (the guarantee: always 0)\n"
          c.Sim.Campaign.assignment_name
          (Sim.Stats.violation_steps c.Sim.Campaign.result.Sim.Engine.stats))
    cells
