(* A consolidated-server scenario from the paper's motivation: one
   8-core machine serving bursty web traffic and periodic multimedia
   transcoding at once.  Compares the three controllers of the paper's
   Section 5 — No-TC, reactive Basic-DFS, and Pro-Temp — on the same
   trace.

   Run with:  dune exec examples/datacenter_mix.exe *)

let consolidated =
  {
    Workload.Mix.name = "consolidated-server";
    components =
      [
        { Workload.Mix.benchmark = Workload.Task.Web; weight = 0.55;
          work_lo = 1e-3; work_hi = 4e-3 };
        { Workload.Mix.benchmark = Workload.Task.Multimedia; weight = 0.45;
          work_lo = 5e-3; work_hi = 10e-3 };
      ];
    process =
      Workload.Arrival.Bursty
        { burst_factor = 1.6; mean_on = 0.3; mean_off = 0.3 };
    utilization = 0.75;
  }

let () =
  let machine = Sim.Machine.niagara () in
  let trace = Workload.Trace.generate ~seed:1337L ~n_tasks:15000 consolidated in
  Format.printf "Workload: %a@.@." Workload.Trace.pp_statistics
    (Workload.Trace.statistics trace ~n_cores:8);

  (* A coarse Pro-Temp table is enough for control (lookups round
     toward feasibility); finer grids only recover a little power. *)
  let spec = { Protemp.Spec.default with Protemp.Spec.constraint_stride = 4 } in
  let table =
    Protemp.Offline.sweep ~machine ~spec
      ~tstarts:[| 40.0; 70.0; 100.0 |]
      ~ftargets:[| 2e8; 4e8; 6e8; 8e8 |]
      ()
  in

  let contenders =
    [
      ("No-TC (performance only)", Protemp.No_tc.create ~fmax:1e9);
      ("Basic-DFS (reactive)", Protemp.Basic_dfs.create ~fmax:1e9 ());
      ("Pro-Temp (proactive)", Protemp.Controller.create ~table);
    ]
  in
  Printf.printf "%-28s %8s %10s %12s %10s\n" "controller" "peak C"
    ">100C time" "mean wait" "violations";
  List.iter
    (fun (name, controller) ->
      let r = Sim.Engine.run machine controller Sim.Policy.coolest_first trace in
      let s = r.Sim.Engine.stats in
      Printf.printf "%-28s %8.1f %9.2f%% %10.1f ms %10d\n%!" name
        (Sim.Stats.peak_temperature s)
        (100.0 *. Sim.Stats.time_above s)
        (Sim.Stats.mean_waiting s *. 1e3)
        (Sim.Stats.violation_steps s))
    contenders;
  print_newline ();
  print_endline
    "Pro-Temp keeps the chip below the 100-degree reliability limit at every \
     0.4 ms instant while clearing the same backlog sooner than the reactive \
     governor.";
  print_endline
    "(Task assignment here is coolest-first, the efficient policy of the \
     paper's Sec. 5.4.)"
