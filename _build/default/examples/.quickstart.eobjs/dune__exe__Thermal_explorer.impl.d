examples/thermal_explorer.ml: Array Float Linalg Mat Printf Random Stdlib String Thermal Vec
