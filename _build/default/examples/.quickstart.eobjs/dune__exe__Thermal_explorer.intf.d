examples/thermal_explorer.mli:
