examples/niagara_campaign.ml: Array Format Printf Protemp Sim Unix Workload
