examples/quickstart.ml: Array Convex List Printf Protemp Sim
