examples/quickstart.mli:
