examples/gradient_study.ml: Array Linalg Mat Printf Protemp Sim String Thermal Vec Workload
