examples/datacenter_mix.ml: Format List Printf Protemp Sim Workload
