examples/niagara_campaign.mli:
