examples/gradient_study.mli:
