(* A tour of the thermal substrate on its own: floorplans, steady
   states, transients, validation against the 3-layer model, and the
   sparse solvers on a fine mesh.

   Run with:  dune exec examples/thermal_explorer.exe *)

open Linalg

let heading s = Printf.printf "\n--- %s ---\n" s

let () =
  (* 1. The calibrated Niagara platform: who runs hot at full load? *)
  heading "Niagara steady state at full load";
  let fp = Thermal.Niagara.floorplan () in
  let model = Thermal.Niagara.model () in
  let p_full =
    Thermal.Niagara.power_vector fp
      ~core_power:(Vec.create Thermal.Niagara.n_cores Thermal.Niagara.core_pmax)
  in
  let steady = Thermal.Rc_model.steady_state model p_full in
  let named =
    Array.mapi
      (fun i t -> ((Thermal.Floorplan.block_of fp i).Thermal.Floorplan.name, t))
      steady
  in
  Array.sort (fun (_, a) (_, b) -> Float.compare b a) named;
  Array.iter (fun (n, t) -> Printf.printf "  %-6s %6.1f C\n" n t) named;

  (* 2. A transient: full power from ambient, watched at 10 ms ticks,
     against the exact matrix-exponential solution. *)
  heading "Transient: Euler (0.4 ms) vs exact expm, hottest core";
  let dt = Thermal.Niagara.dt in
  let d = Thermal.Rc_model.discretize model ~dt in
  let t0 = Vec.create (Thermal.Floorplan.size fp) 27.0 in
  let hot = Thermal.Floorplan.index_of fp "P2" in
  let euler = Thermal.Transient.simulate_const d ~t0 ~steps:250 p_full in
  let prop = Thermal.Transient.exact_propagator model ~dt:0.01 in
  let exact =
    Thermal.Transient.exact_simulate prop ~t0 ~steps:10 ~power:(fun _ -> p_full)
  in
  Printf.printf "  %8s %10s %10s\n" "t (ms)" "euler" "exact";
  for k = 0 to 10 do
    Printf.printf "  %8d %10.3f %10.3f\n" (k * 10)
      (Mat.get euler.Thermal.Transient.temperatures (k * 25) hot)
      (Mat.get exact.Thermal.Transient.temperatures k hot)
  done;

  (* 3. Cross-validation: the single-layer RC model against the
     independent 3-layer HotSpot-style stack. *)
  heading "Cross-validation vs the 3-layer model";
  let hs = Thermal.Hotspot3l.build fp in
  let t_hs = Thermal.Hotspot3l.die_steady_state hs p_full in
  let rc_prm =
    {
      Thermal.Rc_model.default_params with
      Thermal.Rc_model.vertical_conductance_per_area =
        Thermal.Hotspot3l.effective_vertical_conductance_per_area
          Thermal.Hotspot3l.default_params;
    }
  in
  let rc = Thermal.Rc_model.build ~params:rc_prm fp in
  let t_rc = Thermal.Rc_model.steady_state rc p_full in
  let worst = ref 0.0 in
  Array.iteri
    (fun i t ->
      let rel = Float.abs (t_rc.(i) -. t) /. (t -. 27.0) in
      worst := Float.max !worst rel)
    t_hs;
  Printf.printf
    "  worst relative temperature-rise difference across %d blocks: %.1f%%\n"
    (Thermal.Floorplan.size fp) (100.0 *. !worst);

  (* 4. A fine-grained mesh with a hotspot, solved sparsely. *)
  heading "24x24 mesh hotspot, sparse CG";
  let n = 24 in
  let mesh =
    Thermal.Floorplan.grid ~rows:n ~cols:n ~cell_width:0.5e-3
      ~cell_height:0.5e-3 ()
  in
  let mm = Thermal.Rc_model.build mesh in
  let p =
    Vec.init (n * n) (fun i ->
        if i = (n * n / 2) + (n / 2) then 3.0 else 0.01)
  in
  let t, iters = Thermal.Rc_model.steady_state_cg mm p in
  Printf.printf "  hottest cell %.1f C, mean %.1f C (CG: %d iterations)\n"
    (Vec.max t) (Vec.mean t) iters;
  (* A coarse heat map, sampled every 4th cell. *)
  for r = 0 to (n - 1) / 4 do
    Printf.printf "  ";
    for c = 0 to (n - 1) / 4 do
      let v = t.((r * 4 * n) + (c * 4)) in
      let chars = " .:-=+*#%@" in
      let idx =
        Stdlib.min 9
          (int_of_float
             (10.0 *. (v -. Vec.min t) /. (Vec.max t -. Vec.min t +. 1e-9)))
      in
      print_char chars.[idx]
    done;
    print_newline ()
  done;

  (* 5. Identify the Eq. 1 coefficients back from a noisy-free trace
     (what one would do against real sensor logs). *)
  heading "System identification from a trace";
  let d2 = Thermal.Rc_model.discretize model ~dt in
  let st = Random.State.make [| 42 |] in
  let steps = 120 in
  let powers =
    Mat.init steps (Thermal.Floorplan.size fp) (fun _ j ->
        Random.State.float st (if j < 4 then 2.0 else 4.0))
  in
  let traj =
    Thermal.Transient.simulate d2 ~t0 ~steps ~power:(fun k -> Mat.row powers k)
  in
  let fit =
    Thermal.Calibrate.fit_discrete ~temperatures:traj.Thermal.Transient.temperatures
      ~powers
  in
  Printf.printf "  recovered step-matrix error (Frobenius): %.2e\n"
    (Mat.norm_fro (Mat.sub fit.Thermal.Calibrate.step d2.Thermal.Rc_model.step));
  Printf.printf "  worst one-step prediction residual: %.2e C\n"
    fit.Thermal.Calibrate.max_residual
