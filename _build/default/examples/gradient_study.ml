(* The Eq. 4-5 extension: adding the spatial-gradient term to the
   objective.  Solves the same design point with and without the
   gradient term and compares the per-core frequency assignments and
   the resulting on-chip temperature spread, then shows the run-time
   effect the paper's Sec. 5.4 reports (the gradient-aware table plus
   coolest-first assignment reduces the spatial spread further).

   Run with:  dune exec examples/gradient_study.exe *)

open Linalg

let spread machine tstart frequencies steps =
  (* Core temperature spread at the end of one window. *)
  let thermal = machine.Sim.Machine.thermal in
  let power =
    Sim.Machine.power_vector machine ~frequencies ~busy:(Array.make 8 true)
  in
  let traj =
    Thermal.Transient.simulate thermal
      ~t0:(Vec.create machine.Sim.Machine.n_nodes tstart)
      ~steps ~power:(fun _ -> power)
  in
  let finals =
    Sim.Machine.core_temperatures machine
      (Mat.row traj.Thermal.Transient.temperatures steps)
  in
  Vec.max finals -. Vec.min finals

let () =
  let machine = Sim.Machine.niagara () in
  let plain = { Protemp.Spec.default with Protemp.Spec.constraint_stride = 2 } in
  let with_gradient = Protemp.Spec.with_gradient ~weight:4.0 plain in
  let tstart = 60.0 and ftarget = 700e6 in

  let solve name spec =
    let built = Protemp.Model.build ~machine ~spec ~tstart ~ftarget in
    match Protemp.Model.solve built with
    | Protemp.Model.Infeasible -> failwith (name ^ ": unexpected infeasible")
    | Protemp.Model.Feasible s ->
        Printf.printf "%-16s  freqs(MHz): %s\n" name
          (String.concat " "
             (Array.to_list
                (Array.map
                   (fun f -> Printf.sprintf "%4.0f" (f /. 1e6))
                   s.Protemp.Model.frequencies)));
        Printf.printf "%-16s  power %.2f W, end-of-window core spread %.2f C\n"
          "" s.Protemp.Model.total_power
          (spread machine tstart s.Protemp.Model.frequencies
             built.Protemp.Model.steps);
        s
  in
  Printf.printf "Design point: tstart = %.0f C, ftarget = %.0f MHz\n\n" tstart
    (ftarget /. 1e6);
  let s_plain = solve "power-only" plain in
  let s_grad = solve "power+gradient" with_gradient in
  (match s_grad.Protemp.Model.gradient_spread with
  | Some g ->
      Printf.printf
        "\nThe gradient variant certifies a worst-instant spread of %.2f C\n" g
  | None -> ());
  ignore s_plain;

  (* Run-time comparison (Sec. 5.4): gradient-aware tables, first-idle
     vs coolest-first assignment. *)
  print_endline "\n=== Run-time spatial gradients (Sec. 5.4) ===";
  let table spec =
    Protemp.Offline.sweep ~machine ~spec
      ~tstarts:[| 40.0; 70.0; 100.0 |]
      ~ftargets:[| 3e8; 5e8; 7e8; 9e8 |]
      ()
  in
  let t_plain = table plain in
  let t_grad = table with_gradient in
  let trace =
    Workload.Trace.generate ~seed:55L ~n_tasks:12000
      Workload.Mix.compute_intensive
  in
  let run name tbl assign =
    let r =
      Sim.Engine.run machine (Protemp.Controller.create ~table:tbl) assign trace
    in
    let s = r.Sim.Engine.stats in
    Printf.printf "%-42s mean spread %.2f C (peak %.2f C), violations %d\n%!"
      name (Sim.Stats.mean_gradient s) (Sim.Stats.peak_gradient s)
      (Sim.Stats.violation_steps s)
  in
  run "power-only table + first-idle" t_plain Sim.Policy.first_idle;
  run "power+gradient table + first-idle" t_grad Sim.Policy.first_idle;
  run "power+gradient table + coolest-first" t_grad Sim.Policy.coolest_first
