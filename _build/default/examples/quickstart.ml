(* Quickstart: build the Niagara platform, solve one Pro-Temp design
   point (Eq. 3 of the paper), and inspect the result.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* The calibrated 8-core Niagara machine: floorplan, RC thermal
     network discretized at 0.4 ms, 1 GHz / 4 W cores. *)
  let machine = Sim.Machine.niagara () in
  Printf.printf "Machine: %d thermal nodes, %d cores, fmax = %.0f MHz\n\n"
    machine.Sim.Machine.n_nodes machine.Sim.Machine.n_cores
    (machine.Sim.Machine.fmax /. 1e6);

  (* One design point: the chip currently peaks at 85 degrees and the
     workload needs an average of 600 MHz over the next 100 ms
     window.  Which per-core frequencies minimize power while
     guaranteeing nobody exceeds 100 degrees at any instant? *)
  let spec = Protemp.Spec.default in
  let built =
    Protemp.Model.build ~machine ~spec ~tstart:85.0 ~ftarget:600e6
  in
  (match Protemp.Model.solve built with
  | Protemp.Model.Infeasible ->
      print_endline "No frequency assignment can honour the constraints."
  | Protemp.Model.Feasible s ->
      print_endline "Optimal frequency assignment (MHz):";
      Array.iteri
        (fun i f -> Printf.printf "  P%d: %6.1f\n" (i + 1) (f /. 1e6))
        s.Protemp.Model.frequencies;
      Printf.printf "Total core power: %.2f W\n" s.Protemp.Model.total_power;
      Printf.printf "Certified duality gap: %.2e\n"
        s.Protemp.Model.raw.Convex.Solve.gap;
      (* Double-check the guarantee against the thermal simulator. *)
      let peak =
        Protemp.Model.predicted_peak built s.Protemp.Model.frequencies
      in
      Printf.printf "Simulated window peak: %.2f C (cap %.0f C)\n" peak
        spec.Protemp.Spec.tmax);

  (* The same machinery answers "how fast can we possibly go from this
     temperature?" — the feasibility frontier. *)
  print_newline ();
  List.iter
    (fun tstart ->
      match
        Protemp.Offline.max_feasible_ftarget ~machine ~spec ~tstart ()
      with
      | Some f ->
          Printf.printf
            "From %5.1f C the platform sustains an average of %.0f MHz\n"
            tstart (f /. 1e6)
      | None ->
          Printf.printf "From %5.1f C no operation is possible at all\n"
            tstart)
    [ 40.0; 85.0; 99.0 ]
