type result = {
  best_feasible : float option;
  first_infeasible : float option;
  probes : int;
}

let max_feasible ?(tol = 1e-6) ~lo ~hi feasible =
  if lo > hi then invalid_arg "Bisect.max_feasible: lo > hi";
  let probes = ref 0 in
  let probe x =
    incr probes;
    feasible x
  in
  if not (probe lo) then
    { best_feasible = None; first_infeasible = Some lo; probes = !probes }
  else if probe hi then
    { best_feasible = Some hi; first_infeasible = None; probes = !probes }
  else begin
    let tol = tol *. Float.max 1.0 (hi -. lo) in
    let rec go good bad =
      if bad -. good <= tol then (good, bad)
      else
        let mid = 0.5 *. (good +. bad) in
        if probe mid then go mid bad else go good mid
    in
    let good, bad = go lo hi in
    { best_feasible = Some good; first_infeasible = Some bad; probes = !probes }
  end
