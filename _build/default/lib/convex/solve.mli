(** Two-phase convex solver: the top-level entry point.

    Runs phase-I feasibility ({!Phase1}) when the supplied starting
    point is not already strictly feasible, then the log-barrier method
    ({!Barrier}), and reports the outcome with a KKT certificate.  This
    is the function the Pro-Temp offline phase calls for every
    [(tstart, ftarget)] design point. *)

open Linalg

type solution = {
  x : Vec.t;
  objective_value : float;
  dual : Vec.t;
  gap : float;  (** Guaranteed duality-gap bound. *)
  kkt : Kkt.residuals;
  outer_iterations : int;
  newton_iterations : int;
}

type status =
  | Optimal of solution
  | Infeasible of float
      (** Phase I could not find a strictly feasible point; payload is
          the best achieved [max_j f_j]. *)

val solve :
  ?options:Barrier.options -> ?start:Vec.t -> Barrier.problem -> status
(** [solve p] solves [p].  [start] is a hint (defaults to the origin);
    it need not be feasible. *)

val pp_status : Format.formatter -> status -> unit
