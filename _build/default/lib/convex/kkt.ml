open Linalg

type residuals = {
  stationarity : float;
  primal_infeasibility : float;
  dual_infeasibility : float;
  complementarity : float;
}

let residuals (p : Barrier.problem) x lambda =
  let m = Array.length p.Barrier.constraints in
  if Vec.dim lambda <> m then invalid_arg "Kkt.residuals: bad dual length";
  let grad_l = Quad.grad p.Barrier.objective x in
  Array.iteri
    (fun j c -> Vec.axpy_into ~dst:grad_l lambda.(j) (Quad.grad c x))
    p.Barrier.constraints;
  let primal =
    Array.fold_left
      (fun acc c -> Float.max acc (Quad.eval c x))
      0.0 p.Barrier.constraints
  in
  let dual =
    Array.fold_left (fun acc l -> Float.max acc (-.l)) 0.0 lambda
  in
  let comp =
    let acc = ref 0.0 in
    Array.iteri
      (fun j c ->
        acc := Float.max !acc (Float.abs (lambda.(j) *. Quad.eval c x)))
      p.Barrier.constraints;
    !acc
  in
  {
    stationarity = Vec.norm_inf grad_l;
    primal_infeasibility = primal;
    dual_infeasibility = dual;
    complementarity = comp;
  }

let max_residual r =
  Float.max r.stationarity
    (Float.max r.primal_infeasibility
       (Float.max r.dual_infeasibility r.complementarity))

let pp ppf r =
  Format.fprintf ppf
    "stationarity=%.3e primal=%.3e dual=%.3e complementarity=%.3e"
    r.stationarity r.primal_infeasibility r.dual_infeasibility
    r.complementarity
