open Linalg

type status =
  | Optimal of { x : Vec.t; objective_value : float; dual : Vec.t }
  | Infeasible of float

let solve ?options ~c ~a ~b () =
  let n = Vec.dim c in
  if Mat.cols a <> n then invalid_arg "Linprog.solve: A/c mismatch";
  if Mat.rows a <> Vec.dim b then invalid_arg "Linprog.solve: A/b mismatch";
  let constraints =
    Array.init (Mat.rows a) (fun i -> Quad.affine (Mat.row a i) (-.b.(i)))
  in
  let problem = { Barrier.objective = Quad.affine c 0.0; constraints } in
  match Solve.solve ?options problem with
  | Solve.Optimal s ->
      Optimal { x = s.Solve.x; objective_value = s.Solve.objective_value;
                dual = s.Solve.dual }
  | Solve.Infeasible worst -> Infeasible worst
