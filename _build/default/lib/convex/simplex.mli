(** A dense primal simplex solver for linear programs.

    [minimize c^T x subject to A x <= b, x >= 0], solved with the
    standard tableau method and Bland's anti-cycling rule.  This is a
    second, algorithmically independent LP solver: the test suite
    cross-checks the log-barrier interior-point path ({!Linprog})
    against it on random instances, which is the strongest correctness
    evidence two from-scratch solvers can give each other. *)

open Linalg

type status =
  | Optimal of { x : Vec.t; objective_value : float }
  | Unbounded
  | Infeasible

val solve : c:Vec.t -> a:Mat.t -> b:Vec.t -> status
(** Raises [Invalid_argument] on shape mismatches.  Handles negative
    entries in [b] with a two-phase (auxiliary LP) start. *)
