(** Scalar bisection on a monotone feasibility predicate.

    The Pro-Temp offline phase needs, for each starting temperature,
    the largest target frequency that is still feasible (the Fig. 9
    frontier); feasibility is monotone in the target, so bisection
    finds it with a logarithmic number of solver calls. *)

type result = {
  best_feasible : float option;
      (** Largest value found with [feasible] true, [None] when even
          [lo] is infeasible. *)
  first_infeasible : float option;
      (** Smallest value found with [feasible] false, [None] when even
          [hi] is feasible. *)
  probes : int;  (** Number of predicate evaluations. *)
}

val max_feasible :
  ?tol:float -> lo:float -> hi:float -> (float -> bool) -> result
(** [max_feasible ~lo ~hi feasible] assumes [feasible] is
    monotonically decreasing in its argument (true below some
    threshold, false above) and locates the threshold within [tol]
    (default [1e-6] of the interval width).  Requires [lo <= hi]. *)
