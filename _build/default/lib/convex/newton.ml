open Linalg

type oracle = {
  value : Vec.t -> float option;
  grad_hess : Vec.t -> Vec.t * Mat.t;
}

type options = { tol : float; max_iter : int; alpha : float; beta : float }

let default_options = { tol = 1e-10; max_iter = 100; alpha = 0.25; beta = 0.5 }

type outcome = Converged | Iteration_limit | Line_search_failed

type result = {
  x : Vec.t;
  value : float;
  decrement : float;
  iterations : int;
  outcome : outcome;
}

let minimize ?(options = default_options) (oracle : oracle) x0 =
  let f0 =
    match oracle.value x0 with
    | Some v -> v
    | None -> invalid_arg "Newton.minimize: start point outside domain"
  in
  let x = Vec.copy x0 in
  let fx = ref f0 in
  let rec iterate k =
    if k >= options.max_iter then
      { x; value = !fx; decrement = infinity; iterations = k;
        outcome = Iteration_limit }
    else begin
      let g, h = oracle.grad_hess x in
      (* Newton direction: H d = -g, via jittered Cholesky so that a
         numerically semidefinite Hessian still yields a descent
         direction. *)
      let d =
        let fact, _jitter = Chol.factorize_jittered h in
        Vec.neg (Chol.solve_factorized fact g)
      in
      let decrement = -0.5 *. Vec.dot g d in
      if decrement <= options.tol then
        { x; value = !fx; decrement; iterations = k; outcome = Converged }
      else begin
        (* Backtracking: shrink until inside the domain and the Armijo
           condition holds. *)
        let gd = Vec.dot g d in
        let rec search step tries =
          if tries > 60 then None
          else
            let candidate = Vec.axpy step d x in
            match oracle.value candidate with
            | Some v when v <= !fx +. (options.alpha *. step *. gd) ->
                Some (candidate, v)
            | Some _ | None -> search (step *. options.beta) (tries + 1)
        in
        match search 1.0 0 with
        | None ->
            { x; value = !fx; decrement; iterations = k;
              outcome = Line_search_failed }
        | Some (x', v') ->
            Vec.blit ~src:x' ~dst:x;
            fx := v';
            iterate (k + 1)
      end
    end
  in
  iterate 0
